package overlay

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func TestRandomTopologyConnected(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		topo := RandomTopology(rng, n, 0.4, 0.3, 1e6)
		if topo.NodeCount() != n {
			t.Fatalf("seed %d: nodes = %d, want %d", seed, topo.NodeCount(), n)
		}
		// Spanning-tree construction guarantees every pair is reachable.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				if _, err := topo.ShortestPath(model.NodeID(a), model.NodeID(b)); err != nil {
					t.Fatalf("seed %d: no path %d -> %d: %v", seed, a, b, err)
				}
			}
		}
	}
}

func TestRandomTopologyDeterministic(t *testing.T) {
	a := RandomTopology(rand.New(rand.NewSource(7)), 12, 0.4, 0.3, 100)
	b := RandomTopology(rand.New(rand.NewSource(7)), 12, 0.4, 0.3, 100)
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestRandomTopologyDefaults(t *testing.T) {
	topo := RandomTopology(rand.New(rand.NewSource(1)), 0, 0, 0, 0)
	if topo.NodeCount() != 1 {
		t.Errorf("degenerate topology nodes = %d", topo.NodeCount())
	}
}

// TestRandomTopologyEndToEnd routes random flows over random topologies
// and optimizes, as a broad integration sweep of overlay + core.
func TestRandomTopologyEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		n := 5 + rng.Intn(8)
		topo := RandomTopology(rng, n, 0.4, 0.3, 1e6)
		var flows []FlowSpec
		for fi := 0; fi < 3; fi++ {
			fs := FlowSpec{
				Name: "f", Source: model.NodeID(rng.Intn(n)),
				RateMin: 10, RateMax: 1000, LinkCost: 1, NodeCost: 3,
			}
			for c := 0; c < 1+rng.Intn(3); c++ {
				fs.Classes = append(fs.Classes, ClassSpec{
					Name: "c", Node: model.NodeID(rng.Intn(n)),
					MaxConsumers: 100 + rng.Intn(1000), CostPerConsumer: 19,
					Utility: utility.NewLog(1 + rng.Float64()*99),
				})
			}
			flows = append(flows, fs)
		}
		p, err := Build(topo, 5e5, flows)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e, err := core.NewEngine(p, core.Config{Adaptive: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res := e.Solve(300)
		ix := e.Index()
		if err := model.CheckFeasible(p, ix, res.Allocation, 1e-6); err != nil {
			// Transient link overload is legal mid-convergence but the
			// end state on an uncongested random topology should be
			// feasible; report it.
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}
