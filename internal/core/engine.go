package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
)

// minParallelItems is the smallest per-stage item count (flows, nodes or
// links) worth fanning out over the worker pool; below it the stage's work
// is comparable to the dispatch overhead and the engine runs it inline.
// Because parallel and serial execution are bit-identical, the cutover is
// purely a performance decision.
const minParallelItems = 16

// Engine runs synchronous LRGP iterations over a problem. It is the
// colocated formulation discussed in Section 3.5: all per-flow and per-node
// algorithm pieces execute in one process, in the same data-dependency
// order as the distributed version (rates, then populations, then prices).
//
// With Config.Workers > 1 (the default resolves to GOMAXPROCS) each Step
// stage is sharded across a persistent worker pool; results are
// bit-identical to the serial engine for any worker count. The pool's
// goroutines live only inside Step's stage barriers, so Step remains
// synchronous from the caller's point of view.
//
// An Engine is still not safe for concurrent use: no method — including
// the mid-run mutators SetFlowActive, SetClassDemand and SetNodeCapacity —
// may run concurrently with Step or with each other. Wrap it or use
// package dist for a concurrent, message-passing deployment.
type Engine struct {
	p   *model.Problem
	ix  *model.Index
	cfg Config

	iteration int
	rates     []float64
	consumers []int
	active    []bool

	// nodePrices/linkPrices and the capacity mirrors below are the SoA
	// operands of the Eq. 12/13 price sweeps: flat float64 arrays indexed
	// by node/link, so the per-iteration sweep is a branch-light pass over
	// contiguous memory. nodeCap/linkCap mirror Problem capacities and are
	// kept in sync by NewEngine, Reset and SetNodeCapacity (the only
	// supported capacity mutation points).
	nodePrices []float64
	linkPrices []float64
	nodeCap    []float64
	linkCap    []float64
	gamma      *gammaBank

	solvers []*rateSolver
	// scratch[s] is shard s's admission scratch; the serial path uses
	// scratch[0]. Sized by the widest node, not the class count.
	scratch [][]classBC

	// pool is non-nil when the engine shards stages across workers.
	pool   *workerPool
	shards int
	// plan is the crossing-writes analysis result; fused selects the
	// single-barrier Step path (see stagePlan). Both are fixed at NewEngine
	// — Reset preserves topology — and rebuilt only by ResetRouting, which
	// changes it.
	plan  *stagePlan
	fused bool
	// closed is set by Close; stepping a closed engine panics
	// deterministically instead of racing the pool shutdown.
	closed bool
	// full disables the dirty-set machinery (Config.FullRecompute).
	full bool

	// Incremental dirty-set state (DESIGN.md §9). The epoch slices record
	// the iteration at which each quantity last changed value; a stage
	// consults them to decide whether its cached outputs are still exact.
	// The forced flags are set by mutators and Reset to dirty items whose
	// inputs changed outside Step, and cleared by the recompute they
	// trigger.
	flowForced []bool
	nodeForced []bool
	linkForced []bool
	// rateEpoch[i]: iteration e.rates[i] last changed; popEpoch[j]:
	// iteration e.consumers[j] last changed; nodePriceEpoch[b] /
	// linkPriceEpoch[l]: iteration the price last moved.
	rateEpoch      []int
	popEpoch       []int
	nodePriceEpoch []int
	linkPriceEpoch []int
	// nodeUsed/nodeBest cache admitNode's outputs per node; linkUsed
	// caches each link's usage sum. A skipped constraint reuses these
	// verbatim — they are the exact floats the skipped recomputation
	// would have produced.
	nodeUsed []float64
	nodeBest []float64
	linkUsed []float64
	// util caches the last computed objective; utilStale forces a full
	// recomputation (set by mutators and Reset).
	util      float64
	utilStale bool
	// flowUtil[i] caches flow i's objective contribution
	// (sum over the flow's classes of n_j * U_j(r_i)), so the per-Step
	// objective refresh touches only flows whose rate or populations moved
	// plus an O(flows) sum — a full class sweep would dominate Step at
	// metro scale. flowUtilEpoch[i] is the iteration the cache was last
	// written; touchIDs[s]/touchSeen[s] are shard s's dedup'd list of flows
	// whose populations the admission stage moved this iteration.
	flowUtil      []float64
	flowUtilEpoch []int
	touchIDs      [][]int32
	touchSeen     [][]int

	// Per-shard stage accumulators, each of length shards. overNode[s]
	// and overLink[s] collect shard s's max overload; the reduction over
	// shards after the stage barrier is order-independent (max is
	// associative and commutative), so the result is bit-identical to the
	// serial scan. The dirty/skip counters and changed flags reduce by
	// integer sum and boolean OR, which are order-independent too. When a
	// stage runs inline (serial engine, or too few items to shard), only
	// slot 0 is written and reduced.
	overNode       []float64
	overLink       []float64
	dirtyFlowsSh   []int
	skippedNodesSh []int
	skippedLinksSh []int
	rateChangedSh  []bool
	popChangedSh   []bool

	// stageFns are the three-barrier shard entry points and fusedFn the
	// single-barrier one, bound once so dispatching a stage allocates
	// nothing.
	stageFns [3]func(shard int)
	fusedFn  func(shard int)
}

// StepResult summarizes one LRGP iteration.
type StepResult struct {
	// Iteration is 1-based.
	Iteration int
	// Utility is the objective value (Equation 1) after the iteration's
	// consumer allocation.
	Utility float64
	// MaxNodeOverload is the largest node usage minus capacity across
	// nodes (positive only when flow-node costs alone exceed some node's
	// capacity; the greedy step never overshoots otherwise).
	MaxNodeOverload float64
	// MaxLinkOverload is the largest link usage minus capacity.
	MaxLinkOverload float64
	// StageNanos holds the wall time of the rate, admission and
	// link-price stages (indexed by telemetry.StageRate/StageAdmission/
	// StagePrice). Populated only when Config.Telemetry is set; all
	// zero otherwise, so the untelemetered Step never reads the clock.
	StageNanos [3]int64
	// DirtyFlows counts flows whose rate problem was re-solved this
	// iteration; SkippedNodes and SkippedLinks count constraints that
	// reused their cached admission/usage instead of recomputing.
	// Deterministic for any worker count. With Config.FullRecompute every
	// flow is dirty and nothing is skipped.
	DirtyFlows   int
	SkippedNodes int
	SkippedLinks int
}

// NewEngine validates the problem and prepares an engine. The initial state
// is the LRGP starting point: all rates at r^min, all populations zero, all
// prices at the configured initial values.
func NewEngine(p *model.Problem, cfg Config) (*Engine, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)

	shards := 1
	if c.Workers > 1 {
		n := len(p.Flows)
		if len(p.Nodes) > n {
			n = len(p.Nodes)
		}
		if len(p.Links) > n {
			n = len(p.Links)
		}
		if n >= minParallelItems {
			shards = c.Workers
		}
	}

	e := &Engine{
		p:          p,
		ix:         ix,
		cfg:        c,
		full:       c.FullRecompute,
		rates:      make([]float64, len(p.Flows)),
		consumers:  make([]int, len(p.Classes)),
		active:     make([]bool, len(p.Flows)),
		nodePrices: make([]float64, len(p.Nodes)),
		linkPrices: make([]float64, len(p.Links)),
		nodeCap:    make([]float64, len(p.Nodes)),
		linkCap:    make([]float64, len(p.Links)),
		gamma:      newGammaBank(c, len(p.Nodes)),
		solvers:    make([]*rateSolver, len(p.Flows)),
		shards:     shards,
		scratch:    make([][]classBC, shards),

		flowForced:     make([]bool, len(p.Flows)),
		nodeForced:     make([]bool, len(p.Nodes)),
		linkForced:     make([]bool, len(p.Links)),
		rateEpoch:      make([]int, len(p.Flows)),
		popEpoch:       make([]int, len(p.Classes)),
		nodePriceEpoch: make([]int, len(p.Nodes)),
		linkPriceEpoch: make([]int, len(p.Links)),
		nodeUsed:       make([]float64, len(p.Nodes)),
		nodeBest:       make([]float64, len(p.Nodes)),
		linkUsed:       make([]float64, len(p.Links)),
		utilStale:      true,
		flowUtil:       make([]float64, len(p.Flows)),
		flowUtilEpoch:  make([]int, len(p.Flows)),
		touchIDs:       make([][]int32, shards),
		touchSeen:      make([][]int, shards),

		overNode:       make([]float64, shards),
		overLink:       make([]float64, shards),
		dirtyFlowsSh:   make([]int, shards),
		skippedNodesSh: make([]int, shards),
		skippedLinksSh: make([]int, shards),
		rateChangedSh:  make([]bool, shards),
		popChangedSh:   make([]bool, shards),
	}
	// The admission sort never sees more candidates than the widest node
	// has classes; sizing scratch by that (not the total class count) keeps
	// per-shard scratch bounded on metro-scale problems where classes
	// number ~10^6 but each node carries a few dozen.
	maxNodeClasses := 0
	for b := range p.Nodes {
		if n := len(ix.ClassesByNode(model.NodeID(b))); n > maxNodeClasses {
			maxNodeClasses = n
		}
	}
	for s := range e.scratch {
		e.scratch[s] = make([]classBC, 0, maxNodeClasses)
		e.touchIDs[s] = make([]int32, 0, len(p.Flows))
		e.touchSeen[s] = make([]int, len(p.Flows))
	}
	for i := range p.Flows {
		e.rates[i] = p.Flows[i].RateMin
		e.active[i] = true
		e.flowForced[i] = true
		e.solvers[i] = newRateSolver(p, ix, model.FlowID(i))
	}
	for b := range e.nodePrices {
		e.nodePrices[b] = c.InitialNodePrice
		e.nodeCap[b] = p.Nodes[b].Capacity
		e.nodeForced[b] = true
	}
	for l := range e.linkPrices {
		e.linkPrices[l] = c.InitialLinkPrice
		e.linkCap[l] = p.Links[l].Capacity
		e.linkForced[l] = true
	}
	if shards > 1 {
		e.stageFns = [3]func(int){e.rateShard, e.nodeShard, e.linkShard}
		e.plan = newStagePlan(p, ix, shards)
		e.fused = e.plan.fused
		e.fusedFn = e.fusedShard
		e.pool = newWorkerPool(shards - 1)
		// Backstop for engines dropped without Close: idle workers hold no
		// reference to e (see workerPool), so the finalizer can fire and
		// release them.
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Close releases the engine's worker pool and marks the engine closed;
// Step, Solve and Reset panic deterministically afterwards (for serial and
// sharded engines alike — before this flag a closed sharded engine died on
// the pool's closed channel, and a serial one silently kept working).
// Close is idempotent. Abandoned engines are closed by the garbage
// collector as a backstop, but deterministic shutdown should call Close
// explicitly.
func (e *Engine) Close() {
	e.closed = true
	if e.pool != nil {
		runtime.SetFinalizer(e, nil)
		e.pool.close()
	}
}

// shardRange returns shard s's half-open slice [lo, hi) of n items under
// the engine's fixed contiguous partition. The boundaries depend only on
// n, the shard count and s — never on scheduling — which is what makes
// parallel execution deterministic.
func (e *Engine) shardRange(n, s int) (lo, hi int) {
	return n * s / e.shards, n * (s + 1) / e.shards
}

// Step performs one synchronous LRGP iteration: Algorithm 1 at every flow
// source, then Algorithm 2 and the Equation 12 price update at every node,
// then Algorithm 3 (Equation 13) for every link. With Workers > 1 the
// iteration fans out over the worker pool; results are bit-identical to
// the serial engine for any worker count.
//
// Two parallel schedules exist. When the crossing-writes analysis proves
// the problem decomposes into at least Workers independent components
// (stagePlan), each worker runs all three stages back to back over whole
// components — one barrier per Step. Otherwise each stage fans out over
// fixed contiguous shards and barriers before the next — three barriers,
// but correct for arbitrarily entangled topologies. Both schedules perform
// exactly the serial arithmetic: within a shard the stages run in serial
// order, and every cross-shard reduction (max overload, counter sums,
// changed flags) is order-independent.
//
// Step is incremental: a flow re-solves its rate problem only when some
// price on its path or some consuming class's population changed last
// iteration; a node re-runs admission only when a crossing flow's rate
// changed this iteration (or a mutator touched its inputs); a link re-sums
// its usage under the same rule. Everything else reuses the previous
// iteration's values verbatim, so results are bit-identical to a full
// recompute (Config.FullRecompute; see DESIGN.md §9 for the invariants).
// The O(1) price updates and adaptive-gamma observations always run —
// they move every iteration until the exact fixpoint.
func (e *Engine) Step() StepResult {
	if e.closed {
		panic("core: Engine.Step called after Close")
	}
	e.iteration++
	res := StepResult{Iteration: e.iteration}

	// Stage timing exists only on the telemetry path: the tel == nil
	// branches keep the disabled Step free of clock reads entirely.
	tel := e.cfg.Telemetry
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}

	var rateChanged, popChanged bool
	if e.fused {
		// Fused path: one barrier, each worker runs
		// rates → admission → node prices → links → flow-utility refresh
		// for its own components.
		e.pool.run(e.fusedFn, e.plan.shards)
		for s := 0; s < e.plan.shards; s++ {
			res.DirtyFlows += e.dirtyFlowsSh[s]
			rateChanged = rateChanged || e.rateChangedSh[s]
			if e.overNode[s] > res.MaxNodeOverload {
				res.MaxNodeOverload = e.overNode[s]
			}
			res.SkippedNodes += e.skippedNodesSh[s]
			popChanged = popChanged || e.popChangedSh[s]
			if e.overLink[s] > res.MaxLinkOverload {
				res.MaxLinkOverload = e.overLink[s]
			}
			res.SkippedLinks += e.skippedLinksSh[s]
		}
		if tel != nil {
			// The fused super-stage has no internal barriers to time;
			// its whole wall time lands in the rate slot.
			res.StageNanos[0] = time.Since(t0).Nanoseconds()
		}
	} else {
		// 1. Rate allocation, using last iteration's populations and
		// prices.
		slots := 1
		if e.pool != nil && len(e.p.Flows) >= minParallelItems {
			e.pool.run(e.stageFns[0], e.shards)
			slots = e.shards
		} else {
			e.rateRange(0, len(e.p.Flows), 0)
		}
		for s := 0; s < slots; s++ {
			res.DirtyFlows += e.dirtyFlowsSh[s]
			rateChanged = rateChanged || e.rateChangedSh[s]
		}
		if tel != nil {
			now := time.Now()
			res.StageNanos[0] = now.Sub(t0).Nanoseconds()
			t0 = now
		}

		// 2. Greedy consumer allocation and node price update.
		nodeSlots := 1
		if e.pool != nil && len(e.p.Nodes) >= minParallelItems {
			e.pool.run(e.stageFns[1], e.shards)
			nodeSlots = e.shards
		} else {
			e.nodeRange(0, len(e.p.Nodes), 0)
		}
		for s := 0; s < nodeSlots; s++ {
			if e.overNode[s] > res.MaxNodeOverload {
				res.MaxNodeOverload = e.overNode[s]
			}
			res.SkippedNodes += e.skippedNodesSh[s]
			popChanged = popChanged || e.popChangedSh[s]
		}
		if tel != nil {
			now := time.Now()
			res.StageNanos[1] = now.Sub(t0).Nanoseconds()
			t0 = now
		}

		// 3. Link price update.
		slots = 1
		if e.pool != nil && len(e.p.Links) >= minParallelItems {
			e.pool.run(e.stageFns[2], e.shards)
			slots = e.shards
		} else {
			e.linkRange(0, len(e.p.Links), 0)
		}
		for s := 0; s < slots; s++ {
			if e.overLink[s] > res.MaxLinkOverload {
				res.MaxLinkOverload = e.overLink[s]
			}
			res.SkippedLinks += e.skippedLinksSh[s]
		}
		if tel != nil {
			res.StageNanos[2] = time.Since(t0).Nanoseconds()
		}

		// Refresh the per-flow utility cache serially: rate-dirty flows
		// plus the flows whose populations the admission stage touched
		// (the fused path does this inside each shard).
		t := e.iteration
		if e.utilStale || e.full {
			for i := range e.flowUtil {
				e.flowUtilItem(i)
			}
		} else {
			for i := range e.flowUtil {
				if e.rateEpoch[i] == t {
					e.flowUtilItem(i)
				}
			}
			for s := 0; s < nodeSlots; s++ {
				for _, i := range e.touchIDs[s] {
					if e.flowUtilEpoch[i] != t {
						e.flowUtilItem(int(i))
					}
				}
			}
		}
		for s := range e.touchIDs {
			e.touchIDs[s] = e.touchIDs[s][:0]
		}
	}

	// The objective only moves when a rate or population moved; otherwise
	// the cached sum is the exact value the full recomputation would
	// produce. Full mode recomputes unconditionally, like the
	// pre-incremental engine. The sum runs over the per-flow cache in
	// ascending flow order — the same association Utility uses — so the
	// incremental value is bit-identical to the from-scratch one.
	if e.full || rateChanged || popChanged || e.utilStale {
		total := 0.0
		for _, u := range e.flowUtil {
			total += u
		}
		e.util = total
		e.utilStale = false
	}
	res.Utility = e.util

	if tel != nil {
		tel.ObserveStep(res.StageNanos, res.Utility,
			res.MaxNodeOverload, res.MaxLinkOverload,
			len(e.p.Nodes), len(e.p.Links),
			res.DirtyFlows, res.SkippedNodes+res.SkippedLinks)
	}
	return res
}

// flowDirty reports whether flow i's rate inputs changed during iteration
// prev: a link or node price on its path moved, or a consuming class's
// population moved. Clean flows re-solve to the exact same rate, so the
// engine keeps the cached value instead.
func (e *Engine) flowDirty(i int, prev int) bool {
	fid := model.FlowID(i)
	for _, l := range e.ix.LinksByFlow(fid) {
		if e.linkPriceEpoch[l] == prev {
			return true
		}
	}
	for _, b := range e.ix.NodesByFlow(fid) {
		if e.nodePriceEpoch[b] == prev {
			return true
		}
	}
	for _, cid := range e.ix.ClassesByFlow(fid) {
		if e.popEpoch[cid] == prev {
			return true
		}
	}
	return false
}

// rateOne runs Algorithm 1 for flow i (writes only e.rates[i]).
func (e *Engine) rateOne(i int) {
	if !e.active[i] {
		e.rates[i] = 0
		return
	}
	price := e.flowPrice(model.FlowID(i))
	e.rates[i] = e.solvers[i].solve(e.consumers, price)
}

// rateItem runs the incremental rate update for flow i (skip check,
// Algorithm 1, epoch bookkeeping), accumulating into the caller's dirty
// count and changed flag.
func (e *Engine) rateItem(i, prev int, dirty *int, changed *bool) {
	if !(e.full || e.flowForced[i] || e.flowDirty(i, prev)) {
		return
	}
	e.flowForced[i] = false
	*dirty++
	old := e.rates[i]
	e.rateOne(i)
	if e.rates[i] != old {
		e.rateEpoch[i] = e.iteration
		*changed = true
	}
}

// rateRange runs the rate stage over flows [lo, hi), writing shard slot s
// of the stage accumulators.
func (e *Engine) rateRange(lo, hi, s int) {
	prev := e.iteration - 1
	dirty, changed := 0, false
	for i := lo; i < hi; i++ {
		e.rateItem(i, prev, &dirty, &changed)
	}
	e.dirtyFlowsSh[s] = dirty
	e.rateChangedSh[s] = changed
}

// rateList is rateRange over an explicit flow list (the fused path's
// component shards).
func (e *Engine) rateList(ids []int32, s int) {
	prev := e.iteration - 1
	dirty, changed := 0, false
	for _, i := range ids {
		e.rateItem(int(i), prev, &dirty, &changed)
	}
	e.dirtyFlowsSh[s] = dirty
	e.rateChangedSh[s] = changed
}

// admitItem runs the admission half of the node stage for node b:
// Algorithm 2 when a crossing flow's rate changed this iteration (or a
// mutator forced the node), cache reuse otherwise. Population changes mark
// the node's crossing flows in shard s's touch list so the flow-utility
// cache refresh knows what moved.
func (e *Engine) admitItem(b, s int, scratch []classBC, skipped *int, popChanged *bool) {
	bid := model.NodeID(b)
	recompute := e.full || e.nodeForced[b]
	if !recompute {
		t := e.iteration
		for _, i := range e.ix.FlowsByNode(bid) {
			if e.rateEpoch[i] == t {
				recompute = true
				break
			}
		}
	}
	if !recompute {
		*skipped++
		return
	}
	e.nodeForced[b] = false
	out := admitNode(e.p, e.ix, bid, e.rates, e.active, e.consumers, scratch,
		e.popEpoch, e.iteration)
	e.nodeUsed[b], e.nodeBest[b] = out.used, out.bestUnsatisfied
	if out.popChanged {
		*popChanged = true
		e.touchFlows(s, bid)
	}
}

// touchFlows adds node b's crossing flows to shard s's touch list —
// a superset of the flows whose populations actually moved, which is safe:
// re-deriving a clean flow's cached utility reproduces the identical
// float. touchSeen dedups per shard and iteration, bounding the list by
// the flow count so appends never grow the preallocated backing array.
func (e *Engine) touchFlows(s int, b model.NodeID) {
	t := e.iteration
	seen := e.touchSeen[s]
	ids := e.touchIDs[s]
	for _, i := range e.ix.FlowsByNode(b) {
		if seen[i] != t {
			seen[i] = t
			ids = append(ids, int32(i))
		}
	}
	e.touchIDs[s] = ids
}

// nodePriceRange is the price half of the node stage over nodes [lo, hi):
// the Equation 12 sweep as a branch-light pass over the flat
// price/used/best/capacity arrays, returning the range's max overload.
// It is split from admission so the sweep reads SoA state the admission
// pass has fully settled — admission never reads prices, so running all
// admissions before all price updates performs the serial arithmetic
// exactly.
func (e *Engine) nodePriceRange(lo, hi int) float64 {
	over := 0.0
	t := e.iteration
	prices, used, best, caps := e.nodePrices, e.nodeUsed, e.nodeBest, e.nodeCap
	if e.cfg.Adaptive {
		for b := lo; b < hi; b++ {
			u, cp, prev := used[b], caps[b], prices[b]
			g := e.gamma.val[b]
			next := nodePriceUpdate(prev, best[b], u, cp, g, g)
			e.gamma.observe(b, priceGap(prev, best[b], u, cp), prev)
			if next != prev {
				e.nodePriceEpoch[b] = t
			}
			prices[b] = next
			if o := u - cp; o > over {
				over = o
			}
		}
		return over
	}
	g1, g2 := e.cfg.Gamma1, e.cfg.Gamma2
	for b := lo; b < hi; b++ {
		u, cp, prev := used[b], caps[b], prices[b]
		next := nodePriceUpdate(prev, best[b], u, cp, g1, g2)
		if next != prev {
			e.nodePriceEpoch[b] = t
		}
		prices[b] = next
		if o := u - cp; o > over {
			over = o
		}
	}
	return over
}

// nodePriceList is nodePriceRange over an explicit node list.
func (e *Engine) nodePriceList(ids []int32) float64 {
	over := 0.0
	t := e.iteration
	prices, used, best, caps := e.nodePrices, e.nodeUsed, e.nodeBest, e.nodeCap
	if e.cfg.Adaptive {
		for _, b := range ids {
			u, cp, prev := used[b], caps[b], prices[b]
			g := e.gamma.val[b]
			next := nodePriceUpdate(prev, best[b], u, cp, g, g)
			e.gamma.observe(int(b), priceGap(prev, best[b], u, cp), prev)
			if next != prev {
				e.nodePriceEpoch[b] = t
			}
			prices[b] = next
			if o := u - cp; o > over {
				over = o
			}
		}
		return over
	}
	g1, g2 := e.cfg.Gamma1, e.cfg.Gamma2
	for _, b := range ids {
		u, cp, prev := used[b], caps[b], prices[b]
		next := nodePriceUpdate(prev, best[b], u, cp, g1, g2)
		if next != prev {
			e.nodePriceEpoch[b] = t
		}
		prices[b] = next
		if o := u - cp; o > over {
			over = o
		}
	}
	return over
}

// nodeRange runs the node stage over nodes [lo, hi) — all admissions, then
// the price sweep — writing shard slot s of the stage accumulators.
func (e *Engine) nodeRange(lo, hi, s int) {
	scratch := e.scratch[s]
	skipped, popChanged := 0, false
	for b := lo; b < hi; b++ {
		e.admitItem(b, s, scratch, &skipped, &popChanged)
	}
	e.overNode[s] = e.nodePriceRange(lo, hi)
	e.skippedNodesSh[s] = skipped
	e.popChangedSh[s] = popChanged
}

// nodeList is nodeRange over an explicit node list.
func (e *Engine) nodeList(ids []int32, s int) {
	scratch := e.scratch[s]
	skipped, popChanged := 0, false
	for _, b := range ids {
		e.admitItem(int(b), s, scratch, &skipped, &popChanged)
	}
	e.overNode[s] = e.nodePriceList(ids)
	e.skippedNodesSh[s] = skipped
	e.popChangedSh[s] = popChanged
}

// linkUsageItem is the usage half of the link stage for link l: re-sum
// when a traversing flow's rate changed this iteration (or a mutator
// forced the link), cache reuse otherwise. The sum drops the per-flow
// active check the old inner loop carried: an inactive flow's rate is
// identically zero (rateOne and SetFlowActive both pin it), and since
// every term is non-negative, adding its exact 0.0 cannot perturb the sum.
func (e *Engine) linkUsageItem(l int, skipped *int) {
	lid := model.LinkID(l)
	recompute := e.full || e.linkForced[l]
	if !recompute {
		t := e.iteration
		for _, i := range e.ix.FlowsByLink(lid) {
			if e.rateEpoch[i] == t {
				recompute = true
				break
			}
		}
	}
	if !recompute {
		*skipped++
		return
	}
	e.linkForced[l] = false
	used := 0.0
	costs := e.ix.FlowCostsByLink(lid)
	for k, i := range e.ix.FlowsByLink(lid) {
		used += costs[k] * e.rates[i]
	}
	e.linkUsed[l] = used
}

// linkPriceRange is the Equation 13 sweep over links [lo, hi) as a
// branch-light pass over the flat price/used/capacity arrays, returning
// the range's max overload.
func (e *Engine) linkPriceRange(lo, hi int) float64 {
	over := 0.0
	t := e.iteration
	g := e.cfg.LinkGamma
	prices, used, caps := e.linkPrices, e.linkUsed, e.linkCap
	for l := lo; l < hi; l++ {
		u, cp, prev := used[l], caps[l], prices[l]
		next := linkPriceUpdate(prev, u, cp, g)
		if next != prev {
			e.linkPriceEpoch[l] = t
		}
		prices[l] = next
		if o := u - cp; o > over {
			over = o
		}
	}
	return over
}

// linkPriceList is linkPriceRange over an explicit link list.
func (e *Engine) linkPriceList(ids []int32) float64 {
	over := 0.0
	t := e.iteration
	g := e.cfg.LinkGamma
	prices, used, caps := e.linkPrices, e.linkUsed, e.linkCap
	for _, l := range ids {
		u, cp, prev := used[l], caps[l], prices[l]
		next := linkPriceUpdate(prev, u, cp, g)
		if next != prev {
			e.linkPriceEpoch[l] = t
		}
		prices[l] = next
		if o := u - cp; o > over {
			over = o
		}
	}
	return over
}

// linkRange runs the link stage over links [lo, hi) — all usage re-sums,
// then the price sweep — writing shard slot s of the stage accumulators.
func (e *Engine) linkRange(lo, hi, s int) {
	skipped := 0
	for l := lo; l < hi; l++ {
		e.linkUsageItem(l, &skipped)
	}
	e.overLink[s] = e.linkPriceRange(lo, hi)
	e.skippedLinksSh[s] = skipped
}

// linkList is linkRange over an explicit link list.
func (e *Engine) linkList(ids []int32, s int) {
	skipped := 0
	for _, l := range ids {
		e.linkUsageItem(int(l), &skipped)
	}
	e.overLink[s] = e.linkPriceList(ids)
	e.skippedLinksSh[s] = skipped
}

// rateShard, nodeShard and linkShard execute one contiguous shard of their
// stage; shard boundaries are fixed by the item count and shard count, so
// every shard touches a disjoint index range.
func (e *Engine) rateShard(s int) {
	lo, hi := e.shardRange(len(e.p.Flows), s)
	e.rateRange(lo, hi, s)
}

func (e *Engine) nodeShard(s int) {
	lo, hi := e.shardRange(len(e.p.Nodes), s)
	e.nodeRange(lo, hi, s)
}

func (e *Engine) linkShard(s int) {
	lo, hi := e.shardRange(len(e.p.Links), s)
	e.linkRange(lo, hi, s)
}

// fusedShard runs the whole iteration for shard s of the stage plan: the
// shard's flows, nodes and links are unions of connected components, so
// every value a stage reads was either written by this same goroutine
// earlier in the call (rates before admissions before link sums, exactly
// the serial order) or is untouched this iteration by anyone else. The
// trailing flow-utility refresh likewise touches only this shard's flows.
func (e *Engine) fusedShard(s int) {
	e.rateList(e.plan.flows[s], s)
	e.nodeList(e.plan.nodes[s], s)
	e.linkList(e.plan.links[s], s)

	t := e.iteration
	flows := e.plan.flows[s]
	if e.utilStale || e.full {
		for _, i := range flows {
			e.flowUtilItem(int(i))
		}
	} else {
		for _, i := range flows {
			if e.rateEpoch[i] == t {
				e.flowUtilItem(int(i))
			}
		}
		for _, i := range e.touchIDs[s] {
			if e.flowUtilEpoch[i] != t {
				e.flowUtilItem(int(i))
			}
		}
	}
	e.touchIDs[s] = e.touchIDs[s][:0]
}

// flowUtilItem recomputes flow i's cached objective contribution from the
// current rate and populations, stamping the cache epoch.
func (e *Engine) flowUtilItem(i int) {
	total := 0.0
	r := e.rates[i]
	classes := e.p.Classes
	for _, cid := range e.ix.ClassesByFlow(model.FlowID(i)) {
		if n := e.consumers[cid]; n != 0 {
			total += float64(n) * classes[cid].Utility.Value(r)
		}
	}
	e.flowUtil[i] = total
	e.flowUtilEpoch[i] = e.iteration
}

// flowPrice computes PL_i + PB_i (Equations 8 and 9) for flow i from the
// current prices and populations, using the index's dense per-flow cost
// views and precomputed per-(flow, node) class lists.
func (e *Engine) flowPrice(i model.FlowID) float64 {
	price := 0.0
	lcosts := e.ix.LinkCostsByFlow(i)
	for k, l := range e.ix.LinksByFlow(i) {
		price += lcosts[k] * e.linkPrices[l]
	}
	ncosts := e.ix.NodeCostsByFlow(i)
	classes := e.ix.ClassesByFlowNode(i)
	for k, b := range e.ix.NodesByFlow(i) {
		coeff := ncosts[k]
		for _, cid := range classes[k] {
			coeff += e.p.Classes[cid].CostPerConsumer * float64(e.consumers[cid])
		}
		price += coeff * e.nodePrices[b]
	}
	return price
}

// Utility returns the current objective value (Equation 1), computed from
// scratch. Classes of inactive flows contribute nothing (their populations
// are zero). The sum is grouped by flow — the same association the
// engine's per-flow cache uses — so a from-scratch value always matches
// Step's incremental one bit for bit.
func (e *Engine) Utility() float64 {
	total := 0.0
	for i := range e.p.Flows {
		r := e.rates[i]
		sub := 0.0
		for _, cid := range e.ix.ClassesByFlow(model.FlowID(i)) {
			if n := e.consumers[cid]; n != 0 {
				sub += float64(n) * e.p.Classes[cid].Utility.Value(r)
			}
		}
		total += sub
	}
	return total
}

// SetFlowActive includes or excludes a flow from subsequent iterations,
// modeling a flow source joining or leaving the system (the Figure 3
// experiment removes flow 5 mid-run). Deactivating zeroes the flow's rate
// and its classes' populations immediately.
func (e *Engine) SetFlowActive(i model.FlowID, active bool) {
	if e.active[i] == active {
		return
	}
	e.active[i] = active
	if !active {
		e.rates[i] = 0
		for _, cid := range e.ix.ClassesByFlow(i) {
			e.consumers[cid] = 0
			e.nodeForced[e.p.Classes[cid].Node] = true
		}
	} else {
		e.rates[i] = e.p.Flows[i].RateMin
	}
	// The rate and populations changed outside Step, so the epoch checks
	// cannot see it: force the flow, every node its path crosses (their
	// cached admission reflects the old rate) and every link it traverses
	// (stale usage sums). The objective moved too.
	e.flowForced[i] = true
	for _, b := range e.ix.NodesByFlow(i) {
		e.nodeForced[b] = true
	}
	for _, l := range e.ix.LinksByFlow(i) {
		e.linkForced[l] = true
	}
	e.utilStale = true
}

// FlowActive reports whether flow i participates in iterations.
func (e *Engine) FlowActive(i model.FlowID) bool { return e.active[i] }

// SetClassDemand changes a class's n^max mid-run, modeling consumers
// arriving at or leaving the system (the engine "runs all the time,
// responding to changes in workload", Section 2.1). The next iteration's
// greedy allocation picks the change up; prices adapt over the following
// iterations.
//
// Like every Engine method, SetClassDemand is safe only between Step
// calls: Step's worker goroutines read the class table and populations
// without synchronization, so a mutation concurrent with Step is a data
// race regardless of the worker count.
func (e *Engine) SetClassDemand(j model.ClassID, maxConsumers int) error {
	if j < 0 || int(j) >= len(e.p.Classes) {
		return fmt.Errorf("core: unknown class %d", j)
	}
	if maxConsumers < 0 {
		return fmt.Errorf("core: class %d demand %d < 0", j, maxConsumers)
	}
	e.p.Classes[j].MaxConsumers = maxConsumers
	if e.consumers[j] > maxConsumers {
		e.consumers[j] = maxConsumers
		// The truncated population is an out-of-Step change: the class's
		// flow must re-solve its rate and the objective moved.
		e.flowForced[e.p.Classes[j].Flow] = true
		e.utilStale = true
	}
	// Whether or not the population was truncated, the node's greedy
	// admission may now admit a different mix.
	e.nodeForced[e.p.Classes[j].Node] = true
	return nil
}

// SetNodeCapacity changes a node's capacity mid-run, modeling hardware
// degradation or scale-out. Safe only between Step calls, never
// concurrently with Step (see SetClassDemand).
func (e *Engine) SetNodeCapacity(b model.NodeID, capacity float64) error {
	if b < 0 || int(b) >= len(e.p.Nodes) {
		return fmt.Errorf("core: unknown node %d", b)
	}
	if capacity <= 0 {
		return fmt.Errorf("core: node %d capacity %g <= 0", b, capacity)
	}
	e.p.Nodes[b].Capacity = capacity
	e.nodeCap[b] = capacity
	// The admission budget changed; the cached used/bestUnsatisfied are
	// stale. (The price sweep reads the capacity mirror each iteration.)
	e.nodeForced[b] = true
	return nil
}

// Reset re-targets the engine at a perturbed problem, warm-starting from
// the current fixpoint: rates (clamped into p's bounds), populations
// (clamped to p's demands), prices and adaptive-gamma state all carry
// over, while the dense index views, worker pool, solvers and scratch are
// reused without reallocating. p must be topology-compatible with the
// original problem — same flows, nodes, links and classes, with the same
// class attachments and the same cost-map sparsity; only cost values,
// capacities, rate bounds, demands and utility functions may differ (see
// model.Index.Refresh). On error the engine still runs the old problem.
//
// After Reset the iteration counter restarts at zero and the first Step
// recomputes everything; subsequent iterations are incremental again. A
// sweep that Resets through nearby problems converges in far fewer
// iterations than cold-starting an engine per point — see the
// lrgp-experiments "sweep" experiment and BenchmarkSweepWarmStart.
func (e *Engine) Reset(p *model.Problem) error {
	if e.closed {
		panic("core: Engine.Reset called after Close")
	}
	if err := model.Validate(p); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := e.ix.Refresh(p); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.warmRestart(p)
	return nil
}

// ResetRouting is Reset for problems whose routing moved: the member sets
// (flows, nodes, links, classes and class attachments) must be unchanged,
// but dirty elements named by d may have gained or lost (resource, flow)
// cost entries — the shape Refresh rejects. The index is re-targeted
// incrementally (model.Index.RefreshRouting, cost proportional to the
// delta) and, unlike Reset, the stage plan is rebuilt: routing defines
// which flows share resources, so the crossing-writes analysis fixed at
// NewEngine no longer holds. Warm state carries over exactly as in Reset.
// On an index error the engine still runs the old problem; plan rebuild
// happens only after the index committed.
func (e *Engine) ResetRouting(p *model.Problem, d model.RoutingDelta) error {
	if e.closed {
		panic("core: Engine.ResetRouting called after Close")
	}
	if err := model.Validate(p); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := e.ix.RefreshRouting(p, d); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if e.shards > 1 {
		e.plan = newStagePlan(p, e.ix, e.shards)
		e.fused = e.plan.fused
	}
	if e.cfg.Adaptive {
		// Re-routing changes the load composition on every node a dirty
		// flow now crosses, not just the nodes whose membership changed:
		// a node that keeps flow i but sees i's detoured traffic at a new
		// rate is tuned for gone conditions too, and a stepsize adapted
		// deep into an equilibrium dead band can sustain a limit cycle
		// the fresh heuristic would damp. Restart the controllers on the
		// damage footprint (reseed is idempotent; untouched nodes keep
		// their tuning, preserving warm-start locality).
		for _, b := range d.Nodes {
			e.gamma.reseed(int(b))
		}
		for _, i := range d.Flows {
			for _, b := range e.ix.NodesByFlow(i) {
				e.gamma.reseed(int(b))
			}
		}
	}
	e.warmRestart(p)
	return nil
}

// warmRestart is the shared tail of Reset and ResetRouting: re-targets
// solvers at p, clamps the carried-over rates and populations into p's
// bounds, and restarts the incremental machinery so the first Step
// recomputes everything.
func (e *Engine) warmRestart(p *model.Problem) {
	e.p = p
	for i := range e.solvers {
		e.solvers[i].bind(p)
	}
	for i := range p.Flows {
		if e.active[i] {
			e.rates[i] = clamp(e.rates[i], p.Flows[i].RateMin, p.Flows[i].RateMax)
		}
	}
	for j := range p.Classes {
		if e.consumers[j] > p.Classes[j].MaxConsumers {
			e.consumers[j] = p.Classes[j].MaxConsumers
		}
	}

	// Every cached value is suspect under the new problem: restart the
	// epoch clock and force a full first iteration. The epoch and
	// touch-dedup arrays must really be cleared, not just left behind —
	// the restarted iteration counter will revisit their old values, and a
	// stale match would wrongly skip a recompute.
	e.iteration = 0
	e.util, e.utilStale = 0, true
	for i := range e.flowForced {
		e.flowForced[i] = true
		e.rateEpoch[i] = 0
		e.flowUtilEpoch[i] = 0
	}
	for b := range e.nodeForced {
		e.nodeForced[b] = true
		e.nodePriceEpoch[b] = 0
		e.nodeCap[b] = p.Nodes[b].Capacity
	}
	for l := range e.linkForced {
		e.linkForced[l] = true
		e.linkPriceEpoch[l] = 0
		e.linkCap[l] = p.Links[l].Capacity
	}
	for j := range e.popEpoch {
		e.popEpoch[j] = 0
	}
	for s := range e.touchSeen {
		seen := e.touchSeen[s]
		for i := range seen {
			seen[i] = 0
		}
		e.touchIDs[s] = e.touchIDs[s][:0]
	}
}

// Iteration returns the number of completed iterations.
func (e *Engine) Iteration() int { return e.iteration }

// Problem returns the engine's problem.
func (e *Engine) Problem() *model.Problem { return e.p }

// Index returns the engine's precomputed lookup index.
func (e *Engine) Index() *model.Index { return e.ix }

// Allocation returns a copy of the current rates and populations.
func (e *Engine) Allocation() model.Allocation {
	a := model.Allocation{
		Rates:     make([]float64, len(e.rates)),
		Consumers: make([]int, len(e.consumers)),
	}
	copy(a.Rates, e.rates)
	copy(a.Consumers, e.consumers)
	return a
}

// NodePrices returns a copy of the node price vector.
func (e *Engine) NodePrices() []float64 {
	out := make([]float64, len(e.nodePrices))
	copy(out, e.nodePrices)
	return out
}

// LinkPrices returns a copy of the link price vector.
func (e *Engine) LinkPrices() []float64 {
	out := make([]float64, len(e.linkPrices))
	copy(out, e.linkPrices)
	return out
}

// Gammas returns a copy of the per-node adaptive stepsizes (meaningful only
// with Config.Adaptive).
func (e *Engine) Gammas() []float64 {
	out := make([]float64, len(e.gamma.val))
	copy(out, e.gamma.val)
	return out
}

// Result summarizes a Solve run.
type Result struct {
	// Utility is the objective value at the final iteration.
	Utility float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the 0.1% amplitude rule was met.
	Converged bool
	// ConvergedAt is the first iteration satisfying the rule (or -1).
	ConvergedAt int
	// Allocation is the final allocation.
	Allocation model.Allocation
	// Trace is the utility after each iteration.
	Trace []float64
}

// Solve runs until the paper's convergence rule (utility oscillation
// amplitude < 0.1% over a trailing window) or maxIter iterations,
// whichever comes first, and returns the outcome. Iterations continue for
// one full window after first detection so the reported utility is the
// settled value.
func (e *Engine) Solve(maxIter int) Result {
	if maxIter <= 0 {
		maxIter = 250
	}
	det := metrics.NewConvergenceDetector(0, 0)
	trace := make([]float64, 0, maxIter)
	for t := 0; t < maxIter; t++ {
		r := e.Step()
		trace = append(trace, r.Utility)
		if det.Observe(r.Utility) {
			break
		}
	}
	e.cfg.Telemetry.ObserveConvergence(det.Converged(), det.ConvergedAt())
	return Result{
		Utility:     trace[len(trace)-1],
		Iterations:  len(trace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       trace,
	}
}
