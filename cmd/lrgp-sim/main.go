// Command lrgp-sim runs the LRGP optimizer on a workload and reports the
// resulting allocation, utility and convergence behavior.
//
// Usage:
//
//	lrgp-sim [-workload base|tiny|metro|metro-small|12f-6n|@file.json] [-shape log|r0.25|r0.5|r0.75]
//	         [-iters 250] [-gamma 0.1] [-adaptive] [-workers 0] [-full-step]
//	         [-multirate] [-verbose] [-chart] [-csv] [-json] [-alloc]
//	         [-telemetry-addr :9090]
//
// With -telemetry-addr the run serves Prometheus /metrics, /debug/pprof,
// /debug/vars and /snapshot while it executes — attach a profiler or
// scraper to a long solve — and shuts the endpoint down when it exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrgp-sim", flag.ContinueOnError)
	var (
		workloadSpec = fs.String("workload", "base", "workload: base, tiny, metro, metro-small, <F>f-<N>n, or @file.json")
		shapeName    = fs.String("shape", "log", "utility shape: log, r0.25, r0.5, r0.75")
		iters        = fs.Int("iters", 250, "maximum LRGP iterations")
		gamma        = fs.Float64("gamma", 0.1, "fixed node-price stepsize (ignored with -adaptive)")
		adaptive     = fs.Bool("adaptive", true, "use the adaptive gamma heuristic")
		workers      = fs.Int("workers", 0, "engine Step workers (0 = GOMAXPROCS, 1 = serial); results are identical for every count")
		fullStep     = fs.Bool("full-step", false, "disable incremental dirty-set skipping and recompute every flow and constraint each iteration; results are identical either way")
		chart        = fs.Bool("chart", false, "draw an ASCII chart of the utility trace")
		csv          = fs.Bool("csv", false, "emit the utility trace as CSV")
		showAlloc    = fs.Bool("alloc", false, "print the final allocation")
		multi        = fs.Bool("multirate", false, "use the multirate extension (per-class delivery rates)")
		verbose      = fs.Bool("verbose", false, "print per-node and per-link diagnostics")
		jsonOut      = fs.Bool("json", false, "emit the result as JSON (machine-readable)")
		telAddr      = fs.String("telemetry-addr", "", "serve /metrics, /debug/pprof, /debug/vars and /snapshot on this address while the run executes; empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	shape, err := workload.ParseShape(*shapeName)
	if err != nil {
		return err
	}
	p, err := workload.Parse(*workloadSpec, shape)
	if err != nil {
		return err
	}

	cfg := core.Config{Adaptive: *adaptive, Workers: *workers, FullRecompute: *fullStep}
	if !*adaptive {
		cfg.Gamma1 = *gamma
		cfg.Gamma2 = *gamma
	}
	var snap atomic.Pointer[core.Snapshot]
	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = telemetry.NewEngineMetrics(reg)
		srv, err := telemetry.ListenAndServe(*telAddr, telemetry.NewMux(reg, func() (any, bool) {
			s := snap.Load()
			if s == nil {
				return nil, false
			}
			return s, true
		}))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "telemetry  listening on http://%s (/metrics /snapshot /debug/pprof /debug/vars)\n", srv.Addr)
	}
	if *multi {
		return runMultirate(out, p, cfg, *iters, *showAlloc)
	}
	e, err := core.NewEngine(p, cfg)
	if err != nil {
		return err
	}
	defer e.Close()
	res := e.Solve(*iters)
	if *telAddr != "" {
		s := e.Snapshot()
		snap.Store(&s)
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Workload    string           `json:"workload"`
			Utility     float64          `json:"utility"`
			Converged   bool             `json:"converged"`
			ConvergedAt int              `json:"convergedAt"`
			Iterations  int              `json:"iterations"`
			Allocation  model.Allocation `json:"allocation"`
			Snapshot    core.Snapshot    `json:"snapshot"`
		}{p.Name, res.Utility, res.Converged, res.ConvergedAt, res.Iterations, res.Allocation, e.Snapshot()})
	}

	fmt.Fprintf(out, "workload  %s (%d flows, %d nodes, %d classes)\n", p.Name, len(p.Flows), len(p.Nodes), len(p.Classes))
	fmt.Fprintf(out, "utility   %.0f\n", res.Utility)
	if res.Converged {
		fmt.Fprintf(out, "converged at iteration %d (0.1%% amplitude rule)\n", res.ConvergedAt)
	} else {
		fmt.Fprintf(out, "not converged within %d iterations\n", res.Iterations)
	}
	if err := model.CheckFeasible(p, e.Index(), res.Allocation, 1e-6); err != nil {
		fmt.Fprintf(out, "feasible  no: %v\n", err)
	} else {
		fmt.Fprintln(out, "feasible  yes")
	}

	if *showAlloc {
		tb := trace.NewTable("allocation", "flow", "rate", "classes (admitted/max)")
		ix := e.Index()
		for i, f := range p.Flows {
			detail := ""
			for _, cid := range ix.ClassesByFlow(model.FlowID(i)) {
				c := p.Classes[cid]
				detail += fmt.Sprintf("%d:%d/%d ", cid, res.Allocation.Consumers[cid], c.MaxConsumers)
			}
			tb.Add(f.Name, fmt.Sprintf("%.1f", res.Allocation.Rates[i]), detail)
		}
		tb.Render(out)
	}

	if *verbose {
		s := e.Snapshot()
		fmt.Fprintf(out, "snapshot  %s\n", s.String())
		tb := trace.NewTable("node diagnostics", "node", "usage", "capacity", "load", "price", "gamma")
		for b := range p.Nodes {
			tb.Add(p.Nodes[b].Name,
				fmt.Sprintf("%.0f", s.NodeUsage[b]),
				fmt.Sprintf("%.0f", s.NodeCapacity[b]),
				fmt.Sprintf("%.1f%%", 100*s.NodeUsage[b]/s.NodeCapacity[b]),
				fmt.Sprintf("%.4f", s.NodePrices[b]),
				fmt.Sprintf("%.4f", s.Gammas[b]))
		}
		tb.Render(out)
		if len(p.Links) > 0 {
			lt := trace.NewTable("link diagnostics", "link", "usage", "capacity", "price")
			for l := range p.Links {
				lt.Add(p.Links[l].Name,
					fmt.Sprintf("%.0f", s.LinkUsage[l]),
					fmt.Sprintf("%.0f", s.LinkCapacity[l]),
					fmt.Sprintf("%.4f", s.LinkPrices[l]))
			}
			lt.Render(out)
		}
	}

	if *chart || *csv {
		fig := trace.NewSeriesSet("utility per iteration", "iteration")
		for i := range res.Trace {
			fig.X = append(fig.X, float64(i+1))
		}
		fig.AddSeries("utility", res.Trace)
		if *chart {
			fig.RenderASCII(out, 100, 20)
		}
		if *csv {
			fig.RenderCSV(out)
		}
	}
	return nil
}

// runMultirate solves with the multirate extension and reports the
// delivery-rate split.
func runMultirate(out io.Writer, p *model.Problem, cfg core.Config, iters int, showAlloc bool) error {
	e, err := multirate.NewEngine(p, cfg)
	if err != nil {
		return err
	}
	res := e.Solve(iters)

	fmt.Fprintf(out, "workload  %s (multirate; %d flows, %d nodes, %d classes)\n",
		p.Name, len(p.Flows), len(p.Nodes), len(p.Classes))
	fmt.Fprintf(out, "utility   %.0f\n", res.Utility)
	if res.Converged {
		fmt.Fprintf(out, "converged at iteration %d (0.1%% amplitude rule)\n", res.ConvergedAt)
	} else {
		fmt.Fprintf(out, "not converged within %d iterations\n", res.Iterations)
	}
	ix := model.NewIndex(p)
	if err := multirate.CheckFeasible(p, ix, res.Allocation, 1e-6); err != nil {
		fmt.Fprintf(out, "feasible  no: %v\n", err)
	} else {
		fmt.Fprintln(out, "feasible  yes")
	}
	if showAlloc {
		tb := trace.NewTable("multirate allocation", "class", "delivery", "source", "admitted/max")
		for j, c := range p.Classes {
			tb.Add(c.Name,
				fmt.Sprintf("%.1f", res.Allocation.Delivery[j]),
				fmt.Sprintf("%.1f", res.Allocation.SourceRates[c.Flow]),
				fmt.Sprintf("%d/%d", res.Allocation.Consumers[j], c.MaxConsumers))
		}
		tb.Render(out)
	}
	return nil
}
