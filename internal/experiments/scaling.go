package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ScalingRow is one worker count's measured Step cost on the scaling
// workload.
type ScalingRow struct {
	// Workers is the engine's configured worker count.
	Workers int
	// Mode reports how Step executed: "serial", "sharded" (three-barrier
	// stages) or "fused" (single-barrier componentized schedule).
	Mode string
	// NsPerStep is the mean steady-state Step wall time.
	NsPerStep float64
	// Speedup is the workers=1 NsPerStep divided by this row's.
	Speedup float64
}

// ScalingResult is the X9 scaling experiment's output.
type ScalingResult struct {
	// Workload is the resolved workload spec.
	Workload string
	// Flows, Nodes and Classes record the instance size.
	Flows, Nodes, Classes int
	// Settle and Measured are the iteration counts spent reaching steady
	// state and timing, per worker count.
	Settle, Measured int
	// Rows has one entry per worker count, ascending.
	Rows []ScalingRow
}

// ScalingExperiment measures steady-state Step wall time against worker
// count on a named workload (Options.Workload; default the metro-small
// pod preset, whose componentized structure runs the fused schedule —
// DESIGN.md §5). Each engine first settles so the dirty-set skip path is
// active, as in production steady state; results are bit-identical across
// worker counts, so the rows differ only in wall clock. Wall times are
// machine- and load-dependent: on a single-CPU host every speedup sits
// near 1.0 by construction.
func ScalingExperiment(opts Options) (*ScalingResult, error) {
	o := opts.normalized()
	spec := o.Workload
	if spec == "" {
		spec = "metro-small"
	}
	p, err := workload.Parse(spec, 0)
	if err != nil {
		return nil, err
	}

	res := &ScalingResult{
		Workload: spec,
		Flows:    len(p.Flows),
		Nodes:    len(p.Nodes),
		Classes:  len(p.Classes),
		Settle:   o.Iterations / 2,
		Measured: o.Iterations,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		e, err := core.NewEngine(p, core.Config{Adaptive: true, Workers: workers})
		if err != nil {
			return nil, err
		}
		for i := 0; i < res.Settle; i++ {
			e.Step()
		}
		start := time.Now()
		for i := 0; i < res.Measured; i++ {
			e.Step()
		}
		elapsed := time.Since(start)
		s := e.Snapshot()
		mode := "serial"
		switch {
		case s.Fused:
			mode = "fused"
		case s.Sharded:
			mode = "sharded"
		}
		row := ScalingRow{
			Workers:   workers,
			Mode:      mode,
			NsPerStep: float64(elapsed.Nanoseconds()) / float64(res.Measured),
			Speedup:   1,
		}
		if len(res.Rows) > 0 && row.NsPerStep > 0 {
			row.Speedup = res.Rows[0].NsPerStep / row.NsPerStep
		}
		res.Rows = append(res.Rows, row)
		e.Close()
	}
	return res, nil
}

// RenderScaling renders the scaling experiment as a table.
func RenderScaling(res *ScalingResult) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("X9: Step scaling vs workers (%s: %d flows, %d nodes, %d classes; %d steps after %d settling)",
			res.Workload, res.Flows, res.Nodes, res.Classes, res.Measured, res.Settle),
		"Workers", "Mode", "ns/step", "Speedup")
	for _, r := range res.Rows {
		t.Add(
			fmt.Sprint(r.Workers),
			r.Mode,
			fmt.Sprintf("%.0f", r.NsPerStep),
			fmt.Sprintf("%.2fx", r.Speedup),
		)
	}
	return t
}
