package dist

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestAsyncToleratesMessageLoss drops 10% of all messages: the paper's
// Section 3.5 asynchronous formulation (free-running agents with price
// averaging) must still reach the synchronous optimum, because agents use
// the latest values they have rather than blocking on a full round.
func TestAsyncToleratesMessageLoss(t *testing.T) {
	p := workload.Base()

	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Solve(400).Utility

	net := transport.NewMemory()
	defer net.Close()
	net.SetDropRate(0.10, 42)

	cl, err := New(p, Config{
		Core: core.Config{Adaptive: true},
		Mode: Async,
		Tick: time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	deadline := time.After(30 * time.Second)
	inBand := 0
	for {
		select {
		case <-deadline:
			t.Fatalf("did not converge under 10%% loss; last %.0f vs %.0f", cl.Sample().Utility, want)
		default:
		}
		s := cl.Sample()
		if math.Abs(s.Utility-want)/want < 0.03 {
			inBand++
		} else {
			inBand = 0
		}
		if inBand >= 10 {
			// Held within 3% of the lossless optimum.
			if dropped := net.NetStats().Dropped; dropped == 0 {
				t.Error("fault injection inactive: nothing was dropped")
			}
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// TestAsyncSurvivesTransientPartition cuts one node agent off from the
// rest mid-run and heals it; the system must re-stabilize.
func TestAsyncSurvivesTransientPartition(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{
		Core: core.Config{Adaptive: true},
		Mode: Async,
		Tick: time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	waitStable := func(tag string, tol float64) float64 {
		det := metrics.NewConvergenceDetector(10, tol)
		deadline := time.After(20 * time.Second)
		for {
			select {
			case <-deadline:
				t.Fatalf("%s: did not stabilize; last %.0f", tag, cl.Sample().Utility)
			default:
			}
			s := cl.Sample()
			if det.Observe(s.Utility) && s.Utility > 0 {
				return s.Utility
			}
			time.Sleep(3 * time.Millisecond)
		}
	}

	before := waitStable("pre-partition", 0.05)

	// Cut node/1 off for a while. Its flows stop hearing its price; the
	// collector keeps the last reported populations.
	net.SetPartition(nodeName(1), 9)
	time.Sleep(100 * time.Millisecond)
	net.ClearPartitions()

	after := waitStable("post-heal", 0.05)
	if rel := math.Abs(after-before) / before; rel > 0.05 {
		t.Errorf("post-heal utility %.0f deviates %.1f%% from pre-partition %.0f", after, rel*100, before)
	}
}

// TestMemoryMeterCountsClusterTraffic sanity-checks the transport meter
// against a known round structure: every synchronous round moves at least
// one message per flow and per node.
func TestMemoryMeterCountsClusterTraffic(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const rounds = 10
	if _, err := cl.Run(rounds, time.Minute); err != nil {
		t.Fatal(err)
	}
	stats := net.NetStats()
	minPerRound := uint64(len(p.Flows) + len(p.Nodes))
	if stats.Delivered < rounds*minPerRound {
		t.Errorf("delivered %d messages over %d rounds, want >= %d", stats.Delivered, rounds, rounds*minPerRound)
	}
	if stats.Bytes == 0 {
		t.Error("byte counter did not advance")
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d without fault injection", stats.Dropped)
	}
}
