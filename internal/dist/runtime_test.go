package dist

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

// runTrajectory spins up a cluster, runs it for the given rounds, closes
// it, and returns the per-round stats.
func runTrajectory(t *testing.T, cfg Config, net transport.Network, rounds int) []RoundStats {
	t.Helper()
	cl, err := New(workload.Base(), cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Run(rounds, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	return stats
}

// requireIdentical asserts two trajectories are bit-identical: same rounds,
// exactly equal utilities.
func requireIdentical(t *testing.T, tag string, got, want []RoundStats) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rounds vs %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i].Round != want[i].Round || got[i].Utility != want[i].Utility {
			t.Fatalf("%s: round %d: %v vs %v", tag, i+1, got[i], want[i])
		}
	}
}

// TestBinaryWireBitIdentical: the binary codec must change bytes on the
// wire, not the computation — the trajectory is exactly the JSON one.
func TestBinaryWireBitIdentical(t *testing.T) {
	cfg := Config{Core: core.Config{Adaptive: true}}
	netJ := transport.NewMemory()
	defer netJ.Close()
	ref := runTrajectory(t, cfg, netJ, 50)

	cfg.Wire = transport.WireBinary
	netB := transport.NewMemory()
	defer netB.Close()
	got := runTrajectory(t, cfg, netB, 50)
	requireIdentical(t, "binary vs json", got, ref)
}

// TestBinaryWireOverTCP runs the binary codec through the real TCP framing
// end to end and checks engine parity.
func TestBinaryWireOverTCP(t *testing.T) {
	p := workload.Base()
	e, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	var engineTrace []float64
	for i := 0; i < rounds; i++ {
		engineTrace = append(engineTrace, e.Step().Utility)
	}

	net := transport.NewTCP()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}, Wire: transport.WireBinary}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stats, err := cl.Run(rounds, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if rel := math.Abs(s.Utility-engineTrace[i]) / math.Max(1, engineTrace[i]); rel > 1e-9 {
			t.Fatalf("round %d: dist-tcp-binary %g vs engine %g", i+1, s.Utility, engineTrace[i])
		}
	}
}

// TestBatchedBitIdentical: gateway batching changes framing, not values —
// the batched trajectory must exactly equal the unbatched one, for both
// wire formats.
func TestBatchedBitIdentical(t *testing.T) {
	for _, wire := range []transport.Wire{transport.WireJSON, transport.WireBinary} {
		cfg := Config{Core: core.Config{Adaptive: true}, Wire: wire}
		netPlain := transport.NewMemory()
		ref := runTrajectory(t, cfg, netPlain, 40)
		netPlain.Close()

		cfg.Batch = true
		cfg.Hosts = 4
		netBatch := transport.NewMemory()
		got := runTrajectory(t, cfg, netBatch, 40)
		netBatch.Close()
		requireIdentical(t, "batched vs plain ("+wire.String()+")", got, ref)
	}
}

// TestStalenessZeroBitIdentical is the golden test for the bounded-
// staleness loop: with K=0 its schedule must collapse to the barrier
// schedule exactly, producing a bit-identical trajectory to the legacy
// synchronous loop.
func TestStalenessZeroBitIdentical(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		cfg := Config{Core: core.Config{Adaptive: adaptive}}
		netRef := transport.NewMemory()
		ref := runTrajectory(t, cfg, netRef, 60)
		netRef.Close()

		// staleLoop forces the bounded-staleness code path at K=0.
		cfg.staleLoop = true
		netK0 := transport.NewMemory()
		got := runTrajectory(t, cfg, netK0, 60)
		netK0.Close()
		requireIdentical(t, "staleness K=0 vs barrier", got, ref)
	}
}

// tailMeanDeviation returns the relative deviation of the mean utility of
// the last (up to) n finalized rounds from want. Individual converged
// rounds flicker between near-equivalent discrete optima (see
// TestAsyncConverges), so the converged level is judged on a tail mean.
func tailMeanDeviation(stats []RoundStats, want float64, n int) float64 {
	if len(stats) > n {
		stats = stats[len(stats)-n:]
	}
	mean := 0.0
	for _, s := range stats {
		mean += s.Utility
	}
	mean /= float64(len(stats))
	return math.Abs(mean-want) / want
}

// TestStalenessConvergesUnderLoss: with K>0, 10% message loss and delivery
// delay, the cluster must still converge to the synchronous optimum within
// 1% — the Section 3.5 claim, now on the round-structured (rather than
// free-running) runtime.
func TestStalenessConvergesUnderLoss(t *testing.T) {
	p := workload.Base()
	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Solve(400).Utility

	net := transport.NewMemory()
	defer net.Close()
	net.SetDropRate(0.10, 7)
	net.SetDropExempt("cluster-ctrl")
	net.SetDelay(200 * time.Microsecond)

	cl, err := New(p, Config{
		Core:      core.Config{Adaptive: true},
		Staleness: 1,
		Resend:    2 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stats, err := cl.Run(300, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no rounds completed")
	}
	if rel := tailMeanDeviation(stats, want, 8); rel > 0.01 {
		t.Errorf("converged utility deviates %.2f%% from synchronous %.2f (%d rounds finalized)",
			rel*100, want, len(stats))
	}
	if net.NetStats().Dropped == 0 {
		t.Error("fault injection inactive: nothing was dropped")
	}
}

// TestClusterThousandAgents proves the full data plane at scale: 1008
// agents (672 flows + 336 nodes) on batched gateways with the binary codec
// and bounded staleness, under 10% message loss. The converged utility must
// land within 1% of the in-process engine. Sized to stay in -short (it is
// part of the race CI job).
func TestClusterThousandAgents(t *testing.T) {
	p := workload.Scaled(workload.Config{FlowCopies: 112})
	if agents := len(p.Flows) + len(p.Nodes); agents < 1000 {
		t.Fatalf("workload too small: %d agents", agents)
	}
	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Solve(300).Utility

	net := transport.NewMemory()
	defer net.Close()
	net.SetDropRate(0.10, 1)
	net.SetDropExempt("cluster-ctrl")

	cl, err := New(p, Config{
		Core:      core.Config{Adaptive: true},
		Wire:      transport.WireBinary,
		Batch:     true,
		Hosts:     24,
		Staleness: 2,
		Resend:    5 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stats, err := cl.Run(120, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no rounds completed")
	}
	if rel := tailMeanDeviation(stats, want, 5); rel > 0.01 {
		t.Errorf("converged utility deviates %.2f%% from engine %.2f (%d rounds finalized)",
			rel*100, want, len(stats))
	}
	if net.NetStats().Dropped == 0 {
		t.Error("fault injection inactive: nothing was dropped")
	}
}

// TestBinaryBytesReduction: the binary codec must move at least 3x fewer
// payload bytes per round than JSON for the same trajectory.
func TestBinaryBytesReduction(t *testing.T) {
	cfg := Config{Core: core.Config{Adaptive: true}}
	netJ := transport.NewMemory()
	runTrajectory(t, cfg, netJ, 20)
	jsonBytes := netJ.NetStats().Bytes
	netJ.Close()

	cfg.Wire = transport.WireBinary
	netB := transport.NewMemory()
	runTrajectory(t, cfg, netB, 20)
	binBytes := netB.NetStats().Bytes
	netB.Close()

	if binBytes == 0 || jsonBytes == 0 {
		t.Fatalf("byte meters did not advance: json=%d binary=%d", jsonBytes, binBytes)
	}
	if ratio := float64(jsonBytes) / float64(binBytes); ratio < 3 {
		t.Errorf("binary codec saves %.2fx bytes (json %d, binary %d), want >= 3x", ratio, jsonBytes, binBytes)
	}
}

// TestBatchFrameReduction: on a 102-flow/102-node cluster, gateway
// batching must cut network frames per round by at least 5x.
func TestBatchFrameReduction(t *testing.T) {
	p := workload.Scaled(workload.Config{FlowCopies: 17, NodeSetCopies: 2})
	if len(p.Flows) != 102 || len(p.Nodes) != 102 {
		t.Fatalf("unexpected workload shape: %d flows, %d nodes", len(p.Flows), len(p.Nodes))
	}
	const rounds = 10
	run := func(cfg Config) uint64 {
		net := transport.NewMemory()
		defer net.Close()
		cl, err := New(p, cfg, net)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Run(rounds, 2*time.Minute); err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		return net.NetStats().Delivered
	}

	plain := run(Config{Core: core.Config{Adaptive: true}})
	batched := run(Config{Core: core.Config{Adaptive: true}, Batch: true, Hosts: 12})
	if batched == 0 || plain == 0 {
		t.Fatalf("frame meters did not advance: plain=%d batched=%d", plain, batched)
	}
	if ratio := float64(plain) / float64(batched); ratio < 5 {
		t.Errorf("batching saves %.2fx frames (plain %d, batched %d), want >= 5x", ratio, plain, batched)
	}
}

// TestCloseSurfacesSendFailure: a failed control send during Close must
// surface in the returned error, not be silently discarded (the historical
// bug dropped every Encode/Send error on the floor).
func TestCloseSurfacesSendFailure(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Run(5, time.Minute); err != nil {
		t.Fatal(err)
	}
	net.Close() // control sends now fail with ErrClosed
	if err := cl.Close(); err == nil {
		t.Error("Close returned nil after the transport failed its control sends")
	}
}
