package broker_test

import (
	"fmt"
	"time"

	"repro/internal/broker"
	"repro/internal/model"
	"repro/internal/utility"
)

// Example wires the full enactment path: attach consumers, enact an
// allocation, publish through a producer, observe filtering and
// admission.
func Example() {
	problem := &model.Problem{
		Flows: []model.Flow{{ID: 0, Name: "prices", Source: 0, RateMin: 10, RateMax: 1000}},
		Nodes: []model.Node{{ID: 0, Capacity: 1e6, FlowCost: map[model.FlowID]float64{0: 3}}},
		Classes: []model.Class{
			{ID: 0, Name: "watchers", Flow: 0, Node: 0, MaxConsumers: 10,
				CostPerConsumer: 19, Utility: utility.NewLog(10)},
		},
	}
	clock := time.Date(2026, 7, 4, 9, 30, 0, 0, time.UTC)
	b, err := broker.New(problem, broker.WithClock(func() time.Time { return clock }))
	if err != nil {
		fmt.Println(err)
		return
	}

	received := 0
	_, _ = b.AttachConsumer(0, broker.AttrFilter{Attr: "price", Op: broker.CmpGT, Value: 80},
		func(broker.Message) { received++ })

	// Enact an optimizer decision: rate 100 msg/s, 1 consumer admitted.
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{100}, Consumers: []int{1}})

	producer, _ := b.RegisterProducer(0)
	for _, price := range []float64{79, 81, 85, 80} {
		_ = producer.Publish(map[string]float64{"price": price}, "tick")
	}
	stats, _ := b.ClassStats(0)
	fmt.Printf("published 4, delivered %d (filter: price > 80), filtered %d\n",
		received, stats.Filtered)
	// Output:
	// published 4, delivered 2 (filter: price > 80), filtered 2
}
