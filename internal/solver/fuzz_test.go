package solver

import (
	"math"
	"testing"
)

// FuzzBisectDecreasing fuzzes the LRGP stationarity shape: f(r) =
// scale/(shift+r) - price on an interval that brackets the root. The
// solver must return the analytic root to tolerance and never escape the
// interval.
func FuzzBisectDecreasing(f *testing.F) {
	f.Add(100.0, 1.0, 0.5, 10.0, 1000.0)
	f.Add(1.0, 0.001, 0.9, 1.0, 2.0)
	f.Add(1e6, 10.0, 1e-3, 1.0, 1e9)
	f.Fuzz(func(t *testing.T, scale, shift, price, lo, hi float64) {
		// Constrain to the meaningful regime.
		if !(scale > 0 && scale < 1e12) || !(shift > 0 && shift < 1e6) ||
			!(price > 0 && price < 1e12) || !(lo >= 0 && lo < hi && hi < 1e12) {
			t.Skip()
		}
		fn := func(r float64) float64 { return scale/(shift+r) - price }
		if fn(lo) <= 0 || fn(hi) >= 0 {
			t.Skip() // not bracketed
		}
		root, err := Bisect(fn, lo, hi, Options{})
		if err != nil {
			t.Fatalf("Bisect(%g,%g,%g,[%g,%g]): %v", scale, shift, price, lo, hi, err)
		}
		if root < lo || root > hi || math.IsNaN(root) {
			t.Fatalf("root %g escaped [%g, %g]", root, lo, hi)
		}
		want := scale/price - shift
		if math.Abs(root-want) > 1e-6*(1+math.Abs(want)) && math.Abs(fn(root)) > 1e-6*(1+price) {
			t.Fatalf("root %g, want %g (residual %g)", root, want, fn(root))
		}
	})
}

// FuzzNewtonBisect cross-checks the safeguarded Newton solver against
// plain bisection on the same shape.
func FuzzNewtonBisect(f *testing.F) {
	f.Add(100.0, 1.0, 0.5)
	f.Add(7.5, 3.0, 0.01)
	f.Fuzz(func(t *testing.T, scale, shift, price float64) {
		if !(scale > 0 && scale < 1e9) || !(shift > 0 && shift < 1e3) || !(price > 0 && price < 1e9) {
			t.Skip()
		}
		fn := func(r float64) float64 { return scale/(shift+r) - price }
		dfn := func(r float64) float64 { return -scale / ((shift + r) * (shift + r)) }
		lo, hi := 0.0, 1e10
		if fn(lo) <= 0 || fn(hi) >= 0 {
			t.Skip()
		}
		a, errA := Bisect(fn, lo, hi, Options{})
		b, errB := NewtonBisect(fn, dfn, lo, hi, Options{})
		if errA != nil || errB != nil {
			t.Fatalf("errors: %v / %v", errA, errB)
		}
		if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("solvers disagree: %g vs %g", a, b)
		}
	})
}
