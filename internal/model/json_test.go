package model

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/utility"
)

func TestProblemJSONRoundTrip(t *testing.T) {
	p := twoNodeProblem()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Problem
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := Validate(&back); err != nil {
		t.Fatalf("round-tripped problem invalid: %v", err)
	}
	if !reflect.DeepEqual(p.Flows, back.Flows) {
		t.Errorf("flows: got %+v, want %+v", back.Flows, p.Flows)
	}
	if !reflect.DeepEqual(p.Nodes, back.Nodes) {
		t.Errorf("nodes: got %+v, want %+v", back.Nodes, p.Nodes)
	}
	if !reflect.DeepEqual(p.Links, back.Links) {
		t.Errorf("links: got %+v, want %+v", back.Links, p.Links)
	}
	if len(back.Classes) != len(p.Classes) {
		t.Fatalf("classes: got %d, want %d", len(back.Classes), len(p.Classes))
	}
	for j := range p.Classes {
		if back.Classes[j].Utility != p.Classes[j].Utility {
			t.Errorf("class %d utility: got %#v, want %#v", j, back.Classes[j].Utility, p.Classes[j].Utility)
		}
	}

	// The objective value must survive the round trip exactly.
	a := Allocation{Rates: []float64{10, 25}, Consumers: []int{2, 1, 3}}
	if got, want := TotalUtility(&back, a), TotalUtility(p, a); got != want {
		t.Errorf("utility after round trip = %g, want %g", got, want)
	}
}

func TestProblemMarshalRejectsForeignUtility(t *testing.T) {
	p := twoNodeProblem()
	p.Classes[0].Utility = foreignUtility{}
	if _, err := json.Marshal(p); err == nil {
		t.Error("Marshal accepted a non-serializable utility")
	}
}

func TestProblemUnmarshalRejectsBadUtility(t *testing.T) {
	bad := []byte(`{
		"flows": [{"id":0,"source":0,"rateMin":1,"rateMax":10}],
		"nodes": [{"id":0,"capacity":100,"flowCost":{"0":1}}],
		"classes": [{"id":0,"flow":0,"node":0,"maxConsumers":1,
			"costPerConsumer":1,"utility":{"kind":"nope","scale":1}}]
	}`)
	var p Problem
	if err := json.Unmarshal(bad, &p); err == nil {
		t.Error("Unmarshal accepted an unknown utility kind")
	}
}

// TestProblemJSONRoundTripProperty fuzzes the round trip across random
// workloads: serialize, parse, and compare the objective on a shared
// allocation.
func TestProblemJSONRoundTripProperty(t *testing.T) {
	// The workload package depends on model, so random instances are
	// constructed by hand here.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		nFlows := 1 + rng.Intn(4)
		nNodes := 1 + rng.Intn(3)
		p := &Problem{Name: "fuzz"}
		for b := 0; b < nNodes; b++ {
			p.Nodes = append(p.Nodes, Node{
				ID: NodeID(b), Capacity: 1000 + rng.Float64()*1e6,
				FlowCost: make(map[FlowID]float64),
			})
		}
		for i := 0; i < nFlows; i++ {
			rmin := 1 + rng.Float64()*10
			p.Flows = append(p.Flows, Flow{
				ID: FlowID(i), Source: NodeID(rng.Intn(nNodes)),
				RateMin: rmin, RateMax: rmin + rng.Float64()*1000,
			})
			nClasses := 1 + rng.Intn(3)
			for k := 0; k < nClasses; k++ {
				b := NodeID(rng.Intn(nNodes))
				p.Nodes[b].FlowCost[FlowID(i)] = 1 + rng.Float64()*5
				var fn utility.Function
				switch rng.Intn(3) {
				case 0:
					fn = utility.NewLog(1 + rng.Float64()*100)
				case 1:
					fn = utility.NewPower(1+rng.Float64()*100, 0.25+rng.Float64()*0.5)
				default:
					fn = utility.Hyperbolic{Scale: 1 + rng.Float64()*100, HalfRate: 1 + rng.Float64()*50}
				}
				p.Classes = append(p.Classes, Class{
					ID: ClassID(len(p.Classes)), Flow: FlowID(i), Node: b,
					MaxConsumers: rng.Intn(500), CostPerConsumer: 1 + rng.Float64()*30,
					Utility: fn,
				})
			}
			// The flow must reach its source.
			if _, ok := p.Nodes[p.Flows[i].Source].FlowCost[FlowID(i)]; !ok {
				p.Nodes[p.Flows[i].Source].FlowCost[FlowID(i)] = 1
			}
		}
		if err := Validate(p); err != nil {
			t.Fatalf("trial %d: fuzz workload invalid: %v", trial, err)
		}

		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var back Problem
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		a := NewAllocation(p)
		for i := range a.Rates {
			a.Rates[i] = p.Flows[i].RateMin
		}
		for j := range a.Consumers {
			a.Consumers[j] = p.Classes[j].MaxConsumers / 2
		}
		if got, want := TotalUtility(&back, a), TotalUtility(p, a); got != want {
			t.Fatalf("trial %d: utility after round trip %g != %g", trial, got, want)
		}
	}
}

type foreignUtility struct{}

func (foreignUtility) Value(r float64) float64 { return r }
func (foreignUtility) Deriv(float64) float64   { return 1 }
func (foreignUtility) Name() string            { return "foreign" }

var _ utility.Function = foreignUtility{}
