// Package trace renders experiment results as aligned text tables, CSV,
// and quick ASCII charts, so the experiment harness can regenerate the
// paper's tables and figures on a terminal.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row. Missing cells render empty; extra cells are kept
// (and widen the table).
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted cells: each argument is rendered with
// %v.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Columns)
	for _, r := range t.Rows {
		measure(r)
	}

	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	total := cols*2 - 2
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		writeRow(r)
	}
}

// RenderMarkdown writes the table as a GitHub-flavored Markdown table
// with a bold title line.
func (t *Table) RenderMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	writeMDRow := func(cells []string, width int) {
		fmt.Fprint(w, "|")
		for i := 0; i < width; i++ {
			cell := ""
			if i < len(cells) {
				cell = strings.ReplaceAll(cells[i], "|", "\\|")
			}
			fmt.Fprintf(w, " %s |", cell)
		}
		fmt.Fprintln(w)
	}
	width := len(t.Columns)
	for _, r := range t.Rows {
		if len(r) > width {
			width = len(r)
		}
	}
	writeMDRow(t.Columns, width)
	fmt.Fprint(w, "|")
	for i := 0; i < width; i++ {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		writeMDRow(r, width)
	}
}

// RenderCSV writes the table as CSV (simple quoting: cells containing
// commas or quotes are quoted with doubled quotes).
func (t *Table) RenderCSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			fmt.Fprintf(w, `"%s"`, strings.ReplaceAll(c, `"`, `""`))
		} else {
			fmt.Fprint(w, c)
		}
	}
	fmt.Fprintln(w)
}

// SeriesSet is a figure: one shared X axis and one or more named Y series.
type SeriesSet struct {
	Title  string
	XLabel string
	X      []float64
	Names  []string
	Series map[string][]float64
}

// NewSeriesSet creates a figure container.
func NewSeriesSet(title, xlabel string) *SeriesSet {
	return &SeriesSet{
		Title:  title,
		XLabel: xlabel,
		Series: make(map[string][]float64),
	}
}

// AddSeries registers a named series. Series must share the X axis length.
func (s *SeriesSet) AddSeries(name string, ys []float64) {
	s.Names = append(s.Names, name)
	s.Series[name] = ys
}

// RenderCSV writes x plus one column per series.
func (s *SeriesSet) RenderCSV(w io.Writer) {
	header := append([]string{s.XLabel}, s.Names...)
	writeCSVRow(w, header)
	for i := range s.X {
		row := make([]string, 0, len(header))
		row = append(row, trimFloat(s.X[i]))
		for _, name := range s.Names {
			ys := s.Series[name]
			if i < len(ys) {
				row = append(row, trimFloat(ys[i]))
			} else {
				row = append(row, "")
			}
		}
		writeCSVRow(w, row)
	}
}

func trimFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}

// chart symbols per series, reused cyclically.
var chartMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// RenderASCII draws the series as a crude multi-series line chart of the
// given dimensions (minimum enforced), with a legend.
func (s *SeriesSet) RenderASCII(w io.Writer, width, height int) {
	if width < 20 {
		width = 72
	}
	if height < 5 {
		height = 18
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, name := range s.Names {
		for _, v := range s.Series[name] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s.Series[name]) > maxLen {
			maxLen = len(s.Series[name])
		}
	}
	if maxLen == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range s.Names {
		mark := chartMarks[si%len(chartMarks)]
		ys := s.Series[name]
		for i, v := range ys {
			col := 0
			if maxLen > 1 {
				col = i * (width - 1) / (maxLen - 1)
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	if s.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", s.Title)
	}
	fmt.Fprintf(w, "%.6g\n", hi)
	for _, line := range grid {
		fmt.Fprintf(w, "|%s\n", string(line))
	}
	fmt.Fprintf(w, "%.6g %s\n", lo, strings.Repeat("-", width-len(trimFloat(lo))))
	for si, name := range s.Names {
		fmt.Fprintf(w, "  %c %s\n", chartMarks[si%len(chartMarks)], name)
	}
}
