package dist

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

// TestAsyncToleratesMessageLoss drops 10% of all messages: the paper's
// Section 3.5 asynchronous formulation (free-running agents with price
// averaging) must still reach the synchronous optimum, because agents use
// the latest values they have rather than blocking on a full round.
func TestAsyncToleratesMessageLoss(t *testing.T) {
	p := workload.Base()

	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Solve(400).Utility

	net := transport.NewMemory()
	defer net.Close()
	net.SetDropRate(0.10, 42)

	cl, err := New(p, Config{
		Core: core.Config{Adaptive: true},
		Mode: Async,
		Tick: time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	deadline := time.After(30 * time.Second)
	inBand := 0
	for {
		select {
		case <-deadline:
			t.Fatalf("did not converge under 10%% loss; last %.0f vs %.0f", cl.Sample().Utility, want)
		default:
		}
		s := cl.Sample()
		if math.Abs(s.Utility-want)/want < 0.03 {
			inBand++
		} else {
			inBand = 0
		}
		if inBand >= 10 {
			// Held within 3% of the lossless optimum.
			if dropped := net.NetStats().Dropped; dropped == 0 {
				t.Error("fault injection inactive: nothing was dropped")
			}
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// TestAsyncSurvivesTransientPartition cuts one node agent off from the
// rest mid-run and heals it; the system must re-stabilize.
func TestAsyncSurvivesTransientPartition(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{
		Core: core.Config{Adaptive: true},
		Mode: Async,
		Tick: time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	waitStable := func(tag string, tol float64) float64 {
		det := metrics.NewConvergenceDetector(10, tol)
		deadline := time.After(20 * time.Second)
		for {
			select {
			case <-deadline:
				t.Fatalf("%s: did not stabilize; last %.0f", tag, cl.Sample().Utility)
			default:
			}
			s := cl.Sample()
			if det.Observe(s.Utility) && s.Utility > 0 {
				return s.Utility
			}
			time.Sleep(3 * time.Millisecond)
		}
	}

	before := waitStable("pre-partition", 0.05)

	// Cut node/1 off for a while. Its flows stop hearing its price; the
	// collector keeps the last reported populations.
	net.SetPartition(nodeName(1), 9)
	time.Sleep(100 * time.Millisecond)
	net.ClearPartitions()

	after := waitStable("post-heal", 0.05)
	if rel := math.Abs(after-before) / before; rel > 0.05 {
		t.Errorf("post-heal utility %.0f deviates %.1f%% from pre-partition %.0f", after, rel*100, before)
	}
}

// TestStaleRepairsAsymmetricPartition cuts ONE direction of one
// node->flow edge mid-run: the flow stops hearing that node's reports
// while the node still hears the flow, so the usual symmetric-partition
// reasoning does not apply — repair depends entirely on the node's resend
// chirp getting through after the heal. The cluster must recover within
// the chirp-backoff budget (the interval is capped at 16x Resend, so the
// first post-heal chirp lands within ~32ms; the 1s bound is that plus
// round-processing slack, against a 30s deadlock horizon) and still
// converge to the engine's optimum.
func TestStaleRepairsAsymmetricPartition(t *testing.T) {
	p := workload.Base()
	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Solve(400).Utility

	net := transport.NewMemory()
	defer net.Close()
	reg := telemetry.NewRegistry()
	tel := telemetry.NewDistMetrics(reg)
	cl, err := New(p, Config{
		Core:      core.Config{Adaptive: true},
		Staleness: 1,
		Resend:    2 * time.Millisecond,
		Telemetry: tel,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Run(30, time.Minute); err != nil {
		t.Fatal(err)
	}

	// Block one real peer node's reports to flow/0 only; flow/0's
	// announces still reach the node. The whole (single-component)
	// cluster stalls behind flow/0 within K rounds.
	peer := model.NewIndex(p).NodesByFlow(0)[0]
	net.SetOneWay(nodeName(peer), flowName(0), true)
	done := make(chan error, 1)
	var stats []RoundStats
	go func() {
		s, err := cl.Run(120, 30*time.Second)
		stats = s
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("run finished during the one-way block: %v", err)
	default:
	}
	net.SetOneWay(nodeName(peer), flowName(0), false)
	healed := time.Now()

	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cluster did not recover after heal")
	}
	if rec := time.Since(healed); rec > time.Second {
		t.Errorf("recovery took %v, want within the 1s chirp-backoff budget", rec)
	}
	if len(stats) == 0 {
		t.Fatal("no rounds finalized")
	}
	// 2% band: the mid-run stall perturbs the adaptive trajectory, so the
	// 120-round tail sits slightly wider than a clean run's 1%.
	if rel := tailMeanDeviation(stats, want, 8); rel > 0.02 {
		t.Errorf("converged utility deviates %.2f%% from synchronous %.2f (%d rounds finalized)",
			rel*100, want, len(stats))
	}
	if net.NetStats().Dropped == 0 {
		t.Error("one-way block dropped nothing")
	}
	if tel.NodeChirps.Value() == 0 {
		t.Error("no node chirps recorded during the stall")
	}
	if tel.FlowRepairs.Value()+tel.NodeRepairs.Value() == 0 {
		t.Error("no chirp-credited repairs recorded")
	}
}

// TestMemoryMeterCountsClusterTraffic sanity-checks the transport meter
// against a known round structure: every synchronous round moves at least
// one message per flow and per node.
func TestMemoryMeterCountsClusterTraffic(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const rounds = 10
	if _, err := cl.Run(rounds, time.Minute); err != nil {
		t.Fatal(err)
	}
	stats := net.NetStats()
	minPerRound := uint64(len(p.Flows) + len(p.Nodes))
	if stats.Delivered < rounds*minPerRound {
		t.Errorf("delivered %d messages over %d rounds, want >= %d", stats.Delivered, rounds, rounds*minPerRound)
	}
	if stats.Bytes == 0 {
		t.Error("byte counter did not advance")
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d without fault injection", stats.Dropped)
	}
}
