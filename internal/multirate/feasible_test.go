package multirate

import (
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func feasibleAllocation(p *model.Problem) Allocation {
	a := Allocation{
		SourceRates: make([]float64, len(p.Flows)),
		Delivery:    make([]float64, len(p.Classes)),
		Consumers:   make([]int, len(p.Classes)),
	}
	for i, f := range p.Flows {
		a.SourceRates[i] = f.RateMin
	}
	for j, c := range p.Classes {
		a.Delivery[j] = p.Flows[c.Flow].RateMin
	}
	return a
}

func TestCheckFeasibleViolations(t *testing.T) {
	p := workload.Heterogeneous()
	ix := model.NewIndex(p)

	if err := CheckFeasible(p, ix, feasibleAllocation(p), 0); err != nil {
		t.Fatalf("baseline allocation infeasible: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(a *Allocation)
	}{
		{"source below min", func(a *Allocation) { a.SourceRates[0] = 1 }},
		{"source above max", func(a *Allocation) { a.SourceRates[0] = 2000 }},
		{"delivery above source", func(a *Allocation) { a.Delivery[0] = a.SourceRates[0] + 5 }},
		{"delivery below floor", func(a *Allocation) { a.Delivery[0] = 0.5 }},
		{"negative population", func(a *Allocation) { a.Consumers[0] = -1 }},
		{"population above max", func(a *Allocation) { a.Consumers[0] = p.Classes[0].MaxConsumers + 1 }},
		{"node overload", func(a *Allocation) {
			a.SourceRates[0] = 1000
			a.Delivery[0] = 1000
			a.Delivery[1] = 1000
			a.Consumers[0] = p.Classes[0].MaxConsumers
			a.Consumers[1] = p.Classes[1].MaxConsumers
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := feasibleAllocation(p)
			tt.mutate(&a)
			if err := CheckFeasible(p, ix, a, 1e-9); !errors.Is(err, model.ErrInfeasible) {
				t.Errorf("error = %v, want ErrInfeasible", err)
			}
		})
	}
}

func TestCheckFeasibleLinkOverload(t *testing.T) {
	p := workload.WithLinkBottlenecks(workload.Base(), 0.015) // caps at 15
	ix := model.NewIndex(p)
	a := feasibleAllocation(p) // all at rateMin 10: fits
	if err := CheckFeasible(p, ix, a, 0); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	a.SourceRates[0] = 100 // link cap 15 blown
	if err := CheckFeasible(p, ix, a, 0); !errors.Is(err, model.ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

func TestNodeAllocatorSetFlowActive(t *testing.T) {
	p := workload.Heterogeneous()
	ix := model.NewIndex(p)
	na := NewNodeAllocator(p, ix, 0)

	consumers := make([]int, len(p.Classes))
	deliveries := make([]float64, len(p.Classes))
	rates := []float64{100}

	out := na.Allocate(rates, 0.01, consumers, deliveries)
	if consumers[0] == 0 && consumers[1] == 0 {
		t.Fatal("nothing admitted with the flow active")
	}
	if out.Used <= 0 {
		t.Fatalf("used = %g", out.Used)
	}

	na.SetFlowActive(0, false)
	out = na.Allocate(rates, 0.01, consumers, deliveries)
	if consumers[0] != 0 || consumers[1] != 0 {
		t.Errorf("inactive flow still admitted: %v", consumers)
	}
	if deliveries[0] != 0 || deliveries[1] != 0 {
		t.Errorf("inactive flow still delivered: %v", deliveries)
	}
	if out.Used != 0 {
		t.Errorf("used = %g with the only flow inactive", out.Used)
	}

	na.SetFlowActive(0, true)
	out = na.Allocate(rates, 0.01, consumers, deliveries)
	if consumers[0] == 0 && consumers[1] == 0 {
		t.Error("reactivated flow not admitted")
	}
	_ = out
}

func TestDesiredDeliveryExported(t *testing.T) {
	u := workload.ShapeLog.Utility(20) // 20*log(1+r), U'(r) = 20/(1+r)
	// U'(d) = 0.5 => d = 39.
	if got := DesiredDelivery(u, 0.5, 10, 1000); got != 39 {
		t.Errorf("DesiredDelivery = %g, want 39", got)
	}
}
