package overlay

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/utility"
)

// FlowSpec declares one flow to be routed over a topology.
type FlowSpec struct {
	// Name labels the flow.
	Name string
	// Source is the node where producers attach.
	Source model.NodeID
	// RateMin and RateMax bound the source rate.
	RateMin, RateMax float64
	// LinkCost is L_{l,i} on every tree link (resource per unit rate).
	LinkCost float64
	// NodeCost is F_{b,i} at every tree node (resource per unit rate).
	NodeCost float64
	// Classes lists the flow's consumer classes; their Node fields define
	// the subscriber set.
	Classes []ClassSpec
}

// ClassSpec declares one consumer class of a flow.
type ClassSpec struct {
	// Name labels the class.
	Name string
	// Node is the attachment (subscriber) node.
	Node model.NodeID
	// MaxConsumers is n^max.
	MaxConsumers int
	// CostPerConsumer is G_{b,j}.
	CostPerConsumer float64
	// Utility is U_j.
	Utility utility.Function
}

// checkFlowSpecs validates the spec invariants shared by Build and
// NewRouter.
func checkFlowSpecs(flows []FlowSpec) error {
	if len(flows) == 0 {
		return fmt.Errorf("%w: no flows", ErrBadBuild)
	}
	for fi, fs := range flows {
		if fs.NodeCost <= 0 || fs.LinkCost <= 0 {
			return fmt.Errorf("%w: flow %d costs L=%g F=%g", ErrBadBuild, fi, fs.LinkCost, fs.NodeCost)
		}
	}
	return nil
}

// routeTrees routes every flow over t (one multi-target BFS per flow,
// shared scratch) and returns the dissemination trees.
func routeTrees(t *Topology, sc *Scratch, flows []FlowSpec) ([]Tree, error) {
	trees := make([]Tree, len(flows))
	var subs []model.NodeID
	for fi, fs := range flows {
		subs = subs[:0]
		for _, cs := range fs.Classes {
			subs = append(subs, cs.Node)
		}
		tree, _, err := t.BuildTreeInto(sc, fs.Source, subs, Tree{Source: -1})
		if err != nil {
			return nil, fmt.Errorf("flow %d (%s): %w", fi, fs.Name, err)
		}
		trees[fi] = tree
	}
	return trees, nil
}

// Build routes every flow over the topology and assembles the
// optimization problem: flows reach exactly their dissemination-tree nodes
// (source, relays and subscribers all pay the flow-node cost), links carry
// exactly the flows whose trees include them, and node capacities are as
// given (one capacity for all nodes). Links no flow uses are pruned and
// link IDs renumbered; for a problem whose shape survives re-routing use
// NewRouter instead, which keeps every link.
func Build(t *Topology, nodeCapacity float64, flows []FlowSpec) (*model.Problem, error) {
	if nodeCapacity <= 0 {
		return nil, fmt.Errorf("%w: node capacity %g", ErrBadBuild, nodeCapacity)
	}
	if err := checkFlowSpecs(flows); err != nil {
		return nil, err
	}
	trees, err := routeTrees(t, NewScratch(t), flows)
	if err != nil {
		return nil, err
	}

	p := assembleProblem(t, uniformCaps(t.NodeCount(), nodeCapacity), flows, trees)

	// Drop links no flow uses: the model requires positive per-flow costs
	// only for flows present, but unused links would still carry
	// capacity constraints that trivially hold; pruning keeps derived
	// problems small. Link IDs are re-numbered.
	pruned := p.Links[:0]
	for _, l := range p.Links {
		if len(l.FlowCost) == 0 {
			continue
		}
		l.ID = model.LinkID(len(pruned))
		pruned = append(pruned, l)
	}
	p.Links = pruned

	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("overlay: built problem invalid: %w", err)
	}
	return p, nil
}

func uniformCaps(n int, c float64) []float64 {
	caps := make([]float64, n)
	for b := range caps {
		caps[b] = c
	}
	return caps
}

// assembleProblem emits the model.Problem for the given routing: every
// topology node and link gets a slot (link IDs match topology indices),
// and each flow's tree writes its L/F coefficients.
func assembleProblem(t *Topology, nodeCaps []float64, flows []FlowSpec, trees []Tree) *model.Problem {
	p := &model.Problem{
		Name:  fmt.Sprintf("overlay-%df-%dn", len(flows), t.NodeCount()),
		Nodes: make([]model.Node, t.NodeCount()),
	}
	for b := range p.Nodes {
		p.Nodes[b] = model.Node{
			ID:       model.NodeID(b),
			Name:     fmt.Sprintf("S%d", b),
			Capacity: nodeCaps[b],
			FlowCost: make(map[model.FlowID]float64),
		}
	}
	for li, tl := range t.links {
		p.Links = append(p.Links, model.Link{
			ID:       model.LinkID(li),
			Name:     fmt.Sprintf("l%d-%d", tl.From, tl.To),
			From:     tl.From,
			To:       tl.To,
			Capacity: tl.Capacity,
			FlowCost: make(map[model.FlowID]float64),
		})
	}
	for fi, fs := range flows {
		fid := model.FlowID(fi)
		p.Flows = append(p.Flows, model.Flow{
			ID:      fid,
			Name:    fs.Name,
			Source:  fs.Source,
			RateMin: fs.RateMin,
			RateMax: fs.RateMax,
		})
		for _, b := range trees[fi].Nodes {
			p.Nodes[b].FlowCost[fid] = fs.NodeCost
		}
		for _, li := range trees[fi].Links {
			p.Links[li].FlowCost[fid] = fs.LinkCost
		}
		for _, cs := range fs.Classes {
			p.Classes = append(p.Classes, model.Class{
				ID:              model.ClassID(len(p.Classes)),
				Name:            cs.Name,
				Flow:            fid,
				Node:            cs.Node,
				MaxConsumers:    cs.MaxConsumers,
				CostPerConsumer: cs.CostPerConsumer,
				Utility:         cs.Utility,
			})
		}
	}
	return p
}
