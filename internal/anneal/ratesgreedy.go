package anneal

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// SolveRatesGreedy runs simulated annealing over the flow-rate vector only,
// evaluating each candidate state by running the greedy consumer allocation
// (Algorithm 2 of the paper) at every node. The search space is |F|
// continuous variables instead of |F| + |C| mixed variables, and every
// visited state is feasible by construction of the greedy step, so the
// walk cannot freeze in the nonconvex high-rate trap that defeats
// full-state annealing at the paper's temperatures (see Solve).
//
// The cooling schedule is identical to Solve's. Link constraints are
// enforced by rejecting rate vectors that overload any link.
func SolveRatesGreedy(p *model.Problem, cfg Config) (Result, error) {
	if err := model.Validate(p); err != nil {
		return Result{}, fmt.Errorf("anneal: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)
	rng := rand.New(rand.NewSource(c.Seed))

	rates := make([]float64, len(p.Flows))
	for i, f := range p.Flows {
		rates[i] = f.RateMin
	}
	linkUsed := make([]float64, len(p.Links))
	cur := model.Allocation{Rates: rates}
	for l := range p.Links {
		linkUsed[l] = model.LinkUsage(p, ix, cur, model.LinkID(l))
		if linkUsed[l] > p.Links[l].Capacity {
			return Result{}, fmt.Errorf("%w: link %d needs %g > capacity %g at minimal rates",
				ErrInfeasibleStart, l, linkUsed[l], p.Links[l].Capacity)
		}
	}

	consumers, utility := core.GreedyPopulations(p, ix, rates)

	rounds := c.Rounds()
	stepsPerRound := c.MaxSteps / rounds
	if stepsPerRound < 1 {
		stepsPerRound = 1
	}

	res := Result{
		BestUtility: utility,
		Best: model.Allocation{
			Rates:     append([]float64(nil), rates...),
			Consumers: consumers,
		},
	}
	start := time.Now()

	temp := c.StartTemp
	for round := 0; round < rounds; round++ {
		for step := 0; step < stepsPerRound; step++ {
			res.Steps++

			i := model.FlowID(rng.Intn(len(p.Flows)))
			f := &p.Flows[i]
			span := (f.RateMax - f.RateMin) * c.RateStep
			old := rates[i]
			next := old + (rng.Float64()*2-1)*span
			if next < f.RateMin {
				next = f.RateMin
			}
			if next > f.RateMax {
				next = f.RateMax
			}

			// Reject link overload before paying for a greedy pass.
			dr := next - old
			feasible := true
			for _, l := range ix.LinksByFlow(i) {
				if linkUsed[l]+p.Links[l].FlowCost[i]*dr > p.Links[l].Capacity {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}

			rates[i] = next
			candConsumers, candUtility := core.GreedyPopulations(p, ix, rates)
			du := candUtility - utility
			if du > 0 || rng.Float64() < math.Exp(du/temp) {
				res.Accepted++
				if du > 0 {
					res.Improved++
				}
				utility = candUtility
				consumers = candConsumers
				for _, l := range ix.LinksByFlow(i) {
					linkUsed[l] += p.Links[l].FlowCost[i] * dr
				}
				if utility > res.BestUtility {
					res.BestUtility = utility
					res.Best = model.Allocation{
						Rates:     append([]float64(nil), rates...),
						Consumers: consumers,
					}
				}
			} else {
				rates[i] = old
			}
		}
		temp *= c.CoolRate
	}

	res.FinalUtility = utility
	res.Rounds = rounds
	res.Runtime = time.Since(start)
	return res, nil
}

// SolveRatesGreedyBestOf mirrors SolveBestOf for the rates-only variant.
func SolveRatesGreedyBestOf(p *model.Problem, cfg Config, startTemps []float64) (Result, float64, error) {
	if len(startTemps) == 0 {
		startTemps = StartTemps
	}
	var (
		best     Result
		bestTemp float64
		found    bool
	)
	for _, temp := range startTemps {
		c := cfg
		c.StartTemp = temp
		r, err := SolveRatesGreedy(p, c)
		if err != nil {
			return Result{}, 0, err
		}
		if !found || r.BestUtility > best.BestUtility {
			best, bestTemp, found = r, temp, true
		}
	}
	return best, bestTemp, nil
}
