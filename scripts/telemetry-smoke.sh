#!/usr/bin/env bash
# telemetry-smoke.sh — end-to-end scrape of the observability surface.
#
# Builds lrgp-broker (race-instrumented when RACE=1), starts it with
# -telemetry-addr, polls /metrics until the engine and broker counter
# families are present and non-zero, checks /debug/pprof and /snapshot,
# and fails loudly otherwise. A second phase reruns the broker with
# -optimizer dist and asserts the lrgp_dist_* families, then feeds the
# -dist-events flight-recorder log through lrgp-trace. A third phase
# reruns with -autopilot and asserts the lrgp_enact_* families, including
# at least one enacted re-optimization cycle. Run via
# `make telemetry-smoke`; CI runs it with RACE=1.
set -euo pipefail

PORT="${PORT:-9090}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
BIN="${TMP}/lrgp-broker"
TRACE_BIN="${TMP}/lrgp-trace"
EVENTS="${TMP}/events.jsonl"
OUT="$(mktemp)"

cleanup() {
    [ -n "${BROKER_PID:-}" ] && kill "${BROKER_PID}" 2>/dev/null || true
    rm -rf "${TMP}" "${OUT}"
}
trap cleanup EXIT

build_flags=()
if [ "${RACE:-0}" = "1" ]; then
    build_flags+=(-race)
fi
echo "telemetry-smoke: building lrgp-broker and lrgp-trace ${build_flags[*]:-}"
go build "${build_flags[@]}" -o "${BIN}" ./cmd/lrgp-broker
go build "${build_flags[@]}" -o "${TRACE_BIN}" ./cmd/lrgp-trace

# A generous publish window keeps the server alive while we poll; the
# script kills the process as soon as the checks pass.
"${BIN}" -telemetry-addr "${ADDR}" -rounds 120 -publish-seconds 30 >"${OUT}" 2>&1 &
BROKER_PID=$!

fetch() { curl -sf --max-time 5 "http://${ADDR}$1"; }

echo "telemetry-smoke: waiting for non-empty engine/broker counters on ${ADDR}"
deadline=$((SECONDS + 60))
while :; do
    if ! kill -0 "${BROKER_PID}" 2>/dev/null; then
        echo "telemetry-smoke: lrgp-broker exited early:" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    if metrics="$(fetch /metrics 2>/dev/null)" \
        && grep -Eq '^lrgp_engine_steps_total [1-9]' <<<"${metrics}" \
        && grep -Eq '^lrgp_broker_published_total [1-9]' <<<"${metrics}"; then
        break
    fi
    if [ "${SECONDS}" -ge "${deadline}" ]; then
        echo "telemetry-smoke: counters never became non-empty; last scrape:" >&2
        echo "${metrics:-<no response>}" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    sleep 0.2
done

for family in \
    'lrgp_engine_stage_seconds_bucket{stage="rate"' \
    'lrgp_engine_stage_seconds_bucket{stage="admission"' \
    'lrgp_engine_stage_seconds_bucket{stage="price"' \
    lrgp_engine_utility \
    lrgp_engine_converged \
    lrgp_engine_dirty_flows \
    lrgp_engine_skipped_constraints \
    lrgp_broker_consumers_admitted; do
    if ! grep -Fq "${family}" <<<"${metrics}"; then
        echo "telemetry-smoke: /metrics missing ${family}" >&2
        exit 1
    fi
done

fetch /debug/pprof/cmdline >/dev/null || { echo "telemetry-smoke: pprof unreachable" >&2; exit 1; }
fetch /debug/vars | grep -q '"lrgp"' || { echo "telemetry-smoke: expvar missing lrgp" >&2; exit 1; }
fetch /snapshot | grep -q '"Utility"' || { echo "telemetry-smoke: snapshot missing Utility" >&2; exit 1; }

echo "telemetry-smoke: colocated OK (engine steps, broker counters, stage histograms, pprof, expvar, snapshot)"
kill "${BROKER_PID}" 2>/dev/null || true
wait "${BROKER_PID}" 2>/dev/null || true
BROKER_PID=

# Phase 2: the distributed optimizer with the flight recorder attached.
# The dist run completes before the publish window, so once the round
# counter is non-zero every lrgp_dist_* family has its final value.
"${BIN}" -telemetry-addr "${ADDR}" -optimizer dist -rounds 60 \
    -publish-seconds 30 -dist-events "${EVENTS}" -dist-stall-timeout 30s \
    >"${OUT}" 2>&1 &
BROKER_PID=$!

echo "telemetry-smoke: waiting for non-empty dist counters on ${ADDR}"
deadline=$((SECONDS + 60))
while :; do
    if ! kill -0 "${BROKER_PID}" 2>/dev/null; then
        echo "telemetry-smoke: dist lrgp-broker exited early:" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    if metrics="$(fetch /metrics 2>/dev/null)" \
        && grep -Eq '^lrgp_dist_rounds_finalized_total [1-9]' <<<"${metrics}"; then
        break
    fi
    if [ "${SECONDS}" -ge "${deadline}" ]; then
        echo "telemetry-smoke: dist counters never became non-empty; last scrape:" >&2
        echo "${metrics:-<no response>}" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    sleep 0.2
done

for family in \
    lrgp_dist_staleness_lag \
    lrgp_dist_collector_finalize_lag \
    'lrgp_dist_round_assembly_seconds_bucket{le=' \
    'lrgp_dist_resend_chirps_total{agent="flow"}' \
    'lrgp_dist_resend_chirps_total{agent="node"}' \
    'lrgp_dist_resend_backoffs_total{agent=' \
    'lrgp_dist_repairs_total{agent=' \
    lrgp_dist_gateway_flushes_total \
    lrgp_dist_gateway_queue_depth \
    'lrgp_dist_gateway_flush_occupancy_bucket{le=' \
    lrgp_dist_stalls_total \
    'lrgp_dist_net_frames{wire="json"}' \
    'lrgp_dist_net_frames{wire="binary"}' \
    'lrgp_dist_net_bytes{wire=' \
    lrgp_dist_net_dropped; do
    if ! grep -Fq "${family}" <<<"${metrics}"; then
        echo "telemetry-smoke: /metrics missing ${family}" >&2
        exit 1
    fi
done

# The event log lands after the full dist run; wait for the broker's
# confirmation line before killing it.
deadline=$((SECONDS + 60))
until grep -q "flight recorder: event log written to" "${OUT}"; do
    if ! kill -0 "${BROKER_PID}" 2>/dev/null || [ "${SECONDS}" -ge "${deadline}" ]; then
        echo "telemetry-smoke: event log was never written:" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    sleep 0.2
done
kill "${BROKER_PID}" 2>/dev/null || true
wait "${BROKER_PID}" 2>/dev/null || true
BROKER_PID=

# Analyze the flight-recorder log with lrgp-trace.
[ -s "${EVENTS}" ] || { echo "telemetry-smoke: -dist-events wrote nothing" >&2; cat "${OUT}" >&2; exit 1; }
analysis="$("${TRACE_BIN}" -events "${EVENTS}")"
for table in "== round timeline ==" "== stragglers" "== loss hotspots" "== effective staleness"; do
    if ! grep -Fq "${table}" <<<"${analysis}"; then
        echo "telemetry-smoke: lrgp-trace output missing ${table}:" >&2
        echo "${analysis}" >&2
        exit 1
    fi
done

# Phase 3: the autopilot loop under churn. Enacted cycles accumulate
# from the first interval, so we poll for a non-zero enacted counter and
# then assert every lrgp_enact_* family in the same scrape.
"${BIN}" -telemetry-addr "${ADDR}" -autopilot -autopilot-seconds 30 \
    >"${OUT}" 2>&1 &
BROKER_PID=$!

echo "telemetry-smoke: waiting for enacted autopilot cycles on ${ADDR}"
deadline=$((SECONDS + 60))
while :; do
    if ! kill -0 "${BROKER_PID}" 2>/dev/null; then
        echo "telemetry-smoke: autopilot lrgp-broker exited early:" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    if metrics="$(fetch /metrics 2>/dev/null)" \
        && grep -Eq '^lrgp_enact_cycles_total\{result="enacted"\} [1-9]' <<<"${metrics}"; then
        break
    fi
    if [ "${SECONDS}" -ge "${deadline}" ]; then
        echo "telemetry-smoke: no autopilot cycle ever enacted; last scrape:" >&2
        echo "${metrics:-<no response>}" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    sleep 0.2
done

for family in \
    'lrgp_enact_apply_seconds_bucket{le=' \
    'lrgp_enact_route_builds_total{mode="noop"}' \
    'lrgp_enact_route_builds_total{mode="incremental"}' \
    'lrgp_enact_route_builds_total{mode="full"}' \
    lrgp_enact_classes_touched_total \
    lrgp_enact_flows_touched_total \
    lrgp_enact_rates_changed_total \
    'lrgp_enact_cycles_total{result="skipped"}' \
    'lrgp_enact_cycle_seconds_bucket{le=' \
    lrgp_enact_allocation_delta \
    lrgp_enact_oscillation \
    lrgp_enact_demand_consumers; do
    if ! grep -Fq "${family}" <<<"${metrics}"; then
        echo "telemetry-smoke: /metrics missing ${family}" >&2
        exit 1
    fi
done

kill "${BROKER_PID}" 2>/dev/null || true
wait "${BROKER_PID}" 2>/dev/null || true
BROKER_PID=

echo "telemetry-smoke: OK (colocated + dist metric families, flight recorder, lrgp-trace, autopilot enact families)"
