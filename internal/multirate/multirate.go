// Package multirate extends LRGP to multirate dissemination, the future
// work the paper defers in Section 5: consumers of different classes of
// the same flow may receive the stream at different (thinned) rates.
//
// Each class j of flow i is assigned a delivery rate d_j with
// r_i^min <= d_j <= r_i: thinning happens at the attachment node (the
// broker's per-class rate caps enact it), so links and consumer-
// independent node work are still driven by the source rate r_i, while
// per-consumer node work scales with the class's own delivery rate:
//
//	objective:  max  sum_i sum_j n_j * U_j(d_j)
//	node b:     sum_i (F_{b,i} r_i + sum_j G_{b,j} n_j d_j) <= c_b
//	link l:     sum_i L_{l,i} r_i <= c_l
//	bounds:     r_i in [r^min, r^max],  d_j in [r^min, r_i]
//
// Single-rate LRGP is the special case d_j = r_i, so the multirate
// optimum dominates the single-rate optimum on every instance.
//
// The algorithm mirrors LRGP's structure:
//
//  1. Delivery rates: each class solves U_j'(d_j) = G_{b,j} * p_b — the
//     consumer's marginal utility equals its marginal per-consumer cost
//     at its node's price — clamped to [r^min, r_i].
//  2. Source rates: each flow solves
//     sum_{j: d*_j >= r} n_j U_j'(r) = PF_i + PL_i,
//     where the left side sums only the classes whose desired delivery
//     rate is capped by the source rate (uncapped classes gain nothing
//     from raising r), and the right side prices the consumer-independent
//     resources (F at nodes, L at links).
//  3. Populations and prices: the same greedy admission and Equation
//     12/13 price updates as LRGP, with per-consumer cost G_{b,j} * d_j.
package multirate

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/utility"
)

// Allocation is a multirate solution: a source rate per flow, a delivery
// rate per class, and an admitted population per class.
type Allocation struct {
	SourceRates []float64 `json:"sourceRates"`
	Delivery    []float64 `json:"delivery"`
	Consumers   []int     `json:"consumers"`
}

// Clone deep-copies the allocation.
func (a Allocation) Clone() Allocation {
	out := Allocation{
		SourceRates: make([]float64, len(a.SourceRates)),
		Delivery:    make([]float64, len(a.Delivery)),
		Consumers:   make([]int, len(a.Consumers)),
	}
	copy(out.SourceRates, a.SourceRates)
	copy(out.Delivery, a.Delivery)
	copy(out.Consumers, a.Consumers)
	return out
}

// TotalUtility evaluates sum_j n_j U_j(d_j).
func TotalUtility(p *model.Problem, a Allocation) float64 {
	total := 0.0
	for j := range p.Classes {
		if n := a.Consumers[j]; n > 0 {
			total += float64(n) * p.Classes[j].Utility.Value(a.Delivery[j])
		}
	}
	return total
}

// NodeUsage evaluates the multirate node constraint's left side.
func NodeUsage(p *model.Problem, ix *model.Index, a Allocation, b model.NodeID) float64 {
	used := 0.0
	node := &p.Nodes[b]
	for _, i := range ix.FlowsByNode(b) {
		used += node.FlowCost[i] * a.SourceRates[i]
	}
	for _, cid := range ix.ClassesByNode(b) {
		c := &p.Classes[cid]
		used += c.CostPerConsumer * float64(a.Consumers[cid]) * a.Delivery[cid]
	}
	return used
}

// CheckFeasible verifies all multirate constraints with absolute slack
// tol.
func CheckFeasible(p *model.Problem, ix *model.Index, a Allocation, tol float64) error {
	for _, f := range p.Flows {
		r := a.SourceRates[f.ID]
		if r < f.RateMin-tol || r > f.RateMax+tol {
			return fmt.Errorf("%w: flow %d source rate %g outside [%g, %g]",
				model.ErrInfeasible, f.ID, r, f.RateMin, f.RateMax)
		}
	}
	for _, c := range p.Classes {
		d := a.Delivery[c.ID]
		f := p.Flows[c.Flow]
		if d < f.RateMin-tol || d > a.SourceRates[c.Flow]+tol {
			return fmt.Errorf("%w: class %d delivery %g outside [%g, %g]",
				model.ErrInfeasible, c.ID, d, f.RateMin, a.SourceRates[c.Flow])
		}
		if n := a.Consumers[c.ID]; n < 0 || n > c.MaxConsumers {
			return fmt.Errorf("%w: class %d population %d", model.ErrInfeasible, c.ID, n)
		}
	}
	for _, l := range p.Links {
		used := 0.0
		for _, i := range ix.FlowsByLink(l.ID) {
			used += l.FlowCost[i] * a.SourceRates[i]
		}
		if used > l.Capacity+tol {
			return fmt.Errorf("%w: link %d usage %g > %g", model.ErrInfeasible, l.ID, used, l.Capacity)
		}
	}
	for _, n := range p.Nodes {
		if used := NodeUsage(p, ix, a, n.ID); used > n.Capacity+tol {
			return fmt.Errorf("%w: node %d usage %g > %g", model.ErrInfeasible, n.ID, used, n.Capacity)
		}
	}
	return nil
}

// Engine runs synchronous multirate-LRGP iterations.
type Engine struct {
	p   *model.Problem
	ix  *model.Index
	cfg core.Config

	iteration   int
	sourceRates []float64
	delivery    []float64
	desired     []float64 // d*_j before the r_i cap
	consumers   []int

	nodePrices []float64
	linkPrices []float64
	gammas     []*core.AdaptiveGamma

	solvers []*SourceRateSolver
	allocs  []*NodeAllocator
}

// NewEngine validates the problem and prepares a multirate engine.
func NewEngine(p *model.Problem, cfg core.Config) (*Engine, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("multirate: %w", err)
	}
	c := cfg.WithDefaults()
	e := &Engine{
		p:           p,
		ix:          model.NewIndex(p),
		cfg:         c,
		sourceRates: make([]float64, len(p.Flows)),
		delivery:    make([]float64, len(p.Classes)),
		desired:     make([]float64, len(p.Classes)),
		consumers:   make([]int, len(p.Classes)),
		nodePrices:  make([]float64, len(p.Nodes)),
		linkPrices:  make([]float64, len(p.Links)),
		gammas:      make([]*core.AdaptiveGamma, len(p.Nodes)),
	}
	for i, f := range p.Flows {
		e.sourceRates[i] = f.RateMin
		e.solvers = append(e.solvers, NewSourceRateSolver(p, e.ix, model.FlowID(i)))
	}
	for j, cl := range p.Classes {
		e.delivery[j] = p.Flows[cl.Flow].RateMin
	}
	for b := range e.nodePrices {
		e.nodePrices[b] = c.InitialNodePrice
		e.gammas[b] = core.NewAdaptiveGamma(c)
		e.allocs = append(e.allocs, NewNodeAllocator(p, e.ix, model.NodeID(b)))
	}
	for l := range e.linkPrices {
		e.linkPrices[l] = c.InitialLinkPrice
	}
	return e, nil
}

// Step performs one multirate iteration and returns the utility after it.
func (e *Engine) Step() float64 {
	e.iteration++

	// 1. Desired delivery rates per class from the marginal condition
	// U_j'(d) = G_j * p_b.
	for j := range e.p.Classes {
		c := &e.p.Classes[j]
		f := e.p.Flows[c.Flow]
		price := c.CostPerConsumer * e.nodePrices[c.Node]
		e.desired[j] = desiredDelivery(c.Utility, price, f.RateMin, f.RateMax)
	}

	// 2. Source rate per flow from the capped-classes stationarity
	// condition, against the consumer-independent path price.
	for i := range e.p.Flows {
		e.sourceRates[i] = e.solvers[i].Rate(e.consumers, e.desired, e.pathPrice(model.FlowID(i)))
	}

	// 3. Greedy admission at per-consumer cost G_j * d_j, plus the
	// Equation 12 price update.
	for b := range e.p.Nodes {
		prev := e.nodePrices[b]
		out := e.allocs[b].Allocate(e.sourceRates, prev, e.consumers, e.delivery)

		gamma1, gamma2 := e.cfg.Gamma1, e.cfg.Gamma2
		if e.cfg.Adaptive {
			gamma1 = e.gammas[b].Value()
			gamma2 = gamma1
		}
		capacity := e.p.Nodes[b].Capacity
		e.nodePrices[b] = core.NodePriceStep(prev, out.BestUnsatisfied, out.Used, capacity, gamma1, gamma2)
		if e.cfg.Adaptive {
			e.gammas[b].Observe(core.PriceGap(prev, out.BestUnsatisfied, out.Used, capacity), prev)
		}
	}

	// 4. Link prices on source rates.
	for l := range e.p.Links {
		lid := model.LinkID(l)
		used := 0.0
		for _, i := range e.ix.FlowsByLink(lid) {
			used += e.p.Links[l].FlowCost[i] * e.sourceRates[i]
		}
		e.linkPrices[l] = core.LinkPriceStep(e.linkPrices[l], used, e.p.Links[l].Capacity, e.cfg.LinkGamma)
	}

	return e.Utility()
}

// DesiredDelivery solves the per-class marginal condition U'(d) = price
// on [dmin, dmax] — the delivery rate a class would pick if the source
// rate did not cap it. Exported for the distributed runtime.
func DesiredDelivery(u utility.Function, price, dmin, dmax float64) float64 {
	return desiredDelivery(u, price, dmin, dmax)
}

// desiredDelivery solves U'(d) = price on [dmin, dmax].
func desiredDelivery(u utility.Function, price, dmin, dmax float64) float64 {
	if price <= 0 {
		return dmax
	}
	if u.Deriv(dmin) <= price {
		return dmin
	}
	if u.Deriv(dmax) >= price {
		return dmax
	}
	if inv, ok := u.(utility.DerivInverter); ok {
		d := inv.InvDeriv(price)
		if d < dmin {
			return dmin
		}
		if d > dmax {
			return dmax
		}
		return d
	}
	d, err := solver.Bisect(func(x float64) float64 {
		return u.Deriv(x) - price
	}, dmin, dmax, solver.Options{})
	if err != nil {
		return dmin
	}
	return d
}

// pathPrice is the consumer-independent path price for flow i:
// sum L*p_l over its links plus sum F*p_b over its nodes.
func (e *Engine) pathPrice(i model.FlowID) float64 {
	price := 0.0
	for _, l := range e.ix.LinksByFlow(i) {
		price += e.p.Links[l].FlowCost[i] * e.linkPrices[l]
	}
	for _, b := range e.ix.NodesByFlow(i) {
		price += e.p.Nodes[b].FlowCost[i] * e.nodePrices[b]
	}
	return price
}

// Utility returns the current objective value.
func (e *Engine) Utility() float64 {
	total := 0.0
	for j := range e.p.Classes {
		if n := e.consumers[j]; n > 0 {
			total += float64(n) * e.p.Classes[j].Utility.Value(e.delivery[j])
		}
	}
	return total
}

// Allocation snapshots the current state.
func (e *Engine) Allocation() Allocation {
	a := Allocation{
		SourceRates: make([]float64, len(e.sourceRates)),
		Delivery:    make([]float64, len(e.delivery)),
		Consumers:   make([]int, len(e.consumers)),
	}
	copy(a.SourceRates, e.sourceRates)
	copy(a.Delivery, e.delivery)
	copy(a.Consumers, e.consumers)
	return a
}

// Result mirrors core.Result for the multirate engine.
type Result struct {
	Utility     float64
	Iterations  int
	Converged   bool
	ConvergedAt int
	Allocation  Allocation
	Trace       []float64
}

// Solve runs until the paper's 0.1% amplitude rule or maxIter.
func (e *Engine) Solve(maxIter int) Result {
	if maxIter <= 0 {
		maxIter = 250
	}
	det := metrics.NewConvergenceDetector(0, 0)
	trace := make([]float64, 0, maxIter)
	for t := 0; t < maxIter; t++ {
		u := e.Step()
		trace = append(trace, u)
		if det.Observe(u) {
			break
		}
	}
	return Result{
		Utility:     trace[len(trace)-1],
		Iterations:  len(trace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       trace,
	}
}
