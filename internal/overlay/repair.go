package overlay

import (
	"fmt"
	"slices"

	"repro/internal/model"
)

// RepairStats reports what one repair touched. The locality guarantee is
// visible here: a failure's Affected count equals the reverse-index size
// for the failed element, never the flow count.
type RepairStats struct {
	// Kind is "link-fail", "node-fail", "link-restore" or "node-restore".
	Kind string
	// Element is the failed/restored link index or node ID.
	Element int
	// Affected counts flows whose trees were recomputed: for failures the
	// flows indexed to the failed element, for restores every flow (a
	// restored element can shorten paths anywhere).
	Affected int
	// Rerouted counts trees that actually changed; Unchanged counts trees
	// recomputed but identical (their slices were kept verbatim).
	Rerouted  int
	Unchanged int
	// BFSRuns counts breadth-first traversals performed; flows sharing a
	// source share one run.
	BFSRuns int
}

// RepairLink marks link li failed and re-routes exactly the flows whose
// dissemination trees used it (per the reverse index); every other tree is
// untouched, slices shared. The repair is atomic: if any affected flow can
// no longer reach a subscriber, the link is restored, no state changes,
// and the error wraps ErrNoPath with the flow context. On success the
// topology, trees, problem coefficients and pending delta all reflect the
// failure; republish via TakeDelta + Engine.ResetRouting.
func (r *Router) RepairLink(li int) (RepairStats, error) {
	if err := r.topo.RemoveLink(li); err != nil {
		return RepairStats{}, err
	}
	st := RepairStats{Kind: "link-fail", Element: li}
	if err := r.rerouteAffected(&st, r.flowsByLink[li]); err != nil {
		// Rollback: the reroute committed nothing.
		if rerr := r.topo.RestoreLink(li); rerr != nil {
			panic(fmt.Sprintf("overlay: rollback of link %d failed: %v", li, rerr))
		}
		return RepairStats{}, fmt.Errorf("overlay: repair link %d: %w", li, err)
	}
	return st, nil
}

// RepairNode marks node b failed and re-routes exactly the flows whose
// trees touched it. A flow sourced at b, or with an unpruned class
// attached at b, cannot be repaired — the repair fails atomically (prune
// the class first, or accept a full rebuild). Restore/republish semantics
// match RepairLink.
func (r *Router) RepairNode(b model.NodeID) (RepairStats, error) {
	if err := r.topo.RemoveNode(b); err != nil {
		return RepairStats{}, err
	}
	rollback := func() {
		if rerr := r.topo.RestoreNode(b); rerr != nil {
			panic(fmt.Sprintf("overlay: rollback of node %d failed: %v", b, rerr))
		}
	}
	for _, fi := range r.flowsByNode[b] {
		fs := &r.flows[fi]
		if fs.Source == b {
			rollback()
			return RepairStats{}, fmt.Errorf("overlay: repair node %d: flow %d (%s) is sourced there", b, fi, fs.Name)
		}
		off := r.classOff[fi]
		for k, cs := range fs.Classes {
			if cs.Node == b && !r.pruned[off+k] {
				rollback()
				return RepairStats{}, fmt.Errorf("overlay: repair node %d: flow %d (%s) class %d (%s) subscribes there",
					b, fi, fs.Name, off+k, cs.Name)
			}
		}
	}
	st := RepairStats{Kind: "node-fail", Element: int(b)}
	if err := r.rerouteAffected(&st, r.flowsByNode[b]); err != nil {
		rollback()
		return RepairStats{}, fmt.Errorf("overlay: repair node %d: %w", b, err)
	}
	return st, nil
}

// RestoreLink brings link li back and re-optimizes routing globally: a
// restored link can shorten paths for flows far from it, so every flow is
// re-traced against the canonical BFS of the restored topology (one BFS
// per distinct source). Trees that come back identical keep their old
// slices and contribute nothing to the delta.
func (r *Router) RestoreLink(li int) (RepairStats, error) {
	if err := r.topo.RestoreLink(li); err != nil {
		return RepairStats{}, err
	}
	st := RepairStats{Kind: "link-restore", Element: li}
	if err := r.retraceAll(&st); err != nil {
		if rerr := r.topo.RemoveLink(li); rerr != nil {
			panic(fmt.Sprintf("overlay: rollback of link %d restore failed: %v", li, rerr))
		}
		return RepairStats{}, fmt.Errorf("overlay: restore link %d: %w", li, err)
	}
	return st, nil
}

// RestoreNode brings node b back; semantics match RestoreLink.
func (r *Router) RestoreNode(b model.NodeID) (RepairStats, error) {
	if err := r.topo.RestoreNode(b); err != nil {
		return RepairStats{}, err
	}
	st := RepairStats{Kind: "node-restore", Element: int(b)}
	if err := r.retraceAll(&st); err != nil {
		if rerr := r.topo.RemoveNode(b); rerr != nil {
			panic(fmt.Sprintf("overlay: rollback of node %d restore failed: %v", b, rerr))
		}
		return RepairStats{}, fmt.Errorf("overlay: restore node %d: %w", b, err)
	}
	return st, nil
}

// pendingTree is one computed-but-uncommitted reroute.
type pendingTree struct {
	flow model.FlowID
	tree Tree
}

// rerouteAffected recomputes the trees of the given flows over the mutated
// topology, compute-then-commit: nothing is mutated unless every flow
// routes. Flows are processed grouped by source so they share BFS runs.
func (r *Router) rerouteAffected(st *RepairStats, affected []int32) error {
	// The reverse-index slice is mutated by commits; iterate a copy, in
	// source order for BFS cache hits.
	order := slices.Clone(affected)
	slices.SortFunc(order, func(x, y int32) int {
		if d := int(r.flows[x].Source) - int(r.flows[y].Source); d != 0 {
			return d
		}
		return int(x - y)
	})
	st.Affected = len(order)

	pending := make([]pendingTree, 0, len(order))
	var subs []model.NodeID
	for _, fi := range order {
		fs := &r.flows[fi]
		subs = r.subscribers(int(fi), subs[:0])
		if !r.bfsCached(fs.Source) {
			st.BFSRuns++
		}
		tree, changed, err := r.topo.BuildTreeInto(r.sc, fs.Source, subs, r.trees[fi])
		if err != nil {
			return fmt.Errorf("flow %d (%s): %w", fi, fs.Name, err)
		}
		if changed {
			pending = append(pending, pendingTree{flow: model.FlowID(fi), tree: tree})
		} else {
			st.Unchanged++
		}
	}
	for _, pt := range pending {
		r.commitTree(pt.flow, pt.tree)
	}
	st.Rerouted = len(pending)
	return nil
}

// retraceAll recomputes every flow's tree (restores widen connectivity
// anywhere), keeping old slices for trees that come back identical.
func (r *Router) retraceAll(st *RepairStats) error {
	all := make([]int32, len(r.flows))
	for fi := range all {
		all[fi] = int32(fi)
	}
	return r.rerouteAffected(st, all)
}

// bfsCached reports whether the scratch already holds the BFS tree for
// src over the current topology state.
func (r *Router) bfsCached(src model.NodeID) bool {
	return r.sc.bfsValid && r.sc.bfsSrc == int32(src) && r.sc.bfsTopo == r.topo.epoch
}
