// Package telemetry is the repository's dependency-free observability
// layer: a metrics registry of atomic counters, gauges and lock-free
// fixed-bucket histograms rendered in the Prometheus text exposition
// format, nil-safe instrumentation handles for the optimizer engine and
// the event broker, a structured JSONL iteration-trace sink, and an HTTP
// mux exposing /metrics, /debug/pprof/*, /debug/vars and /snapshot.
//
// Design constraints (see DESIGN.md §6):
//
//   - Zero overhead when disabled: every instrumentation handle
//     (EngineMetrics, BrokerMetrics) is nil-safe, so uninstrumented hot
//     paths pay one nil check and allocate nothing.
//   - Lock-free when enabled: observations are atomic adds and CAS loops
//     on preallocated state; no observation path takes a lock or
//     allocates, so instrumented Step/Publish stay 0 allocs/op.
//   - Stdlib only: no Prometheus client dependency; the registry renders
//     the text format directly.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name/value pair attached to a metric at
// registration time (e.g. stage="rate").
type Label struct {
	Key   string
	Value string
}

// kind discriminates the metric types for rendering and duplicate checks.
type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered metric: family name, preformatted label string
// (`k1="v1",k2="v2"` or empty) and the collector itself.
type entry struct {
	name   string
	labels string
	help   string
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds an ordered set of metrics. Registration takes a lock;
// observation on the returned metrics is lock-free. Registering the same
// name+labels twice returns the existing metric (idempotent) as long as
// the kind matches, and panics otherwise — duplicate registration with a
// different type is a programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// formatLabels renders labels as `k1="v1",k2="v2"`, sorted by key so the
// registration key and the exposition output are deterministic.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register returns the entry for name+labels, creating it with mk on
// first registration.
func (r *Registry) register(name, help string, k kind, labels []Label, mk func(e *entry)) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls := formatLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind != k {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s, was %s", key, k, e.kind))
		}
		return e
	}
	e := &entry{name: name, labels: ls, help: help, kind: k}
	mk(e)
	r.entries = append(r.entries, e)
	r.byKey[key] = e
	return e
}

// Counter registers (or returns the existing) monotonically increasing
// counter under name with the given constant labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, counterKind, labels, func(e *entry) { e.c = &Counter{} }).c
}

// Gauge registers (or returns the existing) float64 gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, gaugeKind, labels, func(e *entry) { e.g = &Gauge{} }).g
}

// Histogram registers (or returns the existing) fixed-bucket histogram.
// buckets are ascending upper bounds; the implicit +Inf bucket is added
// automatically. The bucket layout is fixed at registration, which is
// what keeps Observe lock-free.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.register(name, help, histogramKind, labels, func(e *entry) { e.h = newHistogram(buckets) }).h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). HELP/TYPE headers are emitted once
// per metric family, on the family's first registered entry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	// The exposition format requires every sample of a family to appear
	// as one contiguous group, so render family by family in first-seen
	// order rather than raw registration order.
	var families []string
	byFamily := make(map[string][]*entry, len(entries))
	for _, e := range entries {
		if _, ok := byFamily[e.name]; !ok {
			families = append(families, e.name)
		}
		byFamily[e.name] = append(byFamily[e.name], e)
	}

	bw := bufio.NewWriter(w)
	for _, name := range families {
		group := byFamily[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", name, group[0].help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, group[0].kind)
		for _, e := range group {
			switch e.kind {
			case counterKind:
				writeSample(bw, e.name, e.labels, "", float64(e.c.Value()))
			case gaugeKind:
				writeSample(bw, e.name, e.labels, "", e.g.Value())
			case histogramKind:
				e.h.writePrometheus(bw, e.name, e.labels)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels,extra} value` line; either label
// part may be empty.
func writeSample(w io.Writer, name, labels, extra string, v float64) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, extra, formatValue(v))
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
	default:
		fmt.Fprintf(w, "%s{%s,%s} %s\n", name, labels, extra, formatValue(v))
	}
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// Snapshot returns a point-in-time view of every metric keyed by
// name{labels}: counters as uint64, gauges as float64, histograms as
// {count, sum} maps. It backs the /debug/vars expvar export and tests.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	entries := make([]*entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	out := make(map[string]any, len(entries))
	for _, e := range entries {
		key := e.name
		if e.labels != "" {
			key += "{" + e.labels + "}"
		}
		switch e.kind {
		case counterKind:
			out[key] = e.c.Value()
		case gaugeKind:
			out[key] = e.g.Value()
		case histogramKind:
			count, sum := e.h.CountSum()
			out[key] = map[string]any{"count": count, "sum": sum}
		}
	}
	return out
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by v with a CAS loop (lock-free).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
