package broker

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/utility"
)

// goldenTranscriptSHA256 pins the serial-publish behavior of the broker:
// the full transcript of a scripted scenario — every delivery (consumer,
// flow, seq, timestamp, body, attributes), every throttle, the per-flow
// and per-class counters, and the WorkUnits trajectory — hashed so any
// semantic drift in the data plane fails loudly. The constant was
// recorded against the pre-snapshot (global-mutex) broker; the
// copy-on-write data plane must reproduce it bit for bit.
const goldenTranscriptSHA256 = "0b27dbe3cc79cd47ab9bd5c5acf057c98d2ba679c68ef343ab3afbeed9054fb6"

// goldenWorkUnits is the final WorkUnits value of the scripted scenario,
// kept as a readable sub-assertion alongside the opaque hash.
const goldenWorkUnits = 167

// goldenProblem: two flows, four classes covering Identity, DropAttrs and
// Annotate transforms across two nodes.
func goldenProblem() *model.Problem {
	return &model.Problem{
		Name: "golden",
		Flows: []model.Flow{
			{ID: 0, Name: "trades", Source: 0, RateMin: 5, RateMax: 1000},
			{ID: 1, Name: "quotes", Source: 1, RateMin: 5, RateMax: 1000},
		},
		Nodes: []model.Node{
			{ID: 0, Capacity: 9e5, FlowCost: map[model.FlowID]float64{0: 3, 1: 2}},
			{ID: 1, Capacity: 9e5, FlowCost: map[model.FlowID]float64{0: 3, 1: 2}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "gold", Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 19, Utility: utility.NewLog(100)},
			{ID: 1, Name: "public", Flow: 0, Node: 1, MaxConsumers: 10, CostPerConsumer: 19, Utility: utility.NewLog(5)},
			{ID: 2, Name: "tagged", Flow: 1, Node: 0, MaxConsumers: 10, CostPerConsumer: 7, Utility: utility.NewLog(10)},
			{ID: 3, Name: "idle", Flow: 1, Node: 1, MaxConsumers: 10, CostPerConsumer: 7, Utility: utility.NewLog(1)},
		},
	}
}

// formatAttrs renders an attribute map with sorted keys so the transcript
// is deterministic.
func formatAttrs(attrs map[string]float64) string {
	if attrs == nil {
		return "nil"
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%g", k, attrs[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// goldenTranscript runs the scripted scenario and returns the transcript.
// Handlers append delivery lines; control-plane events and checkpoints
// append their own lines. Everything is serial.
func goldenTranscript() (string, uint64, error) {
	clock := newFakeClock()
	p := goldenProblem()
	b, err := New(p,
		WithClock(clock.Now),
		WithTransform(1, DropAttrs{"insider"}),
		WithTransform(2, Annotate{Attr: "tagged", Value: 1}),
	)
	if err != nil {
		return "", 0, err
	}

	var sb strings.Builder
	record := func(format string, args ...any) {
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}
	handler := func(label string) Handler {
		return func(m Message) {
			record("deliver %s f=%d seq=%d t=%+v body=%q attrs=%s",
				label, m.Flow, m.Seq, m.Time.Sub(t0), m.Body, formatAttrs(m.Attrs))
		}
	}

	// Attach order matters: admission is a prefix of attach order.
	goldAll, err := b.AttachConsumer(0, nil, handler("gold/all"))
	if err != nil {
		return "", 0, err
	}
	if _, err = b.AttachConsumer(0, AttrFilter{Attr: "price", Op: CmpGT, Value: 80}, handler("gold/gt80")); err != nil {
		return "", 0, err
	}
	if _, err = b.AttachConsumer(1, nil, handler("public/all")); err != nil {
		return "", 0, err
	}
	// This filter keys on the attribute the class transform drops, so it
	// must never match on the delivery path.
	if _, err = b.AttachConsumer(1, AttrFilter{Attr: "insider", Op: CmpEQ, Value: 1}, handler("public/insider")); err != nil {
		return "", 0, err
	}
	if _, err = b.AttachConsumer(2, AttrFilter{Attr: "tagged", Op: CmpEQ, Value: 1}, handler("tagged/tagged")); err != nil {
		return "", 0, err
	}
	idle, err := b.AttachConsumer(3, nil, handler("idle/all"))
	if err != nil {
		return "", 0, err
	}

	pub := func(flow model.FlowID, attrs map[string]float64, body string) {
		err := b.Publish(flow, attrs, body)
		switch {
		case err == nil:
			record("publish f=%d body=%q -> ok", flow, body)
		case err == ErrThrottled:
			record("publish f=%d body=%q -> throttled", flow, body)
		default:
			record("publish f=%d body=%q -> error %v", flow, body, err)
		}
	}
	checkpoint := func(label string) {
		record("checkpoint %s work=%d", label, b.WorkUnits())
		for i := range p.Flows {
			fs, _ := b.FlowStats(model.FlowID(i))
			record("  flow %d published=%d throttled=%d rate=%g", i, fs.Published, fs.Throttled, fs.Rate)
		}
		for j := range p.Classes {
			cs, _ := b.ClassStats(model.ClassID(j))
			record("  class %d attached=%d admitted=%d delivered=%d filtered=%d thinned=%d",
				j, cs.Attached, cs.Admitted, cs.Delivered, cs.Filtered, cs.Thinned)
		}
	}

	// Phase 1: nothing admitted — publishes route nowhere.
	pub(0, map[string]float64{"price": 90, "insider": 1}, "pre-admission")
	checkpoint("pre-admission")

	// Phase 2: admit everything except the idle class, publishing a mix
	// that exercises filters and transforms on both flows.
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{100, 100}, Consumers: []int{2, 2, 1, 0}}); err != nil {
		return "", 0, err
	}
	for i := 0; i < 4; i++ {
		clock.Advance(100 * time.Millisecond)
		price := float64(75 + 5*i) // 75, 80, 85, 90: gt80 matches twice
		pub(0, map[string]float64{"price": price, "insider": 1}, fmt.Sprintf("t%d", i))
		pub(1, map[string]float64{"bid": price - 1}, fmt.Sprintf("q%d", i))
	}
	checkpoint("admitted")

	// Phase 3: thin the public class to ~1 msg/s while gold keeps the
	// full stream.
	if err := b.SetClassRateCap(1, 1); err != nil {
		return "", 0, err
	}
	for i := 0; i < 6; i++ {
		clock.Advance(400 * time.Millisecond)
		pub(0, map[string]float64{"price": 82}, fmt.Sprintf("thin%d", i))
	}
	checkpoint("thinned")

	// Phase 4: shrink admissions (LIFO unadmit), detach the idle
	// consumer (never admitted, so its class counters are untouched; the
	// cumulative-counter semantics of detaching a counted consumer are
	// covered by TestClassStatsCumulativeAcrossDetach), remove the cap,
	// and keep publishing.
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{100, 100}, Consumers: []int{1, 1, 1, 0}}); err != nil {
		return "", 0, err
	}
	if err := b.DetachConsumer(idle); err != nil {
		return "", 0, err
	}
	if err := b.SetClassRateCap(1, 0); err != nil {
		return "", 0, err
	}
	for i := 0; i < 3; i++ {
		clock.Advance(100 * time.Millisecond)
		pub(0, map[string]float64{"price": 95, "insider": 1}, fmt.Sprintf("late%d", i))
		pub(1, nil, fmt.Sprintf("bare%d", i))
	}
	checkpoint("shrunk")

	// Phase 5: over-publish against a tight budget to hit the throttle
	// path deterministically: re-rate to 5 msg/s, advance 1s (5 tokens,
	// burst caps at 5), then publish 8.
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{5, 5}, Consumers: []int{1, 1, 1, 0}}); err != nil {
		return "", 0, err
	}
	clock.Advance(time.Second)
	for i := 0; i < 8; i++ {
		pub(0, map[string]float64{"price": 84}, fmt.Sprintf("burst%d", i))
	}
	checkpoint("throttled")

	// Admitted survivor sanity: the earliest-attached gold consumer is
	// still admitted after the shrink.
	adm, err := b.Admitted(goldAll)
	if err != nil {
		return "", 0, err
	}
	record("goldAll admitted=%v", adm)

	return sb.String(), b.WorkUnits(), nil
}

// TestGoldenSerialBehavior proves the data plane's serial semantics —
// delivery sets and order, per-flow sequence numbers, timestamps,
// transform/filter interplay, throttling, thinning, and WorkUnits — are
// bit-identical to the pre-refactor mutex broker.
func TestGoldenSerialBehavior(t *testing.T) {
	transcript, work, err := goldenTranscript()
	if err != nil {
		t.Fatal(err)
	}
	if work != goldenWorkUnits {
		t.Errorf("WorkUnits = %d, want %d", work, goldenWorkUnits)
	}
	sum := sha256.Sum256([]byte(transcript))
	if got := hex.EncodeToString(sum[:]); got != goldenTranscriptSHA256 {
		t.Errorf("transcript hash = %s, want %s\ntranscript:\n%s", got, goldenTranscriptSHA256, transcript)
	}
}
