package broker

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/telemetry"
)

// Autopilot is the closed self-regulation loop the paper sketches in
// Section 2.1 ("the optimization runs all the time, responding to changes
// in workload"), built on the incremental enact path: each cycle it
// estimates live demand from the broker's counters, perturbs its private
// copy of the problem, warm re-solves, and enacts only when the solution
// moved past the enactment threshold.
//
// Two signals drive the perturbation:
//
//   - Per-class demand: the attached-consumer count from one
//     AllClassStats snapshot becomes each class's n^max. Demand-only
//     changes go through Engine.SetClassDemand, which dirties just the
//     affected node — no engine reset.
//   - Per-flow offered rate: the EWMA of (published+throttled) deltas
//     between cycles, scaled by RateHeadroom, caps the flow's RateMax
//     below its configured ceiling. There is no utility in granting a
//     flow more rate than its producers offer; shrinking the bound stops
//     the optimizer from parking capacity on idle flows. Bound changes
//     require Engine.Reset (warm-started: prices and populations carry
//     over, so a nearby problem re-converges in a few iterations).
//
// Unlike Controller, the Autopilot clones the broker's problem at
// construction and perturbs only the clone: the broker's shared problem
// definition is never mutated behind its users' backs.
//
// Enactment goes through Broker.ApplyAllocation's delta path, so a cycle
// whose solution barely moved costs a route no-op, not a rebuild. The
// oscillation score tracks, over a sliding window of per-class admission
// moves, the fraction that reversed that class's previous direction —
// 0 means monotone convergence, 1 means pure flapping (the paper's
// motivation for thresholded enactment).
type Autopilot struct {
	b   *Broker
	eng *core.Engine

	enactThreshold float64
	itersPerCycle  int
	rateHeadroom   float64

	mu sync.Mutex
	// prob is the autopilot-owned clone the engine solves; rateMax0
	// preserves the configured RateMax ceilings the offered-rate cap can
	// never exceed.
	prob     *model.Problem
	rateMax0 []float64
	enacted  model.Allocation
	statsBuf []ClassStats
	// Offered-rate estimation state: previous published+throttled totals
	// per flow, their EWMA rate, and the broker-clock time of the last
	// sync (so fake-clock tests stay deterministic).
	prevOffered []uint64
	offered     []float64
	lastSync    time.Time
	// Oscillation ring: one entry per enacted per-class admission move,
	// 1 when the move reversed the class's previous direction.
	lastDir    []int8
	ring       []int8
	ringPos    int
	ringSum    int
	cycles     int
	enactCount int
	skipped    int
	lastDelta  float64
	lastDemand int

	tel *telemetry.EnactMetrics
}

// AutopilotConfig tunes an Autopilot. The zero value enacts every change
// of at least 1% after up to 100 LRGP iterations per cycle, grants
// offered load 25% headroom, and scores oscillation over the last 64
// admission moves.
type AutopilotConfig struct {
	// Core configures the embedded LRGP engine.
	Core core.Config
	// EnactThreshold is the minimum relative allocation change that
	// triggers enactment (default 0.01).
	EnactThreshold float64
	// ItersPerCycle bounds the LRGP iterations of each cycle's warm
	// re-solve (default 100).
	ItersPerCycle int
	// RateHeadroom scales the estimated offered rate into the flow's
	// effective RateMax (default 1.25; values <= 1 take the default).
	RateHeadroom float64
	// OscillationWindow is how many recent per-class admission moves the
	// oscillation score averages over (default 64).
	OscillationWindow int
	// Telemetry, when non-nil, receives per-cycle observations (and is
	// typically the same handle passed to WithEnactTelemetry so apply
	// and cycle metrics land in one family).
	Telemetry *telemetry.EnactMetrics
}

// AutopilotStats is a snapshot of the autopilot's cycle accounting.
type AutopilotStats struct {
	Cycles  int
	Enacted int
	Skipped int
	// LastDelta is the allocation movement the most recent cycle
	// measured against the enact threshold.
	LastDelta float64
	// Oscillation is the current direction-reversal score in [0, 1].
	Oscillation float64
	// DemandConsumers is the total attached demand the most recent cycle
	// observed.
	DemandConsumers int
}

// NewAutopilot builds an autopilot around a broker. The engine solves a
// private clone of the broker's problem.
func NewAutopilot(b *Broker, cfg AutopilotConfig) (*Autopilot, error) {
	if cfg.EnactThreshold <= 0 {
		cfg.EnactThreshold = 0.01
	}
	if cfg.ItersPerCycle <= 0 {
		cfg.ItersPerCycle = 100
	}
	if cfg.RateHeadroom <= 1 {
		cfg.RateHeadroom = 1.25
	}
	if cfg.OscillationWindow <= 0 {
		cfg.OscillationWindow = 64
	}
	prob := b.Problem().Clone()
	eng, err := core.NewEngine(prob, cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("broker: autopilot: %w", err)
	}
	a := &Autopilot{
		b:              b,
		eng:            eng,
		enactThreshold: cfg.EnactThreshold,
		itersPerCycle:  cfg.ItersPerCycle,
		rateHeadroom:   cfg.RateHeadroom,
		prob:           prob,
		rateMax0:       make([]float64, len(prob.Flows)),
		enacted:        model.NewAllocation(prob),
		prevOffered:    make([]uint64, len(prob.Flows)),
		offered:        make([]float64, len(prob.Flows)),
		lastSync:       b.now(),
		lastDir:        make([]int8, len(prob.Classes)),
		ring:           make([]int8, 0, cfg.OscillationWindow),
		tel:            cfg.Telemetry,
	}
	for i := range prob.Flows {
		a.rateMax0[i] = prob.Flows[i].RateMax
	}
	return a, nil
}

// Engine exposes the embedded engine (for snapshots between cycles; like
// every Engine method it must not be used concurrently with Cycle).
func (a *Autopilot) Engine() *core.Engine { return a.eng }

// Close releases the embedded engine's worker pool.
func (a *Autopilot) Close() { a.eng.Close() }

// Cycle runs one autopilot cycle: estimate demand and offered rates,
// perturb, warm re-solve, and enact if the allocation moved by at least
// the threshold. It reports the solved allocation and whether enactment
// happened.
func (a *Autopilot) Cycle() (model.Allocation, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	start := time.Now()

	// Demand: one lock-free counter snapshot across all classes.
	a.statsBuf = a.b.AllClassStats(a.statsBuf)
	demand := 0
	for _, st := range a.statsBuf {
		demand += st.Attached
	}

	// Offered rates: publish-attempt deltas since the last cycle, on the
	// broker's clock. The EWMA smooths scrape jitter; the headroom keeps
	// a growing producer from being throttled for a whole cycle before
	// the bound catches up.
	now := a.b.now()
	dt := now.Sub(a.lastSync).Seconds()
	a.lastSync = now
	needReset := false
	if dt > 0 {
		for i := range a.prob.Flows {
			fs, err := a.b.FlowStats(model.FlowID(i))
			if err != nil {
				return model.Allocation{}, false, err
			}
			total := fs.Published + fs.Throttled
			inst := float64(total-a.prevOffered[i]) / dt
			a.prevOffered[i] = total
			if a.offered[i] == 0 {
				a.offered[i] = inst
			} else {
				a.offered[i] = 0.5*a.offered[i] + 0.5*inst
			}
			f := &a.prob.Flows[i]
			want := a.rateMax0[i]
			if a.offered[i] > 0 {
				if est := a.offered[i] * a.rateHeadroom; est < want {
					want = est
				}
				if want < f.RateMin {
					want = f.RateMin
				}
			}
			if relChange(f.RateMax, want) > 0.01 {
				f.RateMax = want
				needReset = true
			}
		}
	}

	// Perturb: a rate-bound change needs the (warm) engine reset; pure
	// demand drift goes through the cheap in-place path.
	if needReset {
		for j, st := range a.statsBuf {
			a.prob.Classes[j].MaxConsumers = st.Attached
		}
		if err := a.eng.Reset(a.prob); err != nil {
			return model.Allocation{}, false, fmt.Errorf("broker: autopilot: %w", err)
		}
	} else {
		for j, st := range a.statsBuf {
			if a.prob.Classes[j].MaxConsumers == st.Attached {
				continue
			}
			if err := a.eng.SetClassDemand(model.ClassID(j), st.Attached); err != nil {
				return model.Allocation{}, false, fmt.Errorf("broker: autopilot: %w", err)
			}
		}
	}

	res := a.eng.Solve(a.itersPerCycle)
	a.cycles++
	delta := maxRelChange(a.enacted, res.Allocation)
	enact := delta >= a.enactThreshold
	if enact {
		if err := a.b.ApplyAllocation(res.Allocation); err != nil {
			return res.Allocation, false, err
		}
		a.recordMovesLocked(res.Allocation)
		a.enacted = res.Allocation.Clone()
		a.enactCount++
	} else {
		a.skipped++
	}
	a.lastDelta = delta
	a.lastDemand = demand
	a.tel.ObserveCycle(enact, time.Since(start).Nanoseconds(), delta, a.oscillationLocked(), demand)
	return res.Allocation, enact, nil
}

// recordMovesLocked folds an enacted allocation's per-class admission
// moves into the oscillation ring, scoring each against the class's
// previous direction.
func (a *Autopilot) recordMovesLocked(next model.Allocation) {
	for j, n := range next.Consumers {
		prev := a.enacted.Consumers[j]
		if n == prev {
			continue
		}
		dir := int8(1)
		if n < prev {
			dir = -1
		}
		rev := int8(0)
		if a.lastDir[j] != 0 && dir != a.lastDir[j] {
			rev = 1
		}
		a.lastDir[j] = dir
		if len(a.ring) < cap(a.ring) {
			a.ring = append(a.ring, rev)
			a.ringSum += int(rev)
			continue
		}
		a.ringSum += int(rev) - int(a.ring[a.ringPos])
		a.ring[a.ringPos] = rev
		a.ringPos = (a.ringPos + 1) % len(a.ring)
	}
}

func (a *Autopilot) oscillationLocked() float64 {
	if len(a.ring) == 0 {
		return 0
	}
	return float64(a.ringSum) / float64(len(a.ring))
}

// Stats returns a snapshot of the autopilot's cycle accounting.
func (a *Autopilot) Stats() AutopilotStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AutopilotStats{
		Cycles:          a.cycles,
		Enacted:         a.enactCount,
		Skipped:         a.skipped,
		LastDelta:       a.lastDelta,
		Oscillation:     a.oscillationLocked(),
		DemandConsumers: a.lastDemand,
	}
}

// Loop runs Cycle every interval until stop is closed, then reports via
// done. Errors are delivered to errs (nil channel drops them).
func (a *Autopilot) Loop(interval time.Duration, stop <-chan struct{}, errs chan<- error) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if _, _, err := a.Cycle(); err != nil && errs != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}
	}()
	return done
}
