package dist

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// testClock builds a shared recorder clock and stops its ticker when the
// test ends.
func testClock(t *testing.T) *recClock {
	t.Helper()
	clk := newRecClock(time.Now())
	t.Cleanup(clk.stop)
	return clk
}

func TestRecorderRoundTrip(t *testing.T) {
	r := newRecorder("flow/0", 16, testClock(t))
	r.record(EvSend, 1, 2, 3)
	r.record(EvRecv, 1, 7, 0)
	r.record(EvRound, 1, 0, 0)

	evs := r.events(nil)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	want := []Event{
		{Agent: "flow/0", Seq: 0, Type: EvSend, Round: 1, A: 2, B: 3},
		{Agent: "flow/0", Seq: 1, Type: EvRecv, Round: 1, A: 7},
		{Agent: "flow/0", Seq: 2, Type: EvRound, Round: 1},
	}
	for i, e := range evs {
		w := want[i]
		if e.Agent != w.Agent || e.Seq != w.Seq || e.Type != w.Type || e.Round != w.Round || e.A != w.A || e.B != w.B {
			t.Errorf("event %d: got %+v, want %+v", i, e, w)
		}
		if e.Nanos < 0 {
			t.Errorf("event %d: negative timestamp %d", i, e.Nanos)
		}
	}
	if evs[0].Nanos > evs[2].Nanos {
		t.Errorf("timestamps not monotonic: %d then %d", evs[0].Nanos, evs[2].Nanos)
	}
}

func TestRecorderWrap(t *testing.T) {
	r := newRecorder("node/0", 8, testClock(t))
	for i := 0; i < 20; i++ {
		r.record(EvSend, i, int64(i), 0)
	}
	evs := r.events(nil)
	if len(evs) != 8 {
		t.Fatalf("got %d events after wrap, want 8", len(evs))
	}
	for i, e := range evs {
		if want := uint64(12 + i); e.Seq != want {
			t.Errorf("event %d: seq %d, want %d", i, e.Seq, want)
		}
		if e.Round != int(e.Seq) || e.A != int64(e.Seq) {
			t.Errorf("event %d: payload %d/%d does not match seq %d", i, e.Round, e.A, e.Seq)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *recorder
	r.record(EvSend, 1, 0, 0) // must not panic
	if evs := r.events(nil); len(evs) != 0 {
		t.Errorf("nil recorder returned %d events", len(evs))
	}
}

func TestRecorderRecordZeroAlloc(t *testing.T) {
	r := newRecorder("flow/0", 64, testClock(t))
	allocs := testing.AllocsPerRun(1000, func() {
		r.record(EvSend, 5, 1, 2)
	})
	if allocs != 0 {
		t.Errorf("record allocates %.1f times per call, want 0", allocs)
	}
}

// TestRecorderConcurrentRead hammers one ring from a writer while a reader
// snapshots it: every returned event must be internally consistent (the
// payload must match the sequence number it claims), proving the seqlock
// discards torn slots. Run under -race in CI.
func TestRecorderConcurrentRead(t *testing.T) {
	r := newRecorder("flow/0", 32, testClock(t))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.record(EvSend, i&0xffff, int64(i), int64(i))
			}
		}
	}()
	for i := 0; i < 200; i++ {
		for _, e := range r.events(nil) {
			if e.A != e.B {
				t.Fatalf("torn read: A=%d B=%d at seq %d", e.A, e.B, e.Seq)
			}
			if int64(e.Seq) != e.A {
				t.Fatalf("slot/seq mismatch: seq %d holds payload %d", e.Seq, e.A)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestEventLogRoundTrip(t *testing.T) {
	clk := testClock(t)
	ra := newRecorder("flow/0", 16, clk)
	rb := newRecorder("node/1", 16, clk)
	ra.record(EvSend, 1, 0, 2)
	rb.record(EvRecv, 1, 0, 0)
	ra.record(EvRound, 1, 0, 0)
	rb.record(EvResend, 1, 1000, 0)

	var buf bytes.Buffer
	if err := writeEvents(&buf, rb.events(ra.events(nil))); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Nanos < recs[i-1].Nanos {
			t.Errorf("log not time-sorted at line %d", i+1)
		}
	}
	byEv := map[string]int{}
	for _, rec := range recs {
		byEv[rec.Ev]++
		if parseEventType(rec.Ev) == 0 {
			t.Errorf("unparseable event name %q", rec.Ev)
		}
	}
	for _, ev := range []string{"send", "recv", "round", "resend"} {
		if byEv[ev] != 1 {
			t.Errorf("event %q appears %d times, want 1", ev, byEv[ev])
		}
	}
}

func TestReadEventLogRejectsGarbage(t *testing.T) {
	_, err := ReadEventLog(bytes.NewBufferString("{\"agent\":\"a\"}\nnot json\n"))
	if err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestAnalyzeFindsStraggler builds a synthetic log where flow/1 sits three
// rounds behind a ten-round frontier for most of the run: the analyzer
// must rank it first with the matching lag integral.
func TestAnalyzeFindsStraggler(t *testing.T) {
	const us = int64(1000)
	var recs []EventRecord
	add := func(agent string, ns int64, ev string, round int, a, b int64) {
		recs = append(recs, EventRecord{Agent: agent, Seq: uint64(len(recs)), Nanos: ns, Ev: ev, Round: round, A: a, B: b})
	}
	// flow/0 and node/0 advance one round per 10µs through round 10. The
	// recv events carry the sender ids that join all three agents into
	// one communicating component.
	for r := 1; r <= 10; r++ {
		ns := int64(r) * 10 * us
		if r > 1 {
			add("flow/0", ns-us, "recv", r-1, 0, 0) // report from node/0
		}
		add("flow/0", ns, "send", r, 0, 2)
		add("flow/0", ns, "round", r, 0, 0)
		add("node/0", ns+us, "recv", r, 0, 0) // rate from flow/0
		add("node/0", ns+us, "send", r, 1, 2)
		add("node/0", ns+us, "round", r, 0, 0)
	}
	// flow/1 completes round 1 at t=10µs, then chirps until it jumps to
	// round 10 at t=100µs.
	add("flow/1", 10*us, "recv", 1, 0, 0) // report from node/0
	add("flow/1", 10*us, "send", 1, 0, 2)
	add("flow/1", 10*us, "round", 1, 0, 0)
	add("flow/1", 50*us, "resend", 1, 4000, 0)
	add("flow/1", 70*us, "resend", 1, 8000, 0)
	add("flow/1", 100*us, "round", 10, 0, 0)

	a := Analyze(recs)
	if a.MaxRound != 10 {
		t.Fatalf("MaxRound = %d, want 10", a.MaxRound)
	}
	if len(a.Agents) != 3 {
		t.Fatalf("%d agents, want 3", len(a.Agents))
	}
	top := a.Agents[0]
	if top.Agent != "flow/1" {
		t.Fatalf("top straggler = %s (behind %dns), want flow/1", top.Agent, top.BehindNanos)
	}
	if top.Chirps != 2 {
		t.Errorf("straggler chirps = %d, want 2", top.Chirps)
	}
	if top.MaxLag < 8 {
		t.Errorf("straggler MaxLag = %d, want >= 8", top.MaxLag)
	}
	if top.BehindNanos == 0 {
		t.Error("straggler BehindNanos = 0")
	}
	for _, ag := range a.Agents[1:] {
		if ag.BehindNanos >= top.BehindNanos {
			t.Errorf("%s BehindNanos %d not below straggler's %d", ag.Agent, ag.BehindNanos, top.BehindNanos)
		}
	}
	if a.TotalResends != 2 {
		t.Errorf("TotalResends = %d, want 2", a.TotalResends)
	}
	if got := a.Rounds[0].Round; got != 1 {
		t.Errorf("first round summary is %d, want 1", got)
	}
	resends := 0
	for _, rs := range a.Rounds {
		resends += rs.Resends
		if rs.Round == 1 && rs.Resends != 2 {
			t.Errorf("round 1 resends = %d, want 2", rs.Resends)
		}
	}
	if resends != a.TotalResends {
		t.Errorf("per-round resends sum %d != total %d", resends, a.TotalResends)
	}
	if a.StalenessDist[0] == 0 {
		t.Error("staleness distribution empty at lag 0")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.MaxRound != 0 || len(a.Agents) != 0 || len(a.Rounds) != 0 {
		t.Errorf("non-empty analysis from empty log: %+v", a)
	}
}
