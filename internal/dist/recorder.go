package dist

import (
	"sync/atomic"
	"time"
)

// The flight recorder: a fixed-size, lock-free ring of binary-packed
// events each agent writes on its hot path. Recording is a handful of
// atomic stores (no locks, no allocation, no time formatting), cheap
// enough to leave on in production runs; the ring holds the last
// DefaultRecordSize events so a post-mortem dump shows what every agent
// was doing when the cluster stalled. Round numbers ride on every event
// as the causal correlation key: merging rings by timestamp and grouping
// by round reconstructs the cross-agent timeline without any clock
// coordination beyond the cluster's shared monotonic epoch.

// EventType tags one flight-recorder event.
type EventType uint8

// Event types recorded by the agents, gateways and collector.
const (
	// EvSend is a rate announce (flow agents) or report broadcast (node
	// agents): A = observed input lag in rounds (how stale the inputs
	// used were), B = peer fan-out.
	EvSend EventType = iota + 1
	// EvRecv is an inbound rate/report frame that was rejected by the
	// duplicate/monotonic guards (or announced a departure): A = sender
	// id (flow id for rates, node id for reports). Accepted frames
	// record EvAbsorb instead — one event per frame keeps the hot path
	// cheap.
	EvRecv
	// EvAbsorb is an inbound value accepted into local state (passed the
	// duplicate/monotonic guards): A = sender id. An absorb implies the
	// receive.
	EvAbsorb
	// EvResend is a stall chirp re-announcing the freshest value: A = the
	// backoff interval in nanoseconds.
	EvResend
	// EvFlush is one gateway flush epoch: A = staged messages, B = batch
	// frames written.
	EvFlush
	// EvRound is a round advance: the agent finished `Round` (collector:
	// finalized it; A = staleness lag, B = assembly nanos).
	EvRound
	// EvStall is a stall-detector trip, recorded by the cluster: Round =
	// the highest finalized round at the trip.
	EvStall
)

var evNames = [...]string{
	EvSend:   "send",
	EvRecv:   "recv",
	EvAbsorb: "absorb",
	EvResend: "resend",
	EvFlush:  "flush",
	EvRound:  "round",
	EvStall:  "stall",
}

// String returns the JSONL schema name of the event type.
func (t EventType) String() string {
	if int(t) < len(evNames) && evNames[t] != "" {
		return evNames[t]
	}
	return "unknown"
}

// parseEventType inverts String; unknown names return 0.
func parseEventType(s string) EventType {
	for t, name := range evNames {
		if name == s {
			return EventType(t)
		}
	}
	return 0
}

// DefaultRecordSize is the per-agent ring capacity (events). At 32 bytes
// per slot a thousand-agent cluster records ~8 MB total — bounded and
// allocation-free regardless of run length.
const DefaultRecordSize = 256

// Event is one decoded flight-recorder entry.
type Event struct {
	// Agent is the recording agent's endpoint name.
	Agent string
	// Seq is the agent-local sequence number (monotonic, gap-free per
	// agent; gaps after a dump mean the ring wrapped).
	Seq uint64
	// Nanos is time since the cluster's shared monotonic epoch, at the
	// recorder clock's coarse resolution.
	Nanos int64
	// Type is the event type; Round the causal correlation key.
	Type  EventType
	Round int
	// A and B are per-type arguments (see the EventType docs). The ring
	// stores them as unsigned 32-bit halves of one word, saturating at
	// 2^32-1 — every recorded quantity (ids, counts, lags, sub-second
	// backoff nanos) fits far below that.
	A, B int64
}

// recClock is the recorders' shared coarse timestamp source: one atomic
// nanos-since-epoch word advanced by a background ticker. Reading the
// real clock costs more than the rest of record combined (~45ns for
// time.Now vs ~10ns for the seqlock stores), so the hot path loads this
// word instead. 100µs resolution is two orders of magnitude finer than
// the ~10ms round cadence the analyzer correlates.
type recClock struct {
	epoch time.Time
	now   atomic.Int64
	quit  chan struct{}
	done  chan struct{}
}

// clockResolution is the coarse timestamp granularity.
const clockResolution = 100 * time.Microsecond

// newRecClock starts the ticker goroutine; callers must stop it.
func newRecClock(epoch time.Time) *recClock {
	c := &recClock{epoch: epoch, quit: make(chan struct{}), done: make(chan struct{})}
	c.tick()
	go c.run()
	return c
}

func (c *recClock) tick() { c.now.Store(int64(time.Since(c.epoch))) }

func (c *recClock) run() {
	defer close(c.done)
	t := time.NewTicker(clockResolution)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.tick()
		}
	}
}

func (c *recClock) stop() {
	close(c.quit)
	<-c.done
}

// recorder is one agent's ring. Writers claim a slot with one atomic
// increment and any number of concurrent readers (the stall detector,
// Cluster.WriteEvents) may scan it; a per-slot seqlock keeps readers from
// observing torn writes without ever blocking a writer. A nil recorder
// records nothing, so agents hold it unconditionally.
type recorder struct {
	agent string
	clk   *recClock
	mask  uint64
	next  atomic.Uint64 // sequence of the next event to write
	slots []recSlot
}

// recSlot is one ring entry (32 bytes: slot density is hot-path memory
// traffic). seq doubles as the seqlock word: 2n+1 while event n is being
// written, 2n+2 once it is published. Readers verify seq before and
// after loading the payload words.
type recSlot struct {
	seq atomic.Uint64
	w   [3]atomic.Uint64
}

// sat32 clamps a recorded argument into the unsigned 32-bit half-word
// the ring stores it in.
func sat32(v int64) uint64 {
	if v < 0 {
		return 0
	}
	if v > 0xffffffff {
		return 0xffffffff
	}
	return uint64(v)
}

// newRecorder builds a ring of the given capacity rounded up to a power
// of two (for mask indexing), stamping events from the shared clock.
func newRecorder(agent string, size int, clk *recClock) *recorder {
	if size <= 0 {
		size = DefaultRecordSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &recorder{agent: agent, clk: clk, mask: uint64(n - 1), slots: make([]recSlot, n)}
}

// record appends one event. Zero allocations: one atomic increment to
// claim the slot plus four atomic stores and one clock load.
func (r *recorder) record(ev EventType, round int, a, b int64) {
	if r == nil {
		return
	}
	seq := r.next.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.seq.Store(2*seq + 1) // odd: write in progress
	s.w[0].Store(uint64(ev) | uint64(uint32(round))<<8)
	s.w[1].Store(uint64(r.clk.now.Load()))
	s.w[2].Store(sat32(a) | sat32(b)<<32)
	s.seq.Store(2*seq + 2) // even: published
}

// events appends the ring's currently readable entries to buf in sequence
// order, skipping any slot the writer overwrites mid-read. Safe to call
// concurrently with record.
func (r *recorder) events(buf []Event) []Event {
	if r == nil {
		return buf
	}
	hi := r.next.Load()
	lo := uint64(0)
	if n := uint64(len(r.slots)); hi > n {
		lo = hi - n
	}
	for seq := lo; seq < hi; seq++ {
		s := &r.slots[seq&r.mask]
		want := 2*seq + 2
		if s.seq.Load() != want {
			continue
		}
		w0 := s.w[0].Load()
		nanos := int64(s.w[1].Load())
		ab := s.w[2].Load()
		if s.seq.Load() != want {
			continue // torn: the writer lapped us on this slot
		}
		buf = append(buf, Event{
			Agent: r.agent,
			Seq:   seq,
			Nanos: nanos,
			Type:  EventType(w0 & 0xff),
			Round: int(uint32(w0 >> 8)),
			A:     int64(ab & 0xffffffff),
			B:     int64(ab >> 32),
		})
	}
	return buf
}
