package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Metro is the headline scaling workload: a metropolitan broker overlay of
// independent pods (point-of-presence clusters), each with its own flows,
// nodes, classes and one bottleneck link per flow. Pods share nothing, so
// the crossing-writes analysis (core/plan.go) proves the problem
// componentized and the engine runs the fused single-barrier schedule.
//
// Heterogeneity is the point: "hot" pods get capacities tight against
// demand, so their prices keep orbiting a limit cycle and their flows stay
// dirty forever; the remaining cold pods get generous headroom, converge,
// and exercise the incremental skip path at steady state. That mix is what
// the BenchmarkEngineStepMetro family measures.

// MetroConfig parameterizes MetroSized. Zero fields are normalized to the
// full metro scale (see Metro).
type MetroConfig struct {
	// Pods is the number of independent pods (default 1000).
	Pods int
	// FlowsPerPod is the number of flows per pod (default 10).
	FlowsPerPod int
	// NodesPerPod is the number of nodes per pod (default 100).
	NodesPerPod int
	// ClassesPerFlow is the number of consumer classes per flow
	// (default 100).
	ClassesPerFlow int
	// HotEvery makes every HotEvery-th pod capacity-constrained
	// (default 4: a quarter of the pods stay hot).
	HotEvery int
	// Seed seeds the generator; the same seed always produces the
	// identical problem (default 1).
	Seed int64
}

func (c MetroConfig) normalized() MetroConfig {
	if c.Pods <= 0 {
		c.Pods = 1000
	}
	if c.FlowsPerPod <= 0 {
		c.FlowsPerPod = 10
	}
	if c.NodesPerPod <= 0 {
		c.NodesPerPod = 100
	}
	if c.ClassesPerFlow <= 0 {
		c.ClassesPerFlow = 100
	}
	if c.HotEvery <= 0 {
		c.HotEvery = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Metro returns the full metro-scale workload: 10,000 flows, 100,000
// nodes, 1,000,000 classes, 10,000 links.
func Metro() *model.Problem {
	return MetroSized(MetroConfig{})
}

// MetroSmall returns a CI-sized slice of the same structure: 240 flows,
// 1,200 nodes, 9,600 classes, 240 links. Small enough for smoke tests and
// -benchtime=1x bench runs, big enough to clear the engine's parallel
// cutover and fuse.
func MetroSmall() *model.Problem {
	return MetroSized(MetroConfig{
		Pods:           24,
		FlowsPerPod:    10,
		NodesPerPod:    50,
		ClassesPerFlow: 40,
	})
}

// MetroSized builds a metro workload at the given scale. Generation is
// sequential from a single seeded source — never from map iteration or
// goroutines — so the same config yields the byte-identical problem on
// every run and under every GOMAXPROCS.
func MetroSized(cfg MetroConfig) *model.Problem {
	c := cfg.normalized()
	rng := rand.New(rand.NewSource(c.Seed))

	nFlows := c.Pods * c.FlowsPerPod
	nNodes := c.Pods * c.NodesPerPod
	nClasses := nFlows * c.ClassesPerFlow
	p := &model.Problem{
		Name:    fmt.Sprintf("metro-%dp-%df-%dn", c.Pods, nFlows, nNodes),
		Flows:   make([]model.Flow, 0, nFlows),
		Classes: make([]model.Class, 0, nClasses),
		Nodes:   make([]model.Node, 0, nNodes),
		Links:   make([]model.Link, 0, nFlows),
	}

	for pod := 0; pod < c.Pods; pod++ {
		hot := pod%c.HotEvery == 0
		nodeBase := pod * c.NodesPerPod
		// Per-node capacity, heterogeneous: hot pods sit tight against the
		// demand their classes generate (sustained price dynamics), cold
		// pods get two orders of magnitude of headroom and quiesce.
		for k := 0; k < c.NodesPerPod; k++ {
			scale := 200 + 100*rng.Float64()
			if hot {
				scale = 0.5 + 0.5*rng.Float64()
			}
			p.Nodes = append(p.Nodes, model.Node{
				ID:       model.NodeID(nodeBase + k),
				Capacity: scale * NodeCapacity,
				FlowCost: make(map[model.FlowID]float64),
			})
		}
		for f := 0; f < c.FlowsPerPod; f++ {
			fid := model.FlowID(pod*c.FlowsPerPod + f)
			p.Flows = append(p.Flows, model.Flow{
				ID:      fid,
				Source:  model.NodeID(nodeBase), // rewritten below
				RateMin: RateMin,
				RateMax: RateMax,
			})
			// The flow reaches a contiguous, randomly-sized, randomly-
			// placed window of the pod's nodes: window placement varies the
			// per-node flow mix, contiguity keeps the reach list cheap to
			// pick class attachments from.
			reach := 3
			if c.NodesPerPod > 3 {
				reach += rng.Intn(c.NodesPerPod - 2)
			}
			if reach > c.NodesPerPod {
				reach = c.NodesPerPod
			}
			start := 0
			if c.NodesPerPod > reach {
				start = rng.Intn(c.NodesPerPod - reach + 1)
			}
			for k := 0; k < reach; k++ {
				b := nodeBase + start + k
				p.Nodes[b].FlowCost[fid] = FlowNodeCost * (0.5 + rng.Float64())
			}
			src := model.NodeID(nodeBase + start)
			p.Flows[fid].Source = src

			// Alternate closed-form utility families per flow so both the
			// log and the power fast paths of the rate solver stay hot.
			shape := ShapeLog
			switch f % 3 {
			case 1:
				shape = ShapePow50
			case 2:
				shape = ShapePow25
			}
			for j := 0; j < c.ClassesPerFlow; j++ {
				b := model.NodeID(nodeBase + start + rng.Intn(reach))
				rank := 1 + rng.Float64()*99
				p.Classes = append(p.Classes, model.Class{
					ID:              model.ClassID(len(p.Classes)),
					Flow:            fid,
					Node:            b,
					MaxConsumers:    1 + rng.Intn(400),
					CostPerConsumer: ConsumerCost * (0.5 + rng.Float64()),
					Utility:         shape.Utility(rank),
				})
			}

			// One egress link per flow, inside the pod so the component
			// structure survives. Hot pods get binding link capacities,
			// cold pods slack ones.
			to := src
			if reach > 1 {
				to = model.NodeID(nodeBase + start + 1)
			} else if c.NodesPerPod > 1 {
				to = model.NodeID(nodeBase + (start+1)%c.NodesPerPod)
				// Keep the link inside the component: the flow must
				// traverse only nodes it reaches, but a link's endpoints
				// are topology only — the component analysis unions the
				// link with its flows, not its endpoints, so any in-pod
				// endpoint is safe.
			}
			utilization := 3 + 2*rng.Float64()
			if hot {
				utilization = 0.35 + 0.3*rng.Float64()
			}
			p.Links = append(p.Links, model.Link{
				ID:       model.LinkID(len(p.Links)),
				From:     src,
				To:       to,
				Capacity: utilization * RateMax,
				FlowCost: map[model.FlowID]float64{fid: 1},
			})
		}
	}
	return p
}
