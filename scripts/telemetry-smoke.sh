#!/usr/bin/env bash
# telemetry-smoke.sh — end-to-end scrape of the observability surface.
#
# Builds lrgp-broker (race-instrumented when RACE=1), starts it with
# -telemetry-addr, polls /metrics until the engine and broker counter
# families are present and non-zero, checks /debug/pprof and /snapshot,
# and fails loudly otherwise. Run via `make telemetry-smoke`; CI runs it
# with RACE=1.
set -euo pipefail

PORT="${PORT:-9090}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/lrgp-broker"
OUT="$(mktemp)"

cleanup() {
    [ -n "${BROKER_PID:-}" ] && kill "${BROKER_PID}" 2>/dev/null || true
    rm -rf "$(dirname "${BIN}")" "${OUT}"
}
trap cleanup EXIT

build_flags=()
if [ "${RACE:-0}" = "1" ]; then
    build_flags+=(-race)
fi
echo "telemetry-smoke: building lrgp-broker ${build_flags[*]:-}"
go build "${build_flags[@]}" -o "${BIN}" ./cmd/lrgp-broker

# A generous publish window keeps the server alive while we poll; the
# script kills the process as soon as the checks pass.
"${BIN}" -telemetry-addr "${ADDR}" -rounds 120 -publish-seconds 30 >"${OUT}" 2>&1 &
BROKER_PID=$!

fetch() { curl -sf --max-time 5 "http://${ADDR}$1"; }

echo "telemetry-smoke: waiting for non-empty engine/broker counters on ${ADDR}"
deadline=$((SECONDS + 60))
while :; do
    if ! kill -0 "${BROKER_PID}" 2>/dev/null; then
        echo "telemetry-smoke: lrgp-broker exited early:" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    if metrics="$(fetch /metrics 2>/dev/null)" \
        && grep -Eq '^lrgp_engine_steps_total [1-9]' <<<"${metrics}" \
        && grep -Eq '^lrgp_broker_published_total [1-9]' <<<"${metrics}"; then
        break
    fi
    if [ "${SECONDS}" -ge "${deadline}" ]; then
        echo "telemetry-smoke: counters never became non-empty; last scrape:" >&2
        echo "${metrics:-<no response>}" >&2
        cat "${OUT}" >&2
        exit 1
    fi
    sleep 0.2
done

for family in \
    'lrgp_engine_stage_seconds_bucket{stage="rate"' \
    'lrgp_engine_stage_seconds_bucket{stage="admission"' \
    'lrgp_engine_stage_seconds_bucket{stage="price"' \
    lrgp_engine_utility \
    lrgp_engine_converged \
    lrgp_engine_dirty_flows \
    lrgp_engine_skipped_constraints \
    lrgp_broker_consumers_admitted; do
    if ! grep -Fq "${family}" <<<"${metrics}"; then
        echo "telemetry-smoke: /metrics missing ${family}" >&2
        exit 1
    fi
done

fetch /debug/pprof/cmdline >/dev/null || { echo "telemetry-smoke: pprof unreachable" >&2; exit 1; }
fetch /debug/vars | grep -q '"lrgp"' || { echo "telemetry-smoke: expvar missing lrgp" >&2; exit 1; }
fetch /snapshot | grep -q '"Utility"' || { echo "telemetry-smoke: snapshot missing Utility" >&2; exit 1; }

echo "telemetry-smoke: OK (engine steps, broker counters, stage histograms, pprof, expvar, snapshot)"
