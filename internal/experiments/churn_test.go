package experiments

import (
	"strings"
	"testing"
)

func TestChurnExperimentLink(t *testing.T) {
	res, err := ChurnExperiment(Options{Workers: 1}, ChurnConfig{
		TopoNodes: 300, Flows: 6, Events: 4, FailEvery: 200, ColdBudget: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 4 {
		t.Fatalf("ran %d events, want 4", len(res.Events))
	}
	for k, e := range res.Events {
		wantKind := "link-fail"
		if k%2 == 1 {
			wantKind = "link-restore"
		}
		if e.Kind != wantKind {
			t.Errorf("event %d kind = %q, want %q", k, e.Kind, wantKind)
		}
		if e.Affected <= 0 || e.Affected > res.Config.Flows {
			t.Errorf("event %d affected %d flows of %d", k, e.Affected, res.Config.Flows)
		}
		if !e.WarmConverged {
			t.Errorf("event %d warm re-solve did not converge within %d iterations", k, res.Config.FailEvery)
		}
		// Failures touch only the indexed flows; restores sweep all.
		if strings.HasSuffix(e.Kind, "-restore") && e.Affected != res.Config.Flows {
			t.Errorf("event %d restore affected %d, want full sweep %d", k, e.Affected, res.Config.Flows)
		}
	}
	if res.Speedup <= 0 {
		t.Errorf("speedup = %g", res.Speedup)
	}

	table := RenderChurn(res)
	var sb strings.Builder
	table.Render(&sb)
	if !strings.Contains(sb.String(), "X11: rolling link failures") {
		t.Errorf("table missing title:\n%s", sb.String())
	}
}

func TestChurnExperimentNode(t *testing.T) {
	res, err := ChurnExperiment(Options{Workers: 1, Seed: 3}, ChurnConfig{
		TopoNodes: 300, Flows: 6, Events: 2, FailEvery: 200, FailKind: "node", ColdBudget: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 2 {
		t.Fatalf("ran %d events, want 2", len(res.Events))
	}
	if res.Events[0].Kind != "node-fail" || res.Events[1].Kind != "node-restore" {
		t.Fatalf("event kinds = %q, %q", res.Events[0].Kind, res.Events[1].Kind)
	}
}
