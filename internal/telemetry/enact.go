package telemetry

// Enactment instrumentation: the lrgp_enact_* family tracks the broker's
// control-plane enact path (ApplyAllocation and the other route-snapshot
// publishers) and the autopilot's re-optimization cycles on top of it.
// Like the other handles in this package, a nil *EnactMetrics disables
// everything and every observe method is lock-free and allocation-free.

// Route-build outcomes reported by ObserveApply, mirroring the broker's
// enact modes: a no-op publishes no snapshot at all, an incremental build
// rebuilds only the affected flows' route slices and shares the rest with
// the predecessor snapshot, and a full build rebuilds every flow.
const (
	// EnactRouteNoop: the enact changed no admitted membership, so the
	// previous snapshot stayed published.
	EnactRouteNoop = iota
	// EnactRouteIncremental: only the dirty classes' flows were rebuilt;
	// every other flow's route slice is shared with the old snapshot.
	EnactRouteIncremental
	// EnactRouteFull: the delta was wide enough that a full rebuild was
	// cheaper than patching.
	EnactRouteFull
)

// enactModeNames labels the route-build counter in exposition output,
// indexed by the EnactRoute* constants.
var enactModeNames = [3]string{"noop", "incremental", "full"}

// EnactMetrics instruments the enact path. ObserveApply is called by the
// broker once per control operation that may republish the route
// snapshot; ObserveCycle is called by the autopilot once per
// re-optimization cycle. Construct with NewEnactMetrics and pass via
// broker.WithEnactTelemetry / broker.AutopilotConfig.Telemetry.
type EnactMetrics struct {
	// ApplySeconds is the wall time of one enact (diff, token-bucket
	// re-rating and snapshot publication, under the broker mutex).
	ApplySeconds *Histogram
	// RouteBuilds counts enacts by route-build outcome, indexed by the
	// EnactRoute* constants.
	RouteBuilds [3]*Counter
	// ClassesTouched counts classes whose admitted membership an enact
	// changed; FlowsTouched counts flows whose route slice was rebuilt;
	// RatesChanged counts per-flow token-bucket re-ratings. All three
	// stay flat across no-op enacts — that flatness under a steady
	// allocation is the incremental path's visible signature.
	ClassesTouched *Counter
	FlowsTouched   *Counter
	RatesChanged   *Counter
	// CyclesEnacted and CyclesSkipped count autopilot re-optimization
	// cycles by whether the re-solved allocation moved enough (relative
	// to the enact threshold) to be worth enacting.
	CyclesEnacted *Counter
	CyclesSkipped *Counter
	// CycleSeconds is the wall time of one full autopilot cycle: demand
	// estimation, warm re-solve and (possibly) enactment.
	CycleSeconds *Histogram
	// AllocationDelta is the largest relative change between the most
	// recent re-solved allocation and the last enacted one — the value
	// the enact threshold is compared against. Converging demand drives
	// it toward zero; churn keeps it alive.
	AllocationDelta *Gauge
	// Oscillation is the fraction of per-class admission changes over
	// the recent enact window that reversed the class's previous
	// direction (0 = monotone convergence, 1 = pure flapping).
	Oscillation *Gauge
	// DemandConsumers is the total attached-consumer demand the most
	// recent cycle observed across all classes.
	DemandConsumers *Gauge
}

// NewEnactMetrics registers the enact metric family in reg and returns
// the handle, with the default DurationBuckets layout for both wall-time
// histograms.
func NewEnactMetrics(reg *Registry) *EnactMetrics {
	return NewEnactMetricsBuckets(reg, nil)
}

// NewEnactMetricsBuckets is NewEnactMetrics with a caller-chosen bucket
// layout for the wall-time histograms (nil keeps DurationBuckets). As
// with the other families, bucket bounds are fixed at first registration.
func NewEnactMetricsBuckets(reg *Registry, buckets []float64) *EnactMetrics {
	if buckets == nil {
		buckets = DurationBuckets()
	}
	m := &EnactMetrics{
		ApplySeconds: reg.Histogram("lrgp_enact_apply_seconds",
			"Wall time of one broker enact (diff + snapshot publication).", buckets),
		ClassesTouched: reg.Counter("lrgp_enact_classes_touched_total",
			"Classes whose admitted membership enacts changed."),
		FlowsTouched: reg.Counter("lrgp_enact_flows_touched_total",
			"Flows whose route slice enacts rebuilt."),
		RatesChanged: reg.Counter("lrgp_enact_rates_changed_total",
			"Per-flow token-bucket re-ratings performed by enacts."),
		CyclesEnacted: reg.Counter("lrgp_enact_cycles_total",
			"Autopilot re-optimization cycles by outcome.", Label{Key: "result", Value: "enacted"}),
		CyclesSkipped: reg.Counter("lrgp_enact_cycles_total",
			"Autopilot re-optimization cycles by outcome.", Label{Key: "result", Value: "skipped"}),
		CycleSeconds: reg.Histogram("lrgp_enact_cycle_seconds",
			"Wall time of one autopilot cycle (estimate + re-solve + enact).", buckets),
		AllocationDelta: reg.Gauge("lrgp_enact_allocation_delta",
			"Largest relative change of the latest re-solved allocation vs the last enacted one."),
		Oscillation: reg.Gauge("lrgp_enact_oscillation",
			"Fraction of recent per-class admission changes that reversed direction (0 converged, 1 flapping)."),
		DemandConsumers: reg.Gauge("lrgp_enact_demand_consumers",
			"Attached-consumer demand observed by the most recent autopilot cycle."),
	}
	for mode, name := range enactModeNames {
		m.RouteBuilds[mode] = reg.Counter("lrgp_enact_route_builds_total",
			"Broker enacts by route-snapshot build outcome.", Label{Key: "mode", Value: name})
	}
	return m
}

// ObserveApply records one control-plane enact: its wall time
// (nanoseconds), route-build outcome (an EnactRoute* constant), and how
// many classes, flows and flow rates it touched. Lock-free, 0 allocs.
func (m *EnactMetrics) ObserveApply(nanos int64, mode, classes, flows, rates int) {
	if m == nil {
		return
	}
	m.ApplySeconds.ObserveSeconds(nanos)
	if mode >= 0 && mode < len(m.RouteBuilds) {
		m.RouteBuilds[mode].Inc()
	}
	m.ClassesTouched.Add(uint64(classes))
	m.FlowsTouched.Add(uint64(flows))
	m.RatesChanged.Add(uint64(rates))
}

// ObserveCycle records one autopilot cycle: whether it enacted, its wall
// time (nanoseconds), the allocation delta it measured against the enact
// threshold, the current oscillation score, and the total attached
// demand it observed. Lock-free, 0 allocs.
func (m *EnactMetrics) ObserveCycle(enacted bool, nanos int64, delta, oscillation float64, demand int) {
	if m == nil {
		return
	}
	if enacted {
		m.CyclesEnacted.Inc()
	} else {
		m.CyclesSkipped.Inc()
	}
	m.CycleSeconds.ObserveSeconds(nanos)
	m.AllocationDelta.Set(delta)
	m.Oscillation.Set(oscillation)
	m.DemandConsumers.Set(float64(demand))
}
