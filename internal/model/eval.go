package model

import (
	"errors"
	"fmt"
)

// Evaluation of allocations: the objective function (Equation 1) and the
// resource constraints (Equations 4 and 5).

// ErrInfeasible wraps all feasibility violations reported by CheckFeasible.
var ErrInfeasible = errors.New("model: infeasible allocation")

// TotalUtility evaluates the objective of Equation 1,
// sum_i sum_{j in C_i} n_j * U_j(r_i), for the given allocation.
func TotalUtility(p *Problem, a Allocation) float64 {
	total := 0.0
	for _, c := range p.Classes {
		n := a.Consumers[c.ID]
		if n == 0 {
			continue
		}
		total += float64(n) * c.Utility.Value(a.Rates[c.Flow])
	}
	return total
}

// NodeUsage evaluates the left-hand side of Equation 5 for node b:
// sum over flows reaching b of (F_{b,i} r_i + sum over classes at b on flow
// i of G_{b,j} n_j r_i).
func NodeUsage(p *Problem, ix *Index, a Allocation, b NodeID) float64 {
	used := 0.0
	costs := ix.FlowCostsByNode(b)
	for k, i := range ix.FlowsByNode(b) {
		used += costs[k] * a.Rates[i]
	}
	for _, cid := range ix.ClassesByNode(b) {
		c := &p.Classes[cid]
		used += c.CostPerConsumer * float64(a.Consumers[cid]) * a.Rates[c.Flow]
	}
	return used
}

// NodeFlowUsage evaluates only the consumer-independent portion of node b's
// usage, sum_i F_{b,i} r_i. The greedy consumer-allocation step uses the
// remainder c_b - NodeFlowUsage as its admission budget.
func NodeFlowUsage(p *Problem, ix *Index, a Allocation, b NodeID) float64 {
	used := 0.0
	costs := ix.FlowCostsByNode(b)
	for k, i := range ix.FlowsByNode(b) {
		used += costs[k] * a.Rates[i]
	}
	return used
}

// LinkUsage evaluates the left-hand side of Equation 4 for link l:
// sum over flows traversing l of L_{l,i} r_i.
func LinkUsage(p *Problem, ix *Index, a Allocation, l LinkID) float64 {
	used := 0.0
	costs := ix.FlowCostsByLink(l)
	for k, i := range ix.FlowsByLink(l) {
		used += costs[k] * a.Rates[i]
	}
	return used
}

// CheckFeasible reports nil when the allocation satisfies every constraint
// of Section 2: rate bounds, population bounds, link capacities and node
// capacities. tol is an absolute slack added to each capacity comparison to
// absorb floating-point noise; pass 0 for exact checking.
func CheckFeasible(p *Problem, ix *Index, a Allocation, tol float64) error {
	if len(a.Rates) != len(p.Flows) || len(a.Consumers) != len(p.Classes) {
		return fmt.Errorf("%w: allocation shape %d/%d, want %d/%d",
			ErrInfeasible, len(a.Rates), len(a.Consumers), len(p.Flows), len(p.Classes))
	}
	for _, f := range p.Flows {
		r := a.Rates[f.ID]
		if r < f.RateMin-tol || r > f.RateMax+tol {
			return fmt.Errorf("%w: flow %d rate %g outside [%g, %g]",
				ErrInfeasible, f.ID, r, f.RateMin, f.RateMax)
		}
	}
	for _, c := range p.Classes {
		n := a.Consumers[c.ID]
		if n < 0 || n > c.MaxConsumers {
			return fmt.Errorf("%w: class %d population %d outside [0, %d]",
				ErrInfeasible, c.ID, n, c.MaxConsumers)
		}
	}
	for _, l := range p.Links {
		if used := LinkUsage(p, ix, a, l.ID); used > l.Capacity+tol {
			return fmt.Errorf("%w: link %d usage %g exceeds capacity %g",
				ErrInfeasible, l.ID, used, l.Capacity)
		}
	}
	for _, n := range p.Nodes {
		if used := NodeUsage(p, ix, a, n.ID); used > n.Capacity+tol {
			return fmt.Errorf("%w: node %d usage %g exceeds capacity %g",
				ErrInfeasible, n.ID, used, n.Capacity)
		}
	}
	return nil
}
