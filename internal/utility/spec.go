package utility

import (
	"errors"
	"fmt"
)

// Kind identifies a serializable utility family.
type Kind string

// Supported utility kinds.
const (
	KindLog        Kind = "log"
	KindPower      Kind = "power"
	KindLinearCap  Kind = "lincap"
	KindHyperbolic Kind = "hyperbolic"
)

// Spec is the serializable description of a utility function. It is the
// form stored in JSON workload files; Build materializes the corresponding
// Function and SpecOf recovers a Spec from one of this package's concrete
// types.
type Spec struct {
	// Kind selects the utility family.
	Kind Kind `json:"kind"`
	// Scale is the multiplicative rank/weight, used by every kind.
	Scale float64 `json:"scale"`
	// Exponent is the power-law exponent (kind "power" only).
	Exponent float64 `json:"exponent,omitempty"`
	// Shift is the log shift (kind "log" only; 0 means the default of 1).
	Shift float64 `json:"shift,omitempty"`
	// Knee is the saturation knee (kind "lincap" only).
	Knee float64 `json:"knee,omitempty"`
	// HalfRate is the half-saturation rate (kind "hyperbolic" only).
	HalfRate float64 `json:"halfRate,omitempty"`
}

// Errors returned by Build.
var (
	ErrUnknownKind = errors.New("utility: unknown kind")
	ErrBadParam    = errors.New("utility: invalid parameter")
)

// Build materializes the Function described by the spec, validating its
// parameters.
func (s Spec) Build() (Function, error) {
	switch s.Kind {
	case KindLog:
		shift := s.Shift
		if shift == 0 {
			shift = 1
		}
		if s.Scale <= 0 || shift <= 0 {
			return nil, fmt.Errorf("%w: log needs scale>0 and shift>0, got scale=%g shift=%g",
				ErrBadParam, s.Scale, shift)
		}
		return Log{Scale: s.Scale, Shift: shift}, nil
	case KindPower:
		if s.Scale <= 0 || s.Exponent <= 0 || s.Exponent >= 1 {
			return nil, fmt.Errorf("%w: power needs scale>0 and 0<exponent<1, got scale=%g exponent=%g",
				ErrBadParam, s.Scale, s.Exponent)
		}
		return Power{Scale: s.Scale, Exponent: s.Exponent}, nil
	case KindLinearCap:
		if s.Scale <= 0 || s.Knee <= 0 {
			return nil, fmt.Errorf("%w: lincap needs scale>0 and knee>0, got scale=%g knee=%g",
				ErrBadParam, s.Scale, s.Knee)
		}
		return LinearCap{Scale: s.Scale, Knee: s.Knee}, nil
	case KindHyperbolic:
		if s.Scale <= 0 || s.HalfRate <= 0 {
			return nil, fmt.Errorf("%w: hyperbolic needs scale>0 and halfRate>0, got scale=%g halfRate=%g",
				ErrBadParam, s.Scale, s.HalfRate)
		}
		return Hyperbolic{Scale: s.Scale, HalfRate: s.HalfRate}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, s.Kind)
	}
}

// SpecOf returns the Spec describing fn if fn is one of this package's
// concrete types. The second return is false for foreign implementations,
// which cannot be serialized.
func SpecOf(fn Function) (Spec, bool) {
	switch u := fn.(type) {
	case Log:
		return Spec{Kind: KindLog, Scale: u.Scale, Shift: u.Shift}, true
	case Power:
		return Spec{Kind: KindPower, Scale: u.Scale, Exponent: u.Exponent}, true
	case LinearCap:
		return Spec{Kind: KindLinearCap, Scale: u.Scale, Knee: u.Knee}, true
	case Hyperbolic:
		return Spec{Kind: KindHyperbolic, Scale: u.Scale, HalfRate: u.HalfRate}, true
	default:
		return Spec{}, false
	}
}
