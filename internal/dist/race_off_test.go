//go:build !race

package dist

// raceEnabled reports whether the race detector is compiled in; tests
// whose timing-derived assertions need real-time cluster cadence gate on
// it (the detector slows the 1008-agent cluster ~50x, long enough for
// scheduler starvation to out-lag any deliberately injected fault).
const raceEnabled = false
