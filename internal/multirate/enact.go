package multirate

import (
	"fmt"

	"repro/internal/broker"
	"repro/internal/model"
)

// Enact applies a multirate allocation to a broker: source token buckets
// get the source rates, classes get their admitted populations, and each
// class whose delivery rate is below its flow's source rate gets a
// per-class delivery cap (the broker thins its stream).
func Enact(b *broker.Broker, a Allocation) error {
	p := b.Problem()
	if len(a.SourceRates) != len(p.Flows) || len(a.Consumers) != len(p.Classes) ||
		len(a.Delivery) != len(p.Classes) {
		return fmt.Errorf("multirate: allocation shape mismatch")
	}
	if err := b.ApplyAllocation(model.Allocation{
		Rates:     a.SourceRates,
		Consumers: a.Consumers,
	}); err != nil {
		return err
	}
	for j := range p.Classes {
		cap := 0.0 // no cap: deliver at the source rate
		if a.Delivery[j] < a.SourceRates[p.Classes[j].Flow] {
			cap = a.Delivery[j]
		}
		if err := b.SetClassRateCap(model.ClassID(j), cap); err != nil {
			return err
		}
	}
	return nil
}
