package broker

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
)

// ConsumerID identifies an attached consumer.
type ConsumerID int

// Handler receives messages delivered to one consumer. Handlers run
// synchronously inside Publish and must return quickly. Concurrent
// publishes on a flow may invoke the same handler concurrently, so
// handlers must be safe for concurrent use. The delivered Message's
// Attrs map is read-only by contract: on the Identity-transform fast
// path it is the producer's own map, shared by every consumer of the
// message (see Message.Attrs).
type Handler func(m Message)

// Errors returned by broker operations.
var (
	ErrUnknownClass    = errors.New("broker: unknown class")
	ErrUnknownFlow     = errors.New("broker: unknown flow")
	ErrUnknownConsumer = errors.New("broker: unknown consumer")
	ErrThrottled       = errors.New("broker: rate limit exceeded")
)

// consumer is one attached consumer. The fields are control-plane owned:
// filter and handler are immutable after attach, and admitted is only
// read and written under Broker.mu — the data plane sees consumers
// exclusively through the admitted lists of immutable route snapshots.
type consumer struct {
	id       ConsumerID
	class    model.ClassID
	filter   Filter
	handler  Handler
	admitted bool
}

// classState is the authoritative (control-plane) state of one class.
// The broker mutex guards transform, consumers, admitted and thinner
// installation; the counter block is updated with atomics from both
// planes and shared by pointer with every route snapshot.
type classState struct {
	transform Transform
	// attach-ordered consumers; admission follows this order (earliest
	// attached admitted first, latest unadmitted first on shrink).
	consumers []*consumer
	admitted  int
	// thinner, when set, caps this class's delivery rate below the
	// flow's source rate (multirate thinning: elastic consumers receive
	// a subsampled stream, per the latest-price scenario's "reducing
	// the frequency of updates").
	thinner  *TokenBucket
	counters classCounters
}

// FlowStats reports one flow's publish-side accounting.
type FlowStats struct {
	Published uint64
	Throttled uint64
	Rate      float64
}

// ClassStats reports one class's delivery-side accounting. Delivered and
// Filtered are cumulative class totals: they keep counting across
// consumer churn and are not reduced when a consumer detaches.
type ClassStats struct {
	Attached  int
	Admitted  int
	Delivered uint64
	Filtered  uint64
	// Thinned counts messages dropped for this class by its delivery-
	// rate cap (see SetClassRateCap).
	Thinned uint64
}

// Broker hosts the flows and consumer classes of one problem instance and
// enacts optimizer allocations. All methods are safe for concurrent use.
//
// The broker is split into a lock-free data plane and a mutex-serialized
// control plane. Publish reads an immutable routing snapshot through an
// atomic pointer and touches only its flow's own sharded state, so
// publishes on distinct flows never contend and publishes on the same
// flow contend only on that flow's token bucket. Control operations
// (attach/detach, ApplyAllocation, SetClassRateCap) serialize on the
// mutex and publish a rebuilt snapshot (copy-on-write); a publish racing
// a control change delivers against whichever snapshot it loaded.
type Broker struct {
	p  *model.Problem
	ix *model.Index

	now func() time.Time

	// Data plane: per-flow shards and the routing snapshot. Stats
	// methods read these without locking. The abstract work counter
	// (one unit per message routed, per class transform applied, per
	// filter evaluation, per delivery — regressed by the calibrate
	// package to recover the paper's F/G resource-model coefficients)
	// is sharded into the flowStates; each Publish folds its units into
	// a single atomic add on its own flow's shard, so the total is
	// exact under concurrency and deterministic for a fixed serial
	// publish sequence.
	flows []flowState
	route atomic.Pointer[routeTable]

	// Control plane, guarded by mu.
	mu           sync.Mutex
	classes      []classState
	nextID       ConsumerID
	byID         map[ConsumerID]*consumer
	nextProducer int
	producers    map[ProducerID]*Producer

	// tel, when non-nil, mirrors the broker's accounting into the
	// telemetry registry (message counters, fan-out histogram, consumer
	// gauges). All ObserveX methods are nil-safe and lock-free, so the
	// uninstrumented broker pays one branch per call site and the
	// instrumented data plane stays mutex-free.
	tel *telemetry.BrokerMetrics
}

// Option configures a Broker.
type Option interface {
	apply(*Broker)
}

type clockOption struct {
	now func() time.Time
}

func (o clockOption) apply(b *Broker) { b.now = o.now }

// WithClock injects a time source (deterministic tests). Under
// concurrent publishing the source must be safe for concurrent use.
func WithClock(now func() time.Time) Option {
	return clockOption{now: now}
}

type transformOption struct {
	class model.ClassID
	tr    Transform
}

func (o transformOption) apply(b *Broker) {
	b.classes[o.class].transform = o.tr
}

// WithTransform installs a per-class message transformation.
func WithTransform(class model.ClassID, tr Transform) Option {
	return transformOption{class: class, tr: tr}
}

type telemetryOption struct {
	m *telemetry.BrokerMetrics
}

func (o telemetryOption) apply(b *Broker) { b.tel = o.m }

// WithTelemetry mirrors the broker's accounting into m (see
// telemetry.NewBrokerMetrics). A nil handle is valid and leaves the
// broker uninstrumented.
func WithTelemetry(m *telemetry.BrokerMetrics) Option {
	return telemetryOption{m: m}
}

// New builds a broker for the problem. Flows start rate-limited at their
// minimum rates with no admitted consumers; call ApplyAllocation to enact
// an optimizer result.
func New(p *model.Problem, opts ...Option) (*Broker, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	b := &Broker{
		p:         p,
		ix:        model.NewIndex(p),
		now:       time.Now,
		flows:     make([]flowState, len(p.Flows)),
		classes:   make([]classState, len(p.Classes)),
		byID:      make(map[ConsumerID]*consumer),
		producers: make(map[ProducerID]*Producer),
	}
	for j := range b.classes {
		b.classes[j].transform = Identity{}
	}
	for _, opt := range opts {
		opt.apply(b)
	}
	start := b.now()
	for i, f := range p.Flows {
		b.flows[i].bucket = NewTokenBucket(f.RateMin, 0, start)
		b.flows[i].setRate(f.RateMin)
	}
	b.rebuildRouteLocked()
	return b, nil
}

// Problem returns the broker's problem definition.
func (b *Broker) Problem() *model.Problem { return b.p }

// AttachConsumer registers a consumer in a class. The consumer receives
// messages only once admission control admits it (ApplyAllocation). A nil
// filter matches everything. Filters must be safe for concurrent use and
// must treat the message — including its Attrs map — as read-only.
func (b *Broker) AttachConsumer(class model.ClassID, filter Filter, h Handler) (ConsumerID, error) {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return 0, fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	if filter == nil {
		filter = MatchAll{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	c := &consumer{id: id, class: class, filter: filter, handler: h}
	cs := &b.classes[class]
	cs.consumers = append(cs.consumers, c)
	cs.counters.attached.Add(1)
	b.byID[id] = c
	b.tel.ObserveConsumers(b.consumerTotalsLocked())
	return id, nil
}

// consumerTotalsLocked returns the attached and admitted consumer counts
// across all classes. Callers must hold b.mu.
func (b *Broker) consumerTotalsLocked() (attached, admitted int) {
	attached = len(b.byID)
	for j := range b.classes {
		admitted += b.classes[j].admitted
	}
	return attached, admitted
}

// DetachConsumer removes a consumer entirely. In-flight publishes that
// loaded the routing snapshot before the detach may still deliver to the
// consumer's handler.
func (b *Broker) DetachConsumer(id ConsumerID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownConsumer, id)
	}
	delete(b.byID, id)
	cs := &b.classes[c.class]
	for k, cc := range cs.consumers {
		if cc.id == id {
			cs.consumers = append(cs.consumers[:k], cs.consumers[k+1:]...)
			break
		}
	}
	cs.counters.attached.Add(-1)
	if c.admitted {
		cs.admitted--
		cs.counters.admitted.Add(-1)
	}
	b.rebuildRouteLocked()
	b.tel.ObserveConsumers(b.consumerTotalsLocked())
	return nil
}

// Admitted reports whether a consumer is currently admitted.
func (b *Broker) Admitted(id ConsumerID) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.byID[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownConsumer, id)
	}
	return c.admitted, nil
}

// ApplyAllocation enacts an optimizer allocation: flow token buckets are
// re-rated and each class admits (or unadmits) consumers to match n_j.
// Admission is capped by the number of attached consumers; earlier
// attachments are admitted first and the latest admitted are unadmitted
// first when shrinking. The change becomes visible to publishers as one
// atomic snapshot swap.
func (b *Broker) ApplyAllocation(a model.Allocation) error {
	if len(a.Rates) != len(b.p.Flows) || len(a.Consumers) != len(b.p.Classes) {
		return fmt.Errorf("broker: allocation shape %d/%d, want %d/%d",
			len(a.Rates), len(a.Consumers), len(b.p.Flows), len(b.p.Classes))
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, r := range a.Rates {
		b.flows[i].bucket.SetRate(r, now)
		b.flows[i].setRate(r)
	}
	for j, want := range a.Consumers {
		cs := &b.classes[j]
		if want > len(cs.consumers) {
			want = len(cs.consumers)
		}
		if want < 0 {
			want = 0
		}
		for k, c := range cs.consumers {
			c.admitted = k < want
		}
		cs.admitted = want
		cs.counters.admitted.Store(int64(want))
	}
	b.rebuildRouteLocked()
	b.tel.ObserveAllocation()
	b.tel.ObserveConsumers(b.consumerTotalsLocked())
	return nil
}

// Publish injects a message into a flow. It applies the source rate limit,
// then delivers to every admitted consumer of every class of the flow,
// applying the class transform and each consumer's filter. It returns
// ErrThrottled when the rate limiter rejects the message.
//
// Publish is the broker's lock-free fast path: it reads the routing
// snapshot through an atomic pointer and touches only its own flow's
// sharded state, so concurrent publishes on distinct flows never contend.
// When the class transform is Identity the message is delivered carrying
// the caller's attrs map itself — no copy is made, and the whole path
// performs no allocations. Callers and consumers must therefore treat
// attrs as immutable once published.
func (b *Broker) Publish(flow model.FlowID, attrs map[string]float64, body string) error {
	if flow < 0 || int(flow) >= len(b.flows) {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	now := b.now()
	f := &b.flows[flow]
	if !f.bucket.Allow(now) {
		f.throttled.Add(1)
		b.tel.ObserveThrottle()
		return ErrThrottled
	}
	f.published.Add(1)
	msg := Message{
		Flow:  flow,
		Seq:   f.seq.Add(1),
		Time:  now,
		Attrs: attrs,
		Body:  body,
	}

	work := uint64(1) // per-message routing work
	delivered, filtered := 0, 0
	routes := b.route.Load().byFlow[flow]
	for ri := range routes {
		cr := &routes[ri]
		if cr.thinner != nil && !cr.thinner.Allow(now) {
			cr.counters.thinned.Add(1)
			b.tel.ObserveThinned()
			continue
		}
		classMsg := msg
		if !cr.identity {
			// Only a mutating transform gets (and pays for) a private
			// copy of the attribute map.
			classMsg.Attrs = cloneAttrs(attrs)
			classMsg = cr.transform.Apply(classMsg)
		}
		work++ // per-class transform work
		var classDelivered, classFiltered uint64
		for _, c := range cr.consumers {
			work++ // per-consumer filter evaluation
			if c.filter.Match(classMsg) {
				work++ // per-consumer delivery
				classDelivered++
				if c.handler != nil {
					c.handler(classMsg)
				}
			} else {
				classFiltered++
			}
		}
		if classDelivered != 0 {
			cr.counters.delivered.Add(classDelivered)
		}
		if classFiltered != 0 {
			cr.counters.filtered.Add(classFiltered)
		}
		delivered += int(classDelivered)
		filtered += int(classFiltered)
	}
	f.work.Add(work)
	b.tel.ObservePublish(delivered, filtered, work)
	return nil
}

// WorkUnits returns the cumulative abstract work counter (see the field
// comment on Broker.flows): deterministic across runs for identical
// serial publish sequences, and an exact interleaving-order-free total
// under concurrent publishing. Sums the per-flow atomic shards — never
// blocks the data plane (while publishers are running the sum may
// straddle in-flight messages, like any multi-counter scrape).
func (b *Broker) WorkUnits() uint64 {
	var total uint64
	for i := range b.flows {
		total += b.flows[i].work.Load()
	}
	return total
}

// FlowStats returns the publish-side counters of a flow. Served from
// atomics: scraping never stalls publishers.
func (b *Broker) FlowStats(flow model.FlowID) (FlowStats, error) {
	if flow < 0 || int(flow) >= len(b.flows) {
		return FlowStats{}, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	f := &b.flows[flow]
	return FlowStats{
		Published: f.published.Load(),
		Throttled: f.throttled.Load(),
		Rate:      f.rate(),
	}, nil
}

// ClassStats returns the delivery-side counters of a class. Served from
// atomics: scraping never stalls publishers. Under concurrent publishing
// the fields are individually exact but not a single atomic snapshot.
func (b *Broker) ClassStats(class model.ClassID) (ClassStats, error) {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return ClassStats{}, fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	cc := &b.classes[class].counters
	return ClassStats{
		Attached:  int(cc.attached.Load()),
		Admitted:  int(cc.admitted.Load()),
		Delivered: cc.delivered.Load(),
		Filtered:  cc.filtered.Load(),
		Thinned:   cc.thinned.Load(),
	}, nil
}

// SetClassRateCap installs (or, with rate <= 0, removes) a delivery-rate
// cap for one class, thinning its stream below the flow's source rate.
// This is the enactment hook for multirate extensions: different classes
// of the same flow can receive different effective rates.
func (b *Broker) SetClassRateCap(class model.ClassID, rate float64) error {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case rate <= 0:
		b.classes[class].thinner = nil
	case b.classes[class].thinner != nil:
		// Re-rating mutates the shared bucket in place; live snapshots
		// pick the new rate up immediately, no rebuild needed.
		b.classes[class].thinner.SetRate(rate, now)
		return nil
	default:
		b.classes[class].thinner = NewTokenBucket(rate, 0, now)
	}
	b.rebuildRouteLocked()
	return nil
}
