package telemetry

import (
	"strings"
	"testing"
)

func TestDistMetricsObserve(t *testing.T) {
	reg := NewRegistry()
	dm := NewDistMetrics(reg)

	dm.ObserveFinalize(2, 1, 1500)
	dm.ObserveFinalize(1, 0, 2500)
	dm.ObserveChirp(true)
	dm.ObserveChirp(false)
	dm.ObserveChirp(false)
	dm.ObserveBackoff(true)
	dm.ObserveRepair(false)
	dm.ObserveFlush(12)
	dm.ObserveFlushFrame(5)
	dm.ObserveFlushFrame(7)
	dm.ObserveStall()
	dm.ObserveNet(10, 1000, 20, 800, 3)

	if dm.RoundsFinalized.Value() != 2 {
		t.Errorf("rounds finalized = %d, want 2", dm.RoundsFinalized.Value())
	}
	if dm.StalenessLag.Value() != 1 || dm.FinalizeLag.Value() != 0 {
		t.Errorf("lag gauges = (%g, %g), want (1, 0) (last write wins)",
			dm.StalenessLag.Value(), dm.FinalizeLag.Value())
	}
	if count, _ := dm.AssemblySeconds.CountSum(); count != 2 {
		t.Errorf("assembly observations = %d, want 2", count)
	}
	if dm.FlowChirps.Value() != 1 || dm.NodeChirps.Value() != 2 {
		t.Errorf("chirps = (%d, %d), want (1, 2)", dm.FlowChirps.Value(), dm.NodeChirps.Value())
	}
	if dm.FlowBackoffs.Value() != 1 || dm.NodeRepairs.Value() != 1 {
		t.Error("backoff/repair counters wrong")
	}
	if dm.GatewayFlushes.Value() != 1 || dm.GatewayQueueDepth.Value() != 12 {
		t.Error("gateway flush counters wrong")
	}
	if count, sum := dm.FlushOccupancy.CountSum(); count != 2 || sum != 12 {
		t.Errorf("occupancy histogram = (%d, %g), want (2, 12)", count, sum)
	}
	if dm.Stalls.Value() != 1 {
		t.Errorf("stalls = %d, want 1", dm.Stalls.Value())
	}
	if dm.NetFramesJSON.Value() != 10 || dm.NetBytesBinary.Value() != 800 || dm.NetDropped.Value() != 3 {
		t.Error("net gauges wrong")
	}

	var out strings.Builder
	reg.WritePrometheus(&out)
	for _, family := range []string{
		"lrgp_dist_rounds_finalized_total",
		"lrgp_dist_staleness_lag",
		"lrgp_dist_collector_finalize_lag",
		"lrgp_dist_round_assembly_seconds",
		"lrgp_dist_resend_chirps_total",
		"lrgp_dist_resend_backoffs_total",
		"lrgp_dist_repairs_total",
		"lrgp_dist_gateway_flushes_total",
		"lrgp_dist_gateway_queue_depth",
		"lrgp_dist_gateway_flush_occupancy",
		"lrgp_dist_stalls_total",
		"lrgp_dist_net_frames",
		"lrgp_dist_net_bytes",
		"lrgp_dist_net_dropped",
	} {
		if !strings.Contains(out.String(), family) {
			t.Errorf("rendered output missing family %s", family)
		}
	}
}

func TestDistMetricsNilSafeAndZeroAlloc(t *testing.T) {
	var dm *DistMetrics
	dm.ObserveFinalize(1, 1, 100)
	dm.ObserveChirp(true)
	dm.ObserveBackoff(false)
	dm.ObserveRepair(true)
	dm.ObserveFlush(3)
	dm.ObserveFlushFrame(3)
	dm.ObserveStall()
	dm.ObserveNet(1, 2, 3, 4, 5)

	live := NewDistMetrics(NewRegistry())
	for _, m := range []*DistMetrics{nil, live} {
		m := m
		if allocs := testing.AllocsPerRun(100, func() {
			m.ObserveFinalize(2, 1, 1500)
			m.ObserveChirp(true)
			m.ObserveBackoff(false)
			m.ObserveRepair(false)
			m.ObserveFlush(8)
			m.ObserveFlushFrame(4)
		}); allocs > 0 {
			t.Errorf("observe path allocates %v per run, want 0 (handle=%v)", allocs, m != nil)
		}
	}
}

// Bucket overrides apply to fresh registries; the no-argument constructors
// keep the historical layouts byte-for-byte.
func TestConfigurableBuckets(t *testing.T) {
	var def strings.Builder
	reg := NewRegistry()
	NewEngineMetrics(reg)
	NewBrokerMetrics(reg)
	reg.WritePrometheus(&def)
	if !strings.Contains(def.String(), `le="1e-06"`) {
		t.Error("default engine stage buckets lost the 1µs bound")
	}
	if !strings.Contains(def.String(), `lrgp_broker_fanout_bucket{le="1000"}`) {
		t.Error("default broker fanout buckets lost the 1000 bound")
	}

	var custom strings.Builder
	reg2 := NewRegistry()
	NewEngineMetricsBuckets(reg2, []float64{0.25, 0.75})
	NewBrokerMetricsBuckets(reg2, []float64{3, 33})
	NewDistMetricsBuckets(reg2, DistBuckets{
		AssemblySeconds: []float64{1e-8, 1e-4},
		FlushOccupancy:  []float64{2, 64},
	})
	reg2.WritePrometheus(&custom)
	for _, want := range []string{
		`lrgp_engine_stage_seconds_bucket{stage="rate",le="0.25"}`,
		`lrgp_broker_fanout_bucket{le="33"}`,
		`lrgp_dist_round_assembly_seconds_bucket{le="1e-08"}`,
		`lrgp_dist_gateway_flush_occupancy_bucket{le="64"}`,
	} {
		if !strings.Contains(custom.String(), want) {
			t.Errorf("custom layout missing sample %s", want)
		}
	}
	if strings.Contains(custom.String(), `stage="rate",le="1e-06"`) {
		t.Error("custom engine layout still contains the default 1µs bound")
	}

	// The µs-scale default resolves sub-µs latencies that DurationBuckets
	// flattens into its first bucket.
	if MicroDurationBuckets()[0] >= DurationBuckets()[0] {
		t.Error("MicroDurationBuckets does not extend below DurationBuckets")
	}
}
