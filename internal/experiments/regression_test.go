package experiments

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/multirate"
	"repro/internal/workload"
)

// TestRecordedNumbers pins the deterministic headline values recorded in
// EXPERIMENTS.md, so any algorithmic change that shifts the reproduction
// is caught (and EXPERIMENTS.md updated) rather than silently drifting.
// Stochastic baselines (SA) are excluded; everything here is exact given
// the fixed iteration order.
func TestRecordedNumbers(t *testing.T) {
	near := func(t *testing.T, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1 {
			t.Errorf("got %.1f, recorded %.1f — update EXPERIMENTS.md if intentional", got, want)
		}
	}

	t.Run("base workload", func(t *testing.T) {
		e, err := core.NewEngine(workload.Base(), core.Config{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		res := e.Solve(500)
		near(t, res.Utility, 1328648)
		if res.ConvergedAt != 56 {
			t.Errorf("converged at %d, recorded 56", res.ConvergedAt)
		}
	})

	t.Run("utility shapes", func(t *testing.T) {
		want := map[workload.Shape]struct {
			utility float64
			iters   int
		}{
			workload.ShapePow25: {926566, 26},
			workload.ShapePow50: {2010576, 65},
			workload.ShapePow75: {4738142, 65},
		}
		for shape, w := range want {
			e, err := core.NewEngine(workload.Scaled(workload.Config{Shape: shape}), core.Config{Adaptive: true})
			if err != nil {
				t.Fatal(err)
			}
			res := e.Solve(500)
			near(t, res.Utility, w.utility)
			if res.ConvergedAt != w.iters {
				t.Errorf("%v: converged at %d, recorded %d", shape, res.ConvergedAt, w.iters)
			}
		}
	})

	t.Run("linear node scaling", func(t *testing.T) {
		e, err := core.NewEngine(workload.Scaled(workload.Config{NodeSetCopies: 8}), core.Config{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		near(t, e.Solve(500).Utility, 10629181)
	})

	t.Run("multirate hetero", func(t *testing.T) {
		m, err := multirate.NewEngine(workload.Heterogeneous(), core.Config{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		near(t, m.Solve(600).Utility, 94389)

		s, err := core.NewEngine(workload.Heterogeneous(), core.Config{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		near(t, s.Solve(600).Utility, 64130)
	})

	t.Run("path pruning", func(t *testing.T) {
		res, err := PruneExperiment(Options{})
		if err != nil {
			t.Fatal(err)
		}
		near(t, res.Stage1.Result.Utility, 130254)
		near(t, res.Stage2.Result.Utility, 137160)
	})

	t.Run("link bottleneck", func(t *testing.T) {
		res, err := LinkBottleneckExperiment(Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		near(t, res.Utility, 1277672)
	})

	t.Run("ablation", func(t *testing.T) {
		rows, err := AblationAdmission(Options{})
		if err != nil {
			t.Fatal(err)
		}
		near(t, rows[1].Utility, 1210458) // admit-all @ rate-min
		near(t, rows[2].Utility, 1172187) // rate-min + greedy
		near(t, rows[3].Utility, 76273)   // rate-max + greedy
	})
}
