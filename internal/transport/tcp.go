package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// TCP is a Network whose endpoints live in (potentially) different
// processes and exchange length-prefixed frames over TCP. Each endpoint
// runs its own listener; a shared registry maps endpoint names to
// addresses. Within one process, NewTCP gives every endpoint a listener on
// 127.0.0.1 and fills the registry automatically; for multi-process
// deployments, construct endpoints with ListenTCP/RegisterPeer directly.
//
// Two frame layouts coexist on every connection and are distinguished by
// the first byte of the frame header:
//
//   - legacy: 4-byte big-endian length + JSON message body. Frames are
//     capped at 16 MiB, so the first header byte is always 0x00.
//   - varint: uvarint length + binary message body (see AppendMessage).
//     A uvarint never starts with 0x00 for a non-empty frame.
//
// Receivers accept both unconditionally; SetWire selects what an endpoint
// writes (WireJSON, the default, keeps the legacy layout byte-for-byte).
type TCP struct {
	mu        sync.Mutex
	registry  map[string]string // endpoint name -> host:port
	endpoints []*tcpEndpoint
	closed    bool
	wire      Wire
	meter     tcpMeter
}

var (
	_ Network = (*TCP)(nil)
	_ Meter   = (*TCP)(nil)
)

// NewTCP returns an empty TCP network with an in-process registry.
func NewTCP() *TCP {
	return &TCP{registry: make(map[string]string)}
}

// tcpMeter accumulates frame counters across a TCP network's endpoints.
// Counting happens on the send path, where the frame layout being written
// is known, so mixed-wire runs attribute each frame to the format that
// actually hit the socket.
type tcpMeter struct {
	frames, bytes                              atomic.Uint64
	jsonFrames, jsonBytes, binFrames, binBytes atomic.Uint64
}

// countFrame records one successfully written frame of n body bytes.
func (m *tcpMeter) countFrame(w Wire, n int) {
	if m == nil {
		return
	}
	m.frames.Add(1)
	m.bytes.Add(uint64(n))
	if w == WireBinary {
		m.binFrames.Add(1)
		m.binBytes.Add(uint64(n))
	} else {
		m.jsonFrames.Add(1)
		m.jsonBytes.Add(uint64(n))
	}
}

// NetStats implements Meter. Delivered counts frames written to a peer
// socket (the transport is reliable, so written means delivered unless the
// peer dies); Bytes totals frame body bytes. TCP reports no Dropped —
// loss shows up as send errors instead.
func (t *TCP) NetStats() Stats {
	return Stats{
		Delivered: t.meter.frames.Load(),
		Bytes:     t.meter.bytes.Load(),
		JSON:      WireStats{Frames: t.meter.jsonFrames.Load(), Bytes: t.meter.jsonBytes.Load()},
		Binary:    WireStats{Frames: t.meter.binFrames.Load(), Bytes: t.meter.binBytes.Load()},
	}
}

// SetWire sets the outbound wire format for endpoints created after this
// call. Existing endpoints are unaffected; use the endpoint's own SetWire
// (via the WireSelector interface) to switch one in place.
func (t *TCP) SetWire(w Wire) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.wire = w
}

// Endpoint implements Network: it starts a listener on a loopback port and
// registers the endpoint name.
func (t *TCP) Endpoint(name string) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, ok := t.registry[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	ep, err := listenTCP(name, "127.0.0.1:0", t.lookup)
	if err != nil {
		return nil, err
	}
	ep.meter = &t.meter
	ep.SetWire(t.wire)
	t.registry[name] = ep.listener.Addr().String()
	t.endpoints = append(t.endpoints, ep)
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	eps := t.endpoints
	t.endpoints = nil
	t.closed = true
	t.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// lookup resolves an endpoint name to its address.
func (t *TCP) lookup(name string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.registry[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownDest, name)
	}
	return addr, nil
}

// tcpEndpoint is one TCP attachment: a listener for inbound frames and a
// cache of outbound connections.
type tcpEndpoint struct {
	name     string
	listener net.Listener
	resolve  func(string) (string, error)
	wire     atomic.Uint32
	meter    *tcpMeter // shared with the owning network; nil for standalone endpoints

	in      chan Message
	mu      sync.Mutex
	conns   map[string]*outConn
	inConns map[net.Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
}

var (
	_ Endpoint     = (*tcpEndpoint)(nil)
	_ WireSelector = (*tcpEndpoint)(nil)
)

type outConn struct {
	conn net.Conn
	w    *bufio.Writer
	mu   sync.Mutex
	// buf is the reusable frame-encode scratch for the binary wire,
	// guarded by mu. After warm-up the encode path performs no
	// allocations: header and body are appended here and written in one
	// call.
	buf []byte
}

// ListenTCP starts an endpoint listening on addr, resolving peer names
// through the supplied function. It is exported for multi-process use; the
// in-process TCP network uses it internally.
func ListenTCP(name, addr string, resolve func(string) (string, error)) (Endpoint, error) {
	return listenTCP(name, addr, resolve)
}

func listenTCP(name, addr string, resolve func(string) (string, error)) (*tcpEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &tcpEndpoint{
		name:     name,
		listener: ln,
		resolve:  resolve,
		in:       make(chan Message, memoryBuffer),
		conns:    make(map[string]*outConn),
		inConns:  make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Name implements Endpoint.
func (e *tcpEndpoint) Name() string { return e.name }

// Addr returns the listener address (useful for registries).
func (e *tcpEndpoint) Addr() string { return e.listener.Addr().String() }

// SetWire implements WireSelector: it selects the outbound frame format.
// Safe to call concurrently with Send.
func (e *tcpEndpoint) SetWire(w Wire) { e.wire.Store(uint32(w)) }

// Send implements Endpoint: it lazily dials the destination, caches the
// connection, and writes one frame in the endpoint's wire format.
func (e *tcpEndpoint) Send(msg Message) error {
	msg.From = e.name
	c, err := e.connTo(msg.To)
	if err != nil {
		return err
	}
	if Wire(e.wire.Load()) == WireBinary {
		return e.sendBinary(c, &msg)
	}
	return e.sendJSON(c, &msg)
}

// sendJSON writes the legacy frame layout: 4-byte big-endian length +
// JSON body. Byte-for-byte identical to the pre-binary transport.
func (e *tcpEndpoint) sendJSON(c *outConn, msg *Message) error {
	data, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("transport: marshal: %w", err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(data)))
	if _, err := c.w.Write(lenbuf[:]); err != nil {
		e.dropConn(msg.To)
		return fmt.Errorf("transport: send to %q: %w", msg.To, err)
	}
	if _, err := c.w.Write(data); err != nil {
		e.dropConn(msg.To)
		return fmt.Errorf("transport: send to %q: %w", msg.To, err)
	}
	if err := c.w.Flush(); err != nil {
		e.dropConn(msg.To)
		return fmt.Errorf("transport: send to %q: %w", msg.To, err)
	}
	e.meter.countFrame(WireJSON, len(data))
	return nil
}

// sendBinary writes the varint frame layout: uvarint body length +
// AppendMessage body, assembled in the connection's scratch buffer so the
// steady-state encode path allocates nothing.
func (e *tcpEndpoint) sendBinary(c *outConn, msg *Message) error {
	body := BinarySize(msg)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = binary.AppendUvarint(c.buf[:0], uint64(body))
	c.buf = AppendMessage(c.buf, msg)
	if _, err := c.w.Write(c.buf); err != nil {
		e.dropConn(msg.To)
		return fmt.Errorf("transport: send to %q: %w", msg.To, err)
	}
	if err := c.w.Flush(); err != nil {
		e.dropConn(msg.To)
		return fmt.Errorf("transport: send to %q: %w", msg.To, err)
	}
	e.meter.countFrame(WireBinary, body)
	return nil
}

// Recv implements Endpoint.
func (e *tcpEndpoint) Recv() <-chan Message { return e.in }

// Close implements Endpoint.
func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[string]*outConn{}
	inConns := e.inConns
	e.inConns = map[net.Conn]struct{}{}
	e.mu.Unlock()

	_ = e.listener.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	for c := range inConns {
		_ = c.Close()
	}
	e.wg.Wait()
	close(e.in)
	return nil
}

func (e *tcpEndpoint) connTo(to string) (*outConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	addr, err := e.resolve(to)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q (%s): %w", to, addr, err)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := e.conns[to]; ok {
		// Lost a benign race; keep the first connection.
		_ = conn.Close()
		return existing, nil
	}
	c := &outConn{conn: conn, w: bufio.NewWriter(conn)}
	e.conns[to] = c
	return c, nil
}

func (e *tcpEndpoint) dropConn(to string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.conns[to]; ok {
		_ = c.conn.Close()
		delete(e.conns, to)
	}
}

func (e *tcpEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inConns[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

// maxFrame bounds a single frame body. Legacy 4-byte headers therefore
// always start with 0x00, which is how the reader tells the layouts apart.
const maxFrame = 16 << 20

// readFrameLen reads one frame header and returns the body length.
// A leading 0x00 byte means a legacy 4-byte big-endian header; anything
// else starts a uvarint header.
func readFrameLen(r *bufio.Reader) (uint64, error) {
	b0, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	if b0 == 0 {
		var rest [3]byte
		if _, err := io.ReadFull(r, rest[:]); err != nil {
			return 0, err
		}
		return uint64(rest[0])<<16 | uint64(rest[1])<<8 | uint64(rest[2]), nil
	}
	if err := r.UnreadByte(); err != nil {
		return 0, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	return n, nil
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer func() {
		_ = conn.Close()
		e.mu.Lock()
		delete(e.inConns, conn)
		e.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	var data []byte // reused across frames; decoded messages never alias it
	for {
		n, err := readFrameLen(r)
		if err != nil {
			return
		}
		if n > maxFrame {
			return // corrupt or hostile frame; drop the connection
		}
		if uint64(cap(data)) < n {
			data = make([]byte, n)
		}
		data = data[:n]
		if _, err := io.ReadFull(r, data); err != nil {
			return
		}
		var msg Message
		if len(data) > 0 && data[0] == binaryTag {
			m, _, err := DecodeMessage(data)
			if err != nil {
				continue // skip undecodable frame
			}
			msg = m
		} else if err := json.Unmarshal(data, &msg); err != nil {
			continue // skip undecodable frame
		}

		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.in <- msg:
		default:
			// Inbound buffer full: drop the frame (TCP transport is
			// best-effort at the application layer, like UDP semantics
			// over a reliable stream).
		}
	}
}
