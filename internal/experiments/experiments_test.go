package experiments

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// quick returns options with small baseline budgets so the whole suite
// stays fast; the paper-scale budgets run from cmd/lrgp-experiments.
func quick() Options {
	return Options{Iterations: 250, SASteps: 100_000, SATemps: []float64{100, 4000}, Seed: 1}
}

func TestFigure1Damping(t *testing.T) {
	fig, err := Figure1Damping(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Names) != 3 || len(fig.X) != 250 {
		t.Fatalf("series=%d x=%d", len(fig.Names), len(fig.X))
	}

	// The paper's claim: gamma=1 oscillates with large amplitude; damped
	// runs stabilize. Compare tail amplitude over the last 50 iterations.
	amp := func(name string) float64 {
		ys := fig.Series[name]
		tail := ys[len(ys)-50:]
		lo, hi := tail[0], tail[0]
		for _, v := range tail {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return (hi - lo) / hi
	}
	if amp("gamma=1") <= amp("gamma=0.1") {
		t.Errorf("gamma=1 amplitude %g not above gamma=0.1 %g", amp("gamma=1"), amp("gamma=0.1"))
	}
	if amp("gamma=1") < 0.01 {
		t.Errorf("gamma=1 amplitude %g unexpectedly small", amp("gamma=1"))
	}
}

func TestFigure2AdaptiveGamma(t *testing.T) {
	fig, err := Figure2AdaptiveGamma(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive converges faster: at iteration 50 the adaptive run must be
	// closer to its final value than the slow fixed run is to its own.
	adaptive := fig.Series["adaptive gamma"]
	fixed := fig.Series["fixed gamma=0.01"]
	relDist := func(ys []float64, i int) float64 {
		final := ys[len(ys)-1]
		return math.Abs(ys[i]-final) / final
	}
	if relDist(adaptive, 49) >= relDist(fixed, 49) {
		t.Errorf("at iter 50: adaptive dist %g, fixed dist %g; expected adaptive closer",
			relDist(adaptive, 49), relDist(fixed, 49))
	}
}

func TestFigure3Recovery(t *testing.T) {
	res, err := Figure3Recovery(quick())
	if err != nil {
		t.Fatal(err)
	}
	adaptive := res.Fig.Series["adaptive gamma"]
	if len(adaptive) != 250 {
		t.Fatalf("series length %d", len(adaptive))
	}
	// Utility drops at the removal point (iteration 126 vs 125).
	if adaptive[125] >= adaptive[124] {
		t.Errorf("no utility drop at removal: %g -> %g", adaptive[124], adaptive[125])
	}
	// Adaptive recovers (re-converges) and at least as fast as fixed.
	aIters := res.RecoveryIters["adaptive gamma"]
	fIters := res.RecoveryIters["fixed gamma=0.01"]
	if aIters < 0 {
		t.Fatal("adaptive did not re-converge")
	}
	if fIters > 0 && aIters > fIters {
		t.Errorf("adaptive recovery %d slower than fixed %d", aIters, fIters)
	}
}

func TestFigure4PowerUtility(t *testing.T) {
	fig, err := Figure4PowerUtility(quick())
	if err != nil {
		t.Fatal(err)
	}
	ys := fig.Series["adaptive gamma"]
	final := ys[len(ys)-1]
	// Paper's LRGP utility for r^0.75 is 4,735,044; accept 2%.
	if rel := math.Abs(final-4735044) / 4735044; rel > 0.02 {
		t.Errorf("final utility %.0f, want within 2%% of 4,735,044", final)
	}
}

func TestTable2Scalability(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing sweep")
	}
	rows, err := Table2Scalability(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}

	// Paper Table 2 LRGP utilities, within 1%.
	want := []float64{1328821, 2657600, 5313612, 2656706, 5313412, 10626824}
	for i, r := range rows {
		if rel := math.Abs(r.LRGPUtility-want[i]) / want[i]; rel > 0.01 {
			t.Errorf("%s: LRGP %.0f, want within 1%% of %.0f", r.Workload, r.LRGPUtility, want[i])
		}
		if !r.LRGPConverged {
			t.Errorf("%s: LRGP did not converge", r.Workload)
		}
		// LRGP always beats the full-state SA baseline.
		if r.SAIncreases <= 0 {
			t.Errorf("%s: SA %.0f not below LRGP %.0f", r.Workload, r.SAUtility, r.LRGPUtility)
		}
		// The strong reference stays within 1% of LRGP (either side).
		if math.Abs(r.RGGap) > 1 {
			t.Errorf("%s: LRGP vs rates-greedy gap %.2f%% exceeds 1%%", r.Workload, r.RGGap)
		}
	}
	// The paper's qualitative scaling claim: SA degrades as the variable
	// count grows, so the utility increase for the largest workload
	// exceeds the base workload's.
	if rows[5].SAIncreases <= rows[0].SAIncreases {
		t.Errorf("SA gap did not grow with scale: base %.2f%%, 6f/24n %.2f%%",
			rows[0].SAIncreases, rows[5].SAIncreases)
	}
	// And LRGP utility scales linearly with consumer nodes.
	if rel := math.Abs(rows[5].LRGPUtility-8*rows[0].LRGPUtility) / (8 * rows[0].LRGPUtility); rel > 0.01 {
		t.Errorf("6f/24n utility %.0f not ~8x base %.0f", rows[5].LRGPUtility, rows[0].LRGPUtility)
	}
}

func TestTable3UtilityShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("annealing sweep")
	}
	rows, err := Table3UtilityShapes(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []float64{1328821, 926185, 2003225, 4735044}
	for i, r := range rows {
		if rel := math.Abs(r.LRGPUtility-want[i]) / want[i]; rel > 0.02 {
			t.Errorf("%s: LRGP %.0f, want within 2%% of %.0f", r.Workload, r.LRGPUtility, want[i])
		}
	}
	// Convergence slows as the exponent rises toward 1. Our adaptive-
	// gamma variant reproduces the trend between the shallow and steep
	// ends of the power family (the 0.5-vs-0.75 ordering is within
	// noise; see EXPERIMENTS.md).
	for _, steep := range []int{2, 3} {
		if rows[1].LRGPConvergedAt > rows[steep].LRGPConvergedAt {
			t.Errorf("r^0.25 converged at %d, slower than %s at %d",
				rows[1].LRGPConvergedAt, rows[steep].Workload, rows[steep].LRGPConvergedAt)
		}
	}
	for i, r := range rows {
		if !r.LRGPConverged {
			t.Errorf("row %d (%s) did not converge", i, r.Workload)
		}
	}
}

func TestRenderComparison(t *testing.T) {
	rows := []ComparisonRow{{
		Workload: "w", LRGPUtility: 10, LRGPIters: 5, LRGPConverged: true, LRGPConvergedAt: 4,
		SAUtility: 9, SATemp: 5, SASteps: 100, SARuntime: time.Millisecond, SAIncreases: 11.1,
		RGUtility: 10, RGGap: 0,
	}, {
		Workload: "w2", LRGPUtility: 10, LRGPIters: 5, // not converged
	}}
	var buf bytes.Buffer
	RenderComparison("t", rows).Render(&buf)
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("11.10%")) {
		t.Errorf("missing increase: %s", out)
	}
	if !bytes.Contains(buf.Bytes(), []byte(">5")) {
		t.Errorf("missing non-converged marker: %s", out)
	}
}

func TestAsyncExperiment(t *testing.T) {
	res, err := AsyncExperiment(quick(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("async did not converge; last utility %.0f vs sync %.0f", res.AsyncUtility, res.SyncUtility)
	}
	if res.RelativeError > 0.02 {
		t.Errorf("async error %.4f exceeds 2%%", res.RelativeError)
	}
}

func TestAblationAdmission(t *testing.T) {
	rows, err := AblationAdmission(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		byName[r.Policy] = r
	}
	lrgp := byName["lrgp"]
	if !lrgp.Feasible {
		t.Error("lrgp infeasible")
	}
	// Without admission control the base workload cannot fit: demand at
	// r^min already exceeds node capacity.
	admitAll := byName["admit-all @ rate-min"]
	if admitAll.Feasible || admitAll.MaxOverload <= 0 {
		t.Errorf("admit-all unexpectedly feasible: %+v", admitAll)
	}
	// Rate control contributes utility beyond greedy admission at fixed
	// rates.
	if lrgp.Utility <= byName["rate-min + greedy"].Utility {
		t.Errorf("lrgp %.0f not above rate-min greedy %.0f", lrgp.Utility, byName["rate-min + greedy"].Utility)
	}
	if lrgp.Utility <= byName["rate-max + greedy"].Utility {
		t.Errorf("lrgp %.0f not above rate-max greedy %.0f", lrgp.Utility, byName["rate-max + greedy"].Utility)
	}

	var buf bytes.Buffer
	RenderAblation(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestLinkBottleneckExperiment(t *testing.T) {
	res, err := LinkBottleneckExperiment(quick(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkUsage > 1.05 {
		t.Errorf("max link utilization %.3f exceeds caps by >5%%", res.MaxLinkUsage)
	}
	// The default caps land inside the operating range, so at least one
	// link must genuinely bind.
	if res.MaxLinkUsage < 0.9 {
		t.Errorf("max link utilization %.3f: no link binds, experiment is vacuous", res.MaxLinkUsage)
	}
	// Bottlenecked system cannot beat the unconstrained one.
	if res.Utility > res.BaselineNoLink*1.001 {
		t.Errorf("link-capped utility %.0f above unconstrained %.0f", res.Utility, res.BaselineNoLink)
	}
	if res.Utility <= 0 {
		t.Errorf("utility = %g", res.Utility)
	}
}
