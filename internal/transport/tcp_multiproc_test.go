package transport

import (
	"errors"
	"testing"
)

// TestListenTCPWithExternalRegistry exercises the multi-process-style API:
// endpoints constructed directly with ListenTCP and a hand-rolled name
// resolver, as separate processes would do with a shared registry.
func TestListenTCPWithExternalRegistry(t *testing.T) {
	registry := make(map[string]string)
	resolve := func(name string) (string, error) {
		addr, ok := registry[name]
		if !ok {
			return "", ErrUnknownDest
		}
		return addr, nil
	}

	a, err := ListenTCP("proc-a", "127.0.0.1:0", resolve)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("proc-b", "127.0.0.1:0", resolve)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	registry["proc-a"] = a.(*tcpEndpoint).Addr()
	registry["proc-b"] = b.(*tcpEndpoint).Addr()

	msg, err := Encode("proc-a", "proc-b", "ping", 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	var v int
	if err := Decode(got, &v); err != nil {
		t.Fatal(err)
	}
	if v != 42 || got.From != "proc-a" {
		t.Errorf("got %+v (v=%d)", got, v)
	}

	// Unregistered peers resolve to an error.
	msg, _ = Encode("proc-a", "proc-c", "ping", 1)
	if err := a.Send(msg); !errors.Is(err, ErrUnknownDest) {
		t.Errorf("error = %v, want ErrUnknownDest", err)
	}
}

func TestListenTCPBadAddress(t *testing.T) {
	if _, err := ListenTCP("x", "256.0.0.1:99999", func(string) (string, error) {
		return "", ErrUnknownDest
	}); err == nil {
		t.Error("bad listen address accepted")
	}
}

func TestMemoryNetStatsDirect(t *testing.T) {
	net := NewMemory()
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")

	msg, _ := Encode("a", "b", "k", "payload")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)

	stats := net.NetStats()
	if stats.Delivered != 1 || stats.Bytes == 0 || stats.Dropped != 0 {
		t.Errorf("stats = %+v", stats)
	}

	net.SetDropRate(1, 3)
	_ = a.Send(msg)
	if got := net.NetStats().Dropped; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
}
