package model

// Index precomputes the lookup functions of Section 2.2/2.3 of the paper
// (flowMap, attachMap, nodeClasses, linkMap, nodeMap and their inverses) so
// the optimizer's inner loops avoid repeated scans. Build it once per
// Problem with NewIndex; it is immutable afterwards and safe for concurrent
// reads.
//
// Beyond the membership lists, the index denormalizes the sparse cost maps
// (Node.FlowCost, Link.FlowCost) into slices aligned with those lists, so
// the optimizer's hot loops read contiguous float64s instead of hashing
// map keys. The cost views are copies taken at NewIndex time: mutating a
// cost map afterwards does not update the index (capacities and class
// demands are not cached and may change between iterations).
type Index struct {
	p *Problem

	// classesByFlow[i] lists the classes consuming flow i (C_i).
	classesByFlow [][]ClassID
	// classesByNode[b] lists the classes attached at node b
	// (nodeClasses(b)).
	classesByNode [][]ClassID
	// flowsByNode[b] lists the flows reaching node b (nodeMap(b)), in
	// ascending flow order.
	flowsByNode [][]FlowID
	// flowsByLink[l] lists the flows traversing link l (linkMap(l)).
	flowsByLink [][]FlowID
	// nodesByFlow[i] lists the nodes reached by flow i (B_i).
	nodesByFlow [][]NodeID
	// linksByFlow[i] lists the links traversed by flow i (L_i).
	linksByFlow [][]LinkID

	// flowCostByNode[b][k] is F_{b,i} for i = flowsByNode[b][k].
	flowCostByNode [][]float64
	// flowCostByLink[l][k] is L_{l,i} for i = flowsByLink[l][k].
	flowCostByLink [][]float64
	// nodeCostByFlow[i][k] is F_{b,i} for b = nodesByFlow[i][k].
	nodeCostByFlow [][]float64
	// linkCostByFlow[i][k] is L_{l,i} for l = linksByFlow[i][k].
	linkCostByFlow [][]float64
	// classesByFlowNode[i][k] lists the classes consuming flow i that are
	// attached at node nodesByFlow[i][k], in ascending class order — the
	// C_i ∩ nodeClasses(b) intersection the Equation 9 node-price
	// aggregation needs for every (flow, node) pair each iteration.
	classesByFlowNode [][][]ClassID
}

// NewIndex builds the index. The problem must already be valid (see
// Validate); NewIndex does not re-check it.
func NewIndex(p *Problem) *Index {
	ix := &Index{
		p:             p,
		classesByFlow: make([][]ClassID, len(p.Flows)),
		classesByNode: make([][]ClassID, len(p.Nodes)),
		flowsByNode:   make([][]FlowID, len(p.Nodes)),
		flowsByLink:   make([][]FlowID, len(p.Links)),
		nodesByFlow:   make([][]NodeID, len(p.Flows)),
		linksByFlow:   make([][]LinkID, len(p.Flows)),
	}
	for _, c := range p.Classes {
		ix.classesByFlow[c.Flow] = append(ix.classesByFlow[c.Flow], c.ID)
		ix.classesByNode[c.Node] = append(ix.classesByNode[c.Node], c.ID)
	}
	for _, n := range p.Nodes {
		for i := range p.Flows {
			if _, ok := n.FlowCost[FlowID(i)]; ok {
				ix.flowsByNode[n.ID] = append(ix.flowsByNode[n.ID], FlowID(i))
				ix.nodesByFlow[i] = append(ix.nodesByFlow[i], n.ID)
			}
		}
	}
	for _, l := range p.Links {
		for i := range p.Flows {
			if _, ok := l.FlowCost[FlowID(i)]; ok {
				ix.flowsByLink[l.ID] = append(ix.flowsByLink[l.ID], FlowID(i))
				ix.linksByFlow[i] = append(ix.linksByFlow[i], l.ID)
			}
		}
	}

	// Dense cost views, aligned element-for-element with the membership
	// lists built above.
	ix.flowCostByNode = make([][]float64, len(p.Nodes))
	for b := range p.Nodes {
		flows := ix.flowsByNode[b]
		costs := make([]float64, len(flows))
		for k, i := range flows {
			costs[k] = p.Nodes[b].FlowCost[i]
		}
		ix.flowCostByNode[b] = costs
	}
	ix.flowCostByLink = make([][]float64, len(p.Links))
	for l := range p.Links {
		flows := ix.flowsByLink[l]
		costs := make([]float64, len(flows))
		for k, i := range flows {
			costs[k] = p.Links[l].FlowCost[i]
		}
		ix.flowCostByLink[l] = costs
	}
	ix.nodeCostByFlow = make([][]float64, len(p.Flows))
	ix.linkCostByFlow = make([][]float64, len(p.Flows))
	ix.classesByFlowNode = make([][][]ClassID, len(p.Flows))
	for i := range p.Flows {
		fid := FlowID(i)
		nodes := ix.nodesByFlow[i]
		ncosts := make([]float64, len(nodes))
		lists := make([][]ClassID, len(nodes))
		for k, b := range nodes {
			ncosts[k] = p.Nodes[b].FlowCost[fid]
			// Both classesByFlow[i] and classesByNode[b] are in ascending
			// class order, so filtering either yields the same sequence;
			// filtering the (usually shorter) per-flow list is cheaper.
			for _, cid := range ix.classesByFlow[i] {
				if p.Classes[cid].Node == b {
					lists[k] = append(lists[k], cid)
				}
			}
		}
		ix.nodeCostByFlow[i] = ncosts
		ix.classesByFlowNode[i] = lists

		links := ix.linksByFlow[i]
		lcosts := make([]float64, len(links))
		for k, l := range links {
			lcosts[k] = p.Links[l].FlowCost[fid]
		}
		ix.linkCostByFlow[i] = lcosts
	}
	return ix
}

// Problem returns the indexed problem.
func (ix *Index) Problem() *Problem { return ix.p }

// ClassesByFlow returns C_i, the classes consuming flow i.
func (ix *Index) ClassesByFlow(i FlowID) []ClassID { return ix.classesByFlow[i] }

// ClassesByNode returns nodeClasses(b), the classes attached at node b.
func (ix *Index) ClassesByNode(b NodeID) []ClassID { return ix.classesByNode[b] }

// FlowsByNode returns nodeMap(b), the flows reaching node b.
func (ix *Index) FlowsByNode(b NodeID) []FlowID { return ix.flowsByNode[b] }

// FlowsByLink returns linkMap(l), the flows traversing link l.
func (ix *Index) FlowsByLink(l LinkID) []FlowID { return ix.flowsByLink[l] }

// NodesByFlow returns B_i, the nodes reached by flow i.
func (ix *Index) NodesByFlow(i FlowID) []NodeID { return ix.nodesByFlow[i] }

// LinksByFlow returns L_i, the links traversed by flow i.
func (ix *Index) LinksByFlow(i FlowID) []LinkID { return ix.linksByFlow[i] }

// FlowCostsByNode returns the F_{b,i} coefficients aligned with
// FlowsByNode(b): FlowCostsByNode(b)[k] is the cost of FlowsByNode(b)[k].
func (ix *Index) FlowCostsByNode(b NodeID) []float64 { return ix.flowCostByNode[b] }

// FlowCostsByLink returns the L_{l,i} coefficients aligned with
// FlowsByLink(l).
func (ix *Index) FlowCostsByLink(l LinkID) []float64 { return ix.flowCostByLink[l] }

// NodeCostsByFlow returns the F_{b,i} coefficients aligned with
// NodesByFlow(i).
func (ix *Index) NodeCostsByFlow(i FlowID) []float64 { return ix.nodeCostByFlow[i] }

// LinkCostsByFlow returns the L_{l,i} coefficients aligned with
// LinksByFlow(i).
func (ix *Index) LinkCostsByFlow(i FlowID) []float64 { return ix.linkCostByFlow[i] }

// ClassesByFlowNode returns, aligned with NodesByFlow(i), the classes
// consuming flow i attached at each of those nodes (ascending class order).
func (ix *Index) ClassesByFlowNode(i FlowID) [][]ClassID { return ix.classesByFlowNode[i] }
