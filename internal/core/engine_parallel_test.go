package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Parallel-engine equivalence: for any worker count, Step must produce
// bit-identical rates, populations, prices, gammas and StepResults to the
// serial engine. The stages are data-independent within themselves and the
// only cross-shard reduction (max overload) is order-independent, so exact
// float equality — not tolerance — is the contract. `go test -race ./...`
// runs these tests and covers the sharded paths for data races.

// parallelTestProblem builds a random workload big enough that all three
// stages clear the minParallelItems cutover.
func parallelTestProblem(rng *rand.Rand, withLinks bool) *model.Problem {
	p := workload.Random(rng, workload.RandomConfig{
		Flows:          minParallelItems + rng.Intn(16),
		Nodes:          minParallelItems + rng.Intn(8),
		ClassesPerFlow: 2 + rng.Intn(3),
	})
	if withLinks {
		p = workload.WithLinkBottlenecks(p, 0.3+rng.Float64()*0.4)
	}
	return p
}

// assertStateEqual compares the complete observable engine state exactly.
func assertStateEqual(t *testing.T, iter, workers int, serial, parallel *Engine) {
	t.Helper()
	sa, pa := serial.Allocation(), parallel.Allocation()
	for i := range sa.Rates {
		if sa.Rates[i] != pa.Rates[i] {
			t.Fatalf("iter %d workers %d: rate[%d] = %v, serial %v",
				iter, workers, i, pa.Rates[i], sa.Rates[i])
		}
	}
	for j := range sa.Consumers {
		if sa.Consumers[j] != pa.Consumers[j] {
			t.Fatalf("iter %d workers %d: consumers[%d] = %d, serial %d",
				iter, workers, j, pa.Consumers[j], sa.Consumers[j])
		}
	}
	sn, pn := serial.NodePrices(), parallel.NodePrices()
	for b := range sn {
		if sn[b] != pn[b] {
			t.Fatalf("iter %d workers %d: nodePrice[%d] = %v, serial %v",
				iter, workers, b, pn[b], sn[b])
		}
	}
	sl, pl := serial.LinkPrices(), parallel.LinkPrices()
	for l := range sl {
		if sl[l] != pl[l] {
			t.Fatalf("iter %d workers %d: linkPrice[%d] = %v, serial %v",
				iter, workers, l, pl[l], sl[l])
		}
	}
	sg, pg := serial.Gammas(), parallel.Gammas()
	for b := range sg {
		if sg[b] != pg[b] {
			t.Fatalf("iter %d workers %d: gamma[%d] = %v, serial %v",
				iter, workers, b, pg[b], sg[b])
		}
	}
}

// TestParallelStepBitIdentical steps serial and parallel engines in
// lockstep for over 100 iterations on random workloads (with and without
// link bottlenecks, fixed and adaptive gamma), including mid-run mutations
// between Step calls, and requires exact equality throughout.
func TestParallelStepBitIdentical(t *testing.T) {
	const iters = 120
	rng := rand.New(rand.NewSource(20060406))
	for trial := 0; trial < 4; trial++ {
		p := parallelTestProblem(rng, trial%2 == 1)
		cfg := Config{Adaptive: trial%2 == 0}
		if !cfg.Adaptive {
			cfg.Gamma1 = 0.01 + rng.Float64()*0.2
			cfg.Gamma2 = cfg.Gamma1
		}

		serialCfg := cfg
		serialCfg.Workers = 1

		for _, workers := range []int{2, 4, 8} {
			parCfg := cfg
			parCfg.Workers = workers
			par, err := NewEngine(p.Clone(), parCfg)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if par.pool == nil {
				t.Fatalf("trial %d workers %d: expected sharded engine", trial, workers)
			}

			// Replay the serial engine from scratch alongside each
			// parallel engine so both see the same mutation schedule.
			ser, err := NewEngine(p.Clone(), serialCfg)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			mutate := func(e *Engine, it int) {
				// Mid-run workload changes are applied between Step
				// calls, the only safe point now that Step fans out
				// over worker goroutines.
				switch it {
				case 40:
					e.SetFlowActive(0, false)
				case 60:
					if err := e.SetClassDemand(1, 7); err != nil {
						t.Fatal(err)
					}
				case 80:
					e.SetFlowActive(0, true)
					if err := e.SetNodeCapacity(1, 2*workload.NodeCapacity); err != nil {
						t.Fatal(err)
					}
				}
			}
			for it := 0; it < iters; it++ {
				mutate(ser, it)
				mutate(par, it)
				rs, rp := ser.Step(), par.Step()
				if rs != rp {
					t.Fatalf("trial %d workers %d iter %d: StepResult %+v, serial %+v",
						trial, workers, it, rp, rs)
				}
				if it%10 == 0 || it == iters-1 {
					assertStateEqual(t, it, workers, ser, par)
				}
			}
			assertStateEqual(t, iters, workers, ser, par)
			par.Close()
		}
	}
}

// TestParallelSolveMatchesSerial checks the whole Solve loop (convergence
// detection included) end-to-end at several worker counts.
func TestParallelSolveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := parallelTestProblem(rng, true)
	ser, err := NewEngine(p.Clone(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ser.Solve(150)
	for _, workers := range []int{2, 4, 8} {
		par, err := NewEngine(p.Clone(), Config{Adaptive: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := par.Solve(150)
		par.Close()
		if got.Utility != want.Utility || got.Iterations != want.Iterations ||
			got.Converged != want.Converged || got.ConvergedAt != want.ConvergedAt {
			t.Fatalf("workers %d: Solve result %+v, serial %+v", workers, got, want)
		}
		for i := range want.Trace {
			if got.Trace[i] != want.Trace[i] {
				t.Fatalf("workers %d: trace[%d] = %v, serial %v",
					workers, i, got.Trace[i], want.Trace[i])
			}
		}
	}
}

// TestWorkersDefaultResolvesToGOMAXPROCS pins the documented Config
// semantics: 0 = GOMAXPROCS, 1 = serial, small problems stay serial.
func TestWorkersDefaultResolvesToGOMAXPROCS(t *testing.T) {
	if got := (Config{}).WithDefaults().Workers; got != runtime.GOMAXPROCS(0) {
		t.Errorf("default Workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Config{Workers: 3}).WithDefaults().Workers; got != 3 {
		t.Errorf("Workers=3 normalized to %d", got)
	}
	// The base workload (6 flows, 3 nodes) is below the parallel cutover:
	// no pool regardless of the worker count.
	e, err := NewEngine(workload.Base(), Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.pool != nil {
		t.Error("base workload unexpectedly sharded")
	}
	if s := e.Snapshot(); s.Sharded || s.Workers != 8 {
		t.Errorf("snapshot reports Sharded=%v Workers=%d, want false/8", s.Sharded, s.Workers)
	}
}

// TestEngineCloseIdempotent: Close must be safe to call repeatedly and on
// serial engines.
func TestEngineCloseIdempotent(t *testing.T) {
	ser, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ser.Close()
	ser.Close()

	rng := rand.New(rand.NewSource(3))
	par, err := NewEngine(parallelTestProblem(rng, false), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	par.Step()
	par.Close()
	par.Close()
}

// TestStepSerialNoAllocs: the serial path must not allocate per Step —
// the admission sort, the rate solvers and the price updates all run on
// preallocated state. This is the perf guardrail for small problems that
// never clear the parallel cutover.
func TestStepSerialNoAllocs(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 1, Adaptive: true},
		{Workers: 1, Gamma1: 0.1},
	} {
		e, err := NewEngine(workload.Base(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Step() // warm up
		if allocs := testing.AllocsPerRun(50, func() { e.Step() }); allocs > 0 {
			t.Errorf("config %+v: %v allocs per serial Step, want 0", cfg, allocs)
		}
	}
}

// TestStepParallelNoAllocs: dispatching shards over the persistent pool
// must not allocate either — tasks, stage closures and scratch are all
// reused across Steps.
func TestStepParallelNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, err := NewEngine(parallelTestProblem(rng, true), Config{Workers: 4, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.pool == nil {
		t.Fatal("expected sharded engine")
	}
	e.Step()
	if allocs := testing.AllocsPerRun(50, func() { e.Step() }); allocs > 0 {
		t.Errorf("%v allocs per parallel Step, want 0", allocs)
	}
}
