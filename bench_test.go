// Package repro's benchmark suite regenerates every table and figure of
// the paper's evaluation (Section 4) as testing.B benchmarks, reporting
// the headline quantity of each artifact as a custom metric alongside the
// usual time/allocation numbers:
//
//	BenchmarkFigure1Damping      — Fig. 1, tail oscillation amplitude per gamma
//	BenchmarkFigure2AdaptiveGamma— Fig. 2, iterations to converge
//	BenchmarkFigure3Recovery     — Fig. 3, iterations to recover from flow removal
//	BenchmarkFigure4PowerUtility — Fig. 4, final utility under rank*r^0.75
//	BenchmarkTable2Scalability   — Table 2, LRGP utility and SA gap per workload
//	BenchmarkTable3UtilityShapes — Table 3, utility and convergence per shape
//	BenchmarkAsyncLRGP           — X1, asynchronous distributed LRGP
//	BenchmarkAblationAdmission   — X2, admission-control ablation
//	BenchmarkLinkBottleneck      — X3, link pricing under binding caps
//
// Annealing budgets are reduced relative to the paper's 10^8 steps so the
// full suite runs in minutes; run cmd/lrgp-experiments for the recorded
// paper-scale comparison.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchOptions keeps stochastic baselines affordable inside benchmarks.
func benchOptions() experiments.Options {
	return experiments.Options{
		Iterations: 250,
		SASteps:    200_000,
		SATemps:    []float64{100, 4000},
		Seed:       1,
	}
}

// BenchmarkSolveScaledWorkers measures the public-API Solve loop on a
// scaled workload (48 flows, 96 nodes) at serial and parallel worker
// counts; results are bit-identical across counts, so the sub-benchmarks
// differ only in wall-clock.
func BenchmarkSolveScaledWorkers(b *testing.B) {
	p := workload.Scaled(workload.Config{FlowCopies: 8, NodeSetCopies: 4})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := NewEngine(p, Config{Adaptive: true, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				res := e.Solve(100)
				e.Close()
				b.ReportMetric(res.Utility, "final-utility")
			}
		})
	}
}

func BenchmarkFigure1Damping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1Damping(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		ys := fig.Series["gamma=0.1"]
		b.ReportMetric(ys[len(ys)-1], "final-utility")
	}
}

func BenchmarkFigure2AdaptiveGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2AdaptiveGamma(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		ys := fig.Series["adaptive gamma"]
		b.ReportMetric(ys[len(ys)-1], "final-utility")
	}
}

func BenchmarkFigure3Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3Recovery(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RecoveryIters["adaptive gamma"]), "recovery-iters")
	}
}

func BenchmarkFigure4PowerUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure4PowerUtility(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		ys := fig.Series["adaptive gamma"]
		b.ReportMetric(ys[len(ys)-1], "final-utility")
	}
}

func BenchmarkTable2Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Scalability(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].LRGPUtility, "base-lrgp-utility")
		b.ReportMetric(rows[len(rows)-1].LRGPUtility, "6f24n-lrgp-utility")
		b.ReportMetric(rows[len(rows)-1].SAIncreases, "6f24n-sa-gap-pct")
	}
}

func BenchmarkTable3UtilityShapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3UtilityShapes(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[3].LRGPUtility, "r075-lrgp-utility")
		b.ReportMetric(float64(rows[3].LRGPConvergedAt), "r075-converge-iters")
	}
}

func BenchmarkAsyncLRGP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AsyncExperiment(benchOptions(), time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AsyncUtility, "async-utility")
		b.ReportMetric(res.RelativeError*100, "rel-err-pct")
	}
}

func BenchmarkAblationAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAdmission(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Utility, "lrgp-utility")
	}
}

func BenchmarkMultirate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MultirateExperiment(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GainPct, "hetero-gain-pct")
		b.ReportMetric(rows[0].MultiUtility, "hetero-multi-utility")
	}
}

func BenchmarkGammaAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.GammaControllerAblation(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		refined := rows[len(rows)-1]
		b.ReportMetric(float64(refined.RecoveryIters), "refined-recovery-iters")
		b.ReportMetric(refined.FinalUtility, "refined-base-utility")
	}
}

func BenchmarkPathPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.PruneExperiment(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.UtilityGain, "utility-gain")
		b.ReportMetric(float64(res.PrunedNodeVisits), "pruned-node-visits")
	}
}

func BenchmarkMessageOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.OverheadExperiment(benchOptions(), 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MessagesPerRound, "base-msgs-per-round")
		b.ReportMetric(rows[len(rows)-1].MessagesPerRound, "6f24n-msgs-per-round")
	}
}

func BenchmarkLinkBottleneck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LinkBottleneckExperiment(benchOptions(), 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxLinkUsage*100, "max-link-use-pct")
		b.ReportMetric(res.Utility, "utility")
	}
}
