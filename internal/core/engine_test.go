package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestNewEngineValidates(t *testing.T) {
	p := workload.Base()
	p.Flows[0].RateMin = 0
	if _, err := NewEngine(p, Config{}); err == nil {
		t.Error("NewEngine accepted an invalid problem")
	}
}

func TestEngineInitialState(t *testing.T) {
	p := workload.Base()
	e, err := NewEngine(p, Config{InitialNodePrice: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a := e.Allocation()
	for i, r := range a.Rates {
		if r != p.Flows[i].RateMin {
			t.Errorf("initial rate[%d] = %g, want rateMin", i, r)
		}
	}
	for j, n := range a.Consumers {
		if n != 0 {
			t.Errorf("initial consumers[%d] = %d, want 0", j, n)
		}
	}
	for b, pr := range e.NodePrices() {
		if pr != 0.5 {
			t.Errorf("initial node price[%d] = %g, want 0.5", b, pr)
		}
	}
	if e.Utility() != 0 {
		t.Errorf("initial utility = %g, want 0", e.Utility())
	}
	if e.Iteration() != 0 {
		t.Errorf("initial iteration = %d, want 0", e.Iteration())
	}
}

func TestEngineReproducesPaperBaseUtility(t *testing.T) {
	// Paper Table 2, row 1: LRGP reaches 1,328,821 on the base workload.
	// Accept within 1%.
	e, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(400)
	if !res.Converged {
		t.Fatalf("did not converge in 400 iterations")
	}
	const want = 1328821.0
	if rel := math.Abs(res.Utility-want) / want; rel > 0.01 {
		t.Errorf("utility = %.0f, want within 1%% of %.0f (rel %.4f)", res.Utility, want, rel)
	}
}

func TestEngineScalesLinearly(t *testing.T) {
	// Paper Section 4.3: utility grows linearly with consumer nodes.
	base, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	u1 := base.Solve(400).Utility

	doubled, err := NewEngine(workload.Scaled(workload.Config{NodeSetCopies: 2}), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	u2 := doubled.Solve(400).Utility

	if rel := math.Abs(u2-2*u1) / (2 * u1); rel > 0.01 {
		t.Errorf("6f/6n utility = %.0f, want ~2x base %.0f", u2, u1)
	}
}

func TestEngineFeasibleAfterEveryStep(t *testing.T) {
	// Node capacity must never be violated by the greedy allocation (the
	// base workload's flow costs never exceed capacity, so the boundary
	// overload case cannot occur).
	p := workload.Base()
	e, err := NewEngine(p, Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	ix := e.Index()
	for t2 := 0; t2 < 100; t2++ {
		r := e.Step()
		if r.MaxNodeOverload > 0 {
			t.Fatalf("iteration %d: node overload %g", t2+1, r.MaxNodeOverload)
		}
		a := e.Allocation()
		if err := model.CheckFeasible(p, ix, a, 1e-6); err != nil {
			t.Fatalf("iteration %d: %v", t2+1, err)
		}
	}
}

func TestEnginePricesStayNonNegative(t *testing.T) {
	e, err := NewEngine(workload.WithLinkBottlenecks(workload.Base(), 0.3), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		e.Step()
		for b, pr := range e.NodePrices() {
			if pr < 0 {
				t.Fatalf("node %d price %g < 0", b, pr)
			}
		}
		for l, pr := range e.LinkPrices() {
			if pr < 0 {
				t.Fatalf("link %d price %g < 0", l, pr)
			}
		}
	}
}

func TestEngineDampingMatters(t *testing.T) {
	// Figure 1: gamma = 1 oscillates with large amplitude; gamma = 0.1
	// settles. Compare tail amplitudes.
	tail := func(gamma float64) float64 {
		e, err := NewEngine(workload.Base(), Config{Gamma1: gamma, Gamma2: gamma})
		if err != nil {
			t.Fatal(err)
		}
		var vals []float64
		for i := 0; i < 250; i++ {
			vals = append(vals, e.Step().Utility)
		}
		lo, hi := vals[200], vals[200]
		for _, v := range vals[200:] {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return (hi - lo) / hi
	}
	undamped := tail(1.0)
	damped := tail(0.1)
	if damped >= undamped {
		t.Errorf("damped amplitude %g not below undamped %g", damped, undamped)
	}
	if undamped < 0.01 {
		t.Errorf("undamped amplitude %g unexpectedly small", undamped)
	}
}

func TestEngineAdaptiveConvergesFasterThanSlowFixed(t *testing.T) {
	// Figure 2: adaptive gamma converges faster than a small fixed gamma.
	fixed, err := NewEngine(workload.Base(), Config{Gamma1: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	fixedRes := fixed.Solve(600)

	adaptive, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	adaptiveRes := adaptive.Solve(600)

	if !adaptiveRes.Converged {
		t.Fatal("adaptive did not converge")
	}
	if fixedRes.Converged && fixedRes.ConvergedAt <= adaptiveRes.ConvergedAt {
		t.Errorf("fixed gamma=0.01 converged at %d, adaptive at %d; expected adaptive faster",
			fixedRes.ConvergedAt, adaptiveRes.ConvergedAt)
	}
}

func TestEngineFlowRemovalRecovers(t *testing.T) {
	// Figure 3: removing flow 5 (highest-ranked consumers) drops utility,
	// then the system restabilizes at a lower level.
	e, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Solve(250)
	if !before.Converged {
		t.Fatal("did not converge before removal")
	}

	e.SetFlowActive(5, false)
	if e.FlowActive(5) {
		t.Fatal("flow 5 still active")
	}
	after := e.Solve(250)
	if !after.Converged {
		t.Fatal("did not reconverge after removal")
	}
	if after.Utility >= before.Utility {
		t.Errorf("utility after removing flow 5 = %.0f, want below %.0f", after.Utility, before.Utility)
	}
	// Flow 5 classes (18, 19) must be empty; its rate zero.
	a := e.Allocation()
	if a.Rates[5] != 0 || a.Consumers[18] != 0 || a.Consumers[19] != 0 {
		t.Errorf("flow 5 leftovers: rate=%g n18=%d n19=%d", a.Rates[5], a.Consumers[18], a.Consumers[19])
	}
}

func TestEngineFlowReactivation(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Solve(250)
	removed := e.Allocation()
	e.SetFlowActive(5, false)
	e.Solve(250)
	e.SetFlowActive(5, true)
	restored := e.Solve(400)
	if !restored.Converged {
		t.Fatal("did not reconverge after reactivation")
	}
	// Utility returns to (approximately) the original level.
	u0 := model.TotalUtility(e.Problem(), removed)
	if rel := math.Abs(restored.Utility-u0) / u0; rel > 0.02 {
		t.Errorf("restored utility %.0f vs original %.0f (rel %.4f)", restored.Utility, u0, rel)
	}
}

func TestEngineSetFlowActiveIdempotent(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	a1 := e.Allocation()
	e.SetFlowActive(0, true) // already active: no-op
	a2 := e.Allocation()
	if a1.Rates[0] != a2.Rates[0] {
		t.Error("SetFlowActive(active) changed state")
	}
}

func TestEngineLinkBottleneckRespected(t *testing.T) {
	// With per-flow links at 30% of rateMax, converged rates must respect
	// link capacities (within the gradient method's tolerance).
	p := workload.WithLinkBottlenecks(workload.Base(), 0.3)
	e, err := NewEngine(p, Config{Adaptive: true, LinkGamma: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(2000)
	a := res.Allocation
	ix := e.Index()
	for _, l := range p.Links {
		used := model.LinkUsage(p, ix, a, l.ID)
		if used > l.Capacity*1.05 {
			t.Errorf("link %d usage %g exceeds capacity %g by >5%%", l.ID, used, l.Capacity)
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		e, err := NewEngine(workload.Base(), Config{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 60; i++ {
			out = append(out, e.Step().Utility)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration %d: %g != %g", i+1, a[i], b[i])
		}
	}
}

func TestEngineRandomWorkloadsStayFeasible(t *testing.T) {
	// Property test across random workloads: after every step the
	// allocation respects populations bounds, rate bounds, and node
	// capacities whenever flow costs fit.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p := workload.Random(rng, workload.RandomConfig{
			Flows: 3 + rng.Intn(4), Nodes: 2 + rng.Intn(3),
		})
		e, err := NewEngine(p, Config{Adaptive: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ix := e.Index()
		for i := 0; i < 50; i++ {
			r := e.Step()
			if r.MaxNodeOverload > 0 {
				// Only legal when flow costs alone exceed a capacity.
				continue
			}
			if err := model.CheckFeasible(p, ix, e.Allocation(), 1e-6); err != nil {
				t.Fatalf("trial %d iter %d: %v", trial, i+1, err)
			}
		}
	}
}

func TestSolveStopsAtMaxIter(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Gamma1: 1, Gamma2: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(30)
	if res.Iterations > 30 {
		t.Errorf("iterations = %d, want <= 30", res.Iterations)
	}
	if len(res.Trace) != res.Iterations {
		t.Errorf("trace length %d != iterations %d", len(res.Trace), res.Iterations)
	}
}

func TestSolveDefaultMaxIter(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(0)
	if res.Iterations == 0 || res.Iterations > 250 {
		t.Errorf("iterations = %d, want in (0, 250]", res.Iterations)
	}
}

func TestStepResultIterationNumbers(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for want := 1; want <= 5; want++ {
		if got := e.Step().Iteration; got != want {
			t.Errorf("Iteration = %d, want %d", got, want)
		}
	}
}
