// Command lrgp-benchjson converts `go test -bench` output on stdin into a
// JSON benchmark record, so perf trajectories can be tracked in version
// control (see `make bench-core`, which writes BENCH_core.json).
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/core/ | lrgp-benchjson -out BENCH_core.json
//
// Standard `-benchmem` columns (ns/op, B/op, allocs/op) are parsed into
// dedicated fields; any custom b.ReportMetric metrics are collected into
// the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string   `json:"name"`
	Iterations int64    `json:"iterations"`
	NsPerOp    float64  `json:"nsPerOp"`
	BytesPerOp *float64 `json:"bytesPerOp,omitempty"`
	AllocsOp   *float64 `json:"allocsPerOp,omitempty"`
	// Speedup is the workers=1 ns/op of the same sub-benchmark family
	// divided by this entry's ns/op: the parallel scaling factor,
	// recorded so BENCH files track the curve directly instead of
	// readers eyeballing raw ns/op. Present only on benchmarks with a
	// workers=N component whose workers=1 baseline (same family, same
	// -cpu suffix) appears in the same run; the baseline itself carries
	// 1.0.
	Speedup *float64           `json:"speedup,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// record is the file layout: environment header plus results. Goos
// through CPU come from the bench output itself; GoVersion, GoMaxProcs
// and NumCPU are stamped from the converting host (the same machine that
// ran the benchmark in the `go test | lrgp-benchjson` pipeline), so a
// recorded trajectory states the conditions it was measured under.
type record struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	GoVersion  string   `json:"goVersion,omitempty"`
	GoMaxProcs int      `json:"goMaxProcs,omitempty"`
	NumCPU     int      `json:"numCPU,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

// stampHost fills the host-environment fields of rec.
func stampHost(rec *record) {
	rec.GoVersion = runtime.Version()
	rec.GoMaxProcs = runtime.GOMAXPROCS(0)
	rec.NumCPU = runtime.NumCPU()
}

// workersRE matches the worker-count component of a sub-benchmark name,
// e.g. the "workers=4" in "BenchmarkEngineStepHuge/workers=4-8".
var workersRE = regexp.MustCompile(`workers=\d+`)

// addSpeedups fills Speedup for every benchmark whose name carries a
// workers=N component and whose family has a workers=1 entry in the same
// run. The family key is the name with the worker count normalized to 1,
// which keeps distinct -cpu suffixes (from go test -cpu=1,8) and distinct
// parent benchmarks in separate families.
func addSpeedups(rec *record) {
	base := make(map[string]float64)
	for _, r := range rec.Benchmarks {
		if workersRE.FindString(r.Name) == "workers=1" && r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	for i := range rec.Benchmarks {
		r := &rec.Benchmarks[i]
		if !workersRE.MatchString(r.Name) || r.NsPerOp <= 0 {
			continue
		}
		if b, ok := base[workersRE.ReplaceAllString(r.Name, "workers=1")]; ok {
			s := b / r.NsPerOp
			r.Speedup = &s
		}
	}
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()
	rec, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-benchjson:", err)
		os.Exit(1)
	}
	stampHost(rec)
	addSpeedups(rec)
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lrgp-benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "lrgp-benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
	}
}

func parse(r io.Reader) (*record, error) {
	rec := &record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rec.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", line, err)
		}
		rec.Benchmarks = append(rec.Benchmarks, *res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkEngineStepHuge/workers=4-8  100  12345 ns/op  0 B/op  0 allocs/op
//	BenchmarkFigure1Damping-8  1  2.1e9 ns/op  190123 final-utility
func parseLine(line string) (*result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("want at least 4 fields, got %d", len(fields))
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("iterations: %w", err)
	}
	res := &result{Name: fields[0], Iterations: iters}
	// The remainder alternates value / unit.
	for k := 2; k+1 < len(fields); k += 2 {
		v, err := strconv.ParseFloat(fields[k], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", fields[k], err)
		}
		switch unit := fields[k+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			b := v
			res.BytesPerOp = &b
		case "allocs/op":
			a := v
			res.AllocsOp = &a
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, nil
}
