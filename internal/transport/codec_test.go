package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestParseWire(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Wire
		ok   bool
	}{
		{"json", WireJSON, true},
		{"", WireJSON, true},
		{"binary", WireBinary, true},
		{"protobuf", WireJSON, false},
	} {
		got, err := ParseWire(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseWire(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if WireJSON.String() != "json" || WireBinary.String() != "binary" {
		t.Errorf("Wire.String: %q %q", WireJSON, WireBinary)
	}
}

func TestMessageBinaryRoundTrip(t *testing.T) {
	cases := []Message{
		{},
		{From: "a", To: "b", Kind: "k"},
		{From: "flow/12", To: "node/3", Kind: "rate", Payload: []byte(`{"x":1}`)},
		{From: "n", To: "m", Kind: "blob", Payload: bytes.Repeat([]byte{0, 1, 0xff}, 100)},
		{From: strings.Repeat("long", 100), To: "t", Kind: "", Payload: []byte{binaryTag}},
	}
	for i, msg := range cases {
		enc := AppendMessage(nil, &msg)
		if len(enc) != BinarySize(&msg) {
			t.Errorf("case %d: len(enc)=%d, BinarySize=%d", i, len(enc), BinarySize(&msg))
		}
		got, n, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Errorf("case %d: consumed %d of %d bytes", i, n, len(enc))
		}
		if got.From != msg.From || got.To != msg.To || got.Kind != msg.Kind ||
			!bytes.Equal(got.Payload, msg.Payload) {
			t.Errorf("case %d: got %+v, want %+v", i, got, msg)
		}
	}
}

func TestDecodeMessageConcatenated(t *testing.T) {
	a := Message{From: "a", To: "b", Kind: "one", Payload: []byte(`1`)}
	b := Message{From: "b", To: "c", Kind: "two"}
	enc := AppendMessage(AppendMessage(nil, &a), &b)

	got1, n1, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	got2, n2, err := DecodeMessage(enc[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(enc) {
		t.Errorf("consumed %d+%d of %d", n1, n2, len(enc))
	}
	if got1.Kind != "one" || got2.Kind != "two" {
		t.Errorf("kinds: %q %q", got1.Kind, got2.Kind)
	}
}

func TestDecodeMessageRejectsCorrupt(t *testing.T) {
	good := AppendMessage(nil, &Message{From: "a", To: "b", Kind: "k", Payload: []byte("xyz")})

	// Every truncation must error, never panic or over-read.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeMessage(good[:n]); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("truncated at %d: err = %v, want ErrCorruptFrame", n, err)
		}
	}
	// Wrong tag.
	if _, _, err := DecodeMessage([]byte(`{"from":"a"}`)); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("JSON body: err = %v, want ErrCorruptFrame", err)
	}
	// Length field claiming far more bytes than present must not allocate
	// or over-read.
	huge := []byte{binaryTag, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeMessage(huge); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("huge length: err = %v, want ErrCorruptFrame", err)
	}
}

func TestDecodeMessageDoesNotAliasInput(t *testing.T) {
	enc := AppendMessage(nil, &Message{From: "a", To: "b", Kind: "k", Payload: []byte("data")})
	got, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xee
	}
	if string(got.Payload) != "data" || got.From != "a" {
		t.Error("decoded message aliases the input buffer")
	}
}

func TestCursorPrimitives(t *testing.T) {
	var buf []byte
	buf = AppendFloat64(buf, math.MaxFloat64)
	buf = AppendFloat64(buf, math.Copysign(0, -1))

	c := Cursor{Data: buf}
	if v := c.Float64(); v != math.MaxFloat64 {
		t.Errorf("float = %v", v)
	}
	if v := c.Float64(); v != 0 || !math.Signbit(v) {
		t.Errorf("negative zero lost: %v", v)
	}
	if c.Err() != nil || c.Rest() != 0 {
		t.Errorf("err=%v rest=%d", c.Err(), c.Rest())
	}
	// Reading past the end errors and stays erred.
	if c.Float64(); c.Err() == nil {
		t.Error("read past end did not error")
	}
	if c.Byte() != 0 || c.Uvarint() != 0 || c.Bytes() != nil {
		t.Error("reads after error must return zero values")
	}

	// Int rejects values beyond int32.
	c2 := Cursor{Data: AppendMessage(nil, &Message{})}
	_ = c2
	big := Cursor{Data: []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}}
	if big.Int(); big.Err() == nil {
		t.Error("Int accepted out-of-range value")
	}
}

func TestAppendMessageZeroAlloc(t *testing.T) {
	msg := Message{From: "flow/42", To: "node/7", Kind: "rate", Payload: []byte(`{"round":9,"rate":1.5}`)}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendMessage(buf[:0], &msg)
	})
	if allocs != 0 {
		t.Errorf("AppendMessage allocs/op = %v, want 0", allocs)
	}
}

// TestTCPBinaryWire runs traffic over the binary wire and checks payloads
// arrive intact; TestTCPMixedWires checks a binary sender and a JSON
// sender interoperate on one network, including a live format switch.
func TestTCPBinaryWire(t *testing.T) {
	net := NewTCP()
	net.SetWire(WireBinary)
	defer net.Close()

	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	for i := 0; i < 50; i++ {
		m, err := Encode("a", "b", "seq", i)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		var got int
		if err := Decode(recvOne(t, b), &got); err != nil {
			t.Fatal(err)
		}
		if got != i {
			t.Fatalf("message %d arrived as %d", i, got)
		}
	}
}

func TestTCPMixedWires(t *testing.T) {
	net := NewTCP()
	defer net.Close()

	a, _ := net.Endpoint("a") // JSON (default)
	b, _ := net.Endpoint("b")
	c, _ := net.Endpoint("c")
	c.(WireSelector).SetWire(WireBinary)

	ma, _ := Encode("a", "b", "from-json", "j")
	mc, _ := Encode("c", "b", "from-binary", "c")
	if err := a.Send(ma); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(mc); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for i := 0; i < 2; i++ {
		kinds[recvOne(t, b).Kind] = true
	}
	if !kinds["from-json"] || !kinds["from-binary"] {
		t.Errorf("kinds = %v", kinds)
	}

	// Switch a live endpoint to binary mid-stream: the same connection
	// carries both layouts back to back.
	a.(WireSelector).SetWire(WireBinary)
	if err := a.Send(ma); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); got.Kind != "from-json" {
		t.Errorf("post-switch kind = %q", got.Kind)
	}
}

func TestTCPBinaryFramesSmaller(t *testing.T) {
	msg := Message{From: "flow/42", To: "node/7", Kind: "rate",
		Payload: []byte(`{"round":9,"flow":42,"rate":1.52}`)}
	jsonFrame, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	jsonLen := 4 + len(jsonFrame)
	binLen := 1 + BinarySize(&msg) // 1-byte uvarint header at this size
	if binLen >= jsonLen {
		t.Errorf("binary frame %dB not smaller than JSON frame %dB", binLen, jsonLen)
	}
}

func TestMemoryDelay(t *testing.T) {
	net := NewMemory()
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	net.SetDelay(20 * time.Millisecond)

	m, _ := Encode("a", "b", "k", 1)
	start := time.Now()
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 10*time.Millisecond {
		t.Error("Send blocked for the delay instead of returning")
	}
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~20ms", elapsed)
	}
	if st := net.NetStats(); st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}

	// A delayed message whose destination closes before the timer fires
	// counts as dropped, and nothing panics.
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	_ = b.Close()
	time.Sleep(50 * time.Millisecond)
	if st := net.NetStats(); st.Dropped != 1 {
		t.Errorf("late drop not counted: %+v", st)
	}
	net.SetDelay(0)
}

func TestMemoryDropExempt(t *testing.T) {
	net := NewMemory()
	defer net.Close()
	ctrl, _ := net.Endpoint("ctrl")
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	net.SetDropRate(1.0, 7)
	net.SetDropExempt("ctrl")

	m, _ := Encode("a", "b", "k", 1)
	if err := a.Send(m); !errors.Is(err, ErrDropped) {
		t.Errorf("non-exempt send: %v, want ErrDropped", err)
	}
	cm, _ := Encode("ctrl", "b", "k", 2)
	if err := ctrl.Send(cm); err != nil {
		t.Errorf("exempt send dropped: %v", err)
	}
	recvOne(t, b)

	// Exemption does not bypass partitions.
	net.SetPartition("ctrl", 1)
	if err := ctrl.Send(cm); !errors.Is(err, ErrDropped) {
		t.Errorf("partitioned exempt send: %v, want ErrDropped", err)
	}
}

// FuzzDecodeMessage drives the binary frame decoder with arbitrary bytes:
// it must either decode within bounds or error, never panic or over-read.
func FuzzDecodeMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{binaryTag})
	f.Add([]byte(`{"from":"a","to":"b"}`))
	f.Add(AppendMessage(nil, &Message{From: "a", To: "b", Kind: "k", Payload: []byte(`{"x":1}`)}))
	f.Add([]byte{binaryTag, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, n, err := DecodeMessage(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		// A successful decode must survive a re-encode/decode round trip.
		// (Byte equality is too strict: binary.Uvarint accepts
		// non-canonical varint paddings that re-encode shorter.)
		re := AppendMessage(nil, &msg)
		msg2, n2, err := DecodeMessage(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode failed: n=%d err=%v", n2, err)
		}
		if msg2.From != msg.From || msg2.To != msg.To || msg2.Kind != msg.Kind ||
			!bytes.Equal(msg2.Payload, msg.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", msg, msg2)
		}
	})
}

func BenchmarkAppendMessage(b *testing.B) {
	msg := Message{From: "flow/42", To: "node/7", Kind: "rate",
		Payload: []byte(`{"round":9,"flow":42,"rate":1.52,"active":true}`)}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMessage(buf[:0], &msg)
	}
}

func BenchmarkEncodeJSONMessage(b *testing.B) {
	msg := Message{From: "flow/42", To: "node/7", Kind: "rate",
		Payload: []byte(`{"round":9,"flow":42,"rate":1.52,"active":true}`)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}
