package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// syntheticLog writes a small event log with a known straggler: flow/0
// and node/0 march one round per 10µs through round 10 while flow/1
// finishes round 1, chirps twice, and only catches up at the end.
func syntheticLog(t *testing.T) string {
	t.Helper()
	const us = int64(1000)
	var sb strings.Builder
	seq := 0
	add := func(agent string, ns int64, ev string, round int, a, b int64) {
		fmt.Fprintf(&sb, `{"agent":%q,"seq":%d,"ns":%d,"ev":%q,"round":%d,"a":%d,"b":%d}`+"\n",
			agent, seq, ns, ev, round, a, b)
		seq++
	}
	for r := 1; r <= 10; r++ {
		ns := int64(r) * 10 * us
		if r > 1 {
			add("flow/0", ns-us, "absorb", r-1, 0, 0) // report from node/0
		}
		add("flow/0", ns, "send", r, 0, 2)
		add("flow/0", ns, "round", r, 0, 0)
		add("node/0", ns+us, "absorb", r, 0, 0) // rate from flow/0
		add("node/0", ns+us, "send", r, 1, 2)
		add("node/0", ns+us, "round", r, 0, 0)
	}
	add("flow/1", 10*us, "absorb", 1, 0, 0)
	add("flow/1", 10*us, "send", 1, 0, 2)
	add("flow/1", 10*us, "round", 1, 0, 0)
	add("flow/1", 50*us, "resend", 1, 4000, 0)
	add("flow/1", 70*us, "resend", 1, 8000, 0)
	add("flow/1", 100*us, "round", 10, 0, 0)

	path := filepath.Join(t.TempDir(), "events.jsonl")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRendersTables(t *testing.T) {
	path := syntheticLog(t)
	var out bytes.Buffer
	if err := run([]string{"-events", path}, &out, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	if !regexp.MustCompile(`(?m)^\d+ events from 3 agents; 10 rounds over .*; 2 resend chirps, 0 stall\(s\)$`).MatchString(got) {
		t.Errorf("summary line missing or wrong:\n%s", got)
	}
	for _, table := range []string{
		"== round timeline ==",
		"== stragglers (time spent >1 round behind the component frontier) ==",
		"== loss hotspots (rounds by resend chirps) ==",
		"== effective staleness (input lag observed at each send) ==",
	} {
		if !strings.Contains(got, table) {
			t.Errorf("output missing %q", table)
		}
	}

	// flow/1 must be the first data row of the straggler table.
	strag := got[strings.Index(got, "== stragglers"):]
	lines := strings.Split(strag, "\n")
	if len(lines) < 4 || !strings.HasPrefix(lines[3], "flow/1") {
		t.Errorf("straggler table does not lead with flow/1:\n%s", strag)
	}
	// Round 1 drew both chirps, so it is the loss hotspot.
	hot := got[strings.Index(got, "== loss hotspots"):]
	lines = strings.Split(hot, "\n")
	if len(lines) < 4 || !strings.HasPrefix(strings.TrimSpace(lines[3]), "1") {
		t.Errorf("loss hotspots does not lead with round 1:\n%s", hot)
	}
}

func TestRunCSV(t *testing.T) {
	path := syntheticLog(t)
	var out bytes.Buffer
	if err := run([]string{"-events", path, "-csv"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, header := range []string{
		"round,sends,recvs,resends,start_ms,window_ms",
		"agent,rounds,max_lag,chirps,behind_ms",
		"round,resends,sends,recvs",
		"lag_rounds,sends,share",
	} {
		if !strings.Contains(got, header) {
			t.Errorf("CSV output missing header %q:\n%s", header, got)
		}
	}
	if strings.Contains(got, "== ") {
		t.Error("CSV output contains aligned-text table headers")
	}
}

func TestRunTopLimitsRows(t *testing.T) {
	path := syntheticLog(t)
	var out bytes.Buffer
	if err := run([]string{"-events", path, "-top", "1"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	strag := out.String()[strings.Index(out.String(), "== stragglers"):]
	end := strings.Index(strag, "\n\n")
	if end < 0 {
		end = len(strag)
	}
	// header + column row + rule + exactly one data row
	if rows := strings.Count(strings.TrimRight(strag[:end], "\n"), "\n") + 1; rows != 4 {
		t.Errorf("straggler table has %d lines with -top 1, want 4:\n%s", rows, strag[:end])
	}
}

func TestRunReadsStdin(t *testing.T) {
	path := syntheticLog(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-events", "-"}, &out, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== round timeline ==") {
		t.Error("stdin mode produced no timeline")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out, nil); err == nil {
		t.Error("missing -events did not error")
	}
	if err := run([]string{"-events", filepath.Join(t.TempDir(), "absent.jsonl")}, &out, nil); err == nil {
		t.Error("absent file did not error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", empty}, &out, nil); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("empty log error = %v, want 'empty'", err)
	}
}
