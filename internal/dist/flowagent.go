package dist

import (
	"errors"
	"fmt"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// flowAgent runs Algorithm 1 for one flow at its source node (or, in
// multirate mode, the capped-classes source-rate solver).
type flowAgent struct {
	p    *model.Problem
	flow model.FlowID
	ep   transport.Endpoint
	ra   *core.RateAllocator
	// mr is non-nil in multirate mode and replaces ra.
	mr *multirate.SourceRateSolver

	// Static path structure.
	nodes     []model.NodeID // B_i
	nodeCoefF map[model.NodeID]float64
	classNode map[model.ClassID]model.NodeID
	classCost map[model.ClassID]float64 // G_{b,j}
	// classesAt lists the flow's classes grouped by node in ascending
	// class-id order, so the Equation 9 coefficient sum has a fixed float
	// association order (maps iterate randomly, which would make
	// trajectories differ at ULP level run to run).
	classesAt  map[model.NodeID][]classTerm
	links      []model.LinkID // L_i
	linkCoef   map[model.LinkID]float64
	linkOwner  map[model.LinkID]model.NodeID
	peerNames  []string       // node agents to exchange with (deduped)
	peerNodes  []model.NodeID // same set as peerNames, as ids
	peerCount  int
	priceAvgWn int // async price-averaging window (>=1)
	wire       transport.Wire

	// Dynamic state.
	consumers []int
	nodePrice map[model.NodeID]*priceWindow
	linkPrice map[model.LinkID]*priceWindow
	round     int
	runUntil  int
	leaving   bool
	idle      bool          // departed but able to rejoin
	tickEvery time.Duration // async mode when > 0
	staleness int           // bounded-staleness window (runStale only)
	resend    time.Duration // re-announce interval when stalled (runStale)

	rec     *recorder              // flight recorder (nil = off)
	tel     *telemetry.DistMetrics // dist telemetry (nil = off)
	chirped bool                   // a chirp fired since the last progress

	done chan struct{}
}

type classTerm struct {
	cid  model.ClassID
	cost float64
}

// priceWindow keeps the last w prices from one resource and serves their
// average (Section 3.5's asynchronous smoothing; w=1 reduces to "latest").
type priceWindow struct {
	vals []float64
	next int
	n    int
}

func newPriceWindow(w int) *priceWindow {
	if w < 1 {
		w = 1
	}
	return &priceWindow{vals: make([]float64, w)}
}

func (pw *priceWindow) push(v float64) {
	pw.vals[pw.next] = v
	pw.next = (pw.next + 1) % len(pw.vals)
	if pw.n < len(pw.vals) {
		pw.n++
	}
}

func (pw *priceWindow) avg() float64 {
	if pw.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < pw.n; i++ {
		sum += pw.vals[i]
	}
	return sum / float64(pw.n)
}

func newFlowAgent(p *model.Problem, ix *model.Index, fid model.FlowID, ep transport.Endpoint, c Config) *flowAgent {
	fa := &flowAgent{
		p:          p,
		flow:       fid,
		ep:         ep,
		ra:         core.NewRateAllocator(p, ix, fid),
		nodeCoefF:  make(map[model.NodeID]float64),
		classNode:  make(map[model.ClassID]model.NodeID),
		classCost:  make(map[model.ClassID]float64),
		classesAt:  make(map[model.NodeID][]classTerm),
		linkCoef:   make(map[model.LinkID]float64),
		linkOwner:  make(map[model.LinkID]model.NodeID),
		consumers:  make([]int, len(p.Classes)),
		nodePrice:  make(map[model.NodeID]*priceWindow),
		linkPrice:  make(map[model.LinkID]*priceWindow),
		priceAvgWn: c.PriceWindow,
		wire:       c.Wire,
		round:      1,
		tickEvery:  c.Tick,
		staleness:  c.Staleness,
		resend:     c.Resend,
		done:       make(chan struct{}),
	}
	peers := make(map[model.NodeID]bool)
	for _, b := range ix.NodesByFlow(fid) {
		fa.nodes = append(fa.nodes, b)
		fa.nodeCoefF[b] = p.Nodes[b].FlowCost[fid]
		fa.nodePrice[b] = newPriceWindow(c.PriceWindow)
		fa.nodePrice[b].push(c.Core.InitialNodePrice)
		peers[b] = true
	}
	for _, cid := range ix.ClassesByFlow(fid) {
		cl := &p.Classes[cid]
		fa.classNode[cid] = cl.Node
		fa.classCost[cid] = cl.CostPerConsumer
		fa.classesAt[cl.Node] = append(fa.classesAt[cl.Node], classTerm{cid: cid, cost: cl.CostPerConsumer})
	}
	for _, terms := range fa.classesAt {
		slices.SortFunc(terms, func(a, b classTerm) int { return int(a.cid) - int(b.cid) })
	}
	for _, l := range ix.LinksByFlow(fid) {
		fa.links = append(fa.links, l)
		fa.linkCoef[l] = p.Links[l].FlowCost[fid]
		fa.linkOwner[l] = p.Links[l].To
		fa.linkPrice[l] = newPriceWindow(c.PriceWindow)
		fa.linkPrice[l].push(c.Core.InitialLinkPrice)
		peers[p.Links[l].To] = true
	}
	for b := range peers {
		fa.peerNodes = append(fa.peerNodes, b)
	}
	slices.Sort(fa.peerNodes)
	for _, b := range fa.peerNodes {
		fa.peerNames = append(fa.peerNames, nodeName(b))
	}
	fa.peerCount = len(fa.peerNames)
	if c.Multirate {
		fa.mr = multirate.NewSourceRateSolver(p, ix, fid)
	}
	return fa
}

// computeRate runs the mode-appropriate source-rate allocation from the
// agent's absorbed state.
func (fa *flowAgent) computeRate() float64 {
	if fa.mr == nil {
		return fa.ra.Rate(fa.consumers, fa.pathPrice())
	}
	// Multirate: consumer-independent path price, plus locally computed
	// desired deliveries from each class's node price.
	price := 0.0
	for _, l := range fa.links {
		price += fa.linkCoef[l] * fa.linkPrice[l].avg()
	}
	for _, b := range fa.nodes {
		price += fa.nodeCoefF[b] * fa.nodePrice[b].avg()
	}
	desired := make([]float64, len(fa.p.Classes))
	f := fa.p.Flows[fa.flow]
	for cid, node := range fa.classNode {
		u := fa.p.Classes[cid].Utility
		desired[cid] = multirate.DesiredDelivery(u, fa.classCost[cid]*fa.nodePrice[node].avg(), f.RateMin, f.RateMax)
	}
	return fa.mr.Rate(fa.consumers, desired, price)
}

// pathPrice computes PL_i + PB_i (Equations 8 and 9) from the current
// (averaged) prices and populations.
func (fa *flowAgent) pathPrice() float64 {
	price := 0.0
	for _, l := range fa.links {
		price += fa.linkCoef[l] * fa.linkPrice[l].avg()
	}
	for _, b := range fa.nodes {
		coeff := fa.nodeCoefF[b]
		for _, ct := range fa.classesAt[b] {
			coeff += ct.cost * float64(fa.consumers[ct.cid])
		}
		price += coeff * fa.nodePrice[b].avg()
	}
	return price
}

// absorbReport folds a node report into local state.
func (fa *flowAgent) absorbReport(rm reportMsg) {
	if pw, ok := fa.nodePrice[rm.Node]; ok {
		pw.push(rm.Price)
	}
	for cid, n := range rm.Populations {
		if _, mine := fa.classNode[cid]; mine {
			fa.consumers[cid] = n
		}
	}
	for lid, pr := range rm.LinkPrices {
		if pw, ok := fa.linkPrice[lid]; ok {
			pw.push(pr)
		}
	}
}

// announce sends the flow's rate for the given round to every peer node
// agent and the collector. The body is encoded once and the payload shared
// across all peer messages (receivers treat payloads as read-only).
// Lossy-transport failures (drops, partitions) are tolerated — the
// asynchronous mode is designed for them, and in the synchronous mode the
// transports are lossless; only a closed transport is fatal.
func (fa *flowAgent) announce(round int, rate float64, active bool) error {
	body := rateMsg{Round: round, Flow: fa.flow, Rate: rate, Active: active}
	payload, err := encodeBody(fa.wire, nil, body)
	if err != nil {
		return err
	}
	from := fa.ep.Name()
	for _, peer := range fa.peerNames {
		msg := transport.Message{From: from, To: peer, Kind: rateKind, Payload: payload}
		if err := fa.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
			return fmt.Errorf("dist: flow %d announce to %s: %w", fa.flow, peer, err)
		}
	}
	msg := transport.Message{From: from, To: collectorName, Kind: rateKind, Payload: payload}
	if err := fa.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
		return err
	}
	return nil
}

// runSync is the synchronous round loop. It blocks until a Stop control or
// transport shutdown. A Leave control makes the agent announce departure
// and idle; a later Join control re-announces it at the cluster's current
// round (the cluster calls both only between Run invocations).
func (fa *flowAgent) runSync() {
	defer close(fa.done)
	reportsSeen := make(map[int]map[model.NodeID]bool)

	for {
		// Process a pending departure.
		if fa.leaving {
			fa.leaving = false
			if !fa.idle {
				_ = fa.announce(fa.round, 0, false)
				fa.idle = true
			}
		}

		// Pause until allowed to run this round, or idle until Join.
		// Reports arriving here are still recorded: a node that computed
		// our next round before seeing our (re)announce has already sent
		// its report, and dropping the record would stall the barrier
		// below.
		for fa.runUntil < fa.round || fa.idle {
			if !fa.handleOne(reportsSeen) {
				return
			}
			if fa.idle {
				// Track the cluster's round counter passively so a later
				// Join resumes at the right round, and drop report records
				// for rounds this agent sat out.
				if fa.round <= fa.runUntil {
					fa.round = fa.runUntil + 1
					for r := range reportsSeen {
						if r < fa.round {
							delete(reportsSeen, r)
						}
					}
				}
				continue
			}
			if fa.leaving {
				fa.leaving = false
				_ = fa.announce(fa.round, 0, false)
				fa.idle = true
			}
		}

		if err := fa.announce(fa.round, fa.computeRate(), true); err != nil {
			return
		}
		fa.recordProgress(fa.round, 0)

		// Await this round's reports from every peer node. A Leave
		// arriving mid-round finishes the handshake first so peers are
		// not left waiting.
		for len(reportsSeen[fa.round]) < fa.peerCount {
			if !fa.handleOne(reportsSeen) {
				return
			}
		}
		delete(reportsSeen, fa.round)
		fa.round++
	}
}

// runStale is the bounded-staleness round loop: the agent announces round
// t as soon as every peer's freshest report is at most `staleness` rounds
// behind (round t-1 exactly when staleness is 0 — which reduces to the
// barrier-synchronous schedule), instead of waiting for the full round
// t-1 report set. Reports are absorbed with a strictly-newer guard so
// duplicate resends cannot skew the Section 3.5 price averages, and a
// resend timer re-announces the latest rate while stalled so dropped
// frames cannot deadlock the cluster.
func (fa *flowAgent) runStale() {
	defer close(fa.done)
	reportRound := make(map[model.NodeID]int, len(fa.peerNodes))
	lastRound, lastRate := 0, 0.0
	backoff := fa.resend
	timer, timerC := newResendTimer(fa.resend)
	defer stopResendTimer(timer)

	for {
		// Announce every round currently permitted by the staleness bound.
		announced := false
		for !fa.idle && fa.round <= fa.runUntil && fa.canAnnounce(reportRound) {
			rate := fa.computeRate()
			if err := fa.announce(fa.round, rate, true); err != nil {
				return
			}
			fa.recordProgress(fa.round, fa.observedLag(reportRound))
			lastRound, lastRate = fa.round, rate
			fa.round++
			announced = true
		}
		if announced && timer != nil {
			// Progress: push the resend deadline out so chirps fire only
			// after a genuine stall, not on a periodic schedule (a periodic
			// chirp from every agent of a large cluster is a message storm).
			backoff = fa.resend
			timer.Reset(backoff)
		}
		if fa.leaving {
			fa.leaving = false
			if !fa.idle {
				_ = fa.announce(fa.round, 0, false)
				fa.idle = true
			}
		}
		if fa.idle && fa.round <= fa.runUntil {
			fa.round = fa.runUntil + 1
		}

		select {
		case m, ok := <-fa.ep.Recv():
			if !ok {
				return
			}
			if !fa.handleStale(m, reportRound) {
				return
			}
		case <-timerC:
			// Stalled: re-announce the freshest rate so peers (and the
			// collector) that lost the original frame can catch up. Repeated
			// stalls back off exponentially — when the whole cluster is slow
			// (not lossy), fixed-period chirps from every agent feed back
			// into the slowness.
			if lastRound > 0 && !fa.idle {
				if err := fa.announce(lastRound, lastRate, true); err != nil {
					return
				}
				fa.rec.record(EvResend, lastRound, int64(backoff), 0)
				fa.tel.ObserveChirp(true)
				fa.chirped = true
			}
			if backoff < 16*fa.resend {
				backoff *= 2
				fa.tel.ObserveBackoff(true)
			}
			timer.Reset(backoff)
		}
	}
}

// canAnnounce reports whether the staleness bound permits announcing
// fa.round: every peer node's freshest absorbed report must be no older
// than round-1-staleness. Round 1 is unconditional (there is nothing to
// be stale against).
func (fa *flowAgent) canAnnounce(reportRound map[model.NodeID]int) bool {
	if fa.round == 1 {
		return true
	}
	need := fa.round - 1 - fa.staleness
	if need < 1 {
		need = 1
	}
	for _, b := range fa.peerNodes {
		if reportRound[b] < need {
			return false
		}
	}
	return true
}

// handleStale processes one inbound message for the bounded-staleness
// loop, returning false on shutdown.
func (fa *flowAgent) handleStale(m transport.Message, reportRound map[model.NodeID]int) bool {
	switch m.Kind {
	case ctrlKind:
		cm, err := decodeCtrl(m)
		if err != nil {
			return true
		}
		if cm.Stop {
			return false
		}
		if cm.Leave && !fa.idle {
			fa.leaving = true
		}
		if cm.Join && fa.idle {
			fa.idle = false
			if fa.round <= fa.runUntil {
				fa.round = fa.runUntil + 1
			}
		}
		if cm.RunUntil > fa.runUntil {
			fa.runUntil = cm.RunUntil
		}
	case reportKind:
		rm, err := decodeReport(m)
		if err != nil {
			return true
		}
		// Strictly-newer guard: resent duplicates and out-of-order
		// stragglers must not push into the price windows twice. One
		// event per frame: absorb when accepted (an absorb implies the
		// receive), recv when rejected.
		if rm.Round > reportRound[rm.Node] {
			reportRound[rm.Node] = rm.Round
			fa.absorbReport(rm)
			fa.rec.record(EvAbsorb, rm.Round, int64(rm.Node), 0)
		} else {
			fa.rec.record(EvRecv, rm.Round, int64(rm.Node), 0)
		}
	}
	return true
}

// recordProgress logs one successful announce (the send plus the round
// advance) and credits a pending chirp with the repair: progress right
// after a chirp means the re-announce plausibly replaced a lost frame.
func (fa *flowAgent) recordProgress(round, lag int) {
	fa.rec.record(EvSend, round, int64(lag), int64(fa.peerCount))
	fa.rec.record(EvRound, round, 0, 0)
	if fa.chirped {
		fa.chirped = false
		fa.tel.ObserveRepair(true)
	}
}

// observedLag is the effective staleness of the inputs used for fa.round:
// the gap between the newest report the round could use (round-1) and the
// oldest peer report actually absorbed.
func (fa *flowAgent) observedLag(reportRound map[model.NodeID]int) int {
	if fa.round == 1 || fa.peerCount == 0 {
		return 0
	}
	oldest := fa.round
	for _, b := range fa.peerNodes {
		if r := reportRound[b]; r < oldest {
			oldest = r
		}
	}
	lag := fa.round - 1 - oldest
	if lag < 0 {
		lag = 0
	}
	return lag
}

// handleOne processes a single inbound message, returning false on
// shutdown. When seen is non-nil, node reports are tallied per round.
func (fa *flowAgent) handleOne(seen map[int]map[model.NodeID]bool) bool {
	m, ok := <-fa.ep.Recv()
	if !ok {
		return false
	}
	switch m.Kind {
	case ctrlKind:
		cm, err := decodeCtrl(m)
		if err != nil {
			return true
		}
		if cm.Stop {
			return false
		}
		if cm.Leave && !fa.idle {
			fa.leaving = true
		}
		if cm.Join && fa.idle {
			fa.idle = false
			if fa.round <= fa.runUntil {
				fa.round = fa.runUntil + 1
			}
		}
		if cm.RunUntil > fa.runUntil {
			fa.runUntil = cm.RunUntil
		}
	case reportKind:
		rm, err := decodeReport(m)
		if err != nil {
			return true
		}
		fa.absorbReport(rm)
		fa.rec.record(EvAbsorb, rm.Round, int64(rm.Node), 0)
		if seen != nil {
			if seen[rm.Round] == nil {
				seen[rm.Round] = make(map[model.NodeID]bool)
			}
			seen[rm.Round][rm.Node] = true
		}
	}
	return true
}

// runAsync ticks on a timer, announcing rates computed from the latest
// absorbed reports.
func (fa *flowAgent) runAsync() {
	defer close(fa.done)
	ticker := time.NewTicker(fa.tickEvery)
	defer ticker.Stop()
	for {
		select {
		case m, ok := <-fa.ep.Recv():
			if !ok {
				return
			}
			switch m.Kind {
			case ctrlKind:
				cm, err := decodeCtrl(m)
				if err != nil {
					continue
				}
				if cm.Stop {
					return
				}
				if cm.Leave && !fa.idle {
					_ = fa.announce(fa.round, 0, false)
					fa.idle = true
				}
				if cm.Join {
					fa.idle = false
				}
			case reportKind:
				rm, err := decodeReport(m)
				if err != nil {
					continue
				}
				fa.absorbReport(rm)
				fa.rec.record(EvAbsorb, rm.Round, int64(rm.Node), 0)
			}
		case <-ticker.C:
			if fa.idle {
				continue
			}
			if err := fa.announce(fa.round, fa.computeRate(), true); err != nil {
				return
			}
			fa.recordProgress(fa.round, 0)
			fa.round++
		}
	}
}

// newResendTimer returns a timer (and its channel) firing after d, or a
// nil channel that never fires when resends are disabled (d <= 0).
func newResendTimer(d time.Duration) (*time.Timer, <-chan time.Time) {
	if d <= 0 {
		return nil, nil
	}
	t := time.NewTimer(d)
	return t, t.C
}

func stopResendTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}
