package experiments

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/workload"
)

// MultirateRow compares single-rate LRGP against the multirate extension
// on one workload (X7).
type MultirateRow struct {
	Workload      string
	SingleUtility float64
	MultiUtility  float64
	GainPct       float64
	// FastDelivery / SlowDelivery show the split on the hetero workload
	// (zero for workloads without that structure).
	FastDelivery, SlowDelivery float64
}

// MultirateExperiment (X7) evaluates the multirate extension (the paper's
// deferred future work): on a heterogeneous workload (a small high-rank
// class that wants the full rate plus a large low-rank crowd that is
// nearly indifferent above a trickle) thinning pays off massively; on the
// homogeneous base workload it reproduces single-rate LRGP.
func MultirateExperiment(opts Options) ([]MultirateRow, error) {
	o := opts.normalized()

	hetero := workload.Heterogeneous()

	var rows []MultirateRow
	for _, p := range []*model.Problem{hetero, workload.Base()} {
		single, err := core.NewEngine(p.Clone(), o.engineConfig(core.Config{Adaptive: true}))
		if err != nil {
			return nil, err
		}
		sres := single.Solve(3 * o.Iterations)
		single.Close()

		multi, err := multirate.NewEngine(p.Clone(), core.Config{Adaptive: true})
		if err != nil {
			return nil, err
		}
		mres := multi.Solve(3 * o.Iterations)

		row := MultirateRow{
			Workload:      p.Name,
			SingleUtility: sres.Utility,
			MultiUtility:  mres.Utility,
		}
		if sres.Utility > 0 {
			row.GainPct = 100 * (mres.Utility - sres.Utility) / sres.Utility
		}
		if p == hetero {
			row.FastDelivery = mres.Allocation.Delivery[0]
			row.SlowDelivery = mres.Allocation.Delivery[1]
		}
		rows = append(rows, row)
	}
	return rows, nil
}
