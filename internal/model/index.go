package model

import (
	"fmt"
	"slices"
)

// Index precomputes the lookup functions of Section 2.2/2.3 of the paper
// (flowMap, attachMap, nodeClasses, linkMap, nodeMap and their inverses) so
// the optimizer's inner loops avoid repeated scans. Build it once per
// Problem with NewIndex; apart from Refresh (a warm-restart rebind to a
// topology-compatible problem) it is immutable and safe for concurrent
// reads.
//
// Beyond the membership lists, the index denormalizes the sparse cost maps
// (Node.FlowCost, Link.FlowCost) into slices aligned with those lists, so
// the optimizer's hot loops read contiguous float64s instead of hashing
// map keys. The cost views are copies taken at NewIndex time: mutating a
// cost map afterwards does not update the index (capacities and class
// demands are not cached and may change between iterations).
type Index struct {
	p *Problem

	// classesByFlow[i] lists the classes consuming flow i (C_i).
	classesByFlow [][]ClassID
	// classesByNode[b] lists the classes attached at node b
	// (nodeClasses(b)).
	classesByNode [][]ClassID
	// flowsByNode[b] lists the flows reaching node b (nodeMap(b)), in
	// ascending flow order.
	flowsByNode [][]FlowID
	// flowsByLink[l] lists the flows traversing link l (linkMap(l)).
	flowsByLink [][]FlowID
	// nodesByFlow[i] lists the nodes reached by flow i (B_i).
	nodesByFlow [][]NodeID
	// linksByFlow[i] lists the links traversed by flow i (L_i).
	linksByFlow [][]LinkID

	// flowCostByNode[b][k] is F_{b,i} for i = flowsByNode[b][k].
	flowCostByNode [][]float64
	// flowCostByLink[l][k] is L_{l,i} for i = flowsByLink[l][k].
	flowCostByLink [][]float64
	// nodeCostByFlow[i][k] is F_{b,i} for b = nodesByFlow[i][k].
	nodeCostByFlow [][]float64
	// linkCostByFlow[i][k] is L_{l,i} for l = linksByFlow[i][k].
	linkCostByFlow [][]float64
	// classesByFlowNode[i][k] lists the classes consuming flow i that are
	// attached at node nodesByFlow[i][k], in ascending class order — the
	// C_i ∩ nodeClasses(b) intersection the Equation 9 node-price
	// aggregation needs for every (flow, node) pair each iteration.
	classesByFlowNode [][][]ClassID
}

// NewIndex builds the index. The problem must already be valid (see
// Validate); NewIndex does not re-check it.
func NewIndex(p *Problem) *Index {
	ix := &Index{
		p:             p,
		classesByFlow: make([][]ClassID, len(p.Flows)),
		classesByNode: make([][]ClassID, len(p.Nodes)),
		flowsByNode:   make([][]FlowID, len(p.Nodes)),
		flowsByLink:   make([][]FlowID, len(p.Links)),
		nodesByFlow:   make([][]NodeID, len(p.Flows)),
		linksByFlow:   make([][]LinkID, len(p.Flows)),
	}
	for _, c := range p.Classes {
		ix.classesByFlow[c.Flow] = append(ix.classesByFlow[c.Flow], c.ID)
		ix.classesByNode[c.Node] = append(ix.classesByNode[c.Node], c.ID)
	}
	// Membership lists come from the sparse cost maps directly — O(edges)
	// rather than O(resources × flows), which matters once workloads reach
	// metro scale (10^4 flows × 10^5 nodes). Sorting each key set keeps the
	// lists in the same ascending order the dense scans produced.
	for _, n := range p.Nodes {
		flows := make([]FlowID, 0, len(n.FlowCost))
		for i := range n.FlowCost {
			flows = append(flows, i)
		}
		slices.Sort(flows)
		ix.flowsByNode[n.ID] = flows
	}
	for b := range p.Nodes {
		for _, i := range ix.flowsByNode[b] {
			ix.nodesByFlow[i] = append(ix.nodesByFlow[i], NodeID(b))
		}
	}
	for _, l := range p.Links {
		flows := make([]FlowID, 0, len(l.FlowCost))
		for i := range l.FlowCost {
			flows = append(flows, i)
		}
		slices.Sort(flows)
		ix.flowsByLink[l.ID] = flows
	}
	for l := range p.Links {
		for _, i := range ix.flowsByLink[l] {
			ix.linksByFlow[i] = append(ix.linksByFlow[i], LinkID(l))
		}
	}

	// Dense cost views, aligned element-for-element with the membership
	// lists built above.
	ix.flowCostByNode = make([][]float64, len(p.Nodes))
	for b := range p.Nodes {
		flows := ix.flowsByNode[b]
		costs := make([]float64, len(flows))
		for k, i := range flows {
			costs[k] = p.Nodes[b].FlowCost[i]
		}
		ix.flowCostByNode[b] = costs
	}
	ix.flowCostByLink = make([][]float64, len(p.Links))
	for l := range p.Links {
		flows := ix.flowsByLink[l]
		costs := make([]float64, len(flows))
		for k, i := range flows {
			costs[k] = p.Links[l].FlowCost[i]
		}
		ix.flowCostByLink[l] = costs
	}
	ix.nodeCostByFlow = make([][]float64, len(p.Flows))
	ix.linkCostByFlow = make([][]float64, len(p.Flows))
	ix.classesByFlowNode = make([][][]ClassID, len(p.Flows))
	for i := range p.Flows {
		fid := FlowID(i)
		nodes := ix.nodesByFlow[i]
		ncosts := make([]float64, len(nodes))
		lists := make([][]ClassID, len(nodes))
		for k, b := range nodes {
			ncosts[k] = p.Nodes[b].FlowCost[fid]
		}
		// One pass over the flow's classes, binary-searching each class's
		// node in the (sorted) nodesByFlow list: classesByFlow[i] is in
		// ascending class order, so each lists[k] comes out ascending too.
		for _, cid := range ix.classesByFlow[i] {
			k, ok := slices.BinarySearch(nodes, p.Classes[cid].Node)
			if ok {
				lists[k] = append(lists[k], cid)
			}
		}
		ix.nodeCostByFlow[i] = ncosts
		ix.classesByFlowNode[i] = lists

		links := ix.linksByFlow[i]
		lcosts := make([]float64, len(links))
		for k, l := range links {
			lcosts[k] = p.Links[l].FlowCost[fid]
		}
		ix.linkCostByFlow[i] = lcosts
	}
	return ix
}

// Problem returns the indexed problem.
func (ix *Index) Problem() *Problem { return ix.p }

// Refresh re-targets the index at p, rewriting the dense cost views in
// place. p must be topology-compatible with the indexed problem: the same
// flow/node/link/class counts, every class consuming the same flow and
// attached at the same node, and every cost map defined on exactly the
// same (resource, flow) pairs — only cost values, capacities, rate bounds,
// demands and utilities may differ. Refresh validates compatibility before
// mutating anything, so on error the index is unchanged and still
// describes the old problem.
//
// Refresh exists for warm restarts (core.Engine.Reset): the membership
// lists survive untouched, so slices handed out by the accessor methods
// remain valid, while the cost views pick up p's values. It must not run
// concurrently with readers.
func (ix *Index) Refresh(p *Problem) error {
	old := ix.p
	switch {
	case len(p.Flows) != len(old.Flows):
		return fmt.Errorf("model: refresh: flow count %d != %d", len(p.Flows), len(old.Flows))
	case len(p.Nodes) != len(old.Nodes):
		return fmt.Errorf("model: refresh: node count %d != %d", len(p.Nodes), len(old.Nodes))
	case len(p.Links) != len(old.Links):
		return fmt.Errorf("model: refresh: link count %d != %d", len(p.Links), len(old.Links))
	case len(p.Classes) != len(old.Classes):
		return fmt.Errorf("model: refresh: class count %d != %d", len(p.Classes), len(old.Classes))
	}
	for j := range p.Classes {
		c, oc := &p.Classes[j], &old.Classes[j]
		if c.Flow != oc.Flow || c.Node != oc.Node {
			return fmt.Errorf("model: refresh: class %d moved (flow %d→%d, node %d→%d)",
				j, oc.Flow, c.Flow, oc.Node, c.Node)
		}
	}
	for b := range p.Nodes {
		if len(p.Nodes[b].FlowCost) != len(ix.flowsByNode[b]) {
			return fmt.Errorf("model: refresh: node %d reaches %d flows, index has %d",
				b, len(p.Nodes[b].FlowCost), len(ix.flowsByNode[b]))
		}
		for _, i := range ix.flowsByNode[b] {
			if _, ok := p.Nodes[b].FlowCost[i]; !ok {
				return fmt.Errorf("model: refresh: node %d lost flow %d", b, i)
			}
		}
	}
	for l := range p.Links {
		if len(p.Links[l].FlowCost) != len(ix.flowsByLink[l]) {
			return fmt.Errorf("model: refresh: link %d carries %d flows, index has %d",
				l, len(p.Links[l].FlowCost), len(ix.flowsByLink[l]))
		}
		for _, i := range ix.flowsByLink[l] {
			if _, ok := p.Links[l].FlowCost[i]; !ok {
				return fmt.Errorf("model: refresh: link %d lost flow %d", l, i)
			}
		}
	}

	for b := range p.Nodes {
		costs := ix.flowCostByNode[b]
		for k, i := range ix.flowsByNode[b] {
			costs[k] = p.Nodes[b].FlowCost[i]
		}
	}
	for l := range p.Links {
		costs := ix.flowCostByLink[l]
		for k, i := range ix.flowsByLink[l] {
			costs[k] = p.Links[l].FlowCost[i]
		}
	}
	for i := range p.Flows {
		fid := FlowID(i)
		ncosts := ix.nodeCostByFlow[i]
		for k, b := range ix.nodesByFlow[i] {
			ncosts[k] = p.Nodes[b].FlowCost[fid]
		}
		lcosts := ix.linkCostByFlow[i]
		for k, l := range ix.linksByFlow[i] {
			lcosts[k] = p.Links[l].FlowCost[fid]
		}
	}
	ix.p = p
	return nil
}

// ClassesByFlow returns C_i, the classes consuming flow i.
func (ix *Index) ClassesByFlow(i FlowID) []ClassID { return ix.classesByFlow[i] }

// ClassesByNode returns nodeClasses(b), the classes attached at node b.
func (ix *Index) ClassesByNode(b NodeID) []ClassID { return ix.classesByNode[b] }

// FlowsByNode returns nodeMap(b), the flows reaching node b.
func (ix *Index) FlowsByNode(b NodeID) []FlowID { return ix.flowsByNode[b] }

// FlowsByLink returns linkMap(l), the flows traversing link l.
func (ix *Index) FlowsByLink(l LinkID) []FlowID { return ix.flowsByLink[l] }

// NodesByFlow returns B_i, the nodes reached by flow i.
func (ix *Index) NodesByFlow(i FlowID) []NodeID { return ix.nodesByFlow[i] }

// LinksByFlow returns L_i, the links traversed by flow i.
func (ix *Index) LinksByFlow(i FlowID) []LinkID { return ix.linksByFlow[i] }

// FlowCostsByNode returns the F_{b,i} coefficients aligned with
// FlowsByNode(b): FlowCostsByNode(b)[k] is the cost of FlowsByNode(b)[k].
func (ix *Index) FlowCostsByNode(b NodeID) []float64 { return ix.flowCostByNode[b] }

// FlowCostsByLink returns the L_{l,i} coefficients aligned with
// FlowsByLink(l).
func (ix *Index) FlowCostsByLink(l LinkID) []float64 { return ix.flowCostByLink[l] }

// NodeCostsByFlow returns the F_{b,i} coefficients aligned with
// NodesByFlow(i).
func (ix *Index) NodeCostsByFlow(i FlowID) []float64 { return ix.nodeCostByFlow[i] }

// LinkCostsByFlow returns the L_{l,i} coefficients aligned with
// LinksByFlow(i).
func (ix *Index) LinkCostsByFlow(i FlowID) []float64 { return ix.linkCostByFlow[i] }

// ClassesByFlowNode returns, aligned with NodesByFlow(i), the classes
// consuming flow i attached at each of those nodes (ascending class order).
func (ix *Index) ClassesByFlowNode(i FlowID) [][]ClassID { return ix.classesByFlowNode[i] }
