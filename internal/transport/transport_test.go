package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// networkFactories lets every behavioral test run against both transports.
var networkFactories = map[string]func() Network{
	"memory": func() Network { return NewMemory() },
	"tcp":    func() Network { return NewTCP() },
}

func recvOne(t *testing.T, ep Endpoint) Message {
	t.Helper()
	select {
	case m, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	return Message{}
}

func TestSendReceive(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()

			a, err := net.Endpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := net.Endpoint("b")
			if err != nil {
				t.Fatal(err)
			}

			msg, err := Encode("a", "b", "greet", map[string]int{"x": 7})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Send(msg); err != nil {
				t.Fatal(err)
			}
			got := recvOne(t, b)
			if got.From != "a" || got.To != "b" || got.Kind != "greet" {
				t.Errorf("got %+v", got)
			}
			var body map[string]int
			if err := Decode(got, &body); err != nil {
				t.Fatal(err)
			}
			if body["x"] != 7 {
				t.Errorf("payload = %v", body)
			}
		})
	}
}

func TestBidirectionalAndMultiMessage(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()

			a, _ := net.Endpoint("a")
			b, _ := net.Endpoint("b")

			const n = 100
			for i := 0; i < n; i++ {
				m, _ := Encode("a", "b", "seq", i)
				if err := a.Send(m); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				var got int
				if err := Decode(recvOne(t, b), &got); err != nil {
					t.Fatal(err)
				}
				if got != i {
					t.Fatalf("message %d arrived as %d (order broken)", i, got)
				}
			}

			m, _ := Encode("b", "a", "reply", "pong")
			if err := b.Send(m); err != nil {
				t.Fatal(err)
			}
			var s string
			if err := Decode(recvOne(t, a), &s); err != nil {
				t.Fatal(err)
			}
			if s != "pong" {
				t.Errorf("reply = %q", s)
			}
		})
	}
}

func TestDuplicateEndpointName(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			if _, err := net.Endpoint("x"); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Endpoint("x"); !errors.Is(err, ErrDuplicate) {
				t.Errorf("error = %v, want ErrDuplicate", err)
			}
		})
	}
}

func TestUnknownDestination(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			a, _ := net.Endpoint("a")
			m, _ := Encode("a", "ghost", "k", 1)
			if err := a.Send(m); !errors.Is(err, ErrUnknownDest) {
				t.Errorf("error = %v, want ErrUnknownDest", err)
			}
		})
	}
}

func TestEndpointAfterNetworkClose(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			net.Close()
			if _, err := net.Endpoint("late"); !errors.Is(err, ErrClosed) {
				t.Errorf("error = %v, want ErrClosed", err)
			}
		})
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()

			sink, _ := net.Endpoint("sink")
			const senders, each = 8, 50
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				ep, err := net.Endpoint(fmt.Sprintf("s%d", s))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(ep Endpoint) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						m, _ := Encode(ep.Name(), "sink", "n", i)
						if err := ep.Send(m); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(ep)
			}
			wg.Wait()
			for i := 0; i < senders*each; i++ {
				recvOne(t, sink)
			}
		})
	}
}

func TestMemoryDropRate(t *testing.T) {
	net := NewMemory()
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")
	net.SetDropRate(1.0, 1)

	m, _ := Encode("a", "b", "k", 1)
	if err := a.Send(m); !errors.Is(err, ErrDropped) {
		t.Errorf("error = %v, want ErrDropped", err)
	}
	net.SetDropRate(0, 1)
	if err := a.Send(m); err != nil {
		t.Errorf("send after healing: %v", err)
	}
	recvOne(t, b)
}

func TestMemoryPartition(t *testing.T) {
	net := NewMemory()
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")

	net.SetPartition("a", 1) // b stays in partition 0
	m, _ := Encode("a", "b", "k", 1)
	if err := a.Send(m); !errors.Is(err, ErrDropped) {
		t.Errorf("error = %v, want ErrDropped", err)
	}

	net.ClearPartitions()
	if err := a.Send(m); err != nil {
		t.Errorf("send after healing: %v", err)
	}
	recvOne(t, b)
}

func TestMemoryEndpointCloseReleasesName(t *testing.T) {
	net := NewMemory()
	defer net.Close()
	a, _ := net.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("a"); err != nil {
		t.Errorf("name not released: %v", err)
	}
}

func TestTCPSurvivesPeerRestart(t *testing.T) {
	net := NewTCP()
	defer net.Close()
	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")

	m, _ := Encode("a", "b", "k", 1)
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)

	// Close b: the cached conn in a eventually fails, a drops it, and a
	// send to a fresh endpoint still works.
	bAddr := b.(*tcpEndpoint).Addr()
	_ = bAddr
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Sending may succeed (buffered) or fail; either way it must not hang
	// and must not panic. Drain any error.
	_ = a.Send(m)
	_ = a.Send(m)
}

func TestRecvClosedAfterClose(t *testing.T) {
	for name, mk := range networkFactories {
		t.Run(name, func(t *testing.T) {
			net := mk()
			a, _ := net.Endpoint("a")
			net.Close()
			select {
			case _, ok := <-a.Recv():
				if ok {
					t.Error("unexpected message")
				}
			case <-time.After(5 * time.Second):
				t.Error("Recv not closed after network close")
			}
		})
	}
}

func TestEncodeDecodeErrors(t *testing.T) {
	if _, err := Encode("a", "b", "bad", func() {}); err == nil {
		t.Error("Encode accepted a function")
	}
	var v int
	if err := Decode(Message{Kind: "k", Payload: []byte("{")}, &v); err == nil {
		t.Error("Decode accepted truncated JSON")
	}
}
