// Package utility provides the strictly concave utility functions used to
// express consumer benefit in an event-driven infrastructure, per Section 2.2
// of the LRGP paper (Lumezanu, Bhola, Astley, ICDCS 2006).
//
// A utility function maps a flow rate r (messages per unit time) to the
// benefit one admitted consumer receives at that rate. LRGP requires
// utilities to be increasing, strictly concave and continuously
// differentiable on the rate interval of interest. The paper's evaluation
// uses two families:
//
//   - Log:   rank * log(1 + r)
//   - Power: rank * r^k, with 0 < k < 1
//
// Both are provided here, along with a capped-linear utility useful for
// modeling nearly inelastic consumers, and a serializable Spec form used by
// the model package for JSON round-trips.
package utility

import (
	"fmt"
	"math"
)

// Function is a strictly concave, increasing, continuously differentiable
// utility of a flow rate. Implementations must be usable from multiple
// goroutines concurrently (they are immutable value types).
type Function interface {
	// Value returns U(r). Callers must pass r >= 0.
	Value(r float64) float64
	// Deriv returns U'(r), the marginal utility at rate r. Deriv must be
	// positive and strictly decreasing in r wherever the function is used.
	Deriv(r float64) float64
	// Name returns a short human-readable description, e.g. "20*log(1+r)".
	Name() string
}

// DerivInverter is implemented by utilities whose derivative can be inverted
// in closed form. InvDeriv solves U'(r) = y for r. The LRGP rate-allocation
// step uses this as a fast path; utilities without it fall back to
// bisection.
type DerivInverter interface {
	// InvDeriv returns the r >= 0 with U'(r) = y, for y > 0. If U'(0) < y
	// (no such r), implementations return 0.
	InvDeriv(y float64) float64
}

// Log is the utility Scale * log(Shift + r). The paper uses Shift = 1
// (i.e. rank * log(1+r)); NewLog constructs that common case.
type Log struct {
	Scale float64
	Shift float64
}

var (
	_ Function      = Log{}
	_ DerivInverter = Log{}
)

// NewLog returns the paper's logarithmic utility rank*log(1+r).
func NewLog(rank float64) Log {
	return Log{Scale: rank, Shift: 1}
}

// Value returns Scale * log(Shift + r).
func (u Log) Value(r float64) float64 {
	return u.Scale * math.Log(u.Shift+r)
}

// Deriv returns Scale / (Shift + r).
func (u Log) Deriv(r float64) float64 {
	return u.Scale / (u.Shift + r)
}

// InvDeriv solves Scale/(Shift+r) = y for r.
func (u Log) InvDeriv(y float64) float64 {
	r := u.Scale/y - u.Shift
	if r < 0 {
		return 0
	}
	return r
}

// Name implements Function.
func (u Log) Name() string {
	if u.Shift == 1 {
		return fmt.Sprintf("%g*log(1+r)", u.Scale)
	}
	return fmt.Sprintf("%g*log(%g+r)", u.Scale, u.Shift)
}

// Power is the utility Scale * r^Exponent with 0 < Exponent < 1. The
// paper's evaluation uses Exponent in {0.25, 0.5, 0.75}.
type Power struct {
	Scale    float64
	Exponent float64
}

var (
	_ Function      = Power{}
	_ DerivInverter = Power{}
)

// NewPower returns the paper's power utility rank*r^k.
func NewPower(rank, k float64) Power {
	return Power{Scale: rank, Exponent: k}
}

// Value returns Scale * r^Exponent.
func (u Power) Value(r float64) float64 {
	return u.Scale * math.Pow(r, u.Exponent)
}

// Deriv returns Scale * Exponent * r^(Exponent-1). The derivative diverges
// as r -> 0; callers in this repository only evaluate it at r >= r^min > 0.
func (u Power) Deriv(r float64) float64 {
	return u.Scale * u.Exponent * math.Pow(r, u.Exponent-1)
}

// InvDeriv solves Scale*Exponent*r^(Exponent-1) = y for r.
func (u Power) InvDeriv(y float64) float64 {
	// r^(k-1) = y / (scale*k)  =>  r = (y/(scale*k))^(1/(k-1)).
	return math.Pow(y/(u.Scale*u.Exponent), 1/(u.Exponent-1))
}

// Name implements Function.
func (u Power) Name() string {
	return fmt.Sprintf("%g*r^%g", u.Scale, u.Exponent)
}

// Hyperbolic is the latency-oriented utility Scale * r / (HalfRate + r):
// it rises from 0, reaches half of Scale at r = HalfRate, and saturates at
// Scale. The paper's footnote 1 notes utility can equivalently be defined
// over latency, since rate changes correspond directly to latency changes;
// with end-to-end latency proportional to 1/r, this function is exactly
// Scale * (1 - normalizedLatency), making it the natural family for
// latency-sensitive consumers.
type Hyperbolic struct {
	Scale    float64
	HalfRate float64
}

var (
	_ Function      = Hyperbolic{}
	_ DerivInverter = Hyperbolic{}
)

// Value returns Scale * r / (HalfRate + r).
func (u Hyperbolic) Value(r float64) float64 {
	return u.Scale * r / (u.HalfRate + r)
}

// Deriv returns Scale * HalfRate / (HalfRate + r)^2.
func (u Hyperbolic) Deriv(r float64) float64 {
	d := u.HalfRate + r
	return u.Scale * u.HalfRate / (d * d)
}

// InvDeriv solves Scale*HalfRate/(HalfRate+r)^2 = y for r.
func (u Hyperbolic) InvDeriv(y float64) float64 {
	r := math.Sqrt(u.Scale*u.HalfRate/y) - u.HalfRate
	if r < 0 {
		return 0
	}
	return r
}

// Name implements Function.
func (u Hyperbolic) Name() string {
	return fmt.Sprintf("%g*r/(%g+r)", u.Scale, u.HalfRate)
}

// LinearCap is a smoothed capped-linear utility approximating a nearly
// inelastic consumer: utility grows almost linearly with slope Scale up to
// about Knee, then saturates. It is implemented as
//
//	U(r) = Scale * Knee * (1 - exp(-r/Knee))
//
// which is strictly concave and increasing everywhere, with U'(0) = Scale
// and U'(r) -> 0 as r grows, so it satisfies LRGP's requirements while
// modeling "most of the value arrives by rate Knee".
type LinearCap struct {
	Scale float64
	Knee  float64
}

var (
	_ Function      = LinearCap{}
	_ DerivInverter = LinearCap{}
)

// Value implements Function.
func (u LinearCap) Value(r float64) float64 {
	return u.Scale * u.Knee * (1 - math.Exp(-r/u.Knee))
}

// Deriv returns Scale * exp(-r/Knee).
func (u LinearCap) Deriv(r float64) float64 {
	return u.Scale * math.Exp(-r/u.Knee)
}

// InvDeriv solves Scale*exp(-r/Knee) = y for r.
func (u LinearCap) InvDeriv(y float64) float64 {
	if y >= u.Scale {
		return 0
	}
	return -u.Knee * math.Log(y/u.Scale)
}

// Name implements Function.
func (u LinearCap) Name() string {
	return fmt.Sprintf("%g*%g*(1-exp(-r/%g))", u.Scale, u.Knee, u.Knee)
}
