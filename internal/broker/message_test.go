package broker

import "testing"

func msgWith(attrs map[string]float64) Message {
	return Message{Attrs: attrs}
}

func TestAttrFilter(t *testing.T) {
	tests := []struct {
		name   string
		filter AttrFilter
		attrs  map[string]float64
		want   bool
	}{
		{"gt pass", AttrFilter{"price", CmpGT, 80}, map[string]float64{"price": 81}, true},
		{"gt fail", AttrFilter{"price", CmpGT, 80}, map[string]float64{"price": 80}, false},
		{"ge pass", AttrFilter{"price", CmpGE, 80}, map[string]float64{"price": 80}, true},
		{"lt pass", AttrFilter{"price", CmpLT, 80}, map[string]float64{"price": 79}, true},
		{"lt fail", AttrFilter{"price", CmpLT, 80}, map[string]float64{"price": 80}, false},
		{"le pass", AttrFilter{"price", CmpLE, 80}, map[string]float64{"price": 80}, true},
		{"eq pass", AttrFilter{"price", CmpEQ, 80}, map[string]float64{"price": 80}, true},
		{"eq fail", AttrFilter{"price", CmpEQ, 80}, map[string]float64{"price": 80.1}, false},
		{"missing attr", AttrFilter{"price", CmpGT, 0}, map[string]float64{"qty": 5}, false},
		{"nil attrs", AttrFilter{"price", CmpGT, 0}, nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.filter.Match(msgWith(tt.attrs)); got != tt.want {
				t.Errorf("Match = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBadOperator(t *testing.T) {
	f := AttrFilter{"x", Cmp(0), 1}
	if f.Match(msgWith(map[string]float64{"x": 1})) {
		t.Error("invalid operator matched")
	}
	if got := Cmp(0).String(); got != "?" {
		t.Errorf("Cmp(0) = %q", got)
	}
}

func TestMatchAll(t *testing.T) {
	if !(MatchAll{}).Match(Message{}) {
		t.Error("MatchAll rejected a message")
	}
	if (MatchAll{}).String() != "true" {
		t.Error("MatchAll string")
	}
}

func TestAnd(t *testing.T) {
	f := And{
		AttrFilter{"price", CmpGT, 80},
		AttrFilter{"qty", CmpLE, 10},
	}
	if !f.Match(msgWith(map[string]float64{"price": 90, "qty": 10})) {
		t.Error("conjunction rejected a passing message")
	}
	if f.Match(msgWith(map[string]float64{"price": 90, "qty": 11})) {
		t.Error("conjunction passed a failing message")
	}
	if got := f.String(); got != "(price > 80 && qty <= 10)" {
		t.Errorf("String = %q", got)
	}
}

func TestDropAttrs(t *testing.T) {
	tr := DropAttrs{"secret", "internal"}
	m := tr.Apply(msgWith(map[string]float64{"secret": 1, "price": 2}))
	if _, ok := m.Attrs["secret"]; ok {
		t.Error("secret not dropped")
	}
	if m.Attrs["price"] != 2 {
		t.Error("price lost")
	}
}

func TestAnnotate(t *testing.T) {
	m := (Annotate{Attr: "tier", Value: 2}).Apply(Message{})
	if m.Attrs["tier"] != 2 {
		t.Errorf("attrs = %v", m.Attrs)
	}
	m = (Annotate{Attr: "price", Value: 9}).Apply(msgWith(map[string]float64{"price": 1}))
	if m.Attrs["price"] != 9 {
		t.Error("overwrite failed")
	}
}

func TestIdentity(t *testing.T) {
	in := msgWith(map[string]float64{"a": 1})
	if got := (Identity{}).Apply(in); got.Attrs["a"] != 1 {
		t.Error("identity changed the message")
	}
}

func TestFilterStrings(t *testing.T) {
	if got := (AttrFilter{"price", CmpGE, 80}).String(); got != "price >= 80" {
		t.Errorf("String = %q", got)
	}
	if got := (DropAttrs{"x"}).String(); got != "drop[x]" {
		t.Errorf("String = %q", got)
	}
	if got := (Annotate{"t", 1}).String(); got != "set t=1" {
		t.Errorf("String = %q", got)
	}
	if got := (Identity{}).String(); got != "identity" {
		t.Errorf("String = %q", got)
	}
}
