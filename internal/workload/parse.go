package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/model"
)

// ErrUnknownWorkload is returned by Parse for unrecognized names.
var ErrUnknownWorkload = errors.New("workload: unknown workload")

// Parse resolves a command-line workload specifier:
//
//   - "base" — the Table 1 workload;
//   - "tiny" — the brute-forceable instance;
//   - "metro" — the full metro-scale pod workload (10k flows, 100k nodes,
//     1M classes; see Metro);
//   - "metro-small" — the CI-sized metro slice (see MetroSmall);
//   - "<F>f-<N>n" — a scaled workload with F flows and N consumer nodes
//     (F a multiple of 6, N a multiple of 3*F/6), e.g. "12f-6n", "6f-24n";
//   - "@path.json" — a problem loaded from a JSON file.
//
// shape selects the utility family for the generated workloads (ignored
// for JSON files); pass 0 for the default logarithmic shape.
func Parse(spec string, shape Shape) (*model.Problem, error) {
	if shape == 0 {
		shape = ShapeLog
	}
	switch {
	case spec == "" || spec == "base":
		return Scaled(Config{Shape: shape}), nil
	case spec == "tiny":
		return Tiny(), nil
	case spec == "metro":
		return Metro(), nil
	case spec == "metro-small":
		return MetroSmall(), nil
	case strings.HasPrefix(spec, "@"):
		return loadJSON(spec[1:])
	}

	var nFlows, nNodes int
	if _, err := fmt.Sscanf(spec, "%df-%dn", &nFlows, &nNodes); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorkload, spec)
	}
	if nFlows <= 0 || nFlows%baseFlowCount != 0 {
		return nil, fmt.Errorf("%w: flow count %d must be a positive multiple of %d",
			ErrUnknownWorkload, nFlows, baseFlowCount)
	}
	flowCopies := nFlows / baseFlowCount
	if nNodes <= 0 || nNodes%(3*flowCopies) != 0 {
		return nil, fmt.Errorf("%w: node count %d must be a positive multiple of %d for %d flows",
			ErrUnknownWorkload, nNodes, 3*flowCopies, nFlows)
	}
	return Scaled(Config{
		Shape:         shape,
		FlowCopies:    flowCopies,
		NodeSetCopies: nNodes / (3 * flowCopies),
	}), nil
}

// ParseShape resolves a command-line shape name: "log", "r0.25", "r0.5",
// "r0.75".
func ParseShape(name string) (Shape, error) {
	switch name {
	case "", "log":
		return ShapeLog, nil
	case "r0.25":
		return ShapePow25, nil
	case "r0.5":
		return ShapePow50, nil
	case "r0.75":
		return ShapePow75, nil
	default:
		return 0, fmt.Errorf("workload: unknown shape %q (want log, r0.25, r0.5, r0.75)", name)
	}
}

func loadJSON(path string) (*model.Problem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	var p model.Problem
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("workload: parse %s: %w", path, err)
	}
	if err := model.Validate(&p); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return &p, nil
}
