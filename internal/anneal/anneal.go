// Package anneal implements the centralized simulated-annealing baseline of
// Section 4.4 of the LRGP paper, used to assess the quality of LRGP's
// solutions.
//
// The state space is a full allocation (one rate per flow, one admitted
// population per class); the energy is the negated total utility; moves
// perturb a single rate or a single population and are rejected when they
// violate any constraint of Section 2. The cooling schedule follows the
// paper: a start temperature from {5, 10, 50, 100}, geometric cooling by
// 0.999 per round until the temperature reaches 1, and a total step budget
// divided equally among rounds.
package anneal

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/model"
)

// Paper cooling-schedule constants.
const (
	// DefaultCoolRate multiplies the temperature each round.
	DefaultCoolRate = 0.999
	// DefaultMinTemp ends the schedule.
	DefaultMinTemp = 1.0
	// DefaultStartTemp is the lowest of the paper's start temperatures.
	DefaultStartTemp = 5.0
	// DefaultMaxSteps is a laptop-friendly budget; the paper sweeps
	// {1e6, 1e7, 1e8}.
	DefaultMaxSteps = 1_000_000
)

// StartTemps are the four start temperatures the paper evaluates.
var StartTemps = []float64{5, 10, 50, 100}

// ErrInfeasibleStart is returned when even the minimal state (all rates at
// r^min, no consumers) violates a constraint, leaving annealing nowhere to
// begin.
var ErrInfeasibleStart = errors.New("anneal: minimal state infeasible")

// Config tunes a simulated-annealing run. The zero value is normalized to
// the defaults above with seed 1.
type Config struct {
	// StartTemp is the initial temperature (default DefaultStartTemp).
	StartTemp float64
	// CoolRate is the per-round multiplier (default DefaultCoolRate).
	CoolRate float64
	// MinTemp ends the schedule (default DefaultMinTemp).
	MinTemp float64
	// MaxSteps is the total step budget across all rounds (default
	// DefaultMaxSteps).
	MaxSteps int
	// Seed seeds the move generator (default 1).
	Seed int64
	// RateStep is the maximum rate perturbation as a fraction of the
	// flow's rate range (default 0.1).
	RateStep float64
	// PopStep is the maximum population perturbation as a fraction of the
	// class's n^max, never below 1 consumer (default 0.05).
	PopStep float64
	// RateMoveProb is the probability a proposal perturbs a flow rate
	// rather than a class population (default 0.5). Population-heavy
	// mixes (e.g. 0.2) help the walk anchor populations before rates
	// drift into the expensive high-rate region of the nonconvex
	// landscape.
	RateMoveProb float64
}

func (c Config) normalized() Config {
	if c.StartTemp <= 0 {
		c.StartTemp = DefaultStartTemp
	}
	if c.CoolRate <= 0 || c.CoolRate >= 1 {
		c.CoolRate = DefaultCoolRate
	}
	if c.MinTemp <= 0 {
		c.MinTemp = DefaultMinTemp
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RateStep <= 0 {
		c.RateStep = 0.1
	}
	if c.PopStep <= 0 {
		c.PopStep = 0.05
	}
	if c.RateMoveProb <= 0 || c.RateMoveProb > 1 {
		c.RateMoveProb = 0.5
	}
	return c
}

// Rounds returns the number of temperature rounds the schedule will run:
// the count of multiplications by CoolRate needed to bring StartTemp to or
// below MinTemp.
func (c Config) Rounds() int {
	cfg := c.normalized()
	if cfg.StartTemp <= cfg.MinTemp {
		return 1
	}
	return int(math.Ceil(math.Log(cfg.MinTemp/cfg.StartTemp)/math.Log(cfg.CoolRate))) + 1
}

// Result reports a completed annealing run.
type Result struct {
	// BestUtility is the highest total utility visited.
	BestUtility float64
	// Best is the allocation achieving BestUtility.
	Best model.Allocation
	// FinalUtility is the utility of the state where the walk ended.
	FinalUtility float64
	// Steps is the number of proposed moves.
	Steps int
	// Accepted counts accepted moves; Improved counts strict improvements.
	Accepted, Improved int
	// Rounds is the number of temperature rounds executed.
	Rounds int
	// Runtime is the wall-clock duration of the run.
	Runtime time.Duration
}

// state carries the incremental bookkeeping that makes move evaluation
// O(affected resources) instead of O(problem).
type state struct {
	p  *model.Problem
	ix *model.Index

	alloc    model.Allocation
	utility  float64
	nodeUsed []float64
	linkUsed []float64
}

func newState(p *model.Problem, ix *model.Index) (*state, error) {
	s := &state{
		p:        p,
		ix:       ix,
		alloc:    model.NewAllocation(p),
		nodeUsed: make([]float64, len(p.Nodes)),
		linkUsed: make([]float64, len(p.Links)),
	}
	for b := range p.Nodes {
		s.nodeUsed[b] = model.NodeUsage(p, ix, s.alloc, model.NodeID(b))
		if s.nodeUsed[b] > p.Nodes[b].Capacity {
			return nil, fmt.Errorf("%w: node %d needs %g > capacity %g at minimal rates",
				ErrInfeasibleStart, b, s.nodeUsed[b], p.Nodes[b].Capacity)
		}
	}
	for l := range p.Links {
		s.linkUsed[l] = model.LinkUsage(p, ix, s.alloc, model.LinkID(l))
		if s.linkUsed[l] > p.Links[l].Capacity {
			return nil, fmt.Errorf("%w: link %d needs %g > capacity %g at minimal rates",
				ErrInfeasibleStart, l, s.linkUsed[l], p.Links[l].Capacity)
		}
	}
	s.utility = model.TotalUtility(p, s.alloc)
	return s, nil
}

// tryRate evaluates changing flow i's rate to r. It returns the utility
// delta and feasible=false (without mutating) if any touched resource would
// overflow; on feasible=true the caller decides acceptance and then must
// call applyRate or nothing.
func (s *state) tryRate(i model.FlowID, r float64) (du float64, feasible bool) {
	old := s.alloc.Rates[i]
	f := &s.p.Flows[i]
	if r < f.RateMin || r > f.RateMax {
		return 0, false
	}
	dr := r - old

	for _, l := range s.ix.LinksByFlow(i) {
		if s.linkUsed[l]+s.p.Links[l].FlowCost[i]*dr > s.p.Links[l].Capacity {
			return 0, false
		}
	}
	for _, b := range s.ix.NodesByFlow(i) {
		if s.nodeUsed[b]+s.nodeRateCoeff(b, i)*dr > s.p.Nodes[b].Capacity {
			return 0, false
		}
	}
	for _, cid := range s.ix.ClassesByFlow(i) {
		c := &s.p.Classes[cid]
		if n := s.alloc.Consumers[cid]; n > 0 {
			du += float64(n) * (c.Utility.Value(r) - c.Utility.Value(old))
		}
	}
	return du, true
}

// applyRate commits a rate change previously vetted by tryRate.
func (s *state) applyRate(i model.FlowID, r, du float64) {
	old := s.alloc.Rates[i]
	dr := r - old
	for _, l := range s.ix.LinksByFlow(i) {
		s.linkUsed[l] += s.p.Links[l].FlowCost[i] * dr
	}
	for _, b := range s.ix.NodesByFlow(i) {
		s.nodeUsed[b] += s.nodeRateCoeff(b, i) * dr
	}
	s.alloc.Rates[i] = r
	s.utility += du
}

// nodeRateCoeff is d(nodeUsage_b)/d(r_i): F_{b,i} plus the consumer terms
// of flow i's classes at b.
func (s *state) nodeRateCoeff(b model.NodeID, i model.FlowID) float64 {
	coeff := s.p.Nodes[b].FlowCost[i]
	for _, cid := range s.ix.ClassesByNode(b) {
		c := &s.p.Classes[cid]
		if c.Flow == i {
			coeff += c.CostPerConsumer * float64(s.alloc.Consumers[cid])
		}
	}
	return coeff
}

// tryPop evaluates changing class j's population to n.
func (s *state) tryPop(j model.ClassID, n int) (du float64, feasible bool) {
	c := &s.p.Classes[j]
	if n < 0 || n > c.MaxConsumers {
		return 0, false
	}
	old := s.alloc.Consumers[j]
	r := s.alloc.Rates[c.Flow]
	dUse := c.CostPerConsumer * float64(n-old) * r
	if s.nodeUsed[c.Node]+dUse > s.p.Nodes[c.Node].Capacity {
		return 0, false
	}
	return float64(n-old) * c.Utility.Value(r), true
}

// applyPop commits a population change previously vetted by tryPop.
func (s *state) applyPop(j model.ClassID, n int, du float64) {
	c := &s.p.Classes[j]
	old := s.alloc.Consumers[j]
	r := s.alloc.Rates[c.Flow]
	s.nodeUsed[c.Node] += c.CostPerConsumer * float64(n-old) * r
	s.alloc.Consumers[j] = n
	s.utility += du
}

// Solve runs simulated annealing on the problem and returns the best
// allocation found. The problem must validate.
func Solve(p *model.Problem, cfg Config) (Result, error) {
	if err := model.Validate(p); err != nil {
		return Result{}, fmt.Errorf("anneal: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)
	s, err := newState(p, ix)
	if err != nil {
		return Result{}, err
	}

	rng := rand.New(rand.NewSource(c.Seed))
	rounds := c.Rounds()
	stepsPerRound := c.MaxSteps / rounds
	if stepsPerRound < 1 {
		stepsPerRound = 1
	}

	res := Result{
		BestUtility: s.utility,
		Best:        s.alloc.Clone(),
	}
	start := time.Now()

	temp := c.StartTemp
	for round := 0; round < rounds; round++ {
		for step := 0; step < stepsPerRound; step++ {
			res.Steps++
			du, commit := s.propose(rng, c)
			if commit == nil {
				continue // infeasible proposal
			}
			if du > 0 || rng.Float64() < math.Exp(du/temp) {
				commit()
				res.Accepted++
				if du > 0 {
					res.Improved++
				}
				if s.utility > res.BestUtility {
					res.BestUtility = s.utility
					res.Best = s.alloc.Clone()
				}
			}
		}
		temp *= c.CoolRate
	}

	res.FinalUtility = s.utility
	res.Rounds = rounds
	res.Runtime = time.Since(start)
	return res, nil
}

// propose draws one candidate move. It returns the utility delta and a
// commit closure, or nil when the move is infeasible.
func (s *state) propose(rng *rand.Rand, c Config) (float64, func()) {
	if rng.Float64() < c.RateMoveProb {
		i := model.FlowID(rng.Intn(len(s.p.Flows)))
		f := &s.p.Flows[i]
		span := (f.RateMax - f.RateMin) * c.RateStep
		r := s.alloc.Rates[i] + (rng.Float64()*2-1)*span
		if r < f.RateMin {
			r = f.RateMin
		}
		if r > f.RateMax {
			r = f.RateMax
		}
		du, ok := s.tryRate(i, r)
		if !ok {
			return 0, nil
		}
		return du, func() { s.applyRate(i, r, du) }
	}

	j := model.ClassID(rng.Intn(len(s.p.Classes)))
	cl := &s.p.Classes[j]
	span := int(float64(cl.MaxConsumers) * c.PopStep)
	if span < 1 {
		span = 1
	}
	n := s.alloc.Consumers[j] + rng.Intn(2*span+1) - span
	if n < 0 {
		n = 0
	}
	if n > cl.MaxConsumers {
		n = cl.MaxConsumers
	}
	du, ok := s.tryPop(j, n)
	if !ok {
		return 0, nil
	}
	return du, func() { s.applyPop(j, n, du) }
}

// SolveBestOf runs Solve once per start temperature and returns the best
// result together with the winning temperature, mirroring the paper's
// "best of twelve runs" methodology (the step budgets are supplied by the
// caller).
func SolveBestOf(p *model.Problem, cfg Config, startTemps []float64) (Result, float64, error) {
	if len(startTemps) == 0 {
		startTemps = StartTemps
	}
	var (
		best     Result
		bestTemp float64
		found    bool
	)
	for _, temp := range startTemps {
		c := cfg
		c.StartTemp = temp
		r, err := Solve(p, c)
		if err != nil {
			return Result{}, 0, err
		}
		if !found || r.BestUtility > best.BestUtility {
			best, bestTemp, found = r, temp, true
		}
	}
	return best, bestTemp, nil
}
