package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSnapshot(t *testing.T) {
	p := workload.WithLinkBottlenecks(workload.Base(), 0.5)
	e, err := NewEngine(p, Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Solve(100)
	e.SetFlowActive(5, false)
	e.Step()

	s := e.Snapshot()
	if s.Iteration != e.Iteration() {
		t.Errorf("iteration = %d, want %d", s.Iteration, e.Iteration())
	}
	if s.Utility != e.Utility() {
		t.Errorf("utility = %g, want %g", s.Utility, e.Utility())
	}
	if len(s.NodeUsage) != len(p.Nodes) || len(s.LinkUsage) != len(p.Links) {
		t.Fatalf("shape: %d nodes, %d links", len(s.NodeUsage), len(s.LinkUsage))
	}
	for b := range p.Nodes {
		if s.NodeCapacity[b] != p.Nodes[b].Capacity {
			t.Errorf("node %d capacity %g", b, s.NodeCapacity[b])
		}
		if s.NodeUsage[b] < 0 || s.NodeUsage[b] > s.NodeCapacity[b]*1.5 {
			t.Errorf("node %d usage %g implausible", b, s.NodeUsage[b])
		}
	}
	if s.FlowActive[5] {
		t.Error("flow 5 reported active after removal")
	}
	if !s.FlowActive[0] {
		t.Error("flow 0 reported inactive")
	}

	// Snapshot slices are copies.
	s.NodePrices[0] = -99
	s.FlowActive[0] = false
	if e.NodePrices()[0] == -99 {
		t.Error("NodePrices aliases engine state")
	}
	if !e.FlowActive(0) {
		t.Error("FlowActive aliases engine state")
	}
}

// TestSnapshotString checks the one-line summary: iteration, utility,
// peak loads, and the workers/sharded execution mode.
func TestSnapshotString(t *testing.T) {
	p := workload.WithLinkBottlenecks(workload.Base(), 0.5)
	e, err := NewEngine(p, Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.Solve(50)

	got := e.Snapshot().String()
	for _, want := range []string{"iter=50", "utility=", "peak-node-load=", "peak-link-load=", "workers=1 (serial)"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}

	sharded := Snapshot{Iteration: 3, Utility: 12.5, Workers: 8, Sharded: true}
	if s := sharded.String(); !strings.Contains(s, "workers=8 (sharded)") {
		t.Errorf("sharded String() = %q", s)
	}
	// No usable capacities → no load terms rather than NaN/Inf noise.
	empty := Snapshot{NodeUsage: []float64{1}, NodeCapacity: []float64{0}}
	if s := empty.String(); strings.Contains(s, "load") {
		t.Errorf("zero-capacity String() = %q, want no load terms", s)
	}
}
