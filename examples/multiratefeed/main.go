// Multirate feed: the paper's deferred future work (Section 5) in action.
//
// One feed serves 20 premium analytics engines that want every message and
// 10,000 dashboards that refresh a few times a second at most. Single-rate
// LRGP must pick one rate for everyone; the multirate extension gives the
// premium class the full stream and thins the dashboard stream, and the
// broker enacts the split with per-class rate caps.
//
//	go run ./examples/multiratefeed
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/multirate"
	"repro/internal/workload"
)

func main() {
	p := workload.Heterogeneous()

	// Single-rate LRGP for comparison.
	single, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	sres := single.Solve(600)

	// Multirate LRGP.
	multi, err := multirate.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		log.Fatal(err)
	}
	mres := multi.Solve(600)
	a := mres.Allocation

	fmt.Printf("single-rate: utility %7.0f at one rate %.0f msg/s for everyone\n",
		sres.Utility, sres.Allocation.Rates[0])
	fmt.Printf("multirate:   utility %7.0f (%+.1f%%)\n",
		mres.Utility, 100*(mres.Utility-sres.Utility)/sres.Utility)
	fmt.Printf("  source rate      %6.0f msg/s\n", a.SourceRates[0])
	fmt.Printf("  premium delivery %6.0f msg/s (%d/%d admitted)\n",
		a.Delivery[0], a.Consumers[0], p.Classes[0].MaxConsumers)
	fmt.Printf("  dashboards       %6.1f msg/s (%d/%d admitted)\n",
		a.Delivery[1], a.Consumers[1], p.Classes[1].MaxConsumers)

	// Enact in a broker and stream one simulated minute of traffic.
	clock := time.Date(2026, 7, 4, 14, 0, 0, 0, time.UTC)
	b, err := broker.New(p, broker.WithClock(func() time.Time { return clock }))
	if err != nil {
		log.Fatal(err)
	}
	var premiumGot, dashGot int
	if _, err := b.AttachConsumer(0, nil, func(broker.Message) { premiumGot++ }); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AttachConsumer(1, nil, func(broker.Message) { dashGot++ }); err != nil {
		log.Fatal(err)
	}
	enact := a
	if enact.Consumers[0] == 0 {
		enact.Consumers[0] = 1
	}
	if enact.Consumers[1] == 0 {
		enact.Consumers[1] = 1
	}
	if err := multirate.Enact(b, enact); err != nil {
		log.Fatal(err)
	}

	producer, err := b.RegisterProducer(0)
	if err != nil {
		log.Fatal(err)
	}
	interval := time.Duration(float64(time.Second) / a.SourceRates[0])
	published := 0
	for i := 0; i < int(60*a.SourceRates[0]); i++ {
		clock = clock.Add(interval)
		if err := producer.Publish(map[string]float64{"v": float64(i)}, "tick"); err == nil {
			published++
		}
	}
	stats, _ := b.ClassStats(1)
	fmt.Printf("\none simulated minute: published %d messages\n", published)
	fmt.Printf("  one premium consumer received %d (full stream)\n", premiumGot)
	fmt.Printf("  one dashboard received %d (thinned; %d dropped by its rate cap)\n",
		dashGot, stats.Thinned)
}
