// Latest price: the second motivating scenario of the paper (Section 1.1).
//
// An application publishes the latest price of a stock. Public consumers
// subscribe with content filters (e.g. "price > 80") and the flow is very
// elastic: under resource pressure the system can lower the update
// frequency (raising latency) instead of — or in addition to — denying
// service. This example runs the optimizer across a load sweep and then
// pushes a price series through the broker to show filtering in action.
//
//	go run ./examples/latestprice
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

// buildProblem models one elastic price flow and `demand` interested
// consumers split across two filter populations on one node.
func buildProblem(demand int) *model.Problem {
	return &model.Problem{
		Name: "latest-price",
		Flows: []model.Flow{
			{ID: 0, Name: "ibm-px", Source: 0, RateMin: 1, RateMax: 200},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "edge", Capacity: 300_000, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			// Chart watchers: want every tick they can get (elastic log).
			{ID: 0, Name: "chart", Flow: 0, Node: 0, MaxConsumers: demand,
				CostPerConsumer: 19, Utility: utility.NewLog(8)},
			// Alert watchers: a few updates per second suffice (steeper
			// early utility: higher rank, same family).
			{ID: 1, Name: "alert", Flow: 0, Node: 0, MaxConsumers: demand / 2,
				CostPerConsumer: 19, Utility: utility.NewLog(20)},
		},
	}
}

func main() {
	fmt.Println("Latest-price scenario: elastic rate absorbs rising demand.")
	fmt.Println()
	fmt.Println("demand   rate(msg/s)  chart-admitted  alert-admitted  utility")

	var last *core.Result
	var lastProblem *model.Problem
	for _, demand := range []int{200, 1000, 4000, 16000} {
		p := buildProblem(demand)
		e, err := core.NewEngine(p, core.Config{Adaptive: true})
		if err != nil {
			log.Fatal(err)
		}
		res := e.Solve(500)
		fmt.Printf("%6d   %11.1f  %8d/%-6d %8d/%-6d %8.0f\n",
			demand, res.Allocation.Rates[0],
			res.Allocation.Consumers[0], demand,
			res.Allocation.Consumers[1], demand/2,
			res.Utility)
		last, lastProblem = &res, p
	}

	fmt.Println()
	fmt.Println("As demand grows the optimizer lowers the update rate (latency rises)")
	fmt.Println("before it starts denying consumers — the flow is elastic.")
	fmt.Println()

	// Enact the final allocation and stream a price series through
	// consumer filters. A manual clock advances one second per tick so
	// the stream stays inside the enforced rate (the tradedata example
	// and cmd/lrgp-broker demonstrate throttling itself).
	now := time.Date(2026, 7, 4, 9, 30, 0, 0, time.UTC)
	b, err := broker.New(lastProblem, broker.WithClock(func() time.Time { return now }))
	if err != nil {
		log.Fatal(err)
	}
	above80 := 0
	cross := 0
	if _, err := b.AttachConsumer(0, broker.AttrFilter{Attr: "price", Op: broker.CmpGT, Value: 80},
		func(broker.Message) { above80++ }); err != nil {
		log.Fatal(err)
	}
	if _, err := b.AttachConsumer(1, broker.And{
		broker.AttrFilter{Attr: "price", Op: broker.CmpGE, Value: 84},
		broker.AttrFilter{Attr: "delta", Op: broker.CmpGT, Value: 0},
	}, func(broker.Message) { cross++ }); err != nil {
		log.Fatal(err)
	}
	// Admit the two demo consumers alongside the optimizer's counts.
	alloc := last.Allocation.Clone()
	if alloc.Consumers[0] == 0 {
		alloc.Consumers[0] = 1
	}
	if alloc.Consumers[1] == 0 {
		alloc.Consumers[1] = 1
	}
	if err := b.ApplyAllocation(alloc); err != nil {
		log.Fatal(err)
	}

	prev := 80.0
	published := 0
	for i := 0; i < 200; i++ {
		now = now.Add(time.Second)
		price := 80 + 6*math.Sin(float64(i)/9)
		if err := b.Publish(0, map[string]float64{
			"price": price,
			"delta": price - prev,
		}, "px"); err == nil {
			published++
		}
		prev = price
	}
	fmt.Printf("streamed %d price ticks: %d passed \"price > 80\", %d passed the\n",
		published, above80, cross)
	fmt.Println(`compound alert filter "price >= 84 && delta > 0".`)
}
