package utility

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestSpecBuildRoundTrip(t *testing.T) {
	fns := []Function{
		NewLog(20),
		Log{Scale: 5, Shift: 2},
		NewPower(15, 0.5),
		LinearCap{Scale: 3, Knee: 50},
		Hyperbolic{Scale: 9, HalfRate: 30},
	}
	for _, fn := range fns {
		spec, ok := SpecOf(fn)
		if !ok {
			t.Fatalf("SpecOf(%s) not serializable", fn.Name())
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", spec, err)
		}
		if back != fn {
			t.Errorf("round trip: got %#v, want %#v", back, fn)
		}
	}
}

func TestSpecBuildDefaultsLogShift(t *testing.T) {
	fn, err := (Spec{Kind: KindLog, Scale: 7}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := fn.(Log).Shift; got != 1 {
		t.Errorf("default shift = %g, want 1", got)
	}
}

func TestSpecBuildErrors(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		want error
	}{
		{"unknown kind", Spec{Kind: "nope", Scale: 1}, ErrUnknownKind},
		{"log zero scale", Spec{Kind: KindLog}, ErrBadParam},
		{"log negative shift", Spec{Kind: KindLog, Scale: 1, Shift: -2}, ErrBadParam},
		{"power exponent 1", Spec{Kind: KindPower, Scale: 1, Exponent: 1}, ErrBadParam},
		{"power exponent 0", Spec{Kind: KindPower, Scale: 1}, ErrBadParam},
		{"power negative scale", Spec{Kind: KindPower, Scale: -1, Exponent: 0.5}, ErrBadParam},
		{"lincap zero knee", Spec{Kind: KindLinearCap, Scale: 1}, ErrBadParam},
		{"hyperbolic zero halfrate", Spec{Kind: KindHyperbolic, Scale: 1}, ErrBadParam},
		{"hyperbolic zero scale", Spec{Kind: KindHyperbolic, HalfRate: 5}, ErrBadParam},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := tt.spec.Build()
			if !errors.Is(err, tt.want) {
				t.Errorf("Build() error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSpecOfForeignFunction(t *testing.T) {
	if _, ok := SpecOf(fakeFunction{}); ok {
		t.Error("SpecOf(foreign) reported serializable")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{Kind: KindPower, Scale: 40, Exponent: 0.75}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Errorf("round trip: got %+v, want %+v", back, spec)
	}
}

type fakeFunction struct{}

func (fakeFunction) Value(r float64) float64 { return r }
func (fakeFunction) Deriv(float64) float64   { return 1 }
func (fakeFunction) Name() string            { return "fake" }
