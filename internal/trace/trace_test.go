package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Addf("beta", 2.5)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()

	if !strings.Contains(out, "== demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	// Title, header, separator, two rows.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header: %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "alpha") && !strings.HasPrefix(lines[3], "beta") {
		t.Errorf("row: %q", lines[3])
	}
}

func TestTableRenderRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.Add("x", "extra")
	tb.Add()
	var buf bytes.Buffer
	tb.Render(&buf) // must not panic
	if !strings.Contains(buf.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Add("a|b", "1")
	var buf bytes.Buffer
	tb.RenderMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "**demo**") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "| name | value |") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Errorf("missing separator:\n%s", out)
	}
	if !strings.Contains(out, `a\|b`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("1,2", `say "hi"`)
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	got := buf.String()
	want := "a,b\n\"1,2\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestSeriesSetCSV(t *testing.T) {
	s := NewSeriesSet("fig", "iter")
	s.X = []float64{1, 2, 3}
	s.AddSeries("u", []float64{10, 20, 30})
	s.AddSeries("short", []float64{5})
	var buf bytes.Buffer
	s.RenderCSV(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "iter,u,short" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10,5" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[3] != "3,30," {
		t.Errorf("row 3 = %q (short series must pad)", lines[3])
	}
}

func TestSeriesSetASCII(t *testing.T) {
	s := NewSeriesSet("fig", "iter")
	for i := 0; i < 50; i++ {
		s.X = append(s.X, float64(i))
	}
	ramp := make([]float64, 50)
	flat := make([]float64, 50)
	for i := range ramp {
		ramp[i] = float64(i)
		flat[i] = 25
	}
	s.AddSeries("ramp", ramp)
	s.AddSeries("flat", flat)

	var buf bytes.Buffer
	s.RenderASCII(&buf, 60, 10)
	out := buf.String()
	if !strings.Contains(out, "== fig ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* ramp") || !strings.Contains(out, "+ flat") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing marks")
	}
}

func TestSeriesSetASCIIEmpty(t *testing.T) {
	s := NewSeriesSet("empty", "x")
	var buf bytes.Buffer
	s.RenderASCII(&buf, 0, 0)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Errorf("got %q", buf.String())
	}
}

func TestSeriesSetASCIIConstant(t *testing.T) {
	s := NewSeriesSet("const", "x")
	s.X = []float64{1}
	s.AddSeries("c", []float64{5})
	var buf bytes.Buffer
	s.RenderASCII(&buf, 30, 6) // must not divide by zero
	if buf.Len() == 0 {
		t.Error("no output")
	}
}
