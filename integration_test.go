package repro_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro"
	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestSoakChurn drives the full stack through sustained workload churn:
// an engine warm-runs across repeated demand changes, capacity changes
// and flow departures/returns, with feasibility and recovery asserted
// after every event. This is the "runs all the time" deployment story of
// Section 2.1 compressed into one test.
func TestSoakChurn(t *testing.T) {
	p := workload.Base()
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2026))

	settle := func(tag string) float64 {
		res := e.Solve(600)
		if !res.Converged {
			t.Fatalf("%s: did not reconverge", tag)
		}
		// A departed flow carries rate 0, below the model's rate floor;
		// relax the floor for departed flows on a checking copy (their
		// zero rate contributes zero usage, which is exact).
		check := p.Clone()
		for i := range check.Flows {
			if !e.FlowActive(model.FlowID(i)) {
				check.Flows[i].RateMin = 0
			}
		}
		if err := model.CheckFeasible(check, model.NewIndex(check), res.Allocation, 1e-6); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		return res.Utility
	}
	settle("initial")

	flowDown := -1
	for event := 0; event < 25; event++ {
		switch rng.Intn(4) {
		case 0: // demand change on a random class
			j := model.ClassID(rng.Intn(len(p.Classes)))
			if err := e.SetClassDemand(j, rng.Intn(4000)); err != nil {
				t.Fatal(err)
			}
			settle("demand change")
		case 1: // capacity change on a random node
			b := model.NodeID(rng.Intn(len(p.Nodes)))
			factor := 0.5 + rng.Float64()*1.5
			if err := e.SetNodeCapacity(b, workload.NodeCapacity*factor); err != nil {
				t.Fatal(err)
			}
			settle("capacity change")
		case 2: // flow departure (at most one down at a time)
			if flowDown < 0 {
				flowDown = rng.Intn(len(p.Flows))
				e.SetFlowActive(model.FlowID(flowDown), false)
				settle("flow departure")
			}
		default: // flow return
			if flowDown >= 0 {
				e.SetFlowActive(model.FlowID(flowDown), true)
				flowDown = -1
				settle("flow return")
			}
		}
	}

	// Restore the original workload and verify the warm-started engine
	// lands where a cold engine lands.
	if flowDown >= 0 {
		e.SetFlowActive(model.FlowID(flowDown), true)
	}
	for j := range p.Classes {
		base := workload.Base()
		if err := e.SetClassDemand(model.ClassID(j), base.Classes[j].MaxConsumers); err != nil {
			t.Fatal(err)
		}
	}
	for b := range p.Nodes {
		if err := e.SetNodeCapacity(model.NodeID(b), workload.NodeCapacity); err != nil {
			t.Fatal(err)
		}
	}
	final := settle("restored")

	cold, err := core.NewEngine(workload.Base(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Solve(600).Utility
	if rel := math.Abs(final-want) / want; rel > 0.01 {
		t.Errorf("after churn: %0.f deviates %.2f%% from cold-start %.0f", final, rel*100, want)
	}
}

// TestFullStackPipeline is the end-to-end "deployment" path through the
// public facade: distributed optimization over TCP, enactment in a broker
// with live producers, a re-optimization controller cycle, and a
// teardown.
func TestFullStackPipeline(t *testing.T) {
	p := repro.BaseWorkload()

	net := repro.NewTCPNetwork()
	defer net.Close()
	cluster, err := repro.NewCluster(p.Clone(), repro.ClusterConfig{
		Core: repro.Config{Adaptive: true},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Run(80, time.Minute); err != nil {
		t.Fatal(err)
	}
	alloc := cluster.Allocation()

	clock := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	b, err := repro.NewBroker(p, broker.WithClock(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for j, c := range p.Classes {
		want := alloc.Consumers[j]
		for k := 0; k < want; k++ {
			if _, err := b.AttachConsumer(model.ClassID(j), nil, func(repro.Message) { delivered++ }); err != nil {
				t.Fatal(err)
			}
		}
		_ = c
	}
	if err := b.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}

	producers := make([]*broker.Producer, len(p.Flows))
	for i := range p.Flows {
		producers[i], err = b.RegisterProducer(model.FlowID(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Publish 2 simulated seconds of traffic at the allocated rates.
	for tick := 0; tick < 20; tick++ {
		clock = clock.Add(100 * time.Millisecond)
		for i, pr := range producers {
			burst := int(alloc.Rates[i] / 10)
			for k := 0; k < burst; k++ {
				if err := pr.Publish(map[string]float64{"seq": float64(tick)}, ""); err != nil {
					t.Fatalf("flow %d throttled at its own allocated rate: %v", i, err)
				}
			}
		}
	}
	if delivered == 0 {
		t.Fatal("no deliveries across the full stack")
	}

	// One controller cycle keeps the system consistent.
	ctrl, err := repro.NewBrokerController(b, broker.ControllerConfig{
		Core: repro.Config{Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrl.Reoptimize(); err != nil {
		t.Fatal(err)
	}
}
