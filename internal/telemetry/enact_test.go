package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestEnactMetricsObserve(t *testing.T) {
	reg := NewRegistry()
	m := NewEnactMetrics(reg)

	m.ObserveApply(1500, EnactRouteIncremental, 2, 1, 3)
	m.ObserveApply(500, EnactRouteNoop, 0, 0, 0)
	m.ObserveApply(2500, EnactRouteFull, 8, 6, 6)
	m.ObserveCycle(true, 10_000, 0.25, 0.5, 120)
	m.ObserveCycle(false, 8_000, 0.001, 0.5, 120)

	if got := m.RouteBuilds[EnactRouteNoop].Value(); got != 1 {
		t.Errorf("noop builds = %d, want 1", got)
	}
	if got := m.RouteBuilds[EnactRouteIncremental].Value(); got != 1 {
		t.Errorf("incremental builds = %d, want 1", got)
	}
	if got := m.RouteBuilds[EnactRouteFull].Value(); got != 1 {
		t.Errorf("full builds = %d, want 1", got)
	}
	if got := m.ClassesTouched.Value(); got != 10 {
		t.Errorf("classes touched = %d, want 10", got)
	}
	if got := m.FlowsTouched.Value(); got != 7 {
		t.Errorf("flows touched = %d, want 7", got)
	}
	if got := m.RatesChanged.Value(); got != 9 {
		t.Errorf("rates changed = %d, want 9", got)
	}
	if got := m.CyclesEnacted.Value(); got != 1 {
		t.Errorf("enacted cycles = %d, want 1", got)
	}
	if got := m.CyclesSkipped.Value(); got != 1 {
		t.Errorf("skipped cycles = %d, want 1", got)
	}
	if got := m.AllocationDelta.Value(); got != 0.001 {
		t.Errorf("allocation delta = %g, want 0.001", got)
	}
	if got := m.DemandConsumers.Value(); got != 120 {
		t.Errorf("demand = %g, want 120", got)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lrgp_enact_apply_seconds_bucket{le=`,
		`lrgp_enact_route_builds_total{mode="noop"} 1`,
		`lrgp_enact_route_builds_total{mode="incremental"} 1`,
		`lrgp_enact_route_builds_total{mode="full"} 1`,
		`lrgp_enact_classes_touched_total 10`,
		`lrgp_enact_flows_touched_total 7`,
		`lrgp_enact_rates_changed_total 9`,
		`lrgp_enact_cycles_total{result="enacted"} 1`,
		`lrgp_enact_cycles_total{result="skipped"} 1`,
		`lrgp_enact_cycle_seconds_bucket{le=`,
		`lrgp_enact_allocation_delta 0.001`,
		`lrgp_enact_oscillation 0.5`,
		`lrgp_enact_demand_consumers 120`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestEnactMetricsNilSafe pins the nil-handle contract shared by every
// instrumentation handle in this package.
func TestEnactMetricsNilSafe(t *testing.T) {
	var m *EnactMetrics
	m.ObserveApply(1, EnactRouteFull, 1, 1, 1)
	m.ObserveCycle(true, 1, 1, 1, 1)
}

// TestEnactMetricsZeroAlloc: the observe methods sit on the broker's
// control path, which the no-op-enact acceptance bar caps at 2 allocs —
// instrumentation must contribute none of them.
func TestEnactMetricsZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	m := NewEnactMetrics(reg)
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveApply(100, EnactRouteIncremental, 1, 1, 1)
		m.ObserveCycle(true, 100, 0.1, 0, 10)
	})
	if allocs != 0 {
		t.Errorf("observe allocs/op = %g, want 0", allocs)
	}
}
