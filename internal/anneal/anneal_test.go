package anneal

import (
	"errors"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestSolveValidates(t *testing.T) {
	p := workload.Base()
	p.Flows[0].RateMin = -1
	if _, err := Solve(p, Config{MaxSteps: 10}); err == nil {
		t.Error("Solve accepted invalid problem")
	}
}

func TestSolveResultFeasible(t *testing.T) {
	p := workload.Base()
	res, err := Solve(p, Config{MaxSteps: 50_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix := model.NewIndex(p)
	if err := model.CheckFeasible(p, ix, res.Best, 1e-9); err != nil {
		t.Errorf("best allocation infeasible: %v", err)
	}
	if res.BestUtility <= 0 {
		t.Errorf("best utility = %g, want > 0", res.BestUtility)
	}
	if got := model.TotalUtility(p, res.Best); math.Abs(got-res.BestUtility) > 1e-6*res.BestUtility {
		t.Errorf("reported utility %g != recomputed %g (incremental bookkeeping drift)", res.BestUtility, got)
	}
	if res.Steps == 0 || res.Accepted == 0 || res.Rounds == 0 {
		t.Errorf("counters: steps=%d accepted=%d rounds=%d", res.Steps, res.Accepted, res.Rounds)
	}
}

func TestSolveDeterministicForSeed(t *testing.T) {
	p := workload.Base()
	a, err := Solve(p, Config{MaxSteps: 20_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, Config{MaxSteps: 20_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestUtility != b.BestUtility || a.Accepted != b.Accepted {
		t.Errorf("same seed diverged: %g/%d vs %g/%d", a.BestUtility, a.Accepted, b.BestUtility, b.Accepted)
	}
	c, err := Solve(p, Config{MaxSteps: 20_000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.BestUtility == a.BestUtility && c.Accepted == a.Accepted {
		t.Log("different seeds produced identical runs (possible but suspicious)")
	}
}

func TestMoreStepsDoNotHurt(t *testing.T) {
	// Best-so-far tracking means a longer budget can only improve the
	// result for the same seed sequence... not strictly (different RNG
	// consumption), so compare loosely: the long run should be at least
	// as good as half the short run.
	p := workload.Base()
	short, err := Solve(p, Config{MaxSteps: 5_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Solve(p, Config{MaxSteps: 200_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if long.BestUtility < 0.5*short.BestUtility {
		t.Errorf("long run %g much worse than short run %g", long.BestUtility, short.BestUtility)
	}
}

func TestRounds(t *testing.T) {
	tests := []struct {
		temp float64
		want int
	}{
		// ceil(ln(1/T)/ln(0.999)) + 1.
		{5, int(math.Ceil(math.Log(1.0/5)/math.Log(0.999))) + 1},
		{100, int(math.Ceil(math.Log(1.0/100)/math.Log(0.999))) + 1},
		{0.5, 1}, // already below MinTemp
	}
	for _, tt := range tests {
		if got := (Config{StartTemp: tt.temp}).Rounds(); got != tt.want {
			t.Errorf("Rounds(T=%g) = %d, want %d", tt.temp, got, tt.want)
		}
	}
}

func TestInfeasibleStart(t *testing.T) {
	p := workload.Base()
	// Shrink node capacity below the flow costs at minimal rates.
	for b := range p.Nodes {
		p.Nodes[b].Capacity = 1
	}
	// Capacity 1 still validates (>0) but cannot host flows at r=10.
	_, err := Solve(p, Config{MaxSteps: 10})
	if !errors.Is(err, ErrInfeasibleStart) {
		t.Errorf("error = %v, want ErrInfeasibleStart", err)
	}
}

func TestSolveBestOf(t *testing.T) {
	p := workload.Base()
	res, temp, err := SolveBestOf(p, Config{MaxSteps: 10_000, Seed: 2}, []float64{5, 50})
	if err != nil {
		t.Fatal(err)
	}
	if temp != 5 && temp != 50 {
		t.Errorf("winning temperature = %g, want one of the candidates", temp)
	}
	if res.BestUtility <= 0 {
		t.Errorf("best utility = %g", res.BestUtility)
	}

	// Default temperature list engages when none supplied.
	_, temp, err = SolveBestOf(p, Config{MaxSteps: 4_000, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, want := range StartTemps {
		if temp == want {
			found = true
		}
	}
	if !found {
		t.Errorf("winning temperature %g not in StartTemps", temp)
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.normalized()
	if c.StartTemp != DefaultStartTemp || c.CoolRate != DefaultCoolRate ||
		c.MinTemp != DefaultMinTemp || c.MaxSteps != DefaultMaxSteps ||
		c.Seed != 1 || c.RateStep != 0.1 || c.PopStep != 0.05 {
		t.Errorf("normalized = %+v", c)
	}
	c = Config{CoolRate: 1.5}.normalized()
	if c.CoolRate != DefaultCoolRate {
		t.Errorf("CoolRate >= 1 not normalized: %g", c.CoolRate)
	}
}

func TestStateIncrementalConsistency(t *testing.T) {
	// Drive the state through many random accepted moves and verify the
	// incremental usage/utility caches match a from-scratch evaluation.
	p := workload.WithLinkBottlenecks(workload.Base(), 0.8)
	res, err := Solve(p, Config{MaxSteps: 30_000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ix := model.NewIndex(p)
	if err := model.CheckFeasible(p, ix, res.Best, 1e-9); err != nil {
		t.Errorf("infeasible with links: %v", err)
	}
	if got := model.TotalUtility(p, res.Best); math.Abs(got-res.BestUtility) > 1e-6*(1+res.BestUtility) {
		t.Errorf("utility drift: cached %g vs recomputed %g", res.BestUtility, got)
	}
}
