// Package broker is a Gryphon-style event broker substrate: producers
// publish messages on flows, messages are transformed and filtered on
// their way to consumers organized in classes, and the broker *enacts* the
// decisions of the LRGP optimizer — source rate limits via token buckets
// and consumer admission control per class (Section 1.1's trade-data and
// latest-price scenarios).
//
// The broker plays the role the Gryphon system plays in the paper: the
// infrastructure whose resource model (per-message and per-message-
// per-consumer costs) the optimization problem describes.
package broker

import (
	"fmt"
	"time"

	"repro/internal/model"
)

// Message is one event published on a flow.
type Message struct {
	// Flow is the flow the message belongs to.
	Flow model.FlowID
	// Seq is the per-flow sequence number assigned by the broker.
	Seq uint64
	// Time is the publish timestamp.
	Time time.Time
	// Attrs carries numeric content attributes (e.g. "price": 82.5) that
	// filters evaluate. On the delivery path Attrs is read-only by
	// contract: for classes with the Identity transform the broker hands
	// every consumer the producer's own map (no per-class clone), so
	// neither the publisher nor any handler may mutate it after Publish.
	// Only classes whose transform actually mutates attributes receive a
	// private copy.
	Attrs map[string]float64
	// Body is the opaque payload.
	Body string
}

// cloneAttrs copies the attribute map so per-class transformations cannot
// corrupt the producer's message.
func cloneAttrs(attrs map[string]float64) map[string]float64 {
	if attrs == nil {
		return nil
	}
	out := make(map[string]float64, len(attrs))
	for k, v := range attrs {
		out[k] = v
	}
	return out
}

// Filter decides whether a consumer receives a message (content-based
// subscription, as in the latest-price scenario). Filters run on the
// broker's lock-free delivery path: implementations must be safe for
// concurrent use and must treat the message — including its Attrs map —
// as read-only.
type Filter interface {
	// Match reports whether the message passes. It must not mutate m or
	// its Attrs map.
	Match(m Message) bool
	// String describes the filter.
	String() string
}

// MatchAll passes every message.
type MatchAll struct{}

var _ Filter = MatchAll{}

// Match implements Filter.
func (MatchAll) Match(Message) bool { return true }

// String implements Filter.
func (MatchAll) String() string { return "true" }

// Cmp is the comparison operator of an attribute filter.
type Cmp int

// Comparison operators.
const (
	CmpLT Cmp = iota + 1
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
)

// String implements fmt.Stringer.
func (c Cmp) String() string {
	switch c {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "=="
	default:
		return "?"
	}
}

// AttrFilter passes messages whose attribute satisfies a comparison, e.g.
// price > 80. Messages lacking the attribute fail.
type AttrFilter struct {
	Attr  string
	Op    Cmp
	Value float64
}

var _ Filter = AttrFilter{}

// Match implements Filter.
func (f AttrFilter) Match(m Message) bool {
	v, ok := m.Attrs[f.Attr]
	if !ok {
		return false
	}
	switch f.Op {
	case CmpLT:
		return v < f.Value
	case CmpLE:
		return v <= f.Value
	case CmpGT:
		return v > f.Value
	case CmpGE:
		return v >= f.Value
	case CmpEQ:
		return v == f.Value
	default:
		return false
	}
}

// String implements Filter.
func (f AttrFilter) String() string {
	return fmt.Sprintf("%s %s %g", f.Attr, f.Op, f.Value)
}

// And passes messages matching every child filter.
type And []Filter

var _ Filter = And{}

// Match implements Filter.
func (a And) Match(m Message) bool {
	for _, f := range a {
		if !f.Match(m) {
			return false
		}
	}
	return true
}

// String implements Filter.
func (a And) String() string {
	s := "("
	for i, f := range a {
		if i > 0 {
			s += " && "
		}
		s += f.String()
	}
	return s + ")"
}

// Transform alters a message on its way to a consumer class, modeling the
// paper's in-flight transformations (field removal for public consumers,
// format changes, enrichment).
type Transform interface {
	// Apply returns the transformed message. The broker hands every
	// non-Identity transform a private copy of the attribute map, which
	// the implementation may mutate freely; Identity transforms are
	// bypassed entirely and their classes share the producer's map.
	Apply(m Message) Message
	// String describes the transform.
	String() string
}

// Identity returns messages unchanged.
type Identity struct{}

var _ Transform = Identity{}

// Apply implements Transform.
func (Identity) Apply(m Message) Message { return m }

// String implements Transform.
func (Identity) String() string { return "identity" }

// DropAttrs removes the named attributes (the trade-data scenario: fields
// available only to gold consumers are removed for public consumers).
type DropAttrs []string

var _ Transform = DropAttrs{}

// Apply implements Transform.
func (d DropAttrs) Apply(m Message) Message {
	for _, k := range d {
		delete(m.Attrs, k)
	}
	return m
}

// String implements Transform.
func (d DropAttrs) String() string {
	return fmt.Sprintf("drop%v", []string(d))
}

// Annotate adds or overwrites an attribute (enrichment).
type Annotate struct {
	Attr  string
	Value float64
}

var _ Transform = Annotate{}

// Apply implements Transform.
func (a Annotate) Apply(m Message) Message {
	if m.Attrs == nil {
		m.Attrs = make(map[string]float64, 1)
	}
	m.Attrs[a.Attr] = a.Value
	return m
}

// String implements Transform.
func (a Annotate) String() string {
	return fmt.Sprintf("set %s=%g", a.Attr, a.Value)
}
