package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/overlay"
	"repro/internal/trace"
	"repro/internal/utility"
)

// ChurnExperiment (X11) measures re-optimization under rolling topology
// failures, the regime the ROADMAP names as the open frontier: a
// capacity-heterogeneous random overlay runs at its optimum, then every
// FailEvery iterations a link (or node) dies or heals. Each event is
// handled incrementally — Router.RepairLink/RepairNode re-routes only the
// flows indexed to the failed element, Engine.ResetRouting republishes
// the repaired coefficients without rebuilding anything — and the warm
// re-convergence is compared against a cold rebuild (NewRouter +
// NewEngine + Solve) of the same mutated topology. Reported per event:
// the repair cost, the utility dip after one post-repair iteration, and
// iterations/wall-clock to re-convergence warm vs cold.

// ChurnConfig sizes the X11 rolling-failure experiment.
type ChurnConfig struct {
	// TopoNodes is the overlay size (default 10_000).
	TopoNodes int
	// Flows is the flow population (default TopoNodes/100).
	Flows int
	// SubsPerFlow is the subscriber classes per flow (default 3).
	SubsPerFlow int
	// ExtraDegree is the per-node extra-link count of the random topology
	// (default 2; the spanning tree guarantees connectivity).
	ExtraDegree int
	// Events is how many churn events to run (default 8). Odd events
	// restore what the preceding event failed, so the experiment
	// alternates fail/heal.
	Events int
	// FailEvery is the iteration budget between events — the warm path
	// must re-converge within it (default 400).
	FailEvery int
	// FailKind selects what dies: "link" (default) or "node".
	FailKind string
	// ColdBudget bounds each cold-rebuild solve (default 4000).
	ColdBudget int
}

func (c ChurnConfig) normalized() ChurnConfig {
	if c.TopoNodes <= 0 {
		c.TopoNodes = 10_000
	}
	if c.Flows <= 0 {
		c.Flows = c.TopoNodes / 100
		if c.Flows < 4 {
			c.Flows = 4
		}
	}
	if c.SubsPerFlow <= 0 {
		c.SubsPerFlow = 3
	}
	if c.ExtraDegree <= 0 {
		c.ExtraDegree = 2
	}
	if c.Events <= 0 {
		c.Events = 8
	}
	if c.FailEvery <= 0 {
		c.FailEvery = 400
	}
	if c.FailKind == "" {
		c.FailKind = "link"
	}
	if c.FailKind != "link" && c.FailKind != "node" {
		c.FailKind = "link"
	}
	if c.ColdBudget <= 0 {
		c.ColdBudget = 4000
	}
	return c
}

// churnBand is the relative utility-amplitude band that counts as
// re-converged, matching the Figure 3 recovery experiment: random
// contended instances keep a small admission limit cycle above the
// paper's 0.1% rule, so X11 measures re-entry into the 0.5% band with
// the same detector for the base, warm and cold solves.
const churnBand = 0.005

// solveBand steps eng until the utility amplitude stays within churnBand
// over the detector window, or budget runs out. Returns the final
// utility, iterations used and whether the band was reached.
func solveBand(eng *core.Engine, budget int) (float64, int, bool) {
	det := metrics.NewConvergenceDetector(0, churnBand)
	u := 0.0
	for it := 1; it <= budget; it++ {
		u = eng.Step().Utility
		if det.Observe(u) {
			return u, it, true
		}
	}
	return u, budget, false
}

// ChurnEvent is one failure or restore and its re-convergence record.
type ChurnEvent struct {
	// Kind is the repair-stats kind: link-fail, link-restore, node-fail,
	// node-restore. Element is the link index or node ID.
	Kind    string
	Element int
	// Affected and Rerouted are the repair's locality stats.
	Affected int
	Rerouted int
	// RepairMicros is RepairX + ResetRouting wall time.
	RepairMicros float64
	// UtilityBefore is the converged utility before the event; DipPct the
	// relative drop after one post-repair iteration (negative = gain, as
	// restores typically are).
	UtilityBefore float64
	DipPct        float64
	// WarmIters/WarmMicros: iterations and wall time to re-convergence on
	// the warm engine (repair included in the time). WarmConverged is
	// false when the FailEvery budget ran out first.
	WarmIters     int
	WarmMicros    float64
	WarmConverged bool
	// ColdIters/ColdMicros: a from-scratch rebuild and solve of the same
	// mutated topology.
	ColdIters     int
	ColdMicros    float64
	ColdConverged bool
}

// ChurnResult is the X11 outcome.
type ChurnResult struct {
	Config ChurnConfig
	Events []ChurnEvent
	// BaseUtility is the pre-churn converged utility; BaseIters the
	// iterations the initial cold solve took.
	BaseUtility float64
	BaseIters   int
	// WarmMicrosTotal / ColdMicrosTotal sum the per-event costs; Speedup
	// is their ratio.
	WarmMicrosTotal float64
	ColdMicrosTotal float64
	Speedup         float64
}

// churnWorkload builds the heterogeneous overlay and flow population.
func churnWorkload(rng *rand.Rand, cc ChurnConfig) (*overlay.Topology, []float64, []overlay.FlowSpec) {
	tp := overlay.RandomTopologyHetero(rng, cc.TopoNodes, cc.ExtraDegree, 1e5, 1e6)
	caps := make([]float64, cc.TopoNodes)
	for b := range caps {
		caps[b] = 2000 + rng.Float64()*2000
	}
	flows := make([]overlay.FlowSpec, cc.Flows)
	for fi := range flows {
		fs := overlay.FlowSpec{
			Name:     fmt.Sprintf("f%d", fi),
			Source:   model.NodeID(rng.Intn(cc.TopoNodes)),
			RateMin:  1,
			RateMax:  100,
			LinkCost: 1,
			NodeCost: 2,
		}
		for s := 0; s < cc.SubsPerFlow; s++ {
			fs.Classes = append(fs.Classes, overlay.ClassSpec{
				Name:            fmt.Sprintf("f%d-c%d", fi, s),
				Node:            model.NodeID(rng.Intn(cc.TopoNodes)),
				MaxConsumers:    10 + rng.Intn(50),
				CostPerConsumer: 5,
				Utility:         utility.NewLog(1 + rng.Float64()*20),
			})
		}
		flows[fi] = fs
	}
	return tp, caps, flows
}

// ChurnExperiment runs X11. See ChurnConfig for sizing; Options supplies
// the seed and engine worker count.
func ChurnExperiment(opts Options, cc ChurnConfig) (*ChurnResult, error) {
	o := opts.normalized()
	cc = cc.normalized()
	rng := rand.New(rand.NewSource(o.Seed))
	cfg := o.engineConfig(core.Config{Adaptive: true})

	tp, caps, flows := churnWorkload(rng, cc)
	r, err := overlay.NewRouter(tp, caps, flows)
	if err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}
	eng, err := core.NewEngine(r.Problem(), cfg)
	if err != nil {
		return nil, fmt.Errorf("churn: %w", err)
	}
	defer eng.Close()
	baseU, baseIters, baseOK := solveBand(eng, cc.ColdBudget)
	if !baseOK {
		return nil, fmt.Errorf("churn: base solve did not enter the %.1f%% band in %d iterations", 100*churnBand, cc.ColdBudget)
	}
	out := &ChurnResult{Config: cc, BaseUtility: baseU, BaseIters: baseIters}

	// Anchored nodes (sources, subscribers) cannot fail.
	anchored := make([]bool, cc.TopoNodes)
	for _, fs := range flows {
		anchored[fs.Source] = true
		for _, cs := range fs.Classes {
			anchored[cs.Node] = true
		}
	}

	lastUtility := baseU
	failedElem := -1
	for ev := 0; ev < cc.Events; ev++ {
		healing := failedElem >= 0

		repairStart := time.Now()
		st, elem, err := churnEvent(r, rng, cc.FailKind, healing, failedElem, anchored)
		if err != nil {
			return nil, fmt.Errorf("churn: event %d: %w", ev, err)
		}
		if err := eng.ResetRouting(r.Problem(), r.TakeDelta()); err != nil {
			return nil, fmt.Errorf("churn: event %d: %w", ev, err)
		}
		repairDur := time.Since(repairStart)
		if healing {
			failedElem = -1
		} else {
			failedElem = elem
		}

		// Warm re-convergence, dip sampled after the first iteration.
		det := metrics.NewConvergenceDetector(0, churnBand)
		dipU := eng.Step().Utility
		det.Observe(dipU)
		iters := 1
		for iters < cc.FailEvery && !det.Converged() {
			det.Observe(eng.Step().Utility)
			iters++
		}
		warmDur := time.Since(repairStart)

		e := ChurnEvent{
			Kind:          st.Kind,
			Element:       st.Element,
			Affected:      st.Affected,
			Rerouted:      st.Rerouted,
			RepairMicros:  float64(repairDur.Microseconds()),
			UtilityBefore: lastUtility,
			DipPct:        100 * (lastUtility - dipU) / lastUtility,
			WarmIters:     iters,
			WarmMicros:    float64(warmDur.Microseconds()),
			WarmConverged: det.Converged(),
		}

		// Cold baseline: rebuild and solve the mutated topology from
		// scratch.
		coldStart := time.Now()
		rc, err := overlay.NewRouter(tp, caps, flows)
		if err != nil {
			return nil, fmt.Errorf("churn: event %d cold rebuild: %w", ev, err)
		}
		ec, err := core.NewEngine(rc.Problem(), cfg)
		if err != nil {
			return nil, fmt.Errorf("churn: event %d cold rebuild: %w", ev, err)
		}
		_, coldIters, coldOK := solveBand(ec, cc.ColdBudget)
		ec.Close()
		e.ColdIters = coldIters
		e.ColdMicros = float64(time.Since(coldStart).Microseconds())
		e.ColdConverged = coldOK

		lastUtility = eng.Step().Utility // settle one more; negligible
		out.Events = append(out.Events, e)
		out.WarmMicrosTotal += e.WarmMicros
		out.ColdMicrosTotal += e.ColdMicros
	}
	if out.WarmMicrosTotal > 0 {
		out.Speedup = out.ColdMicrosTotal / out.WarmMicrosTotal
	}
	return out, nil
}

// churnEvent performs one fail or heal on the router and reports the
// repair stats plus the failed element (for the paired restore).
func churnEvent(r *overlay.Router, rng *rand.Rand, kind string, healing bool, failedElem int, anchored []bool) (overlay.RepairStats, int, error) {
	tp := r.Topology()
	if healing {
		if kind == "node" {
			st, err := r.RestoreNode(model.NodeID(failedElem))
			return st, failedElem, err
		}
		st, err := r.RestoreLink(failedElem)
		return st, failedElem, err
	}
	// Pick a loaded element whose failure is survivable, trying candidates
	// in shuffled order — a repair that fails with ErrNoPath (the element
	// was a bridge for some flow) rolls back cleanly, so keep trying.
	if kind == "node" {
		var cand []int
		for b := 0; b < tp.NodeCount(); b++ {
			if !anchored[b] && tp.NodeAlive(model.NodeID(b)) && len(r.FlowsThroughNode(model.NodeID(b))) > 0 {
				cand = append(cand, b)
			}
		}
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		for _, b := range cand {
			if st, err := r.RepairNode(model.NodeID(b)); err == nil {
				return st, b, nil
			}
		}
		return overlay.RepairStats{}, 0, fmt.Errorf("no survivable node failure among %d loaded nodes", len(cand))
	}
	var cand []int
	for li := 0; li < tp.LinkCount(); li++ {
		if tp.LinkAlive(li) && len(r.FlowsThroughLink(li)) > 0 {
			cand = append(cand, li)
		}
	}
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	for _, li := range cand {
		if st, err := r.RepairLink(li); err == nil {
			return st, li, nil
		}
	}
	return overlay.RepairStats{}, 0, fmt.Errorf("no survivable link failure among %d loaded links", len(cand))
}

// RenderChurn renders the X11 event table.
func RenderChurn(res *ChurnResult) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("X11: rolling %s failures (%d nodes, %d flows, repair + warm re-solve vs cold rebuild)",
			res.Config.FailKind, res.Config.TopoNodes, res.Config.Flows),
		"Event", "Element", "Affected", "Repair µs", "Dip %", "Warm iters", "Warm ms", "Cold iters", "Cold ms", "Speedup")
	iterStr := func(n int, converged bool, budget int) string {
		if !converged {
			return fmt.Sprintf(">%d", budget)
		}
		return fmt.Sprint(n)
	}
	for _, e := range res.Events {
		t.Add(
			e.Kind,
			fmt.Sprint(e.Element),
			fmt.Sprintf("%d/%d", e.Affected, res.Config.Flows),
			fmt.Sprintf("%.0f", e.RepairMicros),
			fmt.Sprintf("%+.2f", e.DipPct),
			iterStr(e.WarmIters, e.WarmConverged, res.Config.FailEvery),
			fmt.Sprintf("%.1f", e.WarmMicros/1000),
			iterStr(e.ColdIters, e.ColdConverged, res.Config.ColdBudget),
			fmt.Sprintf("%.1f", e.ColdMicros/1000),
			fmt.Sprintf("%.1fx", e.ColdMicros/e.WarmMicros),
		)
	}
	t.Add("total", "", "", "", "",
		"", fmt.Sprintf("%.1f", res.WarmMicrosTotal/1000),
		"", fmt.Sprintf("%.1f", res.ColdMicrosTotal/1000),
		fmt.Sprintf("%.1fx", res.Speedup))
	return t
}
