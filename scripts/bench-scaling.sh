#!/usr/bin/env bash
# bench-scaling.sh — assert the parallel engine actually scales.
#
# Runs the metro-small scaling benchmark at workers=1 and workers=8 and
# fails if the workers=8 speedup falls below MIN_SPEEDUP (default 1.5x),
# so the flat speedup curve BENCH_core.json recorded before the fused
# schedule can never silently return. Parallel speedup needs real cores:
# on hosts with fewer than MIN_CPUS (default 4) the script skips loudly
# instead of measuring scheduler noise. Run via `make bench-scaling`.
set -euo pipefail

MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"
MIN_CPUS="${MIN_CPUS:-4}"
BENCH="${BENCH:-EngineStepMetroSmall}"

ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)"
if [ "${ncpu}" -lt "${MIN_CPUS}" ]; then
    echo "bench-scaling: SKIP — ${ncpu} CPU(s) online (< ${MIN_CPUS}); parallel speedup is not measurable here"
    exit 0
fi

# A fixed iteration count gives each sub-benchmark exactly one run (no
# time-based ramp), so the settle-to-steady-state prologue executes once.
echo "bench-scaling: ${BENCH} at workers=1 vs workers=8 on ${ncpu} CPUs"
out="$(go test -run='^$' -bench="${BENCH}\$/workers=(1|8)\$" -benchtime=500x ./internal/core/)"
echo "${out}"

# Benchmark names carry a -GOMAXPROCS suffix when procs != 1.
speedup="$(awk -v bench="${BENCH}" '
    $1 ~ bench "/workers=1(-[0-9]+)?$" { base = $3 }
    $1 ~ bench "/workers=8(-[0-9]+)?$" { par = $3 }
    END {
        if (base == "" || par == "" || par + 0 == 0) { print "unparsed"; exit }
        printf "%.2f", base / par
    }' <<<"${out}")"

if [ "${speedup}" = "unparsed" ]; then
    echo "bench-scaling: could not parse workers=1 and workers=8 ns/op from the bench output above" >&2
    exit 1
fi
if awk -v s="${speedup}" -v m="${MIN_SPEEDUP}" 'BEGIN { exit !(s + 0 >= m + 0) }'; then
    echo "bench-scaling: OK — workers=8 runs ${speedup}x faster than workers=1 (threshold ${MIN_SPEEDUP}x)"
else
    echo "bench-scaling: FAIL — workers=8 runs only ${speedup}x faster than workers=1 (threshold ${MIN_SPEEDUP}x)" >&2
    exit 1
fi
