package workload

import (
	"testing"

	"repro/internal/model"
)

func TestPresetsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    *model.Problem
	}{
		{"trade-data default", TradeData(0)},
		{"trade-data tight", TradeData(30_000)},
		{"latest-price default", LatestPrice(0)},
		{"latest-price big", LatestPrice(16000)},
		{"heterogeneous", Heterogeneous()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := model.Validate(tt.p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTradeDataDefaults(t *testing.T) {
	p := TradeData(0)
	if p.Nodes[0].Capacity != 2_000_000 {
		t.Errorf("default capacity = %g", p.Nodes[0].Capacity)
	}
	if p.Classes[0].Name != "gold" || p.Classes[1].Name != "public" {
		t.Errorf("class names: %q, %q", p.Classes[0].Name, p.Classes[1].Name)
	}
	// Gold's reliability overhead: higher per-consumer cost.
	if !(p.Classes[0].CostPerConsumer > p.Classes[1].CostPerConsumer) {
		t.Error("gold not costlier than public")
	}
}

func TestLatestPriceDemandScaling(t *testing.T) {
	p := LatestPrice(4000)
	if p.Classes[0].MaxConsumers != 4000 || p.Classes[1].MaxConsumers != 2000 {
		t.Errorf("demand = %d/%d", p.Classes[0].MaxConsumers, p.Classes[1].MaxConsumers)
	}
	if LatestPrice(0).Classes[0].MaxConsumers != 1000 {
		t.Error("default demand not applied")
	}
}
