package broker

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
)

// ConsumerID identifies an attached consumer.
type ConsumerID int

// Handler receives messages delivered to one consumer. Handlers run
// synchronously inside Publish and must return quickly.
type Handler func(m Message)

// Errors returned by broker operations.
var (
	ErrUnknownClass    = errors.New("broker: unknown class")
	ErrUnknownFlow     = errors.New("broker: unknown flow")
	ErrUnknownConsumer = errors.New("broker: unknown consumer")
	ErrThrottled       = errors.New("broker: rate limit exceeded")
)

// consumer is one attached consumer.
type consumer struct {
	id       ConsumerID
	class    model.ClassID
	filter   Filter
	handler  Handler
	admitted bool

	delivered uint64
	filtered  uint64
}

// classState tracks per-class enactment and accounting.
type classState struct {
	transform Transform
	// attach-ordered consumers; admission follows this order (earliest
	// attached admitted first, latest unadmitted first on shrink).
	consumers []*consumer
	admitted  int
	// thinner, when set, caps this class's delivery rate below the
	// flow's source rate (multirate thinning: elastic consumers receive
	// a subsampled stream, per the latest-price scenario's "reducing
	// the frequency of updates").
	thinner *TokenBucket
	thinned uint64
}

// FlowStats reports one flow's publish-side accounting.
type FlowStats struct {
	Published uint64
	Throttled uint64
	Rate      float64
}

// ClassStats reports one class's delivery-side accounting.
type ClassStats struct {
	Attached  int
	Admitted  int
	Delivered uint64
	Filtered  uint64
	// Thinned counts messages dropped for this class by its delivery-
	// rate cap (see SetClassRateCap).
	Thinned uint64
}

// Broker hosts the flows and consumer classes of one problem instance and
// enacts optimizer allocations. All methods are safe for concurrent use.
type Broker struct {
	p  *model.Problem
	ix *model.Index

	now func() time.Time

	mu           sync.Mutex
	buckets      []*TokenBucket
	seq          []uint64
	pub          []FlowStats
	classes      []classState
	nextID       ConsumerID
	byID         map[ConsumerID]*consumer
	nextProducer int
	producers    map[ProducerID]*Producer
	// work counts abstract work units: one per message routed, one per
	// class transform applied, one per filter evaluation, one per
	// delivery. The calibrate package regresses these counters to
	// recover the paper's F/G resource-model coefficients from observed
	// broker behavior.
	work uint64

	// tel, when non-nil, mirrors the broker's accounting into the
	// telemetry registry (message counters, fan-out histogram, consumer
	// gauges). All ObserveX methods are nil-safe, so the uninstrumented
	// broker pays one branch per call site.
	tel *telemetry.BrokerMetrics
}

// Option configures a Broker.
type Option interface {
	apply(*Broker)
}

type clockOption struct {
	now func() time.Time
}

func (o clockOption) apply(b *Broker) { b.now = o.now }

// WithClock injects a time source (deterministic tests).
func WithClock(now func() time.Time) Option {
	return clockOption{now: now}
}

type transformOption struct {
	class model.ClassID
	tr    Transform
}

func (o transformOption) apply(b *Broker) {
	b.classes[o.class].transform = o.tr
}

// WithTransform installs a per-class message transformation.
func WithTransform(class model.ClassID, tr Transform) Option {
	return transformOption{class: class, tr: tr}
}

type telemetryOption struct {
	m *telemetry.BrokerMetrics
}

func (o telemetryOption) apply(b *Broker) { b.tel = o.m }

// WithTelemetry mirrors the broker's accounting into m (see
// telemetry.NewBrokerMetrics). A nil handle is valid and leaves the
// broker uninstrumented.
func WithTelemetry(m *telemetry.BrokerMetrics) Option {
	return telemetryOption{m: m}
}

// New builds a broker for the problem. Flows start rate-limited at their
// minimum rates with no admitted consumers; call ApplyAllocation to enact
// an optimizer result.
func New(p *model.Problem, opts ...Option) (*Broker, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("broker: %w", err)
	}
	b := &Broker{
		p:         p,
		ix:        model.NewIndex(p),
		now:       time.Now,
		buckets:   make([]*TokenBucket, len(p.Flows)),
		seq:       make([]uint64, len(p.Flows)),
		pub:       make([]FlowStats, len(p.Flows)),
		classes:   make([]classState, len(p.Classes)),
		byID:      make(map[ConsumerID]*consumer),
		producers: make(map[ProducerID]*Producer),
	}
	for j := range b.classes {
		b.classes[j].transform = Identity{}
	}
	for _, opt := range opts {
		opt.apply(b)
	}
	start := b.now()
	for i, f := range p.Flows {
		b.buckets[i] = NewTokenBucket(f.RateMin, 0, start)
		b.pub[i].Rate = f.RateMin
	}
	return b, nil
}

// Problem returns the broker's problem definition.
func (b *Broker) Problem() *model.Problem { return b.p }

// AttachConsumer registers a consumer in a class. The consumer receives
// messages only once admission control admits it (ApplyAllocation). A nil
// filter matches everything.
func (b *Broker) AttachConsumer(class model.ClassID, filter Filter, h Handler) (ConsumerID, error) {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return 0, fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	if filter == nil {
		filter = MatchAll{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	c := &consumer{id: id, class: class, filter: filter, handler: h}
	b.classes[class].consumers = append(b.classes[class].consumers, c)
	b.byID[id] = c
	b.tel.ObserveConsumers(b.consumerTotalsLocked())
	return id, nil
}

// consumerTotalsLocked returns the attached and admitted consumer counts
// across all classes. Callers must hold b.mu.
func (b *Broker) consumerTotalsLocked() (attached, admitted int) {
	attached = len(b.byID)
	for j := range b.classes {
		admitted += b.classes[j].admitted
	}
	return attached, admitted
}

// DetachConsumer removes a consumer entirely.
func (b *Broker) DetachConsumer(id ConsumerID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownConsumer, id)
	}
	delete(b.byID, id)
	cs := &b.classes[c.class]
	for k, cc := range cs.consumers {
		if cc.id == id {
			cs.consumers = append(cs.consumers[:k], cs.consumers[k+1:]...)
			break
		}
	}
	if c.admitted {
		cs.admitted--
	}
	b.tel.ObserveConsumers(b.consumerTotalsLocked())
	return nil
}

// Admitted reports whether a consumer is currently admitted.
func (b *Broker) Admitted(id ConsumerID) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.byID[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownConsumer, id)
	}
	return c.admitted, nil
}

// ApplyAllocation enacts an optimizer allocation: flow token buckets are
// re-rated and each class admits (or unadmits) consumers to match n_j.
// Admission is capped by the number of attached consumers; earlier
// attachments are admitted first and the latest admitted are unadmitted
// first when shrinking.
func (b *Broker) ApplyAllocation(a model.Allocation) error {
	if len(a.Rates) != len(b.p.Flows) || len(a.Consumers) != len(b.p.Classes) {
		return fmt.Errorf("broker: allocation shape %d/%d, want %d/%d",
			len(a.Rates), len(a.Consumers), len(b.p.Flows), len(b.p.Classes))
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, r := range a.Rates {
		b.buckets[i].SetRate(r, now)
		b.pub[i].Rate = r
	}
	for j, want := range a.Consumers {
		cs := &b.classes[j]
		if want > len(cs.consumers) {
			want = len(cs.consumers)
		}
		if want < 0 {
			want = 0
		}
		for k, c := range cs.consumers {
			c.admitted = k < want
		}
		cs.admitted = want
	}
	b.tel.ObserveAllocation()
	b.tel.ObserveConsumers(b.consumerTotalsLocked())
	return nil
}

// Publish injects a message into a flow. It applies the source rate limit,
// then delivers to every admitted consumer of every class of the flow,
// applying the class transform and each consumer's filter. It returns
// ErrThrottled when the rate limiter rejects the message.
func (b *Broker) Publish(flow model.FlowID, attrs map[string]float64, body string) error {
	if flow < 0 || int(flow) >= len(b.p.Flows) {
		return fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	now := b.now()

	b.mu.Lock()
	if !b.buckets[flow].Allow(now) {
		b.pub[flow].Throttled++
		b.tel.ObserveThrottle()
		b.mu.Unlock()
		return ErrThrottled
	}
	b.seq[flow]++
	b.pub[flow].Published++
	workBefore := b.work
	b.work++ // per-message routing work
	msg := Message{
		Flow:  flow,
		Seq:   b.seq[flow],
		Time:  now,
		Attrs: attrs,
		Body:  body,
	}

	// Snapshot delivery targets under the lock, deliver outside it.
	type delivery struct {
		c   *consumer
		msg Message
	}
	var work []delivery
	filtered := 0
	for _, cid := range b.ix.ClassesByFlow(flow) {
		cs := &b.classes[cid]
		if cs.admitted == 0 {
			continue
		}
		if cs.thinner != nil && !cs.thinner.Allow(now) {
			cs.thinned++
			b.tel.ObserveThinned()
			continue
		}
		classMsg := msg
		classMsg.Attrs = cloneAttrs(attrs)
		classMsg = cs.transform.Apply(classMsg)
		b.work++ // per-class transform work
		for _, c := range cs.consumers {
			if !c.admitted {
				continue
			}
			b.work++ // per-consumer filter evaluation
			if c.filter.Match(classMsg) {
				c.delivered++
				b.work++ // per-consumer delivery
				work = append(work, delivery{c: c, msg: classMsg})
			} else {
				c.filtered++
				filtered++
			}
		}
	}
	b.tel.ObservePublish(len(work), filtered, b.work-workBefore)
	b.mu.Unlock()

	for _, d := range work {
		if d.c.handler != nil {
			d.c.handler(d.msg)
		}
	}
	return nil
}

// WorkUnits returns the cumulative abstract work counter (see the field
// comment); deterministic across runs for identical publish sequences.
func (b *Broker) WorkUnits() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.work
}

// FlowStats returns the publish-side counters of a flow.
func (b *Broker) FlowStats(flow model.FlowID) (FlowStats, error) {
	if flow < 0 || int(flow) >= len(b.p.Flows) {
		return FlowStats{}, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pub[flow], nil
}

// ClassStats returns the delivery-side counters of a class.
func (b *Broker) ClassStats(class model.ClassID) (ClassStats, error) {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return ClassStats{}, fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	cs := &b.classes[class]
	out := ClassStats{Attached: len(cs.consumers), Admitted: cs.admitted, Thinned: cs.thinned}
	for _, c := range cs.consumers {
		out.Delivered += c.delivered
		out.Filtered += c.filtered
	}
	return out, nil
}

// SetClassRateCap installs (or, with rate <= 0, removes) a delivery-rate
// cap for one class, thinning its stream below the flow's source rate.
// This is the enactment hook for multirate extensions: different classes
// of the same flow can receive different effective rates.
func (b *Broker) SetClassRateCap(class model.ClassID, rate float64) error {
	if class < 0 || int(class) >= len(b.p.Classes) {
		return fmt.Errorf("%w: %d", ErrUnknownClass, class)
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if rate <= 0 {
		b.classes[class].thinner = nil
		return nil
	}
	if t := b.classes[class].thinner; t != nil {
		t.SetRate(rate, now)
		return nil
	}
	b.classes[class].thinner = NewTokenBucket(rate, 0, now)
	return nil
}
