package transport

import (
	"errors"
	"testing"
)

// Per-wire attribution must split counters correctly when endpoints of one
// network write different formats (the WireSelector mixed-wire setup).
func TestTCPPerWireStats(t *testing.T) {
	net := NewTCP()
	defer net.Close()

	a, _ := net.Endpoint("a") // JSON (default)
	b, _ := net.Endpoint("b")
	c, _ := net.Endpoint("c")
	c.(WireSelector).SetWire(WireBinary)

	for i := 0; i < 3; i++ {
		m, err := Encode("a", "b", "from-json", i)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		m, err := Encode("c", "b", "from-binary", i)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		recvOne(t, b)
	}

	st := net.NetStats()
	if st.JSON.Frames != 3 || st.Binary.Frames != 2 {
		t.Fatalf("frames = JSON %d / binary %d, want 3 / 2", st.JSON.Frames, st.Binary.Frames)
	}
	if st.JSON.Bytes == 0 || st.Binary.Bytes == 0 {
		t.Errorf("bytes = JSON %d / binary %d, want both > 0", st.JSON.Bytes, st.Binary.Bytes)
	}
	if st.Delivered != 5 {
		t.Errorf("Delivered = %d, want 5", st.Delivered)
	}
	if st.Bytes != st.JSON.Bytes+st.Binary.Bytes {
		t.Errorf("Bytes = %d, want JSON+Binary = %d", st.Bytes, st.JSON.Bytes+st.Binary.Bytes)
	}
}

// The in-memory transport has no frames; it attributes by the
// self-describing first payload byte.
func TestMemoryPerWireStats(t *testing.T) {
	net := NewMemory()
	defer net.Close()

	a, _ := net.Endpoint("a")
	if _, err := net.Endpoint("b"); err != nil {
		t.Fatal(err)
	}

	payloads := [][]byte{
		[]byte(`{"round":1}`), // JSON object
		[]byte(`[1,2,3]`),     // JSON array (batch layout)
		{0x01, 0x02, 0x03},    // dist binary tag
		{'B', 0x00},           // binary batch tag
		nil,                   // empty counts as JSON (legacy encoding)
	}
	for _, p := range payloads {
		if err := a.Send(Message{To: "b", Kind: "k", Payload: p}); err != nil {
			t.Fatal(err)
		}
	}

	st := net.NetStats()
	if st.JSON.Frames != 3 || st.Binary.Frames != 2 {
		t.Fatalf("frames = JSON %d / binary %d, want 3 / 2", st.JSON.Frames, st.Binary.Frames)
	}
	if st.JSON.Bytes+st.Binary.Bytes != st.Bytes {
		t.Errorf("per-wire bytes %d+%d do not sum to total %d", st.JSON.Bytes, st.Binary.Bytes, st.Bytes)
	}
	if st.Delivered != uint64(len(payloads)) {
		t.Errorf("Delivered = %d, want %d", st.Delivered, len(payloads))
	}
}

// One-way blocks drop exactly the configured direction and heal on
// request (and with ClearPartitions).
func TestMemoryOneWayBlock(t *testing.T) {
	net := NewMemory()
	defer net.Close()

	a, _ := net.Endpoint("a")
	b, _ := net.Endpoint("b")

	net.SetOneWay("a", "b", true)
	if err := a.Send(Message{To: "b", Kind: "k"}); !errors.Is(err, ErrDropped) {
		t.Fatalf("blocked direction: err = %v, want ErrDropped", err)
	}
	if err := b.Send(Message{To: "a", Kind: "k"}); err != nil {
		t.Fatalf("reverse direction: err = %v, want nil", err)
	}
	recvOne(t, a)

	net.SetOneWay("a", "b", false)
	if err := a.Send(Message{To: "b", Kind: "k"}); err != nil {
		t.Fatalf("after unblock: err = %v, want nil", err)
	}
	recvOne(t, b)

	net.SetOneWay("a", "b", true)
	net.ClearPartitions()
	if err := a.Send(Message{To: "b", Kind: "k"}); err != nil {
		t.Fatalf("after ClearPartitions: err = %v, want nil", err)
	}
	if got := net.NetStats().Dropped; got != 1 {
		t.Errorf("Dropped = %d, want 1", got)
	}
}
