# Development targets for the lrgp repository. Everything is stdlib-only;
# the only prerequisite is a Go toolchain (>= 1.22).

GO ?= go

.PHONY: all build vet lint test race cover bench bench-core bench-broker bench-dist bench-overlay bench-scaling fuzz experiments examples telemetry-smoke trace-analyze clean

all: build vet lint test

# golangci-lint is configured in .golangci.yml; the target degrades to a
# loud skip when the binary is not installed so `make all` stays usable on
# minimal toolchains (CI runs the real thing).
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "lint: golangci-lint not installed; skipping (see .golangci.yml)"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One benchmark per paper table/figure (plus micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Engine-core benchmarks recorded as JSON (ns/op, allocs/op per benchmark)
# so the perf trajectory is tracked PR over PR.
bench-core:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/core/ \
		| $(GO) run ./cmd/lrgp-benchjson -out BENCH_core.json

# Broker data-plane benchmarks recorded as JSON. -cpu=1,4 captures the
# contended scaling of the lock-free publish path (BENCH_broker.json in
# the repo additionally keeps the pre-refactor mutex baseline under
# *MutexBaseline names for comparison).
bench-broker:
	$(GO) test -run='^$$' -bench='Publish|ApplyAllocation' -benchmem -cpu=1,4 ./internal/broker/ \
		| $(GO) run ./cmd/lrgp-benchjson -out BENCH_broker.json

# Distributed-runtime benchmarks recorded as JSON: codec encode/decode
# ns/op (transport), JSON-vs-binary bytes/round, plain-vs-batched
# frames/round, and rounds-to-converge per staleness bound K.
bench-dist:
	$(GO) test -run='^$$' -bench='DistWire|DistBatch|DistStaleness|SyncRound|Message' -benchmem \
		./internal/dist/ ./internal/transport/ \
		| $(GO) run ./cmd/lrgp-benchjson -out BENCH_dist.json

# Overlay re-optimization benchmarks recorded as JSON: tree repair
# (kill + restore cycle, allocation-bounded), the full warm path per
# failure event (repair + ResetRouting + re-solve) and the cold-rebuild
# baseline it is judged against, all on the 10k-node pod topology.
bench-overlay:
	$(GO) test -run='^$$' -bench='TreeRepair|WarmResolve|ColdResolve' -benchmem ./internal/overlay/ \
		| $(GO) run ./cmd/lrgp-benchjson -out BENCH_overlay.json

# Scaling-regression gate: workers=8 must beat workers=1 by >= 1.5x on
# the metro-small benchmark (skips loudly on hosts with < 4 CPUs).
bench-scaling:
	bash scripts/bench-scaling.sh

# Short fuzzing pass over the solver and utility-spec fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzBisectDecreasing -fuzztime=10s ./internal/solver/
	$(GO) test -fuzz=FuzzSpecJSON -fuzztime=10s ./internal/utility/

# End-to-end scrape of lrgp-broker's -telemetry-addr surface (Prometheus
# counters, pprof, expvar, snapshot). RACE=1 builds the binary with the
# race detector, as CI does.
telemetry-smoke:
	bash scripts/telemetry-smoke.sh

# Flight-recorder round trip: a dist lrgp-broker run with -dist-events,
# analyzed by lrgp-trace (round timeline, stragglers, loss hotspots,
# effective staleness).
trace-analyze:
	bash scripts/trace-smoke.sh

# Regenerate every table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/lrgp-experiments -run all -sa-steps 2000000 -chart=false

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tradedata
	$(GO) run ./examples/latestprice
	$(GO) run ./examples/autoscale
	$(GO) run ./examples/overlaycity

clean:
	rm -f cover.out test_output.txt bench_output.txt
