package overlay

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/utility"
)

// FlowSpec declares one flow to be routed over a topology.
type FlowSpec struct {
	// Name labels the flow.
	Name string
	// Source is the node where producers attach.
	Source model.NodeID
	// RateMin and RateMax bound the source rate.
	RateMin, RateMax float64
	// LinkCost is L_{l,i} on every tree link (resource per unit rate).
	LinkCost float64
	// NodeCost is F_{b,i} at every tree node (resource per unit rate).
	NodeCost float64
	// Classes lists the flow's consumer classes; their Node fields define
	// the subscriber set.
	Classes []ClassSpec
}

// ClassSpec declares one consumer class of a flow.
type ClassSpec struct {
	// Name labels the class.
	Name string
	// Node is the attachment (subscriber) node.
	Node model.NodeID
	// MaxConsumers is n^max.
	MaxConsumers int
	// CostPerConsumer is G_{b,j}.
	CostPerConsumer float64
	// Utility is U_j.
	Utility utility.Function
}

// Build routes every flow over the topology and assembles the
// optimization problem: flows reach exactly their dissemination-tree nodes
// (source, relays and subscribers all pay the flow-node cost), links carry
// exactly the flows whose trees include them, and node capacities are as
// given (one capacity for all nodes).
func Build(t *Topology, nodeCapacity float64, flows []FlowSpec) (*model.Problem, error) {
	if nodeCapacity <= 0 {
		return nil, fmt.Errorf("%w: node capacity %g", ErrBadBuild, nodeCapacity)
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("%w: no flows", ErrBadBuild)
	}

	p := &model.Problem{
		Name:  fmt.Sprintf("overlay-%df-%dn", len(flows), t.NodeCount()),
		Nodes: make([]model.Node, t.NodeCount()),
	}
	for b := range p.Nodes {
		p.Nodes[b] = model.Node{
			ID:       model.NodeID(b),
			Name:     fmt.Sprintf("S%d", b),
			Capacity: nodeCapacity,
			FlowCost: make(map[model.FlowID]float64),
		}
	}
	topoLinks := t.Links()
	for li, tl := range topoLinks {
		p.Links = append(p.Links, model.Link{
			ID:       model.LinkID(li),
			Name:     fmt.Sprintf("l%d-%d", tl.From, tl.To),
			From:     tl.From,
			To:       tl.To,
			Capacity: tl.Capacity,
			FlowCost: make(map[model.FlowID]float64),
		})
	}

	for fi, fs := range flows {
		fid := model.FlowID(fi)
		if fs.NodeCost <= 0 || fs.LinkCost <= 0 {
			return nil, fmt.Errorf("%w: flow %d costs L=%g F=%g", ErrBadBuild, fi, fs.LinkCost, fs.NodeCost)
		}
		subscribers := make([]model.NodeID, 0, len(fs.Classes))
		for _, cs := range fs.Classes {
			subscribers = append(subscribers, cs.Node)
		}
		tree, err := t.BuildTree(fs.Source, subscribers)
		if err != nil {
			return nil, fmt.Errorf("flow %d (%s): %w", fi, fs.Name, err)
		}

		p.Flows = append(p.Flows, model.Flow{
			ID:      fid,
			Name:    fs.Name,
			Source:  fs.Source,
			RateMin: fs.RateMin,
			RateMax: fs.RateMax,
		})
		for _, b := range tree.Nodes {
			p.Nodes[b].FlowCost[fid] = fs.NodeCost
		}
		for _, li := range tree.Links {
			p.Links[li].FlowCost[fid] = fs.LinkCost
		}
		for _, cs := range fs.Classes {
			p.Classes = append(p.Classes, model.Class{
				ID:              model.ClassID(len(p.Classes)),
				Name:            cs.Name,
				Flow:            fid,
				Node:            cs.Node,
				MaxConsumers:    cs.MaxConsumers,
				CostPerConsumer: cs.CostPerConsumer,
				Utility:         cs.Utility,
			})
		}
	}

	// Drop links no flow uses: the model requires positive per-flow costs
	// only for flows present, but unused links would still carry
	// capacity constraints that trivially hold; pruning keeps derived
	// problems small. Link IDs are re-numbered.
	pruned := p.Links[:0]
	for _, l := range p.Links {
		if len(l.FlowCost) == 0 {
			continue
		}
		l.ID = model.LinkID(len(pruned))
		pruned = append(pruned, l)
	}
	p.Links = pruned

	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("overlay: built problem invalid: %w", err)
	}
	return p, nil
}
