package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// GammaRow is one controller variant's outcome in the controller ablation
// (X6).
type GammaRow struct {
	Controller string
	// ConvergeIters per utility shape (paper order: log, r^0.25, r^0.5,
	// r^0.75); -1 means no convergence within the horizon.
	ConvergeIters [4]int
	// FinalUtility on the base (log) workload.
	FinalUtility float64
	// RecoveryIters after removing flow 5 mid-run (0.5% band rule); -1
	// means no recovery within the horizon.
	RecoveryIters int
}

// GammaControllerAblation (X6) compares three node-price stepsize
// controllers on convergence across utility shapes and on recovery from a
// flow departure:
//
//   - "fixed 0.01" / "fixed 0.1": constant gamma;
//   - "literal": the paper's Section 4.2 heuristic exactly as written;
//   - "refined": this repository's default (dead band + surge ramp).
//
// It substantiates the deviation recorded in EXPERIMENTS.md: the literal
// heuristic parks gamma at its minimum under equilibrium jitter, which
// slows recovery, while the refined controller recovers fast and still
// converges on every shape.
func GammaControllerAblation(opts Options) ([]GammaRow, error) {
	o := opts.normalized()

	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"fixed 0.01", core.Config{Gamma1: 0.01}},
		{"fixed 0.1", core.Config{Gamma1: 0.1}},
		{"literal", core.Config{Adaptive: true, GammaLiteral: true}},
		{"refined", core.Config{Adaptive: true}},
	}

	var rows []GammaRow
	for _, v := range variants {
		row := GammaRow{Controller: v.name}

		for si, shape := range workload.Table3Shapes() {
			p := workload.Scaled(workload.Config{Shape: shape})
			e, err := core.NewEngine(p, o.engineConfig(v.cfg))
			if err != nil {
				return nil, err
			}
			res := e.Solve(2 * o.Iterations)
			e.Close()
			row.ConvergeIters[si] = res.ConvergedAt
			if si == 0 {
				row.FinalUtility = res.Utility
			}
		}

		// Recovery: remove flow 5 at the midpoint of a 2x horizon.
		e, err := core.NewEngine(workload.Base(), o.engineConfig(v.cfg))
		if err != nil {
			return nil, err
		}
		horizon := 2 * o.Iterations
		removeAt := horizon / 2
		ys := make([]float64, 0, horizon)
		for i := 0; i < horizon; i++ {
			if i == removeAt {
				e.SetFlowActive(5, false)
			}
			ys = append(ys, e.Step().Utility)
		}
		e.Close()
		row.RecoveryIters = recoveryIters(ys, removeAt, 0.005)

		rows = append(rows, row)
	}
	return rows, nil
}

// RenderGammaAblation renders X6 rows.
func RenderGammaAblation(rows []GammaRow) *trace.Table {
	t := trace.NewTable("X6: node-price stepsize controller ablation",
		"Controller", "conv log", "conv r^0.25", "conv r^0.5", "conv r^0.75",
		"base utility", "recovery iters")
	fmtIters := func(v int) string {
		if v < 0 {
			return "—"
		}
		return fmt.Sprint(v)
	}
	for _, r := range rows {
		t.Add(r.Controller,
			fmtIters(r.ConvergeIters[0]), fmtIters(r.ConvergeIters[1]),
			fmtIters(r.ConvergeIters[2]), fmtIters(r.ConvergeIters[3]),
			fmt.Sprintf("%.0f", r.FinalUtility),
			fmtIters(r.RecoveryIters))
	}
	return t
}
