package broker

import (
	"fmt"
	"sync"

	"repro/internal/model"
)

// ProducerID identifies a registered producer.
type ProducerID int

// Producer is a registered publishing endpoint for one flow. All
// producers of a flow share the flow's source node and rate limit (the
// paper: "a producer publishes messages on one flow, and all the
// producers publishing to a particular flow connect to the same node");
// per-producer accounting is kept separately.
type Producer struct {
	id     ProducerID
	flow   model.FlowID
	broker *Broker

	mu        sync.Mutex
	published uint64
	throttled uint64
	detached  bool
}

// ProducerStats reports one producer's accounting.
type ProducerStats struct {
	Published uint64
	Throttled uint64
}

// RegisterProducer attaches a producer to a flow.
func (b *Broker) RegisterProducer(flow model.FlowID) (*Producer, error) {
	if flow < 0 || int(flow) >= len(b.p.Flows) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	pr := &Producer{
		id:     ProducerID(b.nextProducer),
		flow:   flow,
		broker: b,
	}
	b.nextProducer++
	b.producers[pr.id] = pr
	return pr, nil
}

// Flow returns the producer's flow.
func (p *Producer) Flow() model.FlowID { return p.flow }

// Publish injects one message through the producer, applying the flow's
// shared rate limit and recording per-producer stats.
func (p *Producer) Publish(attrs map[string]float64, body string) error {
	p.mu.Lock()
	if p.detached {
		p.mu.Unlock()
		return fmt.Errorf("broker: producer %d detached", p.id)
	}
	p.mu.Unlock()

	err := p.broker.Publish(p.flow, attrs, body)
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case err == nil:
		p.published++
	case err == ErrThrottled:
		p.throttled++
	}
	return err
}

// Stats returns the producer's counters.
func (p *Producer) Stats() ProducerStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProducerStats{Published: p.published, Throttled: p.throttled}
}

// Detach deregisters the producer; further Publish calls fail.
func (p *Producer) Detach() {
	p.mu.Lock()
	p.detached = true
	p.mu.Unlock()
	p.broker.mu.Lock()
	delete(p.broker.producers, p.id)
	p.broker.mu.Unlock()
}
