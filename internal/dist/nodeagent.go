package dist

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// nodeAgent runs Algorithm 2 (greedy consumer allocation plus the Equation
// 12 price update) for one node, and Algorithm 3 (Equation 13) for the
// links it owns (links whose To endpoint is this node, per the paper's
// footnote that one of the two endpoint nodes computes a link's price).
type nodeAgent struct {
	p    *model.Problem
	node model.NodeID
	ep   transport.Endpoint
	cfg  core.Config

	alloc *core.NodeAllocator
	gamma *core.AdaptiveGamma
	// mrAlloc is non-nil in multirate mode and replaces alloc; deliveries
	// buffers the per-class delivery rates it computes.
	mrAlloc    *multirate.NodeAllocator
	deliveries []float64

	// classes attached at this node.
	classes []model.ClassID
	// ownedLinks and their static flow coefficients.
	ownedLinks []model.LinkID
	linkFlows  map[model.LinkID][]model.FlowID

	// expected is the set of flows whose rates this agent needs each
	// round: flows through the node plus flows of owned links.
	expected map[model.FlowID]bool
	// peers maps each expected flow to its agent endpoint name.
	peers map[model.FlowID]string

	// Dynamic state.
	rates      []float64
	consumers  []int
	price      float64
	linkPrices map[model.LinkID]float64
	inactive   map[model.FlowID]bool
	tickEvery  time.Duration
	wire       transport.Wire
	staleness  int           // bounded-staleness window (runStale only)
	resend     time.Duration // re-broadcast interval when stalled (runStale)

	rec     *recorder              // flight recorder (nil = off)
	tel     *telemetry.DistMetrics // dist telemetry (nil = off)
	chirped bool                   // a chirp fired since the last progress

	done chan struct{}
}

func newNodeAgent(p *model.Problem, ix *model.Index, b model.NodeID, ep transport.Endpoint, c Config) *nodeAgent {
	cfg := c.Core
	na := &nodeAgent{
		p:          p,
		node:       b,
		ep:         ep,
		cfg:        cfg,
		alloc:      core.NewNodeAllocator(p, ix, b),
		gamma:      core.NewAdaptiveGamma(cfg),
		classes:    ix.ClassesByNode(b),
		linkFlows:  make(map[model.LinkID][]model.FlowID),
		expected:   make(map[model.FlowID]bool),
		peers:      make(map[model.FlowID]string),
		rates:      make([]float64, len(p.Flows)),
		consumers:  make([]int, len(p.Classes)),
		price:      cfg.InitialNodePrice,
		linkPrices: make(map[model.LinkID]float64),
		inactive:   make(map[model.FlowID]bool),
		tickEvery:  c.Tick,
		wire:       c.Wire,
		staleness:  c.Staleness,
		resend:     c.Resend,
		done:       make(chan struct{}),
	}
	for _, i := range ix.FlowsByNode(b) {
		na.expected[i] = true
		na.peers[i] = flowName(i)
	}
	for l := range p.Links {
		if p.Links[l].To != b {
			continue
		}
		lid := model.LinkID(l)
		na.ownedLinks = append(na.ownedLinks, lid)
		na.linkPrices[lid] = cfg.InitialLinkPrice
		for _, i := range ix.FlowsByLink(lid) {
			na.linkFlows[lid] = append(na.linkFlows[lid], i)
			na.expected[i] = true
			na.peers[i] = flowName(i)
		}
	}
	if c.Multirate {
		na.mrAlloc = multirate.NewNodeAllocator(p, ix, b)
		na.deliveries = make([]float64, len(p.Classes))
	}
	return na
}

// compute runs one allocation + price update from the current rates and
// returns the report to broadcast.
func (na *nodeAgent) compute(round int) reportMsg {
	var out core.NodeAllocation
	if na.mrAlloc != nil {
		mrOut := na.mrAlloc.Allocate(na.rates, na.price, na.consumers, na.deliveries)
		out = core.NodeAllocation{Used: mrOut.Used, BestUnsatisfied: mrOut.BestUnsatisfied}
	} else {
		out = na.alloc.Allocate(na.rates, na.consumers)
	}

	gamma1, gamma2 := na.cfg.Gamma1, na.cfg.Gamma2
	if na.cfg.Adaptive {
		gamma1 = na.gamma.Value()
		gamma2 = gamma1
	}
	prev := na.price
	capacity := na.p.Nodes[na.node].Capacity
	na.price = core.NodePriceStep(prev, out.BestUnsatisfied, out.Used, capacity, gamma1, gamma2)
	if na.cfg.Adaptive {
		na.gamma.Observe(core.PriceGap(prev, out.BestUnsatisfied, out.Used, capacity), prev)
	}

	rm := reportMsg{
		Round:  round,
		Node:   na.node,
		Price:  na.price,
		Used:   out.Used,
		BestBC: out.BestUnsatisfied,
	}
	if len(na.classes) > 0 {
		rm.Populations = make(map[model.ClassID]int, len(na.classes))
		for _, cid := range na.classes {
			rm.Populations[cid] = na.consumers[cid]
		}
		if na.mrAlloc != nil {
			rm.Deliveries = make(map[model.ClassID]float64, len(na.classes))
			for _, cid := range na.classes {
				rm.Deliveries[cid] = na.deliveries[cid]
			}
		}
	}
	if len(na.ownedLinks) > 0 {
		rm.LinkPrices = make(map[model.LinkID]float64, len(na.ownedLinks))
		for _, lid := range na.ownedLinks {
			used := 0.0
			for _, i := range na.linkFlows[lid] {
				used += na.p.Links[lid].FlowCost[i] * na.rates[i]
			}
			na.linkPrices[lid] = core.LinkPriceStep(na.linkPrices[lid], used, na.p.Links[lid].Capacity, na.cfg.LinkGamma)
			rm.LinkPrices[lid] = na.linkPrices[lid]
		}
	}
	return rm
}

// broadcast sends a report to every (still expected) flow agent and the
// collector. The body is encoded once and the payload shared across all
// peer messages (receivers treat payloads as read-only). As in
// flowAgent.announce, only a closed transport is fatal; lossy-delivery
// failures are tolerated.
func (na *nodeAgent) broadcast(rm reportMsg) error {
	payload, err := encodeBody(na.wire, nil, rm)
	if err != nil {
		return err
	}
	from := na.ep.Name()
	// Inactive flows are reported to as well: a rejoining flow's first
	// announce can race this node's round computation (the node learns of
	// the rejoin only from that announce), and if it loses the race the
	// flow still needs this round's report to pass its barrier — skipping
	// inactive peers deadlocked exactly that interleaving. Idle agents
	// drain their inbox, so the extra frames are harmless.
	for _, peer := range na.peers {
		msg := transport.Message{From: from, To: peer, Kind: reportKind, Payload: payload}
		if err := na.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
			return fmt.Errorf("dist: node %d report to %s: %w", na.node, peer, err)
		}
	}
	msg := transport.Message{From: from, To: collectorName, Kind: reportKind, Payload: payload}
	if err := na.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
		return err
	}
	return nil
}

// markInactive processes a flow departure.
func (na *nodeAgent) markInactive(i model.FlowID) {
	na.inactive[i] = true
	na.rates[i] = 0
	na.alloc.SetFlowActive(i, false)
	if na.mrAlloc != nil {
		na.mrAlloc.SetFlowActive(i, false)
	}
}

// markActive processes a flow (re)join.
func (na *nodeAgent) markActive(i model.FlowID) {
	na.inactive[i] = false
	na.alloc.SetFlowActive(i, true)
	if na.mrAlloc != nil {
		na.mrAlloc.SetFlowActive(i, true)
	}
}

// recordProgress logs one computed round (the report broadcast plus the
// round advance) and credits a pending chirp with the repair.
func (na *nodeAgent) recordProgress(round, lag int) {
	na.rec.record(EvSend, round, int64(lag), int64(len(na.peers)))
	na.rec.record(EvRound, round, 0, 0)
	if na.chirped {
		na.chirped = false
		na.tel.ObserveRepair(false)
	}
}

// observedLag is the effective staleness of round t's inputs: the gap
// between t and the oldest absorbed rate among active flows.
func (na *nodeAgent) observedLag(t int, latest map[model.FlowID]int) int {
	oldest := t
	for i := range na.expected {
		if na.inactive[i] {
			continue
		}
		if r := latest[i]; r < oldest {
			oldest = r
		}
	}
	lag := t - oldest
	if lag < 0 {
		lag = 0
	}
	return lag
}

// activeCount returns how many expected flows are still active.
func (na *nodeAgent) activeCount() int {
	n := 0
	for i := range na.expected {
		if !na.inactive[i] {
			n++
		}
	}
	return n
}

// runSync reacts to rate announcements in lock-step rounds: once all
// active expected flows have announced round t, it computes and broadcasts
// its round-t report.
func (na *nodeAgent) runSync() {
	defer close(na.done)
	pending := make(map[int]map[model.FlowID]bool)
	nextRound := 1

	for {
		m, ok := <-na.ep.Recv()
		if !ok {
			return
		}
		switch m.Kind {
		case ctrlKind:
			cm, err := decodeCtrl(m)
			if err != nil {
				continue
			}
			if cm.Stop {
				return
			}
		case rateKind:
			rm, err := decodeRate(m)
			if err != nil {
				continue
			}
			if !na.expected[rm.Flow] {
				continue
			}
			if !rm.Active {
				na.rec.record(EvRecv, rm.Round, int64(rm.Flow), 0)
				if !na.inactive[rm.Flow] {
					na.markInactive(rm.Flow)
				}
				// A departure may complete pending rounds.
			} else {
				if na.inactive[rm.Flow] {
					// Rejoin (only legal between Run calls, when no
					// rounds are pending; see Cluster.JoinFlow).
					na.markActive(rm.Flow)
				}
				na.rates[rm.Flow] = rm.Rate
				na.rec.record(EvAbsorb, rm.Round, int64(rm.Flow), 0)
				if pending[rm.Round] == nil {
					pending[rm.Round] = make(map[model.FlowID]bool)
				}
				pending[rm.Round][rm.Flow] = true
			}
			// Rounds must be processed in order: the price update is
			// sequential state. Complete rounds from nextRound upward
			// while each has a full active set.
			for na.activeCount() > 0 {
				got := 0
				for i := range pending[nextRound] {
					if !na.inactive[i] {
						got++
					}
				}
				if got < na.activeCount() {
					break
				}
				report := na.compute(nextRound)
				if err := na.broadcast(report); err != nil {
					return
				}
				na.recordProgress(nextRound, 0)
				delete(pending, nextRound)
				nextRound++
			}
		}
	}
}

// runStale is the bounded-staleness round loop: the node computes round t
// as soon as (a) at least one flow has actually announced round t and (b)
// every active expected flow's freshest rate is at most `staleness` rounds
// behind t, using the latest absorbed rate for each flow. With staleness 0
// this reduces exactly to the barrier schedule (every flow must have
// announced round t, and its latest rate then is its round-t rate). A
// resend timer re-broadcasts the latest report while idle so dropped
// report frames cannot deadlock flows or starve the collector.
func (na *nodeAgent) runStale() {
	defer close(na.done)
	latest := make(map[model.FlowID]int, len(na.expected)) // freshest announced round per flow
	nextRound := 1
	var lastReport reportMsg
	haveReport := false
	backoff := na.resend
	timer, timerC := newResendTimer(na.resend)
	defer stopResendTimer(timer)

	for {
		select {
		case m, ok := <-na.ep.Recv():
			if !ok {
				return
			}
			switch m.Kind {
			case ctrlKind:
				cm, err := decodeCtrl(m)
				if err != nil {
					continue
				}
				if cm.Stop {
					return
				}
			case rateKind:
				rm, err := decodeRate(m)
				if err != nil || !na.expected[rm.Flow] {
					continue
				}
				if !rm.Active {
					na.rec.record(EvRecv, rm.Round, int64(rm.Flow), 0)
					if !na.inactive[rm.Flow] {
						na.markInactive(rm.Flow)
					}
				} else {
					if na.inactive[rm.Flow] {
						na.markActive(rm.Flow)
					}
					// Monotonic guard: a resent or reordered older rate
					// must not overwrite a fresher one.
					if rm.Round >= latest[rm.Flow] {
						latest[rm.Flow] = rm.Round
						na.rates[rm.Flow] = rm.Rate
						na.rec.record(EvAbsorb, rm.Round, int64(rm.Flow), 0)
					} else {
						na.rec.record(EvRecv, rm.Round, int64(rm.Flow), 0)
					}
				}
			}
		case <-timerC:
			// Chirp with exponential backoff; see flowAgent.runStale.
			if haveReport {
				if err := na.broadcast(lastReport); err != nil {
					return
				}
				na.rec.record(EvResend, lastReport.Round, int64(backoff), 0)
				na.tel.ObserveChirp(false)
				na.chirped = true
			}
			if backoff < 16*na.resend {
				backoff *= 2
				na.tel.ObserveBackoff(false)
			}
			timer.Reset(backoff)
			continue
		}

		// Price updates are sequential state, so rounds are computed in
		// order; the staleness bound only relaxes which inputs each one
		// needs.
		computed := false
		for na.canComputeStale(nextRound, latest) {
			lag := na.observedLag(nextRound, latest)
			lastReport = na.compute(nextRound)
			haveReport = true
			if err := na.broadcast(lastReport); err != nil {
				return
			}
			na.recordProgress(nextRound, lag)
			nextRound++
			computed = true
		}
		if computed && timer != nil {
			// Progress: defer the re-broadcast so it fires only after a
			// genuine stall (see flowAgent.runStale).
			backoff = na.resend
			timer.Reset(backoff)
		}
	}
}

// canComputeStale reports whether round t's inputs satisfy the staleness
// bound: some active flow has reached round t, and no active flow is more
// than `staleness` rounds behind it.
func (na *nodeAgent) canComputeStale(t int, latest map[model.FlowID]int) bool {
	need := t - na.staleness
	if need < 1 {
		need = 1
	}
	reached := false
	for i := range na.expected {
		if na.inactive[i] {
			continue
		}
		r := latest[i]
		if r < need {
			return false
		}
		if r >= t {
			reached = true
		}
	}
	return reached
}

// runAsync recomputes on a timer from the latest rates.
func (na *nodeAgent) runAsync() {
	defer close(na.done)
	ticker := time.NewTicker(na.tickEvery)
	defer ticker.Stop()
	round := 1
	for {
		select {
		case m, ok := <-na.ep.Recv():
			if !ok {
				return
			}
			switch m.Kind {
			case ctrlKind:
				cm, err := decodeCtrl(m)
				if err != nil {
					continue
				}
				if cm.Stop {
					return
				}
			case rateKind:
				rm, err := decodeRate(m)
				if err != nil {
					continue
				}
				if !na.expected[rm.Flow] {
					continue
				}
				if !rm.Active {
					na.rec.record(EvRecv, rm.Round, int64(rm.Flow), 0)
					na.markInactive(rm.Flow)
				} else {
					if na.inactive[rm.Flow] {
						na.markActive(rm.Flow)
					}
					na.rates[rm.Flow] = rm.Rate
					na.rec.record(EvAbsorb, rm.Round, int64(rm.Flow), 0)
				}
			}
		case <-ticker.C:
			report := na.compute(round)
			if err := na.broadcast(report); err != nil {
				return
			}
			na.recordProgress(round, 0)
			round++
		}
	}
}
