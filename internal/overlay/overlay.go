// Package overlay models the network of nodes and unidirectional links an
// event-driven infrastructure runs on (Section 2.1 of the LRGP paper), and
// derives optimization problems from it: given a topology and a set of
// flows with subscriber nodes, it routes each flow along a shortest-path
// dissemination tree and emits the corresponding link costs L_{l,i} and
// flow-node costs F_{b,i} into a model.Problem.
//
// The paper's evaluation workloads sidestep topology (no link bottlenecks),
// so package workload builds problems directly; this package supplies the
// fuller substrate for the link-pricing extension experiments and for the
// broker deployment, where flows physically traverse links.
package overlay

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Topology is a directed graph of overlay nodes. Node IDs are 0..N-1;
// links are added explicitly.
type Topology struct {
	nodeCount int
	links     []TopoLink
	// out[b] lists indices into links leaving node b.
	out [][]int
}

// TopoLink is one unidirectional overlay link.
type TopoLink struct {
	From, To model.NodeID
	Capacity float64
}

// Errors returned by topology operations.
var (
	ErrNoPath   = errors.New("overlay: no path")
	ErrBadLink  = errors.New("overlay: invalid link")
	ErrBadBuild = errors.New("overlay: invalid build spec")
)

// NewTopology returns a topology with n nodes and no links.
func NewTopology(n int) *Topology {
	return &Topology{nodeCount: n, out: make([][]int, n)}
}

// NodeCount returns the number of nodes.
func (t *Topology) NodeCount() int { return t.nodeCount }

// Links returns a copy of the link list, indexed by the LinkIDs used in
// derived problems.
func (t *Topology) Links() []TopoLink {
	out := make([]TopoLink, len(t.links))
	copy(out, t.links)
	return out
}

// AddLink adds a unidirectional link and returns its index.
func (t *Topology) AddLink(from, to model.NodeID, capacity float64) (int, error) {
	if from < 0 || int(from) >= t.nodeCount || to < 0 || int(to) >= t.nodeCount {
		return 0, fmt.Errorf("%w: endpoints %d->%d with %d nodes", ErrBadLink, from, to, t.nodeCount)
	}
	if from == to {
		return 0, fmt.Errorf("%w: self-loop at %d", ErrBadLink, from)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("%w: capacity %g", ErrBadLink, capacity)
	}
	id := len(t.links)
	t.links = append(t.links, TopoLink{From: from, To: to, Capacity: capacity})
	t.out[from] = append(t.out[from], id)
	return id, nil
}

// AddBidirectional adds a pair of opposite links with equal capacity and
// returns their indices.
func (t *Topology) AddBidirectional(a, b model.NodeID, capacity float64) (int, int, error) {
	ab, err := t.AddLink(a, b, capacity)
	if err != nil {
		return 0, 0, err
	}
	ba, err := t.AddLink(b, a, capacity)
	if err != nil {
		return 0, 0, err
	}
	return ab, ba, nil
}

// Line builds a path topology 0-1-...-n-1 with bidirectional links.
func Line(n int, capacity float64) *Topology {
	t := NewTopology(n)
	for i := 0; i+1 < n; i++ {
		// Construction cannot fail for valid i.
		_, _, _ = t.AddBidirectional(model.NodeID(i), model.NodeID(i+1), capacity)
	}
	return t
}

// Ring builds a cycle topology with bidirectional links.
func Ring(n int, capacity float64) *Topology {
	t := Line(n, capacity)
	if n > 2 {
		_, _, _ = t.AddBidirectional(model.NodeID(n-1), 0, capacity)
	}
	return t
}

// Star builds a hub-and-spoke topology with node 0 as the hub.
func Star(n int, capacity float64) *Topology {
	t := NewTopology(n)
	for i := 1; i < n; i++ {
		_, _, _ = t.AddBidirectional(0, model.NodeID(i), capacity)
	}
	return t
}

// ShortestPath returns the link indices of a minimum-hop path from src to
// dst (BFS). An empty slice is returned when src == dst.
func (t *Topology) ShortestPath(src, dst model.NodeID) ([]int, error) {
	if src == dst {
		return nil, nil
	}
	if src < 0 || int(src) >= t.nodeCount || dst < 0 || int(dst) >= t.nodeCount {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
	}
	// prevLink[b] is the link used to first reach b; -1 when unvisited.
	prevLink := make([]int, t.nodeCount)
	for i := range prevLink {
		prevLink[i] = -1
	}
	queue := []model.NodeID{src}
	visited := make([]bool, t.nodeCount)
	visited[src] = true
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, li := range t.out[b] {
			l := t.links[li]
			if visited[l.To] {
				continue
			}
			visited[l.To] = true
			prevLink[l.To] = li
			if l.To == dst {
				return t.tracePath(src, dst, prevLink), nil
			}
			queue = append(queue, l.To)
		}
	}
	return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
}

func (t *Topology) tracePath(src, dst model.NodeID, prevLink []int) []int {
	var rev []int
	for at := dst; at != src; {
		li := prevLink[at]
		rev = append(rev, li)
		at = t.links[li].From
	}
	// Reverse into forward order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Tree is a flow's dissemination tree: the union of shortest paths from
// the source to every subscriber node.
type Tree struct {
	// Source is the tree root.
	Source model.NodeID
	// Links holds the indices of topology links in the tree.
	Links []int
	// Nodes holds every node the tree touches (source, relays,
	// subscribers), in ascending order.
	Nodes []model.NodeID
}

// BuildTree computes the dissemination tree for a flow from src to the
// given subscriber nodes. Paths are minimum-hop; shared prefixes are
// merged (each link appears once).
func (t *Topology) BuildTree(src model.NodeID, subscribers []model.NodeID) (Tree, error) {
	linkSet := make(map[int]bool)
	nodeSet := map[model.NodeID]bool{src: true}
	for _, dst := range subscribers {
		path, err := t.ShortestPath(src, dst)
		if err != nil {
			return Tree{}, fmt.Errorf("subscriber %d: %w", dst, err)
		}
		for _, li := range path {
			linkSet[li] = true
			nodeSet[t.links[li].From] = true
			nodeSet[t.links[li].To] = true
		}
	}
	tree := Tree{Source: src}
	for li := range linkSet {
		tree.Links = append(tree.Links, li)
	}
	for b := range nodeSet {
		tree.Nodes = append(tree.Nodes, b)
	}
	sortInts(tree.Links)
	sortNodeIDs(tree.Nodes)
	return tree, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortNodeIDs(a []model.NodeID) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
