// Package transport provides named message endpoints for the distributed
// LRGP runtime (package dist) and the event broker (package broker).
//
// Two implementations share one interface: an in-memory hub with
// deterministic delivery and optional fault injection (drops, delay,
// partitions), and a TCP transport with length-prefixed frames in either
// of two selectable wire formats (JSON for compatibility and debugging,
// compact varint-framed binary for throughput — see Wire). Agents address
// each other by endpoint name ("node/2", "flow/5", "collector"), so the
// same agent code runs over either.
package transport

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Message is one addressed datagram. Payloads are pre-encoded by the
// sender (JSON or a self-describing binary layout — receivers tell them
// apart by the first payload byte), so the bytes carried are identical
// across transports.
//
// Payload is shared, not copied, on in-memory delivery and when one
// encoded payload fans out to several peers, so receivers must treat it
// as read-only.
type Message struct {
	// From and To are endpoint names.
	From string `json:"from"`
	To   string `json:"to"`
	// Kind tags the payload type (e.g. "rate", "node", "link").
	Kind string `json:"kind"`
	// Payload is the encoded body. Read-only for receivers.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Encode marshals v into a Message payload.
func Encode(from, to, kind string, v any) (Message, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return Message{}, fmt.Errorf("transport: encode %s: %w", kind, err)
	}
	return Message{From: from, To: to, Kind: kind, Payload: data}, nil
}

// Decode unmarshals a Message payload into v.
func Decode(m Message, v any) error {
	if err := json.Unmarshal(m.Payload, v); err != nil {
		return fmt.Errorf("transport: decode %s: %w", m.Kind, err)
	}
	return nil
}

// Endpoint is one agent's attachment to a network.
type Endpoint interface {
	// Name returns the endpoint's address.
	Name() string
	// Send delivers the message to msg.To. Send must not block
	// indefinitely on a slow receiver; implementations buffer.
	Send(msg Message) error
	// Recv returns the stream of inbound messages. The channel closes
	// when the endpoint is closed.
	Recv() <-chan Message
	// Close detaches the endpoint and releases resources.
	Close() error
}

// Network creates named endpoints.
type Network interface {
	// Endpoint attaches a new endpoint with the given unique name.
	Endpoint(name string) (Endpoint, error)
	// Close shuts the whole network down.
	Close() error
}

// Errors shared by implementations.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrDuplicate   = errors.New("transport: duplicate endpoint name")
	ErrUnknownDest = errors.New("transport: unknown destination")
	ErrDropped     = errors.New("transport: message dropped by fault injection")
)

// WireStats attributes traffic to one wire format.
type WireStats struct {
	// Frames counts messages (or TCP frames) carried in this format.
	Frames uint64
	// Bytes totals the payload bytes carried in this format.
	Bytes uint64
}

// Stats counts traffic through a network, for communication-overhead
// experiments and the dist telemetry families.
type Stats struct {
	// Delivered counts messages handed to a destination endpoint.
	Delivered uint64
	// Dropped counts messages lost to fault injection or partitions.
	Dropped uint64
	// Bytes totals the payload bytes of delivered messages.
	Bytes uint64
	// JSON and Binary split the delivered traffic per wire format, so
	// mixed-wire runs can attribute bytes and frames to each encoding.
	// The in-memory transport classifies by the self-describing first
	// payload byte; the TCP transport counts by the frame layout it
	// actually wrote.
	JSON   WireStats
	Binary WireStats
}

// classifyPayload reports whether an encoded payload is JSON. Payloads are
// self-describing by their first byte (see Message): '{' or '[' open a
// JSON document, anything else (the 'B' batch tag, the dist binary tags)
// is binary. Empty payloads count as JSON — only the legacy encoding
// omits bodies.
func classifyPayload(p []byte) (isJSON bool) {
	return len(p) == 0 || p[0] == '{' || p[0] == '['
}

// Meter is implemented by networks that count their traffic.
type Meter interface {
	// NetStats returns a snapshot of the counters.
	NetStats() Stats
}
