// Trade data: the first motivating scenario of the paper (Section 1.1).
//
// An application publishes one message per stock trade. Two kinds of
// consumers want the stream: paying "gold" consumers at brokerage firms
// (high rank, nearly inelastic — most of their value needs full rate) and
// public Internet consumers (low rank, elastic). Before reaching public
// consumers, messages are transformed: fields available only to gold
// consumers are removed. Under resource pressure the system sheds public
// consumers via admission control rather than degrade gold service.
//
//	go run ./examples/tradedata
package main

import (
	"fmt"
	"log"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func buildProblem(capacity float64) *model.Problem {
	return &model.Problem{
		Name: "trade-data",
		Flows: []model.Flow{
			{ID: 0, Name: "trades", Source: 0, RateMin: 50, RateMax: 500},
		},
		Nodes: []model.Node{
			// One shared hub node serves both tiers, so admission control
			// genuinely trades gold against public consumers.
			{ID: 0, Name: "hub", Capacity: capacity, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			// Gold: nearly inelastic — utility saturates only close to
			// the full 500 msg/s, with a high rank. Reliability work
			// (acks, redelivery) makes its per-consumer cost higher:
			// G=40 vs 19.
			{ID: 0, Name: "gold", Flow: 0, Node: 0, MaxConsumers: 60,
				CostPerConsumer: 40, Utility: utility.LinearCap{Scale: 30, Knee: 400}},
			// Public: elastic log utility, low rank, numerous.
			{ID: 1, Name: "public", Flow: 0, Node: 0, MaxConsumers: 5000,
				CostPerConsumer: 19, Utility: utility.NewLog(2)},
		},
	}
}

func optimizeAndEnact(capacity float64) error {
	p := buildProblem(capacity)
	engine, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		return err
	}
	res := engine.Solve(500)

	// Enact in a real broker: gold consumers see raw trades, public
	// consumers get the counterparty field stripped.
	b, err := broker.New(p, broker.WithTransform(1, broker.DropAttrs{"counterparty"}))
	if err != nil {
		return err
	}
	var goldSample, publicSample broker.Message
	for i := 0; i < p.Classes[0].MaxConsumers; i++ {
		if _, err := b.AttachConsumer(0, nil, func(m broker.Message) { goldSample = m }); err != nil {
			return err
		}
	}
	for i := 0; i < p.Classes[1].MaxConsumers; i++ {
		if _, err := b.AttachConsumer(1, nil, func(m broker.Message) { publicSample = m }); err != nil {
			return err
		}
	}
	if err := b.ApplyAllocation(res.Allocation); err != nil {
		return err
	}
	if err := b.Publish(0, map[string]float64{
		"price": 101.25, "qty": 300, "counterparty": 77,
	}, "IBM trade"); err != nil {
		return err
	}

	gold, _ := b.ClassStats(0)
	public, _ := b.ClassStats(1)
	fmt.Printf("capacity %8.0f | rate %5.1f msg/s | gold %2d/%2d | public %4d/%4d | utility %8.0f\n",
		capacity, res.Allocation.Rates[0],
		gold.Admitted, gold.Attached, public.Admitted, public.Attached, res.Utility)

	if gold.Admitted > 0 {
		if _, ok := goldSample.Attrs["counterparty"]; !ok {
			return fmt.Errorf("gold consumer lost the counterparty field")
		}
	}
	if public.Admitted > 0 {
		if _, ok := publicSample.Attrs["counterparty"]; ok {
			return fmt.Errorf("public consumer saw the counterparty field")
		}
	}
	return nil
}

func main() {
	fmt.Println("Trade-data scenario: shrinking capacity sheds public consumers first.")
	fmt.Println()
	// From generous to starved: the optimizer keeps the gold class (and
	// a high rate for it) as long as possible while public admission
	// absorbs the squeeze.
	for _, capacity := range []float64{2_000_000, 600_000, 150_000, 30_000} {
		if err := optimizeAndEnact(capacity); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println()
	fmt.Println("The public tier absorbs the cuts first: gold stays fully admitted down to")
	fmt.Println("a fraction of the original capacity (trading rate for admission), and only")
	fmt.Println("starvation-level capacity sheds gold consumers. Public messages never carry")
	fmt.Println("the gold-only counterparty field.")
}
