package multirate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
	"repro/internal/workload"
)

// heteroProblem: one flow, one node, two classes with very different rate
// appetites — the case multirate dissemination is for. The high-rank
// class wants a fast stream; the numerous low-rank class is nearly
// indifferent above a low rate.
func heteroProblem() *model.Problem {
	return &model.Problem{
		Name: "hetero",
		Flows: []model.Flow{
			{ID: 0, Source: 0, RateMin: 10, RateMax: 1000},
		},
		Nodes: []model.Node{
			{ID: 0, Capacity: 1_000_000, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "fast", Flow: 0, Node: 0, MaxConsumers: 20,
				CostPerConsumer: 19, Utility: utility.NewPower(100, 0.5)},
			{ID: 1, Name: "slow", Flow: 0, Node: 0, MaxConsumers: 10000,
				CostPerConsumer: 19, Utility: utility.NewLog(4)},
		},
	}
}

func TestNewEngineValidates(t *testing.T) {
	p := heteroProblem()
	p.Classes[0].Utility = nil
	if _, err := NewEngine(p, core.Config{}); err == nil {
		t.Error("accepted invalid problem")
	}
}

func TestSolveFeasibleAndConverges(t *testing.T) {
	p := heteroProblem()
	e, err := NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(600)
	if !res.Converged {
		t.Fatalf("did not converge; trace tail %v", res.Trace[len(res.Trace)-5:])
	}
	ix := model.NewIndex(p)
	if err := CheckFeasible(p, ix, res.Allocation, 1e-6); err != nil {
		t.Errorf("infeasible: %v", err)
	}
	if got := TotalUtility(p, res.Allocation); math.Abs(got-res.Utility) > 1e-6*(1+res.Utility) {
		t.Errorf("utility mismatch: %g vs %g", res.Utility, got)
	}
}

func TestDeliveryNeverExceedsSourceRate(t *testing.T) {
	p := heteroProblem()
	e, err := NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e.Step()
		a := e.Allocation()
		for j, c := range p.Classes {
			if a.Delivery[j] > a.SourceRates[c.Flow]+1e-12 {
				t.Fatalf("iter %d: delivery[%d]=%g above source %g",
					i+1, j, a.Delivery[j], a.SourceRates[c.Flow])
			}
			if a.Delivery[j] < p.Flows[c.Flow].RateMin-1e-12 {
				t.Fatalf("iter %d: delivery[%d]=%g below rate floor", i+1, j, a.Delivery[j])
			}
		}
	}
}

func TestMultirateDominatesSingleRateOnHeterogeneousClasses(t *testing.T) {
	p := heteroProblem()

	single, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	sres := single.Solve(600)

	multi, err := NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	mres := multi.Solve(600)

	// The multirate feasible set strictly contains the single-rate one;
	// on this workload the split (full-rate stream for the small
	// high-rank class, thin stream for the crowd) pays off massively
	// (+47% measured; assert a conservative +20%).
	if mres.Utility <= sres.Utility*1.20 {
		t.Errorf("multirate %.0f not >20%% above single-rate %.0f", mres.Utility, sres.Utility)
	}
	// And the rates must actually split.
	a := mres.Allocation
	if !(a.Delivery[0] > a.Delivery[1]) {
		t.Errorf("deliveries did not split: fast=%g slow=%g", a.Delivery[0], a.Delivery[1])
	}
}

func TestMultirateMatchesSingleRateOnHomogeneousClasses(t *testing.T) {
	// When every class of a flow shares one utility, thinning buys
	// nothing: multirate should land within 2% of single-rate LRGP (it
	// cannot be meaningfully worse, and it cannot exploit heterogeneity
	// that does not exist).
	p := workload.Base()

	single, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	sres := single.Solve(600)

	multi, err := NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	mres := multi.Solve(600)

	if mres.Utility < sres.Utility*0.98 {
		t.Errorf("multirate %.0f below 98%% of single-rate %.0f on homogeneous workload",
			mres.Utility, sres.Utility)
	}
}

func TestMultirateOnBaseWorkloadFeasible(t *testing.T) {
	p := workload.Base()
	e, err := NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(600)
	ix := model.NewIndex(p)
	if err := CheckFeasible(p, ix, res.Allocation, 1e-6); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}

func TestAllocationClone(t *testing.T) {
	a := Allocation{
		SourceRates: []float64{1},
		Delivery:    []float64{2},
		Consumers:   []int{3},
	}
	b := a.Clone()
	b.SourceRates[0], b.Delivery[0], b.Consumers[0] = 9, 9, 9
	if a.SourceRates[0] != 1 || a.Delivery[0] != 2 || a.Consumers[0] != 3 {
		t.Error("Clone aliases storage")
	}
}

func TestDesiredDelivery(t *testing.T) {
	u := utility.NewLog(20) // U'(d) = 20/(1+d)
	// price 0 -> max.
	if got := desiredDelivery(u, 0, 10, 1000); got != 1000 {
		t.Errorf("zero price: %g", got)
	}
	// Very high price -> floor.
	if got := desiredDelivery(u, 100, 10, 1000); got != 10 {
		t.Errorf("high price: %g", got)
	}
	// Interior: U'(d) = 0.5 => d = 39.
	if got := desiredDelivery(u, 0.5, 10, 1000); math.Abs(got-39) > 1e-9 {
		t.Errorf("interior: %g, want 39", got)
	}
	// Non-inverter falls back to bisection.
	f := fakeConcave{}
	got := desiredDelivery(f, f.Deriv(50), 10, 1000)
	if math.Abs(got-50) > 1e-6 {
		t.Errorf("bisection path: %g, want 50", got)
	}
}

// fakeConcave is a concave utility without InvDeriv.
type fakeConcave struct{}

func (fakeConcave) Value(r float64) float64 { return math.Sqrt(r) }
func (fakeConcave) Deriv(r float64) float64 { return 0.5 / math.Sqrt(r) }
func (fakeConcave) Name() string            { return "sqrt" }
