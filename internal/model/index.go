package model

// Index precomputes the lookup functions of Section 2.2/2.3 of the paper
// (flowMap, attachMap, nodeClasses, linkMap, nodeMap and their inverses) so
// the optimizer's inner loops avoid repeated scans. Build it once per
// Problem with NewIndex; it is immutable afterwards and safe for concurrent
// reads.
type Index struct {
	p *Problem

	// classesByFlow[i] lists the classes consuming flow i (C_i).
	classesByFlow [][]ClassID
	// classesByNode[b] lists the classes attached at node b
	// (nodeClasses(b)).
	classesByNode [][]ClassID
	// flowsByNode[b] lists the flows reaching node b (nodeMap(b)), in
	// ascending flow order.
	flowsByNode [][]FlowID
	// flowsByLink[l] lists the flows traversing link l (linkMap(l)).
	flowsByLink [][]FlowID
	// nodesByFlow[i] lists the nodes reached by flow i (B_i).
	nodesByFlow [][]NodeID
	// linksByFlow[i] lists the links traversed by flow i (L_i).
	linksByFlow [][]LinkID
}

// NewIndex builds the index. The problem must already be valid (see
// Validate); NewIndex does not re-check it.
func NewIndex(p *Problem) *Index {
	ix := &Index{
		p:             p,
		classesByFlow: make([][]ClassID, len(p.Flows)),
		classesByNode: make([][]ClassID, len(p.Nodes)),
		flowsByNode:   make([][]FlowID, len(p.Nodes)),
		flowsByLink:   make([][]FlowID, len(p.Links)),
		nodesByFlow:   make([][]NodeID, len(p.Flows)),
		linksByFlow:   make([][]LinkID, len(p.Flows)),
	}
	for _, c := range p.Classes {
		ix.classesByFlow[c.Flow] = append(ix.classesByFlow[c.Flow], c.ID)
		ix.classesByNode[c.Node] = append(ix.classesByNode[c.Node], c.ID)
	}
	for _, n := range p.Nodes {
		for i := range p.Flows {
			if _, ok := n.FlowCost[FlowID(i)]; ok {
				ix.flowsByNode[n.ID] = append(ix.flowsByNode[n.ID], FlowID(i))
				ix.nodesByFlow[i] = append(ix.nodesByFlow[i], n.ID)
			}
		}
	}
	for _, l := range p.Links {
		for i := range p.Flows {
			if _, ok := l.FlowCost[FlowID(i)]; ok {
				ix.flowsByLink[l.ID] = append(ix.flowsByLink[l.ID], FlowID(i))
				ix.linksByFlow[i] = append(ix.linksByFlow[i], l.ID)
			}
		}
	}
	return ix
}

// Problem returns the indexed problem.
func (ix *Index) Problem() *Problem { return ix.p }

// ClassesByFlow returns C_i, the classes consuming flow i.
func (ix *Index) ClassesByFlow(i FlowID) []ClassID { return ix.classesByFlow[i] }

// ClassesByNode returns nodeClasses(b), the classes attached at node b.
func (ix *Index) ClassesByNode(b NodeID) []ClassID { return ix.classesByNode[b] }

// FlowsByNode returns nodeMap(b), the flows reaching node b.
func (ix *Index) FlowsByNode(b NodeID) []FlowID { return ix.flowsByNode[b] }

// FlowsByLink returns linkMap(l), the flows traversing link l.
func (ix *Index) FlowsByLink(l LinkID) []FlowID { return ix.flowsByLink[l] }

// NodesByFlow returns B_i, the nodes reached by flow i.
func (ix *Index) NodesByFlow(i FlowID) []NodeID { return ix.nodesByFlow[i] }

// LinksByFlow returns L_i, the links traversed by flow i.
func (ix *Index) LinksByFlow(i FlowID) []LinkID { return ix.linksByFlow[i] }
