package broker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
	"repro/internal/workload"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: t0} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// brokerProblem: one flow, two classes (gold at node 0, public at node 1).
func brokerProblem() *model.Problem {
	return &model.Problem{
		Name: "broker-test",
		Flows: []model.Flow{
			{ID: 0, Name: "trades", Source: 0, RateMin: 10, RateMax: 1000},
		},
		Nodes: []model.Node{
			{ID: 0, Capacity: 9e5, FlowCost: map[model.FlowID]float64{0: 3}},
			{ID: 1, Capacity: 9e5, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "gold", Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 19, Utility: utility.NewLog(100)},
			{ID: 1, Name: "public", Flow: 0, Node: 1, MaxConsumers: 10, CostPerConsumer: 19, Utility: utility.NewLog(5)},
		},
	}
}

func TestNewValidates(t *testing.T) {
	p := brokerProblem()
	p.Classes[0].Utility = nil
	if _, err := New(p); err == nil {
		t.Error("New accepted invalid problem")
	}
}

func TestPublishDeliversToAdmittedOnly(t *testing.T) {
	clock := newFakeClock()
	b, err := New(brokerProblem(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}

	var goldGot, publicGot int
	gold, _ := b.AttachConsumer(0, nil, func(Message) { goldGot++ })
	public, _ := b.AttachConsumer(1, nil, func(Message) { publicGot++ })

	// Nothing admitted yet.
	if err := b.Publish(0, map[string]float64{"price": 80}, "t1"); err != nil {
		t.Fatal(err)
	}
	if goldGot != 0 || publicGot != 0 {
		t.Fatalf("delivered before admission: gold=%d public=%d", goldGot, publicGot)
	}

	// Admit gold only.
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{100}, Consumers: []int{1, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(0, map[string]float64{"price": 81}, "t2"); err != nil {
		t.Fatal(err)
	}
	if goldGot != 1 || publicGot != 0 {
		t.Fatalf("after admission: gold=%d public=%d, want 1/0", goldGot, publicGot)
	}

	if adm, _ := b.Admitted(gold); !adm {
		t.Error("gold not reported admitted")
	}
	if adm, _ := b.Admitted(public); adm {
		t.Error("public reported admitted")
	}
}

func TestPublishThrottles(t *testing.T) {
	clock := newFakeClock()
	b, err := New(brokerProblem(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	// Initial rate is RateMin=10 with burst 10.
	throttled := 0
	for i := 0; i < 15; i++ {
		if err := b.Publish(0, nil, ""); errors.Is(err, ErrThrottled) {
			throttled++
		}
	}
	if throttled != 5 {
		t.Errorf("throttled %d of 15, want 5", throttled)
	}
	fs, _ := b.FlowStats(0)
	if fs.Published != 10 || fs.Throttled != 5 || fs.Rate != 10 {
		t.Errorf("stats = %+v", fs)
	}

	// Enact a higher rate: clock advance refills at the new rate.
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{100}, Consumers: []int{0, 0}})
	clock.Advance(time.Second)
	ok := 0
	for i := 0; i < 150; i++ {
		if b.Publish(0, nil, "") == nil {
			ok++
		}
	}
	if ok != 100 {
		t.Errorf("admitted %d after re-rating, want 100", ok)
	}
}

func TestFilterAndTransform(t *testing.T) {
	clock := newFakeClock()
	p := brokerProblem()
	b, err := New(p,
		WithClock(clock.Now),
		WithTransform(1, DropAttrs{"insider"}),
	)
	if err != nil {
		t.Fatal(err)
	}

	var goldMsgs, publicMsgs []Message
	_, _ = b.AttachConsumer(0, nil, func(m Message) { goldMsgs = append(goldMsgs, m) })
	_, _ = b.AttachConsumer(1, AttrFilter{"price", CmpGT, 80}, func(m Message) { publicMsgs = append(publicMsgs, m) })
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{1, 1}})

	pub := func(price float64) {
		if err := b.Publish(0, map[string]float64{"price": price, "insider": 1}, "x"); err != nil {
			t.Fatal(err)
		}
	}
	pub(79) // public filtered out
	pub(85) // both receive

	if len(goldMsgs) != 2 {
		t.Fatalf("gold got %d messages, want 2", len(goldMsgs))
	}
	if len(publicMsgs) != 1 {
		t.Fatalf("public got %d messages, want 1", len(publicMsgs))
	}
	// Gold retains the insider field; public's copy had it dropped.
	if _, ok := goldMsgs[1].Attrs["insider"]; !ok {
		t.Error("gold lost the insider attribute")
	}
	if _, ok := publicMsgs[0].Attrs["insider"]; ok {
		t.Error("public kept the insider attribute")
	}

	cs, _ := b.ClassStats(1)
	if cs.Delivered != 1 || cs.Filtered != 1 {
		t.Errorf("public stats = %+v", cs)
	}
}

func TestApplyAllocationShrinksLIFO(t *testing.T) {
	clock := newFakeClock()
	b, err := New(brokerProblem(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := b.AttachConsumer(0, nil, nil)
	second, _ := b.AttachConsumer(0, nil, nil)
	third, _ := b.AttachConsumer(0, nil, nil)

	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{10}, Consumers: []int{3, 0}})
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{10}, Consumers: []int{1, 0}})

	// Earliest attached stays admitted.
	if adm, _ := b.Admitted(first); !adm {
		t.Error("first unadmitted")
	}
	for _, id := range []ConsumerID{second, third} {
		if adm, _ := b.Admitted(id); adm {
			t.Errorf("consumer %d still admitted", id)
		}
	}
}

func TestApplyAllocationCapsAtAttached(t *testing.T) {
	clock := newFakeClock()
	b, _ := New(brokerProblem(), WithClock(clock.Now))
	_, _ = b.AttachConsumer(0, nil, nil)
	// Optimizer wants 5 admitted but only 1 attached.
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{10}, Consumers: []int{5, 0}}); err != nil {
		t.Fatal(err)
	}
	cs, _ := b.ClassStats(0)
	if cs.Admitted != 1 {
		t.Errorf("admitted = %d, want capped at 1", cs.Admitted)
	}
}

func TestApplyAllocationShapeError(t *testing.T) {
	b, _ := New(brokerProblem())
	if err := b.ApplyAllocation(model.Allocation{Rates: []float64{1}}); err == nil {
		t.Error("accepted malformed allocation")
	}
}

func TestDetachConsumer(t *testing.T) {
	b, _ := New(brokerProblem())
	id, _ := b.AttachConsumer(0, nil, nil)
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{10}, Consumers: []int{1, 0}})
	if err := b.DetachConsumer(id); err != nil {
		t.Fatal(err)
	}
	cs, _ := b.ClassStats(0)
	if cs.Attached != 0 || cs.Admitted != 0 {
		t.Errorf("stats after detach = %+v", cs)
	}
	if err := b.DetachConsumer(id); !errors.Is(err, ErrUnknownConsumer) {
		t.Errorf("double detach error = %v", err)
	}
	if _, err := b.Admitted(id); !errors.Is(err, ErrUnknownConsumer) {
		t.Errorf("Admitted after detach error = %v", err)
	}
}

func TestUnknownIDs(t *testing.T) {
	b, _ := New(brokerProblem())
	if _, err := b.AttachConsumer(99, nil, nil); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("AttachConsumer: %v", err)
	}
	if err := b.Publish(99, nil, ""); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("Publish: %v", err)
	}
	if _, err := b.FlowStats(99); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("FlowStats: %v", err)
	}
	if _, err := b.ClassStats(99); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("ClassStats: %v", err)
	}
}

func TestClassRateCapThinsDelivery(t *testing.T) {
	clock := newFakeClock()
	b, err := New(brokerProblem(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	var gold, public int
	_, _ = b.AttachConsumer(0, nil, func(Message) { gold++ })
	_, _ = b.AttachConsumer(1, nil, func(Message) { public++ })
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{1, 1}})

	// Public consumers get a thinned stream: 1 msg/s against the flow's
	// full rate.
	if err := b.SetClassRateCap(1, 1); err != nil {
		t.Fatal(err)
	}
	// 10 messages over 10 seconds at ~1 msg/s of clock advance.
	for i := 0; i < 10; i++ {
		clock.Advance(100 * time.Millisecond)
		if err := b.Publish(0, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	if gold != 10 {
		t.Errorf("gold received %d, want all 10", gold)
	}
	// The thinner starts with burst 1 and refills 1/s: over 1s total it
	// admits about 2 messages.
	if public < 1 || public > 3 {
		t.Errorf("public received %d, want a thinned stream (~2)", public)
	}
	cs, _ := b.ClassStats(1)
	if cs.Thinned != uint64(10-public) {
		t.Errorf("thinned = %d, want %d", cs.Thinned, 10-public)
	}

	// Removing the cap restores full delivery.
	if err := b.SetClassRateCap(1, 0); err != nil {
		t.Fatal(err)
	}
	before := public
	clock.Advance(time.Second)
	if err := b.Publish(0, nil, ""); err != nil {
		t.Fatal(err)
	}
	if public != before+1 {
		t.Errorf("delivery not restored after cap removal")
	}
}

func TestSetClassRateCapRerates(t *testing.T) {
	clock := newFakeClock()
	b, _ := New(brokerProblem(), WithClock(clock.Now))
	if err := b.SetClassRateCap(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := b.SetClassRateCap(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := b.SetClassRateCap(99, 1); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("error = %v, want ErrUnknownClass", err)
	}
}

func TestWorkUnitsDeterministic(t *testing.T) {
	run := func() uint64 {
		clock := newFakeClock()
		b, _ := New(brokerProblem(), WithClock(clock.Now))
		for i := 0; i < 5; i++ {
			_, _ = b.AttachConsumer(0, nil, nil)
		}
		_ = b.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{5, 0}})
		for i := 0; i < 20; i++ {
			clock.Advance(time.Second)
			_ = b.Publish(0, map[string]float64{"price": float64(i)}, "")
		}
		return b.WorkUnits()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Errorf("work units %d vs %d, want equal and nonzero", a, b)
	}
	// Structure: 20 messages x (1 route + 1 transform + 5 filters + 5
	// deliveries) = 240.
	if a != 240 {
		t.Errorf("work units = %d, want 240", a)
	}
}

func TestControllerEndToEnd(t *testing.T) {
	// Full loop on the base workload: attach consumers, reoptimize, and
	// verify the broker enforces the optimizer's decisions.
	clock := newFakeClock()
	p := workload.Base()
	b, err := New(p, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}

	// Demand: 100 consumers for the top class (4, rank 1 flow 0 node 0)
	// and 50 for class 18 (rank 100).
	for i := 0; i < 100; i++ {
		if _, err := b.AttachConsumer(4, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, err := b.AttachConsumer(18, nil, nil); err != nil {
			t.Fatal(err)
		}
	}

	ctrl, err := NewController(b, ControllerConfig{Core: core.Config{Adaptive: true}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, enacted, err := ctrl.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if !enacted {
		t.Fatal("first cycle did not enact")
	}
	// Demand sync: n^max became the attached counts.
	if p.Classes[4].MaxConsumers != 100 || p.Classes[18].MaxConsumers != 50 {
		t.Errorf("demand sync: nmax = %d/%d", p.Classes[4].MaxConsumers, p.Classes[18].MaxConsumers)
	}
	// With tiny demand relative to capacity everyone is admitted at high
	// rates.
	cs4, _ := b.ClassStats(4)
	cs18, _ := b.ClassStats(18)
	if cs4.Admitted != 100 || cs18.Admitted != 50 {
		t.Errorf("admitted = %d/%d, want 100/50", cs4.Admitted, cs18.Admitted)
	}
	if alloc.Rates[0] <= 0 {
		t.Errorf("rate[0] = %g", alloc.Rates[0])
	}

	// A second cycle with identical demand converges to (nearly) the
	// same allocation and is typically below the enactment threshold.
	_, enacted2, err := ctrl.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	total, skipped := ctrl.Cycles()
	if total != 2 {
		t.Errorf("cycles = %d", total)
	}
	if enacted2 && skipped != 0 {
		t.Errorf("inconsistent: enacted2=%v skipped=%d", enacted2, skipped)
	}
}

func TestControllerLoop(t *testing.T) {
	b, err := New(workload.Base())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, _ = b.AttachConsumer(0, nil, nil)
	}
	ctrl, err := NewController(b, ControllerConfig{Core: core.Config{Adaptive: true}, ItersPerCycle: 20})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := ctrl.Loop(time.Millisecond, stop, nil)
	deadline := time.After(5 * time.Second)
	for {
		if total, _ := ctrl.Cycles(); total >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("loop did not run 3 cycles in time")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop")
	}
}

func TestRelChange(t *testing.T) {
	tests := []struct {
		prev, next, want float64
	}{
		{0, 0, 0},
		{10, 10, 0},
		{10, 11, 0.1 / 1.1}, // |1|/11
		{0, 5, 1},
	}
	for _, tt := range tests {
		got := relChange(tt.prev, tt.next)
		if diff := got - tt.want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("relChange(%g,%g) = %g, want %g", tt.prev, tt.next, got, tt.want)
		}
	}
}
