package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"strings"
)

// EventRecord is the JSONL form of one flight-recorder event, the schema
// shared by Cluster.WriteEvents, the stall detector's post-mortem dumps,
// and the lrgp-trace analyzer.
type EventRecord struct {
	// Agent is the recording agent's endpoint name ("flow/3", "node/7",
	// "collector", "host/2", or "cluster" for detector-level events).
	Agent string `json:"agent"`
	// Seq is the agent-local sequence number.
	Seq uint64 `json:"seq"`
	// Nanos is time since the cluster's shared monotonic epoch.
	Nanos int64 `json:"ns"`
	// Ev is the event type name (see EventType).
	Ev string `json:"ev"`
	// Round is the causal correlation key (0 for round-less events).
	Round int `json:"round"`
	// A and B are the event's per-type arguments.
	A int64 `json:"a,omitempty"`
	B int64 `json:"b,omitempty"`
}

// writeEvents renders events as JSONL, sorted by timestamp (ties broken
// by agent and sequence, so output is deterministic).
func writeEvents(w io.Writer, events []Event) error {
	slices.SortFunc(events, func(a, b Event) int {
		if a.Nanos != b.Nanos {
			if a.Nanos < b.Nanos {
				return -1
			}
			return 1
		}
		if c := strings.Compare(a.Agent, b.Agent); c != 0 {
			return c
		}
		return int(a.Seq) - int(b.Seq)
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		rec := EventRecord{
			Agent: e.Agent, Seq: e.Seq, Nanos: e.Nanos,
			Ev: e.Type.String(), Round: e.Round, A: e.A, B: e.B,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("dist: write events: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEventLog parses a JSONL event log produced by Cluster.WriteEvents
// or a stall post-mortem. Blank lines are skipped; a malformed line fails
// with its line number.
func ReadEventLog(r io.Reader) ([]EventRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []EventRecord
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec EventRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("dist: event log line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: read event log: %w", err)
	}
	return out, nil
}
