package experiments

import (
	"repro/internal/core"
	"repro/internal/overlay"
	"repro/internal/utility"
)

// PruneExperiment (X4) exercises the second stage of the paper's Section
// 2.4 two-stage approximation, which the paper defers: after stage 1,
// flows are re-routed to only the subscribers that actually received
// consumers, freeing the flow-node costs of dead branches.
//
// The scenario: a 5-node line. A "hot" flow with heavy per-node processing
// spans the whole line to reach a near-worthless far class; "local" and
// "edge" flows feed valuable classes on the relay nodes. Stage 1 starves
// the far class; stage 2 prunes the hot flow's tail and the freed relay
// capacity admits more of the competing consumers.
func PruneExperiment(opts Options) (*overlay.TwoStageResult, error) {
	o := opts.normalized()

	topo := overlay.Line(5, 1e9)
	flows := []overlay.FlowSpec{
		{
			Name: "hot", Source: 0, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 300,
			Classes: []overlay.ClassSpec{
				{Name: "hot-near", Node: 1, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(100)},
				{Name: "hot-far", Node: 4, MaxConsumers: 50, CostPerConsumer: 19, Utility: utility.NewLog(0.01)},
			},
		},
		{
			Name: "local", Source: 2, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []overlay.ClassSpec{
				{Name: "local-a", Node: 2, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(50)},
				{Name: "local-b", Node: 3, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(50)},
			},
		},
		{
			Name: "edge", Source: 4, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []overlay.ClassSpec{
				{Name: "edge-a", Node: 4, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(80)},
			},
		},
	}
	return overlay.TwoStageSolve(topo, 40_000, flows, o.engineConfig(core.Config{Adaptive: true}), 3*o.Iterations)
}
