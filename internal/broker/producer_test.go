package broker

import (
	"errors"
	"testing"
	"time"

	"repro/internal/model"
)

func TestProducerPublishAndStats(t *testing.T) {
	clock := newFakeClock()
	b, err := New(brokerProblem(), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	_, _ = b.AttachConsumer(0, nil, func(Message) { got++ })
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{10}, Consumers: []int{1, 0}})

	pr, err := b.RegisterProducer(0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Flow() != 0 {
		t.Errorf("flow = %d", pr.Flow())
	}

	// Burst 10 admitted, then throttled.
	for i := 0; i < 15; i++ {
		_ = pr.Publish(map[string]float64{"v": float64(i)}, "")
	}
	st := pr.Stats()
	if st.Published != 10 || st.Throttled != 5 {
		t.Errorf("stats = %+v, want 10/5", st)
	}
	if got != 10 {
		t.Errorf("consumer received %d", got)
	}
}

func TestTwoProducersShareTheFlowLimit(t *testing.T) {
	clock := newFakeClock()
	b, _ := New(brokerProblem(), WithClock(clock.Now))
	a, _ := b.RegisterProducer(0)
	c, _ := b.RegisterProducer(0)

	// Rate 10, burst 10 shared: 6 + 6 interleaved -> 10 total admitted.
	admitted := 0
	for i := 0; i < 6; i++ {
		if a.Publish(nil, "") == nil {
			admitted++
		}
		if c.Publish(nil, "") == nil {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("admitted %d across producers, want 10 (shared bucket)", admitted)
	}
	sa, sc := a.Stats(), c.Stats()
	if sa.Published+sc.Published != 10 || sa.Throttled+sc.Throttled != 2 {
		t.Errorf("split = %+v / %+v", sa, sc)
	}
}

func TestProducerDetach(t *testing.T) {
	b, _ := New(brokerProblem())
	pr, _ := b.RegisterProducer(0)
	pr.Detach()
	if err := pr.Publish(nil, ""); err == nil {
		t.Error("detached producer published")
	}
}

func TestRegisterProducerUnknownFlow(t *testing.T) {
	b, _ := New(brokerProblem())
	if _, err := b.RegisterProducer(9); !errors.Is(err, ErrUnknownFlow) {
		t.Errorf("error = %v", err)
	}
}

func TestProducerConcurrentPublish(t *testing.T) {
	clock := newFakeClock()
	b, _ := New(brokerProblem(), WithClock(clock.Now))
	_ = b.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{0, 0}})
	pr, _ := b.RegisterProducer(0)

	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				clock.Advance(time.Millisecond)
				_ = pr.Publish(nil, "")
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	st := pr.Stats()
	if st.Published+st.Throttled != 400 {
		t.Errorf("accounted %d of 400", st.Published+st.Throttled)
	}
}
