package telemetry

// This file defines the nil-safe instrumentation handles the hot paths
// hold. A nil handle disables instrumentation entirely: every method
// checks its receiver first, so callers need no conditional wiring and
// the disabled path costs one predictable branch.

// Engine stage indices for StageSeconds and StepResult.StageNanos: the
// three phases of one LRGP iteration in execution order.
const (
	// StageRate is Algorithm 1, the per-flow rate allocation.
	StageRate = iota
	// StageAdmission is Algorithm 2 plus the Equation 12 node-price
	// update (they run fused, per node).
	StageAdmission
	// StagePrice is the Equation 13 link-price update.
	StagePrice
)

// stageNames labels the stage histograms in exposition output.
var stageNames = [3]string{"rate", "admission", "price"}

// EngineMetrics instruments core.Engine: per-stage wall-time histograms,
// step and price-update counters, and gauges tracking the most recent
// iteration's utility, overloads and convergence state. Construct with
// NewEngineMetrics and pass via core.Config.Telemetry; a nil handle
// disables everything.
type EngineMetrics struct {
	// Steps counts completed Engine.Step calls.
	Steps *Counter
	// StageSeconds holds one wall-time histogram per Step stage,
	// indexed by StageRate/StageAdmission/StagePrice.
	StageSeconds [3]*Histogram
	// Utility is the objective value after the most recent step.
	Utility *Gauge
	// MaxNodeOverload and MaxLinkOverload mirror the most recent
	// StepResult's overloads (usage minus capacity; negative = slack).
	MaxNodeOverload *Gauge
	MaxLinkOverload *Gauge
	// NodePriceUpdates and LinkPriceUpdates count Equation 12/13 price
	// recomputations (one per node resp. link per step).
	NodePriceUpdates *Counter
	LinkPriceUpdates *Counter
	// DirtyFlows is the number of flows whose rate problem the most
	// recent iteration actually re-solved; SkippedConstraints is the
	// number of node and link constraints that reused their cached
	// admission/usage instead of recomputing. Together they expose how
	// quiet the incremental engine's dirty set has become (both pinned at
	// the full-recompute values when core.Config.FullRecompute is set).
	DirtyFlows         *Gauge
	SkippedConstraints *Gauge
	// Converged is 1 once the paper's 0.1% amplitude rule has been met
	// during a Solve, else 0; ConvergedIteration is the 1-based
	// iteration of first detection, or -1.
	Converged          *Gauge
	ConvergedIteration *Gauge
}

// NewEngineMetrics registers the engine metric family in reg and returns
// the handle, with the default DurationBuckets stage layout.
func NewEngineMetrics(reg *Registry) *EngineMetrics {
	return NewEngineMetricsBuckets(reg, nil)
}

// NewEngineMetricsBuckets is NewEngineMetrics with a caller-chosen bucket
// layout for the stage wall-time histograms (nil keeps DurationBuckets).
// Bucket bounds are fixed at first registration: the layout applies only
// when this call is the one that creates the family in reg.
func NewEngineMetricsBuckets(reg *Registry, stageBuckets []float64) *EngineMetrics {
	if stageBuckets == nil {
		stageBuckets = DurationBuckets()
	}
	m := &EngineMetrics{
		Steps: reg.Counter("lrgp_engine_steps_total", "Completed LRGP iterations (Engine.Step calls)."),
		Utility: reg.Gauge("lrgp_engine_utility",
			"Objective value (Equation 1) after the most recent iteration."),
		MaxNodeOverload: reg.Gauge("lrgp_engine_max_node_overload",
			"Largest node usage minus capacity after the most recent iteration."),
		MaxLinkOverload: reg.Gauge("lrgp_engine_max_link_overload",
			"Largest link usage minus capacity after the most recent iteration."),
		NodePriceUpdates: reg.Counter("lrgp_engine_price_updates_total",
			"Price recomputations by resource.", Label{Key: "resource", Value: "node"}),
		LinkPriceUpdates: reg.Counter("lrgp_engine_price_updates_total",
			"Price recomputations by resource.", Label{Key: "resource", Value: "link"}),
		DirtyFlows: reg.Gauge("lrgp_engine_dirty_flows",
			"Flows re-solved by the most recent incremental iteration."),
		SkippedConstraints: reg.Gauge("lrgp_engine_skipped_constraints",
			"Node+link constraints that reused cached state in the most recent iteration."),
		Converged: reg.Gauge("lrgp_engine_converged",
			"1 once the 0.1% amplitude convergence rule has been met, else 0."),
		ConvergedIteration: reg.Gauge("lrgp_engine_converged_iteration",
			"Iteration at which convergence was first detected, or -1."),
	}
	for s, name := range stageNames {
		m.StageSeconds[s] = reg.Histogram("lrgp_engine_stage_seconds",
			"Wall time of each Step stage.", stageBuckets,
			Label{Key: "stage", Value: name})
	}
	m.ConvergedIteration.Set(-1)
	return m
}

// ObserveStep records one completed iteration: the three stage wall
// times (nanoseconds), the resulting utility and overloads, the number of
// node/link price updates performed, and the iteration's dirty-set size
// (flows re-solved, constraints skipped). Lock-free, 0 allocs.
func (m *EngineMetrics) ObserveStep(stageNanos [3]int64, utility, maxNodeOverload, maxLinkOverload float64, nodes, links, dirtyFlows, skippedConstraints int) {
	if m == nil {
		return
	}
	m.Steps.Inc()
	for s := range m.StageSeconds {
		m.StageSeconds[s].ObserveSeconds(stageNanos[s])
	}
	m.Utility.Set(utility)
	m.MaxNodeOverload.Set(maxNodeOverload)
	m.MaxLinkOverload.Set(maxLinkOverload)
	m.NodePriceUpdates.Add(uint64(nodes))
	m.LinkPriceUpdates.Add(uint64(links))
	m.DirtyFlows.Set(float64(dirtyFlows))
	m.SkippedConstraints.Set(float64(skippedConstraints))
}

// ObserveConvergence records a convergence detector's verdict after a
// Solve run (iterations-to-convergence, or -1 when the rule was never
// met).
func (m *EngineMetrics) ObserveConvergence(converged bool, at int) {
	if m == nil {
		return
	}
	if converged {
		m.Converged.Set(1)
	} else {
		m.Converged.Set(0)
	}
	m.ConvergedIteration.Set(float64(at))
}

// BrokerMetrics instruments broker.Broker: message counters on the
// publish/delivery path, the delivery fan-out histogram (the depth of
// the per-publish work queue), and consumer-population gauges. Construct
// with NewBrokerMetrics and pass via broker.WithTelemetry; a nil handle
// disables everything. The observe methods are called concurrently from
// the broker's lock-free publish path — they must stay atomic-only, no
// locks, no allocation (the registry's instruments already are).
type BrokerMetrics struct {
	// Published counts messages accepted by the source rate limiter;
	// Throttled counts messages it rejected.
	Published *Counter
	Throttled *Counter
	// Delivered counts per-consumer deliveries; Filtered counts
	// messages dropped by a consumer's filter; Thinned counts class
	// streams subsampled by a delivery-rate cap.
	Delivered *Counter
	Filtered  *Counter
	Thinned   *Counter
	// Fanout is the per-publish delivery queue depth (consumers handed
	// one message by a single Publish).
	Fanout *Histogram
	// Attached and Admitted track the consumer population across all
	// classes.
	Attached *Gauge
	Admitted *Gauge
	// Allocations counts enacted optimizer allocations
	// (ApplyAllocation calls); WorkUnits mirrors the broker's abstract
	// work counter.
	Allocations *Counter
	WorkUnits   *Counter
}

// NewBrokerMetrics registers the broker metric family in reg and returns
// the handle, with the default FanoutBuckets layout.
func NewBrokerMetrics(reg *Registry) *BrokerMetrics {
	return NewBrokerMetricsBuckets(reg, nil)
}

// NewBrokerMetricsBuckets is NewBrokerMetrics with a caller-chosen bucket
// layout for the fan-out histogram (nil keeps FanoutBuckets). As with
// NewEngineMetricsBuckets, the layout applies only on first registration.
func NewBrokerMetricsBuckets(reg *Registry, fanoutBuckets []float64) *BrokerMetrics {
	if fanoutBuckets == nil {
		fanoutBuckets = FanoutBuckets()
	}
	return &BrokerMetrics{
		Published: reg.Counter("lrgp_broker_published_total",
			"Messages accepted by the per-flow source rate limiter."),
		Throttled: reg.Counter("lrgp_broker_throttled_total",
			"Messages rejected by the per-flow source rate limiter."),
		Delivered: reg.Counter("lrgp_broker_delivered_total",
			"Per-consumer message deliveries."),
		Filtered: reg.Counter("lrgp_broker_filtered_total",
			"Messages dropped by consumer filters."),
		Thinned: reg.Counter("lrgp_broker_thinned_total",
			"Class streams subsampled by a multirate delivery-rate cap."),
		Fanout: reg.Histogram("lrgp_broker_fanout",
			"Delivery queue depth per accepted publish.", fanoutBuckets),
		Attached: reg.Gauge("lrgp_broker_consumers_attached",
			"Consumers attached across all classes."),
		Admitted: reg.Gauge("lrgp_broker_consumers_admitted",
			"Consumers currently admitted across all classes."),
		Allocations: reg.Counter("lrgp_broker_allocations_total",
			"Optimizer allocations enacted via ApplyAllocation."),
		WorkUnits: reg.Counter("lrgp_broker_work_units_total",
			"Abstract broker work units (routing, transforms, filters, deliveries)."),
	}
}

// ObservePublish records one accepted publish: its delivery fan-out,
// filter drops, and the work units it consumed.
func (m *BrokerMetrics) ObservePublish(fanout, filtered int, work uint64) {
	if m == nil {
		return
	}
	m.Published.Inc()
	m.Delivered.Add(uint64(fanout))
	m.Filtered.Add(uint64(filtered))
	m.Fanout.Observe(float64(fanout))
	m.WorkUnits.Add(work)
}

// ObserveThrottle records one rate-limited publish.
func (m *BrokerMetrics) ObserveThrottle() {
	if m == nil {
		return
	}
	m.Throttled.Inc()
}

// ObserveThinned records one class stream subsampled by its rate cap.
func (m *BrokerMetrics) ObserveThinned() {
	if m == nil {
		return
	}
	m.Thinned.Inc()
}

// ObserveConsumers updates the attached/admitted population gauges.
func (m *BrokerMetrics) ObserveConsumers(attached, admitted int) {
	if m == nil {
		return
	}
	m.Attached.Set(float64(attached))
	m.Admitted.Set(float64(admitted))
}

// ObserveAllocation records one enacted allocation.
func (m *BrokerMetrics) ObserveAllocation() {
	if m == nil {
		return
	}
	m.Allocations.Inc()
}
