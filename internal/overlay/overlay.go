// Package overlay models the network of nodes and unidirectional links an
// event-driven infrastructure runs on (Section 2.1 of the LRGP paper), and
// derives optimization problems from it: given a topology and a set of
// flows with subscriber nodes, it routes each flow along a shortest-path
// dissemination tree and emits the corresponding link costs L_{l,i} and
// flow-node costs F_{b,i} into a model.Problem.
//
// The paper's evaluation workloads sidestep topology (no link bottlenecks),
// so package workload builds problems directly; this package supplies the
// fuller substrate for the link-pricing extension experiments and for the
// broker deployment, where flows physically traverse links.
//
// Production overlays churn: RemoveLink/RemoveNode (and their Restore
// counterparts) mark elements dead without renumbering anything, and a
// Router (router.go) keeps per-flow dissemination trees repaired
// incrementally so a failure costs work proportional to the damage, not
// the topology.
package overlay

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/model"
)

// Topology is a directed graph of overlay nodes. Node IDs are 0..N-1;
// links are added explicitly. Links and nodes can be marked dead
// (RemoveLink/RemoveNode) and later restored; IDs are stable across
// removal so derived problems keep their shape.
type Topology struct {
	nodeCount int
	links     []TopoLink
	// out[b] lists indices into links leaving node b.
	out [][]int32
	// deadLink[li] / deadNode[b] mark removed elements; a link is usable
	// only when itself and both endpoints are alive. Lazily allocated so
	// static topologies pay nothing.
	deadLink []bool
	deadNode []bool
	// epoch counts topology mutations (link/node add/remove/restore);
	// Scratch uses it to invalidate its cached BFS tree.
	epoch int64
}

// TopoLink is one unidirectional overlay link.
type TopoLink struct {
	From, To model.NodeID
	Capacity float64
}

// Errors returned by topology operations.
var (
	ErrNoPath   = errors.New("overlay: no path")
	ErrBadLink  = errors.New("overlay: invalid link")
	ErrBadNode  = errors.New("overlay: invalid node")
	ErrBadBuild = errors.New("overlay: invalid build spec")
)

// NewTopology returns a topology with n nodes and no links.
func NewTopology(n int) *Topology {
	return &Topology{nodeCount: n, out: make([][]int32, n)}
}

// NodeCount returns the number of nodes.
func (t *Topology) NodeCount() int { return t.nodeCount }

// LinkCount returns the number of links ever added (dead ones included).
func (t *Topology) LinkCount() int { return len(t.links) }

// Links returns a copy of the link list, indexed by the LinkIDs used in
// derived problems. Dead links are included (IDs are stable).
func (t *Topology) Links() []TopoLink {
	out := make([]TopoLink, len(t.links))
	copy(out, t.links)
	return out
}

// AddLink adds a unidirectional link and returns its index.
func (t *Topology) AddLink(from, to model.NodeID, capacity float64) (int, error) {
	if from < 0 || int(from) >= t.nodeCount || to < 0 || int(to) >= t.nodeCount {
		return 0, fmt.Errorf("%w: endpoints %d->%d with %d nodes", ErrBadLink, from, to, t.nodeCount)
	}
	if from == to {
		return 0, fmt.Errorf("%w: self-loop at %d", ErrBadLink, from)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("%w: capacity %g", ErrBadLink, capacity)
	}
	id := len(t.links)
	t.links = append(t.links, TopoLink{From: from, To: to, Capacity: capacity})
	t.out[from] = append(t.out[from], int32(id))
	if t.deadLink != nil {
		t.deadLink = append(t.deadLink, false)
	}
	t.epoch++
	return id, nil
}

// AddBidirectional adds a pair of opposite links with equal capacity and
// returns their indices.
func (t *Topology) AddBidirectional(a, b model.NodeID, capacity float64) (int, int, error) {
	ab, err := t.AddLink(a, b, capacity)
	if err != nil {
		return 0, 0, err
	}
	ba, err := t.AddLink(b, a, capacity)
	if err != nil {
		return 0, 0, err
	}
	return ab, ba, nil
}

// RemoveLink marks link li dead: no path may use it until RestoreLink.
// The link keeps its ID and capacity.
func (t *Topology) RemoveLink(li int) error {
	if li < 0 || li >= len(t.links) {
		return fmt.Errorf("%w: link %d of %d", ErrBadLink, li, len(t.links))
	}
	if t.deadLink == nil {
		t.deadLink = make([]bool, len(t.links))
	}
	if t.deadLink[li] {
		return fmt.Errorf("%w: link %d already removed", ErrBadLink, li)
	}
	t.deadLink[li] = true
	t.epoch++
	return nil
}

// RestoreLink brings a removed link back.
func (t *Topology) RestoreLink(li int) error {
	if li < 0 || li >= len(t.links) {
		return fmt.Errorf("%w: link %d of %d", ErrBadLink, li, len(t.links))
	}
	if t.deadLink == nil || !t.deadLink[li] {
		return fmt.Errorf("%w: link %d not removed", ErrBadLink, li)
	}
	t.deadLink[li] = false
	t.epoch++
	return nil
}

// RemoveNode marks node b dead: paths may neither start, end nor relay
// there, and every incident link is effectively down until RestoreNode.
// Individually removed links stay removed across a node restore.
func (t *Topology) RemoveNode(b model.NodeID) error {
	if b < 0 || int(b) >= t.nodeCount {
		return fmt.Errorf("%w: node %d of %d", ErrBadNode, b, t.nodeCount)
	}
	if t.deadNode == nil {
		t.deadNode = make([]bool, t.nodeCount)
	}
	if t.deadNode[b] {
		return fmt.Errorf("%w: node %d already removed", ErrBadNode, b)
	}
	t.deadNode[b] = true
	t.epoch++
	return nil
}

// RestoreNode brings a removed node back.
func (t *Topology) RestoreNode(b model.NodeID) error {
	if b < 0 || int(b) >= t.nodeCount {
		return fmt.Errorf("%w: node %d of %d", ErrBadNode, b, t.nodeCount)
	}
	if t.deadNode == nil || !t.deadNode[b] {
		return fmt.Errorf("%w: node %d not removed", ErrBadNode, b)
	}
	t.deadNode[b] = false
	t.epoch++
	return nil
}

// LinkAlive reports whether link li and both its endpoints are alive.
func (t *Topology) LinkAlive(li int) bool {
	if li < 0 || li >= len(t.links) {
		return false
	}
	if t.deadLink != nil && t.deadLink[li] {
		return false
	}
	l := t.links[li]
	return t.NodeAlive(l.From) && t.NodeAlive(l.To)
}

// NodeAlive reports whether node b exists and is alive.
func (t *Topology) NodeAlive(b model.NodeID) bool {
	if b < 0 || int(b) >= t.nodeCount {
		return false
	}
	return t.deadNode == nil || !t.deadNode[b]
}

// linkUsable is LinkAlive without the bounds re-checks, for the BFS inner
// loop (li always comes from an adjacency list).
func (t *Topology) linkUsable(li int32) bool {
	if t.deadLink != nil && t.deadLink[li] {
		return false
	}
	// From is alive (BFS only dequeues alive nodes), so only To matters.
	return t.deadNode == nil || !t.deadNode[t.links[li].To]
}

// Line builds a path topology 0-1-...-n-1 with bidirectional links.
func Line(n int, capacity float64) *Topology {
	t := NewTopology(n)
	for i := 0; i+1 < n; i++ {
		// Construction cannot fail for valid i.
		_, _, _ = t.AddBidirectional(model.NodeID(i), model.NodeID(i+1), capacity)
	}
	return t
}

// Ring builds a cycle topology with bidirectional links.
func Ring(n int, capacity float64) *Topology {
	t := Line(n, capacity)
	if n > 2 {
		_, _, _ = t.AddBidirectional(model.NodeID(n-1), 0, capacity)
	}
	return t
}

// Star builds a hub-and-spoke topology with node 0 as the hub.
func Star(n int, capacity float64) *Topology {
	t := NewTopology(n)
	for i := 1; i < n; i++ {
		_, _, _ = t.AddBidirectional(0, model.NodeID(i), capacity)
	}
	return t
}

// Scratch holds the reusable state of breadth-first routing: the BFS
// parent tree, epoch-marked visit/membership sets and the queue. One
// Scratch serves any number of BuildTreeInto calls over one topology, and
// it caches the most recent BFS so consecutive flows sharing a source (or
// repeated traces after one failure) pay for a single traversal. A Scratch
// belongs to one goroutine.
type Scratch struct {
	// prev[b] is the link that first reached b in the cached BFS, valid
	// when seen[b] == epoch; the BFS tree is a function of (source, alive
	// topology) only, so every flow from the same source shares it.
	prev  []int32
	seen  []int32
	queue []int32
	epoch int32

	// Tree-merge marks and accumulation buffers for one trace.
	linkSeen   []int32
	nodeSeen   []int32
	mergeEpoch int32
	treeLinks  []int32
	treeNodes  []int32

	// Cached-BFS identity: source node and the topology epoch it was
	// computed at.
	bfsSrc   int32
	bfsTopo  int64
	bfsValid bool
}

// NewScratch returns a scratch sized for t.
func NewScratch(t *Topology) *Scratch {
	sc := &Scratch{}
	sc.ensure(t)
	return sc
}

// ensure (re)sizes the scratch arrays for t, preserving nothing.
func (sc *Scratch) ensure(t *Topology) {
	if len(sc.seen) < t.nodeCount {
		sc.prev = make([]int32, t.nodeCount)
		sc.seen = make([]int32, t.nodeCount)
		sc.nodeSeen = make([]int32, t.nodeCount)
		sc.queue = make([]int32, 0, t.nodeCount)
		sc.bfsValid = false
	}
	if len(sc.linkSeen) < len(t.links) {
		sc.linkSeen = make([]int32, len(t.links))
		sc.bfsValid = false
	}
}

// bfs computes (or reuses) the breadth-first parent tree from src over the
// alive topology. Traversal order is deterministic: FIFO queue, adjacency
// lists in insertion order, dead elements skipped in place — so the tree
// is a pure function of (src, alive sets) and repairs that re-run it
// reproduce from-scratch routing exactly.
func (sc *Scratch) bfs(t *Topology, src model.NodeID) {
	sc.ensure(t)
	if sc.bfsValid && sc.bfsSrc == int32(src) && sc.bfsTopo == t.epoch {
		return
	}
	sc.epoch++
	if sc.epoch <= 0 { // wrapped: reset marks
		sc.epoch = 1
		clear(sc.seen)
	}
	e := sc.epoch
	sc.queue = sc.queue[:0]
	sc.queue = append(sc.queue, int32(src))
	sc.seen[src] = e
	sc.prev[src] = -1
	for head := 0; head < len(sc.queue); head++ {
		b := sc.queue[head]
		for _, li := range t.out[b] {
			to := t.links[li].To
			if sc.seen[to] == e || !t.linkUsable(li) {
				continue
			}
			sc.seen[to] = e
			sc.prev[to] = li
			sc.queue = append(sc.queue, int32(to))
		}
	}
	sc.bfsSrc, sc.bfsTopo, sc.bfsValid = int32(src), t.epoch, true
}

// reached reports whether the cached BFS reached b.
func (sc *Scratch) reached(b model.NodeID) bool { return sc.seen[b] == sc.epoch }

// ShortestPath returns the link indices of a minimum-hop path from src to
// dst (BFS over the alive topology). An empty slice is returned when
// src == dst.
func (t *Topology) ShortestPath(src, dst model.NodeID) ([]int, error) {
	if src < 0 || int(src) >= t.nodeCount || dst < 0 || int(dst) >= t.nodeCount {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
	}
	if src == dst {
		if !t.NodeAlive(src) {
			return nil, fmt.Errorf("%w: node %d removed", ErrNoPath, src)
		}
		return nil, nil
	}
	if !t.NodeAlive(src) || !t.NodeAlive(dst) {
		return nil, fmt.Errorf("%w: %d -> %d (endpoint removed)", ErrNoPath, src, dst)
	}
	sc := NewScratch(t)
	sc.bfs(t, src)
	if !sc.reached(dst) {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoPath, src, dst)
	}
	var rev []int
	for at := dst; at != src; {
		li := sc.prev[at]
		rev = append(rev, int(li))
		at = t.links[li].From
	}
	slices.Reverse(rev)
	return rev, nil
}

// Tree is a flow's dissemination tree: the union of shortest paths from
// the source to every subscriber node.
type Tree struct {
	// Source is the tree root.
	Source model.NodeID
	// Links holds the indices of topology links in the tree, ascending.
	Links []int
	// Nodes holds every node the tree touches (source, relays,
	// subscribers), in ascending order.
	Nodes []model.NodeID
}

// equal reports whether two trees are identical.
func (tr Tree) equal(o Tree) bool {
	return tr.Source == o.Source &&
		slices.Equal(tr.Links, o.Links) &&
		slices.Equal(tr.Nodes, o.Nodes)
}

// BuildTree computes the dissemination tree for a flow from src to the
// given subscriber nodes. Paths are minimum-hop over the alive topology;
// shared prefixes are merged (each link appears once). For repeated or
// bulk routing use BuildTreeInto with a reusable Scratch — BuildTree
// allocates a fresh one per call.
func (t *Topology) BuildTree(src model.NodeID, subscribers []model.NodeID) (Tree, error) {
	tree, _, err := t.BuildTreeInto(NewScratch(t), src, subscribers, Tree{Source: -1})
	return tree, err
}

// BuildTreeInto computes the dissemination tree for a flow using sc's
// reusable state: one multi-target BFS from src (cached across calls that
// share a source and topology state), then one backward trace per
// subscriber that stops at the first already-merged node. When the result
// is identical to old, old is returned unchanged (changed == false) and
// its slices stay shared — the no-spurious-reroute guarantee repairs rely
// on. Otherwise a freshly allocated tree is returned; only changed trees
// cost heap.
func (t *Topology) BuildTreeInto(sc *Scratch, src model.NodeID, subscribers []model.NodeID, old Tree) (tree Tree, changed bool, err error) {
	if src < 0 || int(src) >= t.nodeCount {
		return Tree{}, false, fmt.Errorf("%w: source %d of %d nodes", ErrNoPath, src, t.nodeCount)
	}
	if !t.NodeAlive(src) {
		return Tree{}, false, fmt.Errorf("%w: source %d removed", ErrNoPath, src)
	}
	sc.bfs(t, src)

	sc.mergeEpoch++
	if sc.mergeEpoch <= 0 {
		sc.mergeEpoch = 1
		clear(sc.nodeSeen)
		clear(sc.linkSeen)
	}
	me := sc.mergeEpoch
	sc.treeLinks = sc.treeLinks[:0]
	sc.treeNodes = sc.treeNodes[:0]
	sc.nodeSeen[src] = me
	sc.treeNodes = append(sc.treeNodes, int32(src))

	for _, dst := range subscribers {
		if dst < 0 || int(dst) >= t.nodeCount || !sc.reached(dst) {
			return Tree{}, false, fmt.Errorf("subscriber %d: %w: %d -> %d", dst, ErrNoPath, src, dst)
		}
		// Walk the BFS tree rootward, stopping at the first node already
		// in the merged tree: everything above it was traced by an earlier
		// subscriber. Each link's To node is unique in the BFS tree, so a
		// link is new exactly when its To node is.
		for at := dst; sc.nodeSeen[at] != me; {
			sc.nodeSeen[at] = me
			sc.treeNodes = append(sc.treeNodes, int32(at))
			li := sc.prev[at]
			sc.treeLinks = append(sc.treeLinks, li)
			at = t.links[li].From
		}
	}
	slices.Sort(sc.treeLinks)
	slices.Sort(sc.treeNodes)

	// Unchanged? Keep the old tree (and its slices) verbatim.
	if old.Source == src && len(old.Links) == len(sc.treeLinks) && len(old.Nodes) == len(sc.treeNodes) {
		same := true
		for k, li := range sc.treeLinks {
			if old.Links[k] != int(li) {
				same = false
				break
			}
		}
		if same {
			for k, b := range sc.treeNodes {
				if old.Nodes[k] != model.NodeID(b) {
					same = false
					break
				}
			}
		}
		if same {
			return old, false, nil
		}
	}

	tree = Tree{
		Source: src,
		Links:  make([]int, len(sc.treeLinks)),
		Nodes:  make([]model.NodeID, len(sc.treeNodes)),
	}
	for k, li := range sc.treeLinks {
		tree.Links[k] = int(li)
	}
	for k, b := range sc.treeNodes {
		tree.Nodes[k] = model.NodeID(b)
	}
	return tree, true, nil
}
