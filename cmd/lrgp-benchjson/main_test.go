package main

import (
	"runtime"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: AMD EPYC 7B13
BenchmarkEngineStepHuge/workers=1-8         	     100	  1200345 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineStepHuge/workers=4-8         	     400	   400345 ns/op	      16 B/op	       1 allocs/op
BenchmarkFigure1Damping-8                   	       1	2100000000 ns/op	  190123 final-utility
PASS
ok  	repro/internal/core	3.2s
`
	rec, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || rec.Pkg != "repro/internal/core" {
		t.Errorf("header = %+v", rec)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rec.Benchmarks))
	}
	b0 := rec.Benchmarks[0]
	if b0.Name != "BenchmarkEngineStepHuge/workers=1-8" || b0.Iterations != 100 ||
		b0.NsPerOp != 1200345 || b0.BytesPerOp == nil || *b0.BytesPerOp != 0 ||
		b0.AllocsOp == nil || *b0.AllocsOp != 0 {
		t.Errorf("b0 = %+v", b0)
	}
	b2 := rec.Benchmarks[2]
	if b2.Metrics["final-utility"] != 190123 {
		t.Errorf("custom metric = %+v", b2.Metrics)
	}
	if b2.BytesPerOp != nil {
		t.Errorf("b2 unexpectedly has B/op: %v", *b2.BytesPerOp)
	}
}

// TestAddSpeedups: workers=N entries gain the scaling factor against the
// workers=1 baseline of the same family; the -cpu suffix and the parent
// benchmark name both separate families, and names without a workers
// component stay untouched.
func TestAddSpeedups(t *testing.T) {
	mk := func(name string, ns float64) result {
		return result{Name: name, NsPerOp: ns}
	}
	rec := &record{Benchmarks: []result{
		mk("BenchmarkEngineStepMetro/workers=1-8", 8000),
		mk("BenchmarkEngineStepMetro/workers=4-8", 2500),
		mk("BenchmarkEngineStepMetro/workers=16-8", 1000),
		mk("BenchmarkEngineStepMetroSmall/workers=1", 400), // -cpu=1: no suffix
		mk("BenchmarkEngineStepMetroSmall/workers=4", 100),
		mk("BenchmarkEngineStepSteadyState/incremental/workers=4-8", 50), // no workers=1 in run
		mk("BenchmarkFigure1Damping-8", 999),
	}}
	addSpeedups(rec)

	want := []*float64{f(1.0), f(3.2), f(8.0), f(1.0), f(4.0), nil, nil}
	for i, w := range want {
		got := rec.Benchmarks[i].Speedup
		switch {
		case w == nil && got != nil:
			t.Errorf("%s: speedup = %v, want absent", rec.Benchmarks[i].Name, *got)
		case w != nil && got == nil:
			t.Errorf("%s: speedup absent, want %v", rec.Benchmarks[i].Name, *w)
		case w != nil && *got != *w:
			t.Errorf("%s: speedup = %v, want %v", rec.Benchmarks[i].Name, *got, *w)
		}
	}
}

func f(v float64) *float64 { return &v }

// TestStampHost: converted records carry the host environment so a
// tracked perf trajectory states what it was measured on.
func TestStampHost(t *testing.T) {
	var rec record
	stampHost(&rec)
	if rec.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", rec.GoVersion, runtime.Version())
	}
	if rec.GoMaxProcs < 1 || rec.NumCPU < 1 {
		t.Errorf("GoMaxProcs = %d, NumCPU = %d, want >= 1", rec.GoMaxProcs, rec.NumCPU)
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkBroken 12\n")); err == nil {
		t.Error("want error for truncated benchmark line")
	}
}
