package dist

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/transport"
)

// collector aggregates rate announcements and node reports into a global
// view: per-round utilities in Sync mode, latest-state utility samples in
// Async mode.
type collector struct {
	p  *model.Problem
	ep transport.Endpoint

	mu sync.Mutex
	// latest state (both modes). deliveries[j] < 0 means "no per-class
	// delivery reported": the class receives at its flow's rate.
	rates      []float64
	consumers  []int
	deliveries []float64
	active     []bool
	// sync-mode round assembly.
	roundRates   map[int]map[model.FlowID]float64
	roundPops    map[int]map[model.ClassID]int
	roundDel     map[int]map[model.ClassID]float64
	rateSeen     map[int]int
	reportSeen   map[int]int
	nodesTotal   int
	stats        []RoundStats
	nextComplete int
	waiters      []roundWaiter
	samples      int

	done chan struct{}
}

type roundWaiter struct {
	round int
	ch    chan struct{}
}

// newCollector builds the collector. nodesTotal must be the number of
// node agents that actually report each round: nodes reached by at least
// one flow or owning at least one link with flows (a node with neither
// never computes).
func newCollector(p *model.Problem, ep transport.Endpoint, nodesTotal int) *collector {
	c := &collector{
		p:            p,
		ep:           ep,
		rates:        make([]float64, len(p.Flows)),
		consumers:    make([]int, len(p.Classes)),
		deliveries:   make([]float64, len(p.Classes)),
		active:       make([]bool, len(p.Flows)),
		roundRates:   make(map[int]map[model.FlowID]float64),
		roundPops:    make(map[int]map[model.ClassID]int),
		roundDel:     make(map[int]map[model.ClassID]float64),
		rateSeen:     make(map[int]int),
		reportSeen:   make(map[int]int),
		nodesTotal:   nodesTotal,
		nextComplete: 1,
		done:         make(chan struct{}),
	}
	for i := range c.active {
		c.active[i] = true
	}
	for j := range c.deliveries {
		c.deliveries[j] = -1
	}
	return c
}

func (c *collector) run() {
	defer close(c.done)
	for m := range c.ep.Recv() {
		switch m.Kind {
		case ctrlKind:
			var cm ctrlMsg
			if err := transport.Decode(m, &cm); err != nil {
				continue
			}
			if cm.Stop {
				return
			}
		case rateKind:
			var rm rateMsg
			if err := transport.Decode(m, &rm); err != nil {
				continue
			}
			c.absorbRate(rm)
		case reportKind:
			var rm reportMsg
			if err := transport.Decode(m, &rm); err != nil {
				continue
			}
			c.absorbReport(rm)
		}
	}
}

func (c *collector) absorbRate(rm rateMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !rm.Active {
		c.active[rm.Flow] = false
		c.rates[rm.Flow] = 0
		for j := range c.p.Classes {
			if c.p.Classes[j].Flow == rm.Flow {
				c.consumers[j] = 0
			}
		}
		c.completeRoundsLocked()
		return
	}
	c.active[rm.Flow] = true // a rejoining flow becomes active again
	c.rates[rm.Flow] = rm.Rate
	if c.roundRates[rm.Round] == nil {
		c.roundRates[rm.Round] = make(map[model.FlowID]float64)
	}
	c.roundRates[rm.Round][rm.Flow] = rm.Rate
	c.completeRoundsLocked()
}

func (c *collector) absorbReport(rm reportMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for cid, n := range rm.Populations {
		c.consumers[cid] = n
	}
	if c.roundPops[rm.Round] == nil {
		c.roundPops[rm.Round] = make(map[model.ClassID]int)
	}
	for cid, n := range rm.Populations {
		c.roundPops[rm.Round][cid] = n
	}
	if len(rm.Deliveries) > 0 {
		if c.roundDel[rm.Round] == nil {
			c.roundDel[rm.Round] = make(map[model.ClassID]float64)
		}
		for cid, d := range rm.Deliveries {
			c.deliveries[cid] = d
			c.roundDel[rm.Round][cid] = d
		}
	}
	c.reportSeen[rm.Round]++
	c.completeRoundsLocked()
}

// completeRoundsLocked finalizes rounds in order once all active flows'
// rates and all node reports have arrived.
func (c *collector) completeRoundsLocked() {
	for {
		round := c.nextComplete
		activeFlows := 0
		for i := range c.active {
			if c.active[i] {
				activeFlows++
			}
		}
		if activeFlows == 0 {
			return
		}
		gotRates := 0
		for i := range c.roundRates[round] {
			if c.active[i] {
				gotRates++
			}
		}
		if gotRates < activeFlows || c.reportSeen[round] < c.nodesTotal {
			return
		}

		// Utility of the completed round, from the round's own rates,
		// populations and (in multirate mode) per-class deliveries;
		// inactive flows contribute nothing.
		util := 0.0
		rates := c.roundRates[round]
		pops := c.roundPops[round]
		dels := c.roundDel[round]
		for j := range c.p.Classes {
			cl := &c.p.Classes[j]
			n, ok := pops[model.ClassID(j)]
			if !ok || n == 0 || !c.active[cl.Flow] {
				continue
			}
			rate := rates[cl.Flow]
			if d, ok := dels[model.ClassID(j)]; ok {
				rate = d
			}
			util += float64(n) * cl.Utility.Value(rate)
		}
		c.stats = append(c.stats, RoundStats{Round: round, Utility: util})
		delete(c.roundRates, round)
		delete(c.roundPops, round)
		delete(c.roundDel, round)
		delete(c.reportSeen, round)
		delete(c.rateSeen, round)
		c.nextComplete++

		var still []roundWaiter
		for _, w := range c.waiters {
			if round >= w.round {
				close(w.ch)
			} else {
				still = append(still, w)
			}
		}
		c.waiters = still
	}
}

// waitRound blocks until the given round has been finalized.
func (c *collector) waitRound(round int, timeout time.Duration) error {
	c.mu.Lock()
	if c.nextComplete > round {
		c.mu.Unlock()
		return nil
	}
	w := roundWaiter{round: round, ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-c.done:
		return fmt.Errorf("dist: collector stopped before round %d", round)
	case <-time.After(timeout):
		return fmt.Errorf("dist: timeout waiting for round %d", round)
	}
}

// rounds returns the finalized stats for rounds [from, to].
func (c *collector) rounds(from, to int) []RoundStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []RoundStats
	for _, s := range c.stats {
		if s.Round >= from && s.Round <= to {
			out = append(out, s)
		}
	}
	return out
}

// sample computes utility from the latest absorbed state (Async mode).
func (c *collector) sample() RoundStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	util := 0.0
	for j := range c.p.Classes {
		cl := &c.p.Classes[j]
		n := c.consumers[j]
		if n == 0 || !c.active[cl.Flow] {
			continue
		}
		rate := c.rates[cl.Flow]
		if c.deliveries[j] >= 0 {
			rate = c.deliveries[j]
		}
		util += float64(n) * cl.Utility.Value(rate)
	}
	c.samples++
	return RoundStats{Round: c.samples, Utility: util}
}

// allocation snapshots the latest global allocation.
func (c *collector) allocation() model.Allocation {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := model.Allocation{
		Rates:     make([]float64, len(c.rates)),
		Consumers: make([]int, len(c.consumers)),
	}
	copy(a.Rates, c.rates)
	copy(a.Consumers, c.consumers)
	return a
}
