package core

import (
	"sort"

	"repro/internal/model"
)

// Stage-fusion planning (DESIGN.md §5). The three Step stages barrier
// because, in general, a node's admission reads rates of flows solved by
// another shard and a flow's next rate reads prices of nodes updated by
// another shard. But that data flow is confined to the connected components
// of the flow/node/link incidence graph: a node only ever reads flows that
// reach it, a link only flows that traverse it, and a flow only nodes and
// links on its own path. When shards are unions of whole components, every
// cross-stage read stays inside the shard, so one worker can run
// rate-solve → admission → price update for its components back to back —
// one barrier per Step instead of three — and still perform exactly the
// serial arithmetic on exactly the serial values.
//
// The analysis runs once per NewEngine/Reset topology (Reset keeps the
// topology, so the plan survives it) over the index's dense membership
// views; it never consults costs or capacities, which may change.

// stagePlan is the result of the crossing-writes analysis: a fixed
// assignment of whole components to shards, or the verdict that the fused
// path does not apply (fused == false) and Step should fall back to the
// three-barrier contiguous sharding.
type stagePlan struct {
	// fused reports whether the single-barrier fused path applies: at
	// least as many components as shards (so every worker gets whole
	// components without idling) and an assignment balanced within 2x of
	// the mean shard weight.
	fused bool
	// components is the number of connected components found (informational;
	// set even when fused is false).
	components int
	// shards is the fan-out of the fused path; flows/nodes/links are
	// indexed by shard, each list ascending so per-shard iteration order
	// matches the serial scan order.
	shards int
	flows  [][]int32
	nodes  [][]int32
	links  [][]int32
}

// planWeight estimates one vertex's per-iteration work for balancing:
// classes dominate both the rate solve (per-flow class scan) and the
// admission sort (per-node class scan), so flows and nodes count their
// attached classes on top of themselves.
func planWeight(ix *model.Index, flows, nodes, links int, v int) int {
	switch {
	case v < flows:
		return 1 + len(ix.ClassesByFlow(model.FlowID(v)))
	case v < flows+nodes:
		return 1 + len(ix.ClassesByNode(model.NodeID(v-flows)))
	default:
		return 1
	}
}

// newStagePlan runs the crossing-writes analysis for p under the given
// shard count. Deterministic: union-find roots, component order and the
// greedy assignment depend only on the topology, never on scheduling or
// map iteration.
func newStagePlan(p *model.Problem, ix *model.Index, shards int) *stagePlan {
	nf, nn, nl := len(p.Flows), len(p.Nodes), len(p.Links)
	total := nf + nn + nl
	plan := &stagePlan{}
	if shards <= 1 || total == 0 {
		return plan
	}

	// Union-find over flows [0,nf), nodes [nf,nf+nn), links [nf+nn,total).
	// Union-by-minimum keeps every root the smallest vertex of its
	// component, which both orders components deterministically and lets
	// the collection pass below recognize roots on first visit.
	parent := make([]int32, total)
	for v := range parent {
		parent[v] = int32(v)
	}
	find := func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		switch {
		case ra < rb:
			parent[rb] = ra
		case rb < ra:
			parent[ra] = rb
		}
	}
	for b := 0; b < nn; b++ {
		for _, i := range ix.FlowsByNode(model.NodeID(b)) {
			union(int32(i), int32(nf+b))
		}
	}
	for l := 0; l < nl; l++ {
		for _, i := range ix.FlowsByLink(model.LinkID(l)) {
			union(int32(i), int32(nf+nn+l))
		}
	}
	// Classes add no edges: a class's node is required (model.Validate) to
	// carry the class's flow, so that flow-node pair is already united.

	// Collect components in root order with their balancing weights.
	type component struct {
		root   int32
		weight int
	}
	compOf := make([]int32, total)
	var comps []component
	for v := 0; v < total; v++ {
		r := find(int32(v))
		if int(r) == v {
			compOf[v] = int32(len(comps))
			comps = append(comps, component{root: r})
		} else {
			compOf[v] = compOf[r]
		}
		comps[compOf[v]].weight += planWeight(ix, nf, nn, nl, v)
	}
	plan.components = len(comps)
	if len(comps) < shards {
		return plan
	}

	// Longest-processing-time assignment: heaviest component first into the
	// lightest shard. Ties break on root (components) and shard index
	// (shards), keeping the whole assignment deterministic.
	order := make([]int, len(comps))
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := comps[order[a]], comps[order[b]]
		if ca.weight != cb.weight {
			return ca.weight > cb.weight
		}
		return ca.root < cb.root
	})
	shardWeight := make([]int, shards)
	shardOf := make([]int32, len(comps))
	totalWeight := 0
	for _, k := range order {
		s := 0
		for t := 1; t < shards; t++ {
			if shardWeight[t] < shardWeight[s] {
				s = t
			}
		}
		shardOf[k] = int32(s)
		shardWeight[s] += comps[k].weight
		totalWeight += comps[k].weight
	}
	maxWeight := 0
	for _, w := range shardWeight {
		if w > maxWeight {
			maxWeight = w
		}
	}
	// A shard more than 2x the mean would serialize the whole fused Step
	// behind it; the three-barrier path splits such lopsided problems
	// contiguously instead.
	if maxWeight*shards > 2*totalWeight {
		return plan
	}

	plan.fused = true
	plan.shards = shards
	plan.flows = make([][]int32, shards)
	plan.nodes = make([][]int32, shards)
	plan.links = make([][]int32, shards)
	counts := make([]int, shards)
	fill := func(lists [][]int32, base, n int) {
		for s := range counts {
			counts[s] = 0
		}
		for v := 0; v < n; v++ {
			counts[shardOf[compOf[base+v]]]++
		}
		for s := 0; s < shards; s++ {
			lists[s] = make([]int32, 0, counts[s])
		}
		for v := 0; v < n; v++ {
			s := shardOf[compOf[base+v]]
			lists[s] = append(lists[s], int32(v))
		}
	}
	fill(plan.flows, 0, nf)
	fill(plan.nodes, nf, nn)
	fill(plan.links, nf+nn, nl)
	return plan
}
