package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport"
)

// Mode selects the execution style.
type Mode int

// Execution modes.
const (
	// Sync runs lock-step rounds (the paper's main formulation).
	Sync Mode = iota + 1
	// Async runs free-running agents on tickers with price averaging
	// (Section 3.5).
	Async
)

// Default async parameters.
const (
	DefaultTick        = 2 * time.Millisecond
	DefaultPriceWindow = 3
)

// Config tunes a Cluster.
type Config struct {
	// Core carries the LRGP algorithm parameters.
	Core core.Config
	// Mode selects Sync (default) or Async execution.
	Mode Mode
	// Tick is the agent recompute interval in Async mode (default
	// DefaultTick).
	Tick time.Duration
	// PriceWindow is how many recent prices a flow source averages per
	// resource in Async mode (default DefaultPriceWindow; Sync always
	// uses the latest price only).
	PriceWindow int
	// Multirate runs the multirate extension's algorithms at the agents
	// (per-class delivery rates); see internal/multirate.
	Multirate bool
}

func (c Config) normalized() Config {
	c.Core = c.Core.WithDefaults()
	if c.Mode == 0 {
		c.Mode = Sync
	}
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	if c.PriceWindow <= 0 {
		c.PriceWindow = DefaultPriceWindow
	}
	if c.Mode == Sync {
		c.PriceWindow = 1
	}
	return c
}

// RoundStats is the collector's view of one completed synchronous round
// (or one asynchronous sample).
type RoundStats struct {
	// Round is the 1-based round number (sample number in Async mode).
	Round int
	// Utility is the global objective value.
	Utility float64
}

// Cluster wires one agent per flow and per node over a transport network
// and aggregates global state at a collector endpoint.
type Cluster struct {
	p   *model.Problem
	cfg Config

	flows []*flowAgent
	nodes []*nodeAgent
	ctrl  transport.Endpoint // for sending control messages
	coll  *collector

	mu      sync.Mutex
	started bool
	closed  bool
	ran     int // highest round requested in sync mode
}

// New validates the problem and attaches all agents to the network. Agents
// do not process rounds until Run (Sync) or Start (Async).
func New(p *model.Problem, cfg Config, net transport.Network) (*Cluster, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)

	cl := &Cluster{p: p, cfg: c}

	collEP, err := net.Endpoint(collectorName)
	if err != nil {
		return nil, fmt.Errorf("dist: collector endpoint: %w", err)
	}
	// Only nodes that see at least one flow (directly or via an owned
	// link) ever compute and report; the collector must not wait for the
	// silent ones.
	reporting := 0
	for b := range p.Nodes {
		n := len(ix.FlowsByNode(model.NodeID(b)))
		for l := range p.Links {
			if p.Links[l].To == model.NodeID(b) {
				n += len(ix.FlowsByLink(model.LinkID(l)))
			}
		}
		if n > 0 {
			reporting++
		}
	}
	cl.coll = newCollector(p, collEP, reporting)

	ctrlEP, err := net.Endpoint("cluster-ctrl")
	if err != nil {
		return nil, fmt.Errorf("dist: control endpoint: %w", err)
	}
	cl.ctrl = ctrlEP

	for i := range p.Flows {
		ep, err := net.Endpoint(flowName(model.FlowID(i)))
		if err != nil {
			return nil, fmt.Errorf("dist: flow %d endpoint: %w", i, err)
		}
		cl.flows = append(cl.flows, newFlowAgent(p, ix, model.FlowID(i), ep, c.Core, c.PriceWindow, c.Tick, c.Multirate))
	}
	for b := range p.Nodes {
		ep, err := net.Endpoint(nodeName(model.NodeID(b)))
		if err != nil {
			return nil, fmt.Errorf("dist: node %d endpoint: %w", b, err)
		}
		cl.nodes = append(cl.nodes, newNodeAgent(p, ix, model.NodeID(b), ep, c.Core, c.Tick, c.Multirate))
	}

	// Launch all agents; in Sync mode flow agents idle until a RunUntil
	// control arrives.
	go cl.coll.run()
	for _, fa := range cl.flows {
		fa := fa
		if c.Mode == Sync {
			go fa.runSync()
		} else {
			go fa.runAsync()
		}
	}
	for _, na := range cl.nodes {
		na := na
		if c.Mode == Sync {
			go na.runSync()
		} else {
			go na.runAsync()
		}
	}
	cl.started = true
	return cl, nil
}

// ErrMode is returned when an operation does not apply to the cluster's
// execution mode.
var ErrMode = errors.New("dist: operation not valid in this mode")

// Run advances a Sync cluster by `rounds` lock-step rounds and returns the
// per-round global utilities observed by the collector.
func (cl *Cluster) Run(rounds int, timeout time.Duration) ([]RoundStats, error) {
	if cl.cfg.Mode != Sync {
		return nil, ErrMode
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cl.mu.Lock()
	from := cl.ran + 1
	cl.ran += rounds
	until := cl.ran
	cl.mu.Unlock()

	for _, fa := range cl.flows {
		msg, err := transport.Encode(cl.ctrl.Name(), fa.ep.Name(), ctrlKind, ctrlMsg{RunUntil: until})
		if err != nil {
			return nil, err
		}
		if err := cl.ctrl.Send(msg); err != nil {
			return nil, fmt.Errorf("dist: run ctrl: %w", err)
		}
	}
	if err := cl.coll.waitRound(until, timeout); err != nil {
		return nil, err
	}
	return cl.coll.rounds(from, until), nil
}

// Sample returns the collector's current view of global utility, for Async
// clusters.
func (cl *Cluster) Sample() RoundStats {
	return cl.coll.sample()
}

// RemoveFlow announces a flow's departure (the Figure 3 experiment). In
// Sync mode the departure takes effect at the flow's next scheduled round;
// callers must invoke it between Run calls. A removed flow's agent idles
// and can rejoin via JoinFlow.
func (cl *Cluster) RemoveFlow(i model.FlowID) error {
	msg, err := transport.Encode(cl.ctrl.Name(), flowName(i), ctrlKind, ctrlMsg{Leave: true})
	if err != nil {
		return err
	}
	return cl.ctrl.Send(msg)
}

// JoinFlow re-activates a previously removed flow: its agent re-announces
// itself and the node agents resume expecting it. Like RemoveFlow, it
// must be invoked between Run calls in Sync mode (when no rounds are
// pending anywhere).
func (cl *Cluster) JoinFlow(i model.FlowID) error {
	msg, err := transport.Encode(cl.ctrl.Name(), flowName(i), ctrlKind, ctrlMsg{Join: true})
	if err != nil {
		return err
	}
	return cl.ctrl.Send(msg)
}

// Allocation returns the collector's latest global allocation view.
func (cl *Cluster) Allocation() model.Allocation {
	return cl.coll.allocation()
}

// Close stops every agent. The underlying network is owned by the caller
// and is not closed.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cl.mu.Unlock()

	stop := ctrlMsg{Stop: true}
	for _, fa := range cl.flows {
		if msg, err := transport.Encode(cl.ctrl.Name(), fa.ep.Name(), ctrlKind, stop); err == nil {
			_ = cl.ctrl.Send(msg)
		}
	}
	for _, na := range cl.nodes {
		if msg, err := transport.Encode(cl.ctrl.Name(), na.ep.Name(), ctrlKind, stop); err == nil {
			_ = cl.ctrl.Send(msg)
		}
	}
	if msg, err := transport.Encode(cl.ctrl.Name(), collectorName, ctrlKind, stop); err == nil {
		_ = cl.ctrl.Send(msg)
	}

	deadline := time.After(5 * time.Second)
	for _, fa := range cl.flows {
		select {
		case <-fa.done:
		case <-deadline:
			return errors.New("dist: timeout stopping flow agents")
		}
	}
	for _, na := range cl.nodes {
		select {
		case <-na.done:
		case <-deadline:
			return errors.New("dist: timeout stopping node agents")
		}
	}
	select {
	case <-cl.coll.done:
	case <-deadline:
		return errors.New("dist: timeout stopping collector")
	}
	return nil
}
