package core

import (
	"math/rand"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestStepTelemetryObservations: with Config.Telemetry set, Step must
// populate StageNanos and mirror its results into the registry; the
// parallel engine must report the same counters as the serial one.
func TestStepTelemetryObservations(t *testing.T) {
	for _, workers := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		em := telemetry.NewEngineMetrics(reg)
		rng := rand.New(rand.NewSource(5))
		p := parallelTestProblem(rng, true)
		e, err := NewEngine(p, Config{Adaptive: true, Workers: workers, Telemetry: em})
		if err != nil {
			t.Fatal(err)
		}
		const steps = 7
		var last StepResult
		for i := 0; i < steps; i++ {
			last = e.Step()
		}
		e.Close()

		if got := em.Steps.Value(); got != steps {
			t.Errorf("workers=%d: steps counter = %d, want %d", workers, got, steps)
		}
		if got := em.Utility.Value(); got != last.Utility {
			t.Errorf("workers=%d: utility gauge = %g, want %g", workers, got, last.Utility)
		}
		if got := em.MaxNodeOverload.Value(); got != last.MaxNodeOverload {
			t.Errorf("workers=%d: node overload gauge = %g, want %g", workers, got, last.MaxNodeOverload)
		}
		wantNode := uint64(steps * len(p.Nodes))
		if got := em.NodePriceUpdates.Value(); got != wantNode {
			t.Errorf("workers=%d: node price updates = %d, want %d", workers, got, wantNode)
		}
		wantLink := uint64(steps * len(p.Links))
		if got := em.LinkPriceUpdates.Value(); got != wantLink {
			t.Errorf("workers=%d: link price updates = %d, want %d", workers, got, wantLink)
		}
		for s := range em.StageSeconds {
			count, sum := em.StageSeconds[s].CountSum()
			if count != steps {
				t.Errorf("workers=%d: stage %d histogram count = %d, want %d", workers, s, count, steps)
			}
			if sum < 0 {
				t.Errorf("workers=%d: stage %d wall time sum = %g", workers, s, sum)
			}
		}
		// StageNanos must be populated (a monotonic-clock stage can
		// legitimately read 0ns only on an extremely coarse clock; the
		// three stages summed should be positive).
		if last.StageNanos[0]+last.StageNanos[1]+last.StageNanos[2] <= 0 {
			t.Errorf("workers=%d: StageNanos = %v, want positive total", workers, last.StageNanos)
		}
	}
}

// TestStepWithoutTelemetryLeavesStageNanosZero: the untelemetered Step
// must not read the clock, so StageNanos stays zero.
func TestStepWithoutTelemetryLeavesStageNanosZero(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if r := e.Step(); r.StageNanos != [3]int64{} {
		t.Errorf("StageNanos = %v without telemetry, want zeros", r.StageNanos)
	}
}

// TestSolveReportsConvergence: Solve must publish the convergence
// detector's verdict to the registry.
func TestSolveReportsConvergence(t *testing.T) {
	reg := telemetry.NewRegistry()
	em := telemetry.NewEngineMetrics(reg)
	e, err := NewEngine(workload.Base(), Config{Adaptive: true, Workers: 1, Telemetry: em})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res := e.Solve(250)
	if !res.Converged {
		t.Fatal("base workload did not converge; cannot check telemetry")
	}
	if got := em.Converged.Value(); got != 1 {
		t.Errorf("converged gauge = %g, want 1", got)
	}
	if got := em.ConvergedIteration.Value(); got != float64(res.ConvergedAt) {
		t.Errorf("converged iteration gauge = %g, want %d", got, res.ConvergedAt)
	}
	if got := em.Steps.Value(); got != uint64(res.Iterations) {
		t.Errorf("steps counter = %d, want %d", got, res.Iterations)
	}
}

// TestStepTelemetryNoAllocs: the *enabled* telemetry path is lock-free
// over preallocated state, so even the instrumented Step stays at
// 0 allocs/op on both the serial and the sharded engine. (The disabled
// path is covered by TestStepSerialNoAllocs/TestStepParallelNoAllocs.)
func TestStepTelemetryNoAllocs(t *testing.T) {
	reg := telemetry.NewRegistry()

	ser, err := NewEngine(workload.Base(), Config{Adaptive: true, Workers: 1,
		Telemetry: telemetry.NewEngineMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer ser.Close()
	ser.Step()
	if allocs := testing.AllocsPerRun(50, func() { ser.Step() }); allocs > 0 {
		t.Errorf("%v allocs per telemetered serial Step, want 0", allocs)
	}

	rng := rand.New(rand.NewSource(8))
	par, err := NewEngine(parallelTestProblem(rng, true), Config{Adaptive: true, Workers: 4,
		Telemetry: telemetry.NewEngineMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if par.pool == nil {
		t.Fatal("expected sharded engine")
	}
	par.Step()
	if allocs := testing.AllocsPerRun(50, func() { par.Step() }); allocs > 0 {
		t.Errorf("%v allocs per telemetered parallel Step, want 0", allocs)
	}
}
