package model

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all structural problems reported by Validate.
var ErrInvalid = errors.New("model: invalid problem")

// Validate checks structural well-formedness of a problem:
//
//   - flows, classes, nodes and links are numbered 0..len-1 by their IDs;
//   - every referenced flow/node exists;
//   - rate bounds satisfy 0 < RateMin <= RateMax;
//   - capacities and cost coefficients are positive where present;
//   - every class has MaxConsumers >= 0, CostPerConsumer > 0 and a
//     non-nil utility;
//   - every class's flow reaches the class's node (otherwise the node
//     constraint could not account for its consumers);
//   - every flow's source node exists and link endpoints are distinct
//     existing nodes.
//
// Validate returns the first violation found, wrapped in ErrInvalid.
func Validate(p *Problem) error {
	nF, nC, nN, nL := len(p.Flows), len(p.Classes), len(p.Nodes), len(p.Links)
	if nF == 0 {
		return fmt.Errorf("%w: no flows", ErrInvalid)
	}
	if nN == 0 {
		return fmt.Errorf("%w: no nodes", ErrInvalid)
	}

	for i, f := range p.Flows {
		if int(f.ID) != i {
			return fmt.Errorf("%w: flow at index %d has ID %d", ErrInvalid, i, f.ID)
		}
		if f.Source < 0 || int(f.Source) >= nN {
			return fmt.Errorf("%w: flow %d source node %d out of range", ErrInvalid, i, f.Source)
		}
		if !(f.RateMin > 0) || f.RateMin > f.RateMax {
			return fmt.Errorf("%w: flow %d rate bounds [%g, %g]", ErrInvalid, i, f.RateMin, f.RateMax)
		}
	}

	for j, c := range p.Classes {
		if int(c.ID) != j {
			return fmt.Errorf("%w: class at index %d has ID %d", ErrInvalid, j, c.ID)
		}
		if c.Flow < 0 || int(c.Flow) >= nF {
			return fmt.Errorf("%w: class %d flow %d out of range", ErrInvalid, j, c.Flow)
		}
		if c.Node < 0 || int(c.Node) >= nN {
			return fmt.Errorf("%w: class %d node %d out of range", ErrInvalid, j, c.Node)
		}
		if c.MaxConsumers < 0 {
			return fmt.Errorf("%w: class %d MaxConsumers %d", ErrInvalid, j, c.MaxConsumers)
		}
		if !(c.CostPerConsumer > 0) {
			return fmt.Errorf("%w: class %d CostPerConsumer %g", ErrInvalid, j, c.CostPerConsumer)
		}
		if c.Utility == nil {
			return fmt.Errorf("%w: class %d has no utility function", ErrInvalid, j)
		}
		if _, ok := p.Nodes[c.Node].FlowCost[c.Flow]; !ok && c.MaxConsumers > 0 {
			// A demand-less class may sit off its flow's tree: two-stage
			// pruning zeroes MaxConsumers instead of dropping classes so the
			// member set stays Refresh-compatible, and a zero-demand class
			// admits nothing wherever it is.
			return fmt.Errorf("%w: class %d attached at node %d but flow %d does not reach it",
				ErrInvalid, j, c.Node, c.Flow)
		}
	}

	for b, n := range p.Nodes {
		if int(n.ID) != b {
			return fmt.Errorf("%w: node at index %d has ID %d", ErrInvalid, b, n.ID)
		}
		if !(n.Capacity > 0) {
			return fmt.Errorf("%w: node %d capacity %g", ErrInvalid, b, n.Capacity)
		}
		for i, cost := range n.FlowCost {
			if i < 0 || int(i) >= nF {
				return fmt.Errorf("%w: node %d has cost for unknown flow %d", ErrInvalid, b, i)
			}
			if !(cost > 0) {
				return fmt.Errorf("%w: node %d flow %d cost %g", ErrInvalid, b, i, cost)
			}
		}
	}

	for li, l := range p.Links {
		if int(l.ID) != li {
			return fmt.Errorf("%w: link at index %d has ID %d", ErrInvalid, li, l.ID)
		}
		if l.From < 0 || int(l.From) >= nN || l.To < 0 || int(l.To) >= nN {
			return fmt.Errorf("%w: link %d endpoints %d->%d out of range", ErrInvalid, li, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("%w: link %d is a self-loop at node %d", ErrInvalid, li, l.From)
		}
		if !(l.Capacity > 0) {
			return fmt.Errorf("%w: link %d capacity %g", ErrInvalid, li, l.Capacity)
		}
		for i, cost := range l.FlowCost {
			if i < 0 || int(i) >= nF {
				return fmt.Errorf("%w: link %d has cost for unknown flow %d", ErrInvalid, li, i)
			}
			if !(cost > 0) {
				return fmt.Errorf("%w: link %d flow %d cost %g", ErrInvalid, li, i, cost)
			}
		}
	}
	if nC == 0 {
		return fmt.Errorf("%w: no consumer classes", ErrInvalid)
	}
	_ = nL
	return nil
}
