package overlay

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

// pruneScenario: a line 0-1-2-3-4. Flow "hot" from node 0 has a
// high-rank class at node 1 and a nearly worthless class at node 4, so
// its stage-1 tree spans the whole line; its per-node processing is heavy
// (NodeCost 300 — an expensive transformation), so relaying it through
// nodes 2-4 eats real capacity. Flows "local" and "edge" feed valuable
// classes at nodes 2-4 that compete for the same capacity, so stage 1
// admits nothing for hot-far, and stage 2 prunes hot's tail, freeing
// capacity at nodes 2-4 for the competing consumers.
func pruneScenario() (*Topology, float64, []FlowSpec) {
	t := Line(5, 1e9)
	flows := []FlowSpec{
		{
			Name: "hot", Source: 0, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 300,
			Classes: []ClassSpec{
				{Name: "hot-near", Node: 1, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(100)},
				{Name: "hot-far", Node: 4, MaxConsumers: 50, CostPerConsumer: 19, Utility: utility.NewLog(0.01)},
			},
		},
		{
			Name: "local", Source: 2, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []ClassSpec{
				{Name: "local-a", Node: 2, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(50)},
				{Name: "local-b", Node: 3, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(50)},
			},
		},
		{
			Name: "edge", Source: 4, RateMin: 10, RateMax: 1000,
			LinkCost: 1, NodeCost: 3,
			Classes: []ClassSpec{
				{Name: "edge-a", Node: 4, MaxConsumers: 2000, CostPerConsumer: 19, Utility: utility.NewLog(80)},
			},
		},
	}
	return t, 40_000, flows
}

func TestBuildPruned(t *testing.T) {
	topo, capacity, flows := pruneScenario()
	// Drop hot-far (index 1); keep the rest.
	p, err := BuildPruned(topo, capacity, flows, []bool{true, false, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(p.Classes))
	}
	ix := model.NewIndex(p)
	// Flow 0's tree now stops at node 1.
	if got := len(ix.NodesByFlow(0)); got != 2 {
		t.Errorf("hot reaches %d nodes after pruning, want 2", got)
	}
	if got := len(ix.LinksByFlow(0)); got != 1 {
		t.Errorf("hot uses %d links after pruning, want 1", got)
	}
}

func TestBuildPrunedMaskErrors(t *testing.T) {
	topo, capacity, flows := pruneScenario()
	if _, err := BuildPruned(topo, capacity, flows, []bool{true}); !errors.Is(err, ErrBadBuild) {
		t.Errorf("short mask error = %v", err)
	}
	if _, err := BuildPruned(topo, capacity, flows, make([]bool, 9)); !errors.Is(err, ErrBadBuild) {
		t.Errorf("long mask error = %v", err)
	}
}

func TestTwoStageSolveGains(t *testing.T) {
	topo, capacity, flows := pruneScenario()
	res, err := TwoStageSolve(topo, capacity, flows, core.Config{Adaptive: true}, 600)
	if err != nil {
		t.Fatal(err)
	}

	// Stage 1 must have starved the far class (that is the scenario's
	// point; if this fails the workload needs retuning, not the code).
	farID := model.ClassID(1)
	if n := res.Stage1.Result.Allocation.Consumers[farID]; n != 0 {
		t.Fatalf("stage 1 admitted %d far consumers; scenario mistuned", n)
	}
	if res.PrunedClasses == 0 {
		t.Fatal("nothing pruned")
	}
	if res.PrunedNodeVisits <= 0 || res.PrunedLinkVisits <= 0 {
		t.Errorf("pruned visits: nodes=%d links=%d, want > 0", res.PrunedNodeVisits, res.PrunedLinkVisits)
	}
	// Pruning frees relay capacity: stage 2 utility must strictly
	// improve.
	if res.UtilityGain <= 0 {
		t.Errorf("utility gain = %g, want > 0 (stage1 %.0f, stage2 %.0f)",
			res.UtilityGain, res.Stage1.Result.Utility, res.Stage2.Result.Utility)
	}
	// And both stages must be feasible.
	for _, stage := range []StageResult{res.Stage1, res.Stage2} {
		ix := model.NewIndex(stage.Problem)
		if err := model.CheckFeasible(stage.Problem, ix, stage.Result.Allocation, 1e-6); err != nil {
			t.Errorf("stage infeasible: %v", err)
		}
	}
}

func TestTwoStageSolveNothingToPrune(t *testing.T) {
	// Generous capacity: every class is admitted, stage 2 equals stage 1
	// structurally (same routing entries).
	topo, _, flows := pruneScenario()
	res, err := TwoStageSolve(topo, 1e9, flows, core.Config{Adaptive: true}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedClasses != 0 {
		t.Errorf("pruned %d classes with infinite capacity", res.PrunedClasses)
	}
	if res.PrunedNodeVisits != 0 || res.PrunedLinkVisits != 0 {
		t.Errorf("pruned visits: nodes=%d links=%d, want 0", res.PrunedNodeVisits, res.PrunedLinkVisits)
	}
}

func TestTwoStageSolveAllPruned(t *testing.T) {
	// Capacity so small no consumers fit anywhere: stage 2 degenerates
	// to stage 1 and must not error.
	topo, _, flows := pruneScenario()
	// Node costs alone at minimal rates must still fit for the engine to
	// start; 200 covers 2 flows * 3 * 10 = 60 but no consumer (19*10).
	res, err := TwoStageSolve(topo, 200, flows, core.Config{Adaptive: true}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stage1.Result.Utility != res.Stage2.Result.Utility {
		t.Errorf("degenerate stage 2 diverged: %g vs %g",
			res.Stage1.Result.Utility, res.Stage2.Result.Utility)
	}
}
