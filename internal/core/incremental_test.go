package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Incremental-engine equivalence: the dirty-set Step must be bit-identical
// to a full recompute — not approximately, exactly. A skipped flow's rate,
// a skipped node's populations and a skipped link's usage are the very
// floats the skipped recomputation would have produced, so exact equality
// of every observable (rates, populations, prices, gammas, utility) is the
// contract, at every iteration, for any worker count. `go test -race ./...`
// runs these tests and covers the sharded paths for data races.

// assertEnginesEqual compares the complete observable state of the
// incremental engine against the full-recompute reference exactly.
func assertEnginesEqual(t *testing.T, iter, workers int, full, inc *Engine) {
	t.Helper()
	fa, ia := full.Allocation(), inc.Allocation()
	for i := range fa.Rates {
		if fa.Rates[i] != ia.Rates[i] {
			t.Fatalf("iter %d workers %d: rate[%d] = %v, full %v",
				iter, workers, i, ia.Rates[i], fa.Rates[i])
		}
	}
	for j := range fa.Consumers {
		if fa.Consumers[j] != ia.Consumers[j] {
			t.Fatalf("iter %d workers %d: consumers[%d] = %d, full %d",
				iter, workers, j, ia.Consumers[j], fa.Consumers[j])
		}
	}
	fn, in := full.NodePrices(), inc.NodePrices()
	for b := range fn {
		if fn[b] != in[b] {
			t.Fatalf("iter %d workers %d: nodePrice[%d] = %v, full %v",
				iter, workers, b, in[b], fn[b])
		}
	}
	fl, il := full.LinkPrices(), inc.LinkPrices()
	for l := range fl {
		if fl[l] != il[l] {
			t.Fatalf("iter %d workers %d: linkPrice[%d] = %v, full %v",
				iter, workers, l, il[l], fl[l])
		}
	}
	fg, ig := full.Gammas(), inc.Gammas()
	for b := range fg {
		if fg[b] != ig[b] {
			t.Fatalf("iter %d workers %d: gamma[%d] = %v, full %v",
				iter, workers, b, ig[b], fg[b])
		}
	}
}

// TestIncrementalStepBitIdentical steps a FullRecompute engine and an
// incremental engine in lockstep over randomized workloads (with and
// without link bottlenecks, fixed and adaptive gamma, serial and sharded),
// applies mid-run mutations, and requires every observable — rates,
// populations, node and link prices, gamma state, utility, overloads — to
// match exactly at every single iteration.
func TestIncrementalStepBitIdentical(t *testing.T) {
	const iters = 150
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 4; trial++ {
		p := parallelTestProblem(rng, trial%2 == 1)
		cfg := Config{Adaptive: trial%2 == 0}
		if !cfg.Adaptive {
			cfg.Gamma1 = 0.01 + rng.Float64()*0.2
			cfg.Gamma2 = cfg.Gamma1
		}
		for _, workers := range []int{1, 4} {
			fullCfg := cfg
			fullCfg.Workers = workers
			fullCfg.FullRecompute = true
			full, err := NewEngine(p.Clone(), fullCfg)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			incCfg := cfg
			incCfg.Workers = workers
			inc, err := NewEngine(p.Clone(), incCfg)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			mutate := func(e *Engine, it int) {
				switch it {
				case 50:
					e.SetFlowActive(1, false)
				case 70:
					if err := e.SetClassDemand(2, 5); err != nil {
						t.Fatal(err)
					}
				case 90:
					e.SetFlowActive(1, true)
					if err := e.SetNodeCapacity(0, 1.5*workload.NodeCapacity); err != nil {
						t.Fatal(err)
					}
				case 110:
					if err := e.SetClassDemand(2, 40); err != nil {
						t.Fatal(err)
					}
				}
			}
			skipped := 0
			for it := 0; it < iters; it++ {
				mutate(full, it)
				mutate(inc, it)
				rf, ri := full.Step(), inc.Step()
				if rf.Utility != ri.Utility ||
					rf.MaxNodeOverload != ri.MaxNodeOverload ||
					rf.MaxLinkOverload != ri.MaxLinkOverload ||
					rf.Iteration != ri.Iteration {
					t.Fatalf("trial %d workers %d iter %d: StepResult %+v, full %+v",
						trial, workers, it, ri, rf)
				}
				if rf.SkippedNodes != 0 || rf.SkippedLinks != 0 || rf.DirtyFlows != len(p.Flows) {
					t.Fatalf("trial %d iter %d: FullRecompute engine skipped work: %+v", trial, it, rf)
				}
				skipped += ri.SkippedNodes + ri.SkippedLinks
				assertEnginesEqual(t, it, workers, full, inc)
			}
			if skipped == 0 {
				t.Errorf("trial %d workers %d: incremental engine never skipped a constraint in %d iterations",
					trial, workers, iters)
			}
			full.Close()
			inc.Close()
		}
	}
}

// TestIncrementalSteadyStateQuiesces checks the dirty set actually
// empties on a subsystem whose dynamics reach an exact float fixpoint.
// With capacity headroom every class is fully admitted, so every node's
// best unsatisfied benefit-cost ratio is 0, prices pin at their initial 0
// and — once rates hit r^max and populations hit n^max — nothing moves:
// no dirty flows, every node skipped. (A capacity-saturated node never
// freezes: the integer greedy admission and the Equation 12 price chase
// each other in a small persistent limit cycle, which the epoch tracking
// faithfully reports as dirty. The steady-state benchmark therefore mixes
// hot and overprovisioned subsystems; this test isolates the quiet kind.)
func TestIncrementalSteadyStateQuiesces(t *testing.T) {
	p := workload.Base()
	for b := range p.Nodes {
		p.Nodes[b].Capacity *= 250 // all demand fits at r^max
	}
	e, err := NewEngine(p, Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last StepResult
	for i := 0; i < 50; i++ {
		last = e.Step()
	}
	if last.DirtyFlows != 0 || last.SkippedNodes != len(p.Nodes) {
		t.Errorf("after 50 iterations: DirtyFlows=%d SkippedNodes=%d/%d; want fully quiet",
			last.DirtyFlows, last.SkippedNodes, len(p.Nodes))
	}
	if last.Utility == 0 {
		t.Error("quiet engine reports zero utility")
	}
	// Quiet is not stuck: perturbing a class demand re-dirties its flow
	// and its node.
	if err := e.SetClassDemand(0, 1); err != nil {
		t.Fatal(err)
	}
	r := e.Step()
	if r.DirtyFlows == 0 || r.SkippedNodes == len(p.Nodes) {
		t.Errorf("mutation after quiescence left the engine quiet: %+v", r)
	}
}

// TestStepAfterClosePanics pins the deterministic post-Close contract for
// Step, Solve and Reset, on serial and sharded engines alike (the old
// behavior was a send on a closed channel for sharded engines and a silent
// success for serial ones).
func TestStepAfterClosePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic after Close", name)
			}
		}()
		fn()
	}
	ser, err := NewEngine(workload.Base(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ser.Step()
	ser.Close()
	mustPanic("serial Step", func() { ser.Step() })
	mustPanic("serial Solve", func() { ser.Solve(10) })
	mustPanic("serial Reset", func() { _ = ser.Reset(workload.Base()) })

	rng := rand.New(rand.NewSource(7))
	par, err := NewEngine(parallelTestProblem(rng, false), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	par.Step()
	par.Close()
	mustPanic("sharded Step", func() { par.Step() })
}

// TestEngineResetWarmStart re-solves a capacity-perturbed problem from the
// previous fixpoint and checks (a) the warm solution matches a cold
// engine's, (b) warm-starting needs fewer iterations, and (c) warm state
// actually carried over (non-zero prices at iteration zero).
func TestEngineResetWarmStart(t *testing.T) {
	base := workload.Base()
	e, err := NewEngine(base, Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := e.Solve(400)
	if !first.Converged {
		t.Fatal("did not converge on the base problem")
	}

	perturbed := base.Clone()
	for b := range perturbed.Nodes {
		perturbed.Nodes[b].Capacity *= 0.9
	}
	if err := e.Reset(perturbed); err != nil {
		t.Fatal(err)
	}
	if e.Iteration() != 0 {
		t.Errorf("iteration after Reset = %d, want 0", e.Iteration())
	}
	warmPrices := e.NodePrices()
	nonZero := false
	for _, pr := range warmPrices {
		if pr != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Error("Reset discarded the warm node prices")
	}
	warm := e.Solve(400)
	if !warm.Converged {
		t.Fatal("warm re-solve did not converge")
	}

	cold, err := NewEngine(perturbed.Clone(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	coldRes := cold.Solve(400)
	if !coldRes.Converged {
		t.Fatal("cold engine did not converge")
	}
	if rel := math.Abs(warm.Utility-coldRes.Utility) / coldRes.Utility; rel > 0.005 {
		t.Errorf("warm utility %.0f vs cold %.0f (rel %.4f), want within 0.5%%",
			warm.Utility, coldRes.Utility, rel)
	}
	if warm.ConvergedAt >= coldRes.ConvergedAt {
		t.Errorf("warm start converged at %d, cold at %d; want warm faster",
			warm.ConvergedAt, coldRes.ConvergedAt)
	}
}

// TestEngineResetAfterFlowRemoval checks Reset composes with the mutators:
// a flow deactivated before Reset stays inactive, its rate pinned at zero
// (not clamped up to the new problem's RateMin).
func TestEngineResetAfterFlowRemoval(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Solve(250)
	e.SetFlowActive(5, false)
	e.Solve(250)

	perturbed := workload.Base().Clone()
	for b := range perturbed.Nodes {
		perturbed.Nodes[b].Capacity *= 0.9
	}
	if err := e.Reset(perturbed); err != nil {
		t.Fatal(err)
	}
	e.Solve(250)
	if e.FlowActive(5) {
		t.Error("Reset reactivated flow 5")
	}
	a := e.Allocation()
	if a.Rates[5] != 0 || a.Consumers[18] != 0 || a.Consumers[19] != 0 {
		t.Errorf("inactive flow 5 got rate %g, consumers %d/%d after Reset",
			a.Rates[5], a.Consumers[18], a.Consumers[19])
	}
}

// TestEngineResetRejectsIncompatible: topology changes must error without
// corrupting the running engine.
func TestEngineResetRejectsIncompatible(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Solve(100)

	bad := workload.Scaled(workload.Config{FlowCopies: 2})
	if err := e.Reset(bad); err == nil {
		t.Fatal("Reset accepted a problem with a different flow count")
	}
	moved := workload.Base().Clone()
	moved.Classes[0].Node = (moved.Classes[0].Node + 1) % model.NodeID(len(moved.Nodes))
	if err := e.Reset(moved); err == nil {
		t.Fatal("Reset accepted a problem with a moved class")
	}
	invalid := workload.Base().Clone()
	invalid.Flows[0].RateMin = 0
	if err := e.Reset(invalid); err == nil {
		t.Fatal("Reset accepted an invalid problem")
	}

	// The failed Resets must leave the engine running the old problem.
	if got := e.Step().Utility; math.Abs(got-before.Utility)/before.Utility > 0.01 {
		t.Errorf("utility after rejected Resets = %.0f, want ~%.0f", got, before.Utility)
	}
}

// TestEngineResetNoAllocsSteady: Reset reuses the index views, solvers and
// scratch; a Step immediately after Reset must still be 0 allocs/op.
func TestEngineResetStepNoAllocs(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.Solve(100)
	perturbed := workload.Base().Clone()
	for b := range perturbed.Nodes {
		perturbed.Nodes[b].Capacity *= 1.1
	}
	if err := e.Reset(perturbed); err != nil {
		t.Fatal(err)
	}
	e.Step()
	if allocs := testing.AllocsPerRun(50, func() { e.Step() }); allocs > 0 {
		t.Errorf("%v allocs per Step after Reset, want 0", allocs)
	}
}
