package telemetry

// DistMetrics instruments the distributed runtime (package dist): round
// progress and staleness at the collector, resend-chirp repair traffic at
// the agents, gateway batching occupancy, stall-detector trips, and
// per-wire network attribution. Construct with NewDistMetrics and pass
// via dist.Config.Telemetry; a nil handle disables everything. All
// observe methods are called from agent hot loops — they must stay
// atomic-only, no locks, no allocation (the registry's instruments
// already are).
type DistMetrics struct {
	// RoundsFinalized counts rounds the collector fully assembled.
	RoundsFinalized *Counter
	// StalenessLag is the frontier round (freshest round seen in any
	// message) minus the slowest active agent's round, sampled at each
	// finalize — the cluster's effective staleness.
	StalenessLag *Gauge
	// FinalizeLag is the frontier round minus the most recently finalized
	// round: how far assembly trails the fastest agents.
	FinalizeLag *Gauge
	// AssemblySeconds is the time from a round's first absorbed input to
	// its finalize.
	AssemblySeconds *Histogram
	// FlowChirps/NodeChirps count stall re-announces (resend chirps);
	// FlowBackoffs/NodeBackoffs count chirp-interval escalations (a chirp
	// that still produced no progress); FlowRepairs/NodeRepairs count
	// stalls that resumed after at least one chirp — the chirp plausibly
	// repaired a lost frame.
	FlowChirps   *Counter
	NodeChirps   *Counter
	FlowBackoffs *Counter
	NodeBackoffs *Counter
	FlowRepairs  *Counter
	NodeRepairs  *Counter
	// GatewayFlushes counts flush epochs that carried traffic;
	// GatewayQueueDepth is the staged message count at the most recent
	// flush; FlushOccupancy is messages per flushed batch frame.
	GatewayFlushes    *Counter
	GatewayQueueDepth *Gauge
	FlushOccupancy    *Histogram
	// Stalls counts stall-detector trips (no collector progress within
	// the deadline while rounds were pending).
	Stalls *Counter
	// Per-wire traffic mirrored from the transport's Meter after a run:
	// frames and payload bytes by encoding, plus fault-injected drops.
	NetFramesJSON   *Gauge
	NetFramesBinary *Gauge
	NetBytesJSON    *Gauge
	NetBytesBinary  *Gauge
	NetDropped      *Gauge
}

// DistBuckets overrides the histogram layouts used by
// NewDistMetricsBuckets. Nil fields keep the defaults.
type DistBuckets struct {
	// AssemblySeconds buckets (default MicroDurationBuckets).
	AssemblySeconds []float64
	// FlushOccupancy buckets (default OccupancyBuckets).
	FlushOccupancy []float64
}

// NewDistMetrics registers the dist metric family in reg and returns the
// handle, with the default µs-scale assembly and occupancy layouts.
func NewDistMetrics(reg *Registry) *DistMetrics {
	return NewDistMetricsBuckets(reg, DistBuckets{})
}

// NewDistMetricsBuckets is NewDistMetrics with caller-chosen bucket
// layouts. As with NewEngineMetricsBuckets, layouts apply only on first
// registration of each family in reg.
func NewDistMetricsBuckets(reg *Registry, b DistBuckets) *DistMetrics {
	if b.AssemblySeconds == nil {
		b.AssemblySeconds = MicroDurationBuckets()
	}
	if b.FlushOccupancy == nil {
		b.FlushOccupancy = OccupancyBuckets()
	}
	flow := Label{Key: "agent", Value: "flow"}
	node := Label{Key: "agent", Value: "node"}
	return &DistMetrics{
		RoundsFinalized: reg.Counter("lrgp_dist_rounds_finalized_total",
			"Rounds fully assembled and finalized by the collector."),
		StalenessLag: reg.Gauge("lrgp_dist_staleness_lag",
			"Frontier round minus the slowest active agent's round at the last finalize."),
		FinalizeLag: reg.Gauge("lrgp_dist_collector_finalize_lag",
			"Frontier round minus the most recently finalized round."),
		AssemblySeconds: reg.Histogram("lrgp_dist_round_assembly_seconds",
			"Time from a round's first absorbed input to its finalize.", b.AssemblySeconds),
		FlowChirps: reg.Counter("lrgp_dist_resend_chirps_total",
			"Stall re-announces by agent kind.", flow),
		NodeChirps: reg.Counter("lrgp_dist_resend_chirps_total",
			"Stall re-announces by agent kind.", node),
		FlowBackoffs: reg.Counter("lrgp_dist_resend_backoffs_total",
			"Chirp-interval escalations by agent kind.", flow),
		NodeBackoffs: reg.Counter("lrgp_dist_resend_backoffs_total",
			"Chirp-interval escalations by agent kind.", node),
		FlowRepairs: reg.Counter("lrgp_dist_repairs_total",
			"Stalls that resumed after at least one chirp, by agent kind.", flow),
		NodeRepairs: reg.Counter("lrgp_dist_repairs_total",
			"Stalls that resumed after at least one chirp, by agent kind.", node),
		GatewayFlushes: reg.Counter("lrgp_dist_gateway_flushes_total",
			"Gateway flush epochs that carried staged traffic."),
		GatewayQueueDepth: reg.Gauge("lrgp_dist_gateway_queue_depth",
			"Staged messages at the most recent gateway flush."),
		FlushOccupancy: reg.Histogram("lrgp_dist_gateway_flush_occupancy",
			"Messages per flushed gateway batch frame.", b.FlushOccupancy),
		Stalls: reg.Counter("lrgp_dist_stalls_total",
			"Stall-detector trips (no collector progress within the deadline)."),
		NetFramesJSON: reg.Gauge("lrgp_dist_net_frames",
			"Transport frames by wire format.", Label{Key: "wire", Value: "json"}),
		NetFramesBinary: reg.Gauge("lrgp_dist_net_frames",
			"Transport frames by wire format.", Label{Key: "wire", Value: "binary"}),
		NetBytesJSON: reg.Gauge("lrgp_dist_net_bytes",
			"Transport payload bytes by wire format.", Label{Key: "wire", Value: "json"}),
		NetBytesBinary: reg.Gauge("lrgp_dist_net_bytes",
			"Transport payload bytes by wire format.", Label{Key: "wire", Value: "binary"}),
		NetDropped: reg.Gauge("lrgp_dist_net_dropped",
			"Messages lost to fault injection or partitions."),
	}
}

// ObserveFinalize records one finalized round: the effective staleness
// lag, the collector's finalize lag behind the frontier, and the round's
// assembly wall time (first input to finalize, nanoseconds).
func (m *DistMetrics) ObserveFinalize(stalenessLag, finalizeLag int, assemblyNanos int64) {
	if m == nil {
		return
	}
	m.RoundsFinalized.Inc()
	m.StalenessLag.Set(float64(stalenessLag))
	m.FinalizeLag.Set(float64(finalizeLag))
	m.AssemblySeconds.ObserveSeconds(assemblyNanos)
}

// ObserveChirp records one stall re-announce.
func (m *DistMetrics) ObserveChirp(flow bool) {
	if m == nil {
		return
	}
	if flow {
		m.FlowChirps.Inc()
	} else {
		m.NodeChirps.Inc()
	}
}

// ObserveBackoff records one chirp-interval escalation.
func (m *DistMetrics) ObserveBackoff(flow bool) {
	if m == nil {
		return
	}
	if flow {
		m.FlowBackoffs.Inc()
	} else {
		m.NodeBackoffs.Inc()
	}
}

// ObserveRepair records a stall that resumed after at least one chirp.
func (m *DistMetrics) ObserveRepair(flow bool) {
	if m == nil {
		return
	}
	if flow {
		m.FlowRepairs.Inc()
	} else {
		m.NodeRepairs.Inc()
	}
}

// ObserveFlush records one gateway flush epoch of `staged` total messages.
func (m *DistMetrics) ObserveFlush(staged int) {
	if m == nil {
		return
	}
	m.GatewayFlushes.Inc()
	m.GatewayQueueDepth.Set(float64(staged))
}

// ObserveFlushFrame records one flushed batch frame of `msgs` messages.
func (m *DistMetrics) ObserveFlushFrame(msgs int) {
	if m == nil {
		return
	}
	m.FlushOccupancy.Observe(float64(msgs))
}

// ObserveStall records one stall-detector trip.
func (m *DistMetrics) ObserveStall() {
	if m == nil {
		return
	}
	m.Stalls.Inc()
}

// ObserveNet mirrors a transport Meter snapshot into the net gauges. The
// arguments are plain counts so the telemetry package stays free of a
// transport dependency.
func (m *DistMetrics) ObserveNet(jsonFrames, jsonBytes, binFrames, binBytes, dropped uint64) {
	if m == nil {
		return
	}
	m.NetFramesJSON.Set(float64(jsonFrames))
	m.NetBytesJSON.Set(float64(jsonBytes))
	m.NetFramesBinary.Set(float64(binFrames))
	m.NetBytesBinary.Set(float64(binBytes))
	m.NetDropped.Set(float64(dropped))
}
