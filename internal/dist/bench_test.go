package dist

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

// BenchmarkSyncRoundMemory measures one synchronous LRGP round over the
// in-memory transport on the base workload (9 agents + collector).
func BenchmarkSyncRoundMemory(b *testing.B) {
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(workload.Base(), Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run(1, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncRoundTCP measures the same round over loopback TCP with
// JSON framing.
func BenchmarkSyncRoundTCP(b *testing.B) {
	net := transport.NewTCP()
	defer net.Close()
	cl, err := New(workload.Base(), Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run(1, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}
