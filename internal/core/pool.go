package core

import "sync"

// workerPool is the engine's persistent shard-execution pool. The three
// LRGP stages are embarrassingly parallel within themselves (rates are
// per-flow, admissions per-node, prices per-link), so each stage fans out
// over fixed contiguous shards and barriers before the next stage starts.
//
// The pool parks workers goroutines on a task channel between stages;
// run executes shard 0 on the calling goroutine so a pool serving W-way
// sharding needs only W-1 workers. Tasks carry the stage function by
// value, so idle workers hold no reference to the Engine and an abandoned
// engine's finalizer can still fire and shut the pool down.
type workerPool struct {
	tasks chan poolTask
	wg    sync.WaitGroup
	once  sync.Once
}

type poolTask struct {
	fn    func(shard int)
	shard int
}

// newWorkerPool starts workers goroutines parked on the task channel.
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, workers)}
	for w := 0; w < workers; w++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	for t := range p.tasks {
		t.fn(t.shard)
		p.wg.Done()
	}
}

// run executes fn(s) for every shard s in [0, shards) and returns when all
// shards have completed. Shard 0 runs on the calling goroutine. The
// WaitGroup barrier establishes the happens-before edge the next stage
// needs to observe every shard's writes.
func (p *workerPool) run(fn func(shard int), shards int) {
	p.wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		p.tasks <- poolTask{fn: fn, shard: s}
	}
	fn(0)
	p.wg.Wait()
}

// close shuts the workers down. Idempotent; run must not be called after.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.tasks) })
}
