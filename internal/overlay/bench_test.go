package overlay

import (
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

func benchFlows(n int, subscribersPerFlow int, topoNodes int) []FlowSpec {
	flows := make([]FlowSpec, n)
	for i := range flows {
		fs := FlowSpec{
			Name: "f", Source: model.NodeID(i % topoNodes),
			RateMin: 10, RateMax: 1000, LinkCost: 1, NodeCost: 3,
		}
		for s := 0; s < subscribersPerFlow; s++ {
			fs.Classes = append(fs.Classes, ClassSpec{
				Name: "c", Node: model.NodeID((i + s*3 + 1) % topoNodes),
				MaxConsumers: 100, CostPerConsumer: 19, Utility: utility.NewLog(10),
			})
		}
		flows[i] = fs
	}
	return flows
}

func BenchmarkShortestPathRing64(b *testing.B) {
	t := Ring(64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.ShortestPath(0, model.NodeID(32)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildProblem(b *testing.B) {
	t := Ring(32, 1e6)
	flows := benchFlows(16, 4, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(t, 9e5, flows); err != nil {
			b.Fatal(err)
		}
	}
}
