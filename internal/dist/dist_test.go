package dist

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/transport"
	"repro/internal/workload"
)

func TestItoa(t *testing.T) {
	tests := []struct {
		give int
		want string
	}{
		{0, "0"}, {7, "7"}, {42, "42"}, {1234, "1234"}, {-3, "-3"},
	}
	for _, tt := range tests {
		if got := itoa(tt.give); got != tt.want {
			t.Errorf("itoa(%d) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestPriceWindow(t *testing.T) {
	pw := newPriceWindow(3)
	if pw.avg() != 0 {
		t.Errorf("empty avg = %g", pw.avg())
	}
	pw.push(3)
	if pw.avg() != 3 {
		t.Errorf("avg = %g, want 3", pw.avg())
	}
	pw.push(6)
	pw.push(9)
	if pw.avg() != 6 {
		t.Errorf("avg = %g, want 6", pw.avg())
	}
	pw.push(12) // evicts 3
	if pw.avg() != 9 {
		t.Errorf("avg = %g, want 9", pw.avg())
	}
	if w := newPriceWindow(0); len(w.vals) != 1 {
		t.Errorf("window 0 normalized to %d, want 1", len(w.vals))
	}
}

// TestSyncMatchesEngine is the distributed runtime's keystone test: the
// lock-step cluster must produce exactly the same utility trajectory as
// the in-process Engine, because every agent executes the same exported
// primitives in the same data-dependency order.
func TestSyncMatchesEngine(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		p := workload.Base()
		coreCfg := core.Config{Adaptive: adaptive}

		e, err := core.NewEngine(p.Clone(), coreCfg)
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 60
		var engineTrace []float64
		for i := 0; i < rounds; i++ {
			engineTrace = append(engineTrace, e.Step().Utility)
		}

		net := transport.NewMemory()
		cl, err := New(p, Config{Core: coreCfg, Mode: Sync}, net)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := cl.Run(rounds, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		net.Close()

		if len(stats) != rounds {
			t.Fatalf("adaptive=%v: got %d rounds, want %d", adaptive, len(stats), rounds)
		}
		for i, s := range stats {
			if rel := math.Abs(s.Utility-engineTrace[i]) / math.Max(1, engineTrace[i]); rel > 1e-9 {
				t.Fatalf("adaptive=%v round %d: dist %g vs engine %g", adaptive, i+1, s.Utility, engineTrace[i])
			}
		}
	}
}

// TestSyncMatchesEngineRandomWorkloads extends the keystone parity test
// across randomized problem shapes: whatever the topology of flows,
// classes and nodes, the distributed rounds must replay the engine.
func TestSyncMatchesEngineRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		p := workload.Random(rng, workload.RandomConfig{
			Flows: 2 + rng.Intn(5), Nodes: 2 + rng.Intn(4), ClassesPerFlow: 1 + rng.Intn(4),
		})
		coreCfg := core.Config{Adaptive: trial%2 == 0}

		e, err := core.NewEngine(p.Clone(), coreCfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		const rounds = 30
		var engineTrace []float64
		for i := 0; i < rounds; i++ {
			engineTrace = append(engineTrace, e.Step().Utility)
		}

		net := transport.NewMemory()
		cl, err := New(p, Config{Core: coreCfg}, net)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		stats, err := cl.Run(rounds, time.Minute)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_ = cl.Close()
		net.Close()

		for i, s := range stats {
			if rel := math.Abs(s.Utility-engineTrace[i]) / math.Max(1, engineTrace[i]); rel > 1e-9 {
				t.Fatalf("trial %d round %d: dist %g vs engine %g", trial, i+1, s.Utility, engineTrace[i])
			}
		}
	}
}

func TestSyncOverTCP(t *testing.T) {
	p := workload.Base()
	coreCfg := core.Config{Adaptive: true}

	e, err := core.NewEngine(p.Clone(), coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	var engineTrace []float64
	for i := 0; i < rounds; i++ {
		engineTrace = append(engineTrace, e.Step().Utility)
	}

	net := transport.NewTCP()
	defer net.Close()
	cl, err := New(p, Config{Core: coreCfg, Mode: Sync}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stats, err := cl.Run(rounds, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != rounds {
		t.Fatalf("got %d rounds, want %d", len(stats), rounds)
	}
	for i, s := range stats {
		if rel := math.Abs(s.Utility-engineTrace[i]) / math.Max(1, engineTrace[i]); rel > 1e-9 {
			t.Fatalf("round %d: dist-tcp %g vs engine %g", i+1, s.Utility, engineTrace[i])
		}
	}
}

func TestSyncIncrementalRuns(t *testing.T) {
	// Two Run calls must continue the same trajectory as one long run.
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	first, err := cl.Run(20, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Run(20, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if first[len(first)-1].Round != 20 || second[0].Round != 21 || second[len(second)-1].Round != 40 {
		t.Errorf("round numbering: %d..%d then %d..%d",
			first[0].Round, first[len(first)-1].Round, second[0].Round, second[len(second)-1].Round)
	}
}

func TestSyncWithLinks(t *testing.T) {
	p := workload.WithLinkBottlenecks(workload.Base(), 0.5)
	coreCfg := core.Config{Adaptive: true}

	e, err := core.NewEngine(p.Clone(), coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 40
	var engineTrace []float64
	for i := 0; i < rounds; i++ {
		engineTrace = append(engineTrace, e.Step().Utility)
	}

	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: coreCfg}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stats, err := cl.Run(rounds, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stats {
		if rel := math.Abs(s.Utility-engineTrace[i]) / math.Max(1, engineTrace[i]); rel > 1e-9 {
			t.Fatalf("round %d: dist %g vs engine %g (link pricing diverged)", i+1, s.Utility, engineTrace[i])
		}
	}
}

func TestRemoveFlow(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	before, err := cl.Run(100, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	uBefore := before[len(before)-1].Utility

	if err := cl.RemoveFlow(5); err != nil {
		t.Fatal(err)
	}
	after, err := cl.Run(100, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	uAfter := after[len(after)-1].Utility
	if uAfter >= uBefore {
		t.Errorf("utility after removing flow 5 = %g, want below %g", uAfter, uBefore)
	}
	a := cl.Allocation()
	if a.Rates[5] != 0 || a.Consumers[18] != 0 || a.Consumers[19] != 0 {
		t.Errorf("flow 5 leftovers: rate=%g n18=%d n19=%d", a.Rates[5], a.Consumers[18], a.Consumers[19])
	}
}

func TestRemoveAndRejoinFlow(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	before, err := cl.Run(120, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	uBefore := before[len(before)-1].Utility

	if err := cl.RemoveFlow(5); err != nil {
		t.Fatal(err)
	}
	during, err := cl.Run(120, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	uDuring := during[len(during)-1].Utility
	if uDuring >= uBefore {
		t.Fatalf("utility %g did not drop during departure (was %g)", uDuring, uBefore)
	}

	if err := cl.JoinFlow(5); err != nil {
		t.Fatal(err)
	}
	after, err := cl.Run(200, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	uAfter := after[len(after)-1].Utility
	if rel := math.Abs(uAfter-uBefore) / uBefore; rel > 0.02 {
		t.Errorf("utility after rejoin %g deviates %.2f%% from original %g", uAfter, rel*100, uBefore)
	}
	a := cl.Allocation()
	if a.Rates[5] <= 0 || a.Consumers[18] == 0 || a.Consumers[19] == 0 {
		t.Errorf("flow 5 not restored: rate=%g n18=%d n19=%d", a.Rates[5], a.Consumers[18], a.Consumers[19])
	}
}

func TestJoinActiveFlowIsNoop(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	first, err := cl.Run(10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.JoinFlow(0); err != nil { // already active
		t.Fatal(err)
	}
	second, err := cl.Run(10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 10 || len(second) != 10 {
		t.Errorf("round counts %d/%d", len(first), len(second))
	}
}

func TestAsyncConverges(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{
		Core: core.Config{Adaptive: true},
		Mode: Async,
		Tick: time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Reference utility from the synchronous engine.
	e, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := e.Solve(400).Utility

	// Sample until the async system holds the reference band (10
	// consecutive in-band samples) or time runs out. Async allocations
	// legitimately flicker between near-equivalent discrete optima, so
	// the criterion is band membership, not amplitude.
	deadline := time.After(20 * time.Second)
	inBand := 0
	for {
		select {
		case <-deadline:
			t.Fatalf("async did not reach %g; last sample %g", want, cl.Sample().Utility)
		default:
		}
		s := cl.Sample()
		if math.Abs(s.Utility-want)/want < 0.02 {
			inBand++
			if inBand >= 10 {
				return // held within 2% of the synchronous optimum
			}
		} else {
			inBand = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAsyncRunRejected(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Mode: Async, Tick: time.Millisecond}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(1, time.Second); err != ErrMode {
		t.Errorf("error = %v, want ErrMode", err)
	}
}

func TestNewValidates(t *testing.T) {
	p := workload.Base()
	p.Classes[0].Utility = nil
	net := transport.NewMemory()
	defer net.Close()
	if _, err := New(p, Config{}, net); err == nil {
		t.Error("New accepted invalid problem")
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{}, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestAllocationFeasibleAfterRun(t *testing.T) {
	p := workload.Base()
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(p, Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Run(60, time.Minute); err != nil {
		t.Fatal(err)
	}
	a := cl.Allocation()
	ix := model.NewIndex(p)
	if err := model.CheckFeasible(p, ix, a, 1e-6); err != nil {
		t.Errorf("allocation infeasible: %v", err)
	}
}
