package broker

import (
	"fmt"
	"sync/atomic"

	"repro/internal/model"
)

// ProducerID identifies a registered producer.
type ProducerID int

// Producer is a registered publishing endpoint for one flow. All
// producers of a flow share the flow's source node and rate limit (the
// paper: "a producer publishes messages on one flow, and all the
// producers publishing to a particular flow connect to the same node");
// per-producer accounting is kept separately. Producer methods are safe
// for concurrent use and lock-free: concurrent Publish calls through the
// same or different producers contend only on the flow's token bucket.
type Producer struct {
	id     ProducerID
	flow   model.FlowID
	broker *Broker

	published atomic.Uint64
	throttled atomic.Uint64
	detached  atomic.Bool
}

// ProducerStats reports one producer's accounting.
type ProducerStats struct {
	Published uint64
	Throttled uint64
}

// RegisterProducer attaches a producer to a flow.
func (b *Broker) RegisterProducer(flow model.FlowID) (*Producer, error) {
	if flow < 0 || int(flow) >= len(b.p.Flows) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFlow, flow)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	pr := &Producer{
		id:     ProducerID(b.nextProducer),
		flow:   flow,
		broker: b,
	}
	b.nextProducer++
	b.producers[pr.id] = pr
	return pr, nil
}

// Flow returns the producer's flow.
func (p *Producer) Flow() model.FlowID { return p.flow }

// Publish injects one message through the producer, applying the flow's
// shared rate limit and recording per-producer stats. The attrs map must
// not be mutated after publishing (see Broker.Publish).
func (p *Producer) Publish(attrs map[string]float64, body string) error {
	if p.detached.Load() {
		return fmt.Errorf("broker: producer %d detached", p.id)
	}
	err := p.broker.Publish(p.flow, attrs, body)
	switch {
	case err == nil:
		p.published.Add(1)
	case err == ErrThrottled:
		p.throttled.Add(1)
	}
	return err
}

// Stats returns the producer's counters.
func (p *Producer) Stats() ProducerStats {
	return ProducerStats{
		Published: p.published.Load(),
		Throttled: p.throttled.Load(),
	}
}

// Detach deregisters the producer; further Publish calls fail.
func (p *Producer) Detach() {
	p.detached.Store(true)
	p.broker.mu.Lock()
	delete(p.broker.producers, p.id)
	p.broker.mu.Unlock()
}
