package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with lock-free observation:
// per-bucket atomic counters plus a CAS-maintained float sum. The bucket
// layout is fixed at construction, so Observe never allocates, locks or
// resizes — the property the instrumented hot paths rely on.
type Histogram struct {
	// upper holds the ascending finite bucket upper bounds; counts has
	// one extra slot for the implicit +Inf bucket. Counts are stored
	// per-bucket (not cumulative) and accumulated at render time.
	upper   []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	for i := 1; i < len(upper); i++ {
		if upper[i] == upper[i-1] {
			panic(fmt.Sprintf("telemetry: duplicate histogram bucket bound %g", upper[i]))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds as seconds, the
// unit the stage-timing histograms are registered in.
func (h *Histogram) ObserveSeconds(nanos int64) {
	h.Observe(float64(nanos) / 1e9)
}

// CountSum returns the total observation count and value sum. The two
// loads are not a single atomic snapshot; under concurrent observation
// they may straddle an Observe, which scrape-style consumers tolerate.
func (h *Histogram) CountSum() (uint64, float64) {
	return h.count.Load(), math.Float64frombits(h.sumBits.Load())
}

// writePrometheus renders the cumulative `_bucket` series plus `_sum` and
// `_count` samples.
func (h *Histogram) writePrometheus(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.upper {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", labels, fmt.Sprintf("le=%q", formatValue(bound)), float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(w, name+"_bucket", labels, `le="+Inf"`, float64(cum))
	count, sum := h.CountSum()
	writeSample(w, name+"_sum", labels, "", sum)
	writeSample(w, name+"_count", labels, "", float64(count))
}

// DurationBuckets is the fixed bucket layout (seconds) used by the stage
// and latency histograms: 1µs to 5s in 1-5 decades. Sub-microsecond
// stages land in the first bucket; anything slower than 5s is +Inf.
func DurationBuckets() []float64 {
	return []float64{
		1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
		1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5,
	}
}

// FanoutBuckets is the fixed bucket layout for per-publish delivery
// fan-out (messages handed to consumers by one Publish).
func FanoutBuckets() []float64 {
	return []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}

// MicroDurationBuckets is a bucket layout (seconds) for µs-scale message
// latencies: 100ns to 50ms in 1-5 decades. DurationBuckets' first bound
// is already 1µs, which flattens sub-µs message timings into one bucket;
// this layout resolves them.
func MicroDurationBuckets() []float64 {
	return []float64{
		1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5,
		1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2,
	}
}

// OccupancyBuckets is a bucket layout for queue/batch occupancy counts
// (messages per gateway flush frame, staged queue depths).
func OccupancyBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
}
