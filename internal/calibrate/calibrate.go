// Package calibrate recovers the paper's resource-model coefficients from
// observed broker behavior, the way the authors derived F_{b,i} = 3,
// G_{b,j} = 19 and c_b = 9*10^5 from measurements on the Gryphon system
// ("These equations are validated using experiments on the Gryphon
// system", Section 2.3).
//
// The broker exposes a deterministic work counter (one unit per message
// routed, per class transform, per filter evaluation, per delivery).
// MeasureBroker publishes message batches across a sweep of admitted
// population sizes and records the per-message work; FitAffine regresses
//
//	workPerMessage = F + G * n
//
// by least squares, recovering the consumer-independent cost F and the
// per-consumer cost G. ProblemCoefficients then scales them into the
// per-unit-rate form the optimization model uses.
package calibrate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/broker"
	"repro/internal/model"
)

// Errors returned by the calibration routines.
var (
	ErrTooFewSamples = errors.New("calibrate: need at least two samples")
	ErrDegenerate    = errors.New("calibrate: degenerate sample set")
)

// Sample is one calibration observation: with n admitted consumers, each
// published message cost WorkPerMessage units.
type Sample struct {
	Consumers      int
	WorkPerMessage float64
}

// Fit is the affine model workPerMessage = F + G*n with its quality.
type Fit struct {
	// F is the consumer-independent per-message cost.
	F float64
	// G is the per-consumer per-message cost.
	G float64
	// R2 is the coefficient of determination on the samples.
	R2 float64
}

// FitAffine least-squares fits the affine model to the samples.
func FitAffine(samples []Sample) (Fit, error) {
	if len(samples) < 2 {
		return Fit{}, ErrTooFewSamples
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		x, y := float64(s.Consumers), s.WorkPerMessage
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return Fit{}, fmt.Errorf("%w: all samples share one population size", ErrDegenerate)
	}
	g := (n*sxy - sx*sy) / denom
	f := (sy - g*sx) / n

	meanY := sy / n
	var ssRes, ssTot float64
	for _, s := range samples {
		pred := f + g*float64(s.Consumers)
		ssRes += (s.WorkPerMessage - pred) * (s.WorkPerMessage - pred)
		ssTot += (s.WorkPerMessage - meanY) * (s.WorkPerMessage - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{F: f, G: g, R2: r2}, nil
}

// MeasureBroker sweeps admitted population sizes for one class of one
// flow on the broker, publishing msgsPerPoint messages at each point and
// recording per-message work. The broker should be dedicated to the
// measurement (its counters are global), the flow's rate is re-enacted to
// rate for every point, and enough consumers must already be attached to
// cover max(populations).
func MeasureBroker(b *broker.Broker, flow model.FlowID, class model.ClassID, rate float64, populations []int, msgsPerPoint int) ([]Sample, error) {
	if msgsPerPoint <= 0 {
		msgsPerPoint = 100
	}
	p := b.Problem()
	var samples []Sample
	for _, n := range populations {
		alloc := model.NewAllocation(p)
		alloc.Rates[flow] = rate
		alloc.Consumers[class] = n
		if err := b.ApplyAllocation(alloc); err != nil {
			return nil, err
		}
		stats, err := b.ClassStats(class)
		if err != nil {
			return nil, err
		}
		if stats.Admitted != n {
			return nil, fmt.Errorf("calibrate: admitted %d of requested %d (attach more consumers)", stats.Admitted, n)
		}

		before := b.WorkUnits()
		published := 0
		for published < msgsPerPoint {
			err := b.Publish(flow, map[string]float64{"calib": 1}, "calibration")
			switch {
			case err == nil:
				published++
			case errors.Is(err, broker.ErrThrottled):
				return nil, fmt.Errorf("calibrate: throttled at rate %g; lower msgsPerPoint or raise the rate", rate)
			default:
				return nil, err
			}
		}
		samples = append(samples, Sample{
			Consumers:      n,
			WorkPerMessage: float64(b.WorkUnits()-before) / float64(msgsPerPoint),
		})
	}
	return samples, nil
}

// ProblemCoefficients converts a fit into the optimization model's
// coefficients: with utility defined over the message rate r, node
// resource use is workPerMessage * r, so F and G carry over per unit rate
// directly. unitCost scales abstract work units into the deployment's
// resource units (pass 1 to keep work units).
func ProblemCoefficients(fit Fit, unitCost float64) (flowNodeCost, consumerCost float64, err error) {
	if unitCost <= 0 {
		return 0, 0, fmt.Errorf("calibrate: unit cost %g", unitCost)
	}
	if fit.F <= 0 || fit.G <= 0 {
		return 0, 0, fmt.Errorf("%w: fitted F=%g G=%g must be positive", ErrDegenerate, fit.F, fit.G)
	}
	if math.IsNaN(fit.F) || math.IsNaN(fit.G) {
		return 0, 0, fmt.Errorf("%w: NaN fit", ErrDegenerate)
	}
	return fit.F * unitCost, fit.G * unitCost, nil
}
