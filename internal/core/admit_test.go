package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

// admitProblem: one node, two flows, three classes with controllable
// utilities and costs for exercising the greedy allocation.
func admitProblem() (*model.Problem, *model.Index) {
	p := &model.Problem{
		Flows: []model.Flow{
			{ID: 0, Source: 0, RateMin: 1, RateMax: 1000},
			{ID: 1, Source: 0, RateMin: 1, RateMax: 1000},
		},
		Nodes: []model.Node{{
			ID: 0, Capacity: 1000,
			FlowCost: map[model.FlowID]float64{0: 2, 1: 3},
		}},
		Classes: []model.Class{
			// At r=10: U = 100*log(11) ~ 239.8, unit cost 10 => BC ~ 23.98.
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 5, CostPerConsumer: 1, Utility: utility.NewLog(100)},
			// At r=10: U = 10*log(11) ~ 24, unit cost 20 => BC ~ 1.2.
			{ID: 1, Flow: 0, Node: 0, MaxConsumers: 50, CostPerConsumer: 2, Utility: utility.NewLog(10)},
			// At r=10: U = 50*log(11) ~ 119.9, unit cost 40 => BC ~ 3.
			{ID: 2, Flow: 1, Node: 0, MaxConsumers: 50, CostPerConsumer: 4, Utility: utility.NewLog(50)},
		},
	}
	return p, model.NewIndex(p)
}

func admitAll(t *testing.T, p *model.Problem, ix *model.Index, rates []float64) ([]int, admitResult) {
	t.Helper()
	consumers := make([]int, len(p.Classes))
	active := make([]bool, len(p.Flows))
	for i := range active {
		active[i] = true
	}
	res := admitNode(p, ix, 0, rates, active, consumers, nil, nil, 0)
	return consumers, res
}

func TestAdmitGreedyOrder(t *testing.T) {
	p, ix := admitProblem()
	rates := []float64{10, 10}
	consumers, res := admitAll(t, p, ix, rates)

	// Budget = 1000 - (2*10 + 3*10) = 950.
	// Greedy order by BC: class 0 (23.98), class 2 (3.0), class 1 (1.2).
	// Class 0: 5 consumers (max) * 10 = 50, budget 900.
	// Class 2: floor(900/40) = 22 consumers, budget 900-880=20.
	// Class 1: floor(20/20) = 1 consumer, budget 0.
	if consumers[0] != 5 || consumers[2] != 22 || consumers[1] != 1 {
		t.Errorf("consumers = %v, want [5 1 22]", consumers)
	}
	wantUsed := 50.0 + (2*10 + 3*10) + 880 + 20
	if res.used != wantUsed {
		t.Errorf("used = %g, want %g", res.used, wantUsed)
	}
	if res.used > p.Nodes[0].Capacity {
		t.Errorf("greedy exceeded capacity: %g > %g", res.used, p.Nodes[0].Capacity)
	}
}

func TestAdmitBestUnsatisfied(t *testing.T) {
	p, ix := admitProblem()
	rates := []float64{10, 10}
	_, res := admitAll(t, p, ix, rates)

	// Classes 1 and 2 are partially admitted; class 2 has the higher BC.
	wantBC := p.Classes[2].Utility.Value(10) / (4 * 10)
	if diff := res.bestUnsatisfied - wantBC; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("bestUnsatisfied = %g, want %g", res.bestUnsatisfied, wantBC)
	}
}

func TestAdmitAllSatisfiedZeroBC(t *testing.T) {
	p, ix := admitProblem()
	// Tiny populations so everything fits.
	for j := range p.Classes {
		p.Classes[j].MaxConsumers = 1
	}
	_, res := admitAll(t, p, ix, []float64{10, 10})
	if res.bestUnsatisfied != 0 {
		t.Errorf("bestUnsatisfied = %g, want 0 when all classes full", res.bestUnsatisfied)
	}
}

func TestAdmitFlowCostsExceedCapacity(t *testing.T) {
	p, ix := admitProblem()
	// 2*300 + 3*300 = 1500 > 1000: the paper's boundary case, all n_j = 0.
	consumers, res := admitAll(t, p, ix, []float64{300, 300})
	for j, n := range consumers {
		if n != 0 {
			t.Errorf("consumers[%d] = %d, want 0", j, n)
		}
	}
	if res.used != 1500 {
		t.Errorf("used = %g, want 1500 (flow costs only)", res.used)
	}
	// Unsatisfied classes still report a positive best BC so the price
	// can reflect the foregone admission benefit.
	if res.bestUnsatisfied <= 0 {
		t.Errorf("bestUnsatisfied = %g, want > 0", res.bestUnsatisfied)
	}
}

func TestAdmitInactiveFlowSkipped(t *testing.T) {
	p, ix := admitProblem()
	consumers := make([]int, len(p.Classes))
	consumers[2] = 17 // stale population from when flow 1 was active
	active := []bool{true, false}
	res := admitNode(p, ix, 0, []float64{10, 0}, active, consumers, nil, nil, 0)

	if consumers[2] != 0 {
		t.Errorf("inactive flow class population = %d, want 0", consumers[2])
	}
	if consumers[0] != 5 {
		t.Errorf("active class 0 = %d, want 5", consumers[0])
	}
	// Flow 1's flow-node cost must not be charged.
	// Budget = 1000 - 2*10 = 980. Class 0: 50. Class 1: floor(930/20)=46.
	if consumers[1] != 46 {
		t.Errorf("active class 1 = %d, want 46", consumers[1])
	}
	wantUsed := 20.0 + 50 + 920
	if res.used != wantUsed {
		t.Errorf("used = %g, want %g", res.used, wantUsed)
	}
}

func TestAdmitDeterministicTieBreak(t *testing.T) {
	// Two identical classes: the lower ID must be filled first.
	p := &model.Problem{
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: 1, RateMax: 100}},
		Nodes: []model.Node{{ID: 0, Capacity: 100, FlowCost: map[model.FlowID]float64{0: 1}}},
		Classes: []model.Class{
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 3, Utility: utility.NewLog(10)},
			{ID: 1, Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 3, Utility: utility.NewLog(10)},
		},
	}
	ix := model.NewIndex(p)
	consumers := make([]int, 2)
	// Budget = 100 - 10 = 90; unit cost 30; 3 consumers fit.
	admitNode(p, ix, 0, []float64{10}, []bool{true}, consumers, nil, nil, 0)
	if consumers[0] != 3 || consumers[1] != 0 {
		t.Errorf("consumers = %v, want [3 0] (deterministic tie-break)", consumers)
	}
}

func TestAdmitSkipsNonPositiveUtility(t *testing.T) {
	// A utility that is zero at the current rate must never be admitted:
	// it would consume resource for no objective gain.
	p := &model.Problem{
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: 1, RateMax: 100}},
		Nodes: []model.Node{{ID: 0, Capacity: 1000, FlowCost: map[model.FlowID]float64{0: 1}}},
		Classes: []model.Class{
			// Hyperbolic value at r is tiny but positive; LinearCap at
			// r=0... instead use a shifted log that is zero at r=1:
			// log(0+1)=0 with Shift -> Value(1)=log(1)=0.
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 1,
				Utility: utility.Log{Scale: 5, Shift: 0.0001}},
			{ID: 1, Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 1,
				Utility: utility.NewLog(5)},
		},
	}
	ix := model.NewIndex(p)
	consumers := make([]int, 2)
	// At r = 0.9999..., class 0's utility log(0.0001+1) ~ 1e-4 > 0 — use
	// a rate where it is negative: r such that Shift + r < 1, i.e. r=0.5.
	// Rate bounds say RateMin=1; craft rate slice directly (admitNode
	// trusts the caller's rates).
	admitNode(p, ix, 0, []float64{0.5}, []bool{true}, consumers, nil, nil, 0)
	if consumers[0] != 0 {
		t.Errorf("negative-utility class admitted %d consumers", consumers[0])
	}
	if consumers[1] == 0 {
		t.Error("positive-utility class not admitted")
	}
}

func TestAdmitZeroMaxConsumers(t *testing.T) {
	p, ix := admitProblem()
	p.Classes[0].MaxConsumers = 0
	consumers, res := admitAll(t, p, ix, []float64{10, 10})
	if consumers[0] != 0 {
		t.Errorf("class with nMax=0 got %d consumers", consumers[0])
	}
	// A class with nMax=0 can never be "unsatisfied" in the Equation 11
	// sense (n_j < n_j^max is unsatisfiable), so it must not set the BC.
	wantBC := p.Classes[2].Utility.Value(10) / 40
	if res.bestUnsatisfied > wantBC+1e-12 {
		t.Errorf("bestUnsatisfied = %g includes nMax=0 class", res.bestUnsatisfied)
	}
}
