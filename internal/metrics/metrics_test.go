package metrics

import (
	"math"
	"testing"
)

func TestConvergenceDetectorFlatSeries(t *testing.T) {
	d := NewConvergenceDetector(5, 0.001)
	for i := 0; i < 4; i++ {
		if d.Observe(100) {
			t.Fatalf("converged before a full window at observation %d", i+1)
		}
	}
	if !d.Observe(100) {
		t.Fatal("flat series did not converge at window fill")
	}
	if got := d.ConvergedAt(); got != 5 {
		t.Errorf("ConvergedAt = %d, want 5", got)
	}
}

func TestConvergenceDetectorOscillation(t *testing.T) {
	d := NewConvergenceDetector(4, 0.001)
	// +-1% oscillation around 100 never converges at a 0.1% threshold.
	vals := []float64{99, 101, 99, 101, 99, 101, 99, 101}
	for _, v := range vals {
		if d.Observe(v) {
			t.Fatal("oscillating series converged")
		}
	}
	if d.Converged() || d.ConvergedAt() != -1 {
		t.Errorf("Converged=%v ConvergedAt=%d, want false/-1", d.Converged(), d.ConvergedAt())
	}
}

func TestConvergenceDetectorSettles(t *testing.T) {
	d := NewConvergenceDetector(3, 0.01)
	series := []float64{10, 50, 90, 100, 100.1, 100.2, 100.1}
	var convergedAt int
	for _, v := range series {
		if d.Observe(v) && convergedAt == 0 {
			convergedAt = d.ConvergedAt()
		}
	}
	if convergedAt != 6 {
		t.Errorf("ConvergedAt = %d, want 6 (first window within 1%%)", convergedAt)
	}
}

func TestConvergenceDetectorStaysConverged(t *testing.T) {
	d := NewConvergenceDetector(2, 0.01)
	d.Observe(100)
	if !d.Observe(100) {
		t.Fatal("did not converge")
	}
	// A later spike does not un-converge (first detection is what the
	// paper reports).
	if !d.Observe(500) {
		t.Error("detector lost converged state")
	}
	if got := d.ConvergedAt(); got != 2 {
		t.Errorf("ConvergedAt = %d, want 2", got)
	}
}

func TestConvergenceDetectorReset(t *testing.T) {
	d := NewConvergenceDetector(2, 0.01)
	d.Observe(100)
	d.Observe(100)
	if !d.Converged() {
		t.Fatal("setup failed")
	}
	d.Reset()
	if d.Converged() || d.ConvergedAt() != -1 {
		t.Error("Reset did not clear state")
	}
	d.Observe(7)
	if d.Converged() {
		t.Error("converged with a single post-reset observation")
	}
}

func TestConvergenceDetectorDefaults(t *testing.T) {
	d := NewConvergenceDetector(0, 0)
	if d.window != DefaultWindow || d.threshold != DefaultRelAmplitude {
		t.Errorf("defaults: window=%d threshold=%g", d.window, d.threshold)
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Last() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty series stats not zero")
	}
	for _, v := range []float64{4, 1, 3, 2} {
		s.Append(v)
	}
	if s.Len() != 4 || s.At(0) != 4 || s.Last() != 2 {
		t.Errorf("Len/At/Last = %d/%g/%g", s.Len(), s.At(0), s.Last())
	}
	if s.Min() != 1 || s.Max() != 4 || s.Mean() != 2.5 {
		t.Errorf("Min/Max/Mean = %g/%g/%g", s.Min(), s.Max(), s.Mean())
	}
	if q := s.Quantile(0.5); q != 2 && q != 3 {
		t.Errorf("median = %g, want 2 or 3", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %g, want 1", q)
	}
	if q := s.Quantile(1); q != 4 {
		t.Errorf("q1 = %g, want 4", q)
	}
}

func TestSeriesValuesIsCopy(t *testing.T) {
	var s Series
	s.Append(1)
	v := s.Values()
	v[0] = 99
	if s.At(0) != 1 {
		t.Error("Values aliases internal storage")
	}
}

func TestTailAmplitude(t *testing.T) {
	var s Series
	for _, v := range []float64{100, 200, 100, 100, 100} {
		s.Append(v)
	}
	if got := s.TailAmplitude(3); got != 0 {
		t.Errorf("flat tail amplitude = %g, want 0", got)
	}
	if got := s.TailAmplitude(4); math.Abs(got-100.0/125) > 1e-12 {
		t.Errorf("tail-4 amplitude = %g, want 0.8", got)
	}
	if !math.IsInf(s.TailAmplitude(10), 1) {
		t.Error("short series amplitude not +Inf")
	}
	if !math.IsInf(s.TailAmplitude(0), 1) {
		t.Error("zero window amplitude not +Inf")
	}
}

func TestTailAmplitudeZeroMean(t *testing.T) {
	var s Series
	s.Append(-1)
	s.Append(1)
	if !math.IsInf(s.TailAmplitude(2), 1) {
		t.Error("zero-mean amplitude not +Inf")
	}
}

// TestSeriesSingleObservation: every statistic of a one-element series
// collapses to that element.
func TestSeriesSingleObservation(t *testing.T) {
	var s Series
	s.Append(7)
	if s.Min() != 7 || s.Max() != 7 || s.Mean() != 7 || s.Last() != 7 {
		t.Errorf("Min/Max/Mean/Last = %g/%g/%g/%g, want all 7",
			s.Min(), s.Max(), s.Mean(), s.Last())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("Quantile(%g) = %g, want 7", q, got)
		}
	}
	if !math.IsInf(s.TailAmplitude(2), 1) {
		t.Error("window larger than series should give +Inf amplitude")
	}
}

// TestSeriesEmptyQuantile: quantiles of an empty series are 0, matching
// the other empty-series statistics, for any q including out-of-range.
func TestSeriesEmptyQuantile(t *testing.T) {
	var s Series
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
}

// TestSeriesNaNAndInf: non-finite observations propagate rather than
// panic. NaN poisons min/max/mean (IEEE semantics through math.Min/Max);
// +Inf dominates Max and drives Mean and TailAmplitude to +Inf.
func TestSeriesNaNAndInf(t *testing.T) {
	var nan Series
	nan.Append(1)
	nan.Append(math.NaN())
	if !math.IsNaN(nan.Mean()) {
		t.Errorf("Mean with NaN = %g, want NaN", nan.Mean())
	}
	if !math.IsNaN(nan.Min()) || !math.IsNaN(nan.Max()) {
		t.Errorf("Min/Max with NaN = %g/%g, want NaN (math.Min/Max propagate)",
			nan.Min(), nan.Max())
	}

	var inf Series
	inf.Append(1)
	inf.Append(math.Inf(1))
	if !math.IsInf(inf.Max(), 1) || !math.IsInf(inf.Mean(), 1) {
		t.Errorf("Max/Mean with +Inf = %g/%g, want +Inf", inf.Max(), inf.Mean())
	}
	if inf.Min() != 1 {
		t.Errorf("Min with +Inf = %g, want 1", inf.Min())
	}
	// (hi-lo)/|mean| = Inf/Inf = NaN: a non-finite utility can never
	// satisfy `amplitude <= threshold`, so convergence correctly never
	// fires on such a series.
	if got := inf.TailAmplitude(2); !math.IsNaN(got) {
		t.Errorf("TailAmplitude with +Inf = %g, want NaN", got)
	}
}

// TestConvergenceDetectorResetAfterMutation models the recovery
// experiment: a converged run, a workload mutation that moves the
// equilibrium, a Reset, and re-detection at the new level with iteration
// numbering restarted from 1.
func TestConvergenceDetectorResetAfterMutation(t *testing.T) {
	d := NewConvergenceDetector(3, 0.01)
	for i := 0; i < 5; i++ {
		d.Observe(100)
	}
	if !d.Converged() || d.ConvergedAt() != 3 {
		t.Fatalf("setup: converged=%v at %d", d.Converged(), d.ConvergedAt())
	}

	// The mutation perturbs the series; without Reset the detector would
	// stay latched converged (Observe returns true regardless).
	if !d.Observe(500) {
		t.Error("latched detector released by a post-convergence spike")
	}

	d.Reset()
	if d.Converged() || d.ConvergedAt() != -1 {
		t.Fatal("Reset did not clear the verdict")
	}
	// Recovery transient at the new equilibrium: the detector must not
	// fire on the residual window and must renumber iterations from 1.
	for i, v := range []float64{500, 350, 200, 200, 201} {
		converged := d.Observe(v)
		if i < 4 && converged {
			t.Fatalf("converged during transient at post-reset iteration %d", i+1)
		}
	}
	if !d.Converged() {
		t.Fatal("did not re-detect convergence at the new level")
	}
	if got := d.ConvergedAt(); got != 5 {
		t.Errorf("post-reset ConvergedAt = %d, want 5 (numbering restarts)", got)
	}
}
