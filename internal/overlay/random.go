package overlay

import (
	"math"
	"math/rand"

	"repro/internal/model"
)

// RandomTopology generates a connected random overlay using a Waxman-like
// construction: nodes are placed uniformly in the unit square, a random
// spanning tree guarantees connectivity, and extra bidirectional links are
// added between pairs with probability alpha * exp(-distance/(beta*L))
// where L is the maximum possible distance. All links share one capacity.
// The generator is deterministic for a given rand source.
func RandomTopology(rng *rand.Rand, n int, alpha, beta, capacity float64) *Topology {
	if n < 1 {
		n = 1
	}
	if alpha <= 0 {
		alpha = 0.4
	}
	if beta <= 0 {
		beta = 0.3
	}
	if capacity <= 0 {
		capacity = 1e6
	}

	t := NewTopology(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}

	// Random spanning tree: connect each node (in shuffled order) to a
	// uniformly chosen earlier node.
	order := rng.Perm(n)
	for k := 1; k < n; k++ {
		a := order[k]
		b := order[rng.Intn(k)]
		// Construction guarantees valid distinct endpoints.
		_, _, _ = t.AddBidirectional(model.NodeID(a), model.NodeID(b), capacity)
	}

	// Waxman extras.
	maxDist := math.Sqrt2
	connected := make(map[[2]int]bool)
	for _, l := range t.Links() {
		connected[[2]int{int(l.From), int(l.To)}] = true
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if connected[[2]int{a, b}] {
				continue
			}
			p := alpha * math.Exp(-dist(a, b)/(beta*maxDist))
			if rng.Float64() < p {
				_, _, _ = t.AddBidirectional(model.NodeID(a), model.NodeID(b), capacity)
			}
		}
	}
	return t
}

// RandomTopologyHetero generates a connected random overlay sized for
// large-scale experiments: a random spanning tree guarantees connectivity
// and each node samples extraPerNode additional neighbors uniformly, so
// construction is O(n * extraPerNode) — unlike RandomTopology's O(n²)
// Waxman pair scan, this stays fast at 10k+ nodes. Link capacities are
// heterogeneous, drawn log-uniformly from [capMin, capMax] per
// bidirectional pair (both directions share one capacity), modeling the
// capacity-diverse substrates of the MON / node+link-constrained papers.
// Deterministic for a given rand source.
func RandomTopologyHetero(rng *rand.Rand, n, extraPerNode int, capMin, capMax float64) *Topology {
	if n < 1 {
		n = 1
	}
	if extraPerNode < 0 {
		extraPerNode = 0
	}
	if capMin <= 0 {
		capMin = 1e3
	}
	if capMax < capMin {
		capMax = capMin
	}

	t := NewTopology(n)
	logMin, logMax := math.Log(capMin), math.Log(capMax)
	drawCap := func() float64 {
		return math.Exp(logMin + rng.Float64()*(logMax-logMin))
	}

	// Random spanning tree, as in RandomTopology.
	order := rng.Perm(n)
	for k := 1; k < n; k++ {
		a := order[k]
		b := order[rng.Intn(k)]
		_, _, _ = t.AddBidirectional(model.NodeID(a), model.NodeID(b), drawCap())
	}

	// Per-node sampled extras; duplicates are skipped, not retried, so the
	// expected degree is slightly under 2*(1+extraPerNode).
	connected := make(map[[2]int]bool, n*(1+extraPerNode))
	for _, l := range t.Links() {
		a, b := int(l.From), int(l.To)
		if a > b {
			a, b = b, a
		}
		connected[[2]int{a, b}] = true
	}
	for a := 0; a < n; a++ {
		for k := 0; k < extraPerNode; k++ {
			b := rng.Intn(n)
			if b == a {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if connected[[2]int{lo, hi}] {
				continue
			}
			connected[[2]int{lo, hi}] = true
			_, _, _ = t.AddBidirectional(model.NodeID(a), model.NodeID(b), drawCap())
		}
	}
	return t
}
