package model

import (
	"math/rand"
	"testing"

	"repro/internal/utility"
)

// randomIndexProblem builds a random valid problem with links, exercising
// every dense view the index precomputes.
func randomIndexProblem(rng *rand.Rand) *Problem {
	nFlows := 2 + rng.Intn(5)
	nNodes := 2 + rng.Intn(5)
	p := &Problem{
		Name:  "index-test",
		Flows: make([]Flow, nFlows),
		Nodes: make([]Node, nNodes),
	}
	for b := range p.Nodes {
		p.Nodes[b] = Node{ID: NodeID(b), Capacity: 1e5, FlowCost: map[FlowID]float64{}}
	}
	for i := range p.Flows {
		p.Flows[i] = Flow{ID: FlowID(i), RateMin: 1, RateMax: 100}
		// Reach a random nonempty node subset.
		for b := range p.Nodes {
			if rng.Intn(2) == 0 {
				p.Nodes[b].FlowCost[FlowID(i)] = 1 + rng.Float64()
			}
		}
		src := NodeID(rng.Intn(nNodes))
		p.Nodes[src].FlowCost[FlowID(i)] = 1 + rng.Float64()
		p.Flows[i].Source = src
		// Classes at the nodes the flow reaches.
		for b := range p.Nodes {
			if _, ok := p.Nodes[b].FlowCost[FlowID(i)]; !ok {
				continue
			}
			for k := 0; k < 1+rng.Intn(2); k++ {
				p.Classes = append(p.Classes, Class{
					ID:              ClassID(len(p.Classes)),
					Flow:            FlowID(i),
					Node:            NodeID(b),
					MaxConsumers:    1 + rng.Intn(50),
					CostPerConsumer: 1 + rng.Float64(),
					Utility:         utility.NewLog(1 + rng.Float64()*10),
				})
			}
		}
	}
	for l := 0; l < nFlows; l++ {
		from := NodeID(rng.Intn(nNodes))
		to := (from + 1) % NodeID(nNodes)
		costs := map[FlowID]float64{}
		for i := range p.Flows {
			if rng.Intn(2) == 0 {
				costs[FlowID(i)] = 1 + rng.Float64()
			}
		}
		if len(costs) == 0 {
			costs[FlowID(rng.Intn(nFlows))] = 1
		}
		p.Links = append(p.Links, Link{
			ID: LinkID(l), From: from, To: to, Capacity: 1e4, FlowCost: costs,
		})
	}
	return p
}

// TestIndexDenseViewsMatchMaps checks every dense cost view against the
// sparse maps it denormalizes, and the per-(flow, node) class lists
// against a direct filter of ClassesByNode.
func TestIndexDenseViewsMatchMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		p := randomIndexProblem(rng)
		if err := Validate(p); err != nil {
			t.Fatalf("trial %d: generated invalid problem: %v", trial, err)
		}
		ix := NewIndex(p)

		for b := range p.Nodes {
			bid := NodeID(b)
			flows, costs := ix.FlowsByNode(bid), ix.FlowCostsByNode(bid)
			if len(flows) != len(costs) {
				t.Fatalf("node %d: %d flows vs %d costs", b, len(flows), len(costs))
			}
			for k, i := range flows {
				if want := p.Nodes[b].FlowCost[i]; costs[k] != want {
					t.Errorf("node %d flow %d: cost %g, want %g", b, i, costs[k], want)
				}
			}
		}
		for l := range p.Links {
			lid := LinkID(l)
			flows, costs := ix.FlowsByLink(lid), ix.FlowCostsByLink(lid)
			if len(flows) != len(costs) {
				t.Fatalf("link %d: %d flows vs %d costs", l, len(flows), len(costs))
			}
			for k, i := range flows {
				if want := p.Links[l].FlowCost[i]; costs[k] != want {
					t.Errorf("link %d flow %d: cost %g, want %g", l, i, costs[k], want)
				}
			}
		}
		for i := range p.Flows {
			fid := FlowID(i)
			nodes, ncosts := ix.NodesByFlow(fid), ix.NodeCostsByFlow(fid)
			classes := ix.ClassesByFlowNode(fid)
			if len(nodes) != len(ncosts) || len(nodes) != len(classes) {
				t.Fatalf("flow %d: misaligned node views %d/%d/%d",
					i, len(nodes), len(ncosts), len(classes))
			}
			for k, b := range nodes {
				if want := p.Nodes[b].FlowCost[fid]; ncosts[k] != want {
					t.Errorf("flow %d node %d: cost %g, want %g", i, b, ncosts[k], want)
				}
				var want []ClassID
				for _, cid := range ix.ClassesByNode(b) {
					if p.Classes[cid].Flow == fid {
						want = append(want, cid)
					}
				}
				got := classes[k]
				if len(got) != len(want) {
					t.Fatalf("flow %d node %d: classes %v, want %v", i, b, got, want)
				}
				for x := range want {
					if got[x] != want[x] {
						t.Errorf("flow %d node %d: classes %v, want %v", i, b, got, want)
					}
				}
			}
			links, lcosts := ix.LinksByFlow(fid), ix.LinkCostsByFlow(fid)
			if len(links) != len(lcosts) {
				t.Fatalf("flow %d: %d links vs %d costs", i, len(links), len(lcosts))
			}
			for k, l := range links {
				if want := p.Links[l].FlowCost[fid]; lcosts[k] != want {
					t.Errorf("flow %d link %d: cost %g, want %g", i, l, lcosts[k], want)
				}
			}
		}
	}
}
