// Package workload constructs the test workloads of Section 4 of the LRGP
// paper, plus randomized and link-constrained variants used by this
// repository's extended tests.
//
// The base workload (Table 1) has six flows (0..5) and three consumer
// nodes S0, S1, S2. Twenty consumer classes come in pairs: both classes of
// a pair share a flow, an n^max and a rank, and differ only in their
// attachment node. The resource model is uniform: F_{b,i} = 3,
// G_{b,j} = 19, c_b = 9*10^5 (values measured on the Gryphon
// publish/subscribe system), r^min = 10 and r^max = 1000 for every flow.
// Class utility is rank_j * f(r_i) where f is one of log(1+r), r^0.25,
// r^0.5, r^0.75.
package workload

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/utility"
)

// Paper resource-model constants (Section 4.1).
const (
	// FlowNodeCost is F_{b,i}: node resource per unit rate per flow.
	FlowNodeCost = 3
	// ConsumerCost is G_{b,j}: node resource per consumer per unit rate.
	ConsumerCost = 19
	// NodeCapacity is c_b.
	NodeCapacity = 9e5
	// RateMin and RateMax bound every flow's rate.
	RateMin = 10
	RateMax = 1000
)

// Shape selects the per-class utility family f in rank * f(r).
type Shape int

// Utility shapes evaluated in the paper (Section 4.5).
const (
	// ShapeLog is f(r) = log(1+r).
	ShapeLog Shape = iota + 1
	// ShapePow25 is f(r) = r^0.25.
	ShapePow25
	// ShapePow50 is f(r) = r^0.5.
	ShapePow50
	// ShapePow75 is f(r) = r^0.75.
	ShapePow75
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeLog:
		return "log(1+r)"
	case ShapePow25:
		return "r^0.25"
	case ShapePow50:
		return "r^0.5"
	case ShapePow75:
		return "r^0.75"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Utility returns rank * f(r) for this shape.
func (s Shape) Utility(rank float64) utility.Function {
	switch s {
	case ShapePow25:
		return utility.NewPower(rank, 0.25)
	case ShapePow50:
		return utility.NewPower(rank, 0.5)
	case ShapePow75:
		return utility.NewPower(rank, 0.75)
	default:
		return utility.NewLog(rank)
	}
}

// classSpec is one row of Table 1: a pair of identical classes attached at
// two of the three consumer nodes.
type classSpec struct {
	flow  int
	nodes [2]int // indices into the 3-node set {S0, S1, S2}
	nMax  int
	rank  float64
}

// table1 is the base workload parameterization (Table 1 of the paper).
var table1 = []classSpec{
	{flow: 0, nodes: [2]int{0, 2}, nMax: 400, rank: 20},
	{flow: 0, nodes: [2]int{0, 2}, nMax: 800, rank: 5},
	{flow: 0, nodes: [2]int{0, 2}, nMax: 2000, rank: 1},
	{flow: 1, nodes: [2]int{0, 1}, nMax: 1000, rank: 15},
	{flow: 2, nodes: [2]int{1, 2}, nMax: 1500, rank: 10},
	{flow: 3, nodes: [2]int{0, 2}, nMax: 400, rank: 30},
	{flow: 3, nodes: [2]int{0, 2}, nMax: 800, rank: 3},
	{flow: 3, nodes: [2]int{0, 2}, nMax: 2000, rank: 2},
	{flow: 4, nodes: [2]int{0, 1}, nMax: 1000, rank: 40},
	{flow: 5, nodes: [2]int{1, 2}, nMax: 1500, rank: 100},
}

// baseFlowCount is the number of flows in Table 1.
const baseFlowCount = 6

// Base returns the paper's base workload: 6 flows, 3 consumer nodes, 20
// classes, logarithmic utilities.
func Base() *model.Problem {
	return Scaled(Config{Shape: ShapeLog})
}

// Config parameterizes Scaled. The zero value is normalized to the base
// workload with logarithmic utilities.
type Config struct {
	// Shape selects the utility family (default ShapeLog).
	Shape Shape
	// FlowCopies replicates the whole 6-flow workload; copy k's classes
	// attach to copy k's own consumer-node sets ("the system accommodates
	// new information flows", Section 4.3). Default 1.
	FlowCopies int
	// NodeSetCopies replicates the 3-node consumer set for each flow
	// copy; the same flows reach every replica ("the same amount of
	// information propagates to more consumers"). Default 1.
	NodeSetCopies int
}

func (c Config) normalized() Config {
	if c.Shape == 0 {
		c.Shape = ShapeLog
	}
	if c.FlowCopies <= 0 {
		c.FlowCopies = 1
	}
	if c.NodeSetCopies <= 0 {
		c.NodeSetCopies = 1
	}
	return c
}

// Scaled builds a scaled variant of the base workload per Section 4.3.
// With FlowCopies=1, NodeSetCopies=1 it returns the base workload. The
// resulting problem always validates.
func Scaled(cfg Config) *model.Problem {
	c := cfg.normalized()

	nFlows := baseFlowCount * c.FlowCopies
	nNodes := 3 * c.FlowCopies * c.NodeSetCopies
	p := &model.Problem{
		Name:    fmt.Sprintf("%df-%dn-%s", nFlows, nNodes, c.Shape),
		Flows:   make([]model.Flow, 0, nFlows),
		Classes: make([]model.Class, 0, 2*len(table1)*c.FlowCopies*c.NodeSetCopies),
		Nodes:   make([]model.Node, 0, nNodes),
	}

	// Node sets are laid out copy-major: flow copy fc owns node sets
	// [fc*NodeSetCopies, (fc+1)*NodeSetCopies), each of 3 nodes.
	nodeID := func(fc, set, local int) model.NodeID {
		return model.NodeID((fc*c.NodeSetCopies+set)*3 + local)
	}
	for b := 0; b < nNodes; b++ {
		p.Nodes = append(p.Nodes, model.Node{
			ID:       model.NodeID(b),
			Name:     fmt.Sprintf("S%d", b),
			Capacity: NodeCapacity,
			FlowCost: make(map[model.FlowID]float64),
		})
	}

	for fc := 0; fc < c.FlowCopies; fc++ {
		for f := 0; f < baseFlowCount; f++ {
			fid := model.FlowID(fc*baseFlowCount + f)
			p.Flows = append(p.Flows, model.Flow{
				ID:      fid,
				Name:    fmt.Sprintf("flow%d", fid),
				RateMin: RateMin,
				RateMax: RateMax,
			})
		}
		for _, spec := range table1 {
			fid := model.FlowID(fc*baseFlowCount + spec.flow)
			for set := 0; set < c.NodeSetCopies; set++ {
				for _, local := range spec.nodes {
					b := nodeID(fc, set, local)
					p.Classes = append(p.Classes, model.Class{
						ID:              model.ClassID(len(p.Classes)),
						Name:            fmt.Sprintf("c%d", len(p.Classes)),
						Flow:            fid,
						Node:            b,
						MaxConsumers:    spec.nMax,
						CostPerConsumer: ConsumerCost,
						Utility:         c.Shape.Utility(spec.rank),
					})
					p.Nodes[b].FlowCost[fid] = FlowNodeCost
				}
			}
		}
	}

	// Each flow's source is the lowest-numbered node it reaches ("a
	// producer publishes on one flow; all producers of a flow connect to
	// the same node"). With no link bottlenecks the exact choice does not
	// affect the optimization.
	for i := range p.Flows {
		src := model.NodeID(-1)
		for b := range p.Nodes {
			if _, ok := p.Nodes[b].FlowCost[model.FlowID(i)]; ok {
				src = model.NodeID(b)
				break
			}
		}
		p.Flows[i].Source = src
	}
	return p
}

// Table2Workloads returns the six workloads of Table 2 in paper order:
// 6f/3n, 12f/6n, 24f/12n, 6f/6n, 6f/12n, 6f/24n, all with log utilities.
func Table2Workloads() []*model.Problem {
	configs := []Config{
		{},
		{FlowCopies: 2},
		{FlowCopies: 4},
		{NodeSetCopies: 2},
		{NodeSetCopies: 4},
		{NodeSetCopies: 8},
	}
	out := make([]*model.Problem, len(configs))
	for i, c := range configs {
		out[i] = Scaled(c)
	}
	return out
}

// Table3Shapes returns the utility shapes of Table 3 in paper order.
func Table3Shapes() []Shape {
	return []Shape{ShapeLog, ShapePow25, ShapePow50, ShapePow75}
}
