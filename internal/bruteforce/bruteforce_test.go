package bruteforce

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
	"repro/internal/workload"
)

func TestSolveTinyFeasibleAndStable(t *testing.T) {
	p := workload.Tiny()
	res, err := Solve(p, 15)
	if err != nil {
		t.Fatal(err)
	}
	ix := model.NewIndex(p)
	if err := model.CheckFeasible(p, ix, res.Best, 1e-9); err != nil {
		t.Errorf("optimum infeasible: %v", err)
	}
	if got := model.TotalUtility(p, res.Best); math.Abs(got-res.Utility) > 1e-9 {
		t.Errorf("utility mismatch: %g vs %g", res.Utility, got)
	}
	// A finer grid can only improve (grid is nested only for some sizes,
	// so allow equality plus tiny refinement gains).
	fine, err := Solve(p, 29)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Utility < res.Utility-1e-9 {
		t.Errorf("finer grid got worse: %g < %g", fine.Utility, res.Utility)
	}
}

func TestSolveSingleKnapsackExact(t *testing.T) {
	// One flow, one node, one rate (min == max): pure integer packing
	// with a hand-computable answer.
	p := &model.Problem{
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: 10, RateMax: 10}},
		Nodes: []model.Node{{ID: 0, Capacity: 130, FlowCost: map[model.FlowID]float64{0: 1}}},
		Classes: []model.Class{
			// Unit cost 2*10 = 20; U = 100*log(11) ~ 239.8 each.
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 3, CostPerConsumer: 2, Utility: utility.NewLog(100)},
			// Unit cost 4*10 = 40; U = 10*log(11) ~ 24 each.
			{ID: 1, Flow: 0, Node: 0, MaxConsumers: 3, CostPerConsumer: 4, Utility: utility.NewLog(10)},
		},
	}
	res, err := Solve(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Budget = 130 - 10 = 120. Take all 3 of class 0 (60), then 1 of
	// class 1 (40): utility = 3*239.8 + 24 = 743.5. Check populations.
	if res.Best.Consumers[0] != 3 || res.Best.Consumers[1] != 1 {
		t.Errorf("consumers = %v, want [3 1]", res.Best.Consumers)
	}
	want := 3*p.Classes[0].Utility.Value(10) + 1*p.Classes[1].Utility.Value(10)
	if math.Abs(res.Utility-want) > 1e-9 {
		t.Errorf("utility = %g, want %g", res.Utility, want)
	}
}

func TestSolveRejectsLargeInstances(t *testing.T) {
	if _, err := Solve(workload.Base(), 10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("error = %v, want ErrTooLarge", err)
	}
}

func TestSolveValidates(t *testing.T) {
	p := workload.Tiny()
	p.Classes[0].CostPerConsumer = 0
	if _, err := Solve(p, 5); err == nil {
		t.Error("accepted invalid problem")
	}
}

func TestRateGrid(t *testing.T) {
	g := rateGrid(10, 20, 3)
	want := []float64{10, 15, 20}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("grid = %v, want %v", g, want)
		}
	}
	if g := rateGrid(5, 5, 7); len(g) != 1 || g[0] != 5 {
		t.Errorf("degenerate grid = %v", g)
	}
	if g := rateGrid(1, 9, 1); len(g) != 1 || g[0] != 1 {
		t.Errorf("single-step grid = %v", g)
	}
}

// TestLRGPNearOptimal cross-checks LRGP against the exhaustive optimum on
// the tiny instance: the heuristic must land within 10% of ground truth.
func TestLRGPNearOptimal(t *testing.T) {
	p := workload.Tiny()
	truth, err := Solve(p, 41)
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Solve(500)
	if got.Utility < 0.9*truth.Utility {
		t.Errorf("LRGP = %g, brute force = %g (below 90%%)", got.Utility, truth.Utility)
	}
	// LRGP works on continuous rates and may edge past the rate-grid
	// optimum, but never beyond the grid's discretization error.
	if got.Utility > truth.Utility*1.02 {
		t.Errorf("LRGP = %g exceeds exhaustive optimum %g by >2%%: ground truth broken", got.Utility, truth.Utility)
	}
}

// TestLRGPNearOptimalRandomTiny sweeps randomized small instances: LRGP
// must stay within 15% of the exhaustive optimum and never exceed it by
// more than the rate grid's discretization error.
//
// Populations are kept in the tens: with single-digit n^max the greedy
// admission's integer granularity costs LRGP up to ~25% against the
// optimum (a real limitation — the paper's workloads use populations in
// the hundreds to thousands, where the granularity loss vanishes; see
// EXPERIMENTS.md).
func TestLRGPNearOptimalRandomTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		p := &model.Problem{
			Name: "tiny-random",
			Flows: []model.Flow{
				{ID: 0, Source: 0, RateMin: 1, RateMax: 50 + rng.Float64()*100},
				{ID: 1, Source: 1, RateMin: 1, RateMax: 50 + rng.Float64()*100},
			},
			Nodes: []model.Node{
				{ID: 0, Capacity: 2000 + rng.Float64()*4000,
					FlowCost: map[model.FlowID]float64{0: 1 + rng.Float64()*4, 1: 1 + rng.Float64()*4}},
				{ID: 1, Capacity: 2000 + rng.Float64()*4000,
					FlowCost: map[model.FlowID]float64{0: 1 + rng.Float64()*4, 1: 1 + rng.Float64()*4}},
			},
		}
		for j := 0; j < 4; j++ {
			p.Classes = append(p.Classes, model.Class{
				ID: model.ClassID(j), Flow: model.FlowID(j % 2), Node: model.NodeID(j / 2),
				MaxConsumers:    10 + rng.Intn(30),
				CostPerConsumer: 5 + rng.Float64()*30,
				Utility:         utility.NewLog(1 + rng.Float64()*60),
			})
		}
		if err := model.Validate(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		truth, err := Solve(p, 81)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		e, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := e.Solve(600)
		if got.Utility < 0.85*truth.Utility {
			t.Errorf("trial %d: LRGP %.1f below 85%% of optimum %.1f", trial, got.Utility, truth.Utility)
		}
		if got.Utility > truth.Utility*1.03 {
			t.Errorf("trial %d: LRGP %.1f above grid optimum %.1f by >3%%", trial, got.Utility, truth.Utility)
		}
	}
}

// TestAnnealNearOptimal cross-checks simulated annealing against the
// exhaustive optimum on the tiny instance.
func TestAnnealNearOptimal(t *testing.T) {
	p := workload.Tiny()
	truth, err := Solve(p, 41)
	if err != nil {
		t.Fatal(err)
	}
	sa, _, err := anneal.SolveBestOf(p, anneal.Config{MaxSteps: 200_000, Seed: 4, RateStep: 0.3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa.BestUtility < 0.95*truth.Utility {
		t.Errorf("SA = %g, brute force = %g (below 95%%)", sa.BestUtility, truth.Utility)
	}
	// SA works on continuous rates, so it may edge past the grid optimum,
	// but never by more than the grid's discretization error.
	if sa.BestUtility > truth.Utility*1.02 {
		t.Errorf("SA = %g exceeds exhaustive optimum %g by >2%% (grid too coarse or SA bug)",
			sa.BestUtility, truth.Utility)
	}
}
