package core

import (
	"math"
	"testing"
)

func TestNodePriceDampensTowardBC(t *testing.T) {
	// Underloaded: p <- p + gamma1*(BC - p).
	got := nodePriceUpdate(1.0, 2.0, 500, 1000, 0.1, 0.5)
	if math.Abs(got-1.1) > 1e-12 {
		t.Errorf("price = %g, want 1.1", got)
	}
	// Moves down when BC < p.
	got = nodePriceUpdate(1.0, 0.0, 500, 1000, 0.1, 0.5)
	if math.Abs(got-0.9) > 1e-12 {
		t.Errorf("price = %g, want 0.9", got)
	}
}

func TestNodePriceOverloadBranch(t *testing.T) {
	// Overloaded: p <- p + gamma2*(used - capacity).
	got := nodePriceUpdate(1.0, 99.0, 1500, 1000, 0.1, 0.01)
	if math.Abs(got-6.0) > 1e-12 {
		t.Errorf("price = %g, want 6 (1 + 0.01*500)", got)
	}
}

func TestNodePriceExactCapacityUsesBCBranch(t *testing.T) {
	// used == capacity takes the first branch per Equation 12.
	got := nodePriceUpdate(2.0, 4.0, 1000, 1000, 0.5, 99)
	if math.Abs(got-3.0) > 1e-12 {
		t.Errorf("price = %g, want 3", got)
	}
}

func TestNodePriceNonNegative(t *testing.T) {
	// gamma1 > 1 could overshoot below zero; projection clamps.
	got := nodePriceUpdate(1.0, 0.0, 500, 1000, 1.5, 1)
	if got != 0 {
		t.Errorf("price = %g, want 0", got)
	}
}

func TestLinkPriceGradientProjection(t *testing.T) {
	// Overloaded link: price rises.
	got := linkPriceUpdate(1.0, 600, 500, 0.01)
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("price = %g, want 2", got)
	}
	// Underloaded link: price falls.
	got = linkPriceUpdate(1.0, 400, 500, 0.005)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("price = %g, want 0.5", got)
	}
	// Projection at zero.
	got = linkPriceUpdate(0.1, 100, 500, 0.01)
	if got != 0 {
		t.Errorf("price = %g, want 0", got)
	}
}

func TestGammaControllerIncreasesWhenQuiet(t *testing.T) {
	g := newGammaController(Config{
		GammaInit: 0.05, GammaMin: 0.001, GammaMax: 0.1, GammaStep: 0.001,
	}.normalized())
	// Deltas with a constant sign: gamma grows additively.
	got := g.observe(0.1, 1)
	if math.Abs(got-0.051) > 1e-12 {
		t.Errorf("gamma = %g, want 0.051", got)
	}
	got = g.observe(0.2, 1)
	if math.Abs(got-0.052) > 1e-12 {
		t.Errorf("gamma = %g, want 0.052", got)
	}
}

func TestGammaControllerHalvesOnFluctuation(t *testing.T) {
	g := newGammaController(Config{
		GammaInit: 0.08, GammaMin: 0.001, GammaMax: 0.1, GammaStep: 0.001,
	}.normalized())
	g.observe(0.1, 1)  // 0.081
	g.observe(-0.1, 1) // sign flip: halve to 0.0405
	if math.Abs(g.gamma-0.0405) > 1e-12 {
		t.Errorf("gamma = %g, want 0.0405", g.gamma)
	}
}

func TestGammaControllerClamps(t *testing.T) {
	g := newGammaController(Config{
		GammaInit: 0.1, GammaMin: 0.001, GammaMax: 0.1, GammaStep: 0.001,
	}.normalized())
	// Quiet forever: stays at max.
	for i := 0; i < 10; i++ {
		g.observe(0.1, 1)
	}
	if g.gamma != 0.1 {
		t.Errorf("gamma = %g, want clamped at 0.1", g.gamma)
	}
	// Oscillate forever: floors at min.
	sign := 1.0
	for i := 0; i < 30; i++ {
		g.observe(sign, 1)
		sign = -sign
	}
	if g.gamma != 0.001 {
		t.Errorf("gamma = %g, want clamped at 0.001", g.gamma)
	}
}

func TestGammaControllerZeroDeltaKeepsSign(t *testing.T) {
	g := newGammaController(Config{
		GammaInit: 0.05, GammaMin: 0.001, GammaMax: 0.1, GammaStep: 0.001,
	}.normalized())
	g.observe(0.1, 1)
	g.observe(0, 1) // no movement: not a fluctuation, prev sign retained
	if math.Abs(g.gamma-0.052) > 1e-12 {
		t.Errorf("gamma = %g, want 0.052", g.gamma)
	}
	// A negative delta now still counts as a flip against the stored +0.1.
	g.observe(-0.1, 1)
	if math.Abs(g.gamma-0.026) > 1e-12 {
		t.Errorf("gamma = %g, want 0.026", g.gamma)
	}
}

func TestGammaControllerDeadband(t *testing.T) {
	g := newGammaController(Config{
		GammaInit: 0.05, GammaMin: 0.001, GammaMax: 0.1,
		GammaStep: 0.001, GammaDeadband: 0.01,
	}.normalized())
	g.observe(0.1, 1) // significant, stores +0.1
	// Hair-width jitter around a price of 1: |delta| = 0.001 < 1% of 1,
	// so sign flips do NOT halve gamma and do not overwrite the stored
	// direction.
	g.observe(-0.001, 1)
	g.observe(0.001, 1)
	if math.Abs(g.gamma-0.053) > 1e-12 {
		t.Errorf("gamma = %g, want 0.053 (jitter ignored)", g.gamma)
	}
	// A significant flip still halves.
	g.observe(-0.1, 1)
	if math.Abs(g.gamma-0.0265) > 1e-12 {
		t.Errorf("gamma = %g, want 0.0265", g.gamma)
	}
}

func TestGammaControllerSurge(t *testing.T) {
	g := newGammaController(Config{
		GammaInit: 0.004, GammaMin: 0.001, GammaMax: 0.1,
		GammaStep: 0.001, GammaDeadband: 0.01, GammaSurge: 0.3,
	}.normalized())
	// Price far from target (e.g. after a flow departure): the gap
	// dominates the price level and keeps one sign. The multiplicative
	// ramp engages only after surgeRuns consecutive same-signed
	// observations, so oscillation cannot re-trigger it.
	for i := 0; i < surgeRuns+1; i++ {
		g.observe(1.0, 0.1) // s ~ 0.91 > surge
	}
	// surgeRuns+1 observations: additive growth until the run is
	// established, then one doubling.
	want := 2 * (0.004 + float64(surgeRuns)*0.001)
	if math.Abs(g.gamma-want) > 1e-12 {
		t.Errorf("gamma = %g, want %g after ramp engages", g.gamma, want)
	}
	g.observe(0.8, 0.3)
	if math.Abs(g.gamma-2*want) > 1e-12 {
		t.Errorf("gamma = %g, want %g (ramp continues)", g.gamma, 2*want)
	}
	// A flip resets the run and halves.
	g.observe(-0.8, 0.3)
	if math.Abs(g.gamma-want) > 1e-12 {
		t.Errorf("gamma = %g, want halved to %g", g.gamma, want)
	}
	g.observe(-0.8, 0.3) // same sign again, run = 1 < surgeRuns: additive
	if math.Abs(g.gamma-(want+0.001)) > 1e-12 {
		t.Errorf("gamma = %g, want additive %g", g.gamma, want+0.001)
	}
}

func TestPriceGap(t *testing.T) {
	// Within capacity: gap pulls toward BC.
	if got := priceGap(0.5, 0.8, 100, 200); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("gap = %g, want 0.3", got)
	}
	if got := priceGap(0.8, 0.5, 200, 200); math.Abs(got+0.3) > 1e-12 {
		t.Errorf("gap = %g, want -0.3 (exact capacity uses BC branch)", got)
	}
	// Overload: gap is the excess.
	if got := priceGap(0.5, 9.9, 250, 200); got != 50 {
		t.Errorf("gap = %g, want 50", got)
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.normalized()
	if c.Gamma1 != DefaultGamma || c.Gamma2 != DefaultGamma {
		t.Errorf("gammas = %g/%g", c.Gamma1, c.Gamma2)
	}
	if c.GammaMin != DefaultGammaMin || c.GammaMax != DefaultGammaMax {
		t.Errorf("gamma bounds = %g/%g", c.GammaMin, c.GammaMax)
	}
	if c.GammaInit != DefaultGammaMax {
		t.Errorf("gamma init = %g, want %g", c.GammaInit, float64(DefaultGammaMax))
	}
	if c.GammaStep != DefaultGammaStep || c.LinkGamma != DefaultLinkGamma {
		t.Errorf("step/link = %g/%g", c.GammaStep, c.LinkGamma)
	}
	c = Config{Gamma1: 0.3}.normalized()
	if c.Gamma2 != 0.3 {
		t.Errorf("Gamma2 = %g, want to follow Gamma1", c.Gamma2)
	}
	// An inverted clamp collapses to the lower bound.
	c = Config{GammaMin: 0.5, GammaMax: 0.2}.normalized()
	if c.GammaMax != 0.5 {
		t.Errorf("inverted clamp: max = %g, want 0.5", c.GammaMax)
	}
}
