package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Wire selects the frame encoding an endpoint writes. Both formats can be
// decoded by every receiver (frames are self-describing), so endpoints
// with different wire settings interoperate; the setting only controls
// what an endpoint emits.
type Wire uint8

// Wire formats.
const (
	// WireJSON writes JSON message bodies (the original format, kept as
	// the compatibility and debug mode: frames are human-readable).
	WireJSON Wire = iota
	// WireBinary writes compact varint-framed binary bodies: no
	// per-message JSON marshal, ~4-6x smaller frames, and an
	// allocation-free append-style encode path.
	WireBinary
)

// String implements fmt.Stringer.
func (w Wire) String() string {
	switch w {
	case WireBinary:
		return "binary"
	default:
		return "json"
	}
}

// ParseWire parses "json" or "binary".
func ParseWire(s string) (Wire, error) {
	switch s {
	case "json", "":
		return WireJSON, nil
	case "binary":
		return WireBinary, nil
	}
	return WireJSON, fmt.Errorf("transport: unknown wire format %q (want json or binary)", s)
}

// WireSelector is implemented by endpoints whose outbound wire format can
// be chosen. Call SetWire before the endpoint carries traffic.
type WireSelector interface {
	SetWire(Wire)
}

// binaryTag is the first byte of a binary-encoded message body. JSON
// bodies start with '{' (and JSON batch payloads with '['), so a receiver
// distinguishes the formats from the first byte alone.
const binaryTag = 'B'

// ErrCorruptFrame reports a binary body that could not be decoded.
var ErrCorruptFrame = errors.New("transport: corrupt frame")

// AppendMessage appends the binary wire encoding of msg to dst and
// returns the extended slice. The encoding is:
//
//	'B' | str(From) | str(To) | str(Kind) | bytes(Payload)
//
// where str and bytes are uvarint-length-prefixed byte strings. The
// encode path performs no allocations beyond growing dst.
func AppendMessage(dst []byte, msg *Message) []byte {
	dst = append(dst, binaryTag)
	dst = appendLenBytes(dst, msg.From)
	dst = appendLenBytes(dst, msg.To)
	dst = appendLenBytes(dst, msg.Kind)
	dst = binary.AppendUvarint(dst, uint64(len(msg.Payload)))
	return append(dst, msg.Payload...)
}

// BinarySize returns the encoded size of msg under AppendMessage, for
// exact-capacity buffer sizing.
func BinarySize(msg *Message) int {
	return 1 +
		uvarintLen(uint64(len(msg.From))) + len(msg.From) +
		uvarintLen(uint64(len(msg.To))) + len(msg.To) +
		uvarintLen(uint64(len(msg.Kind))) + len(msg.Kind) +
		uvarintLen(uint64(len(msg.Payload))) + len(msg.Payload)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendLenBytes(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeMessage decodes one binary message from the front of data and
// returns it along with the number of bytes consumed, so callers can
// iterate over concatenated messages (batch payloads). The returned
// message's strings and payload are copies: they do not alias data.
// Truncated or corrupt input returns ErrCorruptFrame-wrapped errors and
// never panics or reads past len(data).
func DecodeMessage(data []byte) (Message, int, error) {
	var msg Message
	c := Cursor{Data: data}
	if tag := c.Byte(); tag != binaryTag {
		return Message{}, 0, fmt.Errorf("%w: bad tag 0x%02x", ErrCorruptFrame, tag)
	}
	msg.From = c.String()
	msg.To = c.String()
	msg.Kind = c.String()
	if payload := c.Bytes(); len(payload) > 0 {
		msg.Payload = append([]byte(nil), payload...)
	}
	if err := c.Err(); err != nil {
		return Message{}, 0, err
	}
	return msg, c.Off, nil
}

// Cursor is a bounds-checked reader over a binary-encoded buffer. All
// reads return zero values once an error has occurred; check Err after a
// decode sequence. It never reads past len(Data).
type Cursor struct {
	Data []byte
	Off  int
	err  error
}

// Err returns the first decode error, if any.
func (c *Cursor) Err() error { return c.err }

// Rest returns the number of unread bytes.
func (c *Cursor) Rest() int { return len(c.Data) - c.Off }

func (c *Cursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", ErrCorruptFrame, fmt.Sprintf(format, args...))
	}
}

// Byte reads one byte.
func (c *Cursor) Byte() byte {
	if c.err != nil {
		return 0
	}
	if c.Off >= len(c.Data) {
		c.fail("truncated at byte %d", c.Off)
		return 0
	}
	b := c.Data[c.Off]
	c.Off++
	return b
}

// Uvarint reads an unsigned varint.
func (c *Cursor) Uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.Data[c.Off:])
	if n <= 0 {
		c.fail("bad uvarint at byte %d", c.Off)
		return 0
	}
	c.Off += n
	return v
}

// Int reads a uvarint and checks it fits a non-negative int.
func (c *Cursor) Int() int {
	v := c.Uvarint()
	if v > math.MaxInt32 {
		c.fail("int out of range: %d", v)
		return 0
	}
	return int(v)
}

// Float64 reads a fixed 8-byte little-endian float.
func (c *Cursor) Float64() float64 {
	if c.err != nil {
		return 0
	}
	if c.Rest() < 8 {
		c.fail("truncated float at byte %d", c.Off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.Data[c.Off:]))
	c.Off += 8
	return v
}

// Bytes reads a uvarint-length-prefixed byte string. The returned slice
// aliases the cursor's buffer; copy it if it must outlive Data. The
// length is validated against the remaining bytes before use, so a
// corrupt length can neither over-read nor trigger a huge allocation.
func (c *Cursor) Bytes() []byte {
	n := c.Uvarint()
	if c.err != nil {
		return nil
	}
	if n > uint64(c.Rest()) {
		c.fail("length %d exceeds %d remaining bytes", n, c.Rest())
		return nil
	}
	b := c.Data[c.Off : c.Off+int(n)]
	c.Off += int(n)
	return b
}

// String reads a uvarint-length-prefixed string (copied, does not alias).
func (c *Cursor) String() string {
	return string(c.Bytes())
}

// AppendFloat64 appends v as fixed 8-byte little-endian bits.
func AppendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
