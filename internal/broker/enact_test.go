package broker

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// routesShareBacking reports whether two per-flow route slices are the
// same published slice (same backing array), the incremental path's
// sharing contract for clean flows.
func routesShareBacking(a, b []classRoute) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return &a[0] == &b[0]
}

// enactedBroker builds a broker over `flows` flows (one class per flow)
// with `consumers` admitted consumers each, returning the broker and the
// enacted allocation.
func enactedBroker(t *testing.T, flows, consumers int) (*Broker, model.Allocation) {
	t.Helper()
	p := fanProblem(flows)
	br, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	alloc := model.NewAllocation(p)
	for i := 0; i < flows; i++ {
		for k := 0; k < consumers; k++ {
			if _, err := br.AttachConsumer(model.ClassID(i), nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		alloc.Rates[i] = 1e9
		alloc.Consumers[i] = consumers
	}
	if err := br.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	return br, alloc
}

// TestApplyAllocationNoopKeepsSnapshot: re-enacting the enacted
// allocation publishes nothing — the route table pointer is unchanged
// and the enact is accounted as a no-op.
func TestApplyAllocationNoopKeepsSnapshot(t *testing.T) {
	br, alloc := enactedBroker(t, 8, 4)
	before := br.route.Load()
	if err := br.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if after := br.route.Load(); after != before {
		t.Error("no-op allocation swapped the route snapshot")
	}
	s := br.EnactStats()
	if s.NoopApplies != 1 {
		t.Errorf("NoopApplies = %d, want 1", s.NoopApplies)
	}
	if s.RouteNoops < 1 {
		t.Errorf("RouteNoops = %d, want >= 1", s.RouteNoops)
	}
}

// TestApplyAllocationRateOnlyNoSwap: changing only flow rates re-rates
// token buckets in place and swaps no snapshot.
func TestApplyAllocationRateOnlyNoSwap(t *testing.T) {
	br, alloc := enactedBroker(t, 8, 4)
	before := br.route.Load()
	s0 := br.EnactStats()
	alloc.Rates[3] = 5e8
	if err := br.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if after := br.route.Load(); after != before {
		t.Error("rate-only allocation swapped the route snapshot")
	}
	fs, err := br.FlowStats(3)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Rate != 5e8 {
		t.Errorf("flow 3 rate = %g, want 5e8 (bucket must still be re-rated)", fs.Rate)
	}
	if s := br.EnactStats(); s.RatesChanged-s0.RatesChanged != 1 {
		t.Errorf("RatesChanged delta = %d, want 1", s.RatesChanged-s0.RatesChanged)
	}
}

// TestApplyAllocationDeltaSharesCleanFlows: a single-class admission
// delta on a multi-flow broker publishes a new snapshot that rebuilds
// only the dirty flow's slice and shares every other flow's slice, by
// backing array, with its predecessor.
func TestApplyAllocationDeltaSharesCleanFlows(t *testing.T) {
	br, alloc := enactedBroker(t, 16, 4)
	before := br.route.Load()
	alloc.Consumers[5] = 2
	if err := br.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	after := br.route.Load()
	if after == before {
		t.Fatal("admission delta did not swap the route snapshot")
	}
	for i := 0; i < 16; i++ {
		fid := model.FlowID(i)
		shared := routesShareBacking(before.flowRoutes(fid), after.flowRoutes(fid))
		if i == 5 {
			if shared {
				t.Error("dirty flow 5 shares its route slice with the old snapshot")
			}
			continue
		}
		if !shared {
			t.Errorf("clean flow %d got a new route slice", i)
		}
	}
	if s := br.EnactStats(); s.RouteIncrementals != 1 {
		t.Errorf("RouteIncrementals = %d, want 1", s.RouteIncrementals)
	}
}

// TestApplyAllocationNoopAllocs pins the no-op enact's allocation bar
// from the acceptance criteria (≤ 2; the path is designed for 0).
func TestApplyAllocationNoopAllocs(t *testing.T) {
	br, alloc := enactedBroker(t, 16, 4)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := br.ApplyAllocation(alloc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("no-op ApplyAllocation allocs/op = %g, want <= 2", allocs)
	}
}

// TestDetachUnadmittedNoSwap: detaching a consumer that was never
// admitted is invisible to the data plane and publishes nothing — the
// attach/detach-storm fast path.
func TestDetachUnadmittedNoSwap(t *testing.T) {
	br, _ := enactedBroker(t, 8, 4)
	id, err := br.AttachConsumer(2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := br.route.Load()
	if err := br.DetachConsumer(id); err != nil {
		t.Fatal(err)
	}
	if after := br.route.Load(); after != before {
		t.Error("detach of never-admitted consumer swapped the route snapshot")
	}
}

// TestDetachAdmittedRebuildsOnlyItsFlow: detaching an admitted consumer
// republishes, touching only its class's flow.
func TestDetachAdmittedRebuildsOnlyItsFlow(t *testing.T) {
	br, _ := enactedBroker(t, 16, 4)
	var victim ConsumerID
	br.mu.Lock()
	victim = br.classes[7].consumers[3].id
	br.mu.Unlock()
	before := br.route.Load()
	if err := br.DetachConsumer(victim); err != nil {
		t.Fatal(err)
	}
	after := br.route.Load()
	if after == before {
		t.Fatal("detach of admitted consumer did not republish")
	}
	for i := 0; i < 16; i++ {
		fid := model.FlowID(i)
		shared := routesShareBacking(before.flowRoutes(fid), after.flowRoutes(fid))
		if i == 7 && shared {
			t.Error("dirty flow 7 shares its route slice with the old snapshot")
		}
		if i != 7 && !shared {
			t.Errorf("clean flow %d got a new route slice", i)
		}
	}
}

// TestSetClassRateCapRemoveAbsentNoop: removing a cap that was never
// installed publishes nothing.
func TestSetClassRateCapRemoveAbsentNoop(t *testing.T) {
	br, _ := enactedBroker(t, 8, 4)
	before := br.route.Load()
	if err := br.SetClassRateCap(3, 0); err != nil {
		t.Fatal(err)
	}
	if after := br.route.Load(); after != before {
		t.Error("removing an absent rate cap swapped the route snapshot")
	}
}

// TestApplyAllocationShrinkLIFOIncremental: LIFO shrink semantics hold on
// the incremental path (multi-flow broker, single dirty class) exactly as
// on the full-rebuild path pinned by TestApplyAllocationShrinksLIFO.
func TestApplyAllocationShrinkLIFOIncremental(t *testing.T) {
	p := fanProblem(16)
	br, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	alloc := model.NewAllocation(p)
	var ids []ConsumerID
	for k := 0; k < 4; k++ {
		id, err := br.AttachConsumer(9, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := range p.Flows {
		alloc.Rates[i] = 1e9
	}
	alloc.Consumers[9] = 4
	if err := br.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	s0 := br.EnactStats()
	alloc.Consumers[9] = 2
	if err := br.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if s := br.EnactStats(); s.RouteIncrementals-s0.RouteIncrementals != 1 {
		t.Fatalf("RouteIncrementals delta = %d, want 1 (shrink must take the incremental path)",
			s.RouteIncrementals-s0.RouteIncrementals)
	}
	for k, id := range ids {
		adm, err := br.Admitted(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := k < 2; adm != want {
			t.Errorf("consumer %d admitted = %v, want %v (earliest attached survive shrink)", k, adm, want)
		}
	}
}

// routeTableFlows counts the flows a snapshot covers across its blocks.
func routeTableFlows(rt *routeTable) int {
	n := 0
	for _, blk := range rt.blocks {
		n += len(blk)
	}
	return n
}

// equalRouteTables asserts two snapshots are semantically identical:
// same flows, and per flow the same classes with the same counters,
// thinner, transform identity and the same consumers in the same order.
func equalRouteTables(t *testing.T, got, want *routeTable, op string) {
	t.Helper()
	if routeTableFlows(got) != routeTableFlows(want) {
		t.Fatalf("%s: flow count %d, want %d", op, routeTableFlows(got), routeTableFlows(want))
	}
	for i := 0; i < routeTableFlows(want); i++ {
		g, w := got.flowRoutes(model.FlowID(i)), want.flowRoutes(model.FlowID(i))
		if len(g) != len(w) {
			t.Fatalf("%s: flow %d has %d routes, want %d", op, i, len(g), len(w))
		}
		for k := range w {
			if g[k].counters != w[k].counters {
				t.Fatalf("%s: flow %d route %d counters differ", op, i, k)
			}
			if g[k].thinner != w[k].thinner {
				t.Fatalf("%s: flow %d route %d thinner differs", op, i, k)
			}
			if g[k].identity != w[k].identity {
				t.Fatalf("%s: flow %d route %d identity differs", op, i, k)
			}
			if len(g[k].consumers) != len(w[k].consumers) {
				t.Fatalf("%s: flow %d route %d has %d consumers, want %d",
					op, i, k, len(g[k].consumers), len(w[k].consumers))
			}
			for c := range w[k].consumers {
				if g[k].consumers[c] != w[k].consumers[c] {
					t.Fatalf("%s: flow %d route %d consumer %d differs", op, i, k, c)
				}
			}
		}
	}
}

// TestEnactIncrementalMatchesFullRebuild is the incremental path's
// property test: after every random control operation, the published
// snapshot must be semantically identical to a from-scratch full build
// of the authoritative state.
func TestEnactIncrementalMatchesFullRebuild(t *testing.T) {
	p := stressProblem(8)
	br, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var live []ConsumerID
	check := func(op string) {
		t.Helper()
		br.mu.Lock()
		want := br.buildRouteTableLocked()
		br.mu.Unlock()
		equalRouteTables(t, br.route.Load(), want, op)
	}
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0:
			id, err := br.AttachConsumer(model.ClassID(rng.Intn(len(p.Classes))), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
			check("attach")
		case 1:
			if len(live) == 0 {
				continue
			}
			k := rng.Intn(len(live))
			if err := br.DetachConsumer(live[k]); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			check("detach")
		case 2:
			alloc := model.NewAllocation(p)
			for i := range alloc.Rates {
				alloc.Rates[i] = 10 + rng.Float64()*1000
			}
			for j := range alloc.Consumers {
				alloc.Consumers[j] = rng.Intn(6)
			}
			if err := br.ApplyAllocation(alloc); err != nil {
				t.Fatal(err)
			}
			check("apply")
		case 3:
			rate := 0.0
			if rng.Intn(2) == 1 {
				rate = 100 + rng.Float64()*1000
			}
			if err := br.SetClassRateCap(model.ClassID(rng.Intn(len(p.Classes))), rate); err != nil {
				t.Fatal(err)
			}
			check("ratecap")
		}
	}
	s := br.EnactStats()
	if s.RouteIncrementals == 0 || s.RouteFulls == 0 || s.RouteNoops == 0 {
		t.Errorf("op mix did not exercise all republish modes: %+v", s)
	}
}

// TestAllClassStatsParity: the single-snapshot read matches the
// per-class reads and reuses the caller's buffer.
func TestAllClassStatsParity(t *testing.T) {
	br, _ := enactedBroker(t, 8, 4)
	if _, err := br.AttachConsumer(2, nil, nil); err != nil {
		t.Fatal(err)
	}
	buf := br.AllClassStats(nil)
	if len(buf) != len(br.Problem().Classes) {
		t.Fatalf("AllClassStats returned %d entries, want %d", len(buf), len(br.Problem().Classes))
	}
	for j := range buf {
		one, err := br.ClassStats(model.ClassID(j))
		if err != nil {
			t.Fatal(err)
		}
		if buf[j] != one {
			t.Errorf("class %d: AllClassStats %+v != ClassStats %+v", j, buf[j], one)
		}
	}
	again := br.AllClassStats(buf)
	if &again[0] != &buf[0] {
		t.Error("AllClassStats did not reuse the caller's buffer")
	}
}

// TestRelChangeZeroBaselines pins relChange at and around zero: equal
// values (including 0→0) score 0, and any move away from or to zero
// scores 1, so a 0→1 admission always crosses any threshold ≤ 1.
func TestRelChangeZeroBaselines(t *testing.T) {
	cases := []struct {
		prev, next, want float64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{1, 0, 1},
		{0, -1, 1},
		{-1, 1, 2}, // sign crossings can exceed 1; thresholds ≤ 1 still trip
		{100, 100, 0},
	}
	for _, c := range cases {
		if got := relChange(c.prev, c.next); got != c.want {
			t.Errorf("relChange(%g, %g) = %g, want %g", c.prev, c.next, got, c.want)
		}
	}
}

// TestMaxRelChange: the shared threshold input is the worst change over
// rates and populations.
func TestMaxRelChange(t *testing.T) {
	prev := model.Allocation{Rates: []float64{100, 0}, Consumers: []int{4, 0}}
	next := model.Allocation{Rates: []float64{105, 0}, Consumers: []int{4, 0}}
	if got := maxRelChange(prev, next); got != 0.05/1.05 {
		t.Errorf("maxRelChange = %g, want %g", got, 0.05/1.05)
	}
	next.Consumers[1] = 1 // 0 → 1 dominates
	if got := maxRelChange(prev, next); got != 1 {
		t.Errorf("maxRelChange with 0→1 admission = %g, want 1", got)
	}
	if got := maxRelChange(prev, prev); got != 0 {
		t.Errorf("maxRelChange(self) = %g, want 0", got)
	}
}
