package model

import (
	"encoding/json"
	"fmt"

	"repro/internal/utility"
)

// JSON (de)serialization of problems. Class utility functions are
// interfaces, so the wire form replaces each with a utility.Spec. Only the
// concrete types from the utility package can round-trip; foreign Function
// implementations make Marshal fail with an explanatory error.

// classJSON is the wire form of Class.
type classJSON struct {
	ID              ClassID      `json:"id"`
	Name            string       `json:"name,omitempty"`
	Flow            FlowID       `json:"flow"`
	Node            NodeID       `json:"node"`
	MaxConsumers    int          `json:"maxConsumers"`
	CostPerConsumer float64      `json:"costPerConsumer"`
	Utility         utility.Spec `json:"utility"`
}

// problemJSON is the wire form of Problem.
type problemJSON struct {
	Name    string      `json:"name,omitempty"`
	Flows   []Flow      `json:"flows"`
	Classes []classJSON `json:"classes"`
	Nodes   []Node      `json:"nodes"`
	Links   []Link      `json:"links,omitempty"`
}

// MarshalJSON implements json.Marshaler for Problem.
func (p *Problem) MarshalJSON() ([]byte, error) {
	out := problemJSON{
		Name:    p.Name,
		Flows:   p.Flows,
		Classes: make([]classJSON, len(p.Classes)),
		Nodes:   p.Nodes,
		Links:   p.Links,
	}
	for i, c := range p.Classes {
		spec, ok := utility.SpecOf(c.Utility)
		if !ok {
			return nil, fmt.Errorf("model: class %d utility %T is not serializable", c.ID, c.Utility)
		}
		out.Classes[i] = classJSON{
			ID:              c.ID,
			Name:            c.Name,
			Flow:            c.Flow,
			Node:            c.Node,
			MaxConsumers:    c.MaxConsumers,
			CostPerConsumer: c.CostPerConsumer,
			Utility:         spec,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Problem.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var in problemJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	classes := make([]Class, len(in.Classes))
	for i, c := range in.Classes {
		fn, err := c.Utility.Build()
		if err != nil {
			return fmt.Errorf("model: class %d: %w", c.ID, err)
		}
		classes[i] = Class{
			ID:              c.ID,
			Name:            c.Name,
			Flow:            c.Flow,
			Node:            c.Node,
			MaxConsumers:    c.MaxConsumers,
			CostPerConsumer: c.CostPerConsumer,
			Utility:         fn,
		}
	}
	*p = Problem{
		Name:    in.Name,
		Flows:   in.Flows,
		Classes: classes,
		Nodes:   in.Nodes,
		Links:   in.Links,
	}
	return nil
}
