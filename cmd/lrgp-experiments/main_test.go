package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunSelectedExperiments(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-run", "fig1,ablation", "-iters", "60", "-sa-steps", "2000", "-chart=false",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 1") {
		t.Errorf("missing fig1:\n%s", s)
	}
	if !strings.Contains(s, "X2: admission-control ablation") {
		t.Errorf("missing ablation:\n%s", s)
	}
	if strings.Contains(s, "Table 2") {
		t.Errorf("unselected experiment ran:\n%s", s)
	}
}

func TestRunSweepExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "sweep", "-iters", "100"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "warm-started capacity sweep") {
		t.Errorf("missing sweep table:\n%s", s)
	}
	if !strings.Contains(s, "warm start saved") {
		t.Errorf("missing savings summary:\n%s", s)
	}
}

// TestRunScalingExperiment: -run scaling accepts the metro presets by
// name and reports one row per worker count with the execution mode; on
// metro-small the sharded engines must be on the fused schedule.
func TestRunScalingExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "scaling", "-workload", "metro-small", "-iters", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "X9: Step scaling vs workers (metro-small: 240 flows, 1200 nodes, 9600 classes") {
		t.Errorf("missing scaling table title:\n%s", s)
	}
	if !strings.Contains(s, "serial") || !strings.Contains(s, "fused") {
		t.Errorf("missing execution modes:\n%s", s)
	}
	if err := run([]string{"-run", "scaling", "-workload", "nope"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig4", "-iters", "40", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "iteration,adaptive gamma") {
		t.Errorf("missing CSV header:\n%s", out.String())
	}
}

func TestRunChartOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig2", "-iters", "40"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "adaptive gamma") {
		t.Errorf("missing legend:\n%s", out.String())
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "ablation", "-iters", "40", "-markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "**X2: admission-control ablation (base workload)**") {
		t.Errorf("missing markdown title:\n%s", s)
	}
	if !strings.Contains(s, "|---|") {
		t.Errorf("missing markdown separator:\n%s", s)
	}
}

// TestRunTraceOut: `-run none -trace-out x.jsonl` records only the JSONL
// iteration trace, and the file decodes with telemetry.ReadTrace.
func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out bytes.Buffer
	if err := run([]string{"-run", "none", "-trace-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace: wrote") {
		t.Errorf("missing trace summary line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Figure 1") {
		t.Errorf("-run none still ran experiments:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Iteration != 1 || recs[0].Utility <= 0 {
		t.Errorf("trace malformed: %d records, first %+v", len(recs), recs[0])
	}
}

// TestRunChurnExperiment: `-run churn -short` is the CI-sized X11 run —
// a few hundred nodes, four alternating fail/heal events — and must
// report the per-event table plus the warm-vs-cold summary line.
func TestRunChurnExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "churn", "-short"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "X11: rolling link failures") {
		t.Errorf("missing churn table:\n%s", s)
	}
	if !strings.Contains(s, "churn handled") {
		t.Errorf("missing warm-vs-cold summary:\n%s", s)
	}
	if err := run([]string{"-run", "churn", "-short", "-fail-kind", "bogus"}, &out); err == nil {
		t.Error("bad -fail-kind accepted")
	}
}

func TestRunUnknownFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
