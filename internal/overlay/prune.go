package overlay

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
)

// Two-stage approximation of Section 2.4. The constraint equations assume
// a flow is routed to every node hosting one of its classes, even when the
// optimizer then admits zero consumers there — so relay and leaf nodes on
// dead branches still pay the flow-node cost F_{b,i} and dead links still
// carry the flow. The paper proposes (and defers) a second stage: prune
// the paths whose classes all received n_j = 0, zero the corresponding
// L_{l,i} and F_{b,i} coefficients, and re-solve. This file implements
// that second stage on top of the overlay substrate, where "zeroing
// coefficients" is performed honestly by re-routing each flow's
// dissemination tree to only its surviving subscribers.

// StageResult captures one stage of the two-stage solve.
type StageResult struct {
	// Problem is the instance the stage optimized.
	Problem *model.Problem
	// Result is the LRGP outcome on it.
	Result core.Result
}

// TwoStageResult is the outcome of TwoStageSolve.
type TwoStageResult struct {
	// Stage1 is the full-routing solve; Stage2 the pruned re-solve.
	Stage1, Stage2 StageResult
	// PrunedClasses counts classes dropped because stage 1 admitted no
	// consumers for them.
	PrunedClasses int
	// PrunedNodeVisits counts (flow, node) routing entries removed, and
	// PrunedLinkVisits the (flow, link) entries removed.
	PrunedNodeVisits int
	PrunedLinkVisits int
	// UtilityGain is Stage2 utility minus Stage1 utility (>= 0 in
	// practice: pruning only frees resources).
	UtilityGain float64
}

// BuildPruned rebuilds the problem with each flow routed only to the
// subscribers whose classes keep[classIndex] marks as surviving. Classes
// not kept are dropped from the new problem. The classIndex follows the
// flat class order produced by Build for the same flows slice.
func BuildPruned(t *Topology, nodeCapacity float64, flows []FlowSpec, keep []bool) (*model.Problem, error) {
	pruned := make([]FlowSpec, len(flows))
	idx := 0
	for fi, fs := range flows {
		cp := fs
		cp.Classes = nil
		for _, cs := range fs.Classes {
			if idx >= len(keep) {
				return nil, fmt.Errorf("%w: keep mask shorter than class list", ErrBadBuild)
			}
			if keep[idx] {
				cp.Classes = append(cp.Classes, cs)
			}
			idx++
		}
		pruned[fi] = cp
	}
	if idx != len(keep) {
		return nil, fmt.Errorf("%w: keep mask has %d entries, classes total %d", ErrBadBuild, len(keep), idx)
	}
	return Build(t, nodeCapacity, pruned)
}

// TwoStageSolve runs the Section 2.4 two-stage approximation: stage 1
// optimizes with every flow routed to all of its class-hosting nodes;
// stage 2 drops the classes that received no consumers, re-routes the
// dissemination trees to the survivors, and re-optimizes. iters bounds
// each stage's LRGP run.
func TwoStageSolve(t *Topology, nodeCapacity float64, flows []FlowSpec, cfg core.Config, iters int) (*TwoStageResult, error) {
	p1, err := Build(t, nodeCapacity, flows)
	if err != nil {
		return nil, fmt.Errorf("stage 1: %w", err)
	}
	e1, err := core.NewEngine(p1, cfg)
	if err != nil {
		return nil, fmt.Errorf("stage 1: %w", err)
	}
	r1 := e1.Solve(iters)

	keep := make([]bool, len(p1.Classes))
	kept := 0
	for j, n := range r1.Allocation.Consumers {
		if n > 0 {
			keep[j] = true
			kept++
		}
	}
	out := &TwoStageResult{
		Stage1:        StageResult{Problem: p1, Result: r1},
		PrunedClasses: len(p1.Classes) - kept,
	}
	if kept == 0 {
		// Nothing survives: stage 2 would be an empty problem. Report
		// stage 1 as final.
		out.Stage2 = out.Stage1
		return out, nil
	}

	p2, err := BuildPruned(t, nodeCapacity, flows, keep)
	if err != nil {
		return nil, fmt.Errorf("stage 2: %w", err)
	}
	out.PrunedNodeVisits = routingEntries(p1) - routingEntries(p2)
	out.PrunedLinkVisits = linkEntries(p1) - linkEntries(p2)

	e2, err := core.NewEngine(p2, cfg)
	if err != nil {
		return nil, fmt.Errorf("stage 2: %w", err)
	}
	r2 := e2.Solve(iters)
	out.Stage2 = StageResult{Problem: p2, Result: r2}
	out.UtilityGain = r2.Utility - r1.Utility
	return out, nil
}

// TwoStageReSolve is the re-entrant form of TwoStageSolve for a problem
// owned by a Router: stage 1 runs eng (warm from whatever state it
// carries) on the routed problem; stage 2 zeroes the demand of classes
// that received no consumers (Router.PruneDeadSubscribers — classes are
// kept, not dropped, so the member set survives), re-routes the affected
// trees, republishes through Engine.ResetRouting and re-solves the SAME
// engine. Against TwoStageSolve this skips the full problem rebuild and
// the cold engine construction, and prices/rates warm-start stage 2.
//
// Both StageResults reference the Router's live problem (stage 1 numbers
// are computed before pruning mutates it). PrunedClasses counts classes
// newly pruned by this call, so repeated invocations under churn report
// incremental pruning, not the cumulative total.
func TwoStageReSolve(r *Router, eng *core.Engine, iters int) (*TwoStageResult, error) {
	p := r.Problem()
	r1 := eng.Solve(iters)
	out := &TwoStageResult{Stage1: StageResult{Problem: p, Result: r1}}

	live := 0
	for j := range p.Classes {
		if p.Classes[j].MaxConsumers > 0 && r1.Allocation.Consumers[j] > 0 {
			live++
		}
	}
	if live == 0 {
		// Nothing survives: a fully pruned problem is degenerate (every
		// flow idles at RateMin). Report stage 1 as final, prune nothing.
		out.Stage2 = out.Stage1
		return out, nil
	}

	nodeBefore, linkBefore := routingEntries(p), linkEntries(p)
	pruned, err := r.PruneDeadSubscribers(r1.Allocation.Consumers)
	if err != nil {
		return nil, fmt.Errorf("stage 2: %w", err)
	}
	out.PrunedClasses = pruned
	if pruned == 0 {
		out.Stage2 = out.Stage1
		return out, nil
	}
	out.PrunedNodeVisits = nodeBefore - routingEntries(p)
	out.PrunedLinkVisits = linkBefore - linkEntries(p)

	if err := eng.ResetRouting(p, r.TakeDelta()); err != nil {
		return nil, fmt.Errorf("stage 2: %w", err)
	}
	r2 := eng.Solve(iters)
	out.Stage2 = StageResult{Problem: p, Result: r2}
	out.UtilityGain = r2.Utility - r1.Utility
	return out, nil
}

func routingEntries(p *model.Problem) int {
	n := 0
	for _, node := range p.Nodes {
		n += len(node.FlowCost)
	}
	return n
}

func linkEntries(p *model.Problem) int {
	n := 0
	for _, l := range p.Links {
		n += len(l.FlowCost)
	}
	return n
}
