// Package experiments regenerates every table and figure of the LRGP
// paper's evaluation (Section 4), plus this repository's extension
// experiments. Each experiment returns structured results that the CLI
// renders and the benchmark suite asserts on; see EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options tunes the experiment harness. The zero value reproduces the
// paper's parameters at a laptop-friendly annealing budget.
type Options struct {
	// Iterations per LRGP run (default 250, the paper's horizon).
	Iterations int
	// SASteps is the full-state annealing budget per start temperature
	// (default 1e6; the paper sweeps up to 1e8).
	SASteps int
	// SATemps are the annealing start temperatures (default: the paper's
	// {5, 10, 50, 100} plus {1000, 4000}, which our full-state move set
	// needs to escape the nonconvex trap — see DESIGN.md).
	SATemps []float64
	// Seed seeds stochastic baselines.
	Seed int64
	// Workers is passed through to core.Config.Workers for every engine
	// the harness builds (0 = GOMAXPROCS, 1 = serial). Results are
	// bit-identical across worker counts, so this only changes wall-clock
	// time.
	Workers int
	// Workload names the instance for experiments that take one (today
	// the X9 scaling experiment): any workload.Parse spec — "metro",
	// "metro-small", "base", "<F>f-<N>n", "@file.json". Empty selects the
	// experiment's own default. The paper-reproduction experiments ignore
	// it: their workloads are fixed by the figures and tables they
	// regenerate.
	Workload string
}

func (o Options) normalized() Options {
	if o.Iterations <= 0 {
		o.Iterations = 250
	}
	if o.SASteps <= 0 {
		o.SASteps = 1_000_000
	}
	if len(o.SATemps) == 0 {
		o.SATemps = []float64{5, 10, 50, 100, 1000, 4000}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// engineConfig applies the harness-wide engine options (currently the
// worker count) to one experiment's engine configuration.
func (o Options) engineConfig(c core.Config) core.Config {
	c.Workers = o.Workers
	return c
}

// runTrace runs an engine for n iterations and returns the utility trace,
// releasing the engine's worker pool afterwards.
func runTrace(e *core.Engine, n int) []float64 {
	defer e.Close()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, e.Step().Utility)
	}
	return out
}

// Figure1Damping reproduces Figure 1: utility over 250 iterations on the
// base workload for gamma in {1, 0.1, 0.01} (fixed gamma1 = gamma2).
func Figure1Damping(opts Options) (*trace.SeriesSet, error) {
	o := opts.normalized()
	fig := trace.NewSeriesSet("Figure 1: the effect of damping (base workload, rank*log(1+r))", "iteration")
	for i := 0; i < o.Iterations; i++ {
		fig.X = append(fig.X, float64(i+1))
	}
	for _, gamma := range []float64{1, 0.1, 0.01} {
		e, err := core.NewEngine(workload.Base(), o.engineConfig(core.Config{Gamma1: gamma, Gamma2: gamma}))
		if err != nil {
			return nil, err
		}
		fig.AddSeries(fmt.Sprintf("gamma=%g", gamma), runTrace(e, o.Iterations))
	}
	return fig, nil
}

// Figure2AdaptiveGamma reproduces Figure 2: adaptive gamma versus a fixed
// gamma on the base workload.
func Figure2AdaptiveGamma(opts Options) (*trace.SeriesSet, error) {
	o := opts.normalized()
	fig := trace.NewSeriesSet("Figure 2: the effect of adaptive gamma (base workload)", "iteration")
	for i := 0; i < o.Iterations; i++ {
		fig.X = append(fig.X, float64(i+1))
	}

	fixed, err := core.NewEngine(workload.Base(), o.engineConfig(core.Config{Gamma1: 0.01}))
	if err != nil {
		return nil, err
	}
	fig.AddSeries("fixed gamma=0.01", runTrace(fixed, o.Iterations))

	adaptive, err := core.NewEngine(workload.Base(), o.engineConfig(core.Config{Adaptive: true}))
	if err != nil {
		return nil, err
	}
	fig.AddSeries("adaptive gamma", runTrace(adaptive, o.Iterations))
	return fig, nil
}

// RecoveryResult augments the Figure 3 series with the recovery metrics.
type RecoveryResult struct {
	Fig *trace.SeriesSet
	// RecoveryIters maps each series name to the number of iterations
	// after the removal before the utility enters (and stays within) a
	// 0.5% band around its settled post-removal value, or -1 if it never
	// settles. Measured post hoc on the full trace, so slow smooth
	// drift — which fools an amplitude rule — counts as not recovered.
	RecoveryIters map[string]int
}

// recoveryIters returns the first index k (relative to removeAt) such that
// every subsequent value stays within band of the final value, or -1.
func recoveryIters(ys []float64, removeAt int, band float64) int {
	final := ys[len(ys)-1]
	if final == 0 {
		return -1
	}
	// Walk backwards to find the last out-of-band point.
	last := removeAt - 1
	for k := len(ys) - 1; k >= removeAt; k-- {
		if math.Abs(ys[k]-final)/math.Abs(final) > band {
			last = k
			break
		}
		if k == removeAt {
			last = removeAt - 1
		}
	}
	if last >= len(ys)-2 {
		return -1 // still out of band at the end
	}
	return last + 1 - removeAt + 1
}

// Figure3Recovery reproduces Figure 3: flow 5 (serving the highest-ranked
// classes) is removed at the midpoint and the system re-stabilizes; the
// adaptive gamma recovers faster than a small fixed gamma.
func Figure3Recovery(opts Options) (*RecoveryResult, error) {
	o := opts.normalized()
	removeAt := o.Iterations / 2

	res := &RecoveryResult{
		Fig:           trace.NewSeriesSet("Figure 3: recovery after removing flow 5", "iteration"),
		RecoveryIters: make(map[string]int),
	}
	for i := 0; i < o.Iterations; i++ {
		res.Fig.X = append(res.Fig.X, float64(i+1))
	}

	run := func(name string, cfg core.Config) error {
		e, err := core.NewEngine(workload.Base(), o.engineConfig(cfg))
		if err != nil {
			return err
		}
		defer e.Close()
		var ys []float64
		for i := 0; i < o.Iterations; i++ {
			if i == removeAt {
				e.SetFlowActive(5, false)
			}
			ys = append(ys, e.Step().Utility)
		}
		res.Fig.AddSeries(name, ys)
		res.RecoveryIters[name] = recoveryIters(ys, removeAt, 0.005)
		return nil
	}

	if err := run("fixed gamma=0.01", core.Config{Gamma1: 0.01}); err != nil {
		return nil, err
	}
	if err := run("adaptive gamma", core.Config{Adaptive: true}); err != nil {
		return nil, err
	}
	return res, nil
}

// Figure4PowerUtility reproduces Figure 4: the global utility trajectory
// when class utilities are rank * r^0.75.
func Figure4PowerUtility(opts Options) (*trace.SeriesSet, error) {
	o := opts.normalized()
	fig := trace.NewSeriesSet("Figure 4: global utility with rank*r^0.75", "iteration")
	for i := 0; i < o.Iterations; i++ {
		fig.X = append(fig.X, float64(i+1))
	}
	e, err := core.NewEngine(workload.Scaled(workload.Config{Shape: workload.ShapePow75}), o.engineConfig(core.Config{Adaptive: true}))
	if err != nil {
		return nil, err
	}
	fig.AddSeries("adaptive gamma", runTrace(e, o.Iterations))
	return fig, nil
}

// ComparisonRow is one workload's LRGP-versus-baselines record (Tables 2
// and 3).
type ComparisonRow struct {
	Workload string
	// LRGP results.
	LRGPUtility     float64
	LRGPIters       int
	LRGPConverged   bool
	LRGPConvergedAt int
	// Full-state simulated annealing (paper baseline).
	SAUtility   float64
	SATemp      float64
	SASteps     int
	SARuntime   time.Duration
	SAIncreases float64 // LRGP utility increase over SA, percent
	// Rates-only + greedy-population annealing (strong reference).
	RGUtility float64
	RGGap     float64 // (LRGP-RG)/RG, percent (negative when RG wins)
}

// compare runs LRGP and both annealing baselines on one problem.
func compare(p *model.Problem, o Options) (ComparisonRow, error) {
	row := ComparisonRow{Workload: p.Name}

	e, err := core.NewEngine(p.Clone(), o.engineConfig(core.Config{Adaptive: true}))
	if err != nil {
		return row, err
	}
	defer e.Close()
	res := e.Solve(2 * o.Iterations)
	row.LRGPUtility = res.Utility
	row.LRGPIters = res.Iterations
	row.LRGPConverged = res.Converged
	row.LRGPConvergedAt = res.ConvergedAt

	sa, temp, err := anneal.SolveBestOf(p, anneal.Config{MaxSteps: o.SASteps, Seed: o.Seed}, o.SATemps)
	if err != nil {
		return row, err
	}
	row.SAUtility = sa.BestUtility
	row.SATemp = temp
	row.SASteps = sa.Steps
	row.SARuntime = sa.Runtime
	if sa.BestUtility > 0 {
		row.SAIncreases = 100 * (res.Utility - sa.BestUtility) / sa.BestUtility
	}

	rg, _, err := anneal.SolveRatesGreedyBestOf(p, anneal.Config{MaxSteps: o.SASteps / 10, Seed: o.Seed}, []float64{5, 50})
	if err != nil {
		return row, err
	}
	row.RGUtility = rg.BestUtility
	if rg.BestUtility > 0 {
		row.RGGap = 100 * (res.Utility - rg.BestUtility) / rg.BestUtility
	}
	return row, nil
}

// Table2Scalability reproduces Table 2: quality of results for LRGP and
// simulated annealing as the system grows.
func Table2Scalability(opts Options) ([]ComparisonRow, error) {
	o := opts.normalized()
	var rows []ComparisonRow
	for _, p := range workload.Table2Workloads() {
		row, err := compare(p, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3UtilityShapes reproduces Table 3: convergence and quality as the
// class utility shape varies.
func Table3UtilityShapes(opts Options) ([]ComparisonRow, error) {
	o := opts.normalized()
	var rows []ComparisonRow
	for _, s := range workload.Table3Shapes() {
		p := workload.Scaled(workload.Config{Shape: s})
		row, err := compare(p, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderComparison renders comparison rows in the paper's table layout.
func RenderComparison(title string, rows []ComparisonRow) *trace.Table {
	t := trace.NewTable(title,
		"Workload", "SA temp", "SA steps", "SA runtime", "SA utility",
		"LRGP iters", "LRGP utility", "Utility increase", "RatesGreedy utility", "LRGP vs RG")
	for _, r := range rows {
		iters := fmt.Sprint(r.LRGPConvergedAt)
		if !r.LRGPConverged {
			iters = fmt.Sprintf(">%d", r.LRGPIters)
		}
		t.Add(
			r.Workload,
			fmt.Sprintf("%g", r.SATemp),
			fmt.Sprint(r.SASteps),
			r.SARuntime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.SAUtility),
			iters,
			fmt.Sprintf("%.0f", r.LRGPUtility),
			fmt.Sprintf("%.2f%%", r.SAIncreases),
			fmt.Sprintf("%.0f", r.RGUtility),
			fmt.Sprintf("%+.2f%%", r.RGGap),
		)
	}
	return t
}
