package core

// Price computation (Sections 3.3 and 3.4).
//
// Node prices dampen toward the benefit-cost ratio of the best unsatisfied
// class (Equation 12); the stepsize gamma is either fixed or adapted per
// node with the Section 4.2 heuristic. Link prices follow the gradient
// projection of Low & Lapsley (Equation 13).

// gammaController implements the Section 4.2 adaptive stepsize heuristic:
// while the node's price is not fluctuating, increase gamma additively;
// when a fluctuation is detected, halve gamma; clamp to [min, max].
//
// The controller watches the price-update *gap* — the distance the
// Equation 12 update is trying to move the price (BC - p when within
// capacity, the overload excess otherwise) — rather than the applied
// delta, because the delta's magnitude is proportional to gamma itself.
// Each observation is scored by its relative significance
//
//	s = |gap| / (|price| + |gap|),
//
// which is ~0 for equilibrium jitter and ~1 when the price is far from its
// target. Three regimes follow:
//
//   - sign flip with s above the dead band: genuine oscillation, halve;
//   - s above the surge threshold AND the gap one-signed for at least
//     surgeRuns observations: far from equilibrium (workload change,
//     startup), ramp gamma multiplicatively for fast recovery — the run
//     requirement keeps large-amplitude oscillation from re-triggering
//     the ramp;
//   - otherwise: quiet, grow additively (the paper's +0.001).
type gammaController struct {
	gamma    float64
	min, max float64
	step     float64
	deadband float64
	surge    float64
	prevGap  float64
	havePrev bool
	sameRun  int
}

// surgeRuns is how many consecutive same-signed significant gaps must be
// seen before the multiplicative ramp engages.
const surgeRuns = 3

func newGammaController(cfg Config) gammaController {
	g := gammaController{
		gamma:    clamp(cfg.GammaInit, cfg.GammaMin, cfg.GammaMax),
		min:      cfg.GammaMin,
		max:      cfg.GammaMax,
		step:     cfg.GammaStep,
		deadband: cfg.GammaDeadband,
		surge:    cfg.GammaSurge,
	}
	if cfg.GammaLiteral {
		// The paper's heuristic verbatim: every sign flip counts, no
		// multiplicative ramp (surge > 1 can never trigger since the
		// significance score s is bounded by 1).
		g.deadband = 0
		g.surge = 2
	}
	return g
}

// observe folds one price-update gap (and the price level it applied to)
// into the controller and returns the gamma for the next update.
func (g *gammaController) observe(gap, price float64) float64 {
	s := 0.0
	if gap != 0 {
		s = abs(gap) / (abs(price) + abs(gap))
	}
	flipped := g.havePrev && s > g.deadband && gap*g.prevGap < 0
	if s > g.deadband {
		if flipped {
			g.sameRun = 0
		} else if g.havePrev && gap*g.prevGap > 0 {
			g.sameRun++
		}
		g.prevGap = gap
		g.havePrev = true
	}
	switch {
	case flipped:
		g.gamma /= 2
	case s > g.surge && g.sameRun >= surgeRuns:
		g.gamma *= 2
	default:
		g.gamma += g.step
	}
	g.gamma = clamp(g.gamma, g.min, g.max)
	return g.gamma
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// nodePriceUpdate applies Equation 12 and returns the new price.
//
//	p(t+1) = p(t) + gamma1*(BC(b,t) - p(t))   if used <= capacity
//	p(t+1) = p(t) + gamma2*(used - capacity)  if used >  capacity
//
// Prices are projected to be non-negative.
func nodePriceUpdate(price, bestBC, used, capacity, gamma1, gamma2 float64) float64 {
	var next float64
	if used <= capacity {
		next = price + gamma1*(bestBC-price)
	} else {
		next = price + gamma2*(used-capacity)
	}
	if next < 0 {
		return 0
	}
	return next
}

// priceGap returns the distance the Equation 12 update is pulling the
// price: BC - p within capacity, the overload excess otherwise. The
// adaptive controller watches this signal.
func priceGap(price, bestBC, used, capacity float64) float64 {
	if used <= capacity {
		return bestBC - price
	}
	return used - capacity
}

// linkPriceUpdate applies Equation 13 with projection onto [0, inf):
//
//	p(t+1) = [p(t) + gamma_l * (sum_i L_{l,i} r_i - c_l)]+
func linkPriceUpdate(price, used, capacity, gamma float64) float64 {
	next := price + gamma*(used-capacity)
	if next < 0 {
		return 0
	}
	return next
}
