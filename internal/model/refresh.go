package model

import (
	"fmt"
	"slices"
)

// RoutingDelta names the parts of a problem whose routing changed since an
// Index last saw it: the flows whose dissemination trees moved, and every
// node and link whose FlowCost map gained or lost an entry (listing
// unchanged elements is harmless — they rebuild to identical views).
// Overlay repairs produce deltas (overlay.Router.TakeDelta); RefreshRouting
// consumes them.
type RoutingDelta struct {
	Flows []FlowID
	Nodes []NodeID
	Links []LinkID
}

// Empty reports whether the delta names nothing.
func (d RoutingDelta) Empty() bool {
	return len(d.Flows) == 0 && len(d.Nodes) == 0 && len(d.Links) == 0
}

// RefreshRouting re-targets the index at p after a routing change confined
// to d: membership lists and cost views are rebuilt for exactly the dirty
// flows/nodes/links, everything else keeps its slices (so views handed out
// for untouched elements remain valid and shared). It generalizes Refresh,
// which requires identical cost-map sparsity: here dirty elements may gain
// and lose (resource, flow) pairs, as long as the member sets themselves —
// flow, node, link and class counts, and every class's (flow, node)
// attachment — are unchanged.
//
// The delta must be complete: a node or link whose FlowCost changed but is
// not listed keeps a stale view. Membership changes at dirty elements must
// involve dirty flows only; RefreshRouting verifies this and reports the
// first violation without mutating anything it has not already rebuilt
// (dirty-element views may be partially rebuilt on error — treat an error
// as fatal to the index). Cost values of clean elements must be unchanged
// (RefreshRouting does not re-read them; use Refresh for value-only
// changes). It must not run concurrently with readers.
func (ix *Index) RefreshRouting(p *Problem, d RoutingDelta) error {
	old := ix.p
	switch {
	case len(p.Flows) != len(old.Flows):
		return fmt.Errorf("model: refresh-routing: flow count %d != %d", len(p.Flows), len(old.Flows))
	case len(p.Nodes) != len(old.Nodes):
		return fmt.Errorf("model: refresh-routing: node count %d != %d", len(p.Nodes), len(old.Nodes))
	case len(p.Links) != len(old.Links):
		return fmt.Errorf("model: refresh-routing: link count %d != %d", len(p.Links), len(old.Links))
	case len(p.Classes) != len(old.Classes):
		return fmt.Errorf("model: refresh-routing: class count %d != %d", len(p.Classes), len(old.Classes))
	}
	for j := range p.Classes {
		c, oc := &p.Classes[j], &old.Classes[j]
		if c.Flow != oc.Flow || c.Node != oc.Node {
			return fmt.Errorf("model: refresh-routing: class %d moved (flow %d→%d, node %d→%d)",
				j, oc.Flow, c.Flow, oc.Node, c.Node)
		}
	}
	for _, i := range d.Flows {
		if i < 0 || int(i) >= len(p.Flows) {
			return fmt.Errorf("model: refresh-routing: dirty flow %d out of range", i)
		}
	}

	// Sorted, deduplicated dirty sets. The flow mark set doubles as the
	// membership-change guard below.
	dirtyNodes := sortedDedup(d.Nodes)
	dirtyLinks := sortedDedup(d.Links)
	dirtyFlow := make(map[FlowID]bool, len(d.Flows))
	for _, i := range d.Flows {
		dirtyFlow[i] = true
	}

	// Resource side: rebuild each dirty node's and link's membership list
	// and cost view from its map, guarding that any flow entering or
	// leaving is a dirty flow.
	for _, b := range dirtyNodes {
		if b < 0 || int(b) >= len(p.Nodes) {
			return fmt.Errorf("model: refresh-routing: dirty node %d out of range", b)
		}
		flows, costs, err := rebuildMembership(p.Nodes[b].FlowCost, ix.flowsByNode[b], dirtyFlow,
			func(i FlowID) string { return fmt.Sprintf("node %d flow %d", b, i) })
		if err != nil {
			return err
		}
		ix.flowsByNode[b], ix.flowCostByNode[b] = flows, costs
	}
	for _, l := range dirtyLinks {
		if l < 0 || int(l) >= len(p.Links) {
			return fmt.Errorf("model: refresh-routing: dirty link %d out of range", l)
		}
		flows, costs, err := rebuildMembership(p.Links[l].FlowCost, ix.flowsByLink[l], dirtyFlow,
			func(i FlowID) string { return fmt.Sprintf("link %d flow %d", l, i) })
		if err != nil {
			return err
		}
		ix.flowsByLink[l], ix.flowCostByLink[l] = flows, costs
	}

	// Flow side: a dirty flow's node (and link) list changes only at dirty
	// nodes (links), so the new list is the old one with dirty elements
	// filtered out, merged with the dirty elements that now carry the flow.
	// Both streams are ascending, so the merge preserves the index's
	// ordering invariant.
	nodeDirtyAt := func(b NodeID) bool {
		_, ok := slices.BinarySearch(dirtyNodes, b)
		return ok
	}
	linkDirtyAt := func(l LinkID) bool {
		_, ok := slices.BinarySearch(dirtyLinks, l)
		return ok
	}
	for _, i := range d.Flows {
		fid := i
		nodes := mergeMembership(ix.nodesByFlow[i], dirtyNodes, nodeDirtyAt,
			func(b NodeID) bool { _, ok := p.Nodes[b].FlowCost[fid]; return ok })
		ncosts := make([]float64, len(nodes))
		for k, b := range nodes {
			ncosts[k] = p.Nodes[b].FlowCost[fid]
		}
		links := mergeMembership(ix.linksByFlow[i], dirtyLinks, linkDirtyAt,
			func(l LinkID) bool { _, ok := p.Links[l].FlowCost[fid]; return ok })
		lcosts := make([]float64, len(links))
		for k, l := range links {
			lcosts[k] = p.Links[l].FlowCost[fid]
		}

		// Classes stay attached where they were; ones whose node left the
		// tree drop out of the per-node lists. Only a class with zero
		// demand may be detached from its flow's tree (Validate enforces
		// it problem-wide; the check here catches it at the source).
		lists := make([][]ClassID, len(nodes))
		for _, cid := range ix.classesByFlow[i] {
			k, ok := slices.BinarySearch(nodes, p.Classes[cid].Node)
			if ok {
				lists[k] = append(lists[k], cid)
			} else if p.Classes[cid].MaxConsumers > 0 {
				return fmt.Errorf("model: refresh-routing: class %d (demand %d) at node %d detached from flow %d's tree",
					cid, p.Classes[cid].MaxConsumers, p.Classes[cid].Node, i)
			}
		}

		ix.nodesByFlow[i], ix.nodeCostByFlow[i] = nodes, ncosts
		ix.linksByFlow[i], ix.linkCostByFlow[i] = links, lcosts
		ix.classesByFlowNode[i] = lists
	}
	ix.p = p
	return nil
}

// rebuildMembership rebuilds one resource's (flows, costs) view from its
// cost map, verifying every membership change against the dirty-flow set.
func rebuildMembership(costMap map[FlowID]float64, oldFlows []FlowID, dirtyFlow map[FlowID]bool, what func(FlowID) string) ([]FlowID, []float64, error) {
	flows := make([]FlowID, 0, len(costMap))
	for i := range costMap {
		flows = append(flows, i)
	}
	slices.Sort(flows)
	// Two-pointer walk: a flow present in exactly one of (old, new) is a
	// membership change and must be dirty.
	a, b := 0, 0
	for a < len(oldFlows) || b < len(flows) {
		switch {
		case b >= len(flows) || (a < len(oldFlows) && oldFlows[a] < flows[b]):
			if !dirtyFlow[oldFlows[a]] {
				return nil, nil, fmt.Errorf("model: refresh-routing: %s left but flow not in delta", what(oldFlows[a]))
			}
			a++
		case a >= len(oldFlows) || flows[b] < oldFlows[a]:
			if !dirtyFlow[flows[b]] {
				return nil, nil, fmt.Errorf("model: refresh-routing: %s appeared but flow not in delta", what(flows[b]))
			}
			b++
		default:
			a++
			b++
		}
	}
	costs := make([]float64, len(flows))
	for k, i := range flows {
		costs[k] = costMap[i]
	}
	return flows, costs, nil
}

// mergeMembership merges the clean part of a flow's old membership list
// (old entries at non-dirty elements) with the dirty elements that carry
// the flow now. Both inputs ascending; output ascending.
func mergeMembership[T ~int](old []T, dirty []T, isDirty func(T) bool, hasFlow func(T) bool) []T {
	out := make([]T, 0, len(old)+len(dirty))
	a, b := 0, 0
	for a < len(old) || b < len(dirty) {
		// Advance past dirty old entries (they re-qualify via the dirty
		// stream) and dirty elements without the flow.
		if a < len(old) && isDirty(old[a]) {
			a++
			continue
		}
		if b < len(dirty) && !hasFlow(dirty[b]) {
			b++
			continue
		}
		switch {
		case a >= len(old) && b >= len(dirty):
			return out
		case b >= len(dirty) || (a < len(old) && old[a] < dirty[b]):
			out = append(out, old[a])
			a++
		default:
			out = append(out, dirty[b])
			b++
		}
	}
	return out
}

func sortedDedup[T ~int](in []T) []T {
	out := slices.Clone(in)
	slices.Sort(out)
	return slices.Compact(out)
}
