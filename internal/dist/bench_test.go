package dist

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/workload"
)

// BenchmarkSyncRoundMemory measures one synchronous LRGP round over the
// in-memory transport on the base workload (9 agents + collector).
func BenchmarkSyncRoundMemory(b *testing.B) {
	net := transport.NewMemory()
	defer net.Close()
	cl, err := New(workload.Base(), Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run(1, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncRoundTCP measures the same round over loopback TCP with
// JSON framing.
func BenchmarkSyncRoundTCP(b *testing.B) {
	net := transport.NewTCP()
	defer net.Close()
	cl, err := New(workload.Base(), Config{Core: core.Config{Adaptive: true}}, net)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run(1, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncRoundTCPBinary is BenchmarkSyncRoundTCP on the compact
// binary wire (uvarint framing, no per-message json.Marshal).
func BenchmarkSyncRoundTCPBinary(b *testing.B) {
	net := transport.NewTCP()
	defer net.Close()
	cl, err := New(workload.Base(), Config{Core: core.Config{Adaptive: true}, Wire: transport.WireBinary}, net)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Run(1, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRounds runs b.N synchronous rounds under cfg on the given problem
// and reports frames/round and bytes/round from the transport meter, the
// two costs the binary codec and gateway batching attack (recorded to
// BENCH_dist.json by `make bench-dist`).
func benchRounds(b *testing.B, cfg Config, flowCopies, nodeSetCopies int) {
	p := workload.Scaled(workload.Config{FlowCopies: flowCopies, NodeSetCopies: nodeSetCopies})
	net := transport.NewMemory()
	defer net.Close()
	cfg.Core = core.Config{Adaptive: true}
	cl, err := New(p, cfg, net)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	if _, err := cl.Run(b.N, 5*time.Minute); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	m := net.NetStats()
	b.ReportMetric(float64(m.Delivered)/float64(b.N), "frames/round")
	b.ReportMetric(float64(m.Bytes)/float64(b.N), "bytes/round")
}

// BenchmarkDistWire compares the wire formats on the base workload.
func BenchmarkDistWire(b *testing.B) {
	b.Run("json", func(b *testing.B) { benchRounds(b, Config{}, 1, 1) })
	b.Run("binary", func(b *testing.B) { benchRounds(b, Config{Wire: transport.WireBinary}, 1, 1) })
}

// BenchmarkDistBatch compares plain per-message delivery against per-host
// gateway batching on the 102-flow x 102-node cluster (12 hosts).
func BenchmarkDistBatch(b *testing.B) {
	b.Run("plain", func(b *testing.B) {
		benchRounds(b, Config{Wire: transport.WireBinary}, 17, 2)
	})
	b.Run("batched", func(b *testing.B) {
		benchRounds(b, Config{Wire: transport.WireBinary, Batch: true, Hosts: 12}, 17, 2)
	})
}

// BenchmarkDistRecorder measures flight-recorder overhead on the round
// hot path: the identical bounded-staleness cluster with rings detached
// and attached. The delta is the cost of the per-event atomic stores
// (acceptance: under 5%).
func BenchmarkDistRecorder(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			p := workload.Scaled(workload.Config{FlowCopies: 17, NodeSetCopies: 2})
			net := transport.NewMemory()
			defer net.Close()
			cl, err := New(p, Config{
				Core:      core.Config{Adaptive: true},
				Wire:      transport.WireBinary,
				Staleness: 1,
				Record:    on,
			}, net)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ResetTimer()
			if _, err := cl.Run(b.N, 5*time.Minute); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkDistStaleness measures rounds-to-converge (first finalized
// round within 1% of the engine's converged utility) per staleness bound
// K, alongside the usual ns/op. K=0 is the barrier schedule.
func BenchmarkDistStaleness(b *testing.B) {
	p := workload.Scaled(workload.Config{FlowCopies: 17, NodeSetCopies: 2})
	ref, err := core.NewEngine(p.Clone(), core.Config{Adaptive: true})
	if err != nil {
		b.Fatal(err)
	}
	want := ref.Solve(300).Utility

	for _, k := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			const rounds = 120
			converged := 0
			for i := 0; i < b.N; i++ {
				net := transport.NewMemory()
				cl, err := New(p, Config{
					Core: core.Config{Adaptive: true}, Wire: transport.WireBinary,
					Batch: true, Hosts: 12, Staleness: k,
				}, net)
				if err != nil {
					b.Fatal(err)
				}
				stats, err := cl.Run(rounds, 5*time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				cl.Close()
				net.Close()
				converged = 0
				for _, s := range stats {
					if rel := (s.Utility - want) / want; rel > -0.01 && rel < 0.01 {
						converged = s.Round
						break
					}
				}
			}
			b.ReportMetric(float64(converged), "rounds-to-converge")
		})
	}
}
