package core

// Price computation (Sections 3.3 and 3.4).
//
// Node prices dampen toward the benefit-cost ratio of the best unsatisfied
// class (Equation 12); the stepsize gamma is either fixed or adapted per
// node with the Section 4.2 heuristic. Link prices follow the gradient
// projection of Low & Lapsley (Equation 13).

// gammaController implements the Section 4.2 adaptive stepsize heuristic:
// while the node's price is not fluctuating, increase gamma additively;
// when a fluctuation is detected, halve gamma; clamp to [min, max].
//
// The controller watches the price-update *gap* — the distance the
// Equation 12 update is trying to move the price (BC - p when within
// capacity, the overload excess otherwise) — rather than the applied
// delta, because the delta's magnitude is proportional to gamma itself.
// Each observation is scored by its relative significance
//
//	s = |gap| / (|price| + |gap|),
//
// which is ~0 for equilibrium jitter and ~1 when the price is far from its
// target. Three regimes follow:
//
//   - sign flip with s above the dead band: genuine oscillation, halve;
//   - s above the surge threshold AND the gap one-signed for at least
//     surgeRuns observations: far from equilibrium (workload change,
//     startup), ramp gamma multiplicatively for fast recovery — the run
//     requirement keeps large-amplitude oscillation from re-triggering
//     the ramp;
//   - otherwise: quiet, grow additively (the paper's +0.001).
type gammaController struct {
	gamma    float64
	min, max float64
	step     float64
	deadband float64
	surge    float64
	prevGap  float64
	havePrev bool
	sameRun  int
}

// surgeRuns is how many consecutive same-signed significant gaps must be
// seen before the multiplicative ramp engages.
const surgeRuns = 3

func newGammaController(cfg Config) gammaController {
	g := gammaController{
		gamma:    clamp(cfg.GammaInit, cfg.GammaMin, cfg.GammaMax),
		min:      cfg.GammaMin,
		max:      cfg.GammaMax,
		step:     cfg.GammaStep,
		deadband: cfg.GammaDeadband,
		surge:    cfg.GammaSurge,
	}
	if cfg.GammaLiteral {
		// The paper's heuristic verbatim: every sign flip counts, no
		// multiplicative ramp (surge > 1 can never trigger since the
		// significance score s is bounded by 1).
		g.deadband = 0
		g.surge = 2
	}
	return g
}

// observe folds one price-update gap (and the price level it applied to)
// into the controller and returns the gamma for the next update.
func (g *gammaController) observe(gap, price float64) float64 {
	g.gamma, g.prevGap, g.sameRun, g.havePrev = gammaStep(
		g.gamma, gap, price, g.prevGap, g.sameRun, g.havePrev,
		g.min, g.max, g.step, g.deadband, g.surge)
	return g.gamma
}

// gammaStep is the controller transition function, shared verbatim by the
// AoS gammaController (distributed node agents own one controller each) and
// the engine's SoA gammaBank so the two can never drift: it takes the
// current state plus one (gap, price) observation and returns the next
// state.
func gammaStep(gamma, gap, price, prevGap float64, sameRun int, havePrev bool,
	min, max, step, deadband, surge float64) (float64, float64, int, bool) {
	s := 0.0
	if gap != 0 {
		s = abs(gap) / (abs(price) + abs(gap))
	}
	flipped := havePrev && s > deadband && gap*prevGap < 0
	if s > deadband {
		if flipped {
			sameRun = 0
		} else if havePrev && gap*prevGap > 0 {
			sameRun++
		}
		prevGap = gap
		havePrev = true
	}
	switch {
	case flipped:
		gamma /= 2
	case s > surge && sameRun >= surgeRuns:
		gamma *= 2
	default:
		gamma += step
	}
	return clamp(gamma, min, max), prevGap, sameRun, havePrev
}

// gammaBank holds the adaptive-gamma state for every node in
// structure-of-arrays layout: the engine's price sweep reads val[b] with a
// plain indexed load instead of striding over an array of seven-field
// structs, and the controller-state arrays are touched only on the observe
// path. All banks of one engine share the scalar clamp/threshold config.
type gammaBank struct {
	val      []float64
	prevGap  []float64
	sameRun  []int32
	havePrev []bool

	init     float64
	min, max float64
	step     float64
	deadband float64
	surge    float64
}

// newGammaBank builds the bank for n nodes, normalizing the config exactly
// like newGammaController (including the GammaLiteral overrides).
func newGammaBank(cfg Config, n int) *gammaBank {
	proto := newGammaController(cfg)
	g := &gammaBank{
		val:      make([]float64, n),
		prevGap:  make([]float64, n),
		sameRun:  make([]int32, n),
		havePrev: make([]bool, n),
		init:     proto.gamma,
		min:      proto.min,
		max:      proto.max,
		step:     proto.step,
		deadband: proto.deadband,
		surge:    proto.surge,
	}
	for b := range g.val {
		g.val[b] = proto.gamma
	}
	return g
}

// reseed returns node b's controller to its initial state. A routing
// change rewrites the node's flow membership, so the stepsize adapted to
// the old local problem — possibly deep in an equilibrium dead band — is
// no longer evidence about the new one; starting the heuristic over
// avoids inheriting a gamma that sustains a limit cycle the fresh
// controller would have damped.
func (g *gammaBank) reseed(b int) {
	g.val[b] = g.init
	g.prevGap[b] = 0
	g.sameRun[b] = 0
	g.havePrev[b] = false
}

// observe folds one observation into node b's controller state.
func (g *gammaBank) observe(b int, gap, price float64) {
	run := int(g.sameRun[b])
	g.val[b], g.prevGap[b], run, g.havePrev[b] = gammaStep(
		g.val[b], gap, price, g.prevGap[b], run, g.havePrev[b],
		g.min, g.max, g.step, g.deadband, g.surge)
	g.sameRun[b] = int32(run)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// nodePriceUpdate applies Equation 12 and returns the new price.
//
//	p(t+1) = p(t) + gamma1*(BC(b,t) - p(t))   if used <= capacity
//	p(t+1) = p(t) + gamma2*(used - capacity)  if used >  capacity
//
// Prices are projected to be non-negative.
func nodePriceUpdate(price, bestBC, used, capacity, gamma1, gamma2 float64) float64 {
	var next float64
	if used <= capacity {
		next = price + gamma1*(bestBC-price)
	} else {
		next = price + gamma2*(used-capacity)
	}
	if next < 0 {
		return 0
	}
	return next
}

// priceGap returns the distance the Equation 12 update is pulling the
// price: BC - p within capacity, the overload excess otherwise. The
// adaptive controller watches this signal.
func priceGap(price, bestBC, used, capacity float64) float64 {
	if used <= capacity {
		return bestBC - price
	}
	return used - capacity
}

// linkPriceUpdate applies Equation 13 with projection onto [0, inf):
//
//	p(t+1) = [p(t) + gamma_l * (sum_i L_{l,i} r_i - c_l)]+
func linkPriceUpdate(price, used, capacity, gamma float64) float64 {
	next := price + gamma*(used-capacity)
	if next < 0 {
		return 0
	}
	return next
}
