//go:build race

package overlay

// raceEnabled reports whether the race detector is instrumenting this
// build; perf gates consult it because instrumented wall clock measures
// the detector, not the code.
const raceEnabled = true
