package anneal

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

func TestSolveRatesGreedyValidates(t *testing.T) {
	p := workload.Base()
	p.Nodes[0].Capacity = -1
	if _, err := SolveRatesGreedy(p, Config{MaxSteps: 10}); err == nil {
		t.Error("accepted invalid problem")
	}
}

func TestSolveRatesGreedyFeasibleAndConsistent(t *testing.T) {
	p := workload.Base()
	res, err := SolveRatesGreedy(p, Config{MaxSteps: 20_000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix := model.NewIndex(p)
	if err := model.CheckFeasible(p, ix, res.Best, 1e-9); err != nil {
		t.Errorf("best allocation infeasible: %v", err)
	}
	if got := model.TotalUtility(p, res.Best); math.Abs(got-res.BestUtility) > 1e-6*res.BestUtility {
		t.Errorf("utility mismatch: %g vs %g", res.BestUtility, got)
	}
}

func TestSolveRatesGreedyNearLRGP(t *testing.T) {
	// The rates-only + greedy-population search explores the same
	// solution family as LRGP and must land within 1% of it on the base
	// workload even with a small budget.
	p := workload.Base()
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	lrgp := e.Solve(400).Utility

	res, err := SolveRatesGreedy(p, Config{MaxSteps: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.BestUtility-lrgp) / lrgp; rel > 0.01 {
		t.Errorf("rates-greedy SA = %.0f vs LRGP %.0f (rel %.4f)", res.BestUtility, lrgp, rel)
	}
}

func TestSolveRatesGreedyDominatesFullStateAtPaperTemps(t *testing.T) {
	// At the paper's temperatures the full-state walk freezes in the
	// high-rate trap; the rates-greedy variant does not.
	p := workload.Base()
	full, err := Solve(p, Config{MaxSteps: 100_000, StartTemp: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := SolveRatesGreedy(p, Config{MaxSteps: 20_000, StartTemp: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rg.BestUtility <= full.BestUtility {
		t.Errorf("rates-greedy %.0f not above full-state %.0f", rg.BestUtility, full.BestUtility)
	}
}

func TestSolveRatesGreedyRespectsLinks(t *testing.T) {
	p := workload.WithLinkBottlenecks(workload.Base(), 0.4)
	res, err := SolveRatesGreedy(p, Config{MaxSteps: 20_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix := model.NewIndex(p)
	for _, l := range p.Links {
		if used := model.LinkUsage(p, ix, res.Best, l.ID); used > l.Capacity+1e-9 {
			t.Errorf("link %d overloaded: %g > %g", l.ID, used, l.Capacity)
		}
	}
}

func TestSolveRatesGreedyInfeasibleLinkStart(t *testing.T) {
	p := workload.WithLinkBottlenecks(workload.Base(), 0.001) // capacity 1 < rmin 10
	if _, err := SolveRatesGreedy(p, Config{MaxSteps: 10}); !errors.Is(err, ErrInfeasibleStart) {
		t.Errorf("error = %v, want ErrInfeasibleStart", err)
	}
}

func TestSolveRatesGreedyBestOf(t *testing.T) {
	p := workload.Base()
	res, temp, err := SolveRatesGreedyBestOf(p, Config{MaxSteps: 5_000, Seed: 2}, []float64{5, 100})
	if err != nil {
		t.Fatal(err)
	}
	if temp != 5 && temp != 100 {
		t.Errorf("winning temp = %g", temp)
	}
	if res.BestUtility <= 0 {
		t.Errorf("best utility = %g", res.BestUtility)
	}
}

func TestGreedyPopulationsMatchesEngine(t *testing.T) {
	// Running GreedyPopulations on an engine's converged rates must give
	// the engine's own populations (the engine's step is the same code).
	p := workload.Base()
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(400)
	consumers, util := core.GreedyPopulations(p, e.Index(), res.Allocation.Rates)
	for j := range consumers {
		if consumers[j] != res.Allocation.Consumers[j] {
			t.Errorf("class %d: standalone %d vs engine %d", j, consumers[j], res.Allocation.Consumers[j])
		}
	}
	if math.Abs(util-res.Utility) > 1e-9*res.Utility {
		t.Errorf("utility %g vs engine %g", util, res.Utility)
	}
}
