package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_mux_total", "Mux test counter.").Add(9)
	snapshotReady := false
	mux := NewMux(reg, func() (any, bool) {
		if !snapshotReady {
			return nil, false
		}
		return map[string]any{"utility": 123.0}, true
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, body := get(t, srv, "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "t_mux_total 9") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	if code, body := get(t, srv, "/snapshot"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "pending") {
		t.Errorf("pending /snapshot = %d: %s", code, body)
	}
	snapshotReady = true
	code, body := get(t, srv, "/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot = %d: %s", code, body)
	}
	var snap map[string]float64
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap["utility"] != 123 {
		t.Errorf("snapshot payload = %q (%v)", body, err)
	}

	if code, body := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, body := get(t, srv, "/debug/vars"); code != http.StatusOK ||
		!strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d:\n%.200s", code, body)
	}
	if code, body := get(t, srv, "/"); code != http.StatusOK ||
		!strings.Contains(body, "/metrics") {
		t.Errorf("index = %d:\n%s", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestMuxNilSnapshotFunc(t *testing.T) {
	srv := httptest.NewServer(NewMux(NewRegistry(), nil))
	defer srv.Close()
	if code, _ := get(t, srv, "/snapshot"); code != http.StatusServiceUnavailable {
		t.Errorf("/snapshot with nil func = %d, want 503", code)
	}
}

func TestListenAndServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_serve_total", "Serve test counter.").Inc()
	s, err := ListenAndServe("127.0.0.1:0", NewMux(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.Contains(s.Addr, ":") {
		t.Fatalf("unresolved addr %q", s.Addr)
	}
	resp, err := http.Get("http://" + s.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "t_serve_total 1") {
		t.Errorf("served metrics:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}
