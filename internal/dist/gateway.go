package dist

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/transport"
)

// DefaultFlushInterval is the gateway epoch length: staged cross-host
// messages are coalesced into one frame per destination host and flushed
// at this cadence.
const DefaultFlushInterval = 200 * time.Microsecond

// gateway multiplexes the agents of one simulated host onto a single
// network endpoint. Agent sends to co-located agents are delivered
// directly (no wire traffic at all); sends to remote agents and the
// collector are staged per destination endpoint and flushed as one batch
// frame per epoch, so a round costs one frame per host pair instead of
// one per agent pair. Inbound batch frames are demultiplexed back to the
// per-agent ports.
type gateway struct {
	ep         transport.Endpoint
	wire       transport.Wire
	route      map[string]string // agent endpoint name -> host endpoint name
	coalesce   bool              // keep only the freshest (from,to,kind) per epoch
	flushEvery time.Duration
	tel        *telemetry.DistMetrics
	rec        *recorder

	mu       sync.Mutex
	ports    map[string]*hostPort
	outbox   map[string][]transport.Message
	outIdx   map[string]map[coalesceKey]int // dst -> key -> index into outbox[dst]
	closed   bool
	quit     chan struct{}
	loopDone chan struct{} // flush + demux loops
}

type coalesceKey struct {
	from, to, kind string
}

func newGateway(ep transport.Endpoint, wire transport.Wire, route map[string]string, coalesce bool, flushEvery time.Duration, tel *telemetry.DistMetrics, rec *recorder) *gateway {
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	g := &gateway{
		ep:         ep,
		wire:       wire,
		route:      route,
		coalesce:   coalesce,
		flushEvery: flushEvery,
		tel:        tel,
		rec:        rec,
		ports:      make(map[string]*hostPort),
		outbox:     make(map[string][]transport.Message),
		outIdx:     make(map[string]map[coalesceKey]int),
		quit:       make(chan struct{}),
		loopDone:   make(chan struct{}, 2),
	}
	go g.flushLoop()
	go g.demuxLoop()
	return g
}

// port attaches a local agent to the gateway and returns its endpoint.
func (g *gateway) port(name string) *hostPort {
	p := &hostPort{
		name: name,
		gw:   g,
		in:   make(chan transport.Message, memoryBuffer),
	}
	g.mu.Lock()
	g.ports[name] = p
	g.mu.Unlock()
	return p
}

// memoryBuffer mirrors the in-memory transport's per-endpoint queue depth.
const memoryBuffer = 1024

// send routes one agent message: direct local delivery when the
// destination lives on this host, otherwise staged for the next flush.
func (g *gateway) send(msg transport.Message) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return transport.ErrClosed
	}
	if p, ok := g.ports[msg.To]; ok {
		return p.enqueueLocked(msg)
	}
	dst, ok := g.route[msg.To]
	if !ok {
		return fmt.Errorf("%w: %q", transport.ErrUnknownDest, msg.To)
	}
	if g.coalesce {
		key := coalesceKey{from: msg.From, to: msg.To, kind: msg.Kind}
		if idx, ok := g.outIdx[dst]; ok {
			if i, seen := idx[key]; seen {
				g.outbox[dst][i] = msg // freshest write wins within the epoch
				return nil
			}
		} else {
			g.outIdx[dst] = make(map[coalesceKey]int)
		}
		g.outIdx[dst][key] = len(g.outbox[dst])
	}
	g.outbox[dst] = append(g.outbox[dst], msg)
	return nil
}

func (g *gateway) flushLoop() {
	defer func() { g.loopDone <- struct{}{} }()
	ticker := time.NewTicker(g.flushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			g.flush()
		case <-g.quit:
			g.flush() // drain staged traffic so shutdown ctrl replies are not lost
			return
		}
	}
}

// flush encodes one batch frame per destination with staged traffic and
// sends it. Send failures are tolerated like agent sends: the protocol
// handles loss, and a closed transport surfaces via the demux loop.
func (g *gateway) flush() {
	g.mu.Lock()
	if len(g.outbox) == 0 {
		g.mu.Unlock()
		return
	}
	staged := g.outbox
	g.outbox = make(map[string][]transport.Message)
	for dst := range g.outIdx {
		delete(g.outIdx, dst)
	}
	from := g.ep.Name()
	g.mu.Unlock()

	total := 0
	for dst, msgs := range staged {
		total += len(msgs)
		g.tel.ObserveFlushFrame(len(msgs))
		payload, err := encodeBatch(g.wire, msgs)
		if err != nil {
			continue
		}
		_ = g.ep.Send(transport.Message{From: from, To: dst, Kind: batchKind, Payload: payload})
	}
	g.tel.ObserveFlush(total)
	g.rec.record(EvFlush, 0, int64(total), int64(len(staged)))
}

// demuxLoop unpacks inbound batch frames to the local agent ports. It
// exits when the underlying endpoint closes, closing every port so agents
// observe the shutdown.
func (g *gateway) demuxLoop() {
	defer func() { g.loopDone <- struct{}{} }()
	for {
		select {
		case m, ok := <-g.ep.Recv():
			if !ok {
				g.closePorts()
				return
			}
			if m.Kind != batchKind {
				continue
			}
			inner, err := decodeBatch(m.Payload)
			if err != nil {
				continue
			}
			g.mu.Lock()
			for _, im := range inner {
				if p, ok := g.ports[im.To]; ok {
					_ = p.enqueueLocked(im) // full-buffer drops mirror transport semantics
				}
			}
			g.mu.Unlock()
		case <-g.quit:
			g.closePorts()
			return
		}
	}
}

// close stops the gateway's loops. The underlying endpoint belongs to the
// network owner and is left open.
func (g *gateway) close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.quit)
	<-g.loopDone
	<-g.loopDone
}

// closePorts closes every local port channel. All port sends happen under
// g.mu (see enqueueLocked), so closing under the same lock cannot race a
// send.
func (g *gateway) closePorts() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, p := range g.ports {
		if !p.closed {
			p.closed = true
			close(p.in)
		}
	}
}

// hostPort is one agent's endpoint on a gateway host. It satisfies
// transport.Endpoint so agent code is oblivious to batching.
type hostPort struct {
	name   string
	gw     *gateway
	in     chan transport.Message
	closed bool // guarded by gw.mu
}

var _ transport.Endpoint = (*hostPort)(nil)

// Name implements transport.Endpoint.
func (p *hostPort) Name() string { return p.name }

// Send implements transport.Endpoint.
func (p *hostPort) Send(msg transport.Message) error {
	msg.From = p.name
	return p.gw.send(msg)
}

// Recv implements transport.Endpoint.
func (p *hostPort) Recv() <-chan transport.Message { return p.in }

// Close implements transport.Endpoint. Ports close collectively with
// their gateway; an individual close is a no-op.
func (p *hostPort) Close() error { return nil }

// enqueueLocked delivers into the port buffer. Callers hold gw.mu, which
// also protects the closed flag, so a close cannot race the send.
func (p *hostPort) enqueueLocked(msg transport.Message) error {
	if p.closed {
		return transport.ErrClosed
	}
	select {
	case p.in <- msg:
		return nil
	default:
		return fmt.Errorf("dist: %q inbound buffer full", p.name)
	}
}

// encodeBatch packs whole messages into one payload. The binary layout is
// the concatenation of transport.AppendMessage frames (first byte 'B');
// the JSON layout is a plain message array (first byte '['), so receivers
// distinguish them from the first payload byte.
func encodeBatch(wire transport.Wire, msgs []transport.Message) ([]byte, error) {
	if wire == transport.WireBinary {
		size := 0
		for i := range msgs {
			size += transport.BinarySize(&msgs[i])
		}
		payload := make([]byte, 0, size)
		for i := range msgs {
			payload = transport.AppendMessage(payload, &msgs[i])
		}
		return payload, nil
	}
	payload, err := json.Marshal(msgs)
	if err != nil {
		return nil, fmt.Errorf("dist: encode batch: %w", err)
	}
	return payload, nil
}

// decodeBatch unpacks a batch payload in either layout.
func decodeBatch(payload []byte) ([]transport.Message, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	if payload[0] == '[' {
		var msgs []transport.Message
		if err := json.Unmarshal(payload, &msgs); err != nil {
			return nil, fmt.Errorf("dist: decode batch: %w", err)
		}
		return msgs, nil
	}
	var msgs []transport.Message
	for off := 0; off < len(payload); {
		m, n, err := transport.DecodeMessage(payload[off:])
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m)
		off += n
	}
	return msgs, nil
}
