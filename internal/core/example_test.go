package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
	"repro/internal/workload"
)

// ExampleEngine_Solve optimizes a minimal one-node problem and reports
// the allocation.
func ExampleEngine_Solve() {
	p := &model.Problem{
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: 10, RateMax: 1000}},
		Nodes: []model.Node{{ID: 0, Capacity: 450_000,
			FlowCost: map[model.FlowID]float64{0: 3}}},
		Classes: []model.Class{
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 200,
				CostPerConsumer: 19, Utility: utility.NewLog(40)},
			{ID: 1, Flow: 0, Node: 0, MaxConsumers: 3000,
				CostPerConsumer: 19, Utility: utility.NewLog(4)},
		},
	}
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	res := e.Solve(250)
	fmt.Printf("converged=%v rate=%.1f premium=%d public=%d\n",
		res.Converged, res.Allocation.Rates[0],
		res.Allocation.Consumers[0], res.Allocation.Consumers[1])
	// Output:
	// converged=true rate=38.4 premium=200 public=416
}

// ExampleGreedyPopulations runs only the admission half of LRGP at fixed
// rates.
func ExampleGreedyPopulations() {
	p := workload.Base()
	ix := model.NewIndex(p)
	rates := make([]float64, len(p.Flows))
	for i, f := range p.Flows {
		rates[i] = f.RateMin
	}
	consumers, util := core.GreedyPopulations(p, ix, rates)
	total := 0
	for _, n := range consumers {
		total += n
	}
	fmt.Printf("admitted %d consumers, utility %.0f\n", total, util)
	// Output:
	// admitted 14208 consumers, utility 1172187
}
