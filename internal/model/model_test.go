package model

import (
	"errors"
	"testing"

	"repro/internal/utility"
)

// twoNodeProblem builds a small hand-checkable instance:
//
//	flow 0 (rates [1,100]) reaches nodes 0 and 1, one class at each;
//	flow 1 (rates [2,50]) reaches node 1 only, one class there;
//	one link 0->1 carrying both flows.
func twoNodeProblem() *Problem {
	return &Problem{
		Name: "test",
		Flows: []Flow{
			{ID: 0, Source: 0, RateMin: 1, RateMax: 100},
			{ID: 1, Source: 1, RateMin: 2, RateMax: 50},
		},
		Nodes: []Node{
			{ID: 0, Capacity: 1000, FlowCost: map[FlowID]float64{0: 2}},
			{ID: 1, Capacity: 2000, FlowCost: map[FlowID]float64{0: 3, 1: 4}},
		},
		Links: []Link{
			{ID: 0, From: 0, To: 1, Capacity: 500, FlowCost: map[FlowID]float64{0: 1, 1: 2}},
		},
		Classes: []Class{
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 10, CostPerConsumer: 5, Utility: utility.NewLog(10)},
			{ID: 1, Flow: 0, Node: 1, MaxConsumers: 20, CostPerConsumer: 6, Utility: utility.NewLog(20)},
			{ID: 2, Flow: 1, Node: 1, MaxConsumers: 30, CostPerConsumer: 7, Utility: utility.NewPower(5, 0.5)},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := Validate(twoNodeProblem()); err != nil {
		t.Fatalf("Validate(valid problem) = %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Problem)
	}{
		{"no flows", func(p *Problem) { p.Flows = nil }},
		{"no nodes", func(p *Problem) { p.Nodes = nil }},
		{"no classes", func(p *Problem) { p.Classes = nil }},
		{"flow id mismatch", func(p *Problem) { p.Flows[1].ID = 7 }},
		{"flow source out of range", func(p *Problem) { p.Flows[0].Source = 9 }},
		{"zero rate min", func(p *Problem) { p.Flows[0].RateMin = 0 }},
		{"rate min above max", func(p *Problem) { p.Flows[0].RateMin = 200 }},
		{"class id mismatch", func(p *Problem) { p.Classes[2].ID = 0 }},
		{"class flow out of range", func(p *Problem) { p.Classes[0].Flow = 5 }},
		{"class node out of range", func(p *Problem) { p.Classes[0].Node = 5 }},
		{"negative max consumers", func(p *Problem) { p.Classes[0].MaxConsumers = -1 }},
		{"zero consumer cost", func(p *Problem) { p.Classes[0].CostPerConsumer = 0 }},
		{"nil utility", func(p *Problem) { p.Classes[0].Utility = nil }},
		{"class where flow absent", func(p *Problem) { p.Classes[2].Node = 0 }},
		{"node id mismatch", func(p *Problem) { p.Nodes[1].ID = 0 }},
		{"zero node capacity", func(p *Problem) { p.Nodes[0].Capacity = 0 }},
		{"node cost unknown flow", func(p *Problem) { p.Nodes[0].FlowCost[9] = 1 }},
		{"node cost non-positive", func(p *Problem) { p.Nodes[0].FlowCost[0] = 0 }},
		{"link id mismatch", func(p *Problem) { p.Links[0].ID = 3 }},
		{"link endpoint out of range", func(p *Problem) { p.Links[0].To = 9 }},
		{"link self loop", func(p *Problem) { p.Links[0].To = p.Links[0].From }},
		{"zero link capacity", func(p *Problem) { p.Links[0].Capacity = 0 }},
		{"link cost unknown flow", func(p *Problem) { p.Links[0].FlowCost[9] = 1 }},
		{"link cost non-positive", func(p *Problem) { p.Links[0].FlowCost[0] = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := twoNodeProblem()
			tt.mutate(p)
			if err := Validate(p); !errors.Is(err, ErrInvalid) {
				t.Errorf("Validate() = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestIndexLookups(t *testing.T) {
	p := twoNodeProblem()
	ix := NewIndex(p)

	if got := ix.ClassesByFlow(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ClassesByFlow(0) = %v", got)
	}
	if got := ix.ClassesByFlow(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("ClassesByFlow(1) = %v", got)
	}
	if got := ix.ClassesByNode(1); len(got) != 2 {
		t.Errorf("ClassesByNode(1) = %v", got)
	}
	if got := ix.FlowsByNode(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("FlowsByNode(0) = %v", got)
	}
	if got := ix.FlowsByNode(1); len(got) != 2 {
		t.Errorf("FlowsByNode(1) = %v", got)
	}
	if got := ix.FlowsByLink(0); len(got) != 2 {
		t.Errorf("FlowsByLink(0) = %v", got)
	}
	if got := ix.NodesByFlow(0); len(got) != 2 {
		t.Errorf("NodesByFlow(0) = %v", got)
	}
	if got := ix.LinksByFlow(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("LinksByFlow(1) = %v", got)
	}
	if ix.Problem() != p {
		t.Error("Index.Problem() mismatch")
	}
}

func TestTotalUtility(t *testing.T) {
	p := twoNodeProblem()
	a := NewAllocation(p)
	if got := TotalUtility(p, a); got != 0 {
		t.Errorf("utility with no consumers = %g, want 0", got)
	}
	a.Rates = []float64{10, 25}
	a.Consumers = []int{2, 0, 3}
	want := 2*p.Classes[0].Utility.Value(10) + 3*p.Classes[2].Utility.Value(25)
	if got := TotalUtility(p, a); got != want {
		t.Errorf("TotalUtility = %g, want %g", got, want)
	}
}

func TestUsageAndFeasibility(t *testing.T) {
	p := twoNodeProblem()
	ix := NewIndex(p)
	a := Allocation{Rates: []float64{10, 20}, Consumers: []int{1, 2, 3}}

	// Node 0: F=2*10 + class0: 5*1*10 = 70.
	if got := NodeUsage(p, ix, a, 0); got != 70 {
		t.Errorf("NodeUsage(0) = %g, want 70", got)
	}
	// Node 1: 3*10 + 4*20 + 6*2*10 + 7*3*20 = 30+80+120+420 = 650.
	if got := NodeUsage(p, ix, a, 1); got != 650 {
		t.Errorf("NodeUsage(1) = %g, want 650", got)
	}
	if got := NodeFlowUsage(p, ix, a, 1); got != 110 {
		t.Errorf("NodeFlowUsage(1) = %g, want 110", got)
	}
	// Link 0: 1*10 + 2*20 = 50.
	if got := LinkUsage(p, ix, a, 0); got != 50 {
		t.Errorf("LinkUsage(0) = %g, want 50", got)
	}
	if err := CheckFeasible(p, ix, a, 0); err != nil {
		t.Errorf("CheckFeasible = %v, want nil", err)
	}
}

func TestCheckFeasibleViolations(t *testing.T) {
	p := twoNodeProblem()
	ix := NewIndex(p)
	base := Allocation{Rates: []float64{10, 20}, Consumers: []int{1, 2, 3}}

	tests := []struct {
		name   string
		mutate func(*Allocation)
	}{
		{"wrong shape", func(a *Allocation) { a.Rates = a.Rates[:1] }},
		{"rate below min", func(a *Allocation) { a.Rates[0] = 0.5 }},
		{"rate above max", func(a *Allocation) { a.Rates[1] = 51 }},
		{"negative population", func(a *Allocation) { a.Consumers[0] = -1 }},
		{"population above max", func(a *Allocation) { a.Consumers[0] = 11 }},
		{"link overload", func(a *Allocation) { a.Rates = []float64{100, 50} }},
		{"node overload", func(a *Allocation) { a.Consumers[2] = 30; a.Rates[1] = 50 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := base.Clone()
			tt.mutate(&a)
			if err := CheckFeasible(p, ix, a, 0); !errors.Is(err, ErrInfeasible) {
				t.Errorf("CheckFeasible = %v, want ErrInfeasible", err)
			}
		})
	}
}

func TestCheckFeasibleTolerance(t *testing.T) {
	p := twoNodeProblem()
	ix := NewIndex(p)
	a := Allocation{Rates: []float64{100.0000001, 2}, Consumers: []int{0, 0, 0}}
	if err := CheckFeasible(p, ix, a, 1e-6); err != nil {
		t.Errorf("CheckFeasible with tolerance = %v, want nil", err)
	}
	if err := CheckFeasible(p, ix, a, 0); err == nil {
		t.Error("CheckFeasible without tolerance accepted violation")
	}
}

func TestNewAllocation(t *testing.T) {
	p := twoNodeProblem()
	a := NewAllocation(p)
	if a.Rates[0] != 1 || a.Rates[1] != 2 {
		t.Errorf("rates = %v, want rate minimums", a.Rates)
	}
	for j, n := range a.Consumers {
		if n != 0 {
			t.Errorf("consumers[%d] = %d, want 0", j, n)
		}
	}
}

func TestAllocationClone(t *testing.T) {
	a := Allocation{Rates: []float64{1, 2}, Consumers: []int{3, 4}}
	b := a.Clone()
	b.Rates[0] = 99
	b.Consumers[0] = 99
	if a.Rates[0] != 1 || a.Consumers[0] != 3 {
		t.Error("Clone aliases underlying arrays")
	}
}

func TestProblemClone(t *testing.T) {
	p := twoNodeProblem()
	q := p.Clone()
	q.Nodes[0].FlowCost[0] = 99
	q.Links[0].FlowCost[0] = 99
	q.Flows[0].RateMax = 7
	if p.Nodes[0].FlowCost[0] == 99 || p.Links[0].FlowCost[0] == 99 || p.Flows[0].RateMax == 7 {
		t.Error("Clone aliases underlying maps or slices")
	}
	if err := Validate(q); err != nil {
		t.Errorf("clone does not validate: %v", err)
	}
}
