package overlay

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

// randomRouterWorkload builds a random heterogeneous topology and a flow
// population with subscribers spread over it.
func randomRouterWorkload(rng *rand.Rand, nodes, nFlows, subsPerFlow int) (*Topology, []float64, []FlowSpec) {
	tp := RandomTopologyHetero(rng, nodes, 2, 1e5, 1e6)
	caps := make([]float64, nodes)
	for b := range caps {
		caps[b] = 5e4 + rng.Float64()*1e5
	}
	flows := make([]FlowSpec, nFlows)
	for fi := range flows {
		fs := FlowSpec{
			Name:     "f" + string(rune('a'+fi%26)) + string(rune('0'+fi/26)),
			Source:   model.NodeID(rng.Intn(nodes)),
			RateMin:  1,
			RateMax:  100,
			LinkCost: 1,
			NodeCost: 2,
		}
		for s := 0; s < subsPerFlow; s++ {
			fs.Classes = append(fs.Classes, ClassSpec{
				Name:            "c",
				Node:            model.NodeID(rng.Intn(nodes)),
				MaxConsumers:    10 + rng.Intn(50),
				CostPerConsumer: 5,
				Utility:         utility.NewLog(1 + rng.Float64()*20),
			})
		}
		flows[fi] = fs
	}
	return tp, caps, flows
}

// sameSlice reports whether two slices share identity (same backing
// array and length) — the no-spurious-reroute guarantee.
func sameSlice[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// checkRouterInvariants verifies that every Router tree equals a
// from-scratch BuildTree over the mutated topology, and that the problem
// coefficients and reverse indexes mirror the trees exactly.
func checkRouterInvariants(t *testing.T, r *Router) {
	t.Helper()
	p := r.Problem()
	var subs []model.NodeID
	for fi := range p.Flows {
		subs = subs[:0]
		off := r.classOff[fi]
		for k, cs := range r.flows[fi].Classes {
			if !r.pruned[off+k] {
				subs = append(subs, cs.Node)
			}
		}
		want, err := r.Topology().BuildTree(r.flows[fi].Source, subs)
		if err != nil {
			t.Fatalf("from-scratch route of flow %d failed: %v", fi, err)
		}
		got := r.Tree(model.FlowID(fi))
		if !got.equal(want) {
			t.Fatalf("flow %d tree diverged from from-scratch BuildTree:\n got %+v\nwant %+v", fi, got, want)
		}
		// Coefficients mirror the tree.
		for _, li := range got.Links {
			if p.Links[li].FlowCost[model.FlowID(fi)] != r.flows[fi].LinkCost {
				t.Fatalf("flow %d link %d missing/incorrect cost", fi, li)
			}
		}
		for _, b := range got.Nodes {
			if p.Nodes[b].FlowCost[model.FlowID(fi)] != r.flows[fi].NodeCost {
				t.Fatalf("flow %d node %d missing/incorrect cost", fi, b)
			}
		}
	}
	// No stray coefficients or index entries beyond the trees.
	nLink, nNode := 0, 0
	for li := range p.Links {
		nLink += len(p.Links[li].FlowCost)
		if len(p.Links[li].FlowCost) != len(r.FlowsThroughLink(li)) {
			t.Fatalf("link %d: %d coefficients vs %d indexed flows", li, len(p.Links[li].FlowCost), len(r.FlowsThroughLink(li)))
		}
	}
	for b := range p.Nodes {
		nNode += len(p.Nodes[b].FlowCost)
		if len(p.Nodes[b].FlowCost) != len(r.FlowsThroughNode(model.NodeID(b))) {
			t.Fatalf("node %d: %d coefficients vs %d indexed flows", b, len(p.Nodes[b].FlowCost), len(r.FlowsThroughNode(model.NodeID(b))))
		}
	}
	wantLink, wantNode := 0, 0
	for fi := range p.Flows {
		wantLink += len(r.Tree(model.FlowID(fi)).Links)
		wantNode += len(r.Tree(model.FlowID(fi)).Nodes)
	}
	if nLink != wantLink || nNode != wantNode {
		t.Fatalf("coefficient totals (links %d, nodes %d) != tree totals (%d, %d)", nLink, nNode, wantLink, wantNode)
	}
}

// expectIndexEqual compares every accessor of got against a freshly built
// index over the same problem.
func expectIndexEqual(t *testing.T, p *model.Problem, got *model.Index) {
	t.Helper()
	want := model.NewIndex(p)
	for i := range p.Flows {
		fid := model.FlowID(i)
		if !equalIDs(got.NodesByFlow(fid), want.NodesByFlow(fid)) {
			t.Fatalf("flow %d NodesByFlow: got %v want %v", i, got.NodesByFlow(fid), want.NodesByFlow(fid))
		}
		if !equalIDs(got.LinksByFlow(fid), want.LinksByFlow(fid)) {
			t.Fatalf("flow %d LinksByFlow: got %v want %v", i, got.LinksByFlow(fid), want.LinksByFlow(fid))
		}
		if !equalFloats(got.NodeCostsByFlow(fid), want.NodeCostsByFlow(fid)) {
			t.Fatalf("flow %d NodeCostsByFlow mismatch", i)
		}
		if !equalFloats(got.LinkCostsByFlow(fid), want.LinkCostsByFlow(fid)) {
			t.Fatalf("flow %d LinkCostsByFlow mismatch", i)
		}
		g, w := got.ClassesByFlowNode(fid), want.ClassesByFlowNode(fid)
		if len(g) != len(w) {
			t.Fatalf("flow %d ClassesByFlowNode length %d != %d", i, len(g), len(w))
		}
		for k := range g {
			if !equalIDs(g[k], w[k]) {
				t.Fatalf("flow %d ClassesByFlowNode[%d]: got %v want %v", i, k, g[k], w[k])
			}
		}
	}
	for b := range p.Nodes {
		bid := model.NodeID(b)
		if !equalIDs(got.FlowsByNode(bid), want.FlowsByNode(bid)) {
			t.Fatalf("node %d FlowsByNode: got %v want %v", b, got.FlowsByNode(bid), want.FlowsByNode(bid))
		}
		if !equalFloats(got.FlowCostsByNode(bid), want.FlowCostsByNode(bid)) {
			t.Fatalf("node %d FlowCostsByNode mismatch", b)
		}
	}
	for l := range p.Links {
		lid := model.LinkID(l)
		if !equalIDs(got.FlowsByLink(lid), want.FlowsByLink(lid)) {
			t.Fatalf("link %d FlowsByLink: got %v want %v", l, got.FlowsByLink(lid), want.FlowsByLink(lid))
		}
		if !equalFloats(got.FlowCostsByLink(lid), want.FlowCostsByLink(lid)) {
			t.Fatalf("link %d FlowCostsByLink mismatch", l)
		}
	}
}

func equalIDs[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool { return equalIDs(a, b) }

// TestRouterRepairProperty drives a Router through a random sequence of
// link kills and restores, checking after every event that (1) all trees
// match from-scratch BuildTree on the mutated topology, (2) flows not
// indexed to a killed link keep their tree slices verbatim, (3) repair
// stats report exactly the indexed flows, and (4) RefreshRouting keeps a
// live index equal to a fresh NewIndex.
func TestRouterRepairProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tp, caps, flows := randomRouterWorkload(rng, 60, 8, 3)
	r, err := NewRouter(tp, caps, flows)
	if err != nil {
		t.Fatal(err)
	}
	checkRouterInvariants(t, r)
	ix := model.NewIndex(r.Problem())
	r.TakeDelta() // construction accumulates nothing, but start clean

	var dead []int
	for ev := 0; ev < 60; ev++ {
		restore := len(dead) > 0 && rng.Intn(3) == 0
		if restore {
			k := rng.Intn(len(dead))
			li := dead[k]
			st, err := r.RestoreLink(li)
			if err != nil {
				t.Fatalf("event %d: restore link %d: %v", ev, li, err)
			}
			if st.Affected != len(flows) {
				t.Fatalf("event %d: restore affected %d, want full sweep %d", ev, st.Affected, len(flows))
			}
			dead = append(dead[:k], dead[k+1:]...)
		} else {
			li := rng.Intn(tp.LinkCount())
			if !tp.LinkAlive(li) {
				continue
			}
			indexed := append([]int32(nil), r.FlowsThroughLink(li)...)
			before := make([]Tree, len(flows))
			for fi := range flows {
				before[fi] = r.Tree(model.FlowID(fi))
			}
			st, err := r.RepairLink(li)
			if errors.Is(err, ErrNoPath) {
				// Atomic failure: link back up, nothing moved.
				if !tp.LinkAlive(li) {
					t.Fatalf("event %d: failed repair left link %d dead", ev, li)
				}
				for fi := range flows {
					cur := r.Tree(model.FlowID(fi))
					if !sameSlice(before[fi].Links, cur.Links) || !sameSlice(before[fi].Nodes, cur.Nodes) {
						t.Fatalf("event %d: failed repair mutated flow %d tree", ev, fi)
					}
				}
				continue
			}
			if err != nil {
				t.Fatalf("event %d: repair link %d: %v", ev, li, err)
			}
			if st.Affected != len(indexed) {
				t.Fatalf("event %d: repair affected %d flows, reverse index had %d", ev, st.Affected, len(indexed))
			}
			touched := make(map[int]bool, len(indexed))
			for _, fi := range indexed {
				touched[int(fi)] = true
			}
			for fi := range flows {
				cur := r.Tree(model.FlowID(fi))
				if touched[fi] {
					continue
				}
				if !sameSlice(before[fi].Links, cur.Links) || !sameSlice(before[fi].Nodes, cur.Nodes) {
					t.Fatalf("event %d: unaffected flow %d was re-routed (spurious)", ev, fi)
				}
			}
			dead = append(dead, li)
		}
		checkRouterInvariants(t, r)
		if err := ix.RefreshRouting(r.Problem(), r.TakeDelta()); err != nil {
			t.Fatalf("event %d: RefreshRouting: %v", ev, err)
		}
		expectIndexEqual(t, r.Problem(), ix)
	}
}

// TestRouterRepairNodeProperty exercises node kills and restores.
func TestRouterRepairNodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tp, caps, flows := randomRouterWorkload(rng, 50, 6, 2)
	r, err := NewRouter(tp, caps, flows)
	if err != nil {
		t.Fatal(err)
	}
	ix := model.NewIndex(r.Problem())

	// Nodes hosting a source or subscriber are not repairable; collect the
	// rest as candidates.
	anchored := make([]bool, tp.NodeCount())
	for _, fs := range flows {
		anchored[fs.Source] = true
		for _, cs := range fs.Classes {
			anchored[cs.Node] = true
		}
	}
	var deadNode model.NodeID = -1
	events := 0
	for ev := 0; ev < 200 && events < 30; ev++ {
		if deadNode >= 0 {
			st, err := r.RestoreNode(deadNode)
			if err != nil {
				t.Fatalf("restore node %d: %v", deadNode, err)
			}
			if st.Kind != "node-restore" {
				t.Fatalf("stats kind = %q", st.Kind)
			}
			deadNode = -1
		} else {
			b := model.NodeID(rng.Intn(tp.NodeCount()))
			if anchored[b] || !tp.NodeAlive(b) {
				continue
			}
			indexed := len(r.FlowsThroughNode(b))
			st, err := r.RepairNode(b)
			if errors.Is(err, ErrNoPath) {
				if !tp.NodeAlive(b) {
					t.Fatalf("failed node repair left node %d dead", b)
				}
				continue
			}
			if err != nil {
				t.Fatalf("repair node %d: %v", b, err)
			}
			if st.Affected != indexed {
				t.Fatalf("node repair affected %d, index had %d", st.Affected, indexed)
			}
			deadNode = b
		}
		events++
		checkRouterInvariants(t, r)
		if err := ix.RefreshRouting(r.Problem(), r.TakeDelta()); err != nil {
			t.Fatalf("RefreshRouting: %v", err)
		}
		expectIndexEqual(t, r.Problem(), ix)
	}
	if events < 10 {
		t.Fatalf("only %d churn events exercised", events)
	}
}

// TestBuildTreeErrNoPathAfterNodeRemoval covers the satellite error path:
// removing a relay node disconnects a subscriber, and BuildTree reports
// which subscriber with ErrNoPath.
func TestBuildTreeErrNoPathAfterNodeRemoval(t *testing.T) {
	tp := Line(4, 1000)
	if err := tp.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	_, err := tp.BuildTree(0, []model.NodeID{3})
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
	if !strings.Contains(err.Error(), "subscriber 3") {
		t.Fatalf("error %q does not name the unreachable subscriber", err)
	}

	// Build surfaces it with the flow context.
	flows := []FlowSpec{{
		Name: "f0", Source: 0, RateMin: 1, RateMax: 10, LinkCost: 1, NodeCost: 1,
		Classes: []ClassSpec{{Name: "c0", Node: 3, MaxConsumers: 5, CostPerConsumer: 1, Utility: utility.NewLog(1)}},
	}}
	_, err = Build(tp, 1000, flows)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("Build err = %v, want ErrNoPath", err)
	}
	if !strings.Contains(err.Error(), "flow 0 (f0)") || !strings.Contains(err.Error(), "subscriber 3") {
		t.Fatalf("Build error %q lacks flow/subscriber context", err)
	}
}

// TestRepairNodeRejectsAnchors: a node hosting a flow source or an
// unpruned subscriber cannot be repaired away; the failure is atomic.
func TestRepairNodeRejectsAnchors(t *testing.T) {
	tp := Line(4, 1000)
	caps := uniformCaps(4, 1000)
	flows := buildSpec()
	r, err := NewRouter(tp, caps, flows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RepairNode(0); err == nil || !strings.Contains(err.Error(), "sourced there") {
		t.Fatalf("repairing source node: err = %v", err)
	}
	if !tp.NodeAlive(0) {
		t.Fatal("failed repair left source node dead")
	}
	if _, err := r.RepairNode(2); err == nil || !strings.Contains(err.Error(), "subscribes there") {
		t.Fatalf("repairing subscriber node: err = %v", err)
	}
	if !tp.NodeAlive(2) {
		t.Fatal("failed repair left subscriber node dead")
	}
}

// TestTwoStageReSolveMatchesCold: the re-entrant two-stage solve on the
// prune scenario prunes the same classes and reaches the same stage-2
// utility as the cold TwoStageSolve, without rebuilding problem or engine.
func TestTwoStageReSolveMatchesCold(t *testing.T) {
	iters := 4000
	cfg := core.Config{Workers: 1}

	topo, capacity, flows := pruneScenario()
	cold, err := TwoStageSolve(topo, capacity, flows, cfg, iters)
	if err != nil {
		t.Fatal(err)
	}

	topo2, _, _ := pruneScenario()
	r, err := NewRouter(topo2, uniformCaps(topo2.NodeCount(), capacity), flows)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(r.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	warm, err := TwoStageReSolve(r, eng, iters)
	if err != nil {
		t.Fatal(err)
	}

	if warm.PrunedClasses != cold.PrunedClasses {
		t.Fatalf("pruned %d classes, cold path pruned %d", warm.PrunedClasses, cold.PrunedClasses)
	}
	if warm.PrunedClasses == 0 {
		t.Fatal("scenario pruned nothing; test is vacuous")
	}
	// Same final objective, within convergence tolerance (both stage-2
	// problems describe identical routing; the warm path just starts from
	// stage-1 prices).
	rel := (warm.Stage2.Result.Utility - cold.Stage2.Result.Utility) / cold.Stage2.Result.Utility
	if rel < -1e-3 || rel > 1e-3 {
		t.Fatalf("stage-2 utility %g vs cold %g (rel %g)", warm.Stage2.Result.Utility, cold.Stage2.Result.Utility, rel)
	}
	if warm.UtilityGain <= 0 {
		t.Fatalf("pruning gained %g utility, want > 0", warm.UtilityGain)
	}
	// The hot flow's tree shrank to the near class only.
	if got := len(r.Tree(0).Nodes); got != 2 {
		t.Fatalf("hot tree spans %d nodes after prune, want 2", got)
	}
}

// TestResetRoutingWorkersBitIdentical: after a repair + ResetRouting, the
// serial and sharded engines stay bit-identical — this fails if
// ResetRouting forgets to rebuild the stage plan for the new routing.
func TestResetRoutingWorkersBitIdentical(t *testing.T) {
	run := func(workers int) model.Allocation {
		rng := rand.New(rand.NewSource(23))
		tp, caps, flows := randomRouterWorkload(rng, 80, 10, 3)
		r, err := NewRouter(tp, caps, flows)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(r.Problem(), core.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		eng.Solve(200)

		// Kill the first link some flow uses.
		for li := 0; li < tp.LinkCount(); li++ {
			if len(r.FlowsThroughLink(li)) == 0 {
				continue
			}
			if _, err := r.RepairLink(li); err == nil {
				break
			}
		}
		if err := eng.ResetRouting(r.Problem(), r.TakeDelta()); err != nil {
			t.Fatal(err)
		}
		eng.Solve(200)
		return eng.Allocation()
	}

	serial := run(1)
	sharded := run(4)
	if !equalFloats(serial.Rates, sharded.Rates) {
		t.Fatalf("rates diverge between worker counts:\nserial  %v\nsharded %v", serial.Rates, sharded.Rates)
	}
	if !equalIDs(serial.Consumers, sharded.Consumers) {
		t.Fatalf("consumers diverge between worker counts:\nserial  %v\nsharded %v", serial.Consumers, sharded.Consumers)
	}
}
