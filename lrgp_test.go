package repro_test

import (
	"testing"
	"time"

	"repro"
)

// TestPublicAPIEndToEnd drives the whole library through the public
// facade only: build a problem, optimize, verify, enact, distribute.
func TestPublicAPIEndToEnd(t *testing.T) {
	problem := &repro.Problem{
		Name: "facade",
		Flows: []repro.Flow{
			{ID: 0, Source: 0, RateMin: 10, RateMax: 1000},
		},
		Nodes: []repro.Node{
			{ID: 0, Capacity: 450_000, FlowCost: map[repro.FlowID]float64{0: 3}},
		},
		Classes: []repro.Class{
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 200,
				CostPerConsumer: 19, Utility: repro.NewLogUtility(40)},
			{ID: 1, Flow: 0, Node: 0, MaxConsumers: 3000,
				CostPerConsumer: 19, Utility: repro.NewLogUtility(4)},
		},
	}
	if err := repro.Validate(problem); err != nil {
		t.Fatal(err)
	}

	engine, err := repro.NewEngine(problem, repro.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	result := engine.Solve(250)
	if !result.Converged || result.Utility <= 0 {
		t.Fatalf("solve: converged=%v utility=%g", result.Converged, result.Utility)
	}
	ix := repro.NewIndex(problem)
	if err := repro.CheckFeasible(problem, ix, result.Allocation, 1e-9); err != nil {
		t.Fatal(err)
	}
	if got := repro.TotalUtility(problem, result.Allocation); got != result.Utility {
		t.Errorf("utility mismatch: %g vs %g", got, result.Utility)
	}

	// Enact in a broker.
	b, err := repro.NewBroker(problem)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	if _, err := b.AttachConsumer(0, nil, func(repro.Message) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyAllocation(result.Allocation); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(0, map[string]float64{"v": 1}, "x"); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Errorf("delivered = %d", delivered)
	}

	// Distribute over the in-memory transport and compare trajectories.
	net := repro.NewMemoryNetwork()
	defer net.Close()
	cluster, err := repro.NewCluster(repro.BaseWorkload(), repro.ClusterConfig{
		Core: repro.Config{Adaptive: true},
		Mode: repro.SyncMode,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.Run(10, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 10 || stats[9].Utility <= 0 {
		t.Errorf("cluster stats: %+v", stats)
	}
}

// TestPublicAPIBaselines exercises the baselines through the facade.
func TestPublicAPIBaselines(t *testing.T) {
	tiny, err := repro.ParseWorkload("tiny", 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := repro.BruteForceSolve(tiny, 15)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Utility <= 0 {
		t.Errorf("brute force utility = %g", truth.Utility)
	}

	sa, err := repro.AnnealSolveRatesGreedy(repro.BaseWorkload(),
		repro.AnnealConfig{MaxSteps: 5000, Seed: 1, StartTemp: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sa.BestUtility <= 0 {
		t.Errorf("anneal utility = %g", sa.BestUtility)
	}
}

// TestPublicAPIMultirate exercises the multirate extension.
func TestPublicAPIMultirate(t *testing.T) {
	e, err := repro.NewMultirateEngine(repro.BaseWorkload(), repro.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(300)
	if res.Utility <= 0 {
		t.Errorf("multirate utility = %g", res.Utility)
	}
}
