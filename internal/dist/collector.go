package dist

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// collector aggregates rate announcements and node reports into a global
// view: per-round utilities in Sync mode, latest-state utility samples in
// Async mode.
type collector struct {
	p     *model.Problem
	ep    transport.Endpoint
	tel   *telemetry.DistMetrics
	rec   *recorder
	epoch time.Time

	// progress counts every absorbed message and lastFinal holds the
	// highest finalized round; the stall detector polls both without
	// taking mu.
	progress  atomic.Uint64
	lastFinal atomic.Int64

	mu sync.Mutex
	// latest state (both modes). deliveries[j] < 0 means "no per-class
	// delivery reported": the class receives at its flow's rate.
	rates      []float64
	consumers  []int
	deliveries []float64
	active     []bool
	// sync-mode round assembly. reportSeen tracks reporting nodes as a
	// set, not a count, so resent reports (bounded-staleness mode) are
	// deduplicated. activeCount and roundGot (rates recorded per round
	// from currently-active flows) are maintained incrementally so the
	// per-message completeness check is O(1) — a full scan per message is
	// what melts the collector on thousand-agent clusters.
	roundRates  map[int]map[model.FlowID]float64
	roundPops   map[int]map[model.ClassID]int
	roundDel    map[int]map[model.ClassID]float64
	reportSeen  map[int]map[model.NodeID]bool
	activeCount int
	roundGot    map[int]int
	nodesTotal  int
	// Observability state: the frontier (freshest round seen in any
	// message), per-agent latest rounds (for the effective-staleness
	// scan at finalize; a node still at 0 never reports and is skipped),
	// and each pending round's first-input timestamp.
	frontier   int
	latestFlow []int
	latestNode []int
	roundFirst map[int]int64
	stats      []RoundStats
	// inOrder finalizes rounds strictly sequentially (the lossless
	// barrier protocol). When false (bounded-staleness mode over lossy
	// transports) any fully-assembled round finalizes, and rounds whose
	// frames were lost are simply skipped.
	inOrder      bool
	nextComplete int
	completed    map[int]bool // skip mode only
	waiters      []roundWaiter
	samples      int

	done chan struct{}
}

type roundWaiter struct {
	round int
	ch    chan struct{}
}

// newCollector builds the collector. nodesTotal must be the number of
// node agents that actually report each round: nodes reached by at least
// one flow or owning at least one link with flows (a node with neither
// never computes).
func newCollector(p *model.Problem, ep transport.Endpoint, nodesTotal int, inOrder bool, tel *telemetry.DistMetrics, rec *recorder, epoch time.Time) *collector {
	c := &collector{
		p:            p,
		ep:           ep,
		tel:          tel,
		rec:          rec,
		epoch:        epoch,
		latestFlow:   make([]int, len(p.Flows)),
		latestNode:   make([]int, len(p.Nodes)),
		roundFirst:   make(map[int]int64),
		rates:        make([]float64, len(p.Flows)),
		consumers:    make([]int, len(p.Classes)),
		deliveries:   make([]float64, len(p.Classes)),
		active:       make([]bool, len(p.Flows)),
		roundRates:   make(map[int]map[model.FlowID]float64),
		roundPops:    make(map[int]map[model.ClassID]int),
		roundDel:     make(map[int]map[model.ClassID]float64),
		reportSeen:   make(map[int]map[model.NodeID]bool),
		roundGot:     make(map[int]int),
		activeCount:  len(p.Flows),
		nodesTotal:   nodesTotal,
		inOrder:      inOrder,
		nextComplete: 1,
		completed:    make(map[int]bool),
		done:         make(chan struct{}),
	}
	for i := range c.active {
		c.active[i] = true
	}
	for j := range c.deliveries {
		c.deliveries[j] = -1
	}
	return c
}

func (c *collector) run() {
	defer close(c.done)
	for m := range c.ep.Recv() {
		if !c.handle(m) {
			return
		}
	}
}

// handle dispatches one message (or, for batch frames, each inner
// message), returning false on Stop.
func (c *collector) handle(m transport.Message) bool {
	switch m.Kind {
	case batchKind:
		inner, err := decodeBatch(m.Payload)
		if err != nil {
			return true
		}
		for _, im := range inner {
			if !c.handle(im) {
				return false
			}
		}
	case ctrlKind:
		cm, err := decodeCtrl(m)
		if err != nil {
			return true
		}
		if cm.Stop {
			return false
		}
	case rateKind:
		rm, err := decodeRate(m)
		if err != nil {
			return true
		}
		c.absorbRate(rm)
	case reportKind:
		rm, err := decodeReport(m)
		if err != nil {
			return true
		}
		c.absorbReport(rm)
	}
	return true
}

// touchRoundLocked maintains the frontier, the per-flow/node latest
// rounds, and a pending round's first-input timestamp.
func (c *collector) touchRoundLocked(round int) {
	if round > c.frontier {
		c.frontier = round
	}
	if _, ok := c.roundFirst[round]; !ok {
		c.roundFirst[round] = int64(time.Since(c.epoch))
	}
}

func (c *collector) absorbRate(rm rateMsg) {
	c.progress.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if rm.Round > c.latestFlow[rm.Flow] {
		c.latestFlow[rm.Flow] = rm.Round
	}
	c.touchRoundLocked(rm.Round)
	if !rm.Active {
		if c.active[rm.Flow] {
			c.active[rm.Flow] = false
			c.activeCount--
			c.recountPendingLocked()
		}
		c.rates[rm.Flow] = 0
		for j := range c.p.Classes {
			if c.p.Classes[j].Flow == rm.Flow {
				c.consumers[j] = 0
			}
		}
		c.completeRoundsLocked(rm.Round)
		return
	}
	if !c.active[rm.Flow] { // a rejoining flow becomes active again
		c.active[rm.Flow] = true
		c.activeCount++
		c.recountPendingLocked()
	}
	c.rates[rm.Flow] = rm.Rate
	if c.roundRates[rm.Round] == nil {
		c.roundRates[rm.Round] = make(map[model.FlowID]float64)
	}
	if _, seen := c.roundRates[rm.Round][rm.Flow]; !seen {
		c.roundGot[rm.Round]++
	}
	c.roundRates[rm.Round][rm.Flow] = rm.Rate
	c.completeRoundsLocked(rm.Round)
}

// recountPendingLocked rebuilds the per-round active-rate counters after a
// flow's activity flips. Departures and rejoins are rare control events, so
// the full recount stays off the hot path.
func (c *collector) recountPendingLocked() {
	for round, rates := range c.roundRates {
		got := 0
		for i := range rates {
			if c.active[i] {
				got++
			}
		}
		c.roundGot[round] = got
	}
}

func (c *collector) absorbReport(rm reportMsg) {
	c.progress.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if rm.Round > c.latestNode[rm.Node] {
		c.latestNode[rm.Node] = rm.Round
	}
	c.touchRoundLocked(rm.Round)
	for cid, n := range rm.Populations {
		c.consumers[cid] = n
	}
	if c.roundPops[rm.Round] == nil {
		c.roundPops[rm.Round] = make(map[model.ClassID]int)
	}
	for cid, n := range rm.Populations {
		c.roundPops[rm.Round][cid] = n
	}
	if len(rm.Deliveries) > 0 {
		if c.roundDel[rm.Round] == nil {
			c.roundDel[rm.Round] = make(map[model.ClassID]float64)
		}
		for cid, d := range rm.Deliveries {
			c.deliveries[cid] = d
			c.roundDel[rm.Round][cid] = d
		}
	}
	if c.reportSeen[rm.Round] == nil {
		c.reportSeen[rm.Round] = make(map[model.NodeID]bool)
	}
	c.reportSeen[rm.Round][rm.Node] = true
	c.completeRoundsLocked(rm.Round)
}

// completeRoundsLocked finalizes rounds whose full input set has arrived.
// In inOrder mode rounds finalize strictly sequentially from nextComplete;
// in skip mode (bounded staleness over lossy transports) the round just
// touched finalizes independently, since earlier rounds may never
// assemble.
func (c *collector) completeRoundsLocked(touched int) {
	if c.inOrder {
		for c.finalizeLocked(c.nextComplete) {
			c.nextComplete++
		}
		return
	}
	if !c.completed[touched] && c.finalizeLocked(touched) {
		c.completed[touched] = true
	}
}

// finalizeLocked checks completeness of one round and, if complete,
// computes its utility, appends stats, and wakes waiters. It reports
// whether the round was finalized.
func (c *collector) finalizeLocked(round int) bool {
	if c.activeCount == 0 {
		return false
	}
	if c.roundGot[round] < c.activeCount || len(c.reportSeen[round]) < c.nodesTotal {
		return false
	}

	// Utility of the completed round, from the round's own rates,
	// populations and (in multirate mode) per-class deliveries; inactive
	// flows contribute nothing.
	util := 0.0
	rates := c.roundRates[round]
	pops := c.roundPops[round]
	dels := c.roundDel[round]
	for j := range c.p.Classes {
		cl := &c.p.Classes[j]
		n, ok := pops[model.ClassID(j)]
		if !ok || n == 0 || !c.active[cl.Flow] {
			continue
		}
		rate := rates[cl.Flow]
		if d, ok := dels[model.ClassID(j)]; ok {
			rate = d
		}
		util += float64(n) * cl.Utility.Value(rate)
	}
	c.stats = append(c.stats, RoundStats{Round: round, Utility: util})

	// Observability: effective staleness (frontier minus the slowest
	// active agent), finalize lag, and the round's assembly time. The
	// O(flows+nodes) slowest-agent scan runs once per finalized round,
	// not per message, so it stays off the absorb hot path.
	c.lastFinal.Store(int64(round))
	if c.tel != nil || c.rec != nil {
		slowest := c.frontier
		for i, r := range c.latestFlow {
			if c.active[i] && r < slowest {
				slowest = r
			}
		}
		for _, r := range c.latestNode {
			if r > 0 && r < slowest { // nodes at 0 never report (silent)
				slowest = r
			}
		}
		assembly := int64(time.Since(c.epoch)) - c.roundFirst[round]
		c.tel.ObserveFinalize(c.frontier-slowest, c.frontier-round, assembly)
		c.rec.record(EvRound, round, int64(c.frontier-slowest), assembly)
	}
	delete(c.roundFirst, round)
	delete(c.roundRates, round)
	delete(c.roundPops, round)
	delete(c.roundDel, round)
	delete(c.reportSeen, round)
	delete(c.roundGot, round)

	var still []roundWaiter
	for _, w := range c.waiters {
		if c.waiterSatisfiedLocked(w, round) {
			close(w.ch)
		} else {
			still = append(still, w)
		}
	}
	c.waiters = still
	return true
}

// waiterSatisfiedLocked reports whether finalizing `round` releases w: in
// inOrder mode every round up to w.round has then completed; in skip mode
// the waited-for round itself must finalize (earlier ones may never).
func (c *collector) waiterSatisfiedLocked(w roundWaiter, round int) bool {
	if c.inOrder {
		return round >= w.round
	}
	return round == w.round || c.completed[w.round]
}

// waitRound blocks until the given round has been finalized.
func (c *collector) waitRound(round int, timeout time.Duration) error {
	c.mu.Lock()
	if (c.inOrder && c.nextComplete > round) || (!c.inOrder && c.completed[round]) {
		c.mu.Unlock()
		return nil
	}
	w := roundWaiter{round: round, ch: make(chan struct{})}
	c.waiters = append(c.waiters, w)
	c.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-c.done:
		return fmt.Errorf("dist: collector stopped before round %d", round)
	case <-time.After(timeout):
		return fmt.Errorf("dist: timeout waiting for round %d", round)
	}
}

// rounds returns the finalized stats for rounds [from, to], in round
// order. In skip mode, rounds whose frames were lost are absent.
func (c *collector) rounds(from, to int) []RoundStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []RoundStats
	for _, s := range c.stats {
		if s.Round >= from && s.Round <= to {
			out = append(out, s)
		}
	}
	slices.SortFunc(out, func(a, b RoundStats) int { return a.Round - b.Round })
	return out
}

// sample computes utility from the latest absorbed state (Async mode).
func (c *collector) sample() RoundStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	util := 0.0
	for j := range c.p.Classes {
		cl := &c.p.Classes[j]
		n := c.consumers[j]
		if n == 0 || !c.active[cl.Flow] {
			continue
		}
		rate := c.rates[cl.Flow]
		if c.deliveries[j] >= 0 {
			rate = c.deliveries[j]
		}
		util += float64(n) * cl.Utility.Value(rate)
	}
	c.samples++
	return RoundStats{Round: c.samples, Utility: util}
}

// allocation snapshots the latest global allocation.
func (c *collector) allocation() model.Allocation {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := model.Allocation{
		Rates:     make([]float64, len(c.rates)),
		Consumers: make([]int, len(c.consumers)),
	}
	copy(a.Rates, c.rates)
	copy(a.Consumers, c.consumers)
	return a
}
