// Autoscale: the self-optimization loop the paper positions LRGP for —
// "nodes collaboratively optimize aggregate system performance" as the
// workload churns.
//
// A broker hosts two flows; consumers attach and detach over time and a
// node loses half its capacity mid-run (hardware degradation). After each
// change the controller re-reads demand from the broker, warm-starts the
// LRGP engine from its current prices, and enacts the new allocation only
// when it differs enough from the previous one (Section 2.1's enactment
// hysteresis).
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func buildProblem() *model.Problem {
	return &model.Problem{
		Name: "autoscale",
		Flows: []model.Flow{
			{ID: 0, Name: "orders", Source: 0, RateMin: 10, RateMax: 500},
			{ID: 1, Name: "telemetry", Source: 1, RateMin: 10, RateMax: 500},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "east", Capacity: 400_000, FlowCost: map[model.FlowID]float64{0: 3, 1: 3}},
			{ID: 1, Name: "west", Capacity: 400_000, FlowCost: map[model.FlowID]float64{0: 3, 1: 3}},
		},
		Classes: []model.Class{
			// MaxConsumers values here are placeholders; the controller
			// overwrites them with live attach counts each cycle.
			{ID: 0, Name: "orders-east", Flow: 0, Node: 0, MaxConsumers: 1,
				CostPerConsumer: 19, Utility: utility.NewLog(30)},
			{ID: 1, Name: "orders-west", Flow: 0, Node: 1, MaxConsumers: 1,
				CostPerConsumer: 19, Utility: utility.NewLog(30)},
			{ID: 2, Name: "telemetry-east", Flow: 1, Node: 0, MaxConsumers: 1,
				CostPerConsumer: 19, Utility: utility.NewLog(5)},
			{ID: 3, Name: "telemetry-west", Flow: 1, Node: 1, MaxConsumers: 1,
				CostPerConsumer: 19, Utility: utility.NewLog(5)},
		},
	}
}

func main() {
	p := buildProblem()
	b, err := broker.New(p)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := broker.NewController(b, broker.ControllerConfig{
		Core:           core.Config{Adaptive: true},
		EnactThreshold: 0.02,
		ItersPerCycle:  150,
	})
	if err != nil {
		log.Fatal(err)
	}

	attach := func(class model.ClassID, n int) []broker.ConsumerID {
		ids := make([]broker.ConsumerID, 0, n)
		for i := 0; i < n; i++ {
			id, err := b.AttachConsumer(class, nil, nil)
			if err != nil {
				log.Fatal(err)
			}
			ids = append(ids, id)
		}
		return ids
	}
	report := func(event string) {
		alloc, enacted, err := ctrl.Reoptimize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s rates=[%5.1f %5.1f] enacted=%-5v ", event, alloc.Rates[0], alloc.Rates[1], enacted)
		for j := range p.Classes {
			cs, err := b.ClassStats(model.ClassID(j))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s=%d/%d ", p.Classes[j].Name, cs.Admitted, cs.Attached)
		}
		fmt.Println()
	}

	fmt.Println("Autoscale: the controller re-optimizes as demand and capacity change.")
	fmt.Println()

	// Phase 1: initial demand.
	attach(0, 300)
	attach(1, 200)
	attach(2, 1000)
	attach(3, 1500)
	report("initial demand")

	// Phase 2: steady state — the same demand should not trigger
	// enactment (hysteresis).
	report("steady state (no change)")

	// Phase 3: telemetry demand triples in the west. The node was
	// already saturated, so the optimizer (correctly) finds nothing to
	// enact: the extra demand just waits unadmitted.
	attach(3, 3000)
	report("telemetry-west demand x3")

	// Phase 4: east loses half its capacity.
	if err := ctrl.Engine().SetNodeCapacity(0, p.Nodes[0].Capacity/2); err != nil {
		log.Fatal(err)
	}
	report("east capacity halved")

	// Phase 5: a burst of high-value order consumers arrives in the
	// east and squeezes telemetry out, then leaves again.
	extra := attach(0, 200)
	report("200 extra order-east attach")
	for _, id := range extra {
		if err := b.DetachConsumer(id); err != nil {
			log.Fatal(err)
		}
	}
	report("the 200 extras detach again")

	total, skipped := ctrl.Cycles()
	fmt.Printf("\ncontroller ran %d cycles, %d skipped enactment (hysteresis)\n", total, skipped)
}
