package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// IterationRecord is one structured LRGP iteration in a JSONL trace: the
// full optimizer state needed to regenerate the paper's figures (utility
// and price series) and to replay convergence detection offline. Slices
// are written in index order (flow i, class j, node b, link l of the
// problem the trace was recorded against).
type IterationRecord struct {
	// Iteration is 1-based, matching core.StepResult.
	Iteration int `json:"iter"`
	// Utility is the objective value after the iteration; the sequence
	// of Utility values across records is exactly the series fed to the
	// convergence detector.
	Utility float64 `json:"utility"`
	// MaxNodeOverload and MaxLinkOverload mirror core.StepResult.
	MaxNodeOverload float64 `json:"maxNodeOverload"`
	MaxLinkOverload float64 `json:"maxLinkOverload"`
	// StageNanos holds the rate/admission/price stage wall times,
	// indexed by StageRate/StageAdmission/StagePrice. All zero when the
	// recording engine ran without telemetry.
	StageNanos [3]int64 `json:"stageNanos"`
	// Rates and Consumers are the post-iteration allocation.
	Rates     []float64 `json:"rates,omitempty"`
	Consumers []int     `json:"consumers,omitempty"`
	// NodePrices and LinkPrices are the post-iteration price vectors.
	NodePrices []float64 `json:"nodePrices,omitempty"`
	LinkPrices []float64 `json:"linkPrices,omitempty"`
	// AdmissionDelta is the L1 distance between this iteration's and
	// the previous iteration's consumer populations — the admission
	// churn the paper's enactment threshold exists to dampen.
	AdmissionDelta int `json:"admissionDelta"`
	// Converged reports whether the 0.1% amplitude rule had been met by
	// the end of this iteration.
	Converged bool `json:"converged,omitempty"`
}

// TraceWriter writes IterationRecords as JSON Lines. It buffers; call
// Flush (or Close) before reading the output elsewhere. Not safe for
// concurrent use — traces are recorded from the single-threaded
// iteration loop.
type TraceWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewTraceWriter returns a TraceWriter over w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record as a single JSON line.
func (t *TraceWriter) Write(rec *IterationRecord) error {
	return t.enc.Encode(rec)
}

// Flush writes any buffered records to the underlying writer.
func (t *TraceWriter) Flush() error {
	return t.bw.Flush()
}

// ReadTrace decodes a JSONL iteration trace, returning every record in
// order. Blank lines are skipped; a malformed line fails with its line
// number.
func ReadTrace(r io.Reader) ([]IterationRecord, error) {
	var out []IterationRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec IterationRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
	}
	return out, nil
}

// UtilitySeries extracts the per-iteration utility values from a decoded
// trace — the exact series the convergence detector consumed while the
// trace was recorded.
func UtilitySeries(recs []IterationRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.Utility
	}
	return out
}
