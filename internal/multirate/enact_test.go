package multirate

import (
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
)

func TestEnactThinsSlowClass(t *testing.T) {
	p := heteroProblem()
	e, err := NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(600)

	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu = &clock
	b, err := broker.New(p, broker.WithClock(func() time.Time { return *mu }))
	if err != nil {
		t.Fatal(err)
	}
	var fast, slow int
	if _, err := b.AttachConsumer(0, nil, func(broker.Message) { fast++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AttachConsumer(1, nil, func(broker.Message) { slow++ }); err != nil {
		t.Fatal(err)
	}

	// Force at least one consumer of each class to be admitted for the
	// delivery check (the optimizer admits many anyway).
	alloc := res.Allocation
	if alloc.Consumers[0] == 0 {
		alloc.Consumers[0] = 1
	}
	if alloc.Consumers[1] == 0 {
		alloc.Consumers[1] = 1
	}
	if err := Enact(b, alloc); err != nil {
		t.Fatal(err)
	}

	// Publish at the source rate for 10 simulated seconds.
	srcRate := alloc.SourceRates[0]
	interval := time.Duration(float64(time.Second) / srcRate)
	published := 0
	for i := 0; i < int(10*srcRate); i++ {
		clock = clock.Add(interval)
		if err := b.Publish(0, nil, ""); err == nil {
			published++
		}
	}
	if published == 0 {
		t.Fatal("nothing published")
	}
	// The fast class receives (nearly) everything; the slow class's
	// stream is thinned to about delivery/source of it.
	if fast < published*9/10 {
		t.Errorf("fast received %d of %d", fast, published)
	}
	wantSlow := float64(published) * alloc.Delivery[1] / srcRate
	if float64(slow) > wantSlow*1.5+2 || float64(slow) < wantSlow*0.5-2 {
		t.Errorf("slow received %d, want about %.0f (thinned %g of %g)",
			slow, wantSlow, alloc.Delivery[1], srcRate)
	}
	cs, err := b.ClassStats(1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Thinned == 0 {
		t.Error("no thinning recorded for the slow class")
	}
}

func TestEnactShapeMismatch(t *testing.T) {
	p := heteroProblem()
	b, err := broker.New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := Enact(b, Allocation{}); err == nil {
		t.Error("accepted malformed allocation")
	}
}
