package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// SnapshotFunc supplies the /snapshot endpoint's payload (typically a
// core.Snapshot). Returning ok=false means no snapshot is available yet;
// the endpoint answers 503 with a pending marker. The function must be
// safe for concurrent use — it is called from HTTP handler goroutines.
type SnapshotFunc func() (any, bool)

// expvarOnce guards the process-wide expvar publication of the first
// registry; expvar names are global and cannot be published twice.
var expvarOnce sync.Once

// NewMux returns an http.ServeMux exposing the telemetry surface:
//
//	/metrics          Prometheus text exposition of reg
//	/debug/pprof/*    runtime profiles (CPU, heap, goroutine, trace, ...)
//	/debug/vars       expvar JSON (includes the registry under "lrgp")
//	/snapshot         JSON of the latest engine snapshot (503 until one exists)
//	/                 plain-text endpoint index
//
// snapshot may be nil, in which case /snapshot always reports pending.
func NewMux(reg *Registry, snapshot SnapshotFunc) *http.ServeMux {
	expvarOnce.Do(func() {
		expvar.Publish("lrgp", expvar.Func(func() any { return reg.Snapshot() }))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already partially written; nothing to do
			// beyond abandoning it.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var payload any
		ok := false
		if snapshot != nil {
			payload, ok = snapshot()
		}
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"pending"}`)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lrgp telemetry endpoints:")
		for _, ep := range []string{"/metrics", "/snapshot", "/debug/pprof/", "/debug/vars"} {
			fmt.Fprintf(w, "  %s\n", ep)
		}
	})
	return mux
}

// Server is a running telemetry HTTP server.
type Server struct {
	// Addr is the resolved listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// ListenAndServe binds addr (e.g. ":9090" or "127.0.0.1:0"), serves h on
// it in a background goroutine, and returns once the listener is bound so
// callers can print the resolved address and proceed. Close the returned
// server to release the port.
func ListenAndServe(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}
	go func() {
		// ErrServerClosed (and listener-closed errors) are the normal
		// shutdown path; there is no caller left to report others to.
		_ = srv.Serve(ln)
	}()
	return s, nil
}

// Close stops the server and releases the listener. Idempotent.
func (s *Server) Close() error {
	return s.srv.Close()
}
