package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMemoryTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rounds", "30", "-publish-seconds", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"optimizing 6f-3n-log(1+r) over memory transport",
		"enacted allocation into broker",
		"flow        rate",
		"class       admitted/attached",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The deliberate 2x over-publish on flow 0 must show throttling.
	if !strings.Contains(s, "flow0") {
		t.Errorf("missing per-flow stats:\n%s", s)
	}
}

func TestRunTCPTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-transport", "tcp", "-rounds", "10", "-publish-seconds", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "over tcp transport") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUnknownTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-transport", "carrier-pigeon"}, &out); err == nil {
		t.Error("unknown transport accepted")
	}
}
