// Package bruteforce finds (near-)exact optima of tiny LRGP problem
// instances by exhaustive search, for use as a ground truth in tests.
//
// Rates are discretized onto a per-flow grid; for every rate vector the
// optimal integer populations are found exactly by per-node enumeration
// (given fixed rates, the node constraints decouple, so each node is an
// independent small integer packing problem). The result is optimal over
// the rate grid, and converges to the true optimum as the grid refines.
//
// The search cost is O(gridSteps^|F| * prod n_j^max per node); keep
// populations and flow counts tiny (see workload.Tiny).
package bruteforce

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
)

// DefaultGridSteps is the default number of rate samples per flow.
const DefaultGridSteps = 20

// ErrTooLarge guards against accidentally exhaustive-searching a real
// workload.
var ErrTooLarge = errors.New("bruteforce: instance too large")

// searchBudget caps the approximate number of states visited.
const searchBudget = 200_000_000

// Result is the best allocation found by Solve.
type Result struct {
	// Utility is the total utility of Best.
	Utility float64
	// Best is the argmax allocation.
	Best model.Allocation
	// RateGrids holds the evaluated rate values per flow, for reporting.
	RateGrids [][]float64
}

// Solve exhaustively searches the problem on a gridSteps-point rate grid
// per flow (gridSteps <= 1 selects DefaultGridSteps). It returns
// ErrTooLarge if the estimated state count exceeds an internal budget.
func Solve(p *model.Problem, gridSteps int) (Result, error) {
	if err := model.Validate(p); err != nil {
		return Result{}, fmt.Errorf("bruteforce: %w", err)
	}
	if gridSteps <= 1 {
		gridSteps = DefaultGridSteps
	}
	ix := model.NewIndex(p)

	// Estimate the cost: rate combinations x per-node packing states
	// (nodes decouple for fixed rates, so packing work sums across nodes
	// rather than multiplying).
	cost := 1.0
	for range p.Flows {
		cost *= float64(gridSteps)
	}
	packing := 0.0
	for b := range p.Nodes {
		nodeStates := 1.0
		for _, cid := range ix.ClassesByNode(model.NodeID(b)) {
			nodeStates *= float64(p.Classes[cid].MaxConsumers + 1)
		}
		packing += nodeStates
	}
	if packing < 1 {
		packing = 1
	}
	if cost*packing > searchBudget {
		return Result{}, fmt.Errorf("%w: ~%.3g states", ErrTooLarge, cost*packing)
	}

	grids := make([][]float64, len(p.Flows))
	for i, f := range p.Flows {
		grids[i] = rateGrid(f.RateMin, f.RateMax, gridSteps)
	}

	best := Result{Utility: -1, RateGrids: grids}
	rates := make([]float64, len(p.Flows))
	var walk func(i int)
	walk = func(i int) {
		if i == len(p.Flows) {
			util, consumers, ok := bestPopulations(p, ix, rates)
			if ok && util > best.Utility {
				best.Utility = util
				best.Best = model.Allocation{
					Rates:     append([]float64(nil), rates...),
					Consumers: consumers,
				}
			}
			return
		}
		for _, r := range grids[i] {
			rates[i] = r
			walk(i + 1)
		}
	}
	walk(0)

	if best.Utility < 0 {
		// Every rate vector violated a constraint before populations were
		// even considered (link or flow-cost overload everywhere).
		return Result{}, fmt.Errorf("%w: no feasible rate vector on the grid", model.ErrInfeasible)
	}

	// Continuous local refinement: coordinate-wise golden-section search
	// around the best grid point, so the returned optimum does not
	// suffer the grid's discretization error (which is substantial for
	// log utilities at low rates).
	refine(p, ix, &best)
	return best, nil
}

// refineSweeps and refineEvals bound the local refinement work.
const (
	refineSweeps = 4
	refineEvals  = 48
)

// refine improves the best allocation by golden-section line search on
// each flow's rate in turn, holding the others fixed and re-solving the
// exact population packing at every probe.
func refine(p *model.Problem, ix *model.Index, best *Result) {
	rates := append([]float64(nil), best.Best.Rates...)
	eval := func() (float64, []int, bool) {
		return bestPopulations(p, ix, rates)
	}

	const phi = 0.6180339887498949
	for sweep := 0; sweep < refineSweeps; sweep++ {
		improved := false
		for i := range p.Flows {
			lo, hi := p.Flows[i].RateMin, p.Flows[i].RateMax
			// Bracket one grid step either side of the current rate.
			span := (hi - lo) / float64(len(best.RateGrids[i]))
			a := math.Max(lo, rates[i]-2*span)
			b := math.Min(hi, rates[i]+2*span)
			if b <= a {
				continue
			}
			x1 := b - phi*(b-a)
			x2 := a + phi*(b-a)
			f := func(r float64) float64 {
				rates[i] = r
				u, _, ok := eval()
				if !ok {
					return -1
				}
				return u
			}
			f1, f2 := f(x1), f(x2)
			for k := 0; k < refineEvals/refineSweeps; k++ {
				if f1 < f2 {
					a, x1, f1 = x1, x2, f2
					x2 = a + phi*(b-a)
					f2 = f(x2)
				} else {
					b, x2, f2 = x2, x1, f1
					x1 = b - phi*(b-a)
					f1 = f(x1)
				}
			}
			r := x1
			if f2 > f1 {
				r = x2
			}
			u, consumers, ok := func() (float64, []int, bool) {
				rates[i] = r
				return eval()
			}()
			if ok && u > best.Utility {
				best.Utility = u
				best.Best = model.Allocation{
					Rates:     append([]float64(nil), rates...),
					Consumers: consumers,
				}
				improved = true
			} else {
				rates[i] = best.Best.Rates[i]
			}
		}
		if !improved {
			break
		}
	}
}

// rateGrid returns n evenly spaced samples covering [lo, hi] inclusive.
func rateGrid(lo, hi float64, n int) []float64 {
	if n == 1 || lo == hi {
		return []float64{lo}
	}
	out := make([]float64, n)
	for k := range out {
		out[k] = lo + (hi-lo)*float64(k)/float64(n-1)
	}
	return out
}

// bestPopulations computes the exact optimal populations for fixed rates,
// or ok=false when the rates alone violate a link or node constraint.
func bestPopulations(p *model.Problem, ix *model.Index, rates []float64) (float64, []int, bool) {
	a := model.Allocation{Rates: rates, Consumers: make([]int, len(p.Classes))}
	for _, l := range p.Links {
		if model.LinkUsage(p, ix, a, l.ID) > l.Capacity {
			return 0, nil, false
		}
	}

	consumers := make([]int, len(p.Classes))
	total := 0.0
	for _, n := range p.Nodes {
		budget := n.Capacity - model.NodeFlowUsage(p, ix, a, n.ID)
		if budget < 0 {
			return 0, nil, false
		}
		util := packNode(p, ix, n.ID, rates, budget, consumers)
		total += util
	}
	return total, consumers, true
}

// packNode exhaustively assigns populations to the classes of one node
// within the given budget, writing the best assignment into consumers and
// returning its utility.
func packNode(p *model.Problem, ix *model.Index, b model.NodeID, rates []float64, budget float64, consumers []int) float64 {
	classes := ix.ClassesByNode(b)
	if len(classes) == 0 {
		return 0
	}
	cur := make([]int, len(classes))
	bestAssign := make([]int, len(classes))
	bestUtil := 0.0

	var walk func(k int, left, util float64)
	walk = func(k int, left, util float64) {
		if k == len(classes) {
			if util > bestUtil {
				bestUtil = util
				copy(bestAssign, cur)
			}
			return
		}
		c := &p.Classes[classes[k]]
		r := rates[c.Flow]
		unit := c.CostPerConsumer * r
		perConsumer := c.Utility.Value(r)
		maxN := c.MaxConsumers
		if unit > 0 {
			if byBudget := int(left / unit); byBudget < maxN {
				maxN = byBudget
			}
		}
		for n := maxN; n >= 0; n-- {
			cur[k] = n
			walk(k+1, left-float64(n)*unit, util+float64(n)*perConsumer)
		}
	}
	walk(0, budget, 0)

	for k, cid := range classes {
		consumers[cid] = bestAssign[k]
	}
	return bestUtil
}
