package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

// Tests for the engine's mid-run workload-dynamics surface (Section 2.1:
// the algorithm runs all the time, responding to changes in workload and
// system capacity).

func TestSetClassDemandGrowth(t *testing.T) {
	p := workload.Base()
	e, err := NewEngine(p, Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Solve(400)

	// Demand for the top-ranked class (18: rank 100) doubles.
	if err := e.SetClassDemand(18, 3000); err != nil {
		t.Fatal(err)
	}
	after := e.Solve(400)
	if !after.Converged {
		t.Fatal("did not reconverge after demand growth")
	}
	if after.Utility <= before.Utility {
		t.Errorf("utility %0.f did not grow with high-value demand (was %.0f)",
			after.Utility, before.Utility)
	}
	if after.Allocation.Consumers[18] <= before.Allocation.Consumers[18] {
		t.Errorf("population %d did not grow (was %d)",
			after.Allocation.Consumers[18], before.Allocation.Consumers[18])
	}
}

func TestSetClassDemandShrinkClampsPopulation(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Solve(250)
	if err := e.SetClassDemand(18, 5); err != nil {
		t.Fatal(err)
	}
	// The stored population must be clamped immediately, before the next
	// iteration, so the utility accounting never uses a stale n > max.
	if n := e.Allocation().Consumers[18]; n > 5 {
		t.Errorf("population %d exceeds new demand 5", n)
	}
	res := e.Solve(250)
	if res.Allocation.Consumers[18] > 5 {
		t.Errorf("population %d exceeds demand after re-solve", res.Allocation.Consumers[18])
	}
}

func TestSetClassDemandErrors(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetClassDemand(99, 1); err == nil {
		t.Error("unknown class accepted")
	}
	if err := e.SetClassDemand(0, -1); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestSetNodeCapacityDegradation(t *testing.T) {
	p := workload.Base()
	e, err := NewEngine(p, Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Solve(400)

	for b := range p.Nodes {
		if err := e.SetNodeCapacity(model.NodeID(b), workload.NodeCapacity/2); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Solve(600)
	if !after.Converged {
		t.Fatal("did not reconverge after capacity drop")
	}
	if after.Utility >= before.Utility {
		t.Errorf("utility %.0f did not fall with halved capacity (was %.0f)",
			after.Utility, before.Utility)
	}
	// The halved-capacity optimum must match a fresh engine on the
	// halved problem (warm start converges to the same place).
	fresh, err := NewEngine(p.Clone(), Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Solve(600).Utility
	if rel := math.Abs(after.Utility-want) / want; rel > 0.01 {
		t.Errorf("warm-start utility %.0f deviates %.2f%% from cold-start %.0f",
			after.Utility, rel*100, want)
	}
	// And the allocation must actually be feasible at the new capacity.
	ix := e.Index()
	if err := model.CheckFeasible(p, ix, after.Allocation, 1e-6); err != nil {
		t.Errorf("infeasible after capacity drop: %v", err)
	}
}

func TestSetNodeCapacityErrors(t *testing.T) {
	e, err := NewEngine(workload.Base(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetNodeCapacity(99, 1); err == nil {
		t.Error("unknown node accepted")
	}
	if err := e.SetNodeCapacity(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}
