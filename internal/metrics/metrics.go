// Package metrics provides convergence detection and summary statistics for
// optimizer traces.
//
// The paper's convergence rule (Section 4.3): the algorithm has converged
// once the amplitude of the oscillations in total utility becomes less than
// 0.1% of the utility value. ConvergenceDetector implements that rule over
// a sliding window; Series collects and summarizes scalar time series.
package metrics

import (
	"math"
	"sort"
)

// DefaultWindow is the sliding-window length (iterations) over which
// oscillation amplitude is measured.
const DefaultWindow = 10

// DefaultRelAmplitude is the paper's 0.1% convergence threshold.
const DefaultRelAmplitude = 0.001

// ConvergenceDetector watches a scalar series (total utility per iteration)
// and reports the first iteration at which the oscillation amplitude over
// the trailing window drops below a relative threshold.
type ConvergenceDetector struct {
	window    int
	threshold float64

	values    []float64 // ring buffer of the last `window` observations
	next      int
	count     int
	iteration int
	converged bool
	at        int
}

// NewConvergenceDetector returns a detector using the given window length
// and relative amplitude threshold; zero values select DefaultWindow and
// DefaultRelAmplitude.
func NewConvergenceDetector(window int, relAmplitude float64) *ConvergenceDetector {
	if window <= 1 {
		window = DefaultWindow
	}
	if relAmplitude <= 0 {
		relAmplitude = DefaultRelAmplitude
	}
	return &ConvergenceDetector{
		window:    window,
		threshold: relAmplitude,
		values:    make([]float64, window),
		at:        -1,
	}
}

// Observe appends one observation and returns true if the detector is (or
// already was) converged. Iterations are numbered from 1 in the order
// observed.
func (d *ConvergenceDetector) Observe(v float64) bool {
	d.iteration++
	d.values[d.next] = v
	d.next = (d.next + 1) % d.window
	if d.count < d.window {
		d.count++
	}
	if d.converged {
		return true
	}
	if d.count < d.window {
		return false
	}
	lo, hi := d.values[0], d.values[0]
	for _, x := range d.values[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	mean := 0.0
	for _, x := range d.values {
		mean += x
	}
	mean /= float64(d.window)
	if mean != 0 && (hi-lo) <= d.threshold*math.Abs(mean) {
		d.converged = true
		d.at = d.iteration
	}
	return d.converged
}

// Converged reports whether the series has met the convergence rule.
func (d *ConvergenceDetector) Converged() bool { return d.converged }

// ConvergedAt returns the 1-based iteration at which convergence was first
// detected, or -1 if not converged. Note the detector needs a full window
// of observations, so the earliest possible answer is the window length.
func (d *ConvergenceDetector) ConvergedAt() int { return d.at }

// Reset clears all state, e.g. after a workload change mid-run, so recovery
// time can be measured with the same rule.
func (d *ConvergenceDetector) Reset() {
	d.next, d.count, d.iteration = 0, 0, 0
	d.converged, d.at = false, -1
}

// Series is an append-only scalar time series with summary statistics.
type Series struct {
	vals []float64
}

// Append adds an observation.
func (s *Series) Append(v float64) { s.vals = append(s.vals, v) }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.vals) }

// At returns the i-th observation (0-based).
func (s *Series) At(i int) float64 { return s.vals[i] }

// Values returns a copy of the observations.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Last returns the final observation, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[len(s.vals)-1]
}

// Min returns the smallest observation, or 0 for an empty series.
func (s *Series) Min() float64 { return s.fold(math.Min, math.Inf(1)) }

// Max returns the largest observation, or 0 for an empty series.
func (s *Series) Max() float64 { return s.fold(math.Max, math.Inf(-1)) }

func (s *Series) fold(f func(a, b float64) float64, id float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	acc := id
	for _, v := range s.vals {
		acc = f(acc, v)
	}
	return acc
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Quantile returns the q-quantile (0<=q<=1) by nearest-rank on a sorted
// copy, or 0 for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TailAmplitude returns (max-min)/|mean| over the trailing window
// observations, the quantity the convergence rule thresholds. It returns
// +Inf when fewer than window observations exist or the mean is zero.
func (s *Series) TailAmplitude(window int) float64 {
	if window <= 0 || len(s.vals) < window {
		return math.Inf(1)
	}
	tail := s.vals[len(s.vals)-window:]
	lo, hi, mean := tail[0], tail[0], 0.0
	for _, v := range tail {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		mean += v
	}
	mean /= float64(window)
	if mean == 0 {
		return math.Inf(1)
	}
	return (hi - lo) / math.Abs(mean)
}
