package multirate

import (
	"repro/internal/model"
	"repro/internal/solver"
)

// Per-role primitives of multirate LRGP, exported for the distributed
// runtime (and used by this package's Engine), mirroring core.RateAllocator
// and core.NodeAllocator.

// SourceRateSolver is the flow-source half: it owns one flow's source-rate
// stationarity condition over the classes whose desired delivery the
// source rate caps.
type SourceRateSolver struct {
	p       *model.Problem
	flow    model.Flow
	classes []model.ClassID
}

// NewSourceRateSolver prepares the solver for flow fid.
func NewSourceRateSolver(p *model.Problem, ix *model.Index, fid model.FlowID) *SourceRateSolver {
	return &SourceRateSolver{
		p:       p,
		flow:    p.Flows[fid],
		classes: ix.ClassesByFlow(fid),
	}
}

// Rate solves sum over capped classes of n_j U_j'(r) = price, where a
// class is capped when its desired delivery (full-length slice indexed by
// ClassID) is at least r. price is the consumer-independent path price
// (F at nodes plus L at links).
func (s *SourceRateSolver) Rate(consumers []int, desired []float64, price float64) float64 {
	f := s.flow
	marginal := func(r float64) float64 {
		sum := 0.0
		for _, cid := range s.classes {
			if consumers[cid] == 0 || desired[cid] < r {
				continue
			}
			sum += float64(consumers[cid]) * s.p.Classes[cid].Utility.Deriv(r)
		}
		return sum
	}

	total := 0
	for _, cid := range s.classes {
		total += consumers[cid]
	}
	if total == 0 {
		return f.RateMin
	}
	if price <= 0 {
		return f.RateMax
	}
	if marginal(f.RateMin) <= price {
		return f.RateMin
	}
	if marginal(f.RateMax) >= price {
		return f.RateMax
	}
	// marginal(r) is decreasing but only piecewise-continuous (classes
	// drop out as r passes their desired delivery), so bisection on the
	// sign change remains valid.
	r, err := solver.Bisect(func(x float64) float64 {
		return marginal(x) - price
	}, f.RateMin, f.RateMax, solver.Options{})
	if err != nil {
		return f.RateMin
	}
	return r
}

// NodeAllocation is the outcome of one node's multirate greedy admission.
type NodeAllocation struct {
	// Used is the node resource consumed (flow costs + consumer costs at
	// the classes' delivery rates).
	Used float64
	// BestUnsatisfied is the Equation 11 benefit-cost ratio at the
	// classes' delivery rates.
	BestUnsatisfied float64
}

// NodeAllocator is the node half: greedy admission at per-class unit cost
// G_j * d_j, where each class's delivery rate d_j is the marginal-
// condition solution capped by its flow's source rate.
type NodeAllocator struct {
	p      *model.Problem
	ix     *model.Index
	node   model.NodeID
	active []bool
}

// NewNodeAllocator prepares the allocator for node b.
func NewNodeAllocator(p *model.Problem, ix *model.Index, b model.NodeID) *NodeAllocator {
	active := make([]bool, len(p.Flows))
	for i := range active {
		active[i] = true
	}
	return &NodeAllocator{p: p, ix: ix, node: b, active: active}
}

// SetFlowActive marks a flow as participating or not.
func (na *NodeAllocator) SetFlowActive(i model.FlowID, active bool) {
	na.active[i] = active
}

// Allocate computes delivery rates for the node's classes from the node
// price, runs the greedy admission, and writes populations and deliveries
// into the full-length slices. sourceRates is indexed by FlowID.
func (na *NodeAllocator) Allocate(sourceRates []float64, price float64, consumers []int, deliveries []float64) NodeAllocation {
	node := &na.p.Nodes[na.node]
	flowUse := 0.0
	for _, i := range na.ix.FlowsByNode(na.node) {
		if na.active[i] {
			flowUse += node.FlowCost[i] * sourceRates[i]
		}
	}

	type cand struct {
		id   model.ClassID
		bc   float64
		unit float64
	}
	var ranked []cand
	for _, cid := range na.ix.ClassesByNode(na.node) {
		c := &na.p.Classes[cid]
		if !na.active[c.Flow] {
			consumers[cid] = 0
			deliveries[cid] = 0
			continue
		}
		f := na.p.Flows[c.Flow]
		d := desiredDelivery(c.Utility, c.CostPerConsumer*price, f.RateMin, f.RateMax)
		if d > sourceRates[c.Flow] {
			d = sourceRates[c.Flow]
		}
		deliveries[cid] = d
		value := c.Utility.Value(d)
		if value <= 0 {
			consumers[cid] = 0
			continue
		}
		unit := c.CostPerConsumer * d
		ranked = append(ranked, cand{id: cid, bc: value / unit, unit: unit})
	}
	// Insertion sort by descending benefit-cost ratio, ties by id.
	for x := 1; x < len(ranked); x++ {
		for y := x; y > 0 && (ranked[y].bc > ranked[y-1].bc ||
			(ranked[y].bc == ranked[y-1].bc && ranked[y].id < ranked[y-1].id)); y-- {
			ranked[y], ranked[y-1] = ranked[y-1], ranked[y]
		}
	}

	budget := node.Capacity - flowUse
	used := flowUse
	best := 0.0
	for _, cb := range ranked {
		c := &na.p.Classes[cb.id]
		n := 0
		if budget > 0 {
			n = int(budget / cb.unit)
			if n > c.MaxConsumers {
				n = c.MaxConsumers
			}
		}
		consumers[cb.id] = n
		cost := float64(n) * cb.unit
		budget -= cost
		used += cost
		if n < c.MaxConsumers && cb.bc > best {
			best = cb.bc
		}
	}
	return NodeAllocation{Used: used, BestUnsatisfied: best}
}
