package broker

import (
	"math"
	"sync/atomic"

	"repro/internal/model"
)

// This file holds the data-plane side of the broker's control-plane /
// data-plane split.
//
// The data plane (Publish) never takes the broker mutex: it reads an
// immutable routing snapshot through an atomic pointer, admits the
// message on its flow's own token bucket, and walks the snapshot's
// admitted-consumer lists, accumulating into atomic counters. Per-flow
// state is sharded so publishes on distinct flows share nothing but the
// snapshot pointer.
//
// The control plane (AttachConsumer, DetachConsumer, ApplyAllocation,
// SetClassRateCap) serializes on Broker.mu, mutates the authoritative
// state, and publishes a freshly built snapshot (copy-on-write). A
// Publish that raced a control operation delivers against whichever
// snapshot it loaded — each message sees one consistent routing view.

// flowState is the per-flow data-plane shard: the source token bucket
// (internally locked, shared with nobody else), the per-flow sequence
// counter, and the publish-side stat counters. Publishes on distinct
// flows touch distinct flowStates and therefore never contend.
type flowState struct {
	bucket    *TokenBucket
	seq       atomic.Uint64
	published atomic.Uint64
	throttled atomic.Uint64
	// rateBits holds math.Float64bits of the most recently enacted rate,
	// mirroring the bucket's refill rate so FlowStats never touches the
	// bucket's lock.
	rateBits atomic.Uint64
	// work is this flow's shard of the broker-wide abstract work
	// counter; Broker.WorkUnits sums the shards. Keeping it per flow
	// removes the last cross-flow write on the publish path.
	work atomic.Uint64
	// _pad spaces adjacent flowStates onto separate cache lines so
	// multi-flow publishers do not false-share counter lines.
	_pad [80]byte //nolint:unused // padding, deliberately never read
}

func (f *flowState) rate() float64 {
	return math.Float64frombits(f.rateBits.Load())
}

func (f *flowState) setRate(r float64) {
	f.rateBits.Store(math.Float64bits(r))
}

// classCounters is the delivery-side accounting of one class. The
// counters live in the control-plane classState (so they survive
// snapshot rebuilds) and are referenced by pointer from every snapshot;
// both planes update them with atomics only, so ClassStats and telemetry
// scrapes never stall a publish.
type classCounters struct {
	attached  atomic.Int64
	admitted  atomic.Int64
	delivered atomic.Uint64
	filtered  atomic.Uint64
	thinned   atomic.Uint64
}

// classRoute is one class's routing entry in a snapshot: the compiled
// transform, the shared thinner handle, the counter block, and the
// admitted consumers in attach order. Snapshots only carry classes with
// at least one admitted consumer.
type classRoute struct {
	transform Transform
	// identity marks the Transform as the Identity fast path: the
	// message is delivered with the producer's attribute map, no clone.
	identity bool
	// thinner, when non-nil, caps the class's delivery rate. The bucket
	// is owned by the control plane and shared across snapshots; it is
	// internally locked.
	thinner   *TokenBucket
	counters  *classCounters
	consumers []*consumer
}

// Route snapshots store per-flow slices in fixed-size blocks so an
// incremental republish copies one small block, not one slice header per
// flow: on a 10k-flow broker a flat [][]classRoute costs a ~240KB header
// copy per enact, while the two-level layout costs ~40 block pointers
// plus ~6KB per dirty block.
const (
	routeBlockBits = 8
	routeBlockSize = 1 << routeBlockBits
	routeBlockMask = routeBlockSize - 1
)

// routeTable is the immutable routing snapshot the data plane reads: for
// every flow, the deliverable class routes in model.Index class order,
// addressed as blocks[flow>>routeBlockBits][flow&routeBlockMask]. Never
// mutated after publication; control-plane changes build and store a new
// table (which may share blocks, and per-flow slices inside fresh
// blocks, with its predecessor).
type routeTable struct {
	blocks [][][]classRoute
}

func (rt *routeTable) flowRoutes(i model.FlowID) []classRoute {
	return rt.blocks[i>>routeBlockBits][i&routeBlockMask]
}

// buildFlowRoutesLocked builds one flow's deliverable class routes from
// the authoritative control-plane state, in model.Index class order.
// Callers must hold b.mu. The returned slice (and the admitted lists it
// holds) is freshly allocated and never mutated after publication, so it
// may be spliced into a snapshot that shares every other flow's slice
// with its predecessor.
func (b *Broker) buildFlowRoutesLocked(i model.FlowID) []classRoute {
	var routes []classRoute
	for _, cid := range b.ix.ClassesByFlow(i) {
		cs := &b.classes[cid]
		if cs.admitted == 0 {
			continue
		}
		admitted := make([]*consumer, 0, cs.admitted)
		for _, c := range cs.consumers {
			if c.admitted {
				admitted = append(admitted, c)
			}
		}
		if len(admitted) == 0 {
			continue
		}
		_, identity := cs.transform.(Identity)
		routes = append(routes, classRoute{
			transform: cs.transform,
			identity:  identity,
			thinner:   cs.thinner,
			counters:  &cs.counters,
			consumers: admitted,
		})
	}
	return routes
}

// buildRouteTableLocked builds a complete fresh routing snapshot from the
// authoritative control-plane state. Callers must hold b.mu (or be inside
// New, before the broker escapes).
func (b *Broker) buildRouteTableLocked() *routeTable {
	flows := len(b.p.Flows)
	nb := (flows + routeBlockSize - 1) / routeBlockSize
	rt := &routeTable{blocks: make([][][]classRoute, nb)}
	for k := 0; k < nb; k++ {
		n := flows - k*routeBlockSize
		if n > routeBlockSize {
			n = routeBlockSize
		}
		block := make([][]classRoute, n)
		for o := range block {
			block[o] = b.buildFlowRoutesLocked(model.FlowID(k*routeBlockSize + o))
		}
		rt.blocks[k] = block
	}
	return rt
}

// rebuildRouteLocked builds and publishes a fresh routing snapshot — the
// full-rebuild path, used at construction and when an enact delta is wide
// enough that patching would cost more than rebuilding (see
// republishLocked in enact.go for the incremental path).
func (b *Broker) rebuildRouteLocked() {
	b.route.Store(b.buildRouteTableLocked())
}
