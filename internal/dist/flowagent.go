package dist

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/multirate"
	"repro/internal/transport"
)

// flowAgent runs Algorithm 1 for one flow at its source node (or, in
// multirate mode, the capped-classes source-rate solver).
type flowAgent struct {
	p    *model.Problem
	flow model.FlowID
	ep   transport.Endpoint
	ra   *core.RateAllocator
	// mr is non-nil in multirate mode and replaces ra.
	mr *multirate.SourceRateSolver

	// Static path structure.
	nodes      []model.NodeID // B_i
	nodeCoefF  map[model.NodeID]float64
	classNode  map[model.ClassID]model.NodeID
	classCost  map[model.ClassID]float64 // G_{b,j}
	links      []model.LinkID            // L_i
	linkCoef   map[model.LinkID]float64
	linkOwner  map[model.LinkID]model.NodeID
	peerNames  []string // node agents to exchange with (deduped)
	peerCount  int
	priceAvgWn int // async price-averaging window (>=1)

	// Dynamic state.
	consumers []int
	nodePrice map[model.NodeID]*priceWindow
	linkPrice map[model.LinkID]*priceWindow
	round     int
	runUntil  int
	leaving   bool
	idle      bool          // departed but able to rejoin
	tickEvery time.Duration // async mode when > 0

	done chan struct{}
}

// priceWindow keeps the last w prices from one resource and serves their
// average (Section 3.5's asynchronous smoothing; w=1 reduces to "latest").
type priceWindow struct {
	vals []float64
	next int
	n    int
}

func newPriceWindow(w int) *priceWindow {
	if w < 1 {
		w = 1
	}
	return &priceWindow{vals: make([]float64, w)}
}

func (pw *priceWindow) push(v float64) {
	pw.vals[pw.next] = v
	pw.next = (pw.next + 1) % len(pw.vals)
	if pw.n < len(pw.vals) {
		pw.n++
	}
}

func (pw *priceWindow) avg() float64 {
	if pw.n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < pw.n; i++ {
		sum += pw.vals[i]
	}
	return sum / float64(pw.n)
}

func newFlowAgent(p *model.Problem, ix *model.Index, fid model.FlowID, ep transport.Endpoint, cfg core.Config, window int, tick time.Duration, multirateMode bool) *flowAgent {
	fa := &flowAgent{
		p:          p,
		flow:       fid,
		ep:         ep,
		ra:         core.NewRateAllocator(p, ix, fid),
		nodeCoefF:  make(map[model.NodeID]float64),
		classNode:  make(map[model.ClassID]model.NodeID),
		classCost:  make(map[model.ClassID]float64),
		linkCoef:   make(map[model.LinkID]float64),
		linkOwner:  make(map[model.LinkID]model.NodeID),
		consumers:  make([]int, len(p.Classes)),
		nodePrice:  make(map[model.NodeID]*priceWindow),
		linkPrice:  make(map[model.LinkID]*priceWindow),
		priceAvgWn: window,
		round:      1,
		tickEvery:  tick,
		done:       make(chan struct{}),
	}
	peers := make(map[string]bool)
	for _, b := range ix.NodesByFlow(fid) {
		fa.nodes = append(fa.nodes, b)
		fa.nodeCoefF[b] = p.Nodes[b].FlowCost[fid]
		fa.nodePrice[b] = newPriceWindow(window)
		fa.nodePrice[b].push(cfg.InitialNodePrice)
		peers[nodeName(b)] = true
	}
	for _, cid := range ix.ClassesByFlow(fid) {
		c := &p.Classes[cid]
		fa.classNode[cid] = c.Node
		fa.classCost[cid] = c.CostPerConsumer
	}
	for _, l := range ix.LinksByFlow(fid) {
		fa.links = append(fa.links, l)
		fa.linkCoef[l] = p.Links[l].FlowCost[fid]
		fa.linkOwner[l] = p.Links[l].To
		fa.linkPrice[l] = newPriceWindow(window)
		fa.linkPrice[l].push(cfg.InitialLinkPrice)
		peers[nodeName(p.Links[l].To)] = true
	}
	for name := range peers {
		fa.peerNames = append(fa.peerNames, name)
	}
	fa.peerCount = len(fa.peerNames)
	if multirateMode {
		fa.mr = multirate.NewSourceRateSolver(p, ix, fid)
	}
	return fa
}

// computeRate runs the mode-appropriate source-rate allocation from the
// agent's absorbed state.
func (fa *flowAgent) computeRate() float64 {
	if fa.mr == nil {
		return fa.ra.Rate(fa.consumers, fa.pathPrice())
	}
	// Multirate: consumer-independent path price, plus locally computed
	// desired deliveries from each class's node price.
	price := 0.0
	for _, l := range fa.links {
		price += fa.linkCoef[l] * fa.linkPrice[l].avg()
	}
	for _, b := range fa.nodes {
		price += fa.nodeCoefF[b] * fa.nodePrice[b].avg()
	}
	desired := make([]float64, len(fa.p.Classes))
	f := fa.p.Flows[fa.flow]
	for cid, node := range fa.classNode {
		u := fa.p.Classes[cid].Utility
		desired[cid] = multirate.DesiredDelivery(u, fa.classCost[cid]*fa.nodePrice[node].avg(), f.RateMin, f.RateMax)
	}
	return fa.mr.Rate(fa.consumers, desired, price)
}

// pathPrice computes PL_i + PB_i (Equations 8 and 9) from the current
// (averaged) prices and populations.
func (fa *flowAgent) pathPrice() float64 {
	price := 0.0
	for _, l := range fa.links {
		price += fa.linkCoef[l] * fa.linkPrice[l].avg()
	}
	for _, b := range fa.nodes {
		coeff := fa.nodeCoefF[b]
		for cid, node := range fa.classNode {
			if node == b {
				coeff += fa.classCost[cid] * float64(fa.consumers[cid])
			}
		}
		price += coeff * fa.nodePrice[b].avg()
	}
	return price
}

// absorbReport folds a node report into local state.
func (fa *flowAgent) absorbReport(rm reportMsg) {
	if pw, ok := fa.nodePrice[rm.Node]; ok {
		pw.push(rm.Price)
	}
	for cid, n := range rm.Populations {
		if _, mine := fa.classNode[cid]; mine {
			fa.consumers[cid] = n
		}
	}
	for lid, pr := range rm.LinkPrices {
		if pw, ok := fa.linkPrice[lid]; ok {
			pw.push(pr)
		}
	}
}

// announce sends the flow's rate for the given round to every peer node
// agent and the collector. Lossy-transport failures (drops, partitions)
// are tolerated — the asynchronous mode is designed for them, and in the
// synchronous mode the transports are lossless; only a closed transport
// is fatal.
func (fa *flowAgent) announce(round int, rate float64, active bool) error {
	body := rateMsg{Round: round, Flow: fa.flow, Rate: rate, Active: active}
	for _, peer := range fa.peerNames {
		msg, err := transport.Encode(fa.ep.Name(), peer, rateKind, body)
		if err != nil {
			return err
		}
		if err := fa.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
			return fmt.Errorf("dist: flow %d announce to %s: %w", fa.flow, peer, err)
		}
	}
	msg, err := transport.Encode(fa.ep.Name(), collectorName, rateKind, body)
	if err != nil {
		return err
	}
	if err := fa.ep.Send(msg); errors.Is(err, transport.ErrClosed) {
		return err
	}
	return nil
}

// runSync is the synchronous round loop. It blocks until a Stop control or
// transport shutdown. A Leave control makes the agent announce departure
// and idle; a later Join control re-announces it at the cluster's current
// round (the cluster calls both only between Run invocations).
func (fa *flowAgent) runSync() {
	defer close(fa.done)
	reportsSeen := make(map[int]map[model.NodeID]bool)

	for {
		// Process a pending departure.
		if fa.leaving {
			fa.leaving = false
			if !fa.idle {
				_ = fa.announce(fa.round, 0, false)
				fa.idle = true
			}
		}

		// Pause until allowed to run this round, or idle until Join.
		for fa.runUntil < fa.round || fa.idle {
			if !fa.handleOne(nil) {
				return
			}
			if fa.idle {
				// Track the cluster's round counter passively so a later
				// Join resumes at the right round.
				if fa.round <= fa.runUntil {
					fa.round = fa.runUntil + 1
				}
				continue
			}
			if fa.leaving {
				fa.leaving = false
				_ = fa.announce(fa.round, 0, false)
				fa.idle = true
			}
		}

		if err := fa.announce(fa.round, fa.computeRate(), true); err != nil {
			return
		}

		// Await this round's reports from every peer node. A Leave
		// arriving mid-round finishes the handshake first so peers are
		// not left waiting.
		for len(reportsSeen[fa.round]) < fa.peerCount {
			if !fa.handleOne(reportsSeen) {
				return
			}
		}
		delete(reportsSeen, fa.round)
		fa.round++
	}
}

// handleOne processes a single inbound message, returning false on
// shutdown. When seen is non-nil, node reports are tallied per round.
func (fa *flowAgent) handleOne(seen map[int]map[model.NodeID]bool) bool {
	m, ok := <-fa.ep.Recv()
	if !ok {
		return false
	}
	switch m.Kind {
	case ctrlKind:
		var cm ctrlMsg
		if err := transport.Decode(m, &cm); err != nil {
			return true
		}
		if cm.Stop {
			return false
		}
		if cm.Leave && !fa.idle {
			fa.leaving = true
		}
		if cm.Join && fa.idle {
			fa.idle = false
			if fa.round <= fa.runUntil {
				fa.round = fa.runUntil + 1
			}
		}
		if cm.RunUntil > fa.runUntil {
			fa.runUntil = cm.RunUntil
		}
	case reportKind:
		var rm reportMsg
		if err := transport.Decode(m, &rm); err != nil {
			return true
		}
		fa.absorbReport(rm)
		if seen != nil {
			if seen[rm.Round] == nil {
				seen[rm.Round] = make(map[model.NodeID]bool)
			}
			seen[rm.Round][rm.Node] = true
		}
	}
	return true
}

// runAsync ticks on a timer, announcing rates computed from the latest
// absorbed reports.
func (fa *flowAgent) runAsync() {
	defer close(fa.done)
	ticker := time.NewTicker(fa.tickEvery)
	defer ticker.Stop()
	for {
		select {
		case m, ok := <-fa.ep.Recv():
			if !ok {
				return
			}
			switch m.Kind {
			case ctrlKind:
				var cm ctrlMsg
				if err := transport.Decode(m, &cm); err != nil {
					continue
				}
				if cm.Stop {
					return
				}
				if cm.Leave && !fa.idle {
					_ = fa.announce(fa.round, 0, false)
					fa.idle = true
				}
				if cm.Join {
					fa.idle = false
				}
			case reportKind:
				var rm reportMsg
				if err := transport.Decode(m, &rm); err != nil {
					continue
				}
				fa.absorbReport(rm)
			}
		case <-ticker.C:
			if fa.idle {
				continue
			}
			if err := fa.announce(fa.round, fa.computeRate(), true); err != nil {
				return
			}
			fa.round++
		}
	}
}
