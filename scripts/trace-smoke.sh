#!/usr/bin/env bash
# trace-smoke.sh — flight-recorder round trip through the analyzer.
#
# Runs lrgp-broker with the distributed optimizer and -dist-events, then
# feeds the event log through lrgp-trace and prints the analysis (round
# timeline, stragglers, loss hotspots, effective staleness). Run via
# `make trace-analyze`.
set -euo pipefail

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT
EVENTS="${TMP}/events.jsonl"

echo "trace-smoke: running lrgp-broker -optimizer dist -dist-events"
go run ./cmd/lrgp-broker -optimizer dist -rounds 60 -publish-seconds 0.2 \
    -dist-events "${EVENTS}" >"${TMP}/broker.out"

[ -s "${EVENTS}" ] || { echo "trace-smoke: no event log written" >&2; exit 1; }
echo "trace-smoke: analyzing $(wc -l <"${EVENTS}") events"
go run ./cmd/lrgp-trace -events "${EVENTS}"
