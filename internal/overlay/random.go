package overlay

import (
	"math"
	"math/rand"

	"repro/internal/model"
)

// RandomTopology generates a connected random overlay using a Waxman-like
// construction: nodes are placed uniformly in the unit square, a random
// spanning tree guarantees connectivity, and extra bidirectional links are
// added between pairs with probability alpha * exp(-distance/(beta*L))
// where L is the maximum possible distance. All links share one capacity.
// The generator is deterministic for a given rand source.
func RandomTopology(rng *rand.Rand, n int, alpha, beta, capacity float64) *Topology {
	if n < 1 {
		n = 1
	}
	if alpha <= 0 {
		alpha = 0.4
	}
	if beta <= 0 {
		beta = 0.3
	}
	if capacity <= 0 {
		capacity = 1e6
	}

	t := NewTopology(n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(a, b int) float64 {
		dx, dy := xs[a]-xs[b], ys[a]-ys[b]
		return math.Sqrt(dx*dx + dy*dy)
	}

	// Random spanning tree: connect each node (in shuffled order) to a
	// uniformly chosen earlier node.
	order := rng.Perm(n)
	for k := 1; k < n; k++ {
		a := order[k]
		b := order[rng.Intn(k)]
		// Construction guarantees valid distinct endpoints.
		_, _, _ = t.AddBidirectional(model.NodeID(a), model.NodeID(b), capacity)
	}

	// Waxman extras.
	maxDist := math.Sqrt2
	connected := make(map[[2]int]bool)
	for _, l := range t.Links() {
		connected[[2]int{int(l.From), int(l.To)}] = true
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if connected[[2]int{a, b}] {
				continue
			}
			p := alpha * math.Exp(-dist(a, b)/(beta*maxDist))
			if rng.Float64() < p {
				_, _, _ = t.AddBidirectional(model.NodeID(a), model.NodeID(b), capacity)
			}
		}
	}
	return t
}
