package core

import (
	"math"

	"repro/internal/model"
	"repro/internal/solver"
	"repro/internal/utility"
)

// Rate allocation (Algorithm 1). Given populations n_j and prices, each
// flow source maximizes the strictly concave objective of Equation 7,
//
//	phi(r) = sum_{j in C_i} n_j U_j(r) - r * P,   P = PL_i + PB_i,
//
// over [r^min, r^max]. The stationarity condition sum_j n_j U_j'(r) = P has
// a closed form when the flow's classes share a utility family (the paper's
// workloads always do); otherwise the engine bisects the strictly
// decreasing marginal-utility sum.

// rateFamily classifies a flow's classes for the closed-form fast path.
type rateFamily int

const (
	// famGeneral uses bisection.
	famGeneral rateFamily = iota + 1
	// famLog: every class is utility.Log with a common Shift.
	famLog
	// famPower: every class is utility.Power with a common Exponent.
	famPower
)

// rateSolver computes the Algorithm 1 rate for one flow.
type rateSolver struct {
	fid     model.FlowID
	flow    model.Flow
	classes []model.ClassID
	// utilities[k] is the utility of classes[k].
	utilities []utility.Function

	family rateFamily
	// shift is the common Log shift (famLog).
	shift float64
	// exponent is the common Power exponent (famPower).
	exponent float64
	// scales[k] is the rank/scale of classes[k] (famLog/famPower).
	scales []float64

	// bisectFn is built on first use and reused so the famGeneral path
	// does not allocate a closure per solve; bisectConsumers and
	// bisectPrice carry its arguments for the duration of one Bisect
	// call. A solver belongs to one flow and is driven by one goroutine
	// at a time, so the reuse is race-free.
	bisectFn        func(float64) float64
	bisectConsumers []int
	bisectPrice     float64
}

// newRateSolver inspects the classes of one flow and prepares the
// appropriate solving strategy.
func newRateSolver(p *model.Problem, ix *model.Index, fid model.FlowID) *rateSolver {
	classIDs := ix.ClassesByFlow(fid)
	rs := &rateSolver{
		fid:       fid,
		classes:   classIDs,
		utilities: make([]utility.Function, len(classIDs)),
		scales:    make([]float64, len(classIDs)),
	}
	rs.bind(p)
	return rs
}

// bind (re)targets the solver at p's current flow bounds and class
// utilities, re-running the family classification into the existing
// slices. Engine.Reset uses it to warm-start onto a refreshed problem
// without reallocating; the class list must be unchanged (Index.Refresh
// guarantees that).
func (rs *rateSolver) bind(p *model.Problem) {
	rs.flow = p.Flows[rs.fid]
	for k, cid := range rs.classes {
		rs.utilities[k] = p.Classes[cid].Utility
	}

	rs.family = famGeneral
	rs.shift, rs.exponent = 0, 0
	if len(rs.classes) == 0 {
		return
	}
	switch first := rs.utilities[0].(type) {
	case utility.Log:
		rs.family, rs.shift = famLog, first.Shift
		for k, fn := range rs.utilities {
			u, ok := fn.(utility.Log)
			if !ok || u.Shift != first.Shift {
				rs.family = famGeneral
				break
			}
			rs.scales[k] = u.Scale
		}
	case utility.Power:
		rs.family, rs.exponent = famPower, first.Exponent
		for k, fn := range rs.utilities {
			u, ok := fn.(utility.Power)
			if !ok || u.Exponent != first.Exponent {
				rs.family = famGeneral
				break
			}
			rs.scales[k] = u.Scale
		}
	}
}

// solve returns the rate maximizing Equation 7 for the given populations
// (indexed like the whole problem's class slice) and aggregate price P.
func (rs *rateSolver) solve(consumers []int, price float64) float64 {
	rmin, rmax := rs.flow.RateMin, rs.flow.RateMax

	total := 0
	for _, cid := range rs.classes {
		total += consumers[cid]
	}
	if total == 0 {
		// phi(r) = -r*P is maximized at the lowest allowed rate (P >= 0).
		return rmin
	}
	if price <= 0 {
		// No congestion anywhere on the path: utility is increasing in r.
		return rmax
	}

	// Marginal utility at the bounds decides saturation.
	if rs.marginal(consumers, rmin) <= price {
		return rmin
	}
	if rs.marginal(consumers, rmax) >= price {
		return rmax
	}

	switch rs.family {
	case famLog:
		// A/(shift+r) = P  =>  r = A/P - shift.
		a := rs.weightedScale(consumers)
		return clamp(a/price-rs.shift, rmin, rmax)
	case famPower:
		// A*k*r^(k-1) = P  =>  r = (P/(A*k))^(1/(k-1)).
		a := rs.weightedScale(consumers)
		r := math.Pow(price/(a*rs.exponent), 1/(rs.exponent-1))
		return clamp(r, rmin, rmax)
	default:
		if rs.bisectFn == nil {
			rs.bisectFn = func(r float64) float64 {
				return rs.marginal(rs.bisectConsumers, r) - rs.bisectPrice
			}
		}
		rs.bisectConsumers, rs.bisectPrice = consumers, price
		r, err := solver.Bisect(rs.bisectFn, rmin, rmax, solver.Options{})
		rs.bisectConsumers = nil
		if err != nil {
			// The bracketing checks above guarantee a sign change; this
			// is unreachable, but degrade to the safe lower bound.
			return rmin
		}
		return r
	}
}

// marginal returns sum_j n_j U_j'(r).
func (rs *rateSolver) marginal(consumers []int, r float64) float64 {
	sum := 0.0
	for k, cid := range rs.classes {
		if n := consumers[cid]; n > 0 {
			sum += float64(n) * rs.utilities[k].Deriv(r)
		}
	}
	return sum
}

// weightedScale returns sum_j n_j scale_j for the homogeneous fast paths.
func (rs *rateSolver) weightedScale(consumers []int) float64 {
	a := 0.0
	for k, cid := range rs.classes {
		a += float64(consumers[cid]) * rs.scales[k]
	}
	return a
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
