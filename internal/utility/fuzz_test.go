package utility

import (
	"encoding/json"
	"testing"
)

// FuzzSpecJSON fuzzes the Spec decode path: arbitrary JSON must either
// fail to build or produce a usable, well-behaved function.
func FuzzSpecJSON(f *testing.F) {
	f.Add(`{"kind":"log","scale":20}`)
	f.Add(`{"kind":"power","scale":1,"exponent":0.5}`)
	f.Add(`{"kind":"lincap","scale":2,"knee":100}`)
	f.Add(`{"kind":"hyperbolic","scale":9,"halfRate":30}`)
	f.Add(`{"kind":"nope"}`)
	f.Add(`{"scale":-1}`)
	f.Fuzz(func(t *testing.T, data string) {
		var spec Spec
		if err := json.Unmarshal([]byte(data), &spec); err != nil {
			t.Skip()
		}
		fn, err := spec.Build()
		if err != nil {
			return // rejected: fine
		}
		// Every accepted spec must produce an increasing function with a
		// positive decreasing derivative on a probe grid.
		prev := fn.Value(1)
		prevD := fn.Deriv(1)
		if !(prevD > 0) {
			t.Fatalf("%s: Deriv(1) = %g", fn.Name(), prevD)
		}
		for _, r := range []float64{2, 10, 100, 1000} {
			v, d := fn.Value(r), fn.Deriv(r)
			if v < prev {
				t.Fatalf("%s: Value(%g)=%g below previous %g", fn.Name(), r, v, prev)
			}
			if d > prevD {
				t.Fatalf("%s: Deriv(%g)=%g above previous %g", fn.Name(), r, d, prevD)
			}
			prev, prevD = v, d
		}
		// And it must round-trip.
		back, ok := SpecOf(fn)
		if !ok {
			t.Fatalf("%s: not serializable", fn.Name())
		}
		if _, err := back.Build(); err != nil {
			t.Fatalf("%s: round trip failed: %v", fn.Name(), err)
		}
	})
}
