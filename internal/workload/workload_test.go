package workload

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

func TestBaseMatchesTable1(t *testing.T) {
	p := Base()
	if err := model.Validate(p); err != nil {
		t.Fatalf("base workload invalid: %v", err)
	}
	if got := len(p.Flows); got != 6 {
		t.Errorf("flows = %d, want 6", got)
	}
	if got := len(p.Nodes); got != 3 {
		t.Errorf("nodes = %d, want 3", got)
	}
	if got := len(p.Classes); got != 20 {
		t.Errorf("classes = %d, want 20", got)
	}

	// Class pairs share flow, n^max, rank; Table 1 row spot checks.
	wantPairs := []struct {
		flow model.FlowID
		nMax int
		rank float64
	}{
		{0, 400, 20}, {0, 800, 5}, {0, 2000, 1},
		{1, 1000, 15}, {2, 1500, 10},
		{3, 400, 30}, {3, 800, 3}, {3, 2000, 2},
		{4, 1000, 40}, {5, 1500, 100},
	}
	for pair, want := range wantPairs {
		for k := 0; k < 2; k++ {
			c := p.Classes[2*pair+k]
			if c.Flow != want.flow || c.MaxConsumers != want.nMax {
				t.Errorf("class %d: flow=%d nMax=%d, want flow=%d nMax=%d",
					c.ID, c.Flow, c.MaxConsumers, want.flow, want.nMax)
			}
			u, ok := c.Utility.(utility.Log)
			if !ok || u.Scale != want.rank {
				t.Errorf("class %d: utility %v, want rank %g log", c.ID, c.Utility, want.rank)
			}
			if c.CostPerConsumer != ConsumerCost {
				t.Errorf("class %d: G = %g, want %d", c.ID, c.CostPerConsumer, ConsumerCost)
			}
		}
		// The two classes of a pair attach at different nodes.
		if p.Classes[2*pair].Node == p.Classes[2*pair+1].Node {
			t.Errorf("pair %d: both classes at node %d", pair, p.Classes[2*pair].Node)
		}
	}

	for _, n := range p.Nodes {
		if n.Capacity != NodeCapacity {
			t.Errorf("node %d capacity = %g, want %g", n.ID, n.Capacity, float64(NodeCapacity))
		}
		for fid, cost := range n.FlowCost {
			if cost != FlowNodeCost {
				t.Errorf("node %d flow %d F = %g, want %d", n.ID, fid, cost, FlowNodeCost)
			}
		}
	}
	for _, f := range p.Flows {
		if f.RateMin != RateMin || f.RateMax != RateMax {
			t.Errorf("flow %d rates [%g, %g], want [%d, %d]", f.ID, f.RateMin, f.RateMax, RateMin, RateMax)
		}
	}
}

func TestBaseFlowRouting(t *testing.T) {
	// "Each flow is routed only to the nodes where its consumer classes
	// are present."
	p := Base()
	ix := model.NewIndex(p)
	for i := range p.Flows {
		fid := model.FlowID(i)
		classNodes := make(map[model.NodeID]bool)
		for _, cid := range ix.ClassesByFlow(fid) {
			classNodes[p.Classes[cid].Node] = true
		}
		reached := ix.NodesByFlow(fid)
		if len(reached) != len(classNodes) {
			t.Errorf("flow %d reaches %d nodes, classes at %d", fid, len(reached), len(classNodes))
		}
		for _, b := range reached {
			if !classNodes[b] {
				t.Errorf("flow %d routed to node %d with no classes", fid, b)
			}
		}
	}
}

func TestScaledNodeSets(t *testing.T) {
	p := Scaled(Config{NodeSetCopies: 2})
	if err := model.Validate(p); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(p.Flows) != 6 || len(p.Nodes) != 6 || len(p.Classes) != 40 {
		t.Errorf("6f/6n: flows=%d nodes=%d classes=%d", len(p.Flows), len(p.Nodes), len(p.Classes))
	}
	// Every flow must reach both node-set replicas.
	ix := model.NewIndex(p)
	for i := range p.Flows {
		nodes := ix.NodesByFlow(model.FlowID(i))
		if len(nodes) != 4 { // 2 nodes per set x 2 sets
			t.Errorf("flow %d reaches %d nodes, want 4", i, len(nodes))
		}
	}
}

func TestScaledFlowCopies(t *testing.T) {
	p := Scaled(Config{FlowCopies: 2})
	if err := model.Validate(p); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(p.Flows) != 12 || len(p.Nodes) != 6 || len(p.Classes) != 40 {
		t.Errorf("12f/6n: flows=%d nodes=%d classes=%d", len(p.Flows), len(p.Nodes), len(p.Classes))
	}
	// Flow copies are disjoint: a copy-1 flow must not reach copy-0 nodes.
	ix := model.NewIndex(p)
	for i := 6; i < 12; i++ {
		for _, b := range ix.NodesByFlow(model.FlowID(i)) {
			if b < 3 {
				t.Errorf("copy-1 flow %d reaches copy-0 node %d", i, b)
			}
		}
	}
}

func TestTable2Workloads(t *testing.T) {
	ws := Table2Workloads()
	if len(ws) != 6 {
		t.Fatalf("workload count = %d, want 6", len(ws))
	}
	wantNames := []string{
		"6f-3n-log(1+r)", "12f-6n-log(1+r)", "24f-12n-log(1+r)",
		"6f-6n-log(1+r)", "6f-12n-log(1+r)", "6f-24n-log(1+r)",
	}
	for i, w := range ws {
		if w.Name != wantNames[i] {
			t.Errorf("workload %d name = %q, want %q", i, w.Name, wantNames[i])
		}
		if err := model.Validate(w); err != nil {
			t.Errorf("workload %q invalid: %v", w.Name, err)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	shapes := Table3Shapes()
	if len(shapes) != 4 {
		t.Fatalf("shape count = %d, want 4", len(shapes))
	}
	for _, s := range shapes {
		p := Scaled(Config{Shape: s})
		if err := model.Validate(p); err != nil {
			t.Errorf("shape %v workload invalid: %v", s, err)
		}
	}
}

func TestShapeUtility(t *testing.T) {
	tests := []struct {
		shape Shape
		want  utility.Function
	}{
		{ShapeLog, utility.NewLog(7)},
		{ShapePow25, utility.NewPower(7, 0.25)},
		{ShapePow50, utility.NewPower(7, 0.5)},
		{ShapePow75, utility.NewPower(7, 0.75)},
	}
	for _, tt := range tests {
		if got := tt.shape.Utility(7); got != tt.want {
			t.Errorf("%v.Utility(7) = %#v, want %#v", tt.shape, got, tt.want)
		}
	}
}

func TestShapeString(t *testing.T) {
	if got := Shape(99).String(); got != "Shape(99)" {
		t.Errorf("unknown shape string = %q", got)
	}
	if got := ShapePow50.String(); got != "r^0.5" {
		t.Errorf("ShapePow50 string = %q", got)
	}
}

func TestRandomWorkloadsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		p := Random(rng, RandomConfig{})
		if err := model.Validate(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		p := Random(rng, RandomConfig{Flows: 10, Nodes: 7, ClassesPerFlow: 5, Shape: ShapePow50})
		if err := model.Validate(p); err != nil {
			t.Fatalf("big trial %d: %v", trial, err)
		}
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(9)), RandomConfig{})
	b := Random(rand.New(rand.NewSource(9)), RandomConfig{})
	if len(a.Classes) != len(b.Classes) {
		t.Fatal("different class counts from same seed")
	}
	for j := range a.Classes {
		if a.Classes[j] != b.Classes[j] {
			t.Fatalf("class %d differs between same-seed runs", j)
		}
	}
}

func TestWithLinkBottlenecks(t *testing.T) {
	p := WithLinkBottlenecks(Base(), 0.5)
	if err := model.Validate(p); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(p.Links) != 6 {
		t.Errorf("links = %d, want one per flow", len(p.Links))
	}
	for _, l := range p.Links {
		if l.Capacity != 0.5*RateMax {
			t.Errorf("link %d capacity = %g, want %g", l.ID, l.Capacity, 0.5*RateMax)
		}
		if len(l.FlowCost) != 1 {
			t.Errorf("link %d carries %d flows, want 1", l.ID, len(l.FlowCost))
		}
	}
	// The original problem must not be mutated.
	if len(Base().Links) != 0 {
		t.Error("Base unexpectedly has links")
	}
}

func TestTinyValidates(t *testing.T) {
	if err := model.Validate(Tiny()); err != nil {
		t.Fatalf("tiny workload invalid: %v", err)
	}
}
