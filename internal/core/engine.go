package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
)

// minParallelItems is the smallest per-stage item count (flows, nodes or
// links) worth fanning out over the worker pool; below it the stage's work
// is comparable to the dispatch overhead and the engine runs it inline.
// Because parallel and serial execution are bit-identical, the cutover is
// purely a performance decision.
const minParallelItems = 16

// Engine runs synchronous LRGP iterations over a problem. It is the
// colocated formulation discussed in Section 3.5: all per-flow and per-node
// algorithm pieces execute in one process, in the same data-dependency
// order as the distributed version (rates, then populations, then prices).
//
// With Config.Workers > 1 (the default resolves to GOMAXPROCS) each Step
// stage is sharded across a persistent worker pool; results are
// bit-identical to the serial engine for any worker count. The pool's
// goroutines live only inside Step's stage barriers, so Step remains
// synchronous from the caller's point of view.
//
// An Engine is still not safe for concurrent use: no method — including
// the mid-run mutators SetFlowActive, SetClassDemand and SetNodeCapacity —
// may run concurrently with Step or with each other. Wrap it or use
// package dist for a concurrent, message-passing deployment.
type Engine struct {
	p   *model.Problem
	ix  *model.Index
	cfg Config

	iteration int
	rates     []float64
	consumers []int
	active    []bool

	nodePrices []float64
	linkPrices []float64
	nodeGamma  []gammaController

	solvers []*rateSolver
	// scratch[s] is shard s's admission scratch; the serial path uses
	// scratch[0].
	scratch [][]classBC

	// pool is non-nil when the engine shards stages across workers.
	pool   *workerPool
	shards int
	// overNode[s] and overLink[s] collect shard s's max overload; the
	// reduction over shards after the stage barrier is order-independent
	// (max is associative and commutative), so the result is bit-identical
	// to the serial scan.
	overNode []float64
	overLink []float64
	// stageFns are the shard entry points, bound once so dispatching a
	// stage allocates nothing.
	stageFns [3]func(shard int)
}

// StepResult summarizes one LRGP iteration.
type StepResult struct {
	// Iteration is 1-based.
	Iteration int
	// Utility is the objective value (Equation 1) after the iteration's
	// consumer allocation.
	Utility float64
	// MaxNodeOverload is the largest node usage minus capacity across
	// nodes (positive only when flow-node costs alone exceed some node's
	// capacity; the greedy step never overshoots otherwise).
	MaxNodeOverload float64
	// MaxLinkOverload is the largest link usage minus capacity.
	MaxLinkOverload float64
	// StageNanos holds the wall time of the rate, admission and
	// link-price stages (indexed by telemetry.StageRate/StageAdmission/
	// StagePrice). Populated only when Config.Telemetry is set; all
	// zero otherwise, so the untelemetered Step never reads the clock.
	StageNanos [3]int64
}

// NewEngine validates the problem and prepares an engine. The initial state
// is the LRGP starting point: all rates at r^min, all populations zero, all
// prices at the configured initial values.
func NewEngine(p *model.Problem, cfg Config) (*Engine, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)

	shards := 1
	if c.Workers > 1 {
		n := len(p.Flows)
		if len(p.Nodes) > n {
			n = len(p.Nodes)
		}
		if len(p.Links) > n {
			n = len(p.Links)
		}
		if n >= minParallelItems {
			shards = c.Workers
		}
	}

	e := &Engine{
		p:          p,
		ix:         ix,
		cfg:        c,
		rates:      make([]float64, len(p.Flows)),
		consumers:  make([]int, len(p.Classes)),
		active:     make([]bool, len(p.Flows)),
		nodePrices: make([]float64, len(p.Nodes)),
		linkPrices: make([]float64, len(p.Links)),
		nodeGamma:  make([]gammaController, len(p.Nodes)),
		solvers:    make([]*rateSolver, len(p.Flows)),
		shards:     shards,
		scratch:    make([][]classBC, shards),
	}
	for s := range e.scratch {
		e.scratch[s] = make([]classBC, 0, len(p.Classes))
	}
	for i := range p.Flows {
		e.rates[i] = p.Flows[i].RateMin
		e.active[i] = true
		e.solvers[i] = newRateSolver(p, ix, model.FlowID(i))
	}
	for b := range e.nodePrices {
		e.nodePrices[b] = c.InitialNodePrice
		e.nodeGamma[b] = newGammaController(c)
	}
	for l := range e.linkPrices {
		e.linkPrices[l] = c.InitialLinkPrice
	}
	if shards > 1 {
		e.overNode = make([]float64, shards)
		e.overLink = make([]float64, shards)
		e.stageFns = [3]func(int){e.rateShard, e.nodeShard, e.linkShard}
		e.pool = newWorkerPool(shards - 1)
		// Backstop for engines dropped without Close: idle workers hold no
		// reference to e (see workerPool), so the finalizer can fire and
		// release them.
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Close releases the engine's worker pool. It is a no-op for serial
// engines and idempotent otherwise; the engine must not be stepped after
// Close. Abandoned engines are closed by the garbage collector as a
// backstop, but deterministic shutdown should call Close explicitly.
func (e *Engine) Close() {
	if e.pool != nil {
		runtime.SetFinalizer(e, nil)
		e.pool.close()
	}
}

// shardRange returns shard s's half-open slice [lo, hi) of n items under
// the engine's fixed contiguous partition. The boundaries depend only on
// n, the shard count and s — never on scheduling — which is what makes
// parallel execution deterministic.
func (e *Engine) shardRange(n, s int) (lo, hi int) {
	return n * s / e.shards, n * (s + 1) / e.shards
}

// Step performs one synchronous LRGP iteration: Algorithm 1 at every flow
// source, then Algorithm 2 and the Equation 12 price update at every node,
// then Algorithm 3 (Equation 13) for every link. With Workers > 1 each
// stage fans out over the worker pool and barriers before the next; every
// stage is data-independent within itself (rates are per-flow, admissions
// and node prices per-node, link prices per-link), so the parallel
// schedule performs exactly the serial arithmetic and the result is
// bit-identical for any worker count.
func (e *Engine) Step() StepResult {
	e.iteration++
	res := StepResult{Iteration: e.iteration}

	// Stage timing exists only on the telemetry path: the tel == nil
	// branches keep the disabled Step free of clock reads entirely.
	tel := e.cfg.Telemetry
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}

	// 1. Rate allocation, using last iteration's populations and prices.
	if e.pool != nil && len(e.p.Flows) >= minParallelItems {
		e.pool.run(e.stageFns[0], e.shards)
	} else {
		for i := range e.p.Flows {
			e.rateOne(i)
		}
	}
	if tel != nil {
		now := time.Now()
		res.StageNanos[0] = now.Sub(t0).Nanoseconds()
		t0 = now
	}

	// 2. Greedy consumer allocation and node price update.
	if e.pool != nil && len(e.p.Nodes) >= minParallelItems {
		e.pool.run(e.stageFns[1], e.shards)
		for _, over := range e.overNode {
			if over > res.MaxNodeOverload {
				res.MaxNodeOverload = over
			}
		}
	} else {
		for b := range e.p.Nodes {
			if over := e.nodeOne(b, e.scratch[0]); over > res.MaxNodeOverload {
				res.MaxNodeOverload = over
			}
		}
	}
	if tel != nil {
		now := time.Now()
		res.StageNanos[1] = now.Sub(t0).Nanoseconds()
		t0 = now
	}

	// 3. Link price update.
	if e.pool != nil && len(e.p.Links) >= minParallelItems {
		e.pool.run(e.stageFns[2], e.shards)
		for _, over := range e.overLink {
			if over > res.MaxLinkOverload {
				res.MaxLinkOverload = over
			}
		}
	} else {
		for l := range e.p.Links {
			if over := e.linkOne(l); over > res.MaxLinkOverload {
				res.MaxLinkOverload = over
			}
		}
	}
	if tel != nil {
		res.StageNanos[2] = time.Since(t0).Nanoseconds()
	}

	res.Utility = e.Utility()
	if tel != nil {
		tel.ObserveStep(res.StageNanos, res.Utility,
			res.MaxNodeOverload, res.MaxLinkOverload,
			len(e.p.Nodes), len(e.p.Links))
	}
	return res
}

// rateOne runs Algorithm 1 for flow i (writes only e.rates[i]).
func (e *Engine) rateOne(i int) {
	if !e.active[i] {
		e.rates[i] = 0
		return
	}
	price := e.flowPrice(model.FlowID(i))
	e.rates[i] = e.solvers[i].solve(e.consumers, price)
}

// nodeOne runs Algorithm 2 and the Equation 12 price update for node b,
// returning the node's overload (usage minus capacity; possibly negative).
// It writes only b's populations, price and gamma state.
func (e *Engine) nodeOne(b int, scratch []classBC) float64 {
	bid := model.NodeID(b)
	out := admitNode(e.p, e.ix, bid, e.rates, e.active, e.consumers, scratch)
	capacity := e.p.Nodes[b].Capacity

	gamma1, gamma2 := e.cfg.Gamma1, e.cfg.Gamma2
	prev := e.nodePrices[b]
	if e.cfg.Adaptive {
		gamma1 = e.nodeGamma[b].gamma
		gamma2 = gamma1
	}
	next := nodePriceUpdate(prev, out.bestUnsatisfied, out.used, capacity, gamma1, gamma2)
	if e.cfg.Adaptive {
		e.nodeGamma[b].observe(priceGap(prev, out.bestUnsatisfied, out.used, capacity), prev)
	}
	e.nodePrices[b] = next
	return out.used - capacity
}

// linkOne runs the Equation 13 update for link l, returning the link's
// overload. It writes only e.linkPrices[l].
func (e *Engine) linkOne(l int) float64 {
	lid := model.LinkID(l)
	used := 0.0
	costs := e.ix.FlowCostsByLink(lid)
	for k, i := range e.ix.FlowsByLink(lid) {
		if e.active[i] {
			used += costs[k] * e.rates[i]
		}
	}
	capacity := e.p.Links[l].Capacity
	e.linkPrices[l] = linkPriceUpdate(e.linkPrices[l], used, capacity, e.cfg.LinkGamma)
	return used - capacity
}

// rateShard, nodeShard and linkShard execute one contiguous shard of their
// stage; shard boundaries are fixed by the item count and shard count, so
// every shard touches a disjoint index range.
func (e *Engine) rateShard(s int) {
	lo, hi := e.shardRange(len(e.p.Flows), s)
	for i := lo; i < hi; i++ {
		e.rateOne(i)
	}
}

func (e *Engine) nodeShard(s int) {
	lo, hi := e.shardRange(len(e.p.Nodes), s)
	scratch, over := e.scratch[s], 0.0
	for b := lo; b < hi; b++ {
		if o := e.nodeOne(b, scratch); o > over {
			over = o
		}
	}
	e.overNode[s] = over
}

func (e *Engine) linkShard(s int) {
	lo, hi := e.shardRange(len(e.p.Links), s)
	over := 0.0
	for l := lo; l < hi; l++ {
		if o := e.linkOne(l); o > over {
			over = o
		}
	}
	e.overLink[s] = over
}

// flowPrice computes PL_i + PB_i (Equations 8 and 9) for flow i from the
// current prices and populations, using the index's dense per-flow cost
// views and precomputed per-(flow, node) class lists.
func (e *Engine) flowPrice(i model.FlowID) float64 {
	price := 0.0
	lcosts := e.ix.LinkCostsByFlow(i)
	for k, l := range e.ix.LinksByFlow(i) {
		price += lcosts[k] * e.linkPrices[l]
	}
	ncosts := e.ix.NodeCostsByFlow(i)
	classes := e.ix.ClassesByFlowNode(i)
	for k, b := range e.ix.NodesByFlow(i) {
		coeff := ncosts[k]
		for _, cid := range classes[k] {
			coeff += e.p.Classes[cid].CostPerConsumer * float64(e.consumers[cid])
		}
		price += coeff * e.nodePrices[b]
	}
	return price
}

// Utility returns the current objective value (Equation 1). Classes of
// inactive flows contribute nothing (their populations are zero).
func (e *Engine) Utility() float64 {
	total := 0.0
	for j := range e.p.Classes {
		n := e.consumers[j]
		if n == 0 {
			continue
		}
		c := &e.p.Classes[j]
		total += float64(n) * c.Utility.Value(e.rates[c.Flow])
	}
	return total
}

// SetFlowActive includes or excludes a flow from subsequent iterations,
// modeling a flow source joining or leaving the system (the Figure 3
// experiment removes flow 5 mid-run). Deactivating zeroes the flow's rate
// and its classes' populations immediately.
func (e *Engine) SetFlowActive(i model.FlowID, active bool) {
	if e.active[i] == active {
		return
	}
	e.active[i] = active
	if !active {
		e.rates[i] = 0
		for _, cid := range e.ix.ClassesByFlow(i) {
			e.consumers[cid] = 0
		}
	} else {
		e.rates[i] = e.p.Flows[i].RateMin
	}
}

// FlowActive reports whether flow i participates in iterations.
func (e *Engine) FlowActive(i model.FlowID) bool { return e.active[i] }

// SetClassDemand changes a class's n^max mid-run, modeling consumers
// arriving at or leaving the system (the engine "runs all the time,
// responding to changes in workload", Section 2.1). The next iteration's
// greedy allocation picks the change up; prices adapt over the following
// iterations.
//
// Like every Engine method, SetClassDemand is safe only between Step
// calls: Step's worker goroutines read the class table and populations
// without synchronization, so a mutation concurrent with Step is a data
// race regardless of the worker count.
func (e *Engine) SetClassDemand(j model.ClassID, maxConsumers int) error {
	if j < 0 || int(j) >= len(e.p.Classes) {
		return fmt.Errorf("core: unknown class %d", j)
	}
	if maxConsumers < 0 {
		return fmt.Errorf("core: class %d demand %d < 0", j, maxConsumers)
	}
	e.p.Classes[j].MaxConsumers = maxConsumers
	if e.consumers[j] > maxConsumers {
		e.consumers[j] = maxConsumers
	}
	return nil
}

// SetNodeCapacity changes a node's capacity mid-run, modeling hardware
// degradation or scale-out. Safe only between Step calls, never
// concurrently with Step (see SetClassDemand).
func (e *Engine) SetNodeCapacity(b model.NodeID, capacity float64) error {
	if b < 0 || int(b) >= len(e.p.Nodes) {
		return fmt.Errorf("core: unknown node %d", b)
	}
	if capacity <= 0 {
		return fmt.Errorf("core: node %d capacity %g <= 0", b, capacity)
	}
	e.p.Nodes[b].Capacity = capacity
	return nil
}

// Iteration returns the number of completed iterations.
func (e *Engine) Iteration() int { return e.iteration }

// Problem returns the engine's problem.
func (e *Engine) Problem() *model.Problem { return e.p }

// Index returns the engine's precomputed lookup index.
func (e *Engine) Index() *model.Index { return e.ix }

// Allocation returns a copy of the current rates and populations.
func (e *Engine) Allocation() model.Allocation {
	a := model.Allocation{
		Rates:     make([]float64, len(e.rates)),
		Consumers: make([]int, len(e.consumers)),
	}
	copy(a.Rates, e.rates)
	copy(a.Consumers, e.consumers)
	return a
}

// NodePrices returns a copy of the node price vector.
func (e *Engine) NodePrices() []float64 {
	out := make([]float64, len(e.nodePrices))
	copy(out, e.nodePrices)
	return out
}

// LinkPrices returns a copy of the link price vector.
func (e *Engine) LinkPrices() []float64 {
	out := make([]float64, len(e.linkPrices))
	copy(out, e.linkPrices)
	return out
}

// Gammas returns a copy of the per-node adaptive stepsizes (meaningful only
// with Config.Adaptive).
func (e *Engine) Gammas() []float64 {
	out := make([]float64, len(e.nodeGamma))
	for b := range e.nodeGamma {
		out[b] = e.nodeGamma[b].gamma
	}
	return out
}

// Result summarizes a Solve run.
type Result struct {
	// Utility is the objective value at the final iteration.
	Utility float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the 0.1% amplitude rule was met.
	Converged bool
	// ConvergedAt is the first iteration satisfying the rule (or -1).
	ConvergedAt int
	// Allocation is the final allocation.
	Allocation model.Allocation
	// Trace is the utility after each iteration.
	Trace []float64
}

// Solve runs until the paper's convergence rule (utility oscillation
// amplitude < 0.1% over a trailing window) or maxIter iterations,
// whichever comes first, and returns the outcome. Iterations continue for
// one full window after first detection so the reported utility is the
// settled value.
func (e *Engine) Solve(maxIter int) Result {
	if maxIter <= 0 {
		maxIter = 250
	}
	det := metrics.NewConvergenceDetector(0, 0)
	trace := make([]float64, 0, maxIter)
	for t := 0; t < maxIter; t++ {
		r := e.Step()
		trace = append(trace, r.Utility)
		if det.Observe(r.Utility) {
			break
		}
	}
	e.cfg.Telemetry.ObserveConvergence(det.Converged(), det.ConvergedAt())
	return Result{
		Utility:     trace[len(trace)-1],
		Iterations:  len(trace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       trace,
	}
}
