package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/utility"
	"repro/internal/workload"
)

// Property-based tests on LRGP's invariants, run over randomized
// workloads and randomized algorithm parameters.

// TestPropertyGreedyNeverOverAdmits: for any rates within bounds, the
// greedy allocation must respect node capacity whenever the flow costs
// alone fit, and must leave no room for one more consumer of the
// highest-BC unsatisfied class (local maximality of the greedy packing).
func TestPropertyGreedyNeverOverAdmits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prop := func(seed int64, rateBits uint32) bool {
		p := workload.Random(rand.New(rand.NewSource(seed)), workload.RandomConfig{
			Flows: 2 + int(seed%3+3)%3, Nodes: 2 + int(rateBits%2),
		})
		ix := model.NewIndex(p)
		rates := make([]float64, len(p.Flows))
		r := rand.New(rand.NewSource(int64(rateBits)))
		for i, f := range p.Flows {
			rates[i] = f.RateMin + r.Float64()*(f.RateMax-f.RateMin)
		}
		consumers, _ := GreedyPopulations(p, ix, rates)
		a := model.Allocation{Rates: rates, Consumers: consumers}

		for b := range p.Nodes {
			bid := model.NodeID(b)
			flowUse := model.NodeFlowUsage(p, ix, a, bid)
			used := model.NodeUsage(p, ix, a, bid)
			if flowUse > p.Nodes[b].Capacity {
				continue // the boundary case: all populations must be 0
			}
			if used > p.Nodes[b].Capacity+1e-9 {
				return false
			}
			// Local maximality: the cheapest unsatisfied class at this
			// node must not fit in the leftover budget.
			leftover := p.Nodes[b].Capacity - used
			for _, cid := range ix.ClassesByNode(bid) {
				c := &p.Classes[cid]
				if consumers[cid] >= c.MaxConsumers {
					continue
				}
				if c.Utility.Value(rates[c.Flow]) <= 0 {
					continue // never admitted by design
				}
				if c.CostPerConsumer*rates[c.Flow] <= leftover {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRateWithinBounds: the rate allocator never leaves the
// flow's [RateMin, RateMax] interval, for any price and populations.
func TestPropertyRateWithinBounds(t *testing.T) {
	p, ix := rateProblem(10, 1000,
		utility.NewLog(20), utility.NewPower(10, 0.5), utility.Hyperbolic{Scale: 50, HalfRate: 40})
	rs := newRateSolver(p, ix, 0)
	prop := func(n0, n1, n2 uint16, priceBits uint32) bool {
		consumers := []int{int(n0 % 3000), int(n1 % 3000), int(n2 % 3000)}
		price := float64(priceBits) / 1e4 // 0 .. ~4.3e5
		r := rs.solve(consumers, price)
		return r >= 10 && r <= 1000 && !math.IsNaN(r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRateStationarity: whenever the solved rate is interior, the
// marginal utility matches the price to solver tolerance.
func TestPropertyRateStationarity(t *testing.T) {
	p, ix := rateProblem(10, 1000, utility.NewLog(20), utility.NewPower(10, 0.5))
	rs := newRateSolver(p, ix, 0)
	prop := func(n0, n1 uint16, priceBits uint16) bool {
		consumers := []int{1 + int(n0%2000), 1 + int(n1%2000)}
		price := 0.1 + float64(priceBits)/10
		r := rs.solve(consumers, price)
		if r <= 10 || r >= 1000 {
			return true // boundary: stationarity need not hold
		}
		resid := rs.marginal(consumers, r) - price
		return math.Abs(resid) <= 1e-6*(1+price)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEngineInvariants: across random workloads and stepsizes,
// every iteration keeps prices non-negative, rates within bounds,
// populations within [0, max], and gamma within its clamp.
func TestPropertyEngineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		p := workload.Random(rng, workload.RandomConfig{
			Flows: 2 + rng.Intn(5), Nodes: 2 + rng.Intn(4), ClassesPerFlow: 1 + rng.Intn(4),
		})
		cfg := Config{Adaptive: rng.Intn(2) == 0}
		if !cfg.Adaptive {
			cfg.Gamma1 = 0.01 + rng.Float64()
			cfg.Gamma2 = cfg.Gamma1
		}
		e, err := NewEngine(p, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 60; i++ {
			e.Step()
			a := e.Allocation()
			for fi, f := range p.Flows {
				if a.Rates[fi] < f.RateMin-1e-12 || a.Rates[fi] > f.RateMax+1e-12 {
					t.Fatalf("trial %d iter %d: rate[%d]=%g outside [%g,%g]",
						trial, i, fi, a.Rates[fi], f.RateMin, f.RateMax)
				}
			}
			for j, c := range p.Classes {
				if a.Consumers[j] < 0 || a.Consumers[j] > c.MaxConsumers {
					t.Fatalf("trial %d iter %d: n[%d]=%d outside [0,%d]",
						trial, i, j, a.Consumers[j], c.MaxConsumers)
				}
			}
			for b, pr := range e.NodePrices() {
				if pr < 0 || math.IsNaN(pr) {
					t.Fatalf("trial %d iter %d: price[%d]=%g", trial, i, b, pr)
				}
			}
			if cfg.Adaptive {
				for b, g := range e.Gammas() {
					if g < DefaultGammaMin-1e-15 || g > DefaultGammaMax+1e-15 {
						t.Fatalf("trial %d iter %d: gamma[%d]=%g outside clamp", trial, i, b, g)
					}
				}
			}
		}
	}
}

// TestPropertyUtilityNondecreasingInCapacity: more node capacity never
// hurts the converged utility (monotonicity sanity check of the whole
// optimizer).
func TestPropertyUtilityNondecreasingInCapacity(t *testing.T) {
	base := workload.Base()
	prev := -1.0
	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		p := base.Clone()
		for b := range p.Nodes {
			p.Nodes[b].Capacity *= scale
		}
		e, err := NewEngine(p, Config{Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		u := e.Solve(400).Utility
		// Allow a small tolerance: LRGP is a heuristic and tiny
		// non-monotonicities near discrete boundaries are possible.
		if u < prev*0.995 {
			t.Errorf("capacity x%g: utility %.0f fell below previous %.0f", scale, u, prev)
		}
		prev = u
	}
}
