// Command lrgp-broker demonstrates the full stack end to end: the LRGP
// optimizer computes an allocation — either colocated (the synchronous
// core.Engine, the default) or as a distributed cluster of
// message-passing agents over an in-memory or TCP transport — and the
// allocation is enacted by the event broker (token-bucket rate limits at
// flow sources, admission control on consumers) while synthetic
// producers publish traffic.
//
// With -telemetry-addr the process exposes its observability surface
// over HTTP: Prometheus /metrics (engine stage timings, broker message
// counters), /debug/pprof/*, /debug/vars and a /snapshot JSON view of
// the optimizer state. See README.md "Observability".
//
// Usage:
//
//	lrgp-broker [-optimizer colocated|dist] [-transport memory|tcp]
//	            [-rounds 120] [-workers 0] [-reopt 0] [-publish-seconds 2]
//	            [-producers 1] [-telemetry-addr :9090] [-trace-out run.jsonl]
//	            [-dist-events events.jsonl] [-dist-stall-timeout 0]
//	            [-autopilot] [-autopilot-seconds 5] [-autopilot-interval 50ms]
//	            [-churn storm,flash,diurnal]
//
// -trace-out records a JSONL iteration trace (one
// telemetry.IterationRecord per line): the full per-iteration optimizer
// state for colocated runs, and the per-round utility series for dist
// runs. -dist-events dumps the distributed runtime's flight-recorder
// event log after the run (analyze with lrgp-trace); if the cluster
// stalls, the post-mortem dump lands in the same file.
// -dist-stall-timeout arms the stall detector: if the collector makes
// no progress for that long while rounds are pending, the stall is
// counted (lrgp_dist_stalls_total) and every agent's ring is dumped to
// the -dist-events file as a post-mortem.
//
// -reopt N (colocated only) follows the initial solve with N
// re-optimization rounds: each perturbs the workload's node capacities
// and warm re-solves from the previous fixpoint via Engine.Reset instead
// of rebuilding the engine, the steady-state loop a long-lived broker
// runs. The last round's allocation is the one enacted.
//
// -autopilot replaces the solve-once-then-publish flow entirely: a
// broker.Autopilot re-optimizes continuously (every -autopilot-interval)
// from live demand while churn drivers (-churn, comma-separated from
// storm, flash, diurnal) attach and detach consumers and producers
// publish against the enacted rates for -autopilot-seconds. Enactment
// goes through the broker's incremental route path; with -telemetry-addr
// the lrgp_enact_* family (apply latency, route-build modes, enacted vs
// skipped cycles, allocation delta, oscillation) is scrapeable on
// /metrics throughout the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lrgp-broker:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lrgp-broker", flag.ContinueOnError)
	var (
		optimizer     = fs.String("optimizer", "colocated", "optimizer formulation: colocated (synchronous engine) or dist (message-passing agents)")
		transportName = fs.String("transport", "memory", "transport for -optimizer dist: memory or tcp")
		distWire      = fs.String("dist-wire", "json", "wire format for -optimizer dist: json or binary")
		distBatch     = fs.Bool("dist-batch", false, "coalesce -optimizer dist traffic into one frame per host per flush")
		distHosts     = fs.Int("dist-hosts", 0, "simulated host count for -dist-batch gateways (0 = one per node)")
		distStaleness = fs.Int("dist-staleness", 0, "bounded-staleness K for -optimizer dist rounds (0 = synchronous barrier)")
		distEvents    = fs.String("dist-events", "", "write the -optimizer dist flight-recorder event log (JSONL, lrgp-trace input) to this file; a stall post-mortem lands here too")
		distStall     = fs.Duration("dist-stall-timeout", 0, "arm the dist stall detector: count a stall and dump a post-mortem after this long without collector progress (0 disables)")
		traceOut      = fs.String("trace-out", "", "record a JSONL iteration trace (telemetry.IterationRecord per iteration or round) to this file")
		rounds        = fs.Int("rounds", 120, "LRGP iterations (colocated) or synchronous rounds (dist)")
		workers       = fs.Int("workers", 0, "colocated engine Step workers (0 = GOMAXPROCS, 1 = serial)")
		reopt         = fs.Int("reopt", 0, "warm re-optimization rounds after the initial colocated solve (perturb capacities, Engine.Reset, re-solve)")
		pubSeconds    = fs.Float64("publish-seconds", 2, "how long to publish synthetic traffic")
		producersN    = fs.Int("producers", 1, "concurrent producer goroutines generating the synthetic traffic (flows are spread round-robin; several producers may share a flow)")
		telemetryAddr = fs.String("telemetry-addr", "", "serve /metrics, /debug/pprof, /debug/vars and /snapshot on this address (e.g. :9090); empty disables")
		autopilot     = fs.Bool("autopilot", false, "run the continuous re-optimization loop under synthetic churn instead of the solve-once demo (colocated only)")
		apSeconds     = fs.Float64("autopilot-seconds", 5, "how long the -autopilot scenario runs")
		apInterval    = fs.Duration("autopilot-interval", 50*time.Millisecond, "re-optimization cycle interval for -autopilot")
		churnSpec     = fs.String("churn", "storm,flash,diurnal", "comma-separated churn drivers for -autopilot: storm, flash, diurnal")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := workload.Base()

	// Telemetry is wired before any optimization so a scraper attached
	// at startup observes the whole run. The handles stay nil without
	// -telemetry-addr, which disables instrumentation entirely.
	var (
		em   *telemetry.EngineMetrics
		bm   *telemetry.BrokerMetrics
		dm   *telemetry.DistMetrics
		enm  *telemetry.EnactMetrics
		snap atomic.Pointer[core.Snapshot]
	)
	if *telemetryAddr != "" {
		reg := telemetry.NewRegistry()
		em = telemetry.NewEngineMetrics(reg)
		bm = telemetry.NewBrokerMetrics(reg)
		enm = telemetry.NewEnactMetrics(reg)
		if *optimizer == "dist" {
			dm = telemetry.NewDistMetrics(reg)
		}
		mux := telemetry.NewMux(reg, func() (any, bool) {
			s := snap.Load()
			if s == nil {
				return nil, false
			}
			return s, true
		})
		srv, err := telemetry.ListenAndServe(*telemetryAddr, mux)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "telemetry: listening on http://%s (/metrics /snapshot /debug/pprof /debug/vars)\n", srv.Addr)
	}

	if *autopilot {
		if *optimizer != "colocated" {
			return fmt.Errorf("-autopilot requires -optimizer colocated (the dist formulation has no live re-optimization loop yet)")
		}
		return runAutopilot(out, p, bm, enm, *apSeconds, *apInterval, *churnSpec, *workers)
	}

	// -trace-out: one JSONL IterationRecord per optimizer step. The
	// initial colocated solve and any -reopt rounds share the file, with
	// iteration numbers running continuously through it.
	var tw *telemetry.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tw = telemetry.NewTraceWriter(f)
		defer tw.Flush()
	}

	var alloc model.Allocation
	start := time.Now()
	switch *optimizer {
	case "colocated":
		fmt.Fprintf(out, "optimizing %s with the colocated engine...\n", p.Name)
		e, err := core.NewEngine(p, core.Config{Adaptive: true, Workers: *workers, Telemetry: em})
		if err != nil {
			return err
		}
		res, err := solveTraced(e, len(p.Classes), *rounds, tw, 0)
		if err != nil {
			return err
		}
		iterBase := res.Iterations
		s := e.Snapshot()
		snap.Store(&s)
		alloc = res.Allocation
		converged := "not converged"
		if res.Converged {
			converged = fmt.Sprintf("converged at %d", res.ConvergedAt)
		}
		fmt.Fprintf(out, "  %d iterations in %v, final utility %.0f (%s)\n",
			res.Iterations, time.Since(start).Round(time.Millisecond), res.Utility, converged)
		// Warm re-optimization rounds: perturb node capacities and
		// re-solve from the previous fixpoint, the pattern a long-lived
		// broker uses to track drifting conditions without rebuilding the
		// engine (or paying cold-start iterations) each time.
		for k := 1; k <= *reopt; k++ {
			scale := 0.9
			if k%2 == 0 {
				scale = 1.1
			}
			q := p.Clone()
			for b := range q.Nodes {
				q.Nodes[b].Capacity *= scale
			}
			if err := e.Reset(q); err != nil {
				return err
			}
			rs := time.Now()
			res, err = solveTraced(e, len(p.Classes), *rounds, tw, iterBase)
			if err != nil {
				return err
			}
			iterBase += res.Iterations
			s := e.Snapshot()
			snap.Store(&s)
			alloc = res.Allocation
			converged := "not converged"
			if res.Converged {
				converged = fmt.Sprintf("converged at %d", res.ConvergedAt)
			}
			fmt.Fprintf(out, "  reopt %d: capacity %.1fx, warm re-solve in %v, utility %.0f (%s)\n",
				k, scale, time.Since(rs).Round(time.Millisecond), res.Utility, converged)
		}
		e.Close()
	case "dist":
		var net transport.Network
		switch *transportName {
		case "memory":
			net = transport.NewMemory()
		case "tcp":
			net = transport.NewTCP()
		default:
			return fmt.Errorf("unknown -transport %q", *transportName)
		}
		defer net.Close()

		wire, err := transport.ParseWire(*distWire)
		if err != nil {
			return fmt.Errorf("-dist-wire: %w", err)
		}
		fmt.Fprintf(out, "optimizing %s over %s transport (%d agents, %s wire, batch=%v, K=%d)...\n",
			p.Name, *transportName, len(p.Flows)+len(p.Nodes), wire, *distBatch, *distStaleness)
		cfg := dist.Config{
			Core:         core.Config{Adaptive: true},
			Wire:         wire,
			Batch:        *distBatch,
			Hosts:        *distHosts,
			Staleness:    *distStaleness,
			Telemetry:    dm,
			StallTimeout: *distStall,
		}
		var evFile *os.File
		if *distEvents != "" {
			f, err := os.Create(*distEvents)
			if err != nil {
				return err
			}
			defer f.Close()
			evFile = f
			cfg.Record = true
			cfg.Postmortem = f
		}
		cl, err := dist.New(p, cfg, net)
		if err != nil {
			return err
		}
		defer cl.Close()
		stats, err := cl.Run(*rounds, 2*time.Minute)
		if err != nil {
			return err
		}
		alloc = cl.Allocation()
		if tw != nil {
			for _, s := range stats {
				if werr := tw.Write(&telemetry.IterationRecord{Iteration: s.Round, Utility: s.Utility}); werr != nil {
					return werr
				}
			}
		}
		// Mirror the transport's traffic counters into the lrgp_dist_net
		// gauges so a scraper sees per-wire frame/byte attribution.
		if dm != nil {
			if m, ok := net.(transport.Meter); ok {
				st := m.NetStats()
				dm.ObserveNet(st.JSON.Frames, st.JSON.Bytes, st.Binary.Frames, st.Binary.Bytes, st.Dropped)
			}
		}
		if evFile != nil {
			if err := cl.WriteEvents(evFile); err != nil {
				return err
			}
			fmt.Fprintf(out, "  flight recorder: event log written to %s\n", *distEvents)
		}
		fmt.Fprintf(out, "  %d rounds in %v, final utility %.0f\n",
			len(stats), time.Since(start).Round(time.Millisecond), stats[len(stats)-1].Utility)
	default:
		return fmt.Errorf("unknown -optimizer %q (want colocated or dist)", *optimizer)
	}

	// Stand up the broker, attach the full demand, enact the allocation.
	b, err := broker.New(p, broker.WithTelemetry(bm))
	if err != nil {
		return err
	}
	// Handlers run concurrently once -producers > 1, so the demo's own
	// receipt counters must be atomic like any real consumer's.
	delivered := make([]atomic.Uint64, len(p.Classes))
	for j, c := range p.Classes {
		j := j
		for k := 0; k < c.MaxConsumers; k++ {
			if _, err := b.AttachConsumer(model.ClassID(j), nil, func(broker.Message) {
				delivered[j].Add(1)
			}); err != nil {
				return err
			}
		}
	}
	if err := b.ApplyAllocation(alloc); err != nil {
		return err
	}
	fmt.Fprintf(out, "enacted allocation into broker (%d consumers attached)\n", totalAttached(p))

	// Publish at each flow's allocated rate for a while, spread over
	// -producers concurrent goroutines driving the broker's lock-free
	// publish path; the token buckets should admit nearly everything,
	// and over-publish should be throttled. Flows are assigned round-
	// robin; when producers outnumber flows, the sharers split their
	// flow's target rate so the aggregate offered load is unchanged.
	nProd := *producersN
	if nProd < 1 {
		nProd = 1
	}
	fmt.Fprintf(out, "publishing for %.1fs at allocated rates with %d concurrent producers (plus 2x over-publish on flow 0)...\n",
		*pubSeconds, nProd)
	assigned := make([][]model.FlowID, nProd)
	share := make([]float64, len(p.Flows))
	if nProd >= len(p.Flows) {
		for g := 0; g < nProd; g++ {
			i := g % len(p.Flows)
			assigned[g] = []model.FlowID{model.FlowID(i)}
			share[i]++
		}
	} else {
		for i := range p.Flows {
			g := i % nProd
			assigned[g] = append(assigned[g], model.FlowID(i))
			share[i] = 1
		}
	}
	deadline := time.Now().Add(time.Duration(*pubSeconds * float64(time.Second)))
	var wg sync.WaitGroup
	producers := make([][]*broker.Producer, nProd)
	for g := 0; g < nProd; g++ {
		producers[g] = make([]*broker.Producer, len(assigned[g]))
		for k, flow := range assigned[g] {
			pr, err := b.RegisterProducer(flow)
			if err != nil {
				return err
			}
			producers[g][k] = pr
		}
		wg.Add(1)
		go func(flows []model.FlowID, prs []*broker.Producer) {
			defer wg.Done()
			attrs := map[string]float64{"price": 80} // read-only once published
			next := make([]time.Time, len(flows))
			for time.Now().Before(deadline) {
				now := time.Now()
				for k, i := range flows {
					rate := alloc.Rates[i] / share[i]
					if i == 0 {
						rate *= 2 // deliberately exceed flow 0's allocation
					}
					if rate <= 0 || now.Before(next[k]) {
						continue
					}
					_ = prs[k].Publish(attrs, "tick")
					next[k] = now.Add(time.Duration(float64(time.Second) / rate))
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(assigned[g], producers[g])
	}
	wg.Wait()
	var prodPublished, prodThrottled uint64
	for g := range producers {
		for _, pr := range producers[g] {
			st := pr.Stats()
			prodPublished += st.Published
			prodThrottled += st.Throttled
		}
	}
	fmt.Fprintf(out, "producer path: %d goroutines published=%d throttled=%d\n",
		nProd, prodPublished, prodThrottled)

	fmt.Fprintln(out, "\nflow        rate      published  throttled")
	for i := range p.Flows {
		fs, err := b.FlowStats(model.FlowID(i))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10s  %8.1f  %9d  %9d\n", p.Flows[i].Name, fs.Rate, fs.Published, fs.Throttled)
	}
	fmt.Fprintln(out, "\nclass       admitted/attached   delivered")
	for j := range p.Classes {
		cs, err := b.ClassStats(model.ClassID(j))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10s  %8d/%-8d   %9d\n", p.Classes[j].Name, cs.Admitted, cs.Attached, cs.Delivered)
	}
	return nil
}

// solveTraced mirrors Engine.Solve's loop — same convergence detector,
// same stopping rule — while writing one IterationRecord per iteration
// to tw, numbered from iterBase+1 so -reopt rounds continue the trace
// file rather than restarting it. With a nil tw it is exactly Solve.
func solveTraced(e *core.Engine, nClasses, rounds int, tw *telemetry.TraceWriter, iterBase int) (core.Result, error) {
	if tw == nil {
		return e.Solve(rounds), nil
	}
	det := metrics.NewConvergenceDetector(0, 0)
	utilTrace := make([]float64, 0, rounds)
	prev := make([]int, nClasses)
	for t := 0; t < rounds; t++ {
		r := e.Step()
		utilTrace = append(utilTrace, r.Utility)
		done := det.Observe(r.Utility)

		alloc := e.Allocation()
		delta := 0
		for j, n := range alloc.Consumers {
			if d := n - prev[j]; d >= 0 {
				delta += d
			} else {
				delta -= d
			}
			prev[j] = n
		}
		rec := telemetry.IterationRecord{
			Iteration:       iterBase + t + 1,
			Utility:         r.Utility,
			MaxNodeOverload: r.MaxNodeOverload,
			MaxLinkOverload: r.MaxLinkOverload,
			StageNanos:      r.StageNanos,
			Rates:           alloc.Rates,
			Consumers:       alloc.Consumers,
			NodePrices:      e.NodePrices(),
			LinkPrices:      e.LinkPrices(),
			AdmissionDelta:  delta,
			Converged:       det.Converged(),
		}
		if err := tw.Write(&rec); err != nil {
			return core.Result{}, fmt.Errorf("trace record %d: %w", rec.Iteration, err)
		}
		if done {
			break
		}
	}
	if len(utilTrace) == 0 {
		return core.Result{Allocation: e.Allocation()}, nil
	}
	return core.Result{
		Utility:     utilTrace[len(utilTrace)-1],
		Iterations:  len(utilTrace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       utilTrace,
	}, nil
}

func totalAttached(p *model.Problem) int {
	n := 0
	for _, c := range p.Classes {
		n += c.MaxConsumers
	}
	return n
}

// runAutopilot is the -autopilot scenario: a broker.Autopilot re-solves
// continuously from live demand while churn drivers attach and detach
// consumers and per-flow producers offer ~1.2x the enacted rates. All
// enactment flows through the broker's incremental route path; the
// summary lines at the end mirror what -telemetry-addr exposes live as
// the lrgp_enact_* family.
func runAutopilot(out io.Writer, p *model.Problem, bm *telemetry.BrokerMetrics,
	enm *telemetry.EnactMetrics, seconds float64, interval time.Duration,
	churnSpec string, workers int) error {
	b, err := broker.New(p, broker.WithTelemetry(bm), broker.WithEnactTelemetry(enm))
	if err != nil {
		return err
	}
	// Baseline population: half of each class's configured demand, so the
	// first cycles have something to admit before the churn ramps.
	var deliveredTotal atomic.Uint64
	for j, c := range p.Classes {
		for k := 0; k < c.MaxConsumers/2; k++ {
			if _, err := b.AttachConsumer(model.ClassID(j), nil, func(broker.Message) {
				deliveredTotal.Add(1)
			}); err != nil {
				return err
			}
		}
	}
	ap, err := broker.NewAutopilot(b, broker.AutopilotConfig{
		Core:      core.Config{Adaptive: true, Workers: workers},
		Telemetry: enm,
	})
	if err != nil {
		return err
	}
	defer ap.Close()

	window := time.Duration(seconds * float64(time.Second))
	fmt.Fprintf(out, "autopilot: re-optimizing %s every %v for %v (churn: %s)\n",
		p.Name, interval, window, churnSpec)

	stop := make(chan struct{})
	errs := make(chan error, 1)
	loopDone := ap.Loop(interval, stop, errs)

	var churnWG sync.WaitGroup
	churnStop := make(chan struct{})
	for _, name := range strings.Split(churnSpec, ",") {
		var drive func(*broker.Broker, *model.Problem, time.Duration, <-chan struct{}, *sync.WaitGroup)
		switch strings.TrimSpace(name) {
		case "storm":
			drive = stormChurn
		case "flash":
			drive = flashChurn
		case "diurnal":
			drive = diurnalChurn
		case "":
			continue
		default:
			close(churnStop)
			churnWG.Wait()
			close(stop)
			<-loopDone
			return fmt.Errorf("unknown -churn driver %q (want storm, flash, diurnal)", name)
		}
		churnWG.Add(1)
		go drive(b, p, window, churnStop, &churnWG)
	}

	// Producers: each flow is offered ~1.2x its currently enacted rate
	// (floored so idle flows still generate signal), so the autopilot's
	// offered-rate estimator sees live load and the over-offer exercises
	// throttling.
	var pubWG sync.WaitGroup
	pubStop := make(chan struct{})
	for i := range p.Flows {
		pubWG.Add(1)
		go func(flow model.FlowID) {
			defer pubWG.Done()
			attrs := map[string]float64{"price": 80}
			for {
				select {
				case <-pubStop:
					return
				default:
				}
				fs, err := b.FlowStats(flow)
				if err != nil {
					return
				}
				rate := 1.2 * fs.Rate
				if rate < 50 {
					rate = 50
				}
				// Offer one 5ms slice of the target rate, then sleep it off.
				n := int(rate / 200)
				if n < 1 {
					n = 1
				}
				for k := 0; k < n; k++ {
					_ = b.Publish(flow, attrs, "tick")
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(model.FlowID(i))
	}

	time.Sleep(window)
	close(churnStop)
	churnWG.Wait()
	close(pubStop)
	pubWG.Wait()
	close(stop)
	<-loopDone
	var loopErr error
	select {
	case loopErr = <-errs:
	default:
	}

	st := ap.Stats()
	es := b.EnactStats()
	fmt.Fprintf(out, "autopilot: cycles=%d enacted=%d skipped=%d delta=%.4f oscillation=%.3f demand=%d\n",
		st.Cycles, st.Enacted, st.Skipped, st.LastDelta, st.Oscillation, st.DemandConsumers)
	fmt.Fprintf(out, "enact: applies=%d noops=%d route[noop=%d incremental=%d full=%d] classes=%d flows=%d rates=%d\n",
		es.Applies, es.NoopApplies, es.RouteNoops, es.RouteIncrementals, es.RouteFulls,
		es.ClassesTouched, es.FlowsTouched, es.RatesChanged)
	var published, throttled uint64
	for i := range p.Flows {
		fs, err := b.FlowStats(model.FlowID(i))
		if err != nil {
			return err
		}
		published += fs.Published
		throttled += fs.Throttled
	}
	fmt.Fprintf(out, "traffic: published=%d throttled=%d delivered=%d work=%d\n",
		published, throttled, deliveredTotal.Load(), b.WorkUnits())
	if st.Cycles == 0 {
		return fmt.Errorf("autopilot completed no cycles in %v", window)
	}
	return loopErr
}

// stormChurn is the attach/detach storm: short-lived consumers slam a
// random class in bursts, exercising the enact path's storm fast path
// (never-admitted consumers attach and detach without a snapshot swap).
func stormChurn(b *broker.Broker, p *model.Problem, _ time.Duration,
	stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(1))
	ids := make([]broker.ConsumerID, 0, 8)
	for {
		select {
		case <-stop:
			return
		default:
		}
		class := model.ClassID(rng.Intn(len(p.Classes)))
		ids = ids[:0]
		for k := 0; k < 8; k++ {
			id, err := b.AttachConsumer(class, nil, nil)
			if err != nil {
				return
			}
			ids = append(ids, id)
		}
		time.Sleep(2 * time.Millisecond)
		for _, id := range ids {
			_ = b.DetachConsumer(id)
		}
	}
}

// flashChurn is the flash crowd: a third of the way into the window a
// burst of consumers floods the first classes (demand spike), and two
// thirds in they all leave (collapse) — the classic up-then-down the
// oscillation score watches.
func flashChurn(b *broker.Broker, p *model.Problem, window time.Duration,
	stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	var crowd []broker.ConsumerID
	defer func() {
		for _, id := range crowd {
			_ = b.DetachConsumer(id)
		}
	}()
	wait := func(d time.Duration) bool {
		select {
		case <-stop:
			return false
		case <-time.After(d):
			return true
		}
	}
	if !wait(window / 3) {
		return
	}
	for j := 0; j < len(p.Classes) && j < 3; j++ {
		for k := 0; k < 4*p.Classes[j].MaxConsumers; k++ {
			id, err := b.AttachConsumer(model.ClassID(j), nil, nil)
			if err != nil {
				return
			}
			crowd = append(crowd, id)
		}
	}
	if !wait(window / 3) {
		return
	}
	for _, id := range crowd {
		_ = b.DetachConsumer(id)
	}
	crowd = nil
}

// diurnalChurn slowly modulates each class's attached population on a
// phase-shifted sinusoid (two periods over the window), the smooth load
// curve the threshold should mostly absorb without enacting.
func diurnalChurn(b *broker.Broker, p *model.Problem, window time.Duration,
	stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	attached := make([][]broker.ConsumerID, len(p.Classes))
	defer func() {
		for _, ids := range attached {
			for _, id := range ids {
				_ = b.DetachConsumer(id)
			}
		}
	}()
	start := time.Now()
	ticker := time.NewTicker(20 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		phase := 4 * math.Pi * time.Since(start).Seconds() / window.Seconds()
		for j := range p.Classes {
			amp := float64(p.Classes[j].MaxConsumers) / 2
			target := int(amp * (1 + math.Sin(phase+float64(j))) / 2)
			for len(attached[j]) < target {
				id, err := b.AttachConsumer(model.ClassID(j), nil, nil)
				if err != nil {
					return
				}
				attached[j] = append(attached[j], id)
			}
			for len(attached[j]) > target {
				id := attached[j][len(attached[j])-1]
				attached[j] = attached[j][:len(attached[j])-1]
				_ = b.DetachConsumer(id)
			}
		}
	}
}
