package broker

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// Controller closes the self-optimization loop of the paper: it reads the
// current demand from the broker (attached consumers per class), runs the
// LRGP engine (which keeps running across invocations, warm-starting from
// its current prices), and enacts the resulting allocation — subject to an
// enactment threshold so that consumers are not churned by insignificant
// changes (Section 2.1: decisions "may not be enacted until their values
// are sufficiently different from the previous enacted values").
type Controller struct {
	b   *Broker
	eng *core.Engine

	// enactThreshold is the minimum relative change in any rate or
	// population that triggers enactment.
	enactThreshold float64
	itersPerCycle  int

	mu      sync.Mutex
	enacted model.Allocation
	cycles  int
	skipped int
	// statsBuf is the reusable AllClassStats buffer for demand sync,
	// guarded by mu like the rest of the cycle state.
	statsBuf []ClassStats
}

// ControllerConfig tunes a Controller. The zero value enacts every change
// of at least 1% after 100 LRGP iterations per cycle.
type ControllerConfig struct {
	// Core configures the embedded LRGP engine (adaptive gamma is a good
	// default for a long-running controller).
	Core core.Config
	// EnactThreshold is the minimum relative change that triggers
	// enactment (default 0.01).
	EnactThreshold float64
	// ItersPerCycle is how many LRGP iterations each Reoptimize runs
	// (default 100).
	ItersPerCycle int
}

// NewController builds a controller around a broker.
func NewController(b *Broker, cfg ControllerConfig) (*Controller, error) {
	if cfg.EnactThreshold <= 0 {
		cfg.EnactThreshold = 0.01
	}
	if cfg.ItersPerCycle <= 0 {
		cfg.ItersPerCycle = 100
	}
	eng, err := core.NewEngine(b.Problem(), cfg.Core)
	if err != nil {
		return nil, fmt.Errorf("broker: controller: %w", err)
	}
	return &Controller{
		b:              b,
		eng:            eng,
		enactThreshold: cfg.EnactThreshold,
		itersPerCycle:  cfg.ItersPerCycle,
		enacted:        model.NewAllocation(b.Problem()),
	}, nil
}

// Engine exposes the embedded engine (e.g. for flow removal).
func (c *Controller) Engine() *core.Engine { return c.eng }

// Reoptimize runs one control cycle: sync demand, iterate LRGP, and enact
// if the allocation moved by at least the threshold. It reports whether
// enactment happened and the allocation the engine produced.
func (c *Controller) Reoptimize() (model.Allocation, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Demand sync: each class's n^max becomes its attached-consumer
	// count (consumers wanting service, per the problem definition). A
	// class with no attached consumers keeps max 0 and is skipped by the
	// greedy allocator. One AllClassStats snapshot replaces the previous
	// per-class ClassStats loop — with thousands of classes that loop
	// was the controller's dominant cost before the solve even started.
	p := c.b.Problem()
	c.statsBuf = c.b.AllClassStats(c.statsBuf)
	for j, stats := range c.statsBuf {
		p.Classes[j].MaxConsumers = stats.Attached
	}

	res := c.eng.Solve(c.itersPerCycle)
	c.cycles++

	if !c.worthEnacting(res.Allocation) {
		c.skipped++
		return res.Allocation, false, nil
	}
	if err := c.b.ApplyAllocation(res.Allocation); err != nil {
		return res.Allocation, false, err
	}
	c.enacted = res.Allocation.Clone()
	return res.Allocation, true, nil
}

// worthEnacting applies the relative-change threshold against the last
// enacted allocation.
func (c *Controller) worthEnacting(a model.Allocation) bool {
	return maxRelChange(c.enacted, a) >= c.enactThreshold
}

// maxRelChange returns the largest relative change of any rate or
// admitted population between two same-shape allocations — the value the
// enactment threshold compares against, shared by the Controller and the
// Autopilot.
func maxRelChange(prev, next model.Allocation) float64 {
	var worst float64
	for i, r := range next.Rates {
		if d := relChange(prev.Rates[i], r); d > worst {
			worst = d
		}
	}
	for j, n := range next.Consumers {
		if d := relChange(float64(prev.Consumers[j]), float64(n)); d > worst {
			worst = d
		}
	}
	return worst
}

// relChange is the symmetric relative difference |next-prev| / max(|prev|,
// |next|): 0 for equal values (including 0→0, where the naive ratio is
// 0/0) and 1 for any change away from or to a zero baseline — so a class
// going 0→1 consumers always crosses any threshold ≤ 1.
func relChange(prev, next float64) float64 {
	if prev == next {
		return 0
	}
	base := math.Max(math.Abs(prev), math.Abs(next))
	return math.Abs(next-prev) / base
}

// Cycles returns how many Reoptimize calls ran and how many skipped
// enactment.
func (c *Controller) Cycles() (total, skipped int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cycles, c.skipped
}

// Loop runs Reoptimize every interval until stop is closed, then reports
// via done. Errors are delivered to errs (nil channel drops them).
func (c *Controller) Loop(interval time.Duration, stop <-chan struct{}, errs chan<- error) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if _, _, err := c.Reoptimize(); err != nil && errs != nil {
					select {
					case errs <- err:
					default:
					}
				}
			}
		}
	}()
	return done
}
