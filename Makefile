# Development targets for the lrgp repository. Everything is stdlib-only;
# the only prerequisite is a Go toolchain (>= 1.22).

GO ?= go

.PHONY: all build vet test race cover bench fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# One benchmark per paper table/figure (plus micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over the solver and utility-spec fuzz targets.
fuzz:
	$(GO) test -fuzz=FuzzBisectDecreasing -fuzztime=10s ./internal/solver/
	$(GO) test -fuzz=FuzzSpecJSON -fuzztime=10s ./internal/utility/

# Regenerate every table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/lrgp-experiments -run all -sa-steps 2000000 -chart=false

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tradedata
	$(GO) run ./examples/latestprice
	$(GO) run ./examples/autoscale
	$(GO) run ./examples/overlaycity

clean:
	rm -f cover.out test_output.txt bench_output.txt
