package workload

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/model"
)

// TestMetroDeterministic: the same seed must produce the byte-identical
// problem across runs and across GOMAXPROCS settings — generation is
// sequential from one seeded source, so parallelism can play no part, and
// this test pins that.
func TestMetroDeterministic(t *testing.T) {
	cfg := MetroConfig{Pods: 6, FlowsPerPod: 4, NodesPerPod: 20, ClassesPerFlow: 8}

	first := MetroSized(cfg)
	if err := model.Validate(first); err != nil {
		t.Fatalf("metro slice invalid: %v", err)
	}

	prev := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 8, prev} {
		runtime.GOMAXPROCS(procs)
		again := MetroSized(cfg)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("GOMAXPROCS=%d: metro build differs from first build", procs)
		}
	}

	small := MetroSmall()
	if !reflect.DeepEqual(small, MetroSmall()) {
		t.Fatal("MetroSmall not deterministic across builds")
	}
	if err := model.Validate(small); err != nil {
		t.Fatalf("MetroSmall invalid: %v", err)
	}
}

// TestMetroShape pins the advertised scale and the structural properties
// the engine's fused schedule and the benchmarks rely on.
func TestMetroShape(t *testing.T) {
	p := MetroSmall()
	if got, want := len(p.Flows), 240; got != want {
		t.Errorf("MetroSmall flows = %d, want %d", got, want)
	}
	if got, want := len(p.Nodes), 1200; got != want {
		t.Errorf("MetroSmall nodes = %d, want %d", got, want)
	}
	if got, want := len(p.Classes), 9600; got != want {
		t.Errorf("MetroSmall classes = %d, want %d", got, want)
	}
	if got, want := len(p.Links), 240; got != want {
		t.Errorf("MetroSmall links = %d, want %d", got, want)
	}

	// Pods must stay independent: every flow's nodes, classes and links
	// inside its own pod's node range.
	const nodesPerPod, flowsPerPod = 50, 10
	ix := model.NewIndex(p)
	for i := range p.Flows {
		pod := i / flowsPerPod
		lo, hi := model.NodeID(pod*nodesPerPod), model.NodeID((pod+1)*nodesPerPod)
		for _, b := range ix.NodesByFlow(model.FlowID(i)) {
			if b < lo || b >= hi {
				t.Fatalf("flow %d reaches node %d outside pod [%d,%d)", i, b, lo, hi)
			}
		}
	}
	for _, c := range p.Classes {
		pod := int(c.Flow) / flowsPerPod
		if int(c.Node) < pod*nodesPerPod || int(c.Node) >= (pod+1)*nodesPerPod {
			t.Fatalf("class %d attached at node %d outside its pod %d", c.ID, c.Node, pod)
		}
	}

	// Capacity heterogeneity: hot pods (every 4th) tight, cold pods roomy.
	hotMax, coldMin := 0.0, 0.0
	for b, n := range p.Nodes {
		if (b/nodesPerPod)%4 == 0 {
			if n.Capacity > hotMax {
				hotMax = n.Capacity
			}
		} else if coldMin == 0 || n.Capacity < coldMin {
			coldMin = n.Capacity
		}
	}
	if hotMax >= coldMin {
		t.Errorf("hot pod capacity %g not below cold pod capacity %g", hotMax, coldMin)
	}
}

// TestMetroFullScale pins the headline numbers of the full preset. The
// build costs a few seconds and a few hundred MB, so -short skips it.
func TestMetroFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full metro build in -short mode")
	}
	p := Metro()
	if got := len(p.Flows); got < 10_000 {
		t.Errorf("metro flows = %d, want >= 10000", got)
	}
	if got := len(p.Nodes); got < 100_000 {
		t.Errorf("metro nodes = %d, want >= 100000", got)
	}
	if got := len(p.Classes); got < 1_000_000 {
		t.Errorf("metro classes = %d, want >= 1000000", got)
	}
	if err := model.Validate(p); err != nil {
		t.Fatalf("metro invalid: %v", err)
	}
}

// TestParseMetro: the CLI names resolve to the presets.
func TestParseMetro(t *testing.T) {
	p, err := Parse("metro-small", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) != 240 {
		t.Errorf("metro-small flows = %d, want 240", len(p.Flows))
	}
}
