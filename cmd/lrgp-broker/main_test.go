package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunColocatedDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rounds", "60", "-publish-seconds", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"optimizing 6f-3n-log(1+r) with the colocated engine",
		"enacted allocation into broker",
		"flow        rate",
		"class       admitted/attached",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// The deliberate 2x over-publish on flow 0 must show throttling.
	if !strings.Contains(s, "flow0") {
		t.Errorf("missing per-flow stats:\n%s", s)
	}
}

func TestRunMemoryTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-optimizer", "dist", "-rounds", "30", "-publish-seconds", "0.2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"optimizing 6f-3n-log(1+r) over memory transport",
		"enacted allocation into broker",
		"flow        rate",
		"class       admitted/attached",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunTCPTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-optimizer", "dist", "-transport", "tcp", "-rounds", "10", "-publish-seconds", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "over tcp transport") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunUnknownTransport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-optimizer", "dist", "-transport", "carrier-pigeon"}, &out); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestRunUnknownOptimizer(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-optimizer", "oracle"}, &out); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

// syncBuffer lets the test read run's output while run is still writing
// from another goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunTelemetryServesMetrics is the in-process version of the CI
// telemetry smoke (scripts/telemetry-smoke.sh): start lrgp-broker with
// -telemetry-addr, scrape /metrics mid-run, and assert the engine and
// broker counter families are present and non-empty.
func TestRunTelemetryServesMetrics(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-rounds", "60", "-publish-seconds", "2",
			"-telemetry-addr", "127.0.0.1:0",
		}, out)
	}()

	// The listen line carries the resolved port.
	addrRe := regexp.MustCompile(`listening on http://([0-9.:]+)`)
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("telemetry listen line never appeared:\n%s", out.String())
	}

	fetch := func(path string) (int, string, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), err
	}

	// Poll /metrics until the engine has stepped and the broker has
	// published (the 2s publish window keeps the server alive).
	stepsRe := regexp.MustCompile(`(?m)^lrgp_engine_steps_total ([1-9][0-9]*)$`)
	pubRe := regexp.MustCompile(`(?m)^lrgp_broker_published_total ([1-9][0-9]*)$`)
	var metrics string
	ok := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		_, body, err := fetch("/metrics")
		if err == nil && stepsRe.MatchString(body) && pubRe.MatchString(body) {
			metrics, ok = body, true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("engine/broker counters never became non-empty:\n%s", metrics)
	}
	for _, want := range []string{
		`lrgp_engine_stage_seconds_bucket{stage="rate",le="+Inf"}`,
		`lrgp_engine_stage_seconds_bucket{stage="admission",le="+Inf"}`,
		`lrgp_engine_stage_seconds_bucket{stage="price",le="+Inf"}`,
		"lrgp_engine_utility",
		"lrgp_broker_consumers_admitted",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, body, err := fetch("/debug/pprof/cmdline"); err != nil || code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (%v)", code, err)
	}
	if code, body, err := fetch("/snapshot"); err != nil || code != http.StatusOK ||
		!strings.Contains(body, "Utility") {
		t.Errorf("/snapshot = %d (%v):\n%.200s", code, err, body)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
