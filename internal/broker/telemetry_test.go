package broker

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestBrokerTelemetryCounters drives every accounting path of Publish —
// accepted deliveries, filter drops, rate-limit throttles, multirate
// thinning — plus attach/detach and allocation enactment, and checks the
// mirrored telemetry against the broker's own stats.
func TestBrokerTelemetryCounters(t *testing.T) {
	p := workload.Base()
	reg := telemetry.NewRegistry()
	bm := telemetry.NewBrokerMetrics(reg)

	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b, err := New(p, WithClock(clock), WithTelemetry(bm))
	if err != nil {
		t.Fatal(err)
	}

	// Two consumers in class 0 (same flow): one matching filter, one
	// rejecting filter.
	pass, err := b.AttachConsumer(0, MatchAll{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AttachConsumer(0, AttrFilter{Attr: "price", Op: CmpGT, Value: 1000}, nil); err != nil {
		t.Fatal(err)
	}
	if got := bm.Attached.Value(); got != 2 {
		t.Errorf("attached gauge = %g, want 2", got)
	}
	if got := bm.Admitted.Value(); got != 0 {
		t.Errorf("admitted gauge = %g before enactment, want 0", got)
	}

	// Enact an allocation admitting both, with flow 0 at 10 msg/s.
	alloc := model.Allocation{
		Rates:     make([]float64, len(p.Flows)),
		Consumers: make([]int, len(p.Classes)),
	}
	alloc.Rates[0] = 10
	alloc.Consumers[0] = 2
	if err := b.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if got := bm.Allocations.Value(); got != 1 {
		t.Errorf("allocations counter = %d, want 1", got)
	}
	if got := bm.Admitted.Value(); got != 2 {
		t.Errorf("admitted gauge = %g, want 2", got)
	}

	// One message inside the rate budget: delivered to the matching
	// consumer, filtered by the other.
	now = now.Add(time.Second)
	if err := b.Publish(0, map[string]float64{"price": 80}, "tick"); err != nil {
		t.Fatal(err)
	}
	if bm.Published.Value() != 1 || bm.Delivered.Value() != 1 || bm.Filtered.Value() != 1 {
		t.Errorf("publish counters = %d/%d/%d, want 1/1/1",
			bm.Published.Value(), bm.Delivered.Value(), bm.Filtered.Value())
	}
	if count, _ := bm.Fanout.CountSum(); count != 1 {
		t.Errorf("fanout histogram count = %d, want 1", count)
	}
	if got, want := bm.WorkUnits.Value(), b.WorkUnits(); got != want {
		t.Errorf("work units counter = %d, broker reports %d", got, want)
	}

	// Exhaust the token budget: the next publish must be throttled.
	for i := 0; b.Publish(0, nil, "flood") == nil; i++ {
		if i > 1000 {
			t.Fatal("rate limiter never throttled")
		}
	}
	if bm.Throttled.Value() == 0 {
		t.Error("throttle counter not incremented")
	}

	// Thinning: cap class 0's delivery rate to ~0 and publish after
	// refilling the source bucket.
	if err := b.SetClassRateCap(0, 1e-9); err != nil {
		t.Fatal(err)
	}
	now = now.Add(10 * time.Second)
	// The cap's bucket starts with one burst token, so the first capped
	// publish passes and the second is thinned.
	for i := 0; i < 2; i++ {
		if err := b.Publish(0, nil, "thin"); err != nil {
			t.Fatal(err)
		}
	}
	if bm.Thinned.Value() == 0 {
		t.Error("thinned counter not incremented")
	}

	// Detach updates the gauges.
	if err := b.DetachConsumer(pass); err != nil {
		t.Fatal(err)
	}
	if got := bm.Attached.Value(); got != 1 {
		t.Errorf("attached gauge after detach = %g, want 1", got)
	}

	// The mirrored counters must agree with the broker's own stats.
	fs, err := b.FlowStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Published.Value() != fs.Published || bm.Throttled.Value() != fs.Throttled {
		t.Errorf("telemetry %d/%d vs FlowStats %d/%d",
			bm.Published.Value(), bm.Throttled.Value(), fs.Published, fs.Throttled)
	}
}

// TestBrokerWithoutTelemetry: the nil handle must leave every path
// functional (nil-safe observes).
func TestBrokerWithoutTelemetry(t *testing.T) {
	b, err := New(workload.Base(), WithTelemetry(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AttachConsumer(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	alloc := model.Allocation{
		Rates:     make([]float64, len(b.Problem().Flows)),
		Consumers: make([]int, len(b.Problem().Classes)),
	}
	alloc.Rates[0] = 5
	alloc.Consumers[0] = 1
	if err := b.ApplyAllocation(alloc); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(0, nil, "ok"); err != nil {
		t.Fatal(err)
	}
}
