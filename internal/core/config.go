// Package core implements LRGP (Lagrangian Rates, Greedy Populations), the
// distributed utility-optimization algorithm of Lumezanu, Bhola and Astley,
// "Utility Optimization for Event-Driven Distributed Infrastructures"
// (ICDCS 2006), Section 3.
//
// A single LRGP iteration consists of:
//
//  1. Rate allocation (Algorithm 1): each flow source maximizes
//     sum_j n_j U_j(r) - r*(PL_i + PB_i) given the previous iteration's
//     populations and prices (Equation 7).
//  2. Consumer allocation (Algorithm 2): each node greedily admits
//     consumers in decreasing benefit-cost order (Equation 10) within the
//     node capacity.
//  3. Price computation: each node dampens its price toward the best
//     unsatisfied benefit-cost ratio, or pushes it up proportionally to
//     overload (Equation 12); each link adjusts its price by gradient
//     projection (Equation 13).
//
// The Engine in this package is the synchronous, in-process formulation the
// paper evaluates; package dist runs the same three algorithms as
// message-passing agents.
package core

import (
	"runtime"

	"repro/internal/telemetry"
)

// Default stepsizes and bounds. The paper constrains the node-price
// stepsize gamma to [0.001, 0.1] after the damping study (Section 4.2) and
// adapts it by +0.001 per quiet iteration and halving on fluctuation.
const (
	DefaultGamma         = 0.1
	DefaultGammaMin      = 0.001
	DefaultGammaMax      = 0.1
	DefaultGammaStep     = 0.001
	DefaultGammaDeadband = 0.01
	DefaultGammaSurge    = 0.3
	DefaultLinkGamma     = 0.001
)

// Config tunes an Engine. The zero value is normalized to the paper's
// defaults: fixed gamma1 = gamma2 = 0.1, link gamma 0.001, zero initial
// prices, and as many Step workers as GOMAXPROCS.
type Config struct {
	// Workers is how many goroutines (including the caller) execute each
	// Step stage. 0 resolves to runtime.GOMAXPROCS(0); 1 forces the serial
	// path. Results are bit-identical for every worker count — the stages
	// are data-independent within themselves, so sharding changes neither
	// the arithmetic nor its order. Workloads too small to shard (fewer
	// than minParallelItems flows, nodes and links) run serially whatever
	// Workers says; see DESIGN.md for when Workers=1 is still the right
	// choice.
	Workers int
	// Gamma1 is the damping stepsize toward the benefit-cost price when
	// the node is within capacity (Equation 12, first branch). Default
	// DefaultGamma.
	Gamma1 float64
	// Gamma2 scales the overload push when node usage exceeds capacity
	// (Equation 12, second branch). Defaults to Gamma1; the paper sets
	// gamma1 = gamma2 throughout its experiments.
	Gamma2 float64
	// Adaptive enables the per-node adaptive gamma heuristic of Section
	// 4.2: start at GammaInit, add GammaStep per iteration while the
	// price is not fluctuating, halve on fluctuation, clamp to
	// [GammaMin, GammaMax]. When set, Gamma1/Gamma2 are ignored.
	Adaptive bool
	// GammaInit is the adaptive starting value (default GammaMax).
	GammaInit float64
	// GammaMin and GammaMax bound the adaptive gamma (defaults
	// DefaultGammaMin, DefaultGammaMax).
	GammaMin float64
	GammaMax float64
	// GammaStep is the additive increase per quiet iteration (default
	// DefaultGammaStep).
	GammaStep float64
	// GammaDeadband is the relative gap significance below which a sign
	// flip is not treated as a fluctuation (default
	// DefaultGammaDeadband); see gammaController.
	GammaDeadband float64
	// GammaSurge is the relative gap significance above which gamma
	// ramps multiplicatively for fast recovery from workload changes
	// (default DefaultGammaSurge); see gammaController.
	GammaSurge float64
	// GammaLiteral selects the paper's Section 4.2 heuristic exactly as
	// written: any sign flip of the price movement halves gamma and any
	// quiet iteration adds GammaStep, with no dead band and no surge
	// ramp. Used by the controller-ablation experiment; the default
	// (false) enables the dead band and surge refinements documented in
	// EXPERIMENTS.md.
	GammaLiteral bool
	// FullRecompute disables the incremental dirty-set machinery and makes
	// every Step re-solve all flows, re-admit all nodes and re-sum all
	// links, exactly like the pre-incremental engine. Results are
	// bit-identical either way (see DESIGN.md §9); the flag exists as an
	// escape hatch and as the baseline for the steady-state benchmarks.
	FullRecompute bool
	// LinkGamma is the gradient-projection stepsize for link prices
	// (Equation 13). Default DefaultLinkGamma.
	LinkGamma float64
	// InitialNodePrice and InitialLinkPrice seed the price vectors.
	// Default 0.
	InitialNodePrice float64
	InitialLinkPrice float64
	// Telemetry, when non-nil, receives per-Step instrumentation: stage
	// wall times, utility, overloads, price-update counts and (from
	// Solve) convergence state. The default nil keeps Step free of all
	// timing calls and observation work — the disabled path is one
	// branch per stage and preserves the 0 allocs/op guarantee. The
	// enabled path is lock-free and also allocation-free; its only cost
	// is the clock reads and atomic updates.
	Telemetry *telemetry.EngineMetrics
}

// WithDefaults returns the configuration with every unset field replaced
// by its default, exactly as NewEngine applies them. Other packages that
// drive the exported primitives directly (e.g. the distributed runtime)
// should normalize through this before use.
func (c Config) WithDefaults() Config {
	return c.normalized()
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Gamma1 <= 0 {
		c.Gamma1 = DefaultGamma
	}
	if c.Gamma2 <= 0 {
		c.Gamma2 = c.Gamma1
	}
	if c.GammaMin <= 0 {
		c.GammaMin = DefaultGammaMin
	}
	if c.GammaMax <= 0 {
		c.GammaMax = DefaultGammaMax
	}
	if c.GammaMax < c.GammaMin {
		// An inverted clamp would freeze the controller; collapse it to
		// the single point the caller's lower bound defines.
		c.GammaMax = c.GammaMin
	}
	if c.GammaInit <= 0 {
		c.GammaInit = c.GammaMax
	}
	if c.GammaStep <= 0 {
		c.GammaStep = DefaultGammaStep
	}
	if c.GammaDeadband <= 0 {
		c.GammaDeadband = DefaultGammaDeadband
	}
	if c.GammaSurge <= 0 {
		c.GammaSurge = DefaultGammaSurge
	}
	if c.LinkGamma <= 0 {
		c.LinkGamma = DefaultLinkGamma
	}
	if c.InitialNodePrice < 0 {
		c.InitialNodePrice = 0
	}
	if c.InitialLinkPrice < 0 {
		c.InitialLinkPrice = 0
	}
	return c
}
