package anneal

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkFullStateSteps measures raw full-state annealing throughput on
// the base workload (steps/op is fixed; the metric of interest is time).
func BenchmarkFullStateSteps(b *testing.B) {
	p := workload.Base()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Config{MaxSteps: 100_000, StartTemp: 100, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatesGreedySteps measures the rates-only + greedy-population
// variant, whose per-step cost includes a full greedy pass.
func BenchmarkRatesGreedySteps(b *testing.B) {
	p := workload.Base()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveRatesGreedy(p, Config{MaxSteps: 10_000, StartTemp: 100, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
