package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/model"
)

// minParallelItems is the smallest per-stage item count (flows, nodes or
// links) worth fanning out over the worker pool; below it the stage's work
// is comparable to the dispatch overhead and the engine runs it inline.
// Because parallel and serial execution are bit-identical, the cutover is
// purely a performance decision.
const minParallelItems = 16

// Engine runs synchronous LRGP iterations over a problem. It is the
// colocated formulation discussed in Section 3.5: all per-flow and per-node
// algorithm pieces execute in one process, in the same data-dependency
// order as the distributed version (rates, then populations, then prices).
//
// With Config.Workers > 1 (the default resolves to GOMAXPROCS) each Step
// stage is sharded across a persistent worker pool; results are
// bit-identical to the serial engine for any worker count. The pool's
// goroutines live only inside Step's stage barriers, so Step remains
// synchronous from the caller's point of view.
//
// An Engine is still not safe for concurrent use: no method — including
// the mid-run mutators SetFlowActive, SetClassDemand and SetNodeCapacity —
// may run concurrently with Step or with each other. Wrap it or use
// package dist for a concurrent, message-passing deployment.
type Engine struct {
	p   *model.Problem
	ix  *model.Index
	cfg Config

	iteration int
	rates     []float64
	consumers []int
	active    []bool

	nodePrices []float64
	linkPrices []float64
	nodeGamma  []gammaController

	solvers []*rateSolver
	// scratch[s] is shard s's admission scratch; the serial path uses
	// scratch[0].
	scratch [][]classBC

	// pool is non-nil when the engine shards stages across workers.
	pool   *workerPool
	shards int
	// closed is set by Close; stepping a closed engine panics
	// deterministically instead of racing the pool shutdown.
	closed bool
	// full disables the dirty-set machinery (Config.FullRecompute).
	full bool

	// Incremental dirty-set state (DESIGN.md §9). The epoch slices record
	// the iteration at which each quantity last changed value; a stage
	// consults them to decide whether its cached outputs are still exact.
	// The forced flags are set by mutators and Reset to dirty items whose
	// inputs changed outside Step, and cleared by the recompute they
	// trigger.
	flowForced []bool
	nodeForced []bool
	linkForced []bool
	// rateEpoch[i]: iteration e.rates[i] last changed; popEpoch[j]:
	// iteration e.consumers[j] last changed; nodePriceEpoch[b] /
	// linkPriceEpoch[l]: iteration the price last moved.
	rateEpoch      []int
	popEpoch       []int
	nodePriceEpoch []int
	linkPriceEpoch []int
	// nodeUsed/nodeBest cache admitNode's outputs per node; linkUsed
	// caches each link's usage sum. A skipped constraint reuses these
	// verbatim — they are the exact floats the skipped recomputation
	// would have produced.
	nodeUsed []float64
	nodeBest []float64
	linkUsed []float64
	// util caches the last computed objective; utilStale forces a full
	// recomputation (set by mutators and Reset).
	util      float64
	utilStale bool

	// Per-shard stage accumulators, each of length shards. overNode[s]
	// and overLink[s] collect shard s's max overload; the reduction over
	// shards after the stage barrier is order-independent (max is
	// associative and commutative), so the result is bit-identical to the
	// serial scan. The dirty/skip counters and changed flags reduce by
	// integer sum and boolean OR, which are order-independent too. When a
	// stage runs inline (serial engine, or too few items to shard), only
	// slot 0 is written and reduced.
	overNode       []float64
	overLink       []float64
	dirtyFlowsSh   []int
	skippedNodesSh []int
	skippedLinksSh []int
	rateChangedSh  []bool
	popChangedSh   []bool

	// stageFns are the shard entry points, bound once so dispatching a
	// stage allocates nothing.
	stageFns [3]func(shard int)
}

// StepResult summarizes one LRGP iteration.
type StepResult struct {
	// Iteration is 1-based.
	Iteration int
	// Utility is the objective value (Equation 1) after the iteration's
	// consumer allocation.
	Utility float64
	// MaxNodeOverload is the largest node usage minus capacity across
	// nodes (positive only when flow-node costs alone exceed some node's
	// capacity; the greedy step never overshoots otherwise).
	MaxNodeOverload float64
	// MaxLinkOverload is the largest link usage minus capacity.
	MaxLinkOverload float64
	// StageNanos holds the wall time of the rate, admission and
	// link-price stages (indexed by telemetry.StageRate/StageAdmission/
	// StagePrice). Populated only when Config.Telemetry is set; all
	// zero otherwise, so the untelemetered Step never reads the clock.
	StageNanos [3]int64
	// DirtyFlows counts flows whose rate problem was re-solved this
	// iteration; SkippedNodes and SkippedLinks count constraints that
	// reused their cached admission/usage instead of recomputing.
	// Deterministic for any worker count. With Config.FullRecompute every
	// flow is dirty and nothing is skipped.
	DirtyFlows   int
	SkippedNodes int
	SkippedLinks int
}

// NewEngine validates the problem and prepares an engine. The initial state
// is the LRGP starting point: all rates at r^min, all populations zero, all
// prices at the configured initial values.
func NewEngine(p *model.Problem, cfg Config) (*Engine, error) {
	if err := model.Validate(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := cfg.normalized()
	ix := model.NewIndex(p)

	shards := 1
	if c.Workers > 1 {
		n := len(p.Flows)
		if len(p.Nodes) > n {
			n = len(p.Nodes)
		}
		if len(p.Links) > n {
			n = len(p.Links)
		}
		if n >= minParallelItems {
			shards = c.Workers
		}
	}

	e := &Engine{
		p:          p,
		ix:         ix,
		cfg:        c,
		full:       c.FullRecompute,
		rates:      make([]float64, len(p.Flows)),
		consumers:  make([]int, len(p.Classes)),
		active:     make([]bool, len(p.Flows)),
		nodePrices: make([]float64, len(p.Nodes)),
		linkPrices: make([]float64, len(p.Links)),
		nodeGamma:  make([]gammaController, len(p.Nodes)),
		solvers:    make([]*rateSolver, len(p.Flows)),
		shards:     shards,
		scratch:    make([][]classBC, shards),

		flowForced:     make([]bool, len(p.Flows)),
		nodeForced:     make([]bool, len(p.Nodes)),
		linkForced:     make([]bool, len(p.Links)),
		rateEpoch:      make([]int, len(p.Flows)),
		popEpoch:       make([]int, len(p.Classes)),
		nodePriceEpoch: make([]int, len(p.Nodes)),
		linkPriceEpoch: make([]int, len(p.Links)),
		nodeUsed:       make([]float64, len(p.Nodes)),
		nodeBest:       make([]float64, len(p.Nodes)),
		linkUsed:       make([]float64, len(p.Links)),
		utilStale:      true,

		overNode:       make([]float64, shards),
		overLink:       make([]float64, shards),
		dirtyFlowsSh:   make([]int, shards),
		skippedNodesSh: make([]int, shards),
		skippedLinksSh: make([]int, shards),
		rateChangedSh:  make([]bool, shards),
		popChangedSh:   make([]bool, shards),
	}
	for s := range e.scratch {
		e.scratch[s] = make([]classBC, 0, len(p.Classes))
	}
	for i := range p.Flows {
		e.rates[i] = p.Flows[i].RateMin
		e.active[i] = true
		e.flowForced[i] = true
		e.solvers[i] = newRateSolver(p, ix, model.FlowID(i))
	}
	for b := range e.nodePrices {
		e.nodePrices[b] = c.InitialNodePrice
		e.nodeGamma[b] = newGammaController(c)
		e.nodeForced[b] = true
	}
	for l := range e.linkPrices {
		e.linkPrices[l] = c.InitialLinkPrice
		e.linkForced[l] = true
	}
	if shards > 1 {
		e.stageFns = [3]func(int){e.rateShard, e.nodeShard, e.linkShard}
		e.pool = newWorkerPool(shards - 1)
		// Backstop for engines dropped without Close: idle workers hold no
		// reference to e (see workerPool), so the finalizer can fire and
		// release them.
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Close releases the engine's worker pool and marks the engine closed;
// Step, Solve and Reset panic deterministically afterwards (for serial and
// sharded engines alike — before this flag a closed sharded engine died on
// the pool's closed channel, and a serial one silently kept working).
// Close is idempotent. Abandoned engines are closed by the garbage
// collector as a backstop, but deterministic shutdown should call Close
// explicitly.
func (e *Engine) Close() {
	e.closed = true
	if e.pool != nil {
		runtime.SetFinalizer(e, nil)
		e.pool.close()
	}
}

// shardRange returns shard s's half-open slice [lo, hi) of n items under
// the engine's fixed contiguous partition. The boundaries depend only on
// n, the shard count and s — never on scheduling — which is what makes
// parallel execution deterministic.
func (e *Engine) shardRange(n, s int) (lo, hi int) {
	return n * s / e.shards, n * (s + 1) / e.shards
}

// Step performs one synchronous LRGP iteration: Algorithm 1 at every flow
// source, then Algorithm 2 and the Equation 12 price update at every node,
// then Algorithm 3 (Equation 13) for every link. With Workers > 1 each
// stage fans out over the worker pool and barriers before the next; every
// stage is data-independent within itself (rates are per-flow, admissions
// and node prices per-node, link prices per-link), so the parallel
// schedule performs exactly the serial arithmetic and the result is
// bit-identical for any worker count.
//
// Step is incremental: a flow re-solves its rate problem only when some
// price on its path or some consuming class's population changed last
// iteration; a node re-runs admission only when a crossing flow's rate
// changed this iteration (or a mutator touched its inputs); a link re-sums
// its usage under the same rule. Everything else reuses the previous
// iteration's values verbatim, so results are bit-identical to a full
// recompute (Config.FullRecompute; see DESIGN.md §9 for the invariants).
// The O(1) price updates and adaptive-gamma observations always run —
// they move every iteration until the exact fixpoint.
func (e *Engine) Step() StepResult {
	if e.closed {
		panic("core: Engine.Step called after Close")
	}
	e.iteration++
	res := StepResult{Iteration: e.iteration}

	// Stage timing exists only on the telemetry path: the tel == nil
	// branches keep the disabled Step free of clock reads entirely.
	tel := e.cfg.Telemetry
	var t0 time.Time
	if tel != nil {
		t0 = time.Now()
	}

	// 1. Rate allocation, using last iteration's populations and prices.
	slots := 1
	if e.pool != nil && len(e.p.Flows) >= minParallelItems {
		e.pool.run(e.stageFns[0], e.shards)
		slots = e.shards
	} else {
		e.rateRange(0, len(e.p.Flows), 0)
	}
	rateChanged := false
	for s := 0; s < slots; s++ {
		res.DirtyFlows += e.dirtyFlowsSh[s]
		rateChanged = rateChanged || e.rateChangedSh[s]
	}
	if tel != nil {
		now := time.Now()
		res.StageNanos[0] = now.Sub(t0).Nanoseconds()
		t0 = now
	}

	// 2. Greedy consumer allocation and node price update.
	slots = 1
	if e.pool != nil && len(e.p.Nodes) >= minParallelItems {
		e.pool.run(e.stageFns[1], e.shards)
		slots = e.shards
	} else {
		e.nodeRange(0, len(e.p.Nodes), 0)
	}
	popChanged := false
	for s := 0; s < slots; s++ {
		if e.overNode[s] > res.MaxNodeOverload {
			res.MaxNodeOverload = e.overNode[s]
		}
		res.SkippedNodes += e.skippedNodesSh[s]
		popChanged = popChanged || e.popChangedSh[s]
	}
	if tel != nil {
		now := time.Now()
		res.StageNanos[1] = now.Sub(t0).Nanoseconds()
		t0 = now
	}

	// 3. Link price update.
	slots = 1
	if e.pool != nil && len(e.p.Links) >= minParallelItems {
		e.pool.run(e.stageFns[2], e.shards)
		slots = e.shards
	} else {
		e.linkRange(0, len(e.p.Links), 0)
	}
	for s := 0; s < slots; s++ {
		if e.overLink[s] > res.MaxLinkOverload {
			res.MaxLinkOverload = e.overLink[s]
		}
		res.SkippedLinks += e.skippedLinksSh[s]
	}
	if tel != nil {
		res.StageNanos[2] = time.Since(t0).Nanoseconds()
	}

	// The objective only moves when a rate or population moved; otherwise
	// the cached sum is the exact value the full recomputation would
	// produce. Full mode recomputes unconditionally, like the
	// pre-incremental engine.
	if e.full || rateChanged || popChanged || e.utilStale {
		e.util = e.Utility()
		e.utilStale = false
	}
	res.Utility = e.util

	if tel != nil {
		tel.ObserveStep(res.StageNanos, res.Utility,
			res.MaxNodeOverload, res.MaxLinkOverload,
			len(e.p.Nodes), len(e.p.Links),
			res.DirtyFlows, res.SkippedNodes+res.SkippedLinks)
	}
	return res
}

// flowDirty reports whether flow i's rate inputs changed during iteration
// prev: a link or node price on its path moved, or a consuming class's
// population moved. Clean flows re-solve to the exact same rate, so the
// engine keeps the cached value instead.
func (e *Engine) flowDirty(i int, prev int) bool {
	fid := model.FlowID(i)
	for _, l := range e.ix.LinksByFlow(fid) {
		if e.linkPriceEpoch[l] == prev {
			return true
		}
	}
	for _, b := range e.ix.NodesByFlow(fid) {
		if e.nodePriceEpoch[b] == prev {
			return true
		}
	}
	for _, cid := range e.ix.ClassesByFlow(fid) {
		if e.popEpoch[cid] == prev {
			return true
		}
	}
	return false
}

// rateOne runs Algorithm 1 for flow i (writes only e.rates[i]).
func (e *Engine) rateOne(i int) {
	if !e.active[i] {
		e.rates[i] = 0
		return
	}
	price := e.flowPrice(model.FlowID(i))
	e.rates[i] = e.solvers[i].solve(e.consumers, price)
}

// rateRange runs the rate stage over flows [lo, hi), writing shard slot s
// of the stage accumulators.
func (e *Engine) rateRange(lo, hi, s int) {
	prev := e.iteration - 1
	dirty, changed := 0, false
	for i := lo; i < hi; i++ {
		if !(e.full || e.flowForced[i] || e.flowDirty(i, prev)) {
			continue
		}
		e.flowForced[i] = false
		dirty++
		old := e.rates[i]
		e.rateOne(i)
		if e.rates[i] != old {
			e.rateEpoch[i] = e.iteration
			changed = true
		}
	}
	e.dirtyFlowsSh[s] = dirty
	e.rateChangedSh[s] = changed
}

// nodeOne runs Algorithm 2 and the Equation 12 price update for node b,
// returning the node's overload (usage minus capacity; possibly negative).
// It writes only b's populations, price and gamma state. Admission is
// skipped — the cached used/bestUnsatisfied reused — when no crossing
// flow's rate changed this iteration and no mutator forced the node; the
// price update and gamma observation always run, because the Equation 12
// damping and the controller state move every iteration until the exact
// fixpoint.
func (e *Engine) nodeOne(b int, scratch []classBC, skipped *int, popChanged *bool) float64 {
	bid := model.NodeID(b)
	recompute := e.full || e.nodeForced[b]
	if !recompute {
		t := e.iteration
		for _, i := range e.ix.FlowsByNode(bid) {
			if e.rateEpoch[i] == t {
				recompute = true
				break
			}
		}
	}
	var used, best float64
	if recompute {
		e.nodeForced[b] = false
		out := admitNode(e.p, e.ix, bid, e.rates, e.active, e.consumers, scratch,
			e.popEpoch, e.iteration)
		used, best = out.used, out.bestUnsatisfied
		e.nodeUsed[b], e.nodeBest[b] = used, best
		if out.popChanged {
			*popChanged = true
		}
	} else {
		*skipped++
		used, best = e.nodeUsed[b], e.nodeBest[b]
	}
	capacity := e.p.Nodes[b].Capacity

	gamma1, gamma2 := e.cfg.Gamma1, e.cfg.Gamma2
	prev := e.nodePrices[b]
	if e.cfg.Adaptive {
		gamma1 = e.nodeGamma[b].gamma
		gamma2 = gamma1
	}
	next := nodePriceUpdate(prev, best, used, capacity, gamma1, gamma2)
	if e.cfg.Adaptive {
		e.nodeGamma[b].observe(priceGap(prev, best, used, capacity), prev)
	}
	if next != prev {
		e.nodePriceEpoch[b] = e.iteration
	}
	e.nodePrices[b] = next
	return used - capacity
}

// nodeRange runs the admission stage over nodes [lo, hi), writing shard
// slot s of the stage accumulators.
func (e *Engine) nodeRange(lo, hi, s int) {
	scratch := e.scratch[s]
	over, skipped, popChanged := 0.0, 0, false
	for b := lo; b < hi; b++ {
		if o := e.nodeOne(b, scratch, &skipped, &popChanged); o > over {
			over = o
		}
	}
	e.overNode[s] = over
	e.skippedNodesSh[s] = skipped
	e.popChangedSh[s] = popChanged
}

// linkOne runs the Equation 13 update for link l, returning the link's
// overload. It writes only link l's price, epoch and cached usage. The
// usage re-sum is skipped when no traversing flow's rate changed this
// iteration; the gradient-projection price update always runs.
func (e *Engine) linkOne(l int, skipped *int) float64 {
	lid := model.LinkID(l)
	recompute := e.full || e.linkForced[l]
	if !recompute {
		t := e.iteration
		for _, i := range e.ix.FlowsByLink(lid) {
			if e.rateEpoch[i] == t {
				recompute = true
				break
			}
		}
	}
	var used float64
	if recompute {
		e.linkForced[l] = false
		costs := e.ix.FlowCostsByLink(lid)
		for k, i := range e.ix.FlowsByLink(lid) {
			if e.active[i] {
				used += costs[k] * e.rates[i]
			}
		}
		e.linkUsed[l] = used
	} else {
		*skipped++
		used = e.linkUsed[l]
	}
	capacity := e.p.Links[l].Capacity
	prev := e.linkPrices[l]
	next := linkPriceUpdate(prev, used, capacity, e.cfg.LinkGamma)
	if next != prev {
		e.linkPriceEpoch[l] = e.iteration
	}
	e.linkPrices[l] = next
	return used - capacity
}

// linkRange runs the link-price stage over links [lo, hi), writing shard
// slot s of the stage accumulators.
func (e *Engine) linkRange(lo, hi, s int) {
	over, skipped := 0.0, 0
	for l := lo; l < hi; l++ {
		if o := e.linkOne(l, &skipped); o > over {
			over = o
		}
	}
	e.overLink[s] = over
	e.skippedLinksSh[s] = skipped
}

// rateShard, nodeShard and linkShard execute one contiguous shard of their
// stage; shard boundaries are fixed by the item count and shard count, so
// every shard touches a disjoint index range.
func (e *Engine) rateShard(s int) {
	lo, hi := e.shardRange(len(e.p.Flows), s)
	e.rateRange(lo, hi, s)
}

func (e *Engine) nodeShard(s int) {
	lo, hi := e.shardRange(len(e.p.Nodes), s)
	e.nodeRange(lo, hi, s)
}

func (e *Engine) linkShard(s int) {
	lo, hi := e.shardRange(len(e.p.Links), s)
	e.linkRange(lo, hi, s)
}

// flowPrice computes PL_i + PB_i (Equations 8 and 9) for flow i from the
// current prices and populations, using the index's dense per-flow cost
// views and precomputed per-(flow, node) class lists.
func (e *Engine) flowPrice(i model.FlowID) float64 {
	price := 0.0
	lcosts := e.ix.LinkCostsByFlow(i)
	for k, l := range e.ix.LinksByFlow(i) {
		price += lcosts[k] * e.linkPrices[l]
	}
	ncosts := e.ix.NodeCostsByFlow(i)
	classes := e.ix.ClassesByFlowNode(i)
	for k, b := range e.ix.NodesByFlow(i) {
		coeff := ncosts[k]
		for _, cid := range classes[k] {
			coeff += e.p.Classes[cid].CostPerConsumer * float64(e.consumers[cid])
		}
		price += coeff * e.nodePrices[b]
	}
	return price
}

// Utility returns the current objective value (Equation 1). Classes of
// inactive flows contribute nothing (their populations are zero).
func (e *Engine) Utility() float64 {
	total := 0.0
	for j := range e.p.Classes {
		n := e.consumers[j]
		if n == 0 {
			continue
		}
		c := &e.p.Classes[j]
		total += float64(n) * c.Utility.Value(e.rates[c.Flow])
	}
	return total
}

// SetFlowActive includes or excludes a flow from subsequent iterations,
// modeling a flow source joining or leaving the system (the Figure 3
// experiment removes flow 5 mid-run). Deactivating zeroes the flow's rate
// and its classes' populations immediately.
func (e *Engine) SetFlowActive(i model.FlowID, active bool) {
	if e.active[i] == active {
		return
	}
	e.active[i] = active
	if !active {
		e.rates[i] = 0
		for _, cid := range e.ix.ClassesByFlow(i) {
			e.consumers[cid] = 0
			e.nodeForced[e.p.Classes[cid].Node] = true
		}
	} else {
		e.rates[i] = e.p.Flows[i].RateMin
	}
	// The rate and populations changed outside Step, so the epoch checks
	// cannot see it: force the flow, every node its path crosses (their
	// cached admission reflects the old rate) and every link it traverses
	// (stale usage sums). The objective moved too.
	e.flowForced[i] = true
	for _, b := range e.ix.NodesByFlow(i) {
		e.nodeForced[b] = true
	}
	for _, l := range e.ix.LinksByFlow(i) {
		e.linkForced[l] = true
	}
	e.utilStale = true
}

// FlowActive reports whether flow i participates in iterations.
func (e *Engine) FlowActive(i model.FlowID) bool { return e.active[i] }

// SetClassDemand changes a class's n^max mid-run, modeling consumers
// arriving at or leaving the system (the engine "runs all the time,
// responding to changes in workload", Section 2.1). The next iteration's
// greedy allocation picks the change up; prices adapt over the following
// iterations.
//
// Like every Engine method, SetClassDemand is safe only between Step
// calls: Step's worker goroutines read the class table and populations
// without synchronization, so a mutation concurrent with Step is a data
// race regardless of the worker count.
func (e *Engine) SetClassDemand(j model.ClassID, maxConsumers int) error {
	if j < 0 || int(j) >= len(e.p.Classes) {
		return fmt.Errorf("core: unknown class %d", j)
	}
	if maxConsumers < 0 {
		return fmt.Errorf("core: class %d demand %d < 0", j, maxConsumers)
	}
	e.p.Classes[j].MaxConsumers = maxConsumers
	if e.consumers[j] > maxConsumers {
		e.consumers[j] = maxConsumers
		// The truncated population is an out-of-Step change: the class's
		// flow must re-solve its rate and the objective moved.
		e.flowForced[e.p.Classes[j].Flow] = true
		e.utilStale = true
	}
	// Whether or not the population was truncated, the node's greedy
	// admission may now admit a different mix.
	e.nodeForced[e.p.Classes[j].Node] = true
	return nil
}

// SetNodeCapacity changes a node's capacity mid-run, modeling hardware
// degradation or scale-out. Safe only between Step calls, never
// concurrently with Step (see SetClassDemand).
func (e *Engine) SetNodeCapacity(b model.NodeID, capacity float64) error {
	if b < 0 || int(b) >= len(e.p.Nodes) {
		return fmt.Errorf("core: unknown node %d", b)
	}
	if capacity <= 0 {
		return fmt.Errorf("core: node %d capacity %g <= 0", b, capacity)
	}
	e.p.Nodes[b].Capacity = capacity
	// The admission budget changed; the cached used/bestUnsatisfied are
	// stale. (The price update reads capacity fresh each iteration.)
	e.nodeForced[b] = true
	return nil
}

// Reset re-targets the engine at a perturbed problem, warm-starting from
// the current fixpoint: rates (clamped into p's bounds), populations
// (clamped to p's demands), prices and adaptive-gamma state all carry
// over, while the dense index views, worker pool, solvers and scratch are
// reused without reallocating. p must be topology-compatible with the
// original problem — same flows, nodes, links and classes, with the same
// class attachments and the same cost-map sparsity; only cost values,
// capacities, rate bounds, demands and utility functions may differ (see
// model.Index.Refresh). On error the engine still runs the old problem.
//
// After Reset the iteration counter restarts at zero and the first Step
// recomputes everything; subsequent iterations are incremental again. A
// sweep that Resets through nearby problems converges in far fewer
// iterations than cold-starting an engine per point — see the
// lrgp-experiments "sweep" experiment and BenchmarkSweepWarmStart.
func (e *Engine) Reset(p *model.Problem) error {
	if e.closed {
		panic("core: Engine.Reset called after Close")
	}
	if err := model.Validate(p); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := e.ix.Refresh(p); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	e.p = p
	for i := range e.solvers {
		e.solvers[i].bind(p)
	}
	for i := range p.Flows {
		if e.active[i] {
			e.rates[i] = clamp(e.rates[i], p.Flows[i].RateMin, p.Flows[i].RateMax)
		}
	}
	for j := range p.Classes {
		if e.consumers[j] > p.Classes[j].MaxConsumers {
			e.consumers[j] = p.Classes[j].MaxConsumers
		}
	}

	// Every cached value is suspect under the new problem: restart the
	// epoch clock and force a full first iteration.
	e.iteration = 0
	e.util, e.utilStale = 0, true
	for i := range e.flowForced {
		e.flowForced[i] = true
		e.rateEpoch[i] = 0
	}
	for b := range e.nodeForced {
		e.nodeForced[b] = true
		e.nodePriceEpoch[b] = 0
	}
	for l := range e.linkForced {
		e.linkForced[l] = true
		e.linkPriceEpoch[l] = 0
	}
	for j := range e.popEpoch {
		e.popEpoch[j] = 0
	}
	return nil
}

// Iteration returns the number of completed iterations.
func (e *Engine) Iteration() int { return e.iteration }

// Problem returns the engine's problem.
func (e *Engine) Problem() *model.Problem { return e.p }

// Index returns the engine's precomputed lookup index.
func (e *Engine) Index() *model.Index { return e.ix }

// Allocation returns a copy of the current rates and populations.
func (e *Engine) Allocation() model.Allocation {
	a := model.Allocation{
		Rates:     make([]float64, len(e.rates)),
		Consumers: make([]int, len(e.consumers)),
	}
	copy(a.Rates, e.rates)
	copy(a.Consumers, e.consumers)
	return a
}

// NodePrices returns a copy of the node price vector.
func (e *Engine) NodePrices() []float64 {
	out := make([]float64, len(e.nodePrices))
	copy(out, e.nodePrices)
	return out
}

// LinkPrices returns a copy of the link price vector.
func (e *Engine) LinkPrices() []float64 {
	out := make([]float64, len(e.linkPrices))
	copy(out, e.linkPrices)
	return out
}

// Gammas returns a copy of the per-node adaptive stepsizes (meaningful only
// with Config.Adaptive).
func (e *Engine) Gammas() []float64 {
	out := make([]float64, len(e.nodeGamma))
	for b := range e.nodeGamma {
		out[b] = e.nodeGamma[b].gamma
	}
	return out
}

// Result summarizes a Solve run.
type Result struct {
	// Utility is the objective value at the final iteration.
	Utility float64
	// Iterations is the number of iterations executed.
	Iterations int
	// Converged reports whether the 0.1% amplitude rule was met.
	Converged bool
	// ConvergedAt is the first iteration satisfying the rule (or -1).
	ConvergedAt int
	// Allocation is the final allocation.
	Allocation model.Allocation
	// Trace is the utility after each iteration.
	Trace []float64
}

// Solve runs until the paper's convergence rule (utility oscillation
// amplitude < 0.1% over a trailing window) or maxIter iterations,
// whichever comes first, and returns the outcome. Iterations continue for
// one full window after first detection so the reported utility is the
// settled value.
func (e *Engine) Solve(maxIter int) Result {
	if maxIter <= 0 {
		maxIter = 250
	}
	det := metrics.NewConvergenceDetector(0, 0)
	trace := make([]float64, 0, maxIter)
	for t := 0; t < maxIter; t++ {
		r := e.Step()
		trace = append(trace, r.Utility)
		if det.Observe(r.Utility) {
			break
		}
	}
	e.cfg.Telemetry.ObserveConvergence(det.Converged(), det.ConvergedAt())
	return Result{
		Utility:     trace[len(trace)-1],
		Iterations:  len(trace),
		Converged:   det.Converged(),
		ConvergedAt: det.ConvergedAt(),
		Allocation:  e.Allocation(),
		Trace:       trace,
	}
}
