package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/utility"
)

// RandomConfig parameterizes Random. Zero fields are normalized to the
// listed defaults.
type RandomConfig struct {
	// Flows is the number of flows (default 4).
	Flows int
	// Nodes is the number of consumer nodes (default 3).
	Nodes int
	// ClassesPerFlow is how many classes consume each flow (default 3).
	ClassesPerFlow int
	// MaxConsumers bounds each class's n^max, drawn from [1, MaxConsumers]
	// (default 200).
	MaxConsumers int
	// Capacity is the node capacity (default NodeCapacity).
	Capacity float64
	// Shape selects the utility family (default ShapeLog).
	Shape Shape
}

func (c RandomConfig) normalized() RandomConfig {
	if c.Flows <= 0 {
		c.Flows = 4
	}
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.ClassesPerFlow <= 0 {
		c.ClassesPerFlow = 3
	}
	if c.MaxConsumers <= 0 {
		c.MaxConsumers = 200
	}
	if c.Capacity <= 0 {
		c.Capacity = NodeCapacity
	}
	if c.Shape == 0 {
		c.Shape = ShapeLog
	}
	return c
}

// Random generates a seeded, reproducible random workload. Every flow gets
// ClassesPerFlow classes attached at random nodes with random ranks in
// [1, 100] and random populations; flow-node costs and consumer costs are
// jittered around the paper's constants. The result always validates.
func Random(rng *rand.Rand, cfg RandomConfig) *model.Problem {
	c := cfg.normalized()

	p := &model.Problem{
		Name:    fmt.Sprintf("random-%df-%dn", c.Flows, c.Nodes),
		Flows:   make([]model.Flow, c.Flows),
		Classes: make([]model.Class, 0, c.Flows*c.ClassesPerFlow),
		Nodes:   make([]model.Node, c.Nodes),
	}
	for b := 0; b < c.Nodes; b++ {
		p.Nodes[b] = model.Node{
			ID:       model.NodeID(b),
			Name:     fmt.Sprintf("S%d", b),
			Capacity: c.Capacity,
			FlowCost: make(map[model.FlowID]float64),
		}
	}
	for i := 0; i < c.Flows; i++ {
		p.Flows[i] = model.Flow{
			ID:      model.FlowID(i),
			Name:    fmt.Sprintf("flow%d", i),
			RateMin: RateMin,
			RateMax: RateMax,
		}
		for k := 0; k < c.ClassesPerFlow; k++ {
			b := model.NodeID(rng.Intn(c.Nodes))
			rank := 1 + rng.Float64()*99
			p.Classes = append(p.Classes, model.Class{
				ID:              model.ClassID(len(p.Classes)),
				Name:            fmt.Sprintf("c%d", len(p.Classes)),
				Flow:            model.FlowID(i),
				Node:            b,
				MaxConsumers:    1 + rng.Intn(c.MaxConsumers),
				CostPerConsumer: ConsumerCost * (0.5 + rng.Float64()),
				Utility:         c.Shape.Utility(rank),
			})
			if _, ok := p.Nodes[b].FlowCost[model.FlowID(i)]; !ok {
				p.Nodes[b].FlowCost[model.FlowID(i)] = FlowNodeCost * (0.5 + rng.Float64())
			}
		}
	}
	for i := range p.Flows {
		src := model.NodeID(0)
		for b := range p.Nodes {
			if _, ok := p.Nodes[b].FlowCost[model.FlowID(i)]; ok {
				src = model.NodeID(b)
				break
			}
		}
		p.Flows[i].Source = src
		// Guarantee the flow reaches its source so the problem validates
		// even if no class references it.
		if _, ok := p.Nodes[src].FlowCost[model.FlowID(i)]; !ok {
			p.Nodes[src].FlowCost[model.FlowID(i)] = FlowNodeCost
		}
	}
	return p
}

// WithLinkBottlenecks returns a copy of p extended with one capacity-
// constrained link per flow, between the flow's source and the next node on
// its path (or a synthetic egress pairing if the flow reaches only one
// node). Each link carries only its own flow at unit cost, with capacity
// chosen so the link binds at utilization*RateMax. It exercises Equation 4
// and the link-price update (Equation 13), which the paper's base workload
// deliberately leaves idle.
func WithLinkBottlenecks(p *model.Problem, utilization float64) *model.Problem {
	if utilization <= 0 {
		utilization = 0.5
	}
	out := p.Clone()
	out.Name = p.Name + "-links"
	ix := model.NewIndex(out)
	for i := range out.Flows {
		fid := model.FlowID(i)
		nodes := ix.NodesByFlow(fid)
		from := out.Flows[i].Source
		to := from
		for _, b := range nodes {
			if b != from {
				to = b
				break
			}
		}
		if to == from {
			// Single-node flow: pair with any other node for a synthetic
			// egress link (the overlay always has >= 2 nodes in our
			// workloads; skip degenerate single-node problems).
			if len(out.Nodes) < 2 {
				continue
			}
			to = (from + 1) % model.NodeID(len(out.Nodes))
		}
		out.Links = append(out.Links, model.Link{
			ID:       model.LinkID(len(out.Links)),
			Name:     fmt.Sprintf("l%d", len(out.Links)),
			From:     from,
			To:       to,
			Capacity: utilization * out.Flows[i].RateMax,
			FlowCost: map[model.FlowID]float64{fid: 1},
		})
	}
	return out
}

// Tiny returns a deliberately small workload (2 flows, 2 nodes, 4 classes,
// small populations) whose optimum a brute-force search can find quickly.
// Used by optimality unit tests.
func Tiny() *model.Problem {
	p := &model.Problem{
		Name: "tiny-2f-2n",
		Flows: []model.Flow{
			{ID: 0, Name: "flow0", Source: 0, RateMin: 1, RateMax: 100},
			{ID: 1, Name: "flow1", Source: 1, RateMin: 1, RateMax: 100},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "S0", Capacity: 5000, FlowCost: map[model.FlowID]float64{0: 3, 1: 3}},
			{ID: 1, Name: "S1", Capacity: 5000, FlowCost: map[model.FlowID]float64{0: 3, 1: 3}},
		},
		Classes: []model.Class{
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 8, CostPerConsumer: 19, Utility: utility.NewLog(20)},
			{ID: 1, Flow: 0, Node: 1, MaxConsumers: 6, CostPerConsumer: 19, Utility: utility.NewLog(5)},
			{ID: 2, Flow: 1, Node: 0, MaxConsumers: 8, CostPerConsumer: 19, Utility: utility.NewLog(40)},
			{ID: 3, Flow: 1, Node: 1, MaxConsumers: 6, CostPerConsumer: 19, Utility: utility.NewLog(10)},
		},
	}
	return p
}
