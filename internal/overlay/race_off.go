//go:build !race

package overlay

const raceEnabled = false
