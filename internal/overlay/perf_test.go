package overlay

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

// podTopology builds `pods` disjoint ring components of podSize nodes each
// (so a single ring-link failure always has a detour) with one flow per
// pod: source at the pod base, subscribers at the quarter points. Every
// pod is overprovisioned — its fixpoint is rates at RateMax with full
// admission, reached exactly — except pod 0, whose node capacities are
// tight enough to keep admission contended. Failures in pod 0 therefore
// perturb only pod 0, and the other pods' allocations must stay
// bit-identical across a warm re-solve.
func podTopology(pods, podSize int) (*Topology, []float64, []FlowSpec) {
	n := pods * podSize
	tp := NewTopology(n)
	caps := make([]float64, n)
	flows := make([]FlowSpec, 0, pods)
	for p := 0; p < pods; p++ {
		base := p * podSize
		for k := 0; k < podSize; k++ {
			_, _, _ = tp.AddBidirectional(model.NodeID(base+k), model.NodeID(base+(k+1)%podSize), 1e9)
		}
		cap := 1e9
		if p == 0 {
			// Contended: subscriber nodes host 200 units of relay work at
			// full rate plus 500 units of wanted admission against a 400
			// budget, so prices must find the marginal consumer.
			cap = 400
		}
		for k := 0; k < podSize; k++ {
			caps[base+k] = cap
		}
		fs := FlowSpec{
			Name: "pod", Source: model.NodeID(base),
			RateMin: 1, RateMax: 100, LinkCost: 1, NodeCost: 2,
		}
		for _, q := range []int{1, 2, 3} {
			fs.Classes = append(fs.Classes, ClassSpec{
				Name: "c", Node: model.NodeID(base + q*podSize/4),
				MaxConsumers: 100, CostPerConsumer: 5,
				Utility: utility.NewLog(float64(5 * q)),
			})
		}
		flows = append(flows, fs)
	}
	return tp, caps, flows
}

// TestWarmResolveSpeedup10k is the headline acceptance gate: on a
// 10k-node topology, a single-link failure handled by RepairLink +
// ResetRouting + warm Solve must re-converge at least 5x faster
// end-to-end than a cold rebuild (NewRouter + NewEngine + Solve), with
// every unaffected flow keeping bit-identical trees and allocations.
func TestWarmResolveSpeedup10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node gate skipped in -short")
	}
	const pods, podSize = 200, 50
	tp, caps, flows := podTopology(pods, podSize)
	r, err := NewRouter(tp, caps, flows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Workers: 1}
	eng, err := core.NewEngine(r.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pre := eng.Solve(4000)
	if !pre.Converged {
		t.Fatalf("pre-failure solve did not converge in %d iterations", pre.Iterations)
	}
	base := pre.Allocation
	treesBefore := make([]Tree, len(flows))
	for fi := range flows {
		treesBefore[fi] = r.Tree(model.FlowID(fi))
	}

	// Fail a pod-0 ring link that flow 0's tree uses.
	li := r.Tree(0).Links[0]

	warmStart := time.Now()
	st, err := r.RepairLink(li)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ResetRouting(r.Problem(), r.TakeDelta()); err != nil {
		t.Fatal(err)
	}
	warm := eng.Solve(4000)
	warmDur := time.Since(warmStart)
	if !warm.Converged {
		t.Fatalf("warm re-solve did not converge in %d iterations", warm.Iterations)
	}
	if st.Affected != 1 || st.Rerouted != 1 {
		t.Fatalf("repair stats affected=%d rerouted=%d, want 1/1 (pod-0 flow only)", st.Affected, st.Rerouted)
	}

	// Unaffected flows: trees shared verbatim, allocations bit-identical.
	for fi := 1; fi < len(flows); fi++ {
		cur := r.Tree(model.FlowID(fi))
		if !sameSlice(treesBefore[fi].Links, cur.Links) || !sameSlice(treesBefore[fi].Nodes, cur.Nodes) {
			t.Fatalf("unaffected flow %d tree re-allocated", fi)
		}
		if warm.Allocation.Rates[fi] != base.Rates[fi] {
			t.Fatalf("unaffected flow %d rate moved: %g -> %g", fi, base.Rates[fi], warm.Allocation.Rates[fi])
		}
	}
	for j := range base.Consumers {
		if r.Problem().Classes[j].Flow == 0 {
			continue
		}
		if warm.Allocation.Consumers[j] != base.Consumers[j] {
			t.Fatalf("unaffected class %d population moved: %d -> %d", j, base.Consumers[j], warm.Allocation.Consumers[j])
		}
	}

	// Cold rebuild on the same (mutated) topology.
	coldStart := time.Now()
	rc, err := NewRouter(tp, caps, flows)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := core.NewEngine(rc.Problem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	cold := ec.Solve(4000)
	coldDur := time.Since(coldStart)
	if !cold.Converged {
		t.Fatalf("cold solve did not converge in %d iterations", cold.Iterations)
	}

	// Same optimum (the warm path just got there cheaper).
	rel := (warm.Utility - cold.Utility) / cold.Utility
	if rel < -1e-3 || rel > 1e-3 {
		t.Fatalf("warm utility %g vs cold %g (rel %g)", warm.Utility, cold.Utility, rel)
	}

	speedup := float64(coldDur) / float64(warmDur)
	t.Logf("single-link failure at 10k nodes: warm %v (%d iters) vs cold %v (%d iters) — %.1fx",
		warmDur, warm.Iterations, coldDur, cold.Iterations, speedup)
	if speedup < 5 {
		// Race instrumentation slows the warm path's per-iteration work
		// more than the cold build's allocation storm, so the wall-clock
		// gate only binds on uninstrumented builds; the correctness
		// assertions above ran either way.
		if raceEnabled {
			t.Logf("speedup %.2fx below the 5x gate; not enforced under -race", speedup)
		} else {
			t.Fatalf("warm re-solve speedup %.2fx < 5x gate (warm %v, cold %v)", speedup, warmDur, coldDur)
		}
	}
}

// BenchmarkTreeRepair measures one link kill + restore cycle on the
// 10k-node pod topology: the kill re-routes the single affected flow, the
// restore re-traces every flow against the healed topology. Allocations
// stay bounded by the damage (changed trees), not the topology.
func BenchmarkTreeRepair(b *testing.B) {
	tp, caps, flows := podTopology(100, 100)
	r, err := NewRouter(tp, caps, flows)
	if err != nil {
		b.Fatal(err)
	}
	li := r.Tree(0).Links[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RepairLink(li); err != nil {
			b.Fatal(err)
		}
		if _, err := r.RestoreLink(li); err != nil {
			b.Fatal(err)
		}
		r.TakeDelta()
	}
}

// BenchmarkWarmResolve measures the full warm path per failure event:
// RepairLink + ResetRouting + Solve to re-convergence, alternating kill
// and restore so every iteration starts from a converged engine.
func BenchmarkWarmResolve(b *testing.B) {
	tp, caps, flows := podTopology(100, 100)
	r, err := NewRouter(tp, caps, flows)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(r.Problem(), core.Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	eng.Solve(4000)
	li := r.Tree(0).Links[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			_, err = r.RepairLink(li)
		} else {
			_, err = r.RestoreLink(li)
		}
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.ResetRouting(r.Problem(), r.TakeDelta()); err != nil {
			b.Fatal(err)
		}
		eng.Solve(4000)
	}
	b.StopTimer()
	if i := b.N; i%2 == 1 { // leave the topology healed
		_, _ = r.RestoreLink(li)
	}
}

// BenchmarkColdResolve is the rebuild baseline BenchmarkWarmResolve is
// judged against: route everything, build a fresh engine, solve cold.
func BenchmarkColdResolve(b *testing.B) {
	tp, caps, flows := podTopology(100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewRouter(tp, caps, flows)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(r.Problem(), core.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		eng.Solve(4000)
		eng.Close()
	}
}
