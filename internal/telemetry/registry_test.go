package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_count_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := reg.Gauge("t_gauge", "help")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %g, want 2", got)
	}
}

func TestRegistrationIdempotentSameKind(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t_total", "help", Label{Key: "k", Value: "v"})
	b := reg.Counter("t_total", "help", Label{Key: "k", Value: "v"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	// Same family, different labels: distinct metrics.
	c := reg.Counter("t_total", "help", Label{Key: "k", Value: "w"})
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
}

func TestRegistrationKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("t_metric", "help")
	reg.Gauge("t_metric", "help")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid name did not panic")
		}
	}()
	NewRegistry().Counter("0bad name", "help")
}

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	count, sum := h.CountSum()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if sum != 111.5 {
		t.Errorf("sum = %g, want 111.5", sum)
	}
	// Bucket membership is le-style: 1 lands in the le=1 bucket.
	if got := h.counts[0].Load(); got != 2 {
		t.Errorf("le=1 bucket = %d, want 2 (0.5 and 1)", got)
	}
	if got := h.counts[3].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1 (100)", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_reqs_total", "Requests.").Add(3)
	reg.Gauge("t_temp", "Temperature.").Set(-1.5)
	reg.Counter("t_by_kind_total", "By kind.", Label{Key: "kind", Value: "a"}).Inc()
	reg.Counter("t_by_kind_total", "By kind.", Label{Key: "kind", Value: "b"}).Add(2)
	h := reg.Histogram("t_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP t_reqs_total Requests.",
		"# TYPE t_reqs_total counter",
		"t_reqs_total 3",
		"t_temp -1.5",
		`t_by_kind_total{kind="a"} 1`,
		`t_by_kind_total{kind="b"} 2`,
		"# TYPE t_lat_seconds histogram",
		`t_lat_seconds_bucket{le="0.1"} 1`,
		`t_lat_seconds_bucket{le="1"} 2`,
		`t_lat_seconds_bucket{le="+Inf"} 3`,
		"t_lat_seconds_sum 2.55",
		"t_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear exactly once per family even with multiple
	// label sets.
	if n := strings.Count(out, "# TYPE t_by_kind_total"); n != 1 {
		t.Errorf("t_by_kind_total TYPE emitted %d times, want 1", n)
	}
}

func TestFamilySamplesContiguous(t *testing.T) {
	// Interleave registration of two families; rendering must still
	// group each family's samples.
	reg := NewRegistry()
	reg.Counter("t_a_total", "A.", Label{Key: "i", Value: "1"})
	reg.Counter("t_b_total", "B.")
	reg.Counter("t_a_total", "A.", Label{Key: "i", Value: "2"})

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	b := strings.Index(out, "t_b_total")
	a2 := strings.Index(out, `t_a_total{i="2"}`)
	if b < a2 {
		t.Errorf("family t_a_total split around t_b_total:\n%s", out)
	}
}

func TestFormatValueSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		2.5:          "2.5",
		1e7:          "1e+07",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%g) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func TestSnapshotMap(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_c_total", "C.").Add(7)
	reg.Gauge("t_g", "G.").Set(1.25)
	reg.Histogram("t_h", "H.", []float64{1}).Observe(0.5)
	snap := reg.Snapshot()
	if got := snap["t_c_total"]; got != uint64(7) {
		t.Errorf("counter snapshot = %v", got)
	}
	if got := snap["t_g"]; got != 1.25 {
		t.Errorf("gauge snapshot = %v", got)
	}
	hs, ok := snap["t_h"].(map[string]any)
	if !ok || hs["count"] != uint64(1) || hs["sum"] != 0.5 {
		t.Errorf("histogram snapshot = %v", snap["t_h"])
	}
}

// TestConcurrentObservation exercises the lock-free paths under the race
// detector: concurrent counter adds, gauge CAS loops and histogram
// observes must neither race nor lose updates (counters/counts are
// exact; the float sums are CAS loops so they are exact too).
func TestConcurrentObservation(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_conc_total", "help")
	g := reg.Gauge("t_conc_gauge", "help")
	h := reg.Histogram("t_conc_hist", "help", DurationBuckets())

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	count, sum := h.CountSum()
	if count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", count, workers*perWorker)
	}
	if want := workers * perWorker * 1e-4; math.Abs(sum-want) > 1e-9 {
		t.Errorf("histogram sum = %g, want %g", sum, want)
	}
}

// TestObservationDoesNotAllocate pins the lock-free claim: Observe, Inc,
// Add and Set allocate nothing, which is what lets instrumented hot
// paths keep their 0 allocs/op guarantee.
func TestObservationDoesNotAllocate(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_alloc_total", "help")
	g := reg.Gauge("t_alloc_gauge", "help")
	h := reg.Histogram("t_alloc_hist", "help", DurationBuckets())
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		g.Add(1)
		h.Observe(2e-3)
		h.ObserveSeconds(1500)
	}); allocs > 0 {
		t.Errorf("observation path allocates %v per run, want 0", allocs)
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var em *EngineMetrics
	em.ObserveStep([3]int64{1, 2, 3}, 10, 0, 0, 3, 2, 1, 4)
	em.ObserveConvergence(true, 42)
	// The disabled path must stay one predictable branch: no allocations
	// even with the dirty-set arguments threaded through.
	if allocs := testing.AllocsPerRun(100, func() {
		em.ObserveStep([3]int64{1, 2, 3}, 10, 0, 0, 3, 2, 1, 4)
	}); allocs > 0 {
		t.Errorf("nil-handle ObserveStep allocates %v per run, want 0", allocs)
	}
	var bm *BrokerMetrics
	bm.ObservePublish(3, 1, 7)
	bm.ObserveThrottle()
	bm.ObserveThinned()
	bm.ObserveConsumers(5, 2)
	bm.ObserveAllocation()
}

func TestEngineMetricsObserveStep(t *testing.T) {
	reg := NewRegistry()
	em := NewEngineMetrics(reg)
	em.ObserveStep([3]int64{1000, 2000, 3000}, 123.5, 0.25, -1, 3, 2, 6, 0)
	em.ObserveStep([3]int64{1000, 2000, 3000}, 130, 0, -2, 3, 2, 2, 3)
	if got := em.Steps.Value(); got != 2 {
		t.Errorf("steps = %d, want 2", got)
	}
	if got := em.Utility.Value(); got != 130 {
		t.Errorf("utility gauge = %g, want 130 (last write wins)", got)
	}
	if got := em.NodePriceUpdates.Value(); got != 6 {
		t.Errorf("node price updates = %d, want 6", got)
	}
	if got := em.LinkPriceUpdates.Value(); got != 4 {
		t.Errorf("link price updates = %d, want 4", got)
	}
	count, sum := em.StageSeconds[StageRate].CountSum()
	if count != 2 || math.Abs(sum-2e-6) > 1e-12 {
		t.Errorf("rate stage histogram = (%d, %g), want (2, 2e-6)", count, sum)
	}
	if got := em.ConvergedIteration.Value(); got != -1 {
		t.Errorf("converged iteration starts at %g, want -1", got)
	}
	if em.DirtyFlows.Value() != 2 || em.SkippedConstraints.Value() != 3 {
		t.Errorf("dirty-set gauges = (%g, %g), want (2, 3) (last write wins)",
			em.DirtyFlows.Value(), em.SkippedConstraints.Value())
	}
	em.ObserveConvergence(true, 37)
	if em.Converged.Value() != 1 || em.ConvergedIteration.Value() != 37 {
		t.Errorf("convergence gauges = (%g, %g), want (1, 37)",
			em.Converged.Value(), em.ConvergedIteration.Value())
	}
}

func TestBrokerMetricsObserve(t *testing.T) {
	reg := NewRegistry()
	bm := NewBrokerMetrics(reg)
	bm.ObservePublish(4, 2, 11)
	bm.ObserveThrottle()
	bm.ObserveThinned()
	bm.ObserveConsumers(10, 4)
	bm.ObserveAllocation()
	if bm.Published.Value() != 1 || bm.Delivered.Value() != 4 ||
		bm.Filtered.Value() != 2 || bm.WorkUnits.Value() != 11 {
		t.Errorf("publish counters = %d/%d/%d/%d", bm.Published.Value(),
			bm.Delivered.Value(), bm.Filtered.Value(), bm.WorkUnits.Value())
	}
	if bm.Throttled.Value() != 1 || bm.Thinned.Value() != 1 || bm.Allocations.Value() != 1 {
		t.Error("throttle/thin/allocation counters wrong")
	}
	if bm.Attached.Value() != 10 || bm.Admitted.Value() != 4 {
		t.Error("consumer gauges wrong")
	}
	count, _ := bm.Fanout.CountSum()
	if count != 1 {
		t.Errorf("fanout histogram count = %d, want 1", count)
	}
}
