package broker

import (
	"sync"
	"time"
)

// TokenBucket enforces a message rate at a flow's source node. Tokens
// accrue continuously at Rate per second up to Burst; each admitted
// message consumes one token. The clock is injected for deterministic
// tests.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a bucket producing rate tokens/second with the
// given burst capacity, initially full. burst <= 0 defaults to one
// second's worth of tokens (minimum 1).
func NewTokenBucket(rate, burst float64, now time.Time) *TokenBucket {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

// SetRate changes the refill rate (enacting a new optimizer allocation).
// Accumulated tokens are first settled at the old rate. The burst stays as
// configured unless it was rate-coupled (burst == old rate), in which case
// it follows the new rate.
func (tb *TokenBucket) SetRate(rate float64, now time.Time) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(now)
	if tb.burst == tb.rate {
		tb.burst = rate
		if tb.burst < 1 {
			tb.burst = 1
		}
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.rate = rate
}

// Rate returns the current refill rate.
func (tb *TokenBucket) Rate() float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.rate
}

// Allow consumes one token if available and reports whether the message
// may pass.
func (tb *TokenBucket) Allow(now time.Time) bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(now)
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Tokens returns the currently available tokens (after settling).
func (tb *TokenBucket) Tokens(now time.Time) float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(now)
	return tb.tokens
}

func (tb *TokenBucket) refill(now time.Time) {
	if !now.After(tb.last) {
		return
	}
	dt := now.Sub(tb.last).Seconds()
	tb.last = now
	tb.tokens += dt * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}
