package workload

import (
	"repro/internal/model"
	"repro/internal/utility"
)

// Presets for the paper's Section 1.1 motivating scenarios, shared by the
// examples and usable as library starting points.

// TradeData builds the trade-data scenario: one trade flow into a shared
// hub, a small nearly inelastic gold tier (reliability work makes its
// per-consumer cost higher) and a large elastic public tier. capacity <= 0
// selects a comfortable default.
func TradeData(capacity float64) *model.Problem {
	if capacity <= 0 {
		capacity = 2_000_000
	}
	return &model.Problem{
		Name: "trade-data",
		Flows: []model.Flow{
			{ID: 0, Name: "trades", Source: 0, RateMin: 50, RateMax: 500},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "hub", Capacity: capacity, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "gold", Flow: 0, Node: 0, MaxConsumers: 60,
				CostPerConsumer: 40, Utility: utility.LinearCap{Scale: 30, Knee: 400}},
			{ID: 1, Name: "public", Flow: 0, Node: 0, MaxConsumers: 5000,
				CostPerConsumer: 19, Utility: utility.NewLog(2)},
		},
	}
}

// LatestPrice builds the latest-price scenario: one very elastic price
// flow and two consumer populations (chart watchers and alert watchers)
// whose demand scales with the given consumer count. demand <= 0 selects
// 1000.
func LatestPrice(demand int) *model.Problem {
	if demand <= 0 {
		demand = 1000
	}
	return &model.Problem{
		Name: "latest-price",
		Flows: []model.Flow{
			{ID: 0, Name: "ibm-px", Source: 0, RateMin: 1, RateMax: 200},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "edge", Capacity: 300_000, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "chart", Flow: 0, Node: 0, MaxConsumers: demand,
				CostPerConsumer: 19, Utility: utility.NewLog(8)},
			{ID: 1, Name: "alert", Flow: 0, Node: 0, MaxConsumers: demand / 2,
				CostPerConsumer: 19, Utility: utility.NewLog(20)},
		},
	}
}

// Heterogeneous builds the multirate showcase: a small high-rank class
// that wants the full stream and a large low-rank crowd that is nearly
// indifferent above a trickle. Single-rate optimization compromises;
// multirate splits the deliveries (see internal/multirate).
func Heterogeneous() *model.Problem {
	return &model.Problem{
		Name: "hetero-1f-1n",
		Flows: []model.Flow{
			{ID: 0, Name: "feed", Source: 0, RateMin: 10, RateMax: 1000},
		},
		Nodes: []model.Node{
			{ID: 0, Name: "hub", Capacity: 1_000_000, FlowCost: map[model.FlowID]float64{0: 3}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "fast", Flow: 0, Node: 0, MaxConsumers: 20,
				CostPerConsumer: 19, Utility: utility.NewPower(100, 0.5)},
			{ID: 1, Name: "slow", Flow: 0, Node: 0, MaxConsumers: 10000,
				CostPerConsumer: 19, Utility: utility.NewLog(4)},
		},
	}
}
