// Package dist runs LRGP as a distributed system: one agent per flow
// source (Algorithm 1) and one agent per node (Algorithms 2 and 3, plus
// link-price computation for the links it owns), exchanging messages over a
// transport.Network. A collector endpoint aggregates per-round state so
// callers can observe the global utility the same way the paper's
// simulations do.
//
// Two execution modes are provided:
//
//   - Synchronous (the paper's main formulation): agents proceed in
//     lock-step rounds, each waiting for the full set of round-t inputs
//     before computing round t (or t+1) outputs.
//   - Asynchronous (Section 3.5): agents run on independent tickers using
//     the latest values received, with flow sources averaging the last few
//     prices from each resource to tolerate missing or stale updates.
package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/transport"
)

// Endpoint naming scheme.
const (
	collectorName = "collector"
	ctrlKind      = "ctrl"
	rateKind      = "rate"
	reportKind    = "report"
	// batchKind tags a frame whose payload is a batch of whole messages
	// (see gateway.go); receivers demux and handle each inner message.
	batchKind = "batch"
)

func hostName(k int) string {
	return "host/" + itoa(k)
}

func flowName(i model.FlowID) string {
	return "flow/" + itoa(int(i))
}

func nodeName(b model.NodeID) string {
	return "node/" + itoa(int(b))
}

func itoa(v int) string {
	// Tiny strconv.Itoa clone to keep the hot path allocation-free for
	// small ids is unnecessary; use the simple formulation.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// rateMsg announces a flow's rate for one round (flow agent -> node agents
// and collector).
type rateMsg struct {
	Round int          `json:"round"`
	Flow  model.FlowID `json:"flow"`
	Rate  float64      `json:"rate"`
	// Active false announces the flow's departure: this is the flow's
	// final message, and receivers must stop expecting it afterwards.
	Active bool `json:"active"`
}

// reportMsg carries a node's consumer allocation and prices for one round
// (node agent -> flow agents and collector).
type reportMsg struct {
	Round int          `json:"round"`
	Node  model.NodeID `json:"node"`
	Price float64      `json:"price"`
	// Populations holds n_j for the classes attached at this node.
	Populations map[model.ClassID]int `json:"populations,omitempty"`
	// Deliveries holds d_j for the classes attached at this node
	// (multirate mode only; absent in single-rate mode, where d_j = r_i).
	Deliveries map[model.ClassID]float64 `json:"deliveries,omitempty"`
	// LinkPrices holds the prices of the links this node owns (links
	// whose To endpoint is this node).
	LinkPrices map[model.LinkID]float64 `json:"linkPrices,omitempty"`
	// Used and BestBC expose the Equation 12 inputs for observability.
	Used   float64 `json:"used"`
	BestBC float64 `json:"bestBC"`
}

// ctrlMsg drives agents from the cluster.
type ctrlMsg struct {
	// RunUntil lets a synchronous flow agent advance up to (and
	// including) the given round, then pause.
	RunUntil int `json:"runUntil,omitempty"`
	// Leave tells a flow agent to announce departure and idle (it can
	// rejoin later).
	Leave bool `json:"leave,omitempty"`
	// Join tells an idled flow agent to re-announce itself and resume.
	Join bool `json:"join,omitempty"`
	// Stop tells any agent to exit immediately.
	Stop bool `json:"stop,omitempty"`
}

// Binary payload encoding. Every dist payload has a compact binary layout
// alongside its JSON one; the first payload byte distinguishes them ('{'
// opens JSON, a type tag below opens binary), so mixed-wire clusters
// interoperate. Layouts use uvarints for ids/rounds/counts and fixed
// 8-byte floats (transport.AppendFloat64).
const (
	rateTag   = 0x01
	reportTag = 0x02
	ctrlTag   = 0x03
)

// encodeBody encodes a dist payload in the given wire format. The binary
// path is pure appends: callers passing a reusable buffer get a 0 alloc/op
// steady state.
func encodeBody(wire transport.Wire, buf []byte, v any) ([]byte, error) {
	if wire == transport.WireBinary {
		switch b := v.(type) {
		case rateMsg:
			return b.appendBinary(buf), nil
		case reportMsg:
			return b.appendBinary(buf), nil
		case ctrlMsg:
			return b.appendBinary(buf), nil
		}
		// Fall through for types without a binary layout.
	}
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("dist: encode: %w", err)
	}
	return append(buf, data...), nil
}

func (rm rateMsg) appendBinary(dst []byte) []byte {
	dst = append(dst, rateTag)
	dst = binary.AppendUvarint(dst, uint64(rm.Round))
	dst = binary.AppendUvarint(dst, uint64(rm.Flow))
	dst = transport.AppendFloat64(dst, rm.Rate)
	if rm.Active {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decodeRate(m transport.Message) (rateMsg, error) {
	var rm rateMsg
	if len(m.Payload) > 0 && m.Payload[0] == '{' {
		return rm, transport.Decode(m, &rm)
	}
	c := transport.Cursor{Data: m.Payload}
	if tag := c.Byte(); tag != rateTag && c.Err() == nil {
		return rm, fmt.Errorf("%w: rate tag 0x%02x", transport.ErrCorruptFrame, tag)
	}
	rm.Round = c.Int()
	rm.Flow = model.FlowID(c.Int())
	rm.Rate = c.Float64()
	rm.Active = c.Byte() != 0
	if err := c.Err(); err != nil {
		return rateMsg{}, err
	}
	if c.Rest() != 0 {
		return rateMsg{}, fmt.Errorf("%w: %d trailing bytes after rate", transport.ErrCorruptFrame, c.Rest())
	}
	return rm, nil
}

func (rm reportMsg) appendBinary(dst []byte) []byte {
	dst = append(dst, reportTag)
	dst = binary.AppendUvarint(dst, uint64(rm.Round))
	dst = binary.AppendUvarint(dst, uint64(rm.Node))
	dst = transport.AppendFloat64(dst, rm.Price)
	dst = transport.AppendFloat64(dst, rm.Used)
	dst = transport.AppendFloat64(dst, rm.BestBC)
	dst = binary.AppendUvarint(dst, uint64(len(rm.Populations)))
	for cid, n := range rm.Populations {
		dst = binary.AppendUvarint(dst, uint64(cid))
		dst = binary.AppendUvarint(dst, uint64(n))
	}
	dst = binary.AppendUvarint(dst, uint64(len(rm.Deliveries)))
	for cid, d := range rm.Deliveries {
		dst = binary.AppendUvarint(dst, uint64(cid))
		dst = transport.AppendFloat64(dst, d)
	}
	dst = binary.AppendUvarint(dst, uint64(len(rm.LinkPrices)))
	for lid, pr := range rm.LinkPrices {
		dst = binary.AppendUvarint(dst, uint64(lid))
		dst = transport.AppendFloat64(dst, pr)
	}
	return dst
}

func decodeReport(m transport.Message) (reportMsg, error) {
	var rm reportMsg
	if len(m.Payload) > 0 && m.Payload[0] == '{' {
		return rm, transport.Decode(m, &rm)
	}
	c := transport.Cursor{Data: m.Payload}
	if tag := c.Byte(); tag != reportTag && c.Err() == nil {
		return rm, fmt.Errorf("%w: report tag 0x%02x", transport.ErrCorruptFrame, tag)
	}
	rm.Round = c.Int()
	rm.Node = model.NodeID(c.Int())
	rm.Price = c.Float64()
	rm.Used = c.Float64()
	rm.BestBC = c.Float64()
	// Count-0 sections decode to nil maps, matching JSON omitempty
	// round-trip semantics. Counts are bounded by the remaining payload
	// size (each entry is at least 2 bytes) before allocating.
	if n := c.Int(); n > 0 && c.Err() == nil {
		if n > c.Rest()/2 {
			return reportMsg{}, fmt.Errorf("%w: population count %d", transport.ErrCorruptFrame, n)
		}
		rm.Populations = make(map[model.ClassID]int, n)
		for k := 0; k < n && c.Err() == nil; k++ {
			cid := model.ClassID(c.Int())
			rm.Populations[cid] = c.Int()
		}
	}
	if n := c.Int(); n > 0 && c.Err() == nil {
		if n > c.Rest()/2 {
			return reportMsg{}, fmt.Errorf("%w: delivery count %d", transport.ErrCorruptFrame, n)
		}
		rm.Deliveries = make(map[model.ClassID]float64, n)
		for k := 0; k < n && c.Err() == nil; k++ {
			cid := model.ClassID(c.Int())
			rm.Deliveries[cid] = c.Float64()
		}
	}
	if n := c.Int(); n > 0 && c.Err() == nil {
		if n > c.Rest()/2 {
			return reportMsg{}, fmt.Errorf("%w: link price count %d", transport.ErrCorruptFrame, n)
		}
		rm.LinkPrices = make(map[model.LinkID]float64, n)
		for k := 0; k < n && c.Err() == nil; k++ {
			lid := model.LinkID(c.Int())
			rm.LinkPrices[lid] = c.Float64()
		}
	}
	if err := c.Err(); err != nil {
		return reportMsg{}, err
	}
	if c.Rest() != 0 {
		return reportMsg{}, fmt.Errorf("%w: %d trailing bytes after report", transport.ErrCorruptFrame, c.Rest())
	}
	return rm, nil
}

func (cm ctrlMsg) appendBinary(dst []byte) []byte {
	dst = append(dst, ctrlTag)
	dst = binary.AppendUvarint(dst, uint64(cm.RunUntil))
	var flags byte
	if cm.Leave {
		flags |= 1
	}
	if cm.Join {
		flags |= 2
	}
	if cm.Stop {
		flags |= 4
	}
	return append(dst, flags)
}

func decodeCtrl(m transport.Message) (ctrlMsg, error) {
	var cm ctrlMsg
	if len(m.Payload) > 0 && m.Payload[0] == '{' {
		return cm, transport.Decode(m, &cm)
	}
	c := transport.Cursor{Data: m.Payload}
	if tag := c.Byte(); tag != ctrlTag && c.Err() == nil {
		return cm, fmt.Errorf("%w: ctrl tag 0x%02x", transport.ErrCorruptFrame, tag)
	}
	cm.RunUntil = c.Int()
	flags := c.Byte()
	cm.Leave = flags&1 != 0
	cm.Join = flags&2 != 0
	cm.Stop = flags&4 != 0
	if err := c.Err(); err != nil {
		return ctrlMsg{}, err
	}
	if c.Rest() != 0 {
		return ctrlMsg{}, fmt.Errorf("%w: %d trailing bytes after ctrl", transport.ErrCorruptFrame, c.Rest())
	}
	return cm, nil
}
