package broker

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/workload"
)

// BenchmarkPublishFanout measures delivery cost per published message with
// 1000 admitted filtered consumers on one class.
func BenchmarkPublishFanout(b *testing.B) {
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	br, err := New(brokerProblem(), WithClock(func() time.Time {
		clock = clock.Add(time.Second) // keep the token bucket full
		return clock
	}))
	if err != nil {
		b.Fatal(err)
	}
	sink := 0
	for i := 0; i < 1000; i++ {
		if _, err := br.AttachConsumer(0, AttrFilter{Attr: "price", Op: CmpGT, Value: 50},
			func(Message) { sink++ }); err != nil {
			b.Fatal(err)
		}
	}
	if err := br.ApplyAllocation(model.Allocation{Rates: []float64{1000}, Consumers: []int{1000, 0}}); err != nil {
		b.Fatal(err)
	}
	attrs := map[string]float64{"price": 80}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish(0, attrs, "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyAllocation measures enactment cost on the base workload
// with its full consumer population attached.
func BenchmarkApplyAllocation(b *testing.B) {
	p := workload.Base()
	br, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	for j, c := range p.Classes {
		for k := 0; k < c.MaxConsumers; k++ {
			if _, err := br.AttachConsumer(model.ClassID(j), nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	alloc := model.NewAllocation(p)
	for j, c := range p.Classes {
		alloc.Consumers[j] = c.MaxConsumers / 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.Consumers[0] = i % 400 // force real churn
		if err := br.ApplyAllocation(alloc); err != nil {
			b.Fatal(err)
		}
	}
}
