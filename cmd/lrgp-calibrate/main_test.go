package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The instrumented broker costs 2 work units per consumer (filter +
	// delivery), so the fitted G must print as 2.0000.
	if !strings.Contains(s, "+ 2.0000 * consumers") {
		t.Errorf("fitted G missing:\n%s", s)
	}
	if !strings.Contains(s, "R^2 = 1.000000") {
		t.Errorf("R^2 missing:\n%s", s)
	}
	if !strings.Contains(s, "F (flow-node cost per unit rate)") {
		t.Errorf("coefficients missing:\n%s", s)
	}
}

func TestRunUnitCostScaling(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-unit-cost", "9.5", "-points", "50,100", "-msgs", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	// G = 2 work units * 9.5 = 19, the paper's constant.
	if !strings.Contains(out.String(), "= 19.0000") {
		t.Errorf("scaled G missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-points", "5"}, &out); err == nil {
		t.Error("single point accepted")
	}
	if err := run([]string{"-points", "a,b"}, &out); err == nil {
		t.Error("bad points accepted")
	}
	if err := run([]string{"-points", "10,-5"}, &out); err == nil {
		t.Error("negative point accepted")
	}
	if err := run([]string{"-unit-cost", "0", "-points", "5,10"}, &out); err == nil {
		t.Error("zero unit cost accepted")
	}
}
