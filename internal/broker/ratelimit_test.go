package broker

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)

func TestTokenBucketBurstThenThrottle(t *testing.T) {
	tb := NewTokenBucket(10, 0, t0) // burst defaults to rate = 10
	for i := 0; i < 10; i++ {
		if !tb.Allow(t0) {
			t.Fatalf("message %d throttled within burst", i)
		}
	}
	if tb.Allow(t0) {
		t.Error("message beyond burst admitted")
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := NewTokenBucket(10, 0, t0)
	for i := 0; i < 10; i++ {
		tb.Allow(t0)
	}
	// 0.5s at 10/s = 5 tokens.
	later := t0.Add(500 * time.Millisecond)
	admitted := 0
	for i := 0; i < 10; i++ {
		if tb.Allow(later) {
			admitted++
		}
	}
	if admitted != 5 {
		t.Errorf("admitted %d after refill, want 5", admitted)
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	tb := NewTokenBucket(10, 20, t0)
	if got := tb.Tokens(t0.Add(time.Hour)); got != 20 {
		t.Errorf("tokens = %g, want burst cap 20", got)
	}
}

func TestTokenBucketSetRate(t *testing.T) {
	tb := NewTokenBucket(10, 0, t0)
	for i := 0; i < 10; i++ {
		tb.Allow(t0)
	}
	tb.SetRate(100, t0)
	if tb.Rate() != 100 {
		t.Errorf("rate = %g", tb.Rate())
	}
	// 100 ms at 100/s = 10 tokens; burst followed the rate to 100.
	later := t0.Add(100 * time.Millisecond)
	admitted := 0
	for i := 0; i < 20; i++ {
		if tb.Allow(later) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Errorf("admitted %d, want 10", admitted)
	}
}

func TestTokenBucketRateCoupledBurstFollows(t *testing.T) {
	tb := NewTokenBucket(10, 0, t0)
	tb.SetRate(50, t0)
	if got := tb.Tokens(t0.Add(time.Hour)); got != 50 {
		t.Errorf("burst after rate change = %g, want 50", got)
	}
}

func TestTokenBucketExplicitBurstKept(t *testing.T) {
	tb := NewTokenBucket(10, 30, t0)
	tb.SetRate(50, t0)
	if got := tb.Tokens(t0.Add(time.Hour)); got != 30 {
		t.Errorf("explicit burst after rate change = %g, want 30", got)
	}
}

func TestTokenBucketMinimumBurst(t *testing.T) {
	tb := NewTokenBucket(0.1, 0, t0) // rate below 1: burst floors at 1
	if !tb.Allow(t0) {
		t.Error("first message throttled despite burst floor")
	}
}

func TestTokenBucketTimeGoingBackwards(t *testing.T) {
	tb := NewTokenBucket(10, 0, t0)
	for i := 0; i < 10; i++ {
		tb.Allow(t0)
	}
	// A clock step backwards must not mint tokens.
	if tb.Allow(t0.Add(-time.Hour)) {
		t.Error("backwards clock minted tokens")
	}
}
