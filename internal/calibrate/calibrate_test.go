package calibrate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/utility"
)

func TestFitAffineExact(t *testing.T) {
	// y = 3 + 19n, noiseless.
	var samples []Sample
	for _, n := range []int{0, 10, 50, 100} {
		samples = append(samples, Sample{Consumers: n, WorkPerMessage: 3 + 19*float64(n)})
	}
	fit, err := FitAffine(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.F-3) > 1e-9 || math.Abs(fit.G-19) > 1e-9 {
		t.Errorf("fit = %+v, want F=3 G=19", fit)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %g for exact data", fit.R2)
	}
}

func TestFitAffineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for n := 0; n <= 200; n += 5 {
		y := 3 + 19*float64(n) + rng.NormFloat64()*5
		samples = append(samples, Sample{Consumers: n, WorkPerMessage: y})
	}
	fit, err := FitAffine(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.F-3) > 3 || math.Abs(fit.G-19)/19 > 0.02 {
		t.Errorf("fit = %+v, want approx F=3 G=19", fit)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g", fit.R2)
	}
}

func TestFitAffineErrors(t *testing.T) {
	if _, err := FitAffine(nil); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("empty: %v", err)
	}
	if _, err := FitAffine([]Sample{{10, 5}}); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("single: %v", err)
	}
	same := []Sample{{10, 5}, {10, 6}, {10, 7}}
	if _, err := FitAffine(same); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear: %v", err)
	}
}

// calibrationBroker builds a dedicated broker with one flow and one
// class, attaching maxConsumers handler-less consumers.
func calibrationBroker(t *testing.T, maxConsumers int) *broker.Broker {
	t.Helper()
	p := &model.Problem{
		Name: "calibration-rig",
		Flows: []model.Flow{
			{ID: 0, Name: "probe", Source: 0, RateMin: 1, RateMax: 1e6},
		},
		Nodes: []model.Node{
			{ID: 0, Capacity: 1e12, FlowCost: map[model.FlowID]float64{0: 1}},
		},
		Classes: []model.Class{
			{ID: 0, Name: "subjects", Flow: 0, Node: 0, MaxConsumers: maxConsumers,
				CostPerConsumer: 1, Utility: utility.NewLog(1)},
		},
	}
	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b, err := broker.New(p, broker.WithClock(func() time.Time {
		clock = clock.Add(time.Second)
		return clock
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxConsumers; i++ {
		if _, err := b.AttachConsumer(0, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestMeasureBrokerRecoversWorkModel(t *testing.T) {
	// The broker's instrumented work per message is 1 (routing) + 1
	// (class transform, only when someone is admitted) + 2 per admitted
	// consumer (filter + delivery). MeasureBroker + FitAffine must
	// recover G = 2 exactly and F in [1, 2].
	b := calibrationBroker(t, 200)
	samples, err := MeasureBroker(b, 0, 0, 1000, []int{10, 50, 100, 200}, 50)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitAffine(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.G-2) > 1e-9 {
		t.Errorf("G = %g, want 2 (filter + delivery per consumer)", fit.G)
	}
	if math.Abs(fit.F-2) > 1e-9 {
		t.Errorf("F = %g, want 2 (routing + transform)", fit.F)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %g", fit.R2)
	}
}

func TestMeasureBrokerInsufficientConsumers(t *testing.T) {
	b := calibrationBroker(t, 5)
	if _, err := MeasureBroker(b, 0, 0, 1000, []int{10}, 10); err == nil {
		t.Error("accepted a population above the attached count")
	}
}

func TestProblemCoefficients(t *testing.T) {
	f, g, err := ProblemCoefficients(Fit{F: 2, G: 2}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if f != 3 || g != 3 {
		t.Errorf("coefficients = %g/%g, want 3/3", f, g)
	}
	if _, _, err := ProblemCoefficients(Fit{F: 2, G: 2}, 0); err == nil {
		t.Error("accepted zero unit cost")
	}
	if _, _, err := ProblemCoefficients(Fit{F: -1, G: 2}, 1); err == nil {
		t.Error("accepted negative F")
	}
	if _, _, err := ProblemCoefficients(Fit{F: math.NaN(), G: 2}, 1); err == nil {
		t.Error("accepted NaN fit")
	}
}

// TestCalibrationClosesTheLoop: measure the broker, build an optimization
// problem from the fitted coefficients, and solve it — the full pipeline
// the paper describes (measure Gryphon -> parameterize the model ->
// optimize).
func TestCalibrationClosesTheLoop(t *testing.T) {
	b := calibrationBroker(t, 500)
	samples, err := MeasureBroker(b, 0, 0, 1000, []int{0, 100, 300, 500}, 25)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitAffine(samples)
	if err != nil {
		t.Fatal(err)
	}
	fCost, gCost, err := ProblemCoefficients(fit, 1)
	if err != nil {
		t.Fatal(err)
	}

	p := &model.Problem{
		Name:  "calibrated",
		Flows: []model.Flow{{ID: 0, Source: 0, RateMin: 10, RateMax: 1000}},
		Nodes: []model.Node{{ID: 0, Capacity: 50_000,
			FlowCost: map[model.FlowID]float64{0: fCost}}},
		Classes: []model.Class{
			{ID: 0, Flow: 0, Node: 0, MaxConsumers: 5000,
				CostPerConsumer: gCost, Utility: utility.NewLog(10)},
		},
	}
	if err := model.Validate(p); err != nil {
		t.Fatalf("calibrated problem invalid: %v", err)
	}
	e, err := core.NewEngine(p, core.Config{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Solve(400)
	if res.Utility <= 0 {
		t.Errorf("utility = %g", res.Utility)
	}
	ix := e.Index()
	if err := model.CheckFeasible(p, ix, res.Allocation, 1e-6); err != nil {
		t.Errorf("infeasible: %v", err)
	}
}
