package experiments

import (
	"bytes"
	"testing"
)

func TestPruneExperiment(t *testing.T) {
	res, err := PruneExperiment(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedClasses == 0 {
		t.Fatal("stage 1 starved no class; scenario mistuned")
	}
	if res.PrunedNodeVisits <= 0 {
		t.Errorf("pruned node visits = %d, want > 0", res.PrunedNodeVisits)
	}
	if res.UtilityGain <= 0 {
		t.Errorf("utility gain = %g, want > 0 (stage1 %.0f, stage2 %.0f)",
			res.UtilityGain, res.Stage1.Result.Utility, res.Stage2.Result.Utility)
	}
}

func TestMultirateExperiment(t *testing.T) {
	rows, err := MultirateExperiment(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	hetero, base := rows[0], rows[1]
	if hetero.GainPct < 20 {
		t.Errorf("hetero gain %.2f%%, want > 20%%", hetero.GainPct)
	}
	if hetero.FastDelivery <= hetero.SlowDelivery {
		t.Errorf("delivery did not split: %g vs %g", hetero.FastDelivery, hetero.SlowDelivery)
	}
	// On the homogeneous base workload multirate must not lose.
	if base.GainPct < -2 {
		t.Errorf("base workload gain %.2f%%, want >= -2%%", base.GainPct)
	}
}

func TestGammaControllerAblation(t *testing.T) {
	rows, err := GammaControllerAblation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := make(map[string]GammaRow, len(rows))
	for _, r := range rows {
		byName[r.Controller] = r
	}
	refined, literal := byName["refined"], byName["literal"]

	// Both adaptive controllers converge on every shape.
	for si := 0; si < 4; si++ {
		if refined.ConvergeIters[si] < 0 {
			t.Errorf("refined did not converge on shape %d", si)
		}
		if literal.ConvergeIters[si] < 0 {
			t.Errorf("literal did not converge on shape %d", si)
		}
	}
	// The refined controller's reason to exist: faster recovery.
	if refined.RecoveryIters < 0 {
		t.Fatal("refined did not recover")
	}
	if literal.RecoveryIters > 0 && refined.RecoveryIters >= literal.RecoveryIters {
		t.Errorf("refined recovery %d not below literal %d", refined.RecoveryIters, literal.RecoveryIters)
	}
	var buf bytes.Buffer
	RenderGammaAblation(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestOverheadExperiment(t *testing.T) {
	rows, err := OverheadExperiment(quick(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.MessagesPerRound < float64(r.Flows+r.Nodes) {
			t.Errorf("%s: %.1f msgs/round below the structural floor %d",
				r.Workload, r.MessagesPerRound, r.Flows+r.Nodes)
		}
		if r.BytesPerRound <= 0 {
			t.Errorf("%s: no bytes counted", r.Workload)
		}
		if r.Utility <= 0 {
			t.Errorf("%s: utility = %g", r.Workload, r.Utility)
		}
	}
	// Message volume grows with system size.
	if rows[2].MessagesPerRound <= rows[0].MessagesPerRound {
		t.Errorf("24f/12n msgs/round %.1f not above base %.1f",
			rows[2].MessagesPerRound, rows[0].MessagesPerRound)
	}

	var buf bytes.Buffer
	RenderOverhead(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestDistRuntimeExperiment(t *testing.T) {
	rows, err := DistRuntimeExperiment(quick(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byConfig := make(map[string]RuntimeRow, len(rows))
	for _, r := range rows {
		if r.BytesPerRound <= 0 || r.FramesPerRound <= 0 {
			t.Errorf("%s: empty meters (%.1f frames, %.0f bytes)", r.Config, r.FramesPerRound, r.BytesPerRound)
		}
		if r.Utility <= 0 {
			t.Errorf("%s: utility = %g", r.Config, r.Utility)
		}
		byConfig[r.Config] = r
	}
	// The headline claims of the runtime rebuild, measured not asserted by
	// construction: binary >= 3x fewer bytes/round, batching >= 5x fewer
	// frames/round.
	if j, b := byConfig["json"], byConfig["binary"]; j.BytesPerRound < 3*b.BytesPerRound {
		t.Errorf("binary saves only %.2fx bytes/round (json %.0f, binary %.0f)",
			j.BytesPerRound/b.BytesPerRound, j.BytesPerRound, b.BytesPerRound)
	}
	if b, bb := byConfig["binary"], byConfig["binary+batch"]; b.FramesPerRound < 5*bb.FramesPerRound {
		t.Errorf("batching saves only %.2fx frames/round (plain %.1f, batched %.1f)",
			b.FramesPerRound/bb.FramesPerRound, b.FramesPerRound, bb.FramesPerRound)
	}
	for _, label := range []string{"json", "binary", "binary+batch"} {
		if byConfig[label].RoundsToConverge == 0 {
			t.Errorf("%s: never reached the 1%% band", label)
		}
	}

	var buf bytes.Buffer
	RenderDistRuntime(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}
