package broker

import (
	"time"

	"repro/internal/telemetry"
)

// This file holds the incremental enact path: the machinery that makes a
// control-plane change cost proportional to what it changed instead of to
// broker size.
//
// Every control operation that can alter admitted membership (attach
// never does; detach, ApplyAllocation and SetClassRateCap can) appends
// the classes it dirtied to b.dirtyClasses and then calls
// republishLocked, which picks one of three outcomes:
//
//   - route noop: no class's deliverable membership moved, so the
//     previous snapshot stays published. A rate-only ApplyAllocation
//     lands here — token buckets are re-rated in place and nothing swaps.
//   - incremental: the top-level block-pointer array is copied, dirty
//     blocks are cloned (one slice-header memcpy per routeBlockSize
//     flows), and only the dirty flows' route slices are rebuilt; every
//     clean block — and every clean flow's slice inside a cloned block —
//     is shared, by reference, with the predecessor snapshot. Safe
//     because snapshots are immutable after publication.
//   - full rebuild: when the dirty flows are a large fraction of all
//     flows, patching would cost more than rebuilding, so the classic
//     full build runs instead.
//
// The published per-flow slices themselves are never pooled or reused:
// the data plane reads snapshots lock-free with no grace period, so a
// recycled backing array could be observed mid-overwrite. Reuse is
// confined to control-plane scratch (dirtyClasses, dirtyFlows, the
// epoch-marked flowMark) where the mutex makes it safe.

// EnactStats is the cumulative accounting of the enact path, one counter
// set per broker. Applies counts ApplyAllocation calls; NoopApplies the
// subset that changed no rate and no membership. The Route* counters
// classify every republish decision (allocations, detaches and rate-cap
// changes alike) by outcome; ClassesTouched, FlowsTouched and
// RatesChanged total the per-operation deltas.
type EnactStats struct {
	Applies           uint64
	NoopApplies       uint64
	RouteNoops        uint64
	RouteIncrementals uint64
	RouteFulls        uint64
	ClassesTouched    uint64
	FlowsTouched      uint64
	RatesChanged      uint64
}

// EnactStats returns a copy of the broker's cumulative enact accounting.
func (b *Broker) EnactStats() EnactStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.enactStats
}

type enactTelemetryOption struct {
	m *telemetry.EnactMetrics
}

func (o enactTelemetryOption) apply(b *Broker) { b.enactTel = o.m }

// WithEnactTelemetry mirrors the enact path's accounting into m (see
// telemetry.NewEnactMetrics): per-operation wall time, route-build
// outcome, and touch counts. A nil handle is valid and leaves the enact
// path uninstrumented.
func WithEnactTelemetry(m *telemetry.EnactMetrics) Option {
	return enactTelemetryOption{m: m}
}

// AllClassStats returns a snapshot of every class's delivery-side
// counters in one call, appending into dst (reused when capacity
// suffices) and returning it. Served from atomics like ClassStats —
// never takes the broker mutex, never stalls publishers — so a
// controller syncing demand for thousands of classes pays no per-class
// locking. Within one class the fields are individually exact; across
// classes the snapshot is not atomic, same as any multi-counter scrape.
func (b *Broker) AllClassStats(dst []ClassStats) []ClassStats {
	if cap(dst) < len(b.classes) {
		dst = make([]ClassStats, len(b.classes))
	} else {
		dst = dst[:len(b.classes)]
	}
	for j := range b.classes {
		cc := &b.classes[j].counters
		dst[j] = ClassStats{
			Attached:  int(cc.attached.Load()),
			Admitted:  int(cc.admitted.Load()),
			Delivered: cc.delivered.Load(),
			Filtered:  cc.filtered.Load(),
			Thinned:   cc.thinned.Load(),
		}
	}
	return dst
}

// republishLocked publishes the route-snapshot consequence of the dirty
// classes accumulated since the last republish, consuming b.dirtyClasses.
// Callers must hold b.mu. Returns the telemetry.EnactRoute* outcome and
// the number of flows whose route slice was rebuilt.
func (b *Broker) republishLocked() (mode, flowsTouched int) {
	if len(b.dirtyClasses) == 0 {
		return telemetry.EnactRouteNoop, 0
	}
	// Map dirty classes to their flows, deduplicating with the epoch
	// marker so several dirty classes of one flow rebuild it once. The
	// epoch bump replaces clearing flowMark, keeping the noop and
	// small-delta paths O(delta) rather than O(flows).
	b.markEpoch++
	b.dirtyFlows = b.dirtyFlows[:0]
	for _, cid := range b.dirtyClasses {
		fid := b.p.Classes[cid].Flow
		if b.flowMark[fid] != b.markEpoch {
			b.flowMark[fid] = b.markEpoch
			b.dirtyFlows = append(b.dirtyFlows, fid)
		}
	}
	b.dirtyClasses = b.dirtyClasses[:0]
	if len(b.dirtyFlows)*4 > len(b.p.Flows) {
		// Wide delta: patching would allocate and copy nearly as much as
		// rebuilding, so take the simple path (it also keeps the small-
		// broker case — a handful of flows — on one code path).
		b.rebuildRouteLocked()
		return telemetry.EnactRouteFull, len(b.p.Flows)
	}
	old := b.route.Load()
	blocks := make([][][]classRoute, len(old.blocks))
	copy(blocks, old.blocks)
	for _, fid := range b.dirtyFlows {
		k := int(fid) >> routeBlockBits
		if b.blockMark[k] != b.markEpoch {
			// First dirty flow in this block: clone it (the markEpoch bump
			// above doubles as the per-republish block dedup).
			b.blockMark[k] = b.markEpoch
			nb := make([][]classRoute, len(old.blocks[k]))
			copy(nb, old.blocks[k])
			blocks[k] = nb
		}
		blocks[k][int(fid)&routeBlockMask] = b.buildFlowRoutesLocked(fid)
	}
	b.route.Store(&routeTable{blocks: blocks})
	return telemetry.EnactRouteIncremental, len(b.dirtyFlows)
}

// observeEnactLocked folds one control operation's enact outcome into the
// cumulative EnactStats and, when enact telemetry is attached, records
// its wall time and touch counts. startNanos is time.Now().UnixNano()
// captured at operation entry when telemetry is attached, 0 otherwise
// (the uninstrumented path never reads the real clock). Callers must
// hold b.mu.
func (b *Broker) observeEnactLocked(startNanos int64, mode, classes, flows, rates int) {
	s := &b.enactStats
	switch mode {
	case telemetry.EnactRouteNoop:
		s.RouteNoops++
	case telemetry.EnactRouteIncremental:
		s.RouteIncrementals++
	case telemetry.EnactRouteFull:
		s.RouteFulls++
	}
	s.ClassesTouched += uint64(classes)
	s.FlowsTouched += uint64(flows)
	s.RatesChanged += uint64(rates)
	if b.enactTel != nil {
		b.enactTel.ObserveApply(time.Now().UnixNano()-startNanos, mode, classes, flows, rates)
	}
}

// enactStartNanos captures the wall-clock start of an enact, but only
// when telemetry wants it. enactTel is immutable after New, so callers
// may invoke this before taking b.mu.
func (b *Broker) enactStartNanos() int64 {
	if b.enactTel == nil {
		return 0
	}
	return time.Now().UnixNano()
}
